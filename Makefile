# Convenience targets; everything is plain dune underneath.

.PHONY: all build check test bench bench-quick bench-smoke bench-udp bench-serve bench-hostile perf-smoke secure-smoke udp-smoke serve-smoke hostile-smoke soak soak-smoke udp-soak examples cli clean outputs

all: build

# The one-stop gate: full test suite, the perf-smoke fusion invariants
# (E2/E14/E15 ratios plus the E19 schema-compiler gate at a tiny
# quota), the fused AEAD record-layer gate (E20), the real-socket
# loopback self-test with its zero-allocation gate (E16), the sharded
# many-session engine self-test on both backends (E17), and the
# adversarial-ingress self-test under byzantine load (E18).
check: test perf-smoke secure-smoke udp-smoke serve-smoke hostile-smoke

build:
	dune build @all

test:
	dune runtest

# All eleven experiments (DESIGN.md section 3 / EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# A quicker benchmark pass for iteration.
bench-quick:
	ALFNET_BENCH_QUOTA=0.15 dune exec bench/main.exe

# Tiny-quota pass over the microbenchmark experiments only: seconds, not
# minutes, and still writes a valid BENCH_ilp.json for comparison.
bench-smoke:
	ALFNET_BENCH_QUOTA=0.05 dune exec bench/main.exe -- table1 ilp-fusion fused-convert ilp-parallel ilp-compile ilp-marshal schema-marshal secure-record

# Quick perf gate: run the fusion experiments at a tiny quota, then fail
# if fused does not beat serial (E2), the compiled 3-stage plan does not
# beat serial layered execution by >= 2x (E14), or the fused marshal
# does not beat the encode-then-checksum-then-copy composition by
# >= 1.5x per codec (E15), or the schema-compiled marshal/lazy view
# falls below the interpreters, allocates in steady state, or stops
# hitting its program cache (E19). Ratios compare measurements within
# one run, so the short quota does not skew them.
perf-smoke:
	ALFNET_BENCH_QUOTA=0.05 ALFNET_BENCH_JSON=BENCH_smoke.json dune exec bench/main.exe -- ilp-fusion ilp-compile ilp-marshal schema-marshal
	dune exec bench/perfcheck.exe -- BENCH_smoke.json
	dune exec bench/perfcheck.exe -- --schema BENCH_smoke.json

# The fused AEAD record layer (E20): marshal + ChaCha20 + Poly1305 +
# CRC-32 framing in one pass must beat the layered reference stack
# (per-layer byte-grain walks and PDU copies) by >= 1.5x on send and
# >= 1.3x on receive, stay within noise of the word-grain layered
# upper bound, and allocate nothing in steady state on either side.
secure-smoke:
	ALFNET_BENCH_QUOTA=0.05 ALFNET_BENCH_JSON=BENCH_secure_smoke.json dune exec bench/main.exe -- secure-record
	dune exec bench/perfcheck.exe -- --secure BENCH_secure_smoke.json

# Real loopback UDP (E16): stream fused-send ADUs over actual sockets
# via the Rt poll loop, race the same workload through the simulator,
# and gate on zero steady-state Bytebuf allocations per ADU on the send
# path. Needs no privileges: everything stays on 127.0.0.1.
bench-udp:
	dune exec bin/alfnet.exe -- udp --bench --out BENCH_udp.json
	dune exec bench/perfcheck.exe -- --udp BENCH_udp.json

# The quick E16 pass that rides in `make check`: smaller stream, same
# invariants and zero-alloc gate.
udp-smoke:
	dune exec bin/alfnet.exe -- udp --bench --adus 2000 --out BENCH_udp_smoke.json
	dune exec bench/perfcheck.exe -- --udp BENCH_udp_smoke.json

# The many-session engine (E17): sessions x domains scaling sweep over
# netsim plus a full-count point on real loopback sockets, gated on
# every-session-DONE, delivered union gone = sent, peak concurrency =
# session count, and zero steady-state pool allocations.
bench-serve:
	dune exec bin/alfnet.exe -- serve --bench --sessions 100000 --out BENCH_scale.json
	dune exec bench/perfcheck.exe -- --serve BENCH_scale.json

# The quick E17 pass that rides in `make check`: a few thousand
# concurrent sessions through both backends, same invariants.
serve-smoke:
	dune exec bin/alfnet.exe -- serve --backend both --sessions 4000

# Adversarial ingress (E18): the full 10^5-session run on both backends
# with >= 30% byzantine traffic mixed in, then the perfcheck gate over
# the written rows — honest sessions exact, pool budget flat, every
# drop reason-coded, stage-0 validation under 3% of the clean path.
bench-hostile:
	dune exec bin/alfnet.exe -- serve --bench --hostile --sessions 100000 --out BENCH_hostile.json
	dune exec bench/perfcheck.exe -- --hostile BENCH_hostile.json

# The quick E18 pass that rides in `make check`: both backends under the
# byzantine mix at a few thousand sessions, same invariants.
hostile-smoke:
	dune exec bin/alfnet.exe -- serve --hostile --backend both --sessions 4000

# The soak matrix on real sockets: loss/corruption injected at the
# datagram seam, same six robustness invariants as `make soak`.
udp-soak:
	dune exec bin/alfnet.exe -- udp --soak --out BENCH_udp_soak.json

# The full hostile-network soak matrix (E13): impairment x recovery
# policy x FEC plus fault plans, invariants checked, BENCH_soak.json out.
soak:
	dune exec bin/alfnet.exe -- soak

# The seeded 2-second subset that also runs inside `dune runtest`
# (test/test_chaos.ml), for quick control-plane regression checks.
soak-smoke:
	dune exec bin/alfnet.exe -- soak --smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/file_transfer.exe
	dune exec examples/video_stream.exe
	dune exec examples/rpc_demo.exe
	dune exec examples/parallel_sink.exe
	dune exec examples/text_transfer.exe
	dune exec examples/ilp_showcase.exe

cli:
	dune exec bin/alfnet.exe -- transfer --transport alf --loss 0.05 -v
	dune exec bin/alfnet.exe -- transfer --transport tcp --loss 0.05 -v
	dune exec bin/alfnet.exe -- atm --aal 5 --cell-loss 0.005
	dune exec bin/alfnet.exe -- syntax --ints 32

# Regenerate the captured artefacts referenced by EXPERIMENTS.md.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
