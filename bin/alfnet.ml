(* alfnet - drive the simulator from the command line.

   Subcommands:
     transfer   move data through a lossy network with either transport
     atm        carry ADUs over ATM cells through an adaptation layer
     syntax     encode a sample value in each transfer syntax
     parallel   shard a batch of ADUs across worker domains (stage 2)
     ilp        compile a manipulation plan and race the three executors
     marshal    fuse presentation conversion into the stage plan (one pass)
     metrics    run an instrumented workload and dump the metrics registry
     soak       sweep impairment x recovery-policy x FEC under fault plans
     udp        the same transport over real loopback UDP sockets (Rt loop)
     secure     the fused AEAD record layer: soak selftest and fused-vs-serial bench
     serve      the sharded many-session server engine under a load generator

   Examples:
     alfnet transfer --transport alf --loss 0.05 --size 500000
     alfnet transfer --transport tcp --loss 0.05 --reorder 0.2 --jitter 0.01
     alfnet atm --aal 5 --cell-loss 0.002 --adus 200
     alfnet syntax --ints 16
     alfnet parallel --domains 4 --adus 128 --plan decrypt
     alfnet parallel --plan rc4   # demonstrates the in-order degradation
     alfnet ilp --plan swab,crc32,copy --size 1048576
     alfnet ilp --plan xor:42@1000,internet,fletcher32,copy
     alfnet marshal --codec xdr --plan rc4:key,internet,copy
     alfnet soak --smoke --seed 42
     alfnet soak --out BENCH_soak.json
     alfnet udp --adus 10000
     alfnet udp --bench --out BENCH_udp.json
     alfnet udp --soak --smoke
     alfnet secure --selftest --smoke
     alfnet secure --bench --out BENCH_secure.json
     alfnet serve --sessions 100000 --backend both
     alfnet serve --bench --out BENCH_scale.json
     alfnet serve --hostile --backend both --sessions 4000
     alfnet serve --bench --hostile --out BENCH_hostile.json *)

open Bufkit
open Netsim
open Alf_core
open Cmdliner

(* --- shared network options --- *)

type net_opts = {
  loss : float;
  corrupt : float;
  reorder : float;
  jitter : float;
  bandwidth : float;
  delay : float;
  seed : int;
}

let net_opts_term =
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Packet loss probability.")
  in
  let corrupt =
    Arg.(value & opt float 0.0 & info [ "corrupt" ] ~docv:"P" ~doc:"Payload corruption probability.")
  in
  let reorder =
    Arg.(value & opt float 0.0 & info [ "reorder" ] ~docv:"P" ~doc:"Probability of extra jitter delay (reordering).")
  in
  let jitter =
    Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"SECONDS" ~doc:"Maximum extra jitter delay.")
  in
  let bandwidth =
    Arg.(value & opt float 10e6 & info [ "bandwidth" ] ~docv:"BPS" ~doc:"Link bandwidth, bits/second.")
  in
  let delay =
    Arg.(value & opt float 0.005 & info [ "delay" ] ~docv:"SECONDS" ~doc:"One-way propagation delay.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed (runs are deterministic per seed).")
  in
  let make loss corrupt reorder jitter bandwidth delay seed =
    { loss; corrupt; reorder; jitter; bandwidth; delay; seed }
  in
  Term.(const make $ loss $ corrupt $ reorder $ jitter $ bandwidth $ delay $ seed)

let build_net opts engine =
  let rng = Rng.create ~seed:(Int64.of_int opts.seed) in
  let impair =
    Impair.make ~loss:opts.loss ~corrupt:opts.corrupt ~reorder:opts.reorder
      ~jitter:opts.jitter ()
  in
  Topology.point_to_point ~engine ~rng ~impair ~queue_limit:1024
    ~bandwidth_bps:opts.bandwidth ~delay:opts.delay ~a:1 ~b:2 ()

(* --- transfer --- *)

let run_transfer transport substrate opts size adu_size policy_name verbose
    show_trace negotiate stripes =
  let engine = Engine.create () in
  let net = build_net opts engine in
  let trace = Trace.create ~capacity:40 engine in
  let data = Bytebuf.create size in
  Rng.fill_bytes (Rng.create ~seed:0xDA7AL) data;
  let crc = Checksum.Crc32.digest data in
  Printf.printf
    "transfer: %d bytes via %s | loss=%.3g corrupt=%.3g reorder=%.3g | %.3g Mb/s, %.1f ms\n"
    size transport opts.loss opts.corrupt opts.reorder (opts.bandwidth /. 1e6)
    (opts.delay *. 1000.0);
  match transport with
  | "tcp" ->
      let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
      let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
      if show_trace then begin
        Transport.Tcp.set_tracer sender (fun msg -> Trace.log trace "snd" "%s" msg);
        Transport.Tcp.set_tracer receiver (fun msg -> Trace.log trace "rcv" "%s" msg)
      end;
      let out = Bytebuf.create size in
      let pos = ref 0 in
      Transport.Tcp.on_deliver receiver (fun chunk ->
          Bytebuf.blit ~src:chunk ~src_pos:0 ~dst:out ~dst_pos:!pos
            ~len:(Bytebuf.length chunk);
          pos := !pos + Bytebuf.length chunk);
      let done_at = ref nan in
      Transport.Tcp.on_close receiver (fun () -> done_at := Engine.now engine);
      Transport.Tcp.send sender data;
      Transport.Tcp.finish sender;
      Engine.run ~until:3600.0 engine;
      let s = Transport.Tcp.stats sender in
      let r = Transport.Tcp.stats receiver in
      Printf.printf "completed at t=%.3fs, goodput %.3f Mb/s\n" !done_at
        (8.0 *. float_of_int size /. !done_at /. 1e6);
      Printf.printf
        "segments: %d sent, %d retransmitted (%d timeouts, %d fast), %d discarded by checksum\n"
        s.Transport.Tcp.segs_sent s.Transport.Tcp.retransmits
        s.Transport.Tcp.timeouts s.Transport.Tcp.fast_retransmits
        r.Transport.Tcp.segs_discarded;
      if verbose then
        Printf.printf "control ops: %d | manipulation bytes: %d\n"
          (s.Transport.Tcp.control_ops + r.Transport.Tcp.control_ops)
          (s.Transport.Tcp.manip_checksum_bytes + s.Transport.Tcp.manip_copy_bytes
          + r.Transport.Tcp.manip_checksum_bytes + r.Transport.Tcp.manip_copy_bytes);
      let ok = Checksum.Crc32.digest (Bytebuf.take out !pos) = crc && !pos = size in
      Printf.printf "integrity: %s\n" (if ok then "OK" else "FAILED");
      if show_trace then begin
        Printf.printf "\nlast protocol events:\n";
        Format.printf "%a@?" Trace.dump trace
      end;
      if ok then `Ok () else `Error (false, "transfer corrupted")
  | "alf" ->
      let policy =
        match policy_name with
        | "buffer" -> Recovery.Transport_buffer
        | "none" -> Recovery.No_recovery
        | other -> failwith ("unknown policy " ^ other)
      in
      let stripe_ios () =
        (* N parallel paths; each stripe is its own duplex link, so they
           reorder freely against each other. *)
        let nets = List.init stripes (fun _ -> build_net opts engine) in
        let side pick =
          Dgram.striped
            (List.map
               (fun n -> Dgram.of_udp (Transport.Udp.create ~engine ~node:(pick n) ()))
               nets)
        in
        (side (fun n -> n.Topology.a), side (fun n -> n.Topology.b))
      in
      let io_a, io_b =
        if stripes > 1 then stripe_ios ()
        else
        match substrate with
        | "atm" ->
            (* Cells on the wire: the impairments apply per 53-byte cell. *)
            ( Dgram.of_atm (Atmsim.Bearer.create ~engine ~node:net.Topology.a ()),
              Dgram.of_atm (Atmsim.Bearer.create ~engine ~node:net.Topology.b ()) )
        | _ ->
            ( Dgram.of_udp (Transport.Udp.create ~engine ~node:net.Topology.a ()),
              Dgram.of_udp (Transport.Udp.create ~engine ~node:net.Topology.b ()) )
      in
      let out = Sink.create ~size in
      let receiver =
        Alf_transport.receiver_io ~sched:(Netsim.Engine.sched engine) ~io:io_b ~port:7 ~stream:1
          ~deliver:(fun adu ->
            match Sink.write_adu out adu with
            | Ok () -> ()
            | Error e -> prerr_endline e)
          ()
      in
      let done_at = ref nan in
      Alf_transport.on_complete receiver (fun () -> done_at := Engine.now engine);
      if show_trace then
        Alf_transport.set_receiver_tracer receiver (fun msg ->
            Trace.log trace "alf-rcv" "%s" msg);
      let sender =
        (* Pace fragments at the link rate: the paper's out-of-band rate
           control, keeping self-induced queueing (and spurious loss
           reports) out of the picture. *)
        let config =
          { Alf_transport.default_sender_config with
            Alf_transport.pace_bps =
              Some (opts.bandwidth *. float_of_int (max 1 stripes) *. 0.95) }
        in
        Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io:io_a ~peer:2 ~peer_port:7 ~port:8
          ~stream:1 ~policy ~config ()
      in
      if show_trace then
        Alf_transport.set_sender_tracer sender (fun msg ->
            Trace.log trace "alf-snd" "%s" msg);
      let start_data_phase () =
        List.iter (Alf_transport.send_adu sender)
          (Framing.frames_of_buffer ~stream:1 ~adu_size data);
        Alf_transport.close sender
      in
      if negotiate then begin
        (* Out-of-band setup first: agree syntax/rate/policy, then move
           data. The receiver side advertises a rate cap. *)
        let _responder =
          Session.listen ~engine ~io:io_b ~port:99 ~supported:[ "raw"; "ber" ]
            ~max_rate_bps:(opts.bandwidth *. 0.95)
            ~on_session:(fun ~peer:_ g ->
              Printf.printf
                "session: accepted stream %d, syntax=%s, rate=%.3g Mb/s\n"
                g.Session.g_stream g.Session.g_syntax
                (g.Session.g_rate_bps /. 1e6))
            ()
        in
        Session.initiate ~engine ~io:io_a ~port:98 ~peer:2 ~peer_port:99
          ~offer:
            { Session.stream = 1; syntaxes = [ "raw" ];
              rate_bps = opts.bandwidth *. 2.0; policy = policy_name;
              ciphers = [ "chacha20" ] }
          ~on_result:(fun result ->
            match result with
            | Some _ -> start_data_phase ()
            | None -> prerr_endline "session setup failed")
          ()
      end
      else start_data_phase ();
      Engine.run ~until:3600.0 engine;
      let s = Alf_transport.sender_stats sender in
      let r = Alf_transport.receiver_stats receiver in
      Printf.printf "completed at t=%.3fs, goodput %.3f Mb/s\n" !done_at
        (8.0 *. float_of_int size /. !done_at /. 1e6);
      Printf.printf
        "ADUs: %d sent (%d B each), %d retransmitted, %d declared gone; %d delivered (%d out of order)\n"
        s.Alf_transport.adus_sent adu_size s.Alf_transport.adus_retransmitted
        s.Alf_transport.adus_gone r.Alf_transport.adus_delivered
        r.Alf_transport.out_of_order;
      if verbose then
        Printf.printf "NACKs: %d sent | store peak: %d bytes\n"
          r.Alf_transport.nacks_sent s.Alf_transport.store_peak;
      if show_trace then begin
        Printf.printf "\nlast protocol events:\n";
        Format.printf "%a@?" Trace.dump trace
      end;
      let ok =
        r.Alf_transport.adus_lost > 0
        || (Sink.complete out && Int32.equal (Sink.crc32 out) crc)
      in
      Printf.printf "integrity: %s%s\n"
        (if ok then "OK" else "FAILED")
        (if r.Alf_transport.adus_lost > 0 then
           Printf.sprintf " (%d ADUs lost under no-recovery, as configured)"
             r.Alf_transport.adus_lost
         else "");
      if ok then `Ok () else `Error (false, "transfer corrupted")
  | other -> `Error (true, "unknown transport " ^ other)

let transfer_cmd =
  let transport =
    Arg.(value & opt string "alf" & info [ "transport" ] ~docv:"tcp|alf" ~doc:"Transport to use.")
  in
  let size =
    Arg.(value & opt int 200_000 & info [ "size" ] ~docv:"BYTES" ~doc:"Bytes to transfer.")
  in
  let adu_size =
    Arg.(value & opt int 4000 & info [ "adu-size" ] ~docv:"BYTES" ~doc:"ADU size (alf only).")
  in
  let policy =
    Arg.(value & opt string "buffer" & info [ "policy" ] ~docv:"buffer|none" ~doc:"ALF recovery policy.")
  in
  let substrate =
    Arg.(
      value & opt string "udp"
      & info [ "substrate" ] ~docv:"udp|atm"
          ~doc:"Datagram substrate for the ALF transport (atm = AAL5 over 53-byte cells).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"More counters.") in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the last protocol events (tcp only).")
  in
  let negotiate =
    Arg.(
      value & flag
      & info [ "negotiate" ]
          ~doc:"Run out-of-band session setup (syntax/rate/policy) before the data phase (alf only).")
  in
  let stripes =
    Arg.(
      value & opt int 1
      & info [ "stripes" ] ~docv:"N"
          ~doc:"Stripe the ALF transport round-robin across N parallel links (alf only).")
  in
  let run transport substrate opts size adu_size policy verbose show_trace
      negotiate stripes =
    run_transfer transport substrate opts size adu_size policy verbose
      show_trace negotiate stripes
  in
  Cmd.v
    (Cmd.info "transfer" ~doc:"Move data through a simulated lossy network.")
    Term.(
      ret
        (const run $ transport $ substrate $ net_opts_term $ size $ adu_size
       $ policy $ verbose $ show_trace $ negotiate $ stripes))

(* --- atm --- *)

let run_atm aal cell_loss n_adus adu_size seed =
  let open Atmsim in
  let rng = Rng.create ~seed:(Int64.of_int seed) in
  let delivered = ref 0 in
  let cells = ref 0 in
  Printf.printf "atm: %d ADUs of %d B over AAL%s, cell loss %.3g%%\n" n_adus
    adu_size aal (cell_loss *. 100.0);
  let reasm5 = Aal5.reassembler ~deliver:(fun _ -> incr delivered) () in
  let reasm34 = Aal34.reassembler ~deliver:(fun ~mid:_ _ -> incr delivered) in
  for i = 0 to n_adus - 1 do
    let adu =
      Adu.make
        (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
        (Bytebuf.create adu_size)
    in
    let encoded = Adu.encode adu in
    match aal with
    | "5" ->
        List.iter
          (fun (payload, eof) ->
            incr cells;
            if not (Rng.bool rng ~p:cell_loss) then Aal5.push reasm5 payload ~eof)
          (Aal5.segment encoded)
    | "34" ->
        List.iter
          (fun pdu ->
            incr cells;
            if not (Rng.bool rng ~p:cell_loss) then Aal34.push reasm34 pdu)
          (Aal34.segment ~mid:(i land 0x3FF) encoded)
    | _ -> ()
  done;
  match aal with
  | "5" | "34" ->
      let payload_bytes = n_adus * adu_size in
      Printf.printf "cells on the wire: %d (%d B) for %d B of payload: %.1f%% efficiency\n"
        !cells (!cells * Cell.cell_size) payload_bytes
        (100.0 *. float_of_int payload_bytes /. float_of_int (!cells * Cell.cell_size));
      Printf.printf "delivered: %d/%d ADUs (%.1f%%)\n" !delivered n_adus
        (100.0 *. float_of_int !delivered /. float_of_int n_adus);
      (match aal with
      | "5" ->
          let s = Aal5.stats reasm5 in
          Printf.printf "aborts: %d crc, %d oversize\n" s.Aal5.aborted_crc
            s.Aal5.aborted_oversize
      | _ ->
          let s = Aal34.stats reasm34 in
          Printf.printf "aborts: %d gap, %d crc, %d format\n" s.Aal34.aborted_gap
            s.Aal34.aborted_crc s.Aal34.aborted_format);
      `Ok ()
  | other -> `Error (true, "unknown AAL " ^ other)

let atm_cmd =
  let aal = Arg.(value & opt string "5" & info [ "aal" ] ~docv:"5|34" ~doc:"Adaptation layer.") in
  let cell_loss =
    Arg.(value & opt float 0.001 & info [ "cell-loss" ] ~docv:"P" ~doc:"Cell loss probability.")
  in
  let adus = Arg.(value & opt int 100 & info [ "adus" ] ~docv:"N" ~doc:"Number of ADUs.") in
  let adu_size =
    Arg.(value & opt int 1000 & info [ "adu-size" ] ~docv:"BYTES" ~doc:"ADU payload size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "atm" ~doc:"Carry ADUs over ATM cells through an adaptation layer.")
    Term.(ret (const run_atm $ aal $ cell_loss $ adus $ adu_size $ seed))

(* --- syntax --- *)

let run_syntax n_ints =
  let ints = Array.init n_ints (fun i -> (i * i) - (7 * i) + 3) in
  let value = Wire.Value.int_array ints in
  Printf.printf "sample value: %d integers; abstract size %d bytes\n\n" n_ints
    (Wire.Value.abstract_size value);
  List.iter
    (fun name ->
      match Wire.Syntax.for_value name value with
      | None -> Printf.printf "%-6s cannot carry this value\n" name
      | Some syntax ->
          let encoded = Wire.Syntax.encode syntax value in
          Printf.printf "%-6s %4d bytes on the wire (%.2fx expansion)\n" name
            (Bytebuf.length encoded)
            (float_of_int (Bytebuf.length encoded)
            /. float_of_int (Wire.Value.abstract_size value)))
    [ "raw"; "ber"; "xdr"; "lwts" ];
  `Ok ()

let syntax_cmd =
  let ints = Arg.(value & opt int 16 & info [ "ints" ] ~docv:"N" ~doc:"Integers in the sample array.") in
  Cmd.v
    (Cmd.info "syntax" ~doc:"Show a value in each transfer syntax.")
    Term.(ret (const run_syntax $ ints))

(* --- parallel --- *)

let run_parallel domains n_adus adu_size plan_name =
  let plan_fn =
    match plan_name with
    | "checksum" ->
        Some
          (fun (_ : Adu.t) ->
            [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ])
    | "decrypt" -> Some (fun adu -> Stage2.decrypt_verify_at ~key:0xA5A5L adu)
    | "swab" ->
        Some
          (fun (_ : Adu.t) ->
            [
              Ilp.Byteswap32;
              Ilp.Checksum Checksum.Kind.Fletcher32;
              Ilp.Deliver_copy;
            ])
    | "rc4" ->
        Some
          (fun (_ : Adu.t) ->
            [ Ilp.Rc4_stream { key = "alfnet" }; Ilp.Deliver_copy ])
    | _ -> None
  in
  match plan_fn with
  | None ->
      `Error
        ( true,
          Printf.sprintf "unknown plan %S (try checksum, decrypt, swab, rc4)"
            plan_name )
  | Some _ when adu_size mod 4 <> 0 ->
      `Error (true, "--adu-size must be a multiple of 4 (Byteswap32 plans)")
  | Some plan_of_name -> begin
    let rng = Rng.create ~seed:0x9AFL in
    let adus =
      Array.init n_adus (fun i ->
          let payload = Bytebuf.create adu_size in
          Rng.fill_bytes rng payload;
          Adu.make
            (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1
               ~index:i ())
            payload)
    in
    let dst = Bytebuf.create (n_adus * adu_size) in
    Printf.printf
      "parallel stage-2: %d ADUs x %d B, plan=%s, pool of %d domain(s) (host has %d)\n"
      n_adus adu_size plan_name domains
      (Domain.recommended_domain_count ());
    let t0 = Obs.Clock.now_ns () in
    let outcome =
      Par.Pool.with_pool ~domains (fun pool ->
          Ilp_par.run ~pool ~dst ~plan:plan_of_name adus)
    in
    let dt = (Obs.Clock.now_ns () -. t0) /. 1e9 in
    let bytes = n_adus * adu_size in
    Printf.printf "processed %d bytes in %.3f ms (%.1f Mb/s)\n" bytes
      (dt *. 1000.0)
      (8.0 *. float_of_int bytes /. dt /. 1e6);
    Printf.printf "parallel ADUs: %d, serial fallback (in-order plan): %d\n"
      outcome.Ilp_par.parallel_adus outcome.Ilp_par.serial_fallback;
    if outcome.Ilp_par.serial_fallback > 0 then
      Printf.printf
        "note: plan %S needs in-order processing, so the batch degraded to\n\
         the serial path (paper section 6: a sequential cipher poisons\n\
         out-of-order ADU processing).\n"
        plan_name;
    List.iter
      (fun (kind, v) ->
        Printf.printf "merged %s over all ADUs: 0x%08x\n"
          (Checksum.Kind.to_string kind) v)
      outcome.Ilp_par.merged_checksums;
    (* Cross-check against the layered single-domain reference. *)
    let reference =
      Array.map
        (fun (a : Adu.t) -> Ilp.run_layered (plan_of_name a) a.Adu.payload)
        adus
    in
    let ok = ref true in
    Array.iteri
      (fun i (r : Ilp.result) ->
        if not (Bytebuf.equal r.Ilp.output reference.(i).Ilp.output) then
          ok := false)
      outcome.Ilp_par.results;
    Printf.printf "byte-identical to the layered serial reference: %b\n" !ok;
    if !ok then `Ok () else `Error (false, "parallel output diverged")
  end

let parallel_cmd =
  let domains =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let adus =
    Arg.(value & opt int 64 & info [ "adus" ] ~docv:"N" ~doc:"ADUs in the batch.")
  in
  let adu_size =
    Arg.(
      value & opt int 16384
      & info [ "adu-size" ] ~docv:"BYTES" ~doc:"Payload bytes per ADU.")
  in
  let plan =
    Arg.(
      value & opt string "checksum"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Stage-2 plan: $(b,checksum), $(b,decrypt), $(b,swab), or \
             $(b,rc4) (sequential cipher - demonstrates the serial \
             degradation).")
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Shard a batch of ADUs across worker domains (the \\u{00a7}7 parallel sink).")
    Term.(ret (const run_parallel $ domains $ adus $ adu_size $ plan))

(* --- ilp: compile one declarative plan and race the three executors --- *)

let parse_stage s =
  let lower = String.lowercase_ascii s in
  match String.index_opt lower ':' with
  | None -> (
      match lower with
      | "swab" | "byteswap32" -> Ok Ilp.Byteswap32
      | "copy" | "deliver" -> Ok Ilp.Deliver_copy
      | "xor" -> Ok (Ilp.Xor_pad { key = 0xA5A5L; pos = 0L })
      | "rc4" -> Ok (Ilp.Rc4_stream { key = "alfnet" })
      | name -> (
          match Checksum.Kind.of_string name with
          | Some k -> Ok (Ilp.Checksum k)
          | None -> Error (Printf.sprintf "unknown stage %S" s)))
  | Some i -> (
      let head = String.sub lower 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "cksum" | "checksum" -> (
          match Checksum.Kind.of_string arg with
          | Some k -> Ok (Ilp.Checksum k)
          | None -> Error (Printf.sprintf "unknown checksum kind %S" arg))
      | "rc4" -> Ok (Ilp.Rc4_stream { key = arg })
      | "xor" -> (
          let key, pos =
            match String.index_opt arg '@' with
            | None -> (arg, "0")
            | Some j ->
                ( String.sub arg 0 j,
                  String.sub arg (j + 1) (String.length arg - j - 1) )
          in
          match (Int64.of_string_opt key, Int64.of_string_opt pos) with
          | Some key, Some pos when pos >= 0L -> Ok (Ilp.Xor_pad { key; pos })
          | _ ->
              Error
                (Printf.sprintf "bad xor spec %S (expected xor:KEY[@POS])" arg))
      | _ -> Error (Printf.sprintf "unknown stage %S" s))

let run_ilp plan_spec size =
  let specs =
    String.split_on_char ',' plan_spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match
    List.fold_left
      (fun acc s ->
        match (acc, parse_stage s) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok stages, Ok st -> Ok (st :: stages))
      (Ok []) specs
  with
  | Error e -> `Error (true, e)
  | Ok rev_stages -> (
      let plan = List.rev rev_stages in
      match Ilp.validate plan with
      | Error msg -> `Error (false, "plan does not validate: " ^ msg)
      | Ok () when List.mem Ilp.Byteswap32 plan && size mod 4 <> 0 ->
          `Error (true, "--size must be a multiple of 4 with swab")
      | Ok () ->
          let input = Bytebuf.create size in
          Rng.fill_bytes (Rng.create ~seed:0x11FL) input;
          Printf.printf "plan: [%s], %d bytes%s\n"
            (String.concat "; " (List.map Ilp.stage_name plan))
            size
            (if Ilp.needs_in_order plan then
               " (sequential cipher: ADUs must stay in order)"
             else "");
          let layered = Ilp.run_layered plan input in
          let interp = Ilp.run_fused_interpreted plan input in
          let fused = Ilp.run_fused plan input in
          let agree =
            Bytebuf.equal fused.Ilp.output layered.Ilp.output
            && Bytebuf.equal fused.Ilp.output interp.Ilp.output
            && fused.Ilp.checksums = layered.Ilp.checksums
            && fused.Ilp.checksums = interp.Ilp.checksums
          in
          let time name f =
            ignore (f ()) (* warm *);
            let t0 = Obs.Clock.now_ns () in
            let runs = ref 0 in
            let dt = ref 0.0 in
            while !dt < 5e7 do
              ignore (f ());
              incr runs;
              dt := Obs.Clock.now_ns () -. t0
            done;
            let ns = !dt /. float_of_int !runs in
            let mbps = 8.0 *. float_of_int size /. ns *. 1000.0 in
            Printf.printf "  %-22s %10.1f Mb/s (%d passes over the data)\n"
              name mbps
              (match name with "layered" -> layered.Ilp.passes | _ -> 1);
            mbps
          in
          let l = time "layered" (fun () -> Ilp.run_layered plan input) in
          let i =
            time "fused-interpreted" (fun () ->
                Ilp.run_fused_interpreted plan input)
          in
          let c = time "fused-compiled" (fun () -> Ilp.run_fused plan input) in
          Printf.printf
            "compiled = %.2fx layered, %.2fx interpreted; compiled dispatch: %b\n"
            (c /. l) (c /. i) fused.Ilp.compiled;
          List.iter
            (fun (kind, v) ->
              Printf.printf "checksum %s = 0x%08x\n"
                (Checksum.Kind.to_string kind)
                v)
            fused.Ilp.checksums;
          let cs = Ilp.plan_cache_stats () in
          Printf.printf
            "plan cache: %d entries, %d hits / %d misses this process\n"
            cs.Ilp.entries cs.Ilp.hits cs.Ilp.misses;
          Printf.printf "executors byte- and checksum-identical: %b\n" agree;
          if agree then `Ok ()
          else `Error (false, "executors disagree - this is a bug"))

let ilp_cmd =
  let plan =
    Arg.(
      value
      & opt string "xor:42,internet,copy"
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated stages: $(b,swab), $(b,xor:KEY[@POS]), \
             $(b,rc4:KEY), $(b,copy), or a checksum kind \
             ($(b,internet), $(b,fletcher16), $(b,fletcher32), \
             $(b,adler32), $(b,crc32)).")
  in
  let size =
    Arg.(
      value & opt int 262144
      & info [ "size" ] ~docv:"BYTES" ~doc:"Input buffer size.")
  in
  Cmd.v
    (Cmd.info "ilp"
       ~doc:
         "Compile a declarative manipulation plan and race the three \
          executors: layered passes, per-byte interpreted fusion, and the \
          word-at-a-time compiled loop (paper \\u{00a7}8).")
    Term.(ret (const run_ilp $ plan $ size))

(* --- marshal: fused presentation conversion on the send path --- *)

let run_marshal codec plan_spec records =
  let specs =
    String.split_on_char ',' plan_spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match
    List.fold_left
      (fun acc s ->
        match (acc, parse_stage s) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok stages, Ok st -> Ok (st :: stages))
      (Ok []) specs
  with
  | Error e -> `Error (true, e)
  | Ok rev_stages -> (
      let plan = List.rev rev_stages in
      let value =
        Wire.Value.List
          (List.init records (fun i ->
               Wire.Value.Record
                 [
                   ("seq", Wire.Value.Int i);
                   ("stamp", Wire.Value.Int64 (Int64.of_int (i * 1_000_003)));
                   ("tag", Wire.Value.Utf8 "sensor");
                   ("payload", Wire.Value.int_array [| i; i + 1; i + 2; i + 3 |]);
                 ]))
      in
      let source, encode =
        match codec with
        | "xdr" ->
            let schema = Wire.Xdr.schema_of_value value in
            ( Ilp.Marshal_xdr (schema, value),
              fun () -> Wire.Xdr.encode schema value )
        | _ -> (Ilp.Marshal_ber value, fun () -> Wire.Ber.encode value)
      in
      let n = Ilp.marshal_size source in
      match Ilp.run_marshal source plan with
      | exception Invalid_argument msg -> `Error (false, msg)
      | fused ->
          let serial = Ilp.run_layered plan (encode ()) in
          let agree =
            Bytebuf.equal fused.Ilp.output serial.Ilp.output
            && fused.Ilp.checksums = serial.Ilp.checksums
          in
          Printf.printf "codec: %s, %d records, %d bytes on the wire\n" codec
            records n;
          Printf.printf "plan: [%s]\n"
            (String.concat "; " (List.map Ilp.stage_name plan));
          let time name f =
            ignore (f ()) (* warm *);
            let t0 = Obs.Clock.now_ns () in
            let runs = ref 0 in
            let dt = ref 0.0 in
            while !dt < 5e7 do
              ignore (f ());
              incr runs;
              dt := Obs.Clock.now_ns () -. t0
            done;
            let ns = !dt /. float_of_int !runs in
            let mbps = 8.0 *. float_of_int n /. ns *. 1000.0 in
            Printf.printf "  %-38s %10.1f Mb/s (%d passes)\n" name mbps
              (match name with
              | "serial: encode; layered stages" -> 1 + serial.Ilp.passes
              | _ -> 1);
            mbps
          in
          let s =
            time "serial: encode; layered stages" (fun () ->
                Ilp.run_layered plan (encode ()))
          in
          let dst = Bytebuf.create n in
          let f =
            time "fused: marshal+stages, one pass" (fun () ->
                Ilp.run_marshal ~dst source plan)
          in
          Printf.printf "fused = %.2fx serial\n" (f /. s);
          List.iter
            (fun (kind, v) ->
              Printf.printf "checksum %s = 0x%08x\n"
                (Checksum.Kind.to_string kind)
                v)
            fused.Ilp.checksums;
          let cs = Ilp.plan_cache_stats () in
          Printf.printf
            "plan cache: %d entries, %d hits / %d misses this process\n"
            cs.Ilp.entries cs.Ilp.hits cs.Ilp.misses;
          Printf.printf "serial and fused byte- and checksum-identical: %b\n"
            agree;
          if agree then `Ok ()
          else `Error (false, "serial and fused disagree - this is a bug"))

let marshal_cmd =
  let codec =
    Arg.(
      value
      & opt (enum [ ("ber", "ber"); ("xdr", "xdr") ]) "ber"
      & info [ "codec" ] ~docv:"CODEC"
          ~doc:"Transfer syntax: $(b,ber) or $(b,xdr).")
  in
  let plan =
    Arg.(
      value
      & opt string "internet,copy"
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated stages applied to the encoded bytes as they \
             are produced: $(b,xor:KEY[@POS]), $(b,rc4:KEY), $(b,copy), or \
             a checksum kind ($(b,internet), $(b,fletcher16), \
             $(b,fletcher32), $(b,adler32), $(b,crc32)). $(b,swab) is \
             rejected: a marshalling source already fixes byte order.")
  in
  let records =
    Arg.(
      value & opt int 2048
      & info [ "records" ] ~docv:"N"
          ~doc:"Records in the sample telemetry value.")
  in
  Cmd.v
    (Cmd.info "marshal"
       ~doc:
         "Marshal a sample value with the stage plan fused into the \
          encoder - encode, checksum and cipher in one pass - and race it \
          against the serial encode-then-stages composition (paper \
          \\u{00a7}4's presentation conversion as an ILP stage).")
    Term.(ret (const run_marshal $ codec $ plan $ records))

(* --- metrics --- *)

let run_metrics opts size =
  (* Exercise each instrumented subsystem once — an ALF transfer feeding
     the two-stage receive path, a TCP transfer over the same impaired
     network, and the three ILP execution modes — then dump the whole
     registry as JSON. *)
  let engine = Engine.create () in
  let net = build_net opts engine in
  let data = Bytebuf.create size in
  Rng.fill_bytes (Rng.create ~seed:0xDA7AL) data;
  (* ALF: deliver through Stage2 so the ILP receive plan runs per ADU. *)
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let stage =
    Stage2.create
      ~plan:(fun _ -> Stage2.decrypt_verify ~key:0xA5A5L)
      ~deliver:(fun _ -> ())
      ()
  in
  let receiver =
    Alf_transport.receiver_io ~sched:(Netsim.Engine.sched engine) ~io:(Dgram.of_udp ub) ~port:7 ~stream:1
      ~deliver:(Stage2.deliver_fn stage) ()
  in
  ignore (Alf_transport.receiver_stats receiver);
  let sender =
    Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io:(Dgram.of_udp ua) ~peer:2 ~peer_port:7
      ~port:8 ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  List.iter (Alf_transport.send_adu sender)
    (Framing.frames_of_buffer ~stream:1 ~adu_size:4000 data);
  Alf_transport.close sender;
  Engine.run ~until:3600.0 engine;
  (* TCP over a fresh network with the same impairments. *)
  let engine2 = Engine.create () in
  let net2 = build_net opts engine2 in
  let tcp_s = Transport.Tcp.create ~engine:engine2 ~node:net2.Topology.a ~peer:2 () in
  let tcp_r = Transport.Tcp.create ~engine:engine2 ~node:net2.Topology.b ~peer:1 () in
  Transport.Tcp.on_deliver tcp_r (fun _ -> ());
  Transport.Tcp.send tcp_s data;
  Transport.Tcp.finish tcp_s;
  Engine.run ~until:3600.0 engine2;
  ignore (Transport.Tcp.stats tcp_s);
  (* The three ILP modes over one plan. *)
  let plan = Stage2.decrypt_verify ~key:0xA5A5L in
  let chunk = Bytebuf.take data (min size 65536) in
  ignore (Ilp.run_layered plan chunk);
  ignore (Ilp.run_fused_interpreted plan chunk);
  ignore (Ilp.run_fused plan chunk);
  (* One fused marshal round-trip so the ilp.marshal.* counters (plan
     cache traffic, bytes encoded/decoded) are live in the dump. *)
  let v = Wire.Value.Record [ ("n", Wire.Value.Int size) ] in
  let enc = Ilp.run_marshal (Ilp.Marshal_ber v) [ Ilp.Deliver_copy ] in
  ignore (Ilp.run_unmarshal [ Ilp.Deliver_copy ] Ilp.Unmarshal_ber enc.Ilp.output);
  (* And one compiled-schema round trip (twice, so the program cache
     registers a hit as well as a miss) plus a validate-view pass, so
     wire.schema.cache.* and ilp.view.* are live in the dump. *)
  let xs = Wire.Xdr.schema_of_value v in
  let xe = Ilp.run_marshal (Ilp.Marshal_xdr (xs, v)) [ Ilp.Deliver_copy ] in
  ignore (Ilp.run_marshal (Ilp.Marshal_xdr (xs, v)) [ Ilp.Deliver_copy ]);
  ignore
    (Ilp.run_view [ Ilp.Deliver_copy ] (Wire.Schema.prog_of_xdr xs)
       xe.Ilp.output);
  (* One sealed round trip through the AEAD record layer, a wrong-key
     open, and an epoch roll, so cipher.{sealed,opened,auth_fail,rekeys}
     are live in the dump. *)
  let rc_tx = Secure.Record.of_int64 0xC1B3EL in
  let rc_rx = Secure.Record.of_int64 0xC1B3EL in
  let adu = Adu.make (Adu.name ~stream:9 ~index:0 ()) (Wire.Ber.encode v) in
  let sealed = Secure.Record.seal_adu rc_tx adu in
  ignore (Secure.Record.open_adu rc_rx sealed);
  ignore (Secure.Record.open_adu (Secure.Record.of_int64 0xBAD0L) sealed);
  Secure.Record.rekey rc_tx;
  ignore
    (Secure.Record.open_adu rc_rx
       (Secure.Record.seal_adu rc_tx
          (Adu.make (Adu.name ~stream:9 ~index:1 ()) (Wire.Ber.encode v))));
  (* The serve engine's adversarial-ingress surface: a small sharded
     server under mixed honest and byzantine load on the default
     registry, so serve.shard*.{arrivals,drop.*}, serve.drop.* and
     serve.load_state all appear in the dump with live values. *)
  let module Sv = Alf_serve.Server in
  let module Lg = Alf_serve.Loadgen in
  let module Hs = Alf_chaos.Hostile in
  let engine3 = Engine.create () in
  let rng3 = Rng.create ~seed:0x5E12EL in
  let net3 =
    Topology.point_to_point ~engine:engine3 ~rng:rng3 ~impair:Impair.none
      ~queue_limit:1_000_000 ~bandwidth_bps:1e9 ~delay:1e-4 ~a:1 ~b:2 ()
  in
  let ua3 = Transport.Udp.create ~engine:engine3 ~node:net3.Topology.a () in
  let ub3 = Transport.Udp.create ~engine:engine3 ~node:net3.Topology.b () in
  let server =
    Sv.create ~sched:(Engine.sched engine3) ~io:(Dgram.of_udp ub3) ()
  in
  let gen =
    Lg.create ~io:(Dgram.of_udp ua3)
      {
        Lg.default_config with
        Lg.sessions = 200;
        adus_per_session = 2;
        payload_len = 64;
        server = 2;
      }
  in
  let hclient =
    Hs.create ~io:(Dgram.of_udp ua3)
      { Hs.default_config with Hs.server = 2; payload_len = 64 }
  in
  let rounds = ref 0 in
  while (not (Lg.finished gen)) && !rounds < 200 do
    incr rounds;
    let sent = Lg.step gen ~budget:256 in
    ignore (Hs.step hclient ~budget:96);
    Engine.run ~until:(Engine.now engine3 +. 0.005) ~max_events:1_000_000
      engine3;
    Sv.pump server;
    Engine.run ~until:(Engine.now engine3 +. 0.005) ~max_events:1_000_000
      engine3;
    if sent = 0 && not (Lg.finished gen) then begin
      Sv.harvest server;
      Engine.run ~until:(Engine.now engine3 +. 0.05) ~max_events:1_000_000
        engine3;
      Sv.pump server;
      Lg.nudge gen
    end
  done;
  Sv.pump server;
  Sv.stop server;
  print_endline (Obs.Json.to_string_pretty (Obs.Registry.to_json ()));
  `Ok ()

let metrics_cmd =
  let size =
    Arg.(value & opt int 200_000 & info [ "size" ] ~docv:"BYTES" ~doc:"Bytes to transfer.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a small instrumented workload and dump the metrics registry as JSON.")
    Term.(ret (const run_metrics $ net_opts_term $ size))

(* --- soak --- *)

let run_soak smoke seed out =
  let module Soak = Alf_chaos.Soak in
  let outcomes = Soak.run_matrix ~smoke ~seed:(Int64.of_int seed) () in
  List.iter (fun o -> Format.printf "%a@." Soak.pp_outcome o) outcomes;
  Soak.write_json out outcomes;
  let failed = List.filter (fun o -> not (Soak.ok o)) outcomes in
  Format.printf "soak: %d/%d cases ok -> %s@."
    (List.length outcomes - List.length failed)
    (List.length outcomes) out;
  if failed = [] then `Ok ()
  else
    `Error
      ( false,
        Printf.sprintf "%d soak case(s) violated invariants (see %s)"
          (List.length failed) out )

let soak_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Tier-1 subset: hostile impairment only, small ADUs.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Root RNG seed; the same seed reproduces the same report byte for byte.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_soak.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Sweep impairment x recovery-policy x FEC (plus sender-kill, outage \
          and burst fault plans) and check the robustness invariants: \
          quiescence, delivered-or-gone accounting, byte-exact delivery, \
          zero retransmission footprint, counter consistency, and stage-1 \
          corruption filtering.")
    Term.(ret (const run_soak $ smoke $ seed $ out))

(* --- udp: the transport over real sockets --- *)

(* One fused-send workload shared by the loopback stream and its netsim
   twin: identical ADUs (one BER int-array value), identical transport
   parameters, so the BENCH_udp.json rows differ only in what carries the
   datagrams. *)
let udp_workload_value =
  Wire.Value.int_array (Array.init 256 (fun i -> i * 131))

type stream_report = {
  sr_adus : int;
  sr_payload_bytes : int;
  sr_mbps : float;
  sr_steady_allocs : int;  (* Bytebufs created inside the steady window *)
  sr_measured : int;  (* ADUs inside the steady window *)
  sr_delivered : int;
  sr_mismatches : int;
  sr_complete : bool;
  sr_finished : bool;
  sr_pending_timers : int;
  sr_send_dropped : int;
}

(* Stream [adus] fused-send ADUs sender->receiver over one loopback
   [Rt.Udp_link]. The feeder paces itself: up to 32 ADUs per 1 ms timer
   tick, far below what the (drained-every-wakeup) socket buffer absorbs.
   After [warmup] deliveries the Bytebuf creation counter and the wall
   clock are snapshotted; the window closes when the last ADU arrives,
   before CLOSE/DONE (which allocate control datagrams) go out. *)
let run_udp_stream ~adus () =
  let loop = Rt.Loop.create () in
  let sched = Rt.Loop.sched loop in
  let rx_pool = Pool.create ~buf_size:2048 () in
  let link = Rt.Udp_link.create ~loop ~pool:rx_pool () in
  let io = Dgram.of_rt link in
  let v = udp_workload_value in
  let source = Ilp.Marshal_ber v in
  let payload_bytes = Ilp.marshal_size source in
  let expected = Bytebuf.to_string (Wire.Ber.encode v) in
  let delivered = ref 0 and mismatches = ref 0 in
  let reasm_pool = Pool.create ~buf_size:2048 () in
  let receiver =
    Alf_transport.receiver_io ~sched ~io ~port:9000 ~stream:1 ~reasm_pool
      ~deliver:(fun adu ->
        incr delivered;
        if Bytebuf.to_string adu.Adu.payload <> expected then incr mismatches)
      ()
  in
  let tx_pool = Pool.create ~buf_size:2048 () in
  let peer = Rt.Udp_link.local_addr link ~port:9000 in
  (* Recovery by recompute: allocation-free unless a datagram actually
     vanishes (loopback: it does not), unlike Transport_buffer which
     retains a copy of every ADU and would break the zero-alloc gate. *)
  let policy =
    Recovery.App_recompute
      (fun i ->
        Some
          (Adu.encode
             (Adu.make (Adu.name ~stream:1 ~index:i ()) (Wire.Ber.encode v))))
  in
  let sender =
    Alf_transport.sender_io ~sched ~io ~peer ~peer_port:9000 ~port:9001
      ~stream:1 ~policy ~tx_pool ()
  in
  let warmup = max 64 (min 256 (adus / 4)) in
  let sent = ref 0 in
  let rec feeder () =
    let n = min 32 (adus - !sent) in
    for _ = 1 to n do
      Alf_transport.send_value sender
        ~name:(Adu.name ~stream:1 ~index:!sent ())
        source;
      incr sent
    done;
    if !sent < adus then ignore (Rt.Sched.schedule_after sched 0.001 feeder)
  in
  feeder ();
  ignore (Rt.Loop.run_until loop ~timeout:30.0 (fun () -> !delivered >= warmup));
  let alloc0 = Bytebuf.created_total () in
  let t0 = Unix.gettimeofday () in
  ignore (Rt.Loop.run_until loop ~timeout:120.0 (fun () -> !delivered >= adus));
  let t1 = Unix.gettimeofday () in
  let alloc1 = Bytebuf.created_total () in
  Alf_transport.close sender;
  ignore
    (Rt.Loop.run_until loop ~timeout:10.0 (fun () ->
         Alf_transport.finished sender && Alf_transport.complete receiver));
  Rt.Loop.run_for loop 0.02;
  let measured = !delivered - warmup in
  let mbps =
    if t1 > t0 && measured > 0 then
      float_of_int (measured * payload_bytes) *. 8.0 /. (t1 -. t0) /. 1e6
    else 0.0
  in
  let report =
    {
      sr_adus = adus;
      sr_payload_bytes = payload_bytes;
      sr_mbps = mbps;
      sr_steady_allocs = alloc1 - alloc0;
      sr_measured = measured;
      sr_delivered = !delivered;
      sr_mismatches = !mismatches;
      sr_complete = Alf_transport.complete receiver;
      sr_finished = Alf_transport.finished sender;
      sr_pending_timers = Rt.Loop.pending_timers loop;
      sr_send_dropped = (Rt.Udp_link.stats link).Rt.Udp_link.send_dropped;
    }
  in
  Rt.Udp_link.close link;
  report

(* The same workload through the simulator, timed on the wall clock:
   what a virtual wire costs per byte vs a real one. *)
let run_netsim_stream ~adus () =
  let engine = Engine.create () in
  let sched = Netsim.Engine.sched engine in
  let rng = Rng.create ~seed:42L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:Impair.none ~queue_limit:4096
      ~bandwidth_bps:1e9 ~delay:1e-4 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let v = udp_workload_value in
  let source = Ilp.Marshal_ber v in
  let payload_bytes = Ilp.marshal_size source in
  let delivered = ref 0 in
  let reasm_pool = Pool.create ~buf_size:2048 () in
  let _receiver =
    Alf_transport.receiver ~sched ~udp:ub ~port:9000 ~stream:1 ~reasm_pool
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  let tx_pool = Pool.create ~buf_size:2048 () in
  let sender =
    Alf_transport.sender ~sched ~udp:ua ~peer:2 ~peer_port:9000 ~port:9001
      ~stream:1 ~policy:Recovery.No_recovery ~tx_pool ()
  in
  let t0 = Unix.gettimeofday () in
  for i = 0 to adus - 1 do
    Alf_transport.send_value sender ~name:(Adu.name ~stream:1 ~index:i ()) source;
    (* drain between sends, as a live wire would *)
    Engine.run ~until:(Engine.now engine +. 0.001) ~max_events:100_000 engine
  done;
  Alf_transport.close sender;
  Engine.run ~until:(Engine.now engine +. 60.0) ~max_events:20_000_000 engine;
  let t1 = Unix.gettimeofday () in
  let mbps =
    if t1 > t0 then
      float_of_int (!delivered * payload_bytes) *. 8.0 /. (t1 -. t0) /. 1e6
    else 0.0
  in
  (mbps, !delivered, payload_bytes)

let stream_ok r =
  r.sr_mismatches = 0
  && r.sr_delivered = r.sr_adus
  && r.sr_complete && r.sr_finished
  && r.sr_steady_allocs = 0
  && r.sr_pending_timers = 0

let pp_stream_report ppf r =
  Format.fprintf ppf
    "udp stream: %d ADUs x %dB  %.1f Mb/s  steady allocs %d/%d ADUs  \
     delivered %d  mismatches %d  complete %b finished %b  pending timers %d  \
     send_dropped %d"
    r.sr_adus r.sr_payload_bytes r.sr_mbps r.sr_steady_allocs r.sr_measured
    r.sr_delivered r.sr_mismatches r.sr_complete r.sr_finished
    r.sr_pending_timers r.sr_send_dropped

let run_udp_selftest adus =
  let r = run_udp_stream ~adus () in
  Format.printf "%a@." pp_stream_report r;
  if stream_ok r then begin
    Format.printf "udp selftest: OK (delivered+gone = sent, zero steady-state \
                   Bytebuf allocations)@.";
    `Ok ()
  end
  else `Error (false, "udp selftest failed (see report line above)")

let run_udp_bench adus out =
  let r = run_udp_stream ~adus () in
  Format.printf "%a@." pp_stream_report r;
  let sim_mbps, sim_delivered, payload_bytes = run_netsim_stream ~adus () in
  Format.printf "netsim stream: %d ADUs x %dB  %.1f Mb/s@." sim_delivered
    payload_bytes sim_mbps;
  let i = Obs.Json.num_of_int in
  let rows =
    Obs.Json.Arr
      [
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str "udp/fused-send");
            ("mbps", Obs.Json.Num r.sr_mbps);
            ("adus", i r.sr_adus);
            ("payload_bytes", i r.sr_payload_bytes);
            ( "steady_allocs_per_adu",
              Obs.Json.Num
                (if r.sr_measured = 0 then nan
                 else float_of_int r.sr_steady_allocs /. float_of_int r.sr_measured) );
            ("ok", Obs.Json.Bool (stream_ok r));
          ];
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str "netsim/fused-send");
            ("mbps", Obs.Json.Num sim_mbps);
            ("adus", i sim_delivered);
            ("payload_bytes", i payload_bytes);
          ];
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Json.to_string_pretty rows);
  output_char oc '\n';
  close_out oc;
  Format.printf "udp bench -> %s@." out;
  if stream_ok r then `Ok ()
  else `Error (false, "udp stream violated its invariants (see report line)")

let run_udp_soak smoke seed out =
  let module Soak = Alf_chaos.Soak in
  let outcomes = Soak.run_udp_matrix ~smoke ~seed:(Int64.of_int seed) () in
  List.iter (fun o -> Format.printf "%a@." Soak.pp_outcome o) outcomes;
  Soak.write_json out outcomes;
  let failed = List.filter (fun o -> not (Soak.ok o)) outcomes in
  Format.printf "udp soak: %d/%d cases ok -> %s@."
    (List.length outcomes - List.length failed)
    (List.length outcomes) out;
  if failed = [] then `Ok ()
  else
    `Error
      ( false,
        Printf.sprintf "%d udp soak case(s) violated invariants (see %s)"
          (List.length failed) out )

let udp_cmd =
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:"Race the loopback stream against its netsim twin and write \
                the two fused-send rows to $(docv).")
  in
  let soak =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:"Run the real-socket soak matrix (loss, corruption and a \
                sender kill at the datagram seam) instead of the selftest.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"With $(b,--soak): the three-case tier-1 subset.")
  in
  let adus =
    Arg.(
      value & opt int 10_000
      & info [ "adus" ] ~docv:"N" ~doc:"ADUs to stream (selftest and bench).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Root RNG seed for $(b,--soak).")
  in
  let out =
    Arg.(
      value & opt string "BENCH_udp.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let run bench soak smoke adus seed out =
    if adus < 512 then `Error (false, "--adus must be at least 512 (warmup)")
    else if bench then run_udp_bench adus out
    else if soak then run_udp_soak smoke seed out
    else run_udp_selftest adus
  in
  Cmd.v
    (Cmd.info "udp"
       ~doc:
         "Run the ALF transport over real loopback UDP sockets (the Rt \
          event loop): a zero-allocation streaming selftest by default, a \
          netsim-vs-real-socket bench with $(b,--bench), or the soak matrix \
          on real sockets with $(b,--soak). Needs no privileges: everything \
          stays on 127.0.0.1.")
    Term.(ret (const run $ bench $ soak $ smoke $ adus $ seed $ out))

(* --- secure: the fused AEAD record layer (E20) from the CLI --- *)

(* The E15/E19 presentation-heavy shape at a CLI-friendly size — the same
   regime bench/main.ml's E20 measures, so the --bench ratios are directly
   comparable with the secure-record/* rows in BENCH_ilp.json. *)
let secure_workload () =
  let value =
    Wire.Value.List
      (List.init 1024 (fun i ->
           Wire.Value.Record
             [
               ("seq", Wire.Value.Int i);
               ("stamp", Wire.Value.Int64 (Int64.of_int (i * 1_000_003)));
               ("tag", Wire.Value.Utf8 "sensor");
               ("payload", Wire.Value.int_array [| i; i + 1; i + 2; i + 3 |]);
             ]))
  in
  let schema = Wire.Xdr.schema_of_value value in
  let source = Ilp.Marshal_xdr (schema, value) in
  let n = Ilp.marshal_size source in
  let rc = Secure.Record.of_int64 0x5EC0BE7CA57L in
  let name = Adu.name ~dest_off:0 ~dest_len:n ~stream:1 ~index:0 () in
  let _, p = Secure.Record.seal_params rc name in
  (* One immutable AAD copy so every row MACs identical bytes without
     touching the record handle's scratch inside the timed loops. *)
  let aad = Bytebuf.create (Bytebuf.length p.Ilp.aead_aad) in
  Bytebuf.blit ~src:p.Ilp.aead_aad ~src_pos:0 ~dst:aad ~dst_pos:0
    ~len:(Bytebuf.length aad);
  (source, n, { p with Ilp.aead_aad = aad })

let secure_tx_plan p =
  [ Ilp.Aead_seal p; Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ]

(* The fused one-walk open: framing CRC, Poly1305 and the ChaCha20
   decrypt ride one word loop over the sealed frame, in place. *)
let secure_open_fused p dst n =
  let a =
    Cipher.Aead.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
      ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad:p.Ilp.aead_aad
  in
  let bytes, base, _ = Bytebuf.backing dst in
  let st = ref Checksum.Crc32.init in
  let i = ref 0 in
  while !i + 8 <= n do
    let w = Bytes.get_int64_le bytes (base + !i) in
    st := Checksum.Crc32.feed_word64le !st w;
    Bytes.set_int64_le bytes (base + !i) (Cipher.Aead.open_word a !i w);
    i := !i + 8
  done;
  while !i < n do
    let b = Char.code (Bytes.unsafe_get bytes (base + !i)) in
    st := Checksum.Crc32.feed_byte !st b;
    Bytes.unsafe_set bytes (base + !i)
      (Char.unsafe_chr (Cipher.Aead.open_byte a !i b));
    incr i
  done;
  ignore (Checksum.Crc32.finish !st);
  ignore (Cipher.Aead.tag a)

(* Steady-state Bytebuf deltas for the fused seal (tx) and the fused
   one-walk open (rx) — the acceptance gate's created_total check, run
   directly so the CLI can vouch for it without the bench harness. *)
let secure_alloc_gate () =
  let source, n, p = secure_workload () in
  let dst = Bytebuf.create n in
  let plan = secure_tx_plan p in
  ignore (Ilp.run_marshal ~dst source plan);
  let a0 = Bytebuf.created_total () in
  for _ = 1 to 50 do
    ignore (Ilp.run_marshal ~dst source plan)
  done;
  let tx = Bytebuf.created_total () - a0 in
  (* A sealed frame to re-open, restored after every round so each open
     sees the same ciphertext. *)
  ignore (Ilp.run_marshal ~dst source []);
  ignore
    (Cipher.Aead.seal_in_place ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
       ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad:p.Ilp.aead_aad dst);
  let ct_copy = Bytebuf.create n in
  Bytebuf.blit ~src:dst ~src_pos:0 ~dst:ct_copy ~dst_pos:0 ~len:n;
  let open_once () =
    secure_open_fused p dst n;
    Bytebuf.blit ~src:ct_copy ~src_pos:0 ~dst ~dst_pos:0 ~len:n
  in
  open_once ();
  let b0 = Bytebuf.created_total () in
  for _ = 1 to 50 do
    open_once ()
  done;
  let rx = Bytebuf.created_total () - b0 in
  (tx, rx)

let run_secure_selftest smoke seed =
  let module Soak = Alf_chaos.Soak in
  let seed = Int64.of_int seed in
  let secure_only = List.filter (fun c -> c.Soak.secure) in
  let sim_cases = secure_only (Soak.matrix ~smoke ~seed ()) in
  let udp_cases = secure_only (Soak.udp_matrix ~smoke ~seed ()) in
  Format.printf "netsim: %d secure soak case(s)@." (List.length sim_cases);
  let sim = List.map Soak.run sim_cases in
  List.iter (fun o -> Format.printf "%a@." Soak.pp_outcome o) sim;
  Format.printf "udp: %d secure soak case(s)@." (List.length udp_cases);
  let udp = List.map Soak.run_udp udp_cases in
  List.iter (fun o -> Format.printf "%a@." Soak.pp_outcome o) udp;
  let tx_allocs, rx_allocs = secure_alloc_gate () in
  Format.printf
    "steady-state Bytebuf allocs over 50 rounds: tx %d, rx %d (gate 0)@."
    tx_allocs rx_allocs;
  let bad = List.filter (fun o -> not (Soak.ok o)) (sim @ udp) in
  if bad = [] && tx_allocs = 0 && rx_allocs = 0 then begin
    Format.printf
      "secure selftest ok: rekey under loss absorbed and tag corruption \
       counted on both backends, zero steady-state allocations@.";
    `Ok ()
  end
  else if bad <> [] then
    `Error
      ( false,
        Printf.sprintf "%d secure soak case(s) violated invariants"
          (List.length bad) )
  else
    `Error
      ( false,
        Printf.sprintf "steady-state Bytebuf allocations: tx %d rx %d (want 0)"
          tx_allocs rx_allocs )

let run_secure_bench out =
  let source, n, p = secure_workload () in
  let dst = Bytebuf.create n in
  let aad = p.Ilp.aead_aad in
  let time f =
    f ();
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let stop = t0 +. 0.2 in
    while Unix.gettimeofday () < stop do
      f ();
      incr iters
    done;
    float_of_int (n * !iters) *. 8.0 /. ((Unix.gettimeofday () -. t0) *. 1e6)
  in
  (* The serial baseline: the layered reference stack — presentation
     encodes into its own PDU, the security layer copies and runs
     encrypt-then-MAC byte by byte, framing copies again and checksums
     byte by byte (the same byte-grain composition E20's serial row and
     the E2/E14 interpreted ablations measure). *)
  let serial =
    time (fun () ->
        let enc = (Ilp.run_marshal source []).Ilp.output in
        let ct = Bytebuf.copy enc in
        let a =
          Cipher.Aead.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad
        in
        let bytes, base, len = Bytebuf.backing ct in
        for i = 0 to len - 1 do
          Bytes.unsafe_set bytes (base + i)
            (Char.unsafe_chr
               (Cipher.Aead.seal_byte a i
                  (Char.code (Bytes.unsafe_get bytes (base + i)))))
        done;
        ignore (Cipher.Aead.tag a);
        let frame = Bytebuf.copy ct in
        let fb, fbase, _ = Bytebuf.backing frame in
        let st = ref Checksum.Crc32.init in
        for i = 0 to len - 1 do
          st :=
            Checksum.Crc32.feed_byte !st
              (Char.code (Bytes.unsafe_get fb (fbase + i)))
        done;
        ignore (Checksum.Crc32.finish !st))
  in
  let fused =
    time (fun () -> ignore (Ilp.run_marshal ~dst source (secure_tx_plan p)))
  in
  (* Receive: seal a frame once, then race the layered byte-grain open
     (CRC pass + copy, MAC pass, decrypt pass) against the one-walk
     fused open. *)
  let sealed = Bytebuf.create n in
  ignore (Ilp.run_marshal ~dst:sealed source []);
  ignore
    (Cipher.Aead.seal_in_place ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
       ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad sealed);
  let ct_copy = Bytebuf.create n in
  Bytebuf.blit ~src:sealed ~src_pos:0 ~dst:ct_copy ~dst_pos:0 ~len:n;
  let open_serial =
    time (fun () ->
        let bytes, base, len = Bytebuf.backing sealed in
        let st = ref Checksum.Crc32.init in
        for i = 0 to len - 1 do
          st :=
            Checksum.Crc32.feed_byte !st
              (Char.code (Bytes.unsafe_get bytes (base + i)))
        done;
        ignore (Checksum.Crc32.finish !st);
        let ct = Bytebuf.copy sealed in
        let cb, cbase, _ = Bytebuf.backing ct in
        let ks =
          Cipher.Chacha20.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2
        in
        let k0, k1, k2, k3 = Cipher.Chacha20.poly_key ks in
        let mac = Cipher.Poly1305.create ~k0 ~k1 ~k2 ~k3 in
        Cipher.Poly1305.feed_sub mac aad;
        Cipher.Poly1305.pad16 mac;
        for i = 0 to len - 1 do
          Cipher.Poly1305.feed_byte mac
            (Char.code (Bytes.unsafe_get cb (cbase + i)))
        done;
        Cipher.Poly1305.pad16 mac;
        Cipher.Poly1305.feed_word64 mac (Int64.of_int (Bytebuf.length aad));
        Cipher.Poly1305.feed_word64 mac (Int64.of_int n);
        ignore (Cipher.Poly1305.finish mac);
        for i = 0 to len - 1 do
          Bytes.unsafe_set cb (cbase + i)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get cb (cbase + i))
               lxor Cipher.Chacha20.byte_at ks i))
        done)
  in
  let open_fused =
    time (fun () ->
        secure_open_fused p sealed n;
        Bytebuf.blit ~src:ct_copy ~src_pos:0 ~dst:sealed ~dst_pos:0 ~len:n)
  in
  let tx_allocs, rx_allocs = secure_alloc_gate () in
  let tx_ratio = fused /. serial and rx_ratio = open_fused /. open_serial in
  Format.printf "secure bench (xdr, %d bytes on the wire)@." n;
  Format.printf "  serial: layered stack, byte grain     %8.1f Mb/s@." serial;
  Format.printf "  fused: marshal+seal+CRC, one pass     %8.1f Mb/s  (%.2fx)@."
    fused tx_ratio;
  Format.printf "  rx serial: byte-grain CRC;MAC;decrypt %8.1f Mb/s@."
    open_serial;
  Format.printf "  rx fused: CRC+MAC+decrypt, one walk   %8.1f Mb/s  (%.2fx)@."
    open_fused rx_ratio;
  Format.printf "  steady-state Bytebuf allocs: tx %d, rx %d@." tx_allocs
    rx_allocs;
  let ok =
    tx_ratio >= 1.5 && rx_ratio >= 1.3 && tx_allocs = 0 && rx_allocs = 0
  in
  let rows =
    Obs.Json.Arr
      [
        Obs.Json.Obj
          [ ("name", Obs.Json.Str "secure/xdr/serial"); ("mbps", Obs.Json.Num serial) ];
        Obs.Json.Obj
          [ ("name", Obs.Json.Str "secure/xdr/fused"); ("mbps", Obs.Json.Num fused) ];
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str "secure/xdr/open-serial");
            ("mbps", Obs.Json.Num open_serial);
          ];
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str "secure/xdr/open-fused");
            ("mbps", Obs.Json.Num open_fused);
          ];
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str "secure/gate");
            ("steady_allocs", Obs.Json.Num (float_of_int tx_allocs));
            ("rx_steady_allocs", Obs.Json.Num (float_of_int rx_allocs));
            ("ok", Obs.Json.Bool ok);
          ];
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Json.to_string_pretty rows);
  output_char oc '\n';
  close_out oc;
  Format.printf "secure bench -> %s@." out;
  if ok then `Ok ()
  else
    `Error
      ( false,
        Printf.sprintf
          "secure record gate failed: tx %.2fx (floor 1.5), rx %.2fx (floor \
           1.3), allocs tx %d rx %d (want 0)"
          tx_ratio rx_ratio tx_allocs rx_allocs )

let secure_cmd =
  let selftest =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:
            "Run the secure soak cases on both backends plus the zero-alloc \
             gate (the default).")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Race the fused single-pass seal/open against the layered \
             byte-grain composition and write the rows to $(docv).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"With the selftest: the tier-1 soak subsets.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Root RNG seed for the soak cases.")
  in
  let out =
    Arg.(
      value & opt string "BENCH_secure.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let run selftest bench smoke seed out =
    ignore selftest;
    if bench then run_secure_bench out else run_secure_selftest smoke seed
  in
  Cmd.v
    (Cmd.info "secure"
       ~doc:
         "Exercise the fused AEAD record layer: by default the secure soak \
          cases (mid-stream rekey under loss, tag-targeted corruption) on \
          both the simulator and real loopback UDP plus the zero-allocation \
          steady-state gate; $(b,--bench) races the one-pass \
          marshal+ChaCha20+Poly1305+CRC-32 seal (and the one-walk open) \
          against the layered byte-grain reference stack.")
    Term.(ret (const run $ selftest $ bench $ smoke $ seed $ out))

(* --- serve: the sharded many-session engine under a load generator --- *)

module Serve = Alf_serve.Server
module Loadgen = Alf_serve.Loadgen
module Ingress = Alf_serve.Ingress
module Hostile = Alf_chaos.Hostile

type serve_report = {
  sv_backend : string;
  sv_sessions : int;
  sv_adus : int;  (* per session *)
  sv_shards : int;
  sv_domains : int;
  sv_payload : int;
  sv_wall_s : float;
  sv_adus_per_s : float;
  sv_mbps : float;
  sv_peak_live : int;
  sv_done : int;
  sv_delivered : int;
  sv_gone : int;
  sv_arrivals : int;
  sv_dropped : int;
  sv_steady_allocs : int;  (* data-pool allocations inside the window *)
  sv_fallback_allocs : int;
  sv_max_ahead : int;
  sv_counter_sum_ok : bool;
  sv_finished : bool;
}

let serve_ok r =
  r.sv_finished
  && r.sv_done = r.sv_sessions
  && r.sv_delivered + r.sv_gone = r.sv_sessions * r.sv_adus
  && r.sv_peak_live >= r.sv_sessions
  && r.sv_steady_allocs = 0
  && r.sv_fallback_allocs = 0
  && r.sv_counter_sum_ok

let pp_serve_report ppf r =
  Format.fprintf ppf
    "serve/%s: %d sessions x %d ADUs x %dB  %d shards/%d domains  %.2fs  \
     %.0f ADU/s  %.1f Mb/s  peak live %d  done %d  delivered %d  gone %d  \
     dropped %d  steady allocs %d  fallback %d  max ahead %d  obs sums %b  \
     finished %b"
    r.sv_backend r.sv_sessions r.sv_adus r.sv_payload r.sv_shards r.sv_domains
    r.sv_wall_s r.sv_adus_per_s r.sv_mbps r.sv_peak_live r.sv_done
    r.sv_delivered r.sv_gone r.sv_dropped r.sv_steady_allocs
    r.sv_fallback_allocs r.sv_max_ahead r.sv_counter_sum_ok r.sv_finished

(* Cross-check the Obs wiring: the per-shard registry counters, summed,
   must reproduce the engine's programmatic totals. *)
let obs_sums_match registry server =
  let totals = Serve.totals server in
  let sum name =
    let acc = ref 0 in
    for sid = 0 to Serve.shard_count server - 1 do
      match
        Obs.Registry.find ~registry (Printf.sprintf "serve.shard%d.%s" sid name)
      with
      | Some (Obs.Registry.Counter c) -> acc := !acc + Obs.Counter.value c
      | _ -> ()
    done;
    !acc
  in
  sum "delivered" = totals.Serve.delivered
  && sum "datagrams" = totals.Serve.datagrams
  && sum "dones" = totals.Serve.dones
  && sum "admitted" = totals.Serve.admitted
  && sum "arrivals" = totals.Serve.arrivals
  && sum "accepted" = totals.Serve.accepted
  && Array.for_all Fun.id
       (Array.mapi
          (fun i r ->
            sum ("drop." ^ Ingress.reason_name r) = totals.Serve.drops.(i))
          Ingress.all_reasons)

(* The common driver skeleton: [emit] pushes a bounded batch of loadgen
   datagrams, [turn] lets the backend carry them (and the replies), pump
   processes, and the steady-allocation window covers the second half of
   the data phase — every staging/reassembly pool is warm by then, and
   the control pool's own warm-up (DONEs, repair NACKs) starts only at
   the CLOSE round, after the window has closed. *)
let drive_serve ~backend ~sessions ~adus ~payload ~shards ~domains ~budget
    ?(hostile : Hostile.t option) ?(hostile_budget = 0) ?(load_hw = ref 0)
    ~(turn : unit -> unit) ~(gen : Loadgen.t) ~(server : Serve.t) ~registry
    ~max_rounds () =
  let data_emissions = sessions * adus in
  let half_data = data_emissions / 2 in
  let window_base = ref None
  and window_closed = ref false
  and window_allocs = ref 0 in
  let emitted = ref 0 in
  let peak_live = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rounds = ref 0 in
  let stalls = ref 0 in
  while (not (Loadgen.finished gen)) && !rounds < max_rounds do
    incr rounds;
    let sent = Loadgen.step gen ~budget in
    (match hostile with
    | Some h -> ignore (Hostile.step h ~budget:hostile_budget)
    | None -> ());
    emitted := !emitted + sent;
    (match !window_base with
    | None when !emitted >= half_data && !emitted < data_emissions ->
        window_base := Some (Serve.data_pool_allocated server)
    | Some base when (not !window_closed) && !emitted >= data_emissions ->
        window_allocs := Serve.data_pool_allocated server - base;
        window_closed := true
    | _ -> ());
    turn ();
    Serve.pump server;
    turn ();
    let li = Serve.load_state_index (Serve.load_state server) in
    if li > !load_hw then load_hw := li;
    let live = Serve.live_sessions server in
    if live > !peak_live then peak_live := live;
    if sent = 0 && not (Loadgen.finished gen) then begin
      incr stalls;
      (* Lost CLOSEs or DONEs: harvest runs the repair schedule, nudge
         re-CLOSEs, and the next rounds carry the retries. *)
      Serve.harvest server;
      turn ();
      Serve.pump server;
      turn ();
      if !stalls mod 3 = 0 then Loadgen.nudge gen
    end
  done;
  (* Settle: carry anything still in flight and process what is staged,
     so the conservation check (arrivals = accepted + drops once the
     queues drain) sees an empty inbox. *)
  turn ();
  Serve.pump server;
  let wall = Unix.gettimeofday () -. t0 in
  let totals = Serve.totals server in
  let gstats = Loadgen.stats gen in
  let delivered = totals.Serve.delivered in
  let adus_per_s = if wall > 0. then float_of_int delivered /. wall else 0. in
  let mbps =
    if wall > 0. then
      float_of_int totals.Serve.delivered_bytes *. 8.0 /. wall /. 1e6
    else 0.
  in
  {
    sv_backend = backend;
    sv_sessions = sessions;
    sv_adus = adus;
    sv_shards = shards;
    sv_domains = domains;
    sv_payload = payload;
    sv_wall_s = wall;
    sv_adus_per_s = adus_per_s;
    sv_mbps = mbps;
    sv_peak_live = !peak_live;
    sv_done = Loadgen.done_count gen;
    sv_delivered = delivered;
    sv_gone = totals.Serve.gone + totals.Serve.gone_local;
    sv_arrivals = totals.Serve.arrivals;
    sv_dropped = totals.Serve.dropped + gstats.Loadgen.send_failed;
    sv_steady_allocs = !window_allocs;
    sv_fallback_allocs = totals.Serve.fallback_allocs;
    sv_max_ahead = Serve.max_ahead_load server;
    sv_counter_sum_ok = obs_sums_match registry server;
    sv_finished = Loadgen.finished gen;
  }

(* --- hostile mode: the byzantine client mixed into the drive --- *)

let hostile_base_port = 40_000

(* Under byzantine load the engine totals include hostile deliveries, so
   honest sessions are accounted exactly through the [on_complete] hook:
   the first completion of each honest session (keyed back to its loadgen
   index) contributes its delivered/gone split once — a completed session
   evicted and later re-driven to completion by the repair path would
   otherwise double-count. The hook fires on worker domains; the mutex
   makes it domain-safe. *)
type honest_acct = {
  ha_mu : Mutex.t;
  ha_seen : Bytes.t;
  mutable ha_completions : int;
  mutable ha_delivered_gone : int;
}

let honest_acct ~sessions =
  {
    ha_mu = Mutex.create ();
    ha_seen = Bytes.make sessions '\000';
    ha_completions = 0;
    ha_delivered_gone = 0;
  }

let record_honest acct k ~delivered ~gone =
  let base = Loadgen.default_config.Loadgen.base_port
  and spp = Loadgen.default_config.Loadgen.streams_per_port in
  if k.Serve.peer_port >= base && k.Serve.peer_port < hostile_base_port then begin
    let idx = ((k.Serve.peer_port - base) * spp) + k.Serve.stream - 1 in
    if idx >= 0 && idx < Bytes.length acct.ha_seen then begin
      Mutex.lock acct.ha_mu;
      if Bytes.get acct.ha_seen idx = '\000' then begin
        Bytes.set acct.ha_seen idx '\001';
        acct.ha_completions <- acct.ha_completions + 1;
        acct.ha_delivered_gone <- acct.ha_delivered_gone + delivered + gone
      end;
      Mutex.unlock acct.ha_mu
    end
  end

type hostile_extras = {
  hx_sent : int;
  hx_send_failed : int;
  hx_malformed : int;  (* bad-bytes datagrams injected *)
  hx_wellformed : int;  (* valid-bytes abuse injected *)
  hx_replies : int;
  hx_ratio : float;  (* hostile share of all datagrams sent *)
  hx_malformed_drops : int;
  hx_backpressure : int;
  hx_policy_drops : int;
  hx_dispatch_errors : int;
  hx_auth_drops : int;  (* AEAD record auth failures (secure runs) *)
  hx_drop_account_ok : bool;
  hx_conservation_ok : bool;
  hx_honest_completions : int;
  hx_honest_delivered_gone : int;
  hx_honest_exact : bool;
  hx_pool_growth : int;
  hx_max_load_state : int;
  hx_drops : (string * int) list;  (* reason -> engine total *)
}

(* [lossless] marks a substrate that neither drops nor corrupts in
   flight (netsim with no impairment): there — and only there — every
   injected malformed datagram must be accounted as a malformed-shape
   drop or a backpressure drop, exactly. On real sockets the kernel may
   shed datagrams before ingest ever sees them, so only the lower bound
   holds (nothing the server drops as malformed can outnumber what the
   client injected). *)
let hostile_extras_of ~server ~acct ~sessions ~adus ~gen ~pool_warm ~load_hw
    ~lossless h =
  let hs = Hostile.stats h in
  let totals = Serve.totals server in
  let gstats = Loadgen.stats gen in
  let drop r = totals.Serve.drops.(Ingress.reason_index r) in
  let malformed_drops = Serve.malformed_drops totals in
  let backpressure = drop Ingress.Backpressure in
  (* Auth drops are malformed-shape (the bytes were forged above the
     CRC) but arise from the byzantine client's *wellformed* abuse — on
     a secure run its perfectly formed keyless ADUs all fail the record
     open. Account them separately so the bad-bytes ledger stays exact. *)
  let auth_drops = drop Ingress.Auth in
  let malformed_wo_auth = malformed_drops - auth_drops in
  let honest_sent = gstats.Loadgen.sent_datagrams in
  let all_sent = hs.Hostile.sent + honest_sent in
  {
    hx_sent = hs.Hostile.sent;
    hx_send_failed = hs.Hostile.send_failed;
    hx_malformed = hs.Hostile.malformed;
    hx_wellformed = hs.Hostile.wellformed;
    hx_replies = hs.Hostile.replies_rx;
    hx_ratio =
      (if all_sent = 0 then 0.
       else float_of_int hs.Hostile.sent /. float_of_int all_sent);
    hx_malformed_drops = malformed_drops;
    hx_backpressure = backpressure;
    hx_policy_drops = totals.Serve.dropped - malformed_drops;
    hx_dispatch_errors = drop Ingress.Dispatch_error;
    hx_auth_drops = auth_drops;
    hx_drop_account_ok =
      malformed_wo_auth <= hs.Hostile.malformed
      && auth_drops <= hs.Hostile.wellformed + hs.Hostile.malformed
      && ((not lossless)
         || hs.Hostile.send_failed > 0
         || hs.Hostile.malformed <= malformed_wo_auth + backpressure);
    hx_conservation_ok =
      totals.Serve.arrivals = totals.Serve.accepted + totals.Serve.dropped;
    hx_honest_completions = acct.ha_completions;
    hx_honest_delivered_gone = acct.ha_delivered_gone;
    hx_honest_exact =
      acct.ha_completions = sessions
      && acct.ha_delivered_gone = sessions * adus;
    hx_pool_growth = Serve.pool_allocated server - pool_warm;
    hx_max_load_state = load_hw;
    hx_drops =
      Array.to_list
        (Array.mapi
           (fun i r -> (Ingress.reason_name r, totals.Serve.drops.(i)))
           Ingress.all_reasons);
  }

let hostile_ok (r, hx) =
  r.sv_finished
  && r.sv_done = r.sv_sessions
  && hx.hx_honest_exact
  && r.sv_steady_allocs = 0
  && hx.hx_pool_growth = 0
  && hx.hx_dispatch_errors = 0
  && hx.hx_drop_account_ok
  && hx.hx_conservation_ok
  && hx.hx_ratio >= 0.3
  && r.sv_counter_sum_ok

let pp_hostile_extras ppf hx =
  Format.fprintf ppf
    "  hostile: %d sent (%.0f%% of traffic, %d malformed / %d wellformed)  \
     replies %d  malformed drops %d  auth drops %d  backpressure %d  \
     policy drops %d  dispatch errors %d  honest %d sessions / %d ADUs  \
     pool growth %d  peak load state %d  accounting %b  conservation \
     %b@\n  drops:"
    hx.hx_sent
    (100. *. hx.hx_ratio)
    hx.hx_malformed hx.hx_wellformed hx.hx_replies hx.hx_malformed_drops
    hx.hx_auth_drops hx.hx_backpressure hx.hx_policy_drops
    hx.hx_dispatch_errors
    hx.hx_honest_completions hx.hx_honest_delivered_gone hx.hx_pool_growth
    hx.hx_max_load_state hx.hx_drop_account_ok hx.hx_conservation_ok;
  List.iter
    (fun (name, n) -> if n > 0 then Format.fprintf ppf " %s=%d" name n)
    hx.hx_drops

let hostile_row r hx =
  let i = Obs.Json.num_of_int in
  Obs.Json.Obj
    [
      ( "name",
        Obs.Json.Str
          (Printf.sprintf "hostile/%s/s%d" r.sv_backend r.sv_sessions) );
      ("sessions", i r.sv_sessions);
      ("adus_per_session", i r.sv_adus);
      ("payload_bytes", i r.sv_payload);
      ("shards", i r.sv_shards);
      ("domains", i r.sv_domains);
      ("wall_s", Obs.Json.Num r.sv_wall_s);
      ("adus_per_s", Obs.Json.Num r.sv_adus_per_s);
      ("arrivals", i r.sv_arrivals);
      ("hostile_sent", i hx.hx_sent);
      ("hostile_malformed", i hx.hx_malformed);
      ("hostile_wellformed", i hx.hx_wellformed);
      ("hostile_ratio", Obs.Json.Num hx.hx_ratio);
      ("malformed_drops", i hx.hx_malformed_drops);
      ("auth_drops", i hx.hx_auth_drops);
      ("backpressure_drops", i hx.hx_backpressure);
      ("policy_drops", i hx.hx_policy_drops);
      ("dispatch_errors", i hx.hx_dispatch_errors);
      ("honest_completions", i hx.hx_honest_completions);
      ("honest_delivered_gone", i hx.hx_honest_delivered_gone);
      ("pool_growth", i hx.hx_pool_growth);
      ("max_load_state", i hx.hx_max_load_state);
      ("steady_allocs", i r.sv_steady_allocs);
      ("drop_account_ok", Obs.Json.Bool hx.hx_drop_account_ok);
      ("conservation_ok", Obs.Json.Bool hx.hx_conservation_ok);
      ("obs_sums_ok", Obs.Json.Bool r.sv_counter_sum_ok);
      ( "drops",
        Obs.Json.Obj (List.map (fun (n, v) -> (n, i v)) hx.hx_drops) );
      ("ok", Obs.Json.Bool (hostile_ok (r, hx)));
    ]

let serve_secure_seed = 0x5EC0DEA15EC0DEL

let serve_config ?secure ~shards ~rx_buf_size ~per_shard () =
  {
    Serve.default_config with
    Serve.shards;
    secure =
      (if secure = Some true then Some (Secure.Record.of_int64 serve_secure_seed)
       else None);
    rx_buf_size;
    rx_bufs_per_shard = per_shard;
    ctl_bufs_per_shard = per_shard;
    harvest_interval = 0.02;
    nack_holdoff = 0.02;
  }

let serve_rx_buf_size ~payload =
  max 192 (Framing.fragment_header_size + Adu.header_size + payload + 32)

let hostile_config ~server ~payload =
  {
    Hostile.default_config with
    Hostile.server;
    server_port = Serve.default_config.Serve.port;
    base_port = hostile_base_port;
    payload_len = payload;
    integrity = Serve.default_config.Serve.integrity;
  }

let run_serve_netsim ?(hostile = false) ?(secure = false) ~sessions ~adus
    ~payload ~shards ~domains () =
  let engine = Engine.create () in
  let sched = Netsim.Engine.sched engine in
  let rng = Rng.create ~seed:42L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:Impair.none
      ~queue_limit:1_000_000 ~bandwidth_bps:1e9 ~delay:1e-4 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let registry = Obs.Registry.create () in
  let pool =
    if domains > 1 then Some (Par.Pool.create ~domains ()) else None
  in
  let rx_buf_size = serve_rx_buf_size ~payload in
  let per_shard = max 512 (2 * 4096 / shards) in
  let acct = honest_acct ~sessions in
  let on_complete = if hostile then Some (record_honest acct) else None in
  let server =
    Serve.create ~sched ?pool ~io:(Dgram.of_udp ub) ~registry ?on_complete
      ~config:(serve_config ~secure ~shards ~rx_buf_size ~per_shard ())
      ()
  in
  let pool_warm = Serve.pool_allocated server in
  let gen =
    Loadgen.create ~io:(Dgram.of_udp ua)
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = payload;
        server = 2;
        server_port = Serve.default_config.Serve.port;
        secure =
          (if secure then Some (Secure.Record.of_int64 serve_secure_seed)
           else None);
      }
  in
  let hclient =
    if hostile then
      Some (Hostile.create ~io:(Dgram.of_udp ua) (hostile_config ~server:2 ~payload))
    else None
  in
  let budget = max 256 (shards * per_shard / 2) in
  let turn () =
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:10_000_000
      engine
  in
  let load_hw = ref 0 in
  let r =
    drive_serve ~backend:"netsim" ~sessions ~adus ~payload ~shards ~domains
      ~budget ?hostile:hclient ~hostile_budget:(budget * 3 / 7) ~load_hw
      ~turn ~gen ~server ~registry
      ~max_rounds:(max 200 (sessions * (adus + 1) * 4 / budget))
      ()
  in
  let hx =
    Option.map
      (hostile_extras_of ~server ~acct ~sessions ~adus ~gen ~pool_warm
         ~load_hw:!load_hw ~lossless:true)
      hclient
  in
  Serve.stop server;
  (match pool with Some p -> Par.Pool.shutdown p | None -> ());
  (r, hx)

let run_serve_rt ?(hostile = false) ?(secure = false) ~sessions ~adus
    ~payload ~shards ~domains () =
  let loop = Rt.Loop.create () in
  let sched = Rt.Loop.sched loop in
  let rx_buf_size = serve_rx_buf_size ~payload in
  let link_pool = Pool.create ~capacity:128 ~buf_size:rx_buf_size () in
  let link =
    Rt.Udp_link.create ~loop ~pool:link_pool ~buf_size:rx_buf_size ()
  in
  let io = Dgram.of_rt link in
  let registry = Obs.Registry.create () in
  let pool =
    if domains > 1 then Some (Par.Pool.create ~domains ()) else None
  in
  let per_shard = max 512 (2 * 4096 / shards) in
  let acct = honest_acct ~sessions in
  let on_complete = if hostile then Some (record_honest acct) else None in
  let server =
    Serve.create ~sched ?pool ~io ~registry ?on_complete
      ~config:(serve_config ~secure ~shards ~rx_buf_size ~per_shard ())
      ()
  in
  let pool_warm = Serve.pool_allocated server in
  let server_addr =
    Rt.Udp_link.local_addr link ~port:Serve.default_config.Serve.port
  in
  let gen =
    Loadgen.create ~io
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = payload;
        server = server_addr;
        server_port = Serve.default_config.Serve.port;
        secure =
          (if secure then Some (Secure.Record.of_int64 serve_secure_seed)
           else None);
      }
  in
  let hclient =
    if hostile then
      Some (Hostile.create ~io (hostile_config ~server:server_addr ~payload))
    else None
  in
  (* Loopback sockets drop under burst (finite SO_RCVBUF): keep bursts a
     fraction of the 2 MB budget and let the NACK/re-CLOSE repair path
     absorb what still slips. *)
  let budget = 1024 in
  let turn () = Rt.Loop.run_for loop 0.002 in
  let load_hw = ref 0 in
  let r =
    drive_serve ~backend:"rt" ~sessions ~adus ~payload ~shards ~domains
      ~budget ?hostile:hclient ~hostile_budget:(budget * 3 / 7) ~load_hw
      ~turn ~gen ~server ~registry
      ~max_rounds:(max 500 (sessions * (adus + 1) * 8 / budget))
      ()
  in
  let hx =
    Option.map
      (hostile_extras_of ~server ~acct ~sessions ~adus ~gen ~pool_warm
         ~load_hw:!load_hw ~lossless:false)
      hclient
  in
  Serve.stop server;
  Rt.Udp_link.close link;
  (match pool with Some p -> Par.Pool.shutdown p | None -> ());
  (r, hx)

let run_serve_backend ?hostile ?secure backend ~sessions ~adus ~payload
    ~shards ~domains () =
  match backend with
  | "netsim" ->
      run_serve_netsim ?hostile ?secure ~sessions ~adus ~payload ~shards
        ~domains ()
  | "rt" ->
      run_serve_rt ?hostile ?secure ~sessions ~adus ~payload ~shards ~domains
        ()
  | other -> invalid_arg ("unknown serve backend: " ^ other)

(* The clean-path cost gate: stage-0 validation is a fixed header
   inspection per arrival, so its share of honest throughput is
   (ns-per-validate x arrival rate). The cost is measured directly over
   the wire mix a serving port actually carries — a sealed data fragment
   and each control datagram — and scaled by the clean run's own arrival
   rate; the resulting fraction of the clean run's wall clock must stay
   under 3%. *)
let stage0_overhead_row ~payload clean =
  let integrity = Serve.default_config.Serve.integrity in
  let rx_buf_size = serve_rx_buf_size ~payload in
  let limits =
    {
      Ingress.trailer =
        (match integrity with Some _ -> Ctl.trailer_size | None -> 0);
      max_len = rx_buf_size;
      max_total_len = Serve.default_config.Serve.max_adu + Adu.header_size;
    }
  in
  let payload_buf = Bytebuf.create payload in
  Rng.fill_bytes (Rng.create ~seed:0x57A6E0L) payload_buf;
  let adu = Adu.make (Adu.name ~stream:7 ~index:0 ()) payload_buf in
  let dgs =
    Array.of_list
      (List.map (Ctl.seal integrity)
         (Framing.fragment ~mtu:65507 adu
         @ [
             Ctl.build_close ~stream:7 ~total:2;
             Ctl.build_done ~stream:7;
             Ctl.build_nack ~stream:7 ~have_below:0 [ 1; 2 ];
           ]))
  in
  let k = Array.length dgs in
  let iters = 2_000_000 in
  let sink = ref 0 in
  let spin n =
    for i = 0 to n - 1 do
      match Ingress.validate limits dgs.(i mod k) with
      | Ingress.Accept s -> sink := !sink + s
      | Ingress.Reject _ -> ()
    done
  in
  spin (iters / 10);
  let t0 = Unix.gettimeofday () in
  spin iters;
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  ignore (Sys.opaque_identity !sink);
  let frac =
    if clean.sv_wall_s > 0. then
      ns *. float_of_int clean.sv_arrivals /. (clean.sv_wall_s *. 1e9)
    else 1.
  in
  Format.printf
    "hostile/stage0-overhead: %.1f ns/validate x %d arrivals over %.2fs \
     clean wall = %.2f%% of the clean path@."
    ns clean.sv_arrivals clean.sv_wall_s (100. *. frac);
  let i = Obs.Json.num_of_int in
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str "hostile/stage0-overhead");
      ("ns_per_validate", Obs.Json.Num ns);
      ("validated", i iters);
      ("arrivals", i clean.sv_arrivals);
      ("clean_wall_s", Obs.Json.Num clean.sv_wall_s);
      ("overhead_frac", Obs.Json.Num frac);
      ("ok", Obs.Json.Bool (frac < 0.03));
    ]

let serve_row r =
  let i = Obs.Json.num_of_int in
  Obs.Json.Obj
    [
      ( "name",
        Obs.Json.Str
          (Printf.sprintf "serve/%s/s%d/d%d" r.sv_backend r.sv_sessions
             r.sv_domains) );
      ("sessions", i r.sv_sessions);
      ("adus_per_session", i r.sv_adus);
      ("payload_bytes", i r.sv_payload);
      ("shards", i r.sv_shards);
      ("domains", i r.sv_domains);
      ("wall_s", Obs.Json.Num r.sv_wall_s);
      ("adus_per_s", Obs.Json.Num r.sv_adus_per_s);
      ("mbps", Obs.Json.Num r.sv_mbps);
      ("peak_sessions", i r.sv_peak_live);
      ("delivered", i r.sv_delivered);
      ("gone", i r.sv_gone);
      ("dropped", i r.sv_dropped);
      ("pool_allocs_steady", i r.sv_steady_allocs);
      ("fallback_allocs", i r.sv_fallback_allocs);
      ("max_ahead", i r.sv_max_ahead);
      ("obs_sums_ok", Obs.Json.Bool r.sv_counter_sum_ok);
      ("ok", Obs.Json.Bool (serve_ok r));
    ]

let run_serve_selftest ~secure backend sessions adus payload shards domains =
  let backends =
    match backend with "both" -> [ "netsim"; "rt" ] | b -> [ b ]
  in
  let reports =
    List.map
      (fun b ->
        let r, _ =
          run_serve_backend ~secure b ~sessions ~adus ~payload ~shards
            ~domains ()
        in
        Format.printf "%a@." pp_serve_report r;
        r)
      backends
  in
  if List.for_all serve_ok reports then begin
    Format.printf
      "serve selftest: OK (every session DONE, delivered+gone = sent, zero \
       steady-state pool allocations%s)@."
      (if secure then ", AEAD record layer on every ADU" else "");
    `Ok ()
  end
  else `Error (false, "serve selftest failed (see report lines above)")

let run_serve_hostile ~secure backend sessions adus payload shards domains =
  let backends =
    match backend with "both" -> [ "netsim"; "rt" ] | b -> [ b ]
  in
  let results =
    List.map
      (fun b ->
        let r, hx =
          run_serve_backend ~hostile:true ~secure b ~sessions ~adus ~payload
            ~shards ~domains ()
        in
        let hx = Option.get hx in
        Format.printf "%a@.%a@." pp_serve_report r pp_hostile_extras hx;
        (r, hx))
      backends
  in
  let secure_ok (_, hx) =
    (not secure) || (hx.hx_auth_drops > 0 && hx.hx_drop_account_ok)
  in
  if List.for_all hostile_ok results && List.for_all secure_ok results then begin
    Format.printf
      "hostile selftest: OK (every honest session DONE with exact \
       delivered+gone accounting under >= 30%% byzantine traffic, pool \
       budget flat, zero dispatch errors, every drop reason-coded%s)@."
      (if secure then
         ", byzantine ADUs rejected at the record open as counted auth drops"
       else "");
    `Ok ()
  end
  else `Error (false, "hostile selftest failed (see report lines above)")

let run_serve_bench sessions adus payload out =
  (* Always sweep past one domain, even on a core-limited container:
     the multi-domain point exercises the sharded pump's real parallel
     path (the curve is flat without spare cores, but the row proves the
     engine holds its invariants under concurrent shard tasks). *)
  let max_domains = max 2 (min 4 (Domain.recommended_domain_count () - 1)) in
  let domain_points =
    List.sort_uniq compare [ 1; min 2 max_domains; max_domains ]
  in
  let session_points =
    List.sort_uniq compare [ max 1000 (sessions / 10); sessions ]
  in
  let rows = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          let shards = max 4 (2 * d) in
          let r, _ =
            run_serve_netsim ~sessions:s ~adus ~payload ~shards ~domains:d ()
          in
          Format.printf "%a@." pp_serve_report r;
          rows := serve_row r :: !rows)
        domain_points)
    session_points;
  (* One real-socket point at the full session count: the same engine,
     kernel datagrams underneath. *)
  let rt, _ =
    run_serve_rt ~sessions ~adus ~payload ~shards:(max 4 (2 * max_domains))
      ~domains:max_domains ()
  in
  Format.printf "%a@." pp_serve_report rt;
  rows := serve_row rt :: !rows;
  let json = Obs.Json.Arr (List.rev !rows) in
  let oc = open_out out in
  output_string oc (Obs.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Format.printf "serve bench -> %s@." out;
  if
    List.for_all
      (fun row ->
        match row with
        | Obs.Json.Obj fields -> (
            match List.assoc_opt "ok" fields with
            | Some (Obs.Json.Bool b) -> b
            | _ -> false)
        | _ -> false)
      (List.rev !rows)
  then `Ok ()
  else `Error (false, "a serve bench row violated its invariants (see " ^ out ^ ")")

let rows_all_ok rows =
  List.for_all
    (fun row ->
      match row with
      | Obs.Json.Obj fields -> (
          match List.assoc_opt "ok" fields with
          | Some (Obs.Json.Bool b) -> b
          | _ -> false)
      | _ -> false)
    rows

let run_hostile_bench sessions adus payload out =
  let domains = max 2 (min 4 (Domain.recommended_domain_count () - 1)) in
  let shards = max 4 (2 * domains) in
  (* The clean baseline first, on the same geometry: the stage-0 overhead
     gate scales the measured per-datagram validation cost by this run's
     arrival rate, and its row proves the hardened defaults leave the
     honest path intact. *)
  let clean, _ = run_serve_netsim ~sessions ~adus ~payload ~shards ~domains () in
  Format.printf "%a@." pp_serve_report clean;
  let rows = ref [ serve_row clean ] in
  List.iter
    (fun b ->
      let r, hx =
        run_serve_backend ~hostile:true b ~sessions ~adus ~payload ~shards
          ~domains ()
      in
      let hx = Option.get hx in
      Format.printf "%a@.%a@." pp_serve_report r pp_hostile_extras hx;
      rows := hostile_row r hx :: !rows)
    [ "netsim"; "rt" ];
  rows := stage0_overhead_row ~payload clean :: !rows;
  let rows = List.rev !rows in
  let oc = open_out out in
  output_string oc (Obs.Json.to_string_pretty (Obs.Json.Arr rows));
  output_char oc '\n';
  close_out oc;
  Format.printf "hostile bench -> %s@." out;
  if rows_all_ok rows then `Ok ()
  else
    `Error
      (false, "a hostile bench row violated its invariants (see " ^ out ^ ")")

let serve_cmd =
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Sweep sessions x domains on the simulator plus one real-socket \
             point and write the scaling rows to $(docv).")
  in
  let secure =
    Arg.(
      value & flag
      & info [ "secure" ]
          ~doc:
            "Run with the ChaCha20/Poly1305 record layer on: the load \
             generator seals every ADU and the server opens it in place \
             before stage 2; on hostile runs, also gates that byzantine \
             data lands in the $(b,drop.auth) ledger exactly.")
  in
  let hostile =
    Arg.(
      value & flag
      & info [ "hostile" ]
          ~doc:
            "Mix a seeded byzantine client (fuzz, truncation, replay, \
             session churn, slow drip, NACK storms, forged CLOSE totals) \
             into the drive at >= 30% of the traffic and gate on the \
             adversarial-ingress invariants; with $(b,--bench), write \
             BENCH_hostile.json including the stage-0 overhead row.")
  in
  let backend =
    Arg.(
      value & opt string "netsim"
      & info [ "backend" ] ~docv:"netsim|rt|both"
          ~doc:"Substrate for the selftest.")
  in
  let sessions =
    Arg.(
      value & opt int 20_000
      & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent ADU streams.")
  in
  let adus =
    Arg.(
      value & opt int 2
      & info [ "adus" ] ~docv:"N" ~doc:"ADUs per session.")
  in
  let payload =
    Arg.(
      value & opt int 64
      & info [ "payload" ] ~docv:"BYTES" ~doc:"Payload bytes per ADU.")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N" ~doc:"Session-table shards (selftest).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for stage-2 processing (selftest).")
  in
  let out =
    Arg.(
      value & opt string "BENCH_scale.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let run bench secure hostile backend sessions adus payload shards domains
      out =
    if sessions < 1 || adus < 1 || payload < 1 then
      `Error (false, "--sessions, --adus and --payload must be positive")
    else if shards < 1 || domains < 1 then
      `Error (false, "--shards and --domains must be positive")
    else if bench && hostile then
      let out = if out = "BENCH_scale.json" then "BENCH_hostile.json" else out in
      run_hostile_bench sessions adus payload out
    else if bench then run_serve_bench sessions adus payload out
    else if hostile then
      run_serve_hostile ~secure backend sessions adus payload shards domains
    else run_serve_selftest ~secure backend sessions adus payload shards domains
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the domain-sharded many-session server engine under a \
          deterministic load generator: every arrival is demultiplexed to \
          a session shard, reassembled, pushed through the stage-2 \
          manipulation plan, and accounted per shard in the metrics \
          registry. Selftest asserts completion, exact delivered+gone \
          accounting and zero steady-state pool allocations; $(b,--bench) \
          writes sessions x domains scaling curves.")
    Term.(
      ret
        (const run $ bench $ secure $ hostile $ backend $ sessions $ adus
       $ payload $ shards $ domains $ out))

let () =
  let doc = "ALF/ILP protocol laboratory (Clark & Tennenhouse, SIGCOMM 1990)" in
  let info = Cmd.info "alfnet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            transfer_cmd;
            atm_cmd;
            syntax_cmd;
            parallel_cmd;
            ilp_cmd;
            marshal_cmd;
            metrics_cmd;
            soak_cmd;
            udp_cmd;
            secure_cmd;
            serve_cmd;
          ]))
