(* Performance gate over the machine-readable bench output
   (BENCH_ilp.json): `make perf-smoke` runs a tiny-quota bench pass and
   then this check. It fails (exit 1) when a fusion invariant the paper's
   argument rests on has regressed:

   - the fused copy+checksum loop must beat its serial composition
     (E2, the original ILP claim);
   - the compiled 3-stage plan (decrypt+checksum+deliver) must beat the
     serial layered composition by at least 2x, and the per-byte
     interpreter outright (E14, the plan compiler);
   - the fused marshal+checksum+deliver pass must beat the serial
     encode-then-checksum-then-copy composition by at least 1.5x, and
     must not fall below the bare cursor encode at all — the paper's
     28 -> 24 Mb/s conversion+checksum figure (E15, fused presentation
     conversion), for both codecs. Relative to the bare in-place
     marshal (no stages) the per-word stage dispatch may cost up to
     30%: the paper measured 14% (24/28) against a conversion loop an
     order of magnitude slower than ours, so the fixed stage cost is a
     proportionally larger slice here.

   Ratios are between measurements of the *same run*, so host speed and
   quota cancel out.

   With --schema it gates the E19 rows of the same file: the
   schema-compiled fused marshal must not fall below the interpretive
   fused marshal (nor may the cached entry point, beyond noise), the
   lazy validate-view receive must not fall below the eager decode, both
   directions must be allocation-free in steady state, and the
   schema-program cache must hit at least as often as it misses.

   With --secure it gates the E20 rows of the same file: the fused
   marshal+AEAD+frame single pass must beat the serial
   encrypt-then-MAC-then-checksum composition (the layered reference
   stack, byte-grain per-layer walks plus per-layer PDU copies) by at
   least 1.5x on send and 1.3x on receive, must stay within noise of
   the word-grain layered upper bound (shared ChaCha20/Poly1305 compute
   floors both sides, so the paper's own E15 fusion margin cannot
   reappear here — the honest win is pass elimination plus word-grain
   processing), and both record directions must be allocation-free in
   steady state.

   With --udp it gates BENCH_udp.json (`alfnet udp --bench`) instead:
   the fused send path must stay zero-allocation in steady state over
   real loopback sockets (steady_allocs_per_adu = 0), hold the stream's
   own invariants (ok = true), and both backends must post a positive
   throughput.

   With --serve it gates BENCH_scale.json (`alfnet serve --bench`): every
   sessions x domains point must hold the serve engine's invariants
   (ok = true: every session DONE, delivered union gone = sent, peak
   concurrency = the session count), post a positive throughput, and
   stage a zero-steady-state-allocation data path
   (pool_allocs_steady = 0, fallback_allocs = 0).

   With --hostile it gates BENCH_hostile.json (`alfnet serve --bench
   --hostile`): both backends must survive a >= 30% byzantine traffic
   mix with every honest session completing exactly (ok = true covers
   the exact delivered+gone accounting, flat pool budget, conservation
   and reason-coded drop totals), zero dispatch errors, and the stage-0
   validator's measured cost must stay under 3% of the clean run's wall
   clock (the hostile/stage0-overhead row). *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("perfcheck: " ^ s);
      exit 1)
    fmt

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let udp_mode = List.mem "--udp" args in
  let serve_mode = List.mem "--serve" args in
  let hostile_mode = List.mem "--hostile" args in
  let schema_mode = List.mem "--schema" args in
  let secure_mode = List.mem "--secure" args in
  let path =
    match
      List.filter
        (fun a ->
          a <> "--udp" && a <> "--serve" && a <> "--hostile" && a <> "--schema"
          && a <> "--secure")
        args
    with
    | p :: _ -> p
    | [] ->
        if hostile_mode then "BENCH_hostile.json"
        else if serve_mode then "BENCH_scale.json"
        else if udp_mode then "BENCH_udp.json"
        else "BENCH_ilp.json"
  in
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> die "cannot read %s (%s)" path msg
  in
  let rows =
    match Obs.Json.parse text with
    | Ok (Obs.Json.Arr rows) -> rows
    | Ok _ -> die "%s: expected a top-level JSON array" path
    | Error e -> die "%s: %s" path e
  in
  let mbps name =
    let found =
      List.find_map
        (fun row ->
          match (Obs.Json.member "name" row, Obs.Json.member "mbps" row) with
          | Some (Obs.Json.Str n), Some (Obs.Json.Num v) when n = name ->
              Some v
          | _ -> None)
        rows
    in
    match found with
    | Some v -> v
    | None -> die "%s: no measurement named %S" path name
  in
  let field row_name key =
    let found =
      List.find_map
        (fun row ->
          match Obs.Json.member "name" row with
          | Some (Obs.Json.Str n) when n = row_name -> Obs.Json.member key row
          | _ -> None)
        rows
    in
    match found with
    | Some v -> v
    | None -> die "%s: row %S has no field %S" path row_name key
  in
  if schema_mode then begin
    (* E19: the schema compiler must pay for itself. The compiled fused
       marshal may not fall below the interpretive fused marshal (that
       would mean the op-program is slower than tag dispatch), the cache
       lookup per call must stay in the noise, the lazy validate-view
       receive may not fall below the eager decode, both directions must
       be allocation-free in steady state, and the schema-program cache
       must actually hit. *)
    let failures = ref 0 in
    let check label num den floor =
      let r = mbps num /. mbps den in
      let ok = r >= floor in
      if not ok then incr failures;
      Printf.printf "perfcheck: %-44s %6.2fx  (floor %.2fx)  %s\n" label r
        floor
        (if ok then "ok" else "FAIL")
    in
    check "schema compiled vs interpreted fused" "schema-marshal/xdr/compiled-fused"
      "schema-marshal/xdr/interp-fused" 1.0;
    check "schema cached-lookup vs interpreted fused"
      "schema-marshal/xdr/compiled-cached-fused"
      "schema-marshal/xdr/interp-fused" 0.95;
    check "schema lazy view vs eager decode" "schema-marshal/xdr/view-fused"
      "schema-marshal/xdr/decode-fused" 1.0;
    let gate = "schema-marshal/gate" in
    let num key =
      match field gate key with
      | Obs.Json.Num v -> v
      | _ -> die "%s: %S field %S is not a number" path gate key
    in
    let tx = num "steady_allocs" and rx = num "rx_steady_allocs" in
    if tx <> 0.0 then begin
      incr failures;
      Printf.printf
        "perfcheck: compiled marshal allocated %.0f Bytebufs in steady state  FAIL\n"
        tx
    end;
    if rx <> 0.0 then begin
      incr failures;
      Printf.printf
        "perfcheck: lazy receive allocated %.0f Bytebufs in steady state  FAIL\n"
        rx
    end;
    let hits = num "cache_hits" and misses = num "cache_misses" in
    if hits < misses then begin
      incr failures;
      Printf.printf
        "perfcheck: schema cache hit %.0f / missed %.0f — compiling more than \
         reusing  FAIL\n"
        hits misses
    end;
    if !failures > 0 then die "%d schema invariant(s) regressed in %s" !failures path;
    Printf.printf
      "perfcheck: schema-compiled presentation invariants hold in %s (cache \
       %.0f hits / %.0f misses, zero steady-state allocations)\n"
      path hits misses;
    exit 0
  end;
  if secure_mode then begin
    (* E20: the fused AEAD record layer must pay for itself. The
       marshal+seal+frame single pass vs the layered reference stack is
       the acceptance headline; the word-grain rows guard against the
       fused dispatch itself regressing (both sides share the
       ChaCha20/Poly1305 compute floor, so those ratios live near 1x by
       construction); the gate row pins the zero-allocation contract. *)
    let failures = ref 0 in
    let check label num den floor =
      let r = mbps num /. mbps den in
      let ok = r >= floor in
      if not ok then incr failures;
      Printf.printf "perfcheck: %-44s %6.2fx  (floor %.2fx)  %s\n" label r
        floor
        (if ok then "ok" else "FAIL")
    in
    check "secure fused vs serial layered stack" "secure-record/xdr/fused"
      "secure-record/xdr/serial" 1.5;
    check "secure fused vs word-grain layered" "secure-record/xdr/fused"
      "secure-record/xdr/serial-words" 0.85;
    check "secure rx fused vs serial layered" "secure-record/xdr/open-fused"
      "secure-record/xdr/open-serial" 1.3;
    check "secure rx fused vs word-grain layered"
      "secure-record/xdr/open-fused" "secure-record/xdr/open-words" 0.8;
    let gate = "secure-record/gate" in
    let num key =
      match field gate key with
      | Obs.Json.Num v -> v
      | _ -> die "%s: %S field %S is not a number" path gate key
    in
    let tx = num "steady_allocs" and rx = num "rx_steady_allocs" in
    if tx <> 0.0 then begin
      incr failures;
      Printf.printf
        "perfcheck: fused seal allocated %.0f Bytebufs in steady state  FAIL\n"
        tx
    end;
    if rx <> 0.0 then begin
      incr failures;
      Printf.printf
        "perfcheck: record open allocated %.0f Bytebufs in steady state  FAIL\n"
        rx
    end;
    if !failures > 0 then
      die "%d secure-record invariant(s) regressed in %s" !failures path;
    Printf.printf
      "perfcheck: secure-record invariants hold in %s (zero steady-state \
       allocations on seal and open)\n"
      path;
    exit 0
  end;
  if hostile_mode then begin
    if rows = [] then die "%s: no measurements" path;
    let str row k =
      match Obs.Json.member k row with Some (Obs.Json.Str s) -> s | _ -> "?"
    in
    let num row k name =
      match Obs.Json.member k row with
      | Some (Obs.Json.Num v) -> v
      | _ -> die "%s: row %S has no numeric %S" path name k
    in
    let require_ok row name =
      match Obs.Json.member "ok" row with
      | Some (Obs.Json.Bool true) -> ()
      | _ -> die "%s violated the adversarial-ingress invariants (ok = false)" name
    in
    let hostile_rows = ref 0 and overhead = ref None in
    List.iter
      (fun row ->
        let name = str row "name" in
        require_ok row name;
        if Obs.Json.member "hostile_ratio" row <> None then begin
          incr hostile_rows;
          let ratio = num row "hostile_ratio" name in
          if ratio < 0.3 then
            die "%s ran only %.0f%% byzantine traffic (need >= 30%%)" name
              (100.0 *. ratio);
          let de = num row "dispatch_errors" name in
          if de <> 0.0 then die "%s leaked %.0f dispatch errors" name de
        end;
        if name = "hostile/stage0-overhead" then
          overhead := Some (num row "overhead_frac" name))
      rows;
    if !hostile_rows < 2 then
      die "%s: expected hostile rows for both backends, found %d" path
        !hostile_rows;
    (match !overhead with
    | None -> die "%s: no hostile/stage0-overhead row" path
    | Some f ->
        if f >= 0.03 then
          die
            "stage-0 validation costs %.1f%% of the clean path (budget 3%%)"
            (100.0 *. f));
    Printf.printf
      "perfcheck: hostile gate holds over %d rows in %s — honest sessions \
       exact under >= 30%% byzantine traffic, stage-0 overhead %.2f%% of \
       the clean path\n"
      (List.length rows) path
      (match !overhead with Some f -> 100.0 *. f | None -> 0.0);
    exit 0
  end;
  if serve_mode then begin
    if rows = [] then die "%s: no measurements" path;
    let str row k =
      match Obs.Json.member k row with Some (Obs.Json.Str s) -> s | _ -> "?"
    in
    let num row k name =
      match Obs.Json.member k row with
      | Some (Obs.Json.Num v) -> v
      | _ -> die "%s: row %S has no numeric %S" path name k
    in
    let sessions_max = ref 0.0 and peak = ref 0.0 in
    List.iter
      (fun row ->
        let name = str row "name" in
        (match Obs.Json.member "ok" row with
        | Some (Obs.Json.Bool true) -> ()
        | _ -> die "%s violated the serve invariants (ok = false)" name);
        let aps = num row "adus_per_s" name in
        if aps <= 0.0 then die "%s posted %.1f ADUs/s" name aps;
        let steady = num row "pool_allocs_steady" name in
        if steady <> 0.0 then
          die "%s allocated %.0f pool buffers in steady state" name steady;
        let fallback = num row "fallback_allocs" name in
        if fallback <> 0.0 then
          die "%s fell back to %.0f heap allocations" name fallback;
        let s = num row "sessions" name in
        if s > !sessions_max then sessions_max := s;
        let p = num row "peak_sessions" name in
        if p > !peak then peak := p)
      rows;
    Printf.printf
      "perfcheck: serve gate holds over %d points in %s — up to %.0f \
       concurrent sessions (peak live %.0f), zero steady-state allocations\n"
      (List.length rows) path !sessions_max !peak;
    exit 0
  end;
  if udp_mode then begin
    let udp = mbps "udp/fused-send" and sim = mbps "netsim/fused-send" in
    if udp <= 0.0 then die "udp/fused-send throughput is %.2f Mb/s" udp;
    if sim <= 0.0 then die "netsim/fused-send throughput is %.2f Mb/s" sim;
    (match field "udp/fused-send" "steady_allocs_per_adu" with
    | Obs.Json.Num 0.0 -> ()
    | Obs.Json.Num a ->
        die "fused UDP send path allocated %.3f Bytebufs/ADU in steady state"
          a
    | _ -> die "steady_allocs_per_adu is not a number");
    (match field "udp/fused-send" "ok" with
    | Obs.Json.Bool true -> ()
    | _ -> die "udp stream violated its own invariants (ok = false)");
    Printf.printf
      "perfcheck: udp %.1f Mb/s vs netsim %.1f Mb/s, zero steady-state \
       allocations — gate holds in %s\n"
      udp sim path;
    exit 0
  end;
  let failures = ref 0 in
  let check label num den floor =
    let r = mbps num /. mbps den in
    let ok = r >= floor in
    if not ok then incr failures;
    Printf.printf "perfcheck: %-44s %6.2fx  (floor %.2fx)  %s\n" label r floor
      (if ok then "ok" else "FAIL")
  in
  check "ilp-fusion fused vs serial" "ilp-fusion/fused" "ilp-fusion/serial"
    1.0;
  check "ilp-compile 3stage compiled vs serial" "ilp-compile/3stage/compiled"
    "ilp-compile/3stage/serial" 2.0;
  check "ilp-compile 3stage compiled vs interpreted"
    "ilp-compile/3stage/compiled" "ilp-compile/3stage/interpreted" 1.0;
  List.iter
    (fun codec ->
      check
        (Printf.sprintf "ilp-marshal %s fused vs serial" codec)
        (Printf.sprintf "ilp-marshal/%s/fused" codec)
        (Printf.sprintf "ilp-marshal/%s/serial" codec)
        1.5;
      check
        (Printf.sprintf "ilp-marshal %s fused vs encode-only" codec)
        (Printf.sprintf "ilp-marshal/%s/fused" codec)
        (Printf.sprintf "ilp-marshal/%s/encode-only" codec)
        0.8;
      check
        (Printf.sprintf "ilp-marshal %s fused vs marshal-only" codec)
        (Printf.sprintf "ilp-marshal/%s/fused" codec)
        (Printf.sprintf "ilp-marshal/%s/marshal-only" codec)
        0.7)
    [ "xdr"; "ber" ];
  if !failures > 0 then die "%d invariant(s) regressed in %s" !failures path;
  Printf.printf "perfcheck: all fusion invariants hold in %s\n" path
