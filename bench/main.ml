(* The experiment harness: one entry per table/figure/measurement in the
   paper's evaluation (see DESIGN.md §3 and EXPERIMENTS.md). Run all with
   `dune exec bench/main.exe`, or name experiments:
   `dune exec bench/main.exe -- table1 ilp-fusion`. *)

open Bufkit
open Netsim
open Alf_core

let workload_bytes = 256 * 1024

let fresh_workload () =
  let rng = Rng.create ~seed:0xBEEFL in
  let b = Bytebuf.create workload_bytes in
  Rng.fill_bytes rng b;
  b

(* ------------------------------------------------------------------ *)
(* E1 — Table 1: speed in Mb/s for manipulation operations.            *)
(* ------------------------------------------------------------------ *)

let e1_table1 () =
  Harness.heading
    "E1 (Table 1): copy and checksum throughput, Mb/s";
  let src = fresh_workload () in
  let dst = Bytebuf.create workload_bytes in
  let host_copy =
    Harness.measure_mbps "copy" ~bytes:workload_bytes (fun () ->
        Kernels.copy ~src ~dst)
  in
  let host_cksum =
    Harness.measure_mbps "checksum" ~bytes:workload_bytes (fun () ->
        ignore (Kernels.checksum src))
  in
  let model m k = Machine_model.mbps m k in
  Harness.row_header [ "uVax (model)"; "R2000 (model)"; "this host"; "paper uVax"; "paper R2000" ];
  Harness.row "Copy"
    [
      Harness.f1 (model Machine_model.uvax3 Machine_model.copy_kernel);
      Harness.f1 (model Machine_model.r2000 Machine_model.copy_kernel);
      Harness.f1 host_copy;
      "42"; "130";
    ];
  Harness.row "Checksum"
    [
      Harness.f1 (model Machine_model.uvax3 Machine_model.checksum_kernel);
      Harness.f1 (model Machine_model.r2000 Machine_model.checksum_kernel);
      Harness.f1 host_cksum;
      "60"; "115";
    ];
  Harness.note
    "Shape check: copy and checksum are the same order of magnitude, and the\n\
     RISC machine is ~3x the microcoded one; host numbers scale both up.\n"

(* ------------------------------------------------------------------ *)
(* E2 — ILP fusion: separate copy+checksum vs one fused loop.          *)
(* ------------------------------------------------------------------ *)

let e2_ilp_fusion () =
  Harness.heading "E2: integrated (fused) vs serial copy+checksum, Mb/s";
  let src = fresh_workload () in
  let dst = Bytebuf.create workload_bytes in
  let host name fn = Harness.measure_mbps name ~bytes:workload_bytes fn in
  (* Host columns use the scalar word-loop copy: the fused loop is scalar,
     and 1990 copies were too; memcpy's SIMD would not fuse with a
     checksum anyway. *)
  let host_copy = host "copy" (fun () -> Kernels.copy_words ~src ~dst) in
  let host_cksum = host "checksum" (fun () -> ignore (Kernels.checksum src)) in
  let host_serial =
    host "serial" (fun () ->
        Kernels.copy_words ~src ~dst;
        ignore (Kernels.checksum dst))
  in
  let host_fused = host "fused" (fun () -> ignore (Kernels.copy_checksum ~src ~dst)) in
  let m_ser machine =
    Machine_model.serial_mbps machine
      [ Machine_model.copy_kernel; Machine_model.checksum_kernel ]
  in
  let m_fus machine =
    Machine_model.mbps machine
      (Machine_model.fuse [ Machine_model.copy_kernel; Machine_model.checksum_kernel ])
  in
  Harness.row_header [ "uVax (model)"; "R2000 (model)"; "this host"; "paper R2000" ];
  Harness.row "copy alone"
    [
      Harness.f1 (Machine_model.mbps Machine_model.uvax3 Machine_model.copy_kernel);
      Harness.f1 (Machine_model.mbps Machine_model.r2000 Machine_model.copy_kernel);
      Harness.f1 host_copy; "130";
    ];
  Harness.row "checksum alone"
    [
      Harness.f1 (Machine_model.mbps Machine_model.uvax3 Machine_model.checksum_kernel);
      Harness.f1 (Machine_model.mbps Machine_model.r2000 Machine_model.checksum_kernel);
      Harness.f1 host_cksum; "115";
    ];
  Harness.row "serial copy then checksum"
    [
      Harness.f1 (m_ser Machine_model.uvax3);
      Harness.f1 (m_ser Machine_model.r2000);
      Harness.f1 host_serial; "~60";
    ];
  Harness.row "fused copy+checksum (ILP)"
    [
      Harness.f1 (m_fus Machine_model.uvax3);
      Harness.f1 (m_fus Machine_model.r2000);
      Harness.f1 host_fused; "90";
    ];
  Harness.note "ILP gain (fused/serial): model R2000 %.2fx, this host %.2fx (paper: 90/60 = 1.50x)\n"
    (m_fus Machine_model.r2000 /. m_ser Machine_model.r2000)
    (host_fused /. host_serial);
  (* The same 3-stage plan through the declarative engine, executed three
     ways: layered bulk passes, fusion *interpreted* per byte, and fusion
     *compiled* to a hand-fused kernel (section 8's compilation of the
     protocol suite). *)
  let plan =
    [
      Ilp.Xor_pad { key = 42L; pos = 0L };
      Ilp.Checksum Checksum.Kind.Internet;
      Ilp.Deliver_copy;
    ]
  in
  let small = Bytebuf.take src 65536 in
  let eng_layered =
    Harness.measure_mbps "engine layered" ~bytes:65536 (fun () ->
        ignore (Ilp.run_layered plan small))
  in
  let eng_interp =
    Harness.measure_mbps "engine interpreted" ~bytes:65536 (fun () ->
        ignore (Ilp.run_fused_interpreted plan small))
  in
  assert (Ilp.run_fused plan small).Ilp.compiled;
  let eng_compiled =
    Harness.measure_mbps "engine compiled" ~bytes:65536 (fun () ->
        ignore (Ilp.run_fused plan small))
  in
  Harness.note
    "Stage engine, 3 stages (decrypt+checksum+deliver), one declarative plan:\n\
    \  layered %.1f Mb/s | fused-interpreted %.1f Mb/s | fused-compiled %.1f Mb/s\n\
    \  Interpreted fusion loses to bulk passes (%.2fx); compiling the plan to a\n\
    \  fused kernel wins (%.2fx over layered) - ILP pays as a 'compiled'\n\
    \  technique, exactly section 8's compilation-vs-interpretation point.\n"
    eng_layered eng_interp eng_compiled (eng_interp /. eng_layered)
    (eng_compiled /. eng_layered)

(* ------------------------------------------------------------------ *)
(* E3 — Presentation conversion cost vs a word-aligned copy.           *)
(* ------------------------------------------------------------------ *)

let e3_presentation_cost () =
  Harness.heading "E3: presentation conversion vs copy (int-array workload), Mb/s of application data";
  let n = 32 * 1024 in
  let app_bytes = 4 * n in
  let rng = Rng.create ~seed:0xABCL in
  let ints =
    Array.init n (fun _ -> Int64.to_int (Rng.int64 rng) land 0x7FFFFFFF)
  in
  let value = Wire.Value.int_array ints in
  let flat = Wire.Lwts.encode_int_array ints in
  let flat_dst = Bytebuf.create (Bytebuf.length flat) in
  let host name fn = Harness.measure_mbps name ~bytes:app_bytes fn in
  let copy = host "copy" (fun () -> Kernels.copy ~src:flat ~dst:flat_dst) in
  let lwts = host "lwts" (fun () -> ignore (Wire.Lwts.encode_int_array ints)) in
  let xdr = host "xdr" (fun () -> ignore (Wire.Xdr.encode_int_array ints)) in
  let ber = host "ber" (fun () -> ignore (Wire.Ber.encode_int_array ints)) in
  let ber_toolkit =
    host "ber-interp" (fun () -> ignore (Wire.Ber.encode_interpretive value))
  in
  let ber_wire = Wire.Ber.encode_int_array ints in
  let ber_decode = host "ber-decode" (fun () -> ignore (Wire.Ber.decode_int_array ber_wire)) in
  Harness.row_header [ "Mb/s"; "vs copy" ];
  let show label v = Harness.row label [ Harness.f1 v; Printf.sprintf "%.1fx slower" (copy /. v) ] in
  Harness.row "word-aligned copy" [ Harness.f1 copy; "1.0x" ];
  show "LWTS encode (light-weight syntax)" lwts;
  show "XDR encode" xdr;
  show "BER encode (tuned)" ber;
  show "BER decode (tuned)" ber_decode;
  show "BER encode (interpretive toolkit)" ber_toolkit;
  Harness.note
    "Model prediction (R2000): BER encode %.1f Mb/s vs copy %.1f Mb/s = %.1fx slower\n\
     (paper: 28 vs 130 Mb/s, 4-5x). Host ratios are inflated because a modern\n\
     memcpy is SIMD-vectorised while conversion stays scalar; the ordering\n\
     (copy >> tuned conversion >> toolkit conversion) is the reproduced shape.\n"
    (Machine_model.mbps Machine_model.r2000 Machine_model.ber_encode_int_kernel)
    (Machine_model.mbps Machine_model.r2000 Machine_model.copy_kernel)
    (Machine_model.mbps Machine_model.r2000 Machine_model.copy_kernel
    /. Machine_model.mbps Machine_model.r2000 Machine_model.ber_encode_int_kernel)

(* ------------------------------------------------------------------ *)
(* E4 — Fusing the checksum into the conversion loop.                  *)
(* ------------------------------------------------------------------ *)

let e4_fused_convert () =
  Harness.heading "E4: BER conversion alone vs conversion+checksum, Mb/s of application data";
  let n = 32 * 1024 in
  let app_bytes = 4 * n in
  let rng = Rng.create ~seed:0xDEFL in
  let ints = Array.init n (fun _ -> Int64.to_int (Rng.int64 rng) land 0x7FFFFFFF) in
  let host name fn = Harness.measure_mbps name ~bytes:app_bytes fn in
  let convert = host "convert" (fun () -> ignore (Wire.Ber.encode_int_array ints)) in
  let fused =
    host "convert+checksum fused" (fun () ->
        ignore (Wire.Ber.encode_int_array_with_checksum ints))
  in
  let serial =
    host "convert then checksum" (fun () ->
        let b = Wire.Ber.encode_int_array ints in
        ignore (Kernels.checksum b))
  in
  Harness.row_header [ "this host"; "model R2000"; "paper R2000" ];
  Harness.row "BER convert alone"
    [
      Harness.f1 convert;
      Harness.f1 (Machine_model.mbps Machine_model.r2000 Machine_model.ber_encode_int_kernel);
      "28";
    ];
  Harness.row "convert + checksum (fused)"
    [
      Harness.f1 fused;
      Harness.f1
        (Machine_model.mbps Machine_model.r2000
           (Machine_model.fuse
              [ Machine_model.ber_encode_int_kernel; Machine_model.checksum_kernel ]));
      "24";
    ];
  Harness.row "convert then checksum (serial)"
    [
      Harness.f1 serial;
      Harness.f1
        (Machine_model.serial_mbps Machine_model.r2000
           [ Machine_model.ber_encode_int_kernel; Machine_model.checksum_kernel ]);
      "-";
    ];
  Harness.note
    "Shape: folding the checksum into the conversion loop costs only a small\n\
     fraction (paper: 28 -> 24 Mb/s = 1.17x). Model: %.2fx. Host: %.2fx\n\
     (vs %.2fx for a separate checksum pass; on this host the word-lane\n\
     checksum is so much faster than byte-wise conversion that the serial\n\
     pass is cheap - the model regenerates the 1990 balance).\n"
    (Machine_model.mbps Machine_model.r2000 Machine_model.ber_encode_int_kernel
    /. Machine_model.mbps Machine_model.r2000
         (Machine_model.fuse
            [ Machine_model.ber_encode_int_kernel; Machine_model.checksum_kernel ]))
    (convert /. fused) (convert /. serial)

(* ------------------------------------------------------------------ *)
(* E5 — Full-stack overhead: presentation dominates everything else.   *)
(* ------------------------------------------------------------------ *)

(* An in-process execution of the data-transfer-phase manipulations of a
   whole stack (the network itself costs nothing in-process, exactly like
   a loopback measurement): segmentation copy + Internet checksum on both
   sides, with or without a presentation conversion of the application
   data. Mirrors the paper's TCP+ISODE loopback comparison. *)
let e5_stack_overhead () =
  Harness.heading "E5: share of stack overhead attributable to presentation";
  let n_ints = 64 * 1024 in
  let ints = Array.init n_ints (fun i -> (i * 2654435761) land 0x7FFFFFFF) in
  let mss = 1460 in
  let transport_manips payload =
    (* Sender: segment (copy) + checksum each segment. Receiver: verify
       checksum + copy into place. *)
    let len = Bytebuf.length payload in
    let recv = Bytebuf.create len in
    let pos = ref 0 in
    while !pos < len do
      let seg_len = min mss (len - !pos) in
      let seg = Bytebuf.sub payload ~pos:!pos ~len:seg_len in
      let dst = Bytebuf.sub recv ~pos:!pos ~len:seg_len in
      (* send side: checksum over the outgoing segment *)
      ignore (Kernels.checksum seg);
      (* receive side: verify + move into place in one read (ILP'd) *)
      ignore (Kernels.copy_checksum ~src:seg ~dst);
      pos := !pos + seg_len
    done
  in
  (* Baseline: a "very long OCTET STRING" in image mode. *)
  let octets = Wire.Lwts.encode_int_array ints in
  let t_raw = Harness.seconds_per_run (fun () -> transport_manips octets) in
  (* Conversion-intensive, toolkit presentation (ISODE-flavoured). *)
  let value = Wire.Value.int_array ints in
  let t_toolkit =
    Harness.seconds_per_run ~runs:3 (fun () ->
        let encoded = Wire.Ber.encode_interpretive value in
        transport_manips encoded;
        ignore (Wire.Ber.decode encoded))
  in
  (* Conversion-intensive, tuned presentation. *)
  let t_tuned =
    Harness.seconds_per_run (fun () ->
        let encoded = Wire.Ber.encode_int_array ints in
        transport_manips encoded;
        ignore (Wire.Ber.decode_int_array encoded))
  in
  Harness.row_header [ "s/transfer"; "slowdown"; "presentation share" ];
  Harness.row "octet string (no conversion)"
    [ Harness.f3 t_raw; "1.0x"; "0%" ];
  Harness.row "int array, tuned BER"
    [
      Harness.f3 t_tuned;
      Printf.sprintf "%.1fx" (t_tuned /. t_raw);
      Harness.pct ((t_tuned -. t_raw) /. t_tuned);
    ];
  Harness.row "int array, toolkit BER (ISODE-like)"
    [
      Harness.f3 t_toolkit;
      Printf.sprintf "%.1fx" (t_toolkit /. t_raw);
      Harness.pct ((t_toolkit -. t_raw) /. t_toolkit);
    ];
  Harness.note
    "Paper: the conversion-intensive case ran ~30x slower through TCP+ISODE,\n\
     ~97%% of stack overhead in presentation; hand-tuned conversion bounds the\n\
     range at 4-5x. Both ends of the range should reproduce in shape above.\n"

(* ------------------------------------------------------------------ *)
(* E6 — The pipeline-stall experiment: ALF vs TCP under loss.          *)
(* ------------------------------------------------------------------ *)

let e6_one ~alf ~loss =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:20260704L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:2048 ~bandwidth_bps:10e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let total_bytes = 400_000 in
  (* The application presentation conversion is the bottleneck: slightly
     faster than the wire, so any stall starves it unrecoverably. *)
  let app = Pipeline.create ~engine ~rate_bps:12e6 () in
  let peak_backlog = ref 0 in
  if alf then begin
    let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
    let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
    let receiver =
      Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:9 ~stream:1
        ~deliver:(fun adu -> Pipeline.feed app ~bytes:(Bytebuf.length adu.Adu.payload))
        ()
    in
    let sender =
      Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:9 ~port:10
        ~stream:1 ~policy:Recovery.Transport_buffer
        ~config:
          { Alf_transport.default_sender_config with Alf_transport.pace_bps = Some 9e6 }
        ()
    in
    let adu_size = 4000 in
    for i = 0 to (total_bytes / adu_size) - 1 do
      Alf_transport.send_adu sender
        (Adu.make
           (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
           (Bytebuf.create adu_size))
    done;
    Alf_transport.close sender;
    Engine.run ~until:600.0 engine;
    ignore (Alf_transport.receiver_stats receiver);
    (Pipeline.finish_time app, !peak_backlog)
  end
  else begin
    let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
    let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
    Transport.Tcp.on_deliver receiver (fun chunk ->
        Pipeline.feed app ~bytes:(Bytebuf.length chunk));
    (* Sample the resequencing-buffer occupancy: data that has arrived but
       cannot reach the presentation pipeline. *)
    let rec watch () =
      peak_backlog := max !peak_backlog (Transport.Tcp.buffered_bytes receiver);
      if not (Transport.Tcp.closed receiver) then
        ignore (Engine.schedule_after engine 0.002 watch)
    in
    watch ();
    Transport.Tcp.send sender (Bytebuf.create total_bytes);
    Transport.Tcp.finish sender;
    Engine.run ~until:600.0 engine;
    (Pipeline.finish_time app, !peak_backlog)
  end

let e6_alf_pipeline () =
  Harness.heading
    "E6: presentation pipeline under loss - in-order (TCP) vs out-of-order ADUs (ALF)";
  Harness.note
    "400 kB transfer, 10 Mb/s link, 10 ms delay; application converts at 12 Mb/s\n\
     (the bottleneck). Completion = when the last byte finishes conversion.\n\n";
  Harness.row_header
    [ "TCP done(s)"; "ALF done(s)"; "TCP/ALF"; "TCP starve(s)"; "ALF starve(s)"; "TCP stall(B)" ];
  (* Pure conversion work is total_bytes at rate_bps; everything beyond
     that in the completion time is converter starvation. *)
  let busy = 8.0 *. 400_000.0 /. 12e6 in
  List.iter
    (fun loss ->
      let tcp_done, tcp_peak = e6_one ~alf:false ~loss in
      let alf_done, _ = e6_one ~alf:true ~loss in
      Harness.row
        (Printf.sprintf "loss = %.0f%%" (loss *. 100.0))
        [
          Harness.f2 tcp_done;
          Harness.f2 alf_done;
          Printf.sprintf "%.2fx" (tcp_done /. alf_done);
          Harness.f2 (tcp_done -. busy);
          Harness.f2 (alf_done -. busy);
          string_of_int tcp_peak;
        ])
    [ 0.0; 0.01; 0.02; 0.05; 0.10 ];
  Harness.note
    "Shape: at zero loss the two are equivalent; as loss grows, TCP's in-order\n\
     delivery starves the converter (idle time and stalled bytes grow) while\n\
     ALF degrades gracefully.\n\n";
  (* Ablation: the ADU-size choice at 5% loss. Small ADUs pay header and
     NACK bookkeeping; big ADUs lose more bytes per lost fragment group
     and wait longer for completeness (the section 5 bounding rule on the
     packet network, complementing E7(b) on cells). *)
  Harness.subheading "ADU-size ablation at 5% loss (same transfer, ALF only)";
  Harness.row_header [ "ALF done(s)"; "rexmit(kB)"; "frags" ];
  List.iter
    (fun adu_size ->
      let engine = Engine.create () in
      let rng = Rng.create ~seed:90210L in
      let net =
        Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.05)
          ~queue_limit:2048 ~bandwidth_bps:10e6 ~delay:0.01 ~a:1 ~b:2 ()
      in
      let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
      let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
      let receiver =
        Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:9 ~stream:1
          ~deliver:(fun _ -> ()) ()
      in
      let done_at = ref nan in
      Alf_transport.on_complete receiver (fun () -> done_at := Engine.now engine);
      let sender =
        Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:9 ~port:10
          ~stream:1 ~policy:Recovery.Transport_buffer
          ~config:
            { Alf_transport.default_sender_config with
              Alf_transport.pace_bps = Some 9e6 }
          ()
      in
      let total = 400_000 in
      for i = 0 to (total / adu_size) - 1 do
        Alf_transport.send_adu sender
          (Adu.make
             (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
             (Bytebuf.create adu_size))
      done;
      Alf_transport.close sender;
      Engine.run ~until:600.0 engine;
      let s = Alf_transport.sender_stats sender in
      Harness.row
        (Printf.sprintf "ADU = %d B" adu_size)
        [
          Harness.f2 !done_at;
          string_of_int (s.Alf_transport.bytes_retransmitted / 1000);
          string_of_int s.Alf_transport.frags_sent;
        ])
    [ 500; 1000; 2000; 4000; 8000; 16000; 40000 ]

(* ------------------------------------------------------------------ *)
(* E7 — ADUs over ATM cells.                                           *)
(* ------------------------------------------------------------------ *)

let e7_atm_adu () =
  Harness.heading "E7: ADUs over ATM - adaptation layers and the unit of synchronisation";
  let open Atmsim in
  let adu_bytes = 1000 in
  let n_adus = 500 in
  let run_aal5 p seed =
    let rng = Rng.create ~seed in
    let delivered = ref 0 in
    let wire_cells = ref 0 in
    let r = Aal5.reassembler ~deliver:(fun _ -> incr delivered) () in
    for i = 0 to n_adus - 1 do
      let adu =
        Adu.make (Adu.name ~dest_off:(i * adu_bytes) ~dest_len:adu_bytes ~stream:1 ~index:i ())
          (Bytebuf.create adu_bytes)
      in
      List.iter
        (fun (payload, eof) ->
          incr wire_cells;
          if not (Rng.bool rng ~p) then Aal5.push r payload ~eof)
        (Aal5.segment (Adu.encode adu))
    done;
    (!delivered, !wire_cells)
  in
  let run_aal34 p seed =
    let rng = Rng.create ~seed in
    let delivered = ref 0 in
    let wire_cells = ref 0 in
    let r = Aal34.reassembler ~deliver:(fun ~mid:_ _ -> incr delivered) in
    for i = 0 to n_adus - 1 do
      let adu =
        Adu.make (Adu.name ~dest_off:(i * adu_bytes) ~dest_len:adu_bytes ~stream:1 ~index:i ())
          (Bytebuf.create adu_bytes)
      in
      List.iter
        (fun pdu ->
          incr wire_cells;
          if not (Rng.bool rng ~p) then Aal34.push r pdu)
        (Aal34.segment ~mid:(i land 0x3FF) (Adu.encode adu))
    done;
    (!delivered, !wire_cells)
  in
  Harness.subheading
    (Printf.sprintf "(a) goodput vs cell loss: %d ADUs of %d B" n_adus adu_bytes);
  Harness.row_header
    [ "AAL5 delivered"; "AAL3/4 delivered"; "AAL5 cells"; "AAL3/4 cells" ];
  List.iter
    (fun p ->
      let d5, c5 = run_aal5 p 1L in
      let d34, c34 = run_aal34 p 2L in
      Harness.row
        (Printf.sprintf "cell loss = %.2f%%" (p *. 100.0))
        [
          Harness.pct (float_of_int d5 /. float_of_int n_adus);
          Harness.pct (float_of_int d34 /. float_of_int n_adus);
          string_of_int c5;
          string_of_int c34;
        ])
    [ 0.0; 0.0005; 0.001; 0.005; 0.01 ];
  Harness.subheading "(b) whole-ADU loss vs ADU size (cell loss 0.5%): the size-bounding rule";
  Harness.row_header [ "cells/ADU"; "measured loss"; "predicted 1-(1-p)^n" ];
  List.iter
    (fun size ->
      let n_adus = 400 in
      let rng = Rng.create ~seed:(Int64.of_int size) in
      let delivered = ref 0 in
      let cells_per_adu = ref 0 in
      let r = Aal5.reassembler ~deliver:(fun _ -> incr delivered) () in
      for i = 0 to n_adus - 1 do
        let adu =
          Adu.make (Adu.name ~dest_off:0 ~dest_len:size ~stream:1 ~index:i ())
            (Bytebuf.create size)
        in
        let cells = Aal5.segment (Adu.encode adu) in
        cells_per_adu := List.length cells;
        List.iter
          (fun (payload, eof) ->
            if not (Rng.bool rng ~p:0.005) then Aal5.push r payload ~eof)
          cells
      done;
      let measured = 1.0 -. (float_of_int !delivered /. float_of_int n_adus) in
      let predicted = 1.0 -. ((1.0 -. 0.005) ** float_of_int !cells_per_adu) in
      Harness.row
        (Printf.sprintf "ADU = %d B" size)
        [ string_of_int !cells_per_adu; Harness.pct measured; Harness.pct predicted ])
    [ 500; 1000; 2000; 4000; 8000; 16000 ];
  Harness.note
    "Shape: per-cell overhead (AAL3/4 spends 4 B/cell, AAL5 ~0) and whole-ADU\n\
     loss growing with ADU size: \"excessively large ADUs might prevent useful\n\
     progress at all\".\n"

(* ------------------------------------------------------------------ *)
(* E8 — Control vs manipulation cost in the running stack.             *)
(* ------------------------------------------------------------------ *)

let e8_control_vs_manip () =
  Harness.heading "E8: in-band control operations vs data manipulation";
  Harness.note
    "A 500 kB TCP transfer through the simulator; control operations and\n\
     manipulation byte-touches are counted as they execute, then costed with\n\
     the R2000 model (control op ~ 15 cycles - 'tens of instructions';\n\
     manipulation ~ %.2f cycles/byte for checksum+copy).\n\n"
    ((Machine_model.cycles_per_word Machine_model.r2000 Machine_model.copy_kernel
     +. Machine_model.cycles_per_word Machine_model.r2000 Machine_model.checksum_kernel)
    /. 4.0);
  let run mss =
    let engine = Engine.create () in
    let rng = Rng.create ~seed:88L in
    let net =
      Topology.point_to_point ~engine ~rng ~queue_limit:1024 ~bandwidth_bps:50e6
        ~delay:0.002 ~a:1 ~b:2 ()
    in
    let config = { Transport.Tcp.default_config with Transport.Tcp.mss } in
    let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 ~config () in
    let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 ~config () in
    Transport.Tcp.send sender (Bytebuf.create 500_000);
    Transport.Tcp.finish sender;
    Engine.run ~until:600.0 engine;
    let s = Transport.Tcp.stats sender and r = Transport.Tcp.stats receiver in
    let control = s.Transport.Tcp.control_ops + r.Transport.Tcp.control_ops in
    let manip_bytes =
      s.Transport.Tcp.manip_checksum_bytes + s.Transport.Tcp.manip_copy_bytes
      + r.Transport.Tcp.manip_checksum_bytes + r.Transport.Tcp.manip_copy_bytes
    in
    let segs = s.Transport.Tcp.segs_sent in
    (control, manip_bytes, segs)
  in
  let cycles_per_byte =
    (Machine_model.cycles_per_word Machine_model.r2000 Machine_model.copy_kernel
    +. Machine_model.cycles_per_word Machine_model.r2000 Machine_model.checksum_kernel)
    /. 2.0 /. 4.0
    (* checksum bytes and copy bytes are counted separately, so cost each
       touched byte at its own kernel's rate; use the average *)
  in
  let control_cycles = 15.0 in
  Harness.row_header
    [ "ctl ops/seg"; "manip B/seg"; "ctl cycles"; "manip cycles"; "manip share" ];
  List.iter
    (fun mss ->
      let control, manip_bytes, segs = run mss in
      let ctl_c = float_of_int control *. control_cycles in
      let man_c = float_of_int manip_bytes *. cycles_per_byte in
      Harness.row
        (Printf.sprintf "mss = %d" mss)
        [
          Harness.f1 (float_of_int control /. float_of_int segs);
          Harness.f1 (float_of_int manip_bytes /. float_of_int segs);
          Printf.sprintf "%.0f" ctl_c;
          Printf.sprintf "%.0f" man_c;
          Harness.pct (man_c /. (man_c +. ctl_c));
        ])
    [ 64; 128; 256; 512; 1024; 2048; 4096 ];
  Harness.note
    "Shape: control is a few operations per segment regardless of size;\n\
     manipulation grows with the byte count and dominates at any realistic MSS.\n"

(* ------------------------------------------------------------------ *)
(* E9 — Recovery-policy ablation.                                      *)
(* ------------------------------------------------------------------ *)

let e9_recovery_policies () =
  Harness.heading "E9: the three ALF recovery policies under 5% loss";
  let adu_size = 2000 in
  let count = 100 in
  let run policy =
    let engine = Engine.create () in
    let rng = Rng.create ~seed:424242L in
    let net =
      Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.05)
        ~queue_limit:2048 ~bandwidth_bps:10e6 ~delay:0.01 ~a:1 ~b:2 ()
    in
    let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
    let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
    let receiver =
      Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:9 ~stream:1 ~deliver:(fun _ -> ()) ()
    in
    let sender =
      Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:9 ~port:10 ~stream:1
        ~policy ()
    in
    for i = 0 to count - 1 do
      Alf_transport.send_adu sender
        (Adu.make
           (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
           (Bytebuf.init adu_size (fun j -> Char.chr ((i + j) land 0xff))))
    done;
    let completed_at = ref nan in
    Alf_transport.on_complete receiver (fun () -> completed_at := Engine.now engine);
    Alf_transport.close sender;
    Engine.run ~until:600.0 engine;
    let s = Alf_transport.sender_stats sender in
    let r = Alf_transport.receiver_stats receiver in
    ( !completed_at,
      s.Alf_transport.store_peak,
      s.Alf_transport.bytes_retransmitted,
      r.Alf_transport.adus_delivered,
      r.Alf_transport.adus_lost )
  in
  let regenerate i =
    let adu =
      Adu.make
        (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
        (Bytebuf.init adu_size (fun j -> Char.chr ((i + j) land 0xff)))
    in
    Some (Adu.encode adu)
  in
  Harness.row_header
    [ "sim time(s)"; "store peak(B)"; "rexmit(B)"; "delivered"; "lost" ];
  List.iter
    (fun (label, policy) ->
      let time, peak, rexmit, delivered, lost = run policy in
      Harness.row label
        [
          Harness.f2 time;
          string_of_int peak;
          string_of_int rexmit;
          string_of_int delivered;
          string_of_int lost;
        ])
    [
      ("transport-buffer", Recovery.Transport_buffer);
      ("app-recompute", Recovery.App_recompute regenerate);
      ("no-recovery", Recovery.No_recovery);
    ];
  Harness.note
    "Shape: transport buffering pays memory for zero app involvement;\n\
     app-recompute trades sender memory for recomputation; no-recovery is\n\
     fastest and lossy - the application chooses (paper section 5).\n"

(* ------------------------------------------------------------------ *)
(* E10 — Error-detection ablation: the checksum family.                *)
(* ------------------------------------------------------------------ *)

let e10_checksum_ablation () =
  Harness.heading
    "E10 (ablation): error-detecting codes - throughput vs detection strength";
  let buf_len = 64 * 1024 in
  let base = fresh_workload () in
  let data = Bytebuf.take base buf_len in
  let rng = Rng.create ~seed:0xC0DEL in
  let trials = 3000 in
  (* Detection rates against three error models. *)
  let flip_byte b =
    let i = Rng.int rng ~bound:(Bytebuf.length b) in
    Bytebuf.set_uint8 b i (Bytebuf.get_uint8 b i lxor (1 + Rng.int rng ~bound:255))
  in
  let swap_words b =
    (* Transpose two aligned 16-bit words - the Internet checksum's blind
       spot (one's-complement addition commutes). *)
    let nwords = Bytebuf.length b / 2 in
    let i = Rng.int rng ~bound:nwords and j = Rng.int rng ~bound:nwords in
    if i <> j then
      for k = 0 to 1 do
        let tmp = Bytebuf.get_uint8 b ((2 * i) + k) in
        Bytebuf.set_uint8 b ((2 * i) + k) (Bytebuf.get_uint8 b ((2 * j) + k));
        Bytebuf.set_uint8 b ((2 * j) + k) tmp
      done
  in
  let burst b =
    let len = 2 + Rng.int rng ~bound:14 in
    let i = Rng.int rng ~bound:(Bytebuf.length b - len) in
    for k = i to i + len - 1 do
      Bytebuf.set_uint8 b k (Rng.int rng ~bound:256)
    done
  in
  let detection kind damage =
    let clean = Checksum.Kind.digest kind data in
    let detected = ref 0 in
    let changed = ref 0 in
    for _ = 1 to trials do
      let bad = Bytebuf.copy data in
      damage bad;
      if not (Bytebuf.equal bad data) then begin
        incr changed;
        if Checksum.Kind.digest kind bad <> clean then incr detected
      end
    done;
    if !changed = 0 then 1.0 else float_of_int !detected /. float_of_int !changed
  in
  Harness.row_header [ "Mb/s"; "1-byte flips"; "word swaps"; "bursts" ];
  List.iter
    (fun kind ->
      let speed =
        Harness.measure_mbps (Checksum.Kind.to_string kind) ~bytes:buf_len
          (fun () -> ignore (Checksum.Kind.digest kind data))
      in
      Harness.row
        (Checksum.Kind.to_string kind)
        [
          Harness.f1 speed;
          Harness.pct (detection kind flip_byte);
          Harness.pct (detection kind swap_words);
          Harness.pct (detection kind burst);
        ])
    Checksum.Kind.all;
  Harness.note
    "The design-choice trade the stage library exposes: the Internet checksum\n\
     is order-blind (word swaps sail through - one's-complement addition\n\
     commutes), Fletcher/Adler add position sensitivity, CRC-32 catches\n\
     everything tried here. Throughputs of the byte-wise reference paths are\n\
     comparable on this host; ALF lets each application pick per-ADU, because\n\
     the checksum is just a stage.\n"

(* ------------------------------------------------------------------ *)
(* E11 — ADU-level FEC vs NACK retransmission (footnote 10).           *)
(* ------------------------------------------------------------------ *)

let e11_fec_vs_retransmission () =
  Harness.heading
    "E11 (ablation): repairing fragment loss - XOR FEC vs NACK retransmission";
  let n_adus = 200 in
  let adu_size = 6000 in
  let mtu = 1000 in
  (* NACK path: the ALF transport through the simulator. *)
  let nack_run loss =
    let engine = Engine.create () in
    let rng = Rng.create ~seed:0xFECL in
    let net =
      Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
        ~queue_limit:4096 ~bandwidth_bps:50e6 ~delay:0.02 ~a:1 ~b:2 ()
    in
    let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
    let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
    let receiver =
      Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:9 ~stream:1 ~deliver:(fun _ -> ()) ()
    in
    let done_at = ref nan in
    Alf_transport.on_complete receiver (fun () -> done_at := Engine.now engine);
    let sender =
      Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:9 ~port:10 ~stream:1
        ~policy:Recovery.Transport_buffer
        ~config:
          { Alf_transport.default_sender_config with
            Alf_transport.mtu;
            pace_bps = Some 45e6 (* out-of-band rate control *) } ()
    in
    for i = 0 to n_adus - 1 do
      Alf_transport.send_adu sender
        (Adu.make (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
           (Bytebuf.create adu_size))
    done;
    Alf_transport.close sender;
    Engine.run ~until:600.0 engine;
    let s = Alf_transport.sender_stats sender in
    let wire = s.Alf_transport.bytes_sent + s.Alf_transport.bytes_retransmitted in
    (!done_at, wire, 1.0)
  in
  (* FEC path: the same fragments protected k=7+1 and pushed through the
     same loss process; no feedback channel at all, so "completion" is
     one one-way trip - we report delivered fraction instead. *)
  let fec_run loss =
    let rng = Rng.create ~seed:0xFEDL in
    let k = 7 in
    let complete = ref 0 in
    let wire = ref 0 in
    for i = 0 to n_adus - 1 do
      let adu =
        Adu.make (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
          (Bytebuf.create adu_size)
      in
      let frags = Framing.fragment ~mtu adu in
      let protected_frags = Fec.protect ~k frags in
      let got = ref 0 in
      let reasm =
        Framing.reassembler ~deliver:(fun _ -> incr complete) ()
      in
      let d =
        Fec.decoder ~deliver:(fun frag ->
            incr got;
            match Framing.parse_fragment frag with
            | info -> Framing.push reasm info
            | exception Framing.Frag_error _ -> ())
          ()
      in
      List.iter
        (fun b ->
          wire := !wire + Bufkit.Bytebuf.length b;
          if not (Rng.bool rng ~p:loss) then Fec.push d b)
        protected_frags;
      Fec.flush d
    done;
    (float_of_int !complete /. float_of_int n_adus, !wire)
  in
  Harness.row_header
    [ "NACK done(s)"; "NACK wire(kB)"; "FEC delivered"; "FEC wire(kB)" ];
  List.iter
    (fun loss ->
      let nack_time, nack_wire, _ = nack_run loss in
      let fec_frac, fec_wire = fec_run loss in
      Harness.row
        (Printf.sprintf "loss = %.0f%%" (loss *. 100.0))
        [
          Harness.f2 nack_time;
          string_of_int (nack_wire / 1000);
          Harness.pct fec_frac;
          string_of_int (fec_wire / 1000);
        ])
    [ 0.0; 0.01; 0.02; 0.05; 0.10 ];
  Harness.note
    "The paper's footnote 10 option: pay ~1/k constant overhead and repair any\n\
     single fragment loss per group with zero feedback delay; NACK repair pays\n\
     only for actual losses but each costs a round trip (and the sender's\n\
     buffer). Beyond one loss per group FEC alone degrades - real systems\n\
     combine both.\n"

(* ------------------------------------------------------------------ *)
(* E12 — §7 parallel sink: fused stage-2 plans across worker domains.  *)
(* ------------------------------------------------------------------ *)

let e12_ilp_parallel () =
  Harness.heading
    "E12: parallel stage-2 - one fused ILP plan per ADU, sharded over N domains, Mb/s";
  let n_adus = 64 in
  let adu_size = 16 * 1024 in
  let total = n_adus * adu_size in
  let rng = Rng.create ~seed:0x12DL in
  let adus =
    Array.init n_adus (fun i ->
        let payload = Bytebuf.create adu_size in
        Rng.fill_bytes rng payload;
        Adu.make
          (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1
             ~index:i ())
          payload)
  in
  let plan (_ : Adu.t) =
    [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ]
  in
  let dst = Bytebuf.create total in
  (* Correctness gate before any timing: the parallel sink must be
     byte-identical to the layered reference, merged checksum included,
     whatever order the worker domains finish in. *)
  let reference =
    Array.map (fun (a : Adu.t) -> Ilp.run_layered (plan a) a.Adu.payload) adus
  in
  let ref_merged =
    Ilp_par.merge_checksums
      (Array.map (fun (r : Ilp.result) -> r.Ilp.checksums) reference)
  in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      let outcome = Ilp_par.run ~pool ~dst ~plan adus in
      Array.iteri
        (fun i (r : Ilp.result) ->
          assert (Bytebuf.equal r.Ilp.output reference.(i).Ilp.output))
        outcome.Ilp_par.results;
      assert (outcome.Ilp_par.merged_checksums = ref_merged));
  let serial =
    Harness.measure_mbps "serial" ~bytes:total (fun () ->
        Array.iter
          (fun (a : Adu.t) -> ignore (Ilp.run_layered (plan a) a.Adu.payload))
          adus)
  in
  let fused domains =
    let name = Printf.sprintf "fused-x%d" domains in
    if domains = 1 then
      Harness.measure_mbps name ~bytes:total (fun () ->
          ignore (Ilp_par.run ~dst ~plan adus))
    else
      Par.Pool.with_pool ~domains (fun pool ->
          Harness.measure_mbps name ~bytes:total (fun () ->
              ignore (Ilp_par.run ~pool ~dst ~plan adus)))
  in
  let f1 = fused 1 in
  let f2 = fused 2 in
  let f4 = fused 4 in
  Harness.row_header [ "Mb/s"; "vs serial"; "vs fused-x1" ];
  Harness.row "serial (layered, 1 domain)"
    [ Harness.f1 serial; "1.00x"; "-" ];
  let show name v =
    Harness.row name
      [
        Harness.f1 v;
        Printf.sprintf "%.2fx" (v /. serial);
        Printf.sprintf "%.2fx" (v /. f1);
      ]
  in
  show "fused x1 domain" f1;
  show "fused x2 domains" f2;
  show "fused x4 domains" f4;
  (* The degradation rule, exercised: an Rc4 plan poisons out-of-order
     processing, so the engine runs the batch serially and says so. *)
  let rc4_plan (_ : Adu.t) =
    [ Ilp.Rc4_stream { key = "k" }; Ilp.Deliver_copy ]
  in
  let fallback =
    Par.Pool.with_pool ~domains:4 (fun pool ->
        Ilp_par.run ~pool ~plan:rc4_plan adus)
  in
  assert (fallback.Ilp_par.parallel_adus = 0);
  assert (fallback.Ilp_par.serial_fallback = n_adus);
  Harness.note
    "%d ADUs x %d KiB, plan = [checksum; deliver]. This host has %d core(s):\n\
     speedup needs real cores, so judge the x2/x4 rows on a multi-core runner\n\
     (expect ~Nx for this memory-light plan; the rows land in BENCH_ilp.json\n\
     either way). An Rc4 plan degraded to serial as required: parallel=%d,\n\
     serial_fallback=%d of %d.\n"
    n_adus (adu_size / 1024)
    (Domain.recommended_domain_count ())
    fallback.Ilp_par.parallel_adus fallback.Ilp_par.serial_fallback n_adus

(* ------------------------------------------------------------------ *)
(* E14 — the plan compiler: general word-at-a-time fusion, plan cache,  *)
(* and the pooled zero-copy receive path.                               *)
(* ------------------------------------------------------------------ *)

let e14_ilp_compile () =
  Harness.heading "E14: compiled plans - general word-at-a-time fusion, Mb/s";
  let bytes = 65536 in
  let src = Bytebuf.take (fresh_workload ()) bytes in
  (* Coverage first: every valid shape must dispatch to the compiler. The
     interpreter survives only as the oracle (and inside Rc4 byte tails). *)
  let coverage =
    [
      [];
      [ Ilp.Deliver_copy ];
      [ Ilp.Checksum Checksum.Kind.Crc32 ];
      [ Ilp.Byteswap32; Ilp.Deliver_copy ];
      [ Ilp.Rc4_stream { key = "cov" }; Ilp.Deliver_copy ];
      List.map (fun k -> Ilp.Checksum k) Checksum.Kind.all;
      [
        Ilp.Byteswap32;
        Ilp.Checksum Checksum.Kind.Fletcher32;
        Ilp.Xor_pad { key = 1L; pos = 9L };
        Ilp.Checksum Checksum.Kind.Adler32;
        Ilp.Deliver_copy;
      ];
    ]
  in
  List.iter
    (fun plan ->
      let r = Ilp.run_fused plan src in
      if not r.Ilp.compiled then
        failwith "E14: a valid plan fell back to interpretation")
    coverage;
  let plans =
    [
      (* The acceptance plan: the paper's decrypt+checksum+move triple. *)
      ( "3stage",
        [
          Ilp.Xor_pad { key = 42L; pos = 0L };
          Ilp.Checksum Checksum.Kind.Internet;
          Ilp.Deliver_copy;
        ] );
      (* General shapes with no hand-written kernel: only the compiler
         runs these fused. *)
      ( "bswap-crc32",
        [ Ilp.Byteswap32; Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ] );
      ( "dual-cksum",
        [
          Ilp.Checksum Checksum.Kind.Internet;
          Ilp.Xor_pad { key = 7L; pos = 5L };
          Ilp.Checksum Checksum.Kind.Fletcher32;
          Ilp.Deliver_copy;
        ] );
      (* Inherently serial stage: word-wide XOR of a byte-at-a-time
         keystream — the compiler's worst case. *)
      ( "rc4",
        [
          Ilp.Rc4_stream { key = "bench-key" };
          Ilp.Checksum Checksum.Kind.Internet;
          Ilp.Deliver_copy;
        ] );
    ]
  in
  Harness.row_header
    [ "serial (layered)"; "interpreted"; "compiled"; "compiled/serial" ];
  let ratios =
    List.map
      (fun (name, plan) ->
        let r = Ilp.run_fused plan src in
        let o = Ilp.run_fused_interpreted plan src in
        assert (r.Ilp.compiled && not o.Ilp.compiled);
        assert (Bytebuf.equal r.Ilp.output o.Ilp.output);
        assert (r.Ilp.checksums = o.Ilp.checksums);
        let serial =
          Harness.measure_mbps (name ^ "/serial") ~bytes (fun () ->
              ignore (Ilp.run_layered plan src))
        in
        let interp =
          Harness.measure_mbps (name ^ "/interpreted") ~bytes (fun () ->
              ignore (Ilp.run_fused_interpreted plan src))
        in
        let fused =
          Harness.measure_mbps (name ^ "/compiled") ~bytes (fun () ->
              ignore (Ilp.run_fused plan src))
        in
        Harness.row name
          [
            Harness.f1 serial;
            Harness.f1 interp;
            Harness.f1 fused;
            Printf.sprintf "%.2fx" (fused /. serial);
          ];
        (name, fused /. serial))
      plans
  in
  let cs = Ilp.plan_cache_stats () in
  Harness.note
    "Every plan above ran through the general compiler (one lowering per\n\
     shape): plan cache %d entries, %d hits / %d misses process-wide.\n"
    cs.Ilp.entries cs.Ilp.hits cs.Ilp.misses;
  (* The pooled receive path: stage-1 reassembly out of a buffer pool,
     stage-2 fused decrypt+verify into pooled output slices. After one
     warmup ADU, the path performs zero Bytebuf allocations per ADU. *)
  let adu_bytes = 8192 in
  let key = 0xFEEDL in
  let reasm_pool = Pool.create ~buf_size:(adu_bytes + 64) () in
  let out_pool = Pool.create ~buf_size:adu_bytes () in
  let processed = ref 0 in
  let stage =
    Stage2.create ~out_pool
      ~plan:(Stage2.decrypt_verify_at ~key)
      ~deliver:(fun _ -> incr processed)
      ()
  in
  let reasm = Framing.reassembler ~pool:reasm_pool ~deliver:(Stage2.deliver_fn stage) () in
  let payload = Bytebuf.take (fresh_workload ()) adu_bytes in
  let frags =
    List.map Framing.parse_fragment
      (Framing.fragment ~mtu:1500
         (Adu.make
            (Adu.name ~stream:0 ~index:0 ~dest_off:0 ~dest_len:adu_bytes ())
            payload))
  in
  let push_adu () = List.iter (Framing.push reasm) frags in
  push_adu () (* warm the pools and the plan cache *);
  let snap = Bytebuf.created_total () in
  let rounds = 512 in
  for _ = 1 to rounds do
    push_adu ()
  done;
  let creates = Bytebuf.created_total () - snap in
  if creates <> 0 then
    failwith
      (Printf.sprintf "E14: pooled receive allocated %d buffers in %d ADUs"
         creates rounds);
  let rx = Harness.measure_mbps "pooled-receive" ~bytes:adu_bytes push_adu in
  Harness.note
    "Pooled receive (reassemble + fused decrypt/verify, %d-byte ADUs):\n\
    \  %.1f Mb/s, %d Bytebuf allocations across %d steady-state ADUs\n\
    \  (0 per ADU; counter bufkit.bytebuf.created via Bytebuf.created_total).\n"
    adu_bytes rx creates rounds;
  ignore ratios

(* ------------------------------------------------------------------ *)
(* E15 — fused presentation conversion: the marshaller as ILP stage.   *)
(* ------------------------------------------------------------------ *)

let e15_ilp_marshal () =
  Harness.heading
    "E15: fused marshal+checksum vs encode-then-checksum-then-copy, Mb/s";
  (* A presentation-heavy ADU: many small typed records, the regime where
     the paper's conversion+checksum integration (28 -> 24 Mb/s) applies. *)
  let value =
    Wire.Value.List
      (List.init 2048 (fun i ->
           Wire.Value.Record
             [
               ("seq", Wire.Value.Int i);
               ("stamp", Wire.Value.Int64 (Int64.of_int (i * 1_000_003)));
               ("tag", Wire.Value.Utf8 "sensor");
               ("payload", Wire.Value.int_array [| i; i + 1; i + 2; i + 3 |]);
             ]))
  in
  let plan = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ] in
  let codec name source encode =
    let n = Ilp.marshal_size source in
    let dst = Bytebuf.create n in
    let host m fn = Harness.measure_mbps (name ^ "/" ^ m) ~bytes:n fn in
    let enc = host "encode-only" (fun () -> ignore (encode ())) in
    let mar =
      host "marshal-only" (fun () -> ignore (Ilp.run_marshal ~dst source []))
    in
    let serial =
      (* The layered composition: a finished encoding, then a checksum
         pass over it, then the delivering copy — three walks. *)
      host "serial" (fun () -> ignore (Ilp.run_layered plan (encode ())))
    in
    let fused =
      host "fused" (fun () -> ignore (Ilp.run_marshal ~dst source plan))
    in
    Harness.subheading
      (Printf.sprintf "%s (%d bytes on the wire)" name n);
    Harness.row_header [ "Mb/s" ];
    Harness.row "encode alone (cursor walk)" [ Harness.f1 enc ];
    Harness.row "fused marshal, no stages" [ Harness.f1 mar ];
    Harness.row "serial: encode; checksum; copy" [ Harness.f1 serial ];
    Harness.row "fused: marshal+checksum+deliver" [ Harness.f1 fused ];
    Harness.note
      "  fused/serial %.2fx | fused vs encode-only %.2fx\n\
      \  (paper: integrating the checksum into conversion cost 28 -> 24 Mb/s,\n\
      \  0.86x of conversion alone, where the serial composition would have\n\
      \  paid two further full passes)\n"
      (fused /. serial) (fused /. enc)
  in
  let schema = Wire.Xdr.schema_of_value value in
  codec "xdr"
    (Ilp.Marshal_xdr (schema, value))
    (fun () -> Wire.Xdr.encode schema value);
  codec "ber" (Ilp.Marshal_ber value) (fun () -> Wire.Ber.encode value)

(* ------------------------------------------------------------------ *)
(* E19 — schema-compiled presentation: marshal without walking the     *)
(* value tags, validate-then-view instead of eager decode.             *)
(* ------------------------------------------------------------------ *)

let e19_schema_marshal () =
  Harness.heading
    "E19: schema-compiled marshal and lazy validate-view vs the interpreters";
  (* The E15 presentation-heavy shape, so the compiled/interpretive gap
     is measured on the same regime the fused-marshal experiment used. *)
  let value =
    Wire.Value.List
      (List.init 2048 (fun i ->
           Wire.Value.Record
             [
               ("seq", Wire.Value.Int i);
               ("stamp", Wire.Value.Int64 (Int64.of_int (i * 1_000_003)));
               ("tag", Wire.Value.Utf8 "sensor");
               ("payload", Wire.Value.int_array [| i; i + 1; i + 2; i + 3 |]);
             ]))
  in
  let schema = Wire.Xdr.schema_of_value value in
  let prog = Wire.Schema.prog_of_xdr schema in
  let plan = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ] in
  let n = Ilp.marshal_size (Ilp.Marshal_prog (prog, value)) in
  let dst = Bytebuf.create n in
  let host m fn = Harness.measure_mbps ("xdr/" ^ m) ~bytes:n fn in
  (* Transmit: the same fused marshal+checksum+deliver pass, interpreted
     (tag dispatch per node) vs compiled (the schema op-program), plus
     the cached entry point (schema-keyed lookup per call) and the raw
     copy that bounds them all. *)
  let interp =
    host "interp-fused" (fun () ->
        ignore (Ilp.run_marshal ~dst (Ilp.Marshal_xdr_interp (schema, value)) plan))
  in
  let compiled =
    host "compiled-fused" (fun () ->
        ignore (Ilp.run_marshal ~dst (Ilp.Marshal_prog (prog, value)) plan))
  in
  let cached =
    host "compiled-cached-fused" (fun () ->
        ignore (Ilp.run_marshal ~dst (Ilp.Marshal_xdr (schema, value)) plan))
  in
  let encoded = Wire.Xdr.encode schema value in
  let raw =
    host "raw-copy" (fun () ->
        Bytebuf.blit ~src:encoded ~src_pos:0 ~dst ~dst_pos:0 ~len:n)
  in
  (* Receive: eager decode (materialize the Value.t) vs the validate
     pass that backs the lazy view — both behind the same plan. *)
  let rx_plan = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ] in
  let rx_dst = Bytebuf.create n in
  let decode =
    host "decode-fused" (fun () ->
        ignore
          (Ilp.run_unmarshal ~dst:rx_dst rx_plan (Ilp.Unmarshal_xdr schema)
             encoded))
  in
  let view =
    host "view-fused" (fun () ->
        ignore (Ilp.run_view ~dst:rx_dst rx_plan prog encoded))
  in
  Harness.subheading (Printf.sprintf "xdr (%d bytes on the wire)" n);
  Harness.row_header [ "Mb/s" ];
  Harness.row "tx interpreted: fused marshal" [ Harness.f1 interp ];
  Harness.row "tx compiled: schema op-program" [ Harness.f1 compiled ];
  Harness.row "tx compiled, cache lookup per call" [ Harness.f1 cached ];
  Harness.row "tx bound: raw copy of the encoding" [ Harness.f1 raw ];
  Harness.row "rx eager: fused decode to Value.t" [ Harness.f1 decode ];
  Harness.row "rx lazy: fused validate -> view" [ Harness.f1 view ];
  Harness.note
    "  compiled/interp %.2fx (raw copy bounds both at %.0fx compiled)\n\
    \  view/decode %.2fx (validation is the whole per-byte cost of receive)\n"
    (compiled /. interp) (raw /. compiled) (view /. decode);
  (* The gate row: steady-state allocation counts on both directions and
     the schema-program cache traffic, machine-readable for perfcheck
     --schema. *)
  let tx_run () =
    ignore (Ilp.run_marshal ~dst (Ilp.Marshal_xdr (schema, value)) plan)
  and rx_run () = ignore (Ilp.run_view ~dst:rx_dst rx_plan prog encoded) in
  for _ = 1 to 5 do tx_run (); rx_run () done;
  let before = Bytebuf.created_total () in
  for _ = 1 to 50 do tx_run () done;
  let tx_allocs = Bytebuf.created_total () - before in
  let before = Bytebuf.created_total () in
  for _ = 1 to 50 do rx_run () done;
  let rx_allocs = Bytebuf.created_total () - before in
  let stats = Wire.Schema.cache_stats () in
  Harness.record_row ~name:"gate"
    [
      ("steady_allocs", Obs.Json.num_of_int tx_allocs);
      ("rx_steady_allocs", Obs.Json.num_of_int rx_allocs);
      ("cache_hits", Obs.Json.num_of_int stats.Wire.Schema.hits);
      ("cache_misses", Obs.Json.num_of_int stats.Wire.Schema.misses);
      ("cache_entries", Obs.Json.num_of_int stats.Wire.Schema.entries);
    ];
  Harness.note
    "  steady state: %d tx / %d rx Bytebuf allocations over 50 rounds each\n\
    \  schema cache: %d hits / %d misses (%d entries)\n"
    tx_allocs rx_allocs stats.Wire.Schema.hits stats.Wire.Schema.misses
    stats.Wire.Schema.entries

let e20_secure_record () =
  Harness.heading
    "E20: fused AEAD record layer vs the layered encrypt-then-MAC composition";
  (* The E15/E19 presentation-heavy shape again, so the record layer is
     measured on the same regime as the marshal experiments: the fused
     row is marshal + ChaCha20 + Poly1305 + CRC-32 framing in ONE pass. *)
  let value =
    Wire.Value.List
      (List.init 2048 (fun i ->
           Wire.Value.Record
             [
               ("seq", Wire.Value.Int i);
               ("stamp", Wire.Value.Int64 (Int64.of_int (i * 1_000_003)));
               ("tag", Wire.Value.Utf8 "sensor");
               ("payload", Wire.Value.int_array [| i; i + 1; i + 2; i + 3 |]);
             ]))
  in
  let schema = Wire.Xdr.schema_of_value value in
  let source = Ilp.Marshal_xdr (schema, value) in
  let n = Ilp.marshal_size source in
  let dst = Bytebuf.create n in
  let rc = Secure.Record.of_int64 0xE20BE7CA57L in
  let name = Adu.name ~dest_off:0 ~dest_len:n ~stream:7 ~index:0 () in
  let _, p = Secure.Record.seal_params rc name in
  (* One immutable AAD copy so every row MACs identical bytes without
     touching the record handle's scratch inside the timed loop. *)
  let aad = Bytebuf.create (Bytebuf.length p.Ilp.aead_aad) in
  Bytebuf.blit ~src:p.Ilp.aead_aad ~src_pos:0 ~dst:aad ~dst_pos:0
    ~len:(Bytebuf.length aad);
  let p = { p with Ilp.aead_aad = aad } in
  let host m fn = Harness.measure_mbps ("xdr/" ^ m) ~bytes:n fn in
  let tx_plan =
    [ Ilp.Aead_seal p; Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ]
  in
  let mar =
    host "marshal-only" (fun () -> ignore (Ilp.run_marshal ~dst source []))
  in
  (* The serial baseline: the layered reference stack a classical suite
     pays for the same record. Each layer owns its PDU — presentation
     encodes into a fresh buffer, the security layer copies it and runs
     encrypt-then-MAC byte by byte, the framing layer copies again and
     checksums byte by byte — processing at the byte grain the era's
     layered implementations worked at (the same grain as the E2/E14
     interpreted ablation; satellite §5 measures the RC4 byte-chain
     version of the same pathology). *)
  let serial =
    host "serial" (fun () ->
        let enc = (Ilp.run_marshal source []).Ilp.output in
        let ct = Bytebuf.copy enc in
        let a =
          Cipher.Aead.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad
        in
        let bytes, base, len = Bytebuf.backing ct in
        for i = 0 to len - 1 do
          Bytes.unsafe_set bytes (base + i)
            (Char.unsafe_chr
               (Cipher.Aead.seal_byte a i
                  (Char.code (Bytes.unsafe_get bytes (base + i)))))
        done;
        ignore (Cipher.Aead.tag a);
        let frame = Bytebuf.copy ct in
        let fb, fbase, _ = Bytebuf.backing frame in
        let st = ref Checksum.Crc32.init in
        for i = 0 to len - 1 do
          st :=
            Checksum.Crc32.feed_byte !st
              (Char.code (Bytes.unsafe_get fb (fbase + i)))
        done;
        ignore (Checksum.Crc32.finish !st))
  in
  (* The same composition hand-optimised to word grain, buffers reused:
     the upper bound for any layered implementation — encode, an
     encryption walk, a MAC walk (AAD ‖ pad ‖ ct ‖ pad ‖ lengths, per
     RFC 8439), a framing-checksum walk — four word-level passes where
     the plan compiler does one. *)
  let serial_words =
    host "serial-words" (fun () ->
        ignore (Ilp.run_marshal ~dst source []);
        let st =
          Cipher.Chacha20.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2
        in
        Cipher.Chacha20.transform_at st ~pos:0 dst;
        let k0, k1, k2, k3 = Cipher.Chacha20.poly_key st in
        let mac = Cipher.Poly1305.create ~k0 ~k1 ~k2 ~k3 in
        Cipher.Poly1305.feed_sub mac aad;
        Cipher.Poly1305.pad16 mac;
        Cipher.Poly1305.feed_sub mac dst;
        Cipher.Poly1305.pad16 mac;
        Cipher.Poly1305.feed_word64 mac (Int64.of_int (Bytebuf.length aad));
        Cipher.Poly1305.feed_word64 mac (Int64.of_int n);
        ignore (Cipher.Poly1305.finish mac);
        ignore
          (Checksum.Crc32.finish
             (Checksum.Crc32.feed_sub Checksum.Crc32.init dst ~pos:0 ~len:n)))
  in
  (* The stronger baseline: encrypt+MAC already fused per walk
     (seal_in_place), leaving encode, seal and checksum as three passes. *)
  let seal_crc =
    host "seal-then-checksum" (fun () ->
        ignore (Ilp.run_marshal ~dst source []);
        ignore
          (Cipher.Aead.seal_in_place ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
             ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad dst);
        ignore
          (Checksum.Crc32.finish
             (Checksum.Crc32.feed_sub Checksum.Crc32.init dst ~pos:0 ~len:n)))
  in
  let fused =
    host "fused" (fun () -> ignore (Ilp.run_marshal ~dst source tx_plan))
  in
  (* Receive: the record open — MAC over the ciphertext and the decrypt —
     fused into one in-place walk vs the two-walk MAC-then-decrypt. *)
  let sealed = Bytebuf.create n in
  let reseal () =
    ignore (Ilp.run_marshal ~dst:sealed source []);
    ignore
      (Cipher.Aead.seal_in_place ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
         ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad sealed)
  in
  reseal ();
  let ct_copy = Bytebuf.create n in
  Bytebuf.blit ~src:sealed ~src_pos:0 ~dst:ct_copy ~dst_pos:0 ~len:n;
  let restore () =
    Bytebuf.blit ~src:ct_copy ~src_pos:0 ~dst:sealed ~dst_pos:0 ~len:n
  in
  (* Layered receiver at the byte grain, mirroring the [serial] sender:
     the framing layer checks its CRC and strips (a pass and a copy),
     the security layer MACs and decrypts (two more passes), each walk
     one byte at a time. *)
  let open_serial =
    host "open-serial" (fun () ->
        let bytes, base, len = Bytebuf.backing sealed in
        let st = ref Checksum.Crc32.init in
        for i = 0 to len - 1 do
          st :=
            Checksum.Crc32.feed_byte !st
              (Char.code (Bytes.unsafe_get bytes (base + i)))
        done;
        ignore (Checksum.Crc32.finish !st);
        let ct = Bytebuf.copy sealed in
        let cb, cbase, _ = Bytebuf.backing ct in
        let ks =
          Cipher.Chacha20.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2
        in
        let k0, k1, k2, k3 = Cipher.Chacha20.poly_key ks in
        let mac = Cipher.Poly1305.create ~k0 ~k1 ~k2 ~k3 in
        Cipher.Poly1305.feed_sub mac aad;
        Cipher.Poly1305.pad16 mac;
        for i = 0 to len - 1 do
          Cipher.Poly1305.feed_byte mac (Char.code (Bytes.unsafe_get cb (cbase + i)))
        done;
        Cipher.Poly1305.pad16 mac;
        Cipher.Poly1305.feed_word64 mac (Int64.of_int (Bytebuf.length aad));
        Cipher.Poly1305.feed_word64 mac (Int64.of_int n);
        ignore (Cipher.Poly1305.finish mac);
        for i = 0 to len - 1 do
          Bytes.unsafe_set cb (cbase + i)
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get cb (cbase + i))
               lxor Cipher.Chacha20.byte_at ks i))
        done)
  in
  (* Word-grain layered receiver, buffers reused: CRC walk, MAC walk,
     decrypt walk — three word-level passes. *)
  let open_words =
    host "open-words" (fun () ->
        ignore
          (Checksum.Crc32.finish
             (Checksum.Crc32.feed_sub Checksum.Crc32.init sealed ~pos:0 ~len:n));
        let ks =
          Cipher.Chacha20.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2
        in
        let k0, k1, k2, k3 = Cipher.Chacha20.poly_key ks in
        let mac = Cipher.Poly1305.create ~k0 ~k1 ~k2 ~k3 in
        Cipher.Poly1305.feed_sub mac aad;
        Cipher.Poly1305.pad16 mac;
        Cipher.Poly1305.feed_sub mac sealed;
        Cipher.Poly1305.pad16 mac;
        Cipher.Poly1305.feed_word64 mac (Int64.of_int (Bytebuf.length aad));
        Cipher.Poly1305.feed_word64 mac (Int64.of_int n);
        ignore (Cipher.Poly1305.finish mac);
        Cipher.Chacha20.transform_at ks ~pos:0 sealed;
        restore ())
  in
  (* Fused receiver: framing CRC, MAC and decrypt ride one word loop —
     every wire word is loaded once. *)
  let open_fused =
    host "open-fused" (fun () ->
        let a =
          Cipher.Aead.create ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
            ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad
        in
        let bytes, base, len = Bytebuf.backing sealed in
        let st = ref Checksum.Crc32.init in
        let i = ref 0 in
        while !i + 8 <= len do
          let w = Bytes.get_int64_le bytes (base + !i) in
          st := Checksum.Crc32.feed_word64le !st w;
          Bytes.set_int64_le bytes (base + !i) (Cipher.Aead.open_word a !i w);
          i := !i + 8
        done;
        while !i < len do
          let b = Char.code (Bytes.unsafe_get bytes (base + !i)) in
          st := Checksum.Crc32.feed_byte !st b;
          Bytes.unsafe_set bytes (base + !i)
            (Char.unsafe_chr (Cipher.Aead.open_byte a !i b));
          incr i
        done;
        ignore (Checksum.Crc32.finish !st);
        ignore (Cipher.Aead.tag a);
        restore ())
  in
  Harness.subheading (Printf.sprintf "xdr (%d bytes on the wire)" n);
  Harness.row_header [ "Mb/s" ];
  Harness.row "fused marshal, no stages" [ Harness.f1 mar ];
  Harness.row "serial: layered stack, byte grain" [ Harness.f1 serial ];
  Harness.row "serial-words: 4 word-grain walks" [ Harness.f1 serial_words ];
  Harness.row "serial-words + seal_in_place" [ Harness.f1 seal_crc ];
  Harness.row "fused: marshal+seal+checksum+deliver" [ Harness.f1 fused ];
  Harness.row "rx serial: byte-grain CRC;MAC;decrypt" [ Harness.f1 open_serial ];
  Harness.row "rx words: CRC, MAC, decrypt walks" [ Harness.f1 open_words ];
  Harness.row "rx fused: CRC+MAC+decrypt, one walk" [ Harness.f1 open_fused ];
  Harness.note
    "  fused/serial %.2fx (vs word-grain layered %.2fx, vs seal_in_place \
     composition %.2fx)\n\
    \  rx fused/serial %.2fx (vs word-grain %.2fx) | record cost vs bare \
     marshal %.2fx\n"
    (fused /. serial)
    (fused /. serial_words)
    (fused /. seal_crc)
    (open_fused /. open_serial)
    (open_fused /. open_words)
    (fused /. mar);
  (* The gate row: the fused seal and the in-place open must do no
     steady-state Bytebuf allocation — the record layer adds zero buffer
     traffic to the send and receive paths. *)
  let tx_run () = ignore (Ilp.run_marshal ~dst source tx_plan) in
  let rx_run () =
    ignore
      (Cipher.Aead.open_in_place_tag ~key:p.Ilp.aead_key ~n0:p.Ilp.aead_n0
         ~n1:p.Ilp.aead_n1 ~n2:p.Ilp.aead_n2 ~aad sealed);
    restore ()
  in
  for _ = 1 to 5 do tx_run (); rx_run () done;
  let before = Bytebuf.created_total () in
  for _ = 1 to 50 do tx_run () done;
  let tx_allocs = Bytebuf.created_total () - before in
  let before = Bytebuf.created_total () in
  for _ = 1 to 50 do rx_run () done;
  let rx_allocs = Bytebuf.created_total () - before in
  Harness.record_row ~name:"gate"
    [
      ("steady_allocs", Obs.Json.num_of_int tx_allocs);
      ("rx_steady_allocs", Obs.Json.num_of_int rx_allocs);
    ];
  Harness.note
    "  steady state: %d tx / %d rx Bytebuf allocations over 50 rounds each\n"
    tx_allocs rx_allocs

let experiments =
  [
    ("table1", e1_table1);
    ("ilp-fusion", e2_ilp_fusion);
    ("presentation-cost", e3_presentation_cost);
    ("fused-convert", e4_fused_convert);
    ("stack-overhead", e5_stack_overhead);
    ("alf-pipeline", e6_alf_pipeline);
    ("atm-adu", e7_atm_adu);
    ("control-vs-manip", e8_control_vs_manip);
    ("recovery-policies", e9_recovery_policies);
    ("checksum-ablation", e10_checksum_ablation);
    ("fec-vs-rexmit", e11_fec_vs_retransmission);
    ("ilp-parallel", e12_ilp_parallel);
    ("ilp-compile", e14_ilp_compile);
    ("ilp-marshal", e15_ilp_marshal);
    ("schema-marshal", e19_schema_marshal);
    ("secure-record", e20_secure_record);
  ]

let () =
  (* ALFNET_BENCH_QUOTA=0.2 shortens the per-measurement Bechamel quota
     (seconds) for quick iteration; default 0.5. *)
  (match Sys.getenv_opt "ALFNET_BENCH_QUOTA" with
  | Some q -> (try Harness.quota := float_of_string q with Failure _ -> ())
  | None -> ());
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let to_run =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" n
                  (String.concat ", " (List.map fst experiments));
                exit 2)
          names
  in
  Printf.printf
    "alfnet experiment harness - reproducing Clark & Tennenhouse, SIGCOMM 1990\n";
  List.iter
    (fun (name, f) ->
      Harness.set_experiment name;
      f ())
    to_run;
  (* Machine-readable throughput results for cross-revision comparison;
     ALFNET_BENCH_JSON overrides the output path. *)
  let json_path =
    match Sys.getenv_opt "ALFNET_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_ilp.json"
  in
  match Harness.write_json json_path with
  | () ->
      Printf.printf "\n%d measurements written to %s\n"
        (Harness.recorded_count ()) json_path
  | exception Sys_error msg ->
      (* The measurements above already printed; a bad output path should
         not turn the whole run into a crash. *)
      Printf.eprintf "\nerror: cannot write %s (%s)\n" json_path msg;
      exit 1
