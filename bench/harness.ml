(* Shared measurement and table-printing helpers for the experiment
   harness. Micro-benchmarks go through Bechamel (OLS over run counts);
   macro experiments that execute a whole data path once use the
   process-time stopwatch. *)

open Bechamel
open Toolkit

let quota = ref 0.5

(* --- Machine-readable results --- *)

(* Every throughput measurement is also appended here and dumped as one
   JSON array at the end of the run (BENCH_ilp.json), so results can be
   diffed across revisions. Measurement names repeat between experiments
   ("copy" is measured by E1, E2 and E3), so entries are qualified as
   "<experiment>/<measurement>" by [set_experiment]. *)
let experiment = ref ""
let set_experiment name = experiment := name

let records : Obs.Json.t list ref = ref []

let record_measurement ~name ~bytes ~ns ~mbps =
  if Float.is_finite ns && Float.is_finite mbps then begin
    let qualified =
      if !experiment = "" then name else !experiment ^ "/" ^ name
    in
    records :=
      Obs.Json.Obj
        [
          ("name", Obs.Json.Str qualified);
          ("bytes", Obs.Json.num_of_int bytes);
          ("mbps", Obs.Json.Num mbps);
          ("ns_per_run", Obs.Json.Num ns);
        ]
      :: !records
  end

(* Append a custom machine-readable row alongside the throughput
   measurements — experiments use this to carry non-throughput gate
   fields (allocation counts, cache hit rates) into the JSON output.
   Qualified like measurements: "<experiment>/<name>". *)
let record_row ~name fields =
  let qualified = if !experiment = "" then name else !experiment ^ "/" ^ name in
  records :=
    Obs.Json.Obj (("name", Obs.Json.Str qualified) :: fields) :: !records

let recorded_count () = List.length !records

let write_json path =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string_pretty (Obs.Json.Arr (List.rev !records)));
  output_char oc '\n';
  close_out oc

(* Nanoseconds per run of [fn], by linear regression. *)
let ns_per_run name fn =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second !quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate = ref nan in
  Hashtbl.iter
    (fun _ o ->
      match Analyze.OLS.estimates o with
      | Some (e :: _) -> estimate := e
      | Some [] | None -> ())
    results;
  !estimate

(* Megabits of payload per second given bytes processed per run. *)
let mbps ~bytes ~ns = 8.0 *. float_of_int bytes /. ns *. 1000.0

let measure_mbps name ~bytes fn =
  let ns = ns_per_run name fn in
  let v = mbps ~bytes ~ns in
  record_measurement ~name ~bytes ~ns ~mbps:v;
  v

(* One-shot stopwatch over a macro operation repeated [runs] times;
   returns seconds per run of CPU time. *)
let seconds_per_run ?(runs = 5) fn =
  fn () (* warm up *);
  let t0 = Sys.time () in
  for _ = 1 to runs do
    fn ()
  done;
  (Sys.time () -. t0) /. float_of_int runs

(* --- Table printing --- *)

let heading title =
  Printf.printf "\n=== %s ===\n" title

let subheading text = Printf.printf "--- %s ---\n" text

let row_header cols =
  Printf.printf "%-34s" "";
  List.iter (fun c -> Printf.printf "%18s" c) cols;
  print_newline ();
  Printf.printf "%s\n" (String.make (34 + (18 * List.length cols)) '-')

let row label cells =
  Printf.printf "%-34s" label;
  List.iter (fun v -> Printf.printf "%18s" v) cells;
  print_newline ()

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let note fmt = Printf.printf fmt
