(* File transfer with Application Level Framing (paper section 5).

   Each ADU is labelled by the sender with the file offset it occupies at
   the receiver, so the receiving side writes every ADU straight into
   place the moment it completes - even with earlier ADUs still missing.
   The same file is then pushed through the TCP-like in-order stream for
   contrast: identical bytes, but nothing can be written past a hole.

     dune exec examples/file_transfer.exe *)

open Bufkit
open Netsim
open Alf_core

let file_size = 200_000
let adu_size = 4000
let loss = 0.05

let make_file () =
  let rng = Rng.create ~seed:123L in
  let b = Bytebuf.create file_size in
  Rng.fill_bytes rng b;
  b

let run_alf file =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:1024 ~bandwidth_bps:20e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let udp_a = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let udp_b = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let out = Sink.create ~size:file_size in
  let first_write_after_gap = ref None in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:udp_b ~port:20 ~stream:1
      ~deliver:(fun adu ->
        (* The sender-computed name tells us exactly where this ADU's
           bytes live in the file - no waiting for predecessors. *)
        (match Sink.write_adu out adu with
        | Ok () -> ()
        | Error e -> failwith e);
        if !first_write_after_gap = None && Sink.missing_ranges out <> []
           && adu.Adu.name.Adu.dest_off > 0
        then
          first_write_after_gap :=
            Some (Engine.now engine, adu.Adu.name.Adu.dest_off))
      ()
  in
  let done_at = ref nan in
  Alf_transport.on_complete receiver (fun () -> done_at := Engine.now engine);
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:udp_a ~peer:2 ~peer_port:20 ~port:21
      ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  List.iter (Alf_transport.send_adu sender)
    (Framing.frames_of_buffer ~stream:1 ~adu_size file);
  Alf_transport.close sender;
  Engine.run ~until:120.0 engine;
  let r = Alf_transport.receiver_stats receiver in
  Printf.printf "ALF: file complete at t=%.3fs; %d ADUs delivered, %d out of order\n"
    !done_at r.Alf_transport.adus_delivered r.Alf_transport.out_of_order;
  (match !first_write_after_gap with
  | Some (t, off) ->
      Printf.printf
        "     (first out-of-order write: offset %d at t=%.3fs, with earlier bytes missing)\n"
        off t
  | None -> ());
  (!done_at, Sink.contents out)

let run_tcp file =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:1024 ~bandwidth_bps:20e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
  let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
  let out = Bytebuf.create file_size in
  let pos = ref 0 in
  Transport.Tcp.on_deliver receiver (fun chunk ->
      (* A byte stream has no names: data can only land sequentially. *)
      Bytebuf.blit ~src:chunk ~src_pos:0 ~dst:out ~dst_pos:!pos
        ~len:(Bytebuf.length chunk);
      pos := !pos + Bytebuf.length chunk);
  let done_at = ref nan in
  Transport.Tcp.on_close receiver (fun () -> done_at := Engine.now engine);
  Transport.Tcp.send sender file;
  Transport.Tcp.finish sender;
  Engine.run ~until:120.0 engine;
  Printf.printf "TCP: file complete at t=%.3fs; %d retransmissions\n" !done_at
    (Transport.Tcp.stats sender).Transport.Tcp.retransmits;
  (!done_at, out)

let () =
  Printf.printf
    "transferring a %d kB file over a %.0f%%-lossy 20 Mb/s link, both ways\n\n"
    (file_size / 1000) (loss *. 100.0);
  let file = make_file () in
  let alf_time, alf_out = run_alf file in
  let tcp_time, tcp_out = run_tcp file in
  let ok_alf = Bytebuf.equal alf_out file in
  let ok_tcp = Bytebuf.equal tcp_out file in
  Printf.printf "\nintegrity: ALF %s, TCP %s (CRC32 original=%08lx)\n"
    (if ok_alf then "OK" else "CORRUPT")
    (if ok_tcp then "OK" else "CORRUPT")
    (Checksum.Crc32.digest file);
  Printf.printf "completion: ALF %.3fs vs TCP %.3fs (%.2fx)\n" alf_time tcp_time
    (tcp_time /. alf_time);
  if not (ok_alf && ok_tcp) then exit 1
