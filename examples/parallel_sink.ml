(* The parallel-processor example of section 7.

   "If the data is organized into ADUs, each ADU will contain enough
   information to control its own delivery." A source stripes a dataset
   across the memories of four worker nodes through a switch; no central
   hot spot reassembles the stream, because every ADU names its worker
   and its offset within that worker's shard.

   The workers are real: after the (virtual-time) network delivers the
   shards, each worker's stage-2 verification pass — a fused ILP
   checksum+deliver plan over its whole shard — runs on its own OCaml
   domain via Par.Pool, writing into its pre-assigned result slot. No
   lock, no merge queue, no reassembly hot spot.

     dune exec examples/parallel_sink.exe *)

open Bufkit
open Netsim
open Alf_core

let workers = 4
let shard_bytes = 64_000
let adu_size = 2000

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1234L in
  (* One source (addr 100) and four workers (addr 1..4) on a star. *)
  let hosts = 100 :: List.init workers (fun i -> i + 1) in
  let star =
    Topology.star ~engine ~rng ~impair:(Impair.lossy 0.02) ~queue_limit:512
      ~bandwidth_bps:50e6 ~delay:0.002 ~hosts ()
  in
  let node_index = Hashtbl.create (List.length hosts) in
  List.iteri (fun i addr -> Hashtbl.replace node_index addr i) hosts;
  let node_of addr =
    match Hashtbl.find_opt node_index addr with
    | Some i -> star.Topology.hub_hosts.(i)
    | None ->
        failwith
          (Printf.sprintf "parallel_sink: no host with address %d on the star"
             addr)
  in
  let source_udp = Transport.Udp.create ~engine ~node:(node_of 100) () in

  (* The dataset: each worker w owns bytes [w*shard; (w+1)*shard). *)
  let dataset = Bytebuf.create (workers * shard_bytes) in
  Rng.fill_bytes (Rng.create ~seed:5L) dataset;

  (* Each worker runs an independent ALF receiver writing ADUs into its
     local shard memory - the ADU name alone routes and places the data. *)
  let shards = Array.init workers (fun _ -> Bytebuf.create shard_bytes) in
  let receivers =
    Array.init workers (fun w ->
        let udp = Transport.Udp.create ~engine ~node:(node_of (w + 1)) () in
        Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp ~port:40 ~stream:w
          ~deliver:(fun adu ->
            let local_off = adu.Adu.name.Adu.dest_off in
            Bytebuf.blit ~src:adu.Adu.payload ~src_pos:0 ~dst:shards.(w)
              ~dst_pos:local_off
              ~len:(Bytebuf.length adu.Adu.payload))
          ())
  in

  (* One ALF sender per worker stream, all multiplexed over a single
     port of the source's single interface: the stream field in every
     message is the one demultiplexing key (no port per worker). *)
  let source_mux = Mux.create ~udp:source_udp ~port:50 in
  let senders =
    Array.init workers (fun w ->
        Alf_transport.sender_mux ~sched:(Netsim.Engine.sched engine) ~mux:source_mux ~peer:(w + 1)
          ~peer_port:40 ~stream:w ~policy:Recovery.Transport_buffer ())
  in
  for w = 0 to workers - 1 do
    let shard = Bytebuf.sub dataset ~pos:(w * shard_bytes) ~len:shard_bytes in
    (* dest_off is in the *worker's* name-space: its local shard offset. *)
    List.iter (Alf_transport.send_adu senders.(w))
      (Framing.frames_of_buffer ~stream:w ~adu_size shard);
    Alf_transport.close senders.(w)
  done;

  Engine.run ~until:60.0 engine;

  (* Stage 2, in parallel for real: one verification task per worker,
     sharded across domains. Every task owns result slot [w] and reads
     only its own shard, so the tasks share nothing. *)
  let plan = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ] in
  let verified = Array.make workers (false, 0) in
  Par.Pool.with_pool ~domains:workers (fun pool ->
      Par.Pool.run pool
        (Array.init workers (fun w () ->
             let expect =
               Bytebuf.sub dataset ~pos:(w * shard_bytes) ~len:shard_bytes
             in
             let r = Ilp.run_fused plan shards.(w) in
             let cksum =
               match r.Ilp.checksums with (_, c) :: _ -> c | [] -> 0
             in
             verified.(w) <- (Bytebuf.equal shards.(w) expect, cksum))));

  Printf.printf
    "striped %d kB across %d workers (2%% loss, repaired per ADU);\n\
     stage-2 verification ran on %d domains (host has %d core(s))\n\n"
    (workers * shard_bytes / 1000)
    workers workers
    (Domain.recommended_domain_count ());
  let all_ok = ref true in
  Array.iteri
    (fun w shard ->
      let ok, cksum = verified.(w) in
      all_ok := !all_ok && ok;
      let r = Alf_transport.receiver_stats receivers.(w) in
      Printf.printf
        "worker %d: shard %s (crc %08lx, stage-2 cksum %04x), %d ADUs (%d out \
         of order), complete=%b\n"
        (w + 1)
        (if ok then "OK" else "CORRUPT")
        (Checksum.Crc32.digest shard)
        cksum r.Alf_transport.adus_delivered r.Alf_transport.out_of_order
        (Alf_transport.complete receivers.(w)))
    shards;
  Printf.printf
    "\nNo node ever saw the whole stream: each ADU steered itself to its\n\
     worker and offset, and each worker verified its shard on its own\n\
     domain. A sequence-numbered byte stream could not be split this way\n\
     without a reassembly hot spot.\n";
  if not !all_ok then exit 1
