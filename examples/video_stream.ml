(* Continuous-media delivery: ADUs named in space and time.

   A 25 fps "video" is sent as one ADU per tile, each named with
   (timestamp, tile id) - section 5's generalised name-space. The
   application plays frames at their deadline and simply skips whatever
   has not arrived: the no-retransmission recovery policy. The same feed
   through the in-order byte stream shows head-of-line blocking turning
   one lost packet into many late frames.

     dune exec examples/video_stream.exe *)

open Bufkit
open Netsim
open Alf_core

let fps = 25
let frames = 100
let tiles_per_frame = 4
let tile_bytes = 1500
let loss = 0.03
let playout_delay = 0.08 (* seconds of buffer before the first deadline *)

let frame_period = 1.0 /. float_of_int fps

(* --- ALF: per-tile ADUs, no retransmission --- *)

let run_alf () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:2025L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:256 ~bandwidth_bps:8e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let udp_a = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let udp_b = Transport.Udp.create ~engine ~node:net.Topology.b () in
  (* The playout buffer regenerates inter-frame timing from the ADUs'
     timestamps; whatever misses its deadline is skipped, not awaited. *)
  let played = Array.make_matrix frames tiles_per_frame false in
  let playout =
    Playout.create ~engine ~playout_delay
      ~play:(fun adu ->
        let f = Int64.to_int adu.Adu.name.Adu.timestamp_us * fps / 1_000_000 in
        let tile = adu.Adu.name.Adu.dest_off in
        if f >= 0 && f < frames && tile < tiles_per_frame then
          played.(f).(tile) <- true)
      ()
  in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:udp_b ~port:30 ~stream:1
      ~nack_interval:1e9 (* no NACKs: losses are simply tolerated *)
      ~deliver:(fun adu -> Playout.insert playout adu)
      ()
  in
  ignore receiver;
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:udp_a ~peer:2 ~peer_port:30 ~port:31
      ~stream:1 ~policy:Recovery.No_recovery ()
  in
  (* The camera: every 40 ms, emit this frame's tiles as timed ADUs. *)
  let index = ref 0 in
  for f = 0 to frames - 1 do
    let t_frame = float_of_int f *. frame_period in
    let ts = Int64.of_float (t_frame *. 1e6) in
    for _ = 1 to tiles_per_frame do
      Playout.expect playout ~timestamp_us:ts
    done;
    ignore
      (Engine.schedule_at engine t_frame (fun () ->
           for tile = 0 to tiles_per_frame - 1 do
             let name =
               Adu.name ~dest_off:tile ~dest_len:tile_bytes ~timestamp_us:ts
                 ~stream:1 ~index:!index ()
             in
             incr index;
             Alf_transport.send_adu sender (Adu.make name (Bytebuf.create tile_bytes))
           done))
  done;
  ignore
    (Engine.schedule_at engine (float_of_int frames *. frame_period) (fun () ->
         Alf_transport.close sender));
  Engine.run ~until:30.0 engine;
  let complete = ref 0 and partial = ref 0 in
  Array.iter
    (fun tiles ->
      let n = Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 tiles in
      if n = tiles_per_frame then incr complete else if n > 0 then incr partial)
    played;
  let st = Playout.stats playout in
  Printf.printf
    "ALF  (no-recovery): %d/%d frames complete at deadline, %d partial, %d tiles missing, %d late\n"
    !complete frames !partial st.Playout.missing st.Playout.late;
  Printf.printf
    "     playout margin mean %.1f ms, sd %.1f ms (each tile decodable on arrival)\n"
    (1000.0 *. Stats.mean st.Playout.early_margin)
    (1000.0 *. Stats.stddev st.Playout.early_margin)

(* --- TCP: the same feed as an in-order byte stream --- *)

let run_tcp () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:2025L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:256 ~bandwidth_bps:8e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
  let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
  (* Tile boundaries in the stream are implicit: tile k spans
     [k*tile_bytes, (k+1)*tile_bytes). Record when each tile's last byte
     becomes deliverable in order. *)
  let total_tiles = frames * tiles_per_frame in
  let tile_done = Array.make total_tiles nan in
  let got = ref 0 in
  Transport.Tcp.on_deliver receiver (fun chunk ->
      let before = !got in
      got := !got + Bytebuf.length chunk;
      let first_tile = (before + tile_bytes - 1) / tile_bytes in
      let last_tile = (!got / tile_bytes) - 1 in
      for k = first_tile to min last_tile (total_tiles - 1) do
        tile_done.(k) <- Engine.now engine
      done);
  for f = 0 to frames - 1 do
    let t_frame = float_of_int f *. frame_period in
    ignore
      (Engine.schedule_at engine t_frame (fun () ->
           Transport.Tcp.send sender
             (Bytebuf.create (tiles_per_frame * tile_bytes))))
  done;
  ignore
    (Engine.schedule_at engine (float_of_int frames *. frame_period) (fun () ->
         Transport.Tcp.finish sender));
  Engine.run ~until:60.0 engine;
  let complete = ref 0 and partial = ref 0 and missed_tiles = ref 0 in
  for f = 0 to frames - 1 do
    let deadline = (float_of_int f *. frame_period) +. playout_delay in
    let tiles_on_time = ref 0 in
    for tile = 0 to tiles_per_frame - 1 do
      let t = tile_done.((f * tiles_per_frame) + tile) in
      if Float.is_nan t || t > deadline then incr missed_tiles else incr tiles_on_time
    done;
    if !tiles_on_time = tiles_per_frame then incr complete
    else if !tiles_on_time > 0 then incr partial
  done;
  Printf.printf
    "TCP  (in-order):    %d/%d frames complete at deadline, %d partial, %d tiles late/missing\n"
    !complete frames !partial !missed_tiles

let () =
  Printf.printf
    "streaming %d frames at %d fps (%d tiles each) over a %.0f%%-lossy link;\n\
     playout deadline = capture + %.0f ms\n\n"
    frames fps tiles_per_frame (loss *. 100.0) (playout_delay *. 1000.0);
  run_alf ();
  run_tcp ();
  Printf.printf
    "\nThe ALF receiver skips lost tiles and keeps playing; the byte stream\n\
     stalls every frame behind a retransmission (head-of-line blocking).\n"
