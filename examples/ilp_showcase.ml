(* Integrated Layer Processing, from declaration to execution.

   One declarative receive plan - decrypt, checksum the plaintext, move
   into application memory - executed three ways, with the ordering
   constraints the paper discusses checked by the engine itself:

     layered            one pass per stage (what layering induces)
     fused-interpreted  one loop, per-byte dispatch over the stage list
     fused-compiled     one loop, hand-fused kernel (section 8's
                        "compilation" of the protocol suite)

   And the reason ALF cares: the same plan, positioned per ADU, decrypts
   ADUs in any arrival order.

     dune exec examples/ilp_showcase.exe *)

open Bufkit
open Alf_core

let key = 0x0FEDCBA987654321L

let time_mbps ~bytes f =
  (* A quick self-contained stopwatch (the bench harness uses Bechamel;
     an example should not need it). *)
  f ();
  let t0 = Sys.time () in
  let runs = ref 0 in
  while Sys.time () -. t0 < 0.3 do
    f ();
    incr runs
  done;
  8.0 *. float_of_int (bytes * !runs) /. (Sys.time () -. t0) /. 1e6

let () =
  let n = 256 * 1024 in
  let plaintext = Bytebuf.init n (fun i -> Char.chr ((i * 31) land 0xff)) in
  let ciphertext = Bytebuf.copy plaintext in
  Cipher.Pad.transform_at (Cipher.Pad.create ~key) ~pos:0L ciphertext;

  let plan =
    [ Ilp.Xor_pad { key; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ]
  in
  Printf.printf "plan: %s\n\n" (String.concat " -> " (List.map Ilp.stage_name plan));

  (* The engine validates ordering constraints before running anything. *)
  (match Ilp.validate [ Ilp.Deliver_copy; Ilp.Byteswap32 ] with
  | Error msg -> Printf.printf "constraint check works: %s\n" msg
  | Ok () -> assert false);
  Printf.printf "sequential cipher forces order: %b (ALF avoids such plans)\n\n"
    (Ilp.needs_in_order [ Ilp.Rc4_stream { key = "k" } ]);

  (* Same results, three execution strategies. *)
  let layered = Ilp.run_layered plan ciphertext in
  let fused = Ilp.run_fused plan ciphertext in
  assert (Bytebuf.equal layered.Ilp.output fused.Ilp.output);
  assert (Bytebuf.equal fused.Ilp.output plaintext);
  assert (layered.Ilp.checksums = fused.Ilp.checksums);
  Printf.printf "all strategies agree; plaintext checksum = %04x; compiled dispatch = %b\n\n"
    (List.assoc Checksum.Kind.Internet fused.Ilp.checksums)
    fused.Ilp.compiled;

  let mb_layered = time_mbps ~bytes:n (fun () -> ignore (Ilp.run_layered plan ciphertext)) in
  let mb_interp =
    time_mbps ~bytes:n (fun () -> ignore (Ilp.run_fused_interpreted plan ciphertext))
  in
  let mb_compiled = time_mbps ~bytes:n (fun () -> ignore (Ilp.run_fused plan ciphertext)) in
  Printf.printf "layered:           %8.1f Mb/s  (%d passes, %d bytes touched)\n"
    mb_layered layered.Ilp.passes layered.Ilp.bytes_touched;
  Printf.printf "fused-interpreted: %8.1f Mb/s  (1 pass, per-byte stage dispatch)\n" mb_interp;
  Printf.printf "fused-compiled:    %8.1f Mb/s  (1 pass, hand-fused kernel) -> %.1fx layered\n\n"
    mb_compiled (mb_compiled /. mb_layered);

  (* Out-of-order stage-2 processing: ADUs sealed at their own keystream
     positions decrypt in any order. *)
  let adus =
    Framing.frames_of_buffer ~stream:1 ~adu_size:50_000 plaintext
    |> List.map (Secure.seal ~key)
  in
  let processed = ref [] in
  let stage2 =
    Stage2.create
      ~plan:(Stage2.decrypt_verify_at ~key)
      ~deliver:(fun r -> processed := r.Stage2.adu :: !processed)
      ()
  in
  (* Feed last-to-first: maximal disorder. *)
  List.iter (Stage2.deliver_fn stage2) (List.rev adus);
  let out = Sink.create ~size:n in
  List.iter
    (fun adu ->
      match Sink.write_adu out adu with Ok () -> () | Error e -> failwith e)
    !processed;
  Printf.printf
    "stage 2 out of order: %d sealed ADUs processed in reverse arrival order;\n\
     reassembled plaintext %s (every plan dispatch compiled: %b)\n"
    (List.length adus)
    (if Bytebuf.equal (Sink.contents out) plaintext then "intact" else "CORRUPT")
    ((Stage2.stats stage2).Stage2.processed = List.length adus)
