(* Quickstart: send ten ADUs across a lossy simulated link and watch them
   arrive out of order but complete.

     dune exec examples/quickstart.exe *)

open Bufkit
open Netsim
open Alf_core

let () =
  (* 1. A virtual network: one duplex link, 10 Mb/s, 5 ms delay, and a
     harsh 10% packet loss so the recovery machinery has work to do. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.10)
      ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let udp_a = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let udp_b = Transport.Udp.create ~engine ~node:net.Topology.b () in

  (* 2. A receiver that processes each ADU the moment it is complete -
     out of order, using the ADU's own name to place it. *)
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:udp_b ~port:5000 ~stream:1
      ~deliver:(fun adu ->
        Printf.printf "  t=%.3fs  got ADU #%d (%d bytes for offset %d)\n"
          (Engine.now engine) adu.Adu.name.Adu.index
          (Bytebuf.length adu.Adu.payload) adu.Adu.name.Adu.dest_off)
      ()
  in
  Alf_transport.on_complete receiver (fun () ->
      Printf.printf "  t=%.3fs  stream complete\n" (Engine.now engine));

  (* 3. A sender with the classic recovery policy (transport buffers
     unacknowledged ADUs). *)
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:udp_a ~peer:2 ~peer_port:5000 ~port:5001
      ~stream:1 ~policy:Recovery.Transport_buffer ()
  in

  (* 4. Frame 20 kB of application data into ten 2 kB ADUs; each carries
     its destination offset, so none depends on its predecessors. *)
  let data = Bytebuf.init 20_000 (fun i -> Char.chr (i land 0xff)) in
  let adus = Framing.frames_of_buffer ~stream:1 ~adu_size:2000 data in
  Printf.printf "sending %d ADUs over a 10%%-lossy link...\n" (List.length adus);
  List.iter (Alf_transport.send_adu sender) adus;
  Alf_transport.close sender;

  (* 5. Run the virtual clock until everything settles. *)
  Engine.run ~until:30.0 engine;

  let s = Alf_transport.sender_stats sender in
  let r = Alf_transport.receiver_stats receiver in
  Printf.printf
    "\nsender: %d ADUs, %d fragments, %d retransmitted ADUs, %d NACKs heard\n"
    s.Alf_transport.adus_sent s.Alf_transport.frags_sent
    s.Alf_transport.adus_retransmitted s.Alf_transport.nacks_received;
  Printf.printf
    "receiver: %d delivered (%d out of order), %d duplicates, complete=%b\n"
    r.Alf_transport.adus_delivered r.Alf_transport.out_of_order
    r.Alf_transport.duplicates
    (Alf_transport.complete receiver)
