(* Text transfer: the smallest presentation conversion, end to end.

   Footnote 1 of the paper: even ASCII needs converting, because the
   network newline convention (CRLF) differs from the internal one (LF).
   That conversion CHANGES SIZES, which is the crux of section 5's
   placement argument: position 1000 of the network stream corresponds to
   no fixed position of the local document, so out-of-order placement is
   only possible because the SENDER runs the conversion far enough to
   compute each ADU's network-form offset and advertises it in the ADU
   name.

     dune exec examples/text_transfer.exe *)

open Bufkit
open Netsim
open Alf_core

let document =
  let line i =
    Printf.sprintf "line %03d: the quick brown fox jumps over the lazy dog\n" i
  in
  String.concat "" (List.init 200 line)

let () =
  (* The application's framing: cut the internal text after every tenth
     newline - ADU boundaries in the application's own terms (lines). *)
  let text_adus =
    let n = String.length document in
    let rec go start newlines i acc =
      if i >= n then
        List.rev (if start < n then String.sub document start (n - start) :: acc else acc)
      else if document.[i] = '\n' && newlines = 9 then
        go (i + 1) 0 (i + 1) (String.sub document start (i + 1 - start) :: acc)
      else
        go start (if document.[i] = '\n' then newlines + 1 else newlines) (i + 1) acc
    in
    go 0 0 0 []
  in
  (* Sender-side presentation: compute each ADU's place in the NETWORK
     form (sizes differ from the internal form!). *)
  let places = Wire.Text.placement text_adus in
  let network_total = List.fold_left (fun acc (_, l) -> acc + l) 0 places in
  Printf.printf
    "document: %d internal bytes -> %d network bytes in %d text ADUs\n"
    (String.length document) network_total (List.length text_adus);

  let engine = Engine.create () in
  let rng = Rng.create ~seed:2L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.08)
      ~queue_limit:512 ~bandwidth_bps:5e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in

  (* Receiver: place network-form ADUs straight into the network-form
     sink as they complete (any order), convert once at the end. *)
  let sink = Sink.create ~size:network_total in
  let out_of_place = ref 0 in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:2100 ~stream:1
      ~deliver:(fun adu ->
        (* Count genuine out-of-order placements: a hole exists below
           this ADU's offset at the moment it lands. *)
        (match Sink.missing_ranges sink with
        | (gap, _) :: _ when gap < adu.Adu.name.Adu.dest_off -> incr out_of_place
        | _ -> ());
        match Sink.write_adu sink adu with
        | Ok () -> ()
        | Error e -> failwith e)
      ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:2100 ~port:2101
      ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  List.iteri
    (fun index (text, (dest_off, dest_len)) ->
      let payload = Wire.Text.to_network text in
      assert (Bytebuf.length payload = dest_len);
      Alf_transport.send_adu sender
        (Adu.make (Adu.name ~dest_off ~dest_len ~stream:1 ~index ()) payload))
    (List.combine text_adus places);
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;

  let rstats = Alf_transport.receiver_stats receiver in
  Printf.printf
    "received: complete=%b; %d ADUs delivered, %d out of order, %d placed past a hole\n"
    (Sink.complete sink) rstats.Alf_transport.adus_delivered
    rstats.Alf_transport.out_of_order !out_of_place;
  (match Wire.Text.of_network (Sink.contents sink) with
  | Ok internal when internal = document ->
      Printf.printf "converted back: %d internal bytes, identical to the original\n"
        (String.length internal)
  | Ok _ -> failwith "document corrupted"
  | Error e -> failwith e);
  ignore receiver;
  Printf.printf
    "\nThe network form is %d bytes longer than the internal form; without the\n\
     sender-computed placements, no receiver could know where ADU k lands.\n"
    (network_total - String.length document)
