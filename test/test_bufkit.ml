open Bufkit

let check = Alcotest.check
let fail = Alcotest.fail

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- Bytebuf --- *)

let test_create_zeroed () =
  let b = Bytebuf.create 8 in
  check Alcotest.int "length" 8 (Bytebuf.length b);
  for i = 0 to 7 do
    check Alcotest.char "zero" '\000' (Bytebuf.get b i)
  done

let test_create_negative () =
  match Bytebuf.create (-1) with
  | _ -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_of_string_round_trip () =
  let s = "hello, world" in
  check Alcotest.string "round trip" s (Bytebuf.to_string (Bytebuf.of_string s))

let test_sub_aliases () =
  let b = Bytebuf.of_string "abcdef" in
  let v = Bytebuf.sub b ~pos:2 ~len:3 in
  Bytebuf.set v 0 'X';
  check Alcotest.string "write through view" "abXdef" (Bytebuf.to_string b);
  check Alcotest.string "view contents" "Xde" (Bytebuf.to_string v)

let test_sub_bounds () =
  let b = Bytebuf.create 4 in
  (match Bytebuf.sub b ~pos:2 ~len:3 with
  | _ -> fail "expected Bounds"
  | exception Bytebuf.Bounds _ -> ());
  match Bytebuf.sub b ~pos:(-1) ~len:1 with
  | _ -> fail "expected Bounds"
  | exception Bytebuf.Bounds _ -> ()

let test_split () =
  let a, b = Bytebuf.split (Bytebuf.of_string "abcdef") 2 in
  check Alcotest.string "left" "ab" (Bytebuf.to_string a);
  check Alcotest.string "right" "cdef" (Bytebuf.to_string b)

let test_get_set_bounds () =
  let b = Bytebuf.create 2 in
  (match Bytebuf.get b 2 with
  | _ -> fail "expected Bounds"
  | exception Bytebuf.Bounds _ -> ());
  (match Bytebuf.set b (-1) 'x' with
  | () -> fail "expected Bounds"
  | exception Bytebuf.Bounds _ -> ());
  match Bytebuf.set_uint8 b 0 256 with
  | () -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_blit () =
  let src = Bytebuf.of_string "abcdef" in
  let dst = Bytebuf.create 6 in
  Bytebuf.blit ~src ~src_pos:1 ~dst ~dst_pos:2 ~len:3;
  check Alcotest.string "blit" "\000\000bcd\000" (Bytebuf.to_string dst)

let test_blit_from_string () =
  let dst = Bytebuf.create 4 in
  Bytebuf.blit_from_string "wxyz" ~src_pos:1 ~dst ~dst_pos:0 ~len:3;
  check Alcotest.string "blit_from_string" "xyz\000" (Bytebuf.to_string dst)

let test_fill_view_only () =
  let b = Bytebuf.of_string "abcdef" in
  Bytebuf.fill (Bytebuf.sub b ~pos:1 ~len:3) 'z';
  check Alcotest.string "fill scoped to view" "azzzef" (Bytebuf.to_string b)

let test_copy_independent () =
  let b = Bytebuf.of_string "abc" in
  let c = Bytebuf.copy b in
  Bytebuf.set c 0 'X';
  check Alcotest.string "original untouched" "abc" (Bytebuf.to_string b)

let test_concat () =
  let parts = List.map Bytebuf.of_string [ "ab"; ""; "c"; "def" ] in
  check Alcotest.string "concat" "abcdef" (Bytebuf.to_string (Bytebuf.concat parts))

let test_equal_across_backings () =
  let a = Bytebuf.of_string "xabcx" in
  let b = Bytebuf.of_string "abc" in
  Alcotest.(check bool) "equal views" true
    (Bytebuf.equal (Bytebuf.sub a ~pos:1 ~len:3) b);
  Alcotest.(check bool) "unequal" false (Bytebuf.equal a b)

let prop_sub_compose =
  QCheck.Test.make ~name:"bytebuf sub composes" ~count:300
    QCheck.(triple (string_of_size Gen.(0 -- 64)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let buf = Bytebuf.of_string s in
      let p1 = if n = 0 then 0 else a mod (n + 1) in
      let l1 = n - p1 in
      let inner = Bytebuf.sub buf ~pos:p1 ~len:l1 in
      let p2 = if l1 = 0 then 0 else b mod (l1 + 1) in
      let l2 = l1 - p2 in
      Bytebuf.to_string (Bytebuf.sub inner ~pos:p2 ~len:l2)
      = Bytebuf.to_string (Bytebuf.sub buf ~pos:(p1 + p2) ~len:l2))

let prop_compare_matches_string =
  QCheck.Test.make ~name:"bytebuf compare = string compare" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 32)) (string_of_size Gen.(0 -- 32)))
    (fun (a, b) ->
      compare (Bytebuf.compare (Bytebuf.of_string a) (Bytebuf.of_string b)) 0
      = compare (String.compare a b) 0)

let prop_blit_overlap_memmove =
  QCheck.Test.make ~name:"bytebuf blit handles overlap (memmove)" ~count:300
    QCheck.(triple (string_of_size Gen.(1 -- 40)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let src_pos = a mod n and dst_pos = b mod n in
      let len = min (n - src_pos) (n - dst_pos) in
      (* Reference on plain strings. *)
      let expect = Bytes.of_string s in
      Bytes.blit_string s src_pos expect dst_pos len;
      let buf = Bytebuf.of_string s in
      Bytebuf.blit ~src:buf ~src_pos ~dst:buf ~dst_pos ~len;
      Bytebuf.to_string buf = Bytes.to_string expect)

(* --- Cursor --- *)

let test_cursor_round_trip () =
  let b = Bytebuf.create 64 in
  let w = Cursor.writer b in
  Cursor.put_u8 w 0xAB;
  Cursor.put_u16be w 0x1234;
  Cursor.put_u16le w 0x5678;
  Cursor.put_u32be w 0xDEADBEEFl;
  Cursor.put_u32le w 0xCAFEBABEl;
  Cursor.put_u64be w 0x0123456789ABCDEFL;
  Cursor.put_string w "xyz";
  let r = Cursor.reader (Cursor.written w) in
  check Alcotest.int "u8" 0xAB (Cursor.u8 r);
  check Alcotest.int "u16be" 0x1234 (Cursor.u16be r);
  check Alcotest.int "u16le" 0x5678 (Cursor.u16le r);
  check Alcotest.int32 "u32be" 0xDEADBEEFl (Cursor.u32be r);
  check Alcotest.int32 "u32le" 0xCAFEBABEl (Cursor.u32le r);
  Alcotest.(check int64) "u64be" 0x0123456789ABCDEFL (Cursor.u64be r);
  check Alcotest.string "string" "xyz" (Cursor.string r 3);
  check Alcotest.int "exhausted" 0 (Cursor.remaining r)

let test_cursor_underflow () =
  let r = Cursor.reader (Bytebuf.create 1) in
  match Cursor.u16be r with
  | _ -> fail "expected Underflow"
  | exception Cursor.Underflow _ -> ()

let test_cursor_overflow () =
  let w = Cursor.writer (Bytebuf.create 1) in
  match Cursor.put_u16be w 0 with
  | () -> fail "expected Overflow"
  | exception Cursor.Overflow _ -> ()

let test_cursor_zero_copy_bytes () =
  let b = Bytebuf.of_string "abcd" in
  let r = Cursor.reader b in
  let v = Cursor.bytes r 2 in
  Bytebuf.set v 0 'X';
  check Alcotest.string "aliases" "Xbcd" (Bytebuf.to_string b)

let prop_cursor_u32_round =
  QCheck.Test.make ~name:"cursor u32 be/le round trip" ~count:300 QCheck.int32
    (fun v ->
      let b = Bytebuf.create 8 in
      let w = Cursor.writer b in
      Cursor.put_u32be w v;
      Cursor.put_u32le w v;
      let r = Cursor.reader b in
      Int32.equal (Cursor.u32be r) v && Int32.equal (Cursor.u32le r) v)

let prop_cursor_u64_round =
  QCheck.Test.make ~name:"cursor u64be round trip" ~count:300 QCheck.int64
    (fun v ->
      let b = Bytebuf.create 8 in
      let w = Cursor.writer b in
      Cursor.put_u64be w v;
      Int64.equal (Cursor.u64be (Cursor.reader b)) v)

(* --- Iovec --- *)

let random_frags s rng_seed =
  (* Deterministic split of s into fragments. *)
  let rec go i salt acc =
    if i >= String.length s then List.rev acc
    else
      let step = 1 + ((salt * 7 + i) mod 5) in
      let len = min step (String.length s - i) in
      go (i + len) (salt + 13) (Bytebuf.of_string (String.sub s i len) :: acc)
  in
  go 0 rng_seed []

let test_iovec_basic () =
  let v = Iovec.of_list (random_frags "hello world" 3) in
  check Alcotest.int "length" 11 (Iovec.length v);
  check Alcotest.string "to_string" "hello world" (Iovec.to_string v);
  check Alcotest.char "get" 'w' (Iovec.get v 6)

let prop_iovec_fragmentation_invariant =
  QCheck.Test.make ~name:"iovec equal across fragmentations" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 80)) (pair small_nat small_nat))
    (fun (s, (s1, s2)) ->
      let a = Iovec.of_list (random_frags s s1) in
      let b = Iovec.of_list (random_frags s (s2 + 100)) in
      Iovec.equal a b && Iovec.to_string a = s
      && Bytebuf.to_string (Iovec.gather a) = s)

let prop_iovec_sub =
  QCheck.Test.make ~name:"iovec sub = string sub" ~count:300
    QCheck.(triple (string_of_size Gen.(0 -- 60)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let pos = if n = 0 then 0 else a mod (n + 1) in
      let len = if n - pos = 0 then 0 else b mod (n - pos + 1) in
      let v = Iovec.of_list (random_frags s 1) in
      Iovec.to_string (Iovec.sub v ~pos ~len) = String.sub s pos len)

let prop_iovec_chunk =
  QCheck.Test.make ~name:"iovec chunk partitions" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 60)) (int_range 1 9))
    (fun (s, size) ->
      let v = Iovec.of_list (random_frags s 2) in
      let chunks = Iovec.chunk v ~size in
      String.concat "" (List.map Iovec.to_string chunks) = s
      && List.for_all (fun c -> Iovec.length c <= size) chunks)

let test_iovec_fold_bytes () =
  let v = Iovec.of_list (random_frags "abc" 1) in
  let collected =
    Iovec.fold_bytes v ~init:[] ~f:(fun acc c -> c :: acc) |> List.rev
  in
  check
    Alcotest.(list char)
    "fold order" [ 'a'; 'b'; 'c' ] collected

let test_iovec_blit_to () =
  let v = Iovec.of_list (random_frags "abcdef" 5) in
  let dst = Bytebuf.create 8 in
  Iovec.blit_to v ~dst ~dst_pos:1;
  check Alcotest.string "blit_to" "\000abcdef\000" (Bytebuf.to_string dst)

let test_iovec_builders () =
  let v = Iovec.of_string "cd" in
  let v = Iovec.cons (Bytebuf.of_string "ab") v in
  let v = Iovec.snoc v (Bytebuf.of_string "ef") in
  let v = Iovec.append v (Iovec.of_string "gh") in
  check Alcotest.string "built" "abcdefgh" (Iovec.to_string v);
  check Alcotest.int "fragments" 4 (Iovec.fragments v);
  (* Empty fragments are dropped on construction. *)
  check Alcotest.int "empties dropped" 1
    (Iovec.fragments (Iovec.of_list [ Bytebuf.empty; Bytebuf.of_string "x"; Bytebuf.empty ]))

let test_iovec_get_bounds () =
  let v = Iovec.of_string "abc" in
  match Iovec.get v 3 with
  | _ -> fail "expected Bounds"
  | exception Bytebuf.Bounds _ -> ()

let test_cursor_writer_accounting () =
  let w = Cursor.writer (Bytebuf.create 10) in
  check Alcotest.int "fresh remaining" 10 (Cursor.writer_remaining w);
  Cursor.put_u16be w 1;
  check Alcotest.int "pos" 2 (Cursor.writer_pos w);
  check Alcotest.int "remaining" 8 (Cursor.writer_remaining w);
  Cursor.put_bytes w (Bytebuf.of_string "abc");
  check Alcotest.int "after bytes" 5 (Cursor.writer_pos w);
  check Alcotest.string "written prefix" "\x00\x01abc"
    (Bytebuf.to_string (Cursor.written w))

(* --- Pool --- *)

let test_pool_reuse () =
  let p = Pool.create ~buf_size:16 () in
  let a = Pool.acquire p in
  Bytebuf.fill a 'x';
  Pool.release p a;
  let b = Pool.acquire p in
  check Alcotest.char "zeroed on reuse" '\000' (Bytebuf.get b 0);
  let st = Pool.stats p in
  check Alcotest.int "allocated once" 1 st.Pool.allocated;
  check Alcotest.int "reused once" 1 st.Pool.reused;
  check Alcotest.int "outstanding" 1 st.Pool.outstanding

let test_pool_high_water () =
  let p = Pool.create ~buf_size:4 () in
  let bufs = List.init 5 (fun _ -> Pool.acquire p) in
  List.iter (Pool.release p) bufs;
  let _ = Pool.acquire p in
  check Alcotest.int "high water" 5 (Pool.stats p).Pool.high_water

let test_pool_wrong_size () =
  let p = Pool.create ~buf_size:4 () in
  match Pool.release p (Bytebuf.create 5) with
  | () -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pool_double_release () =
  let p = Pool.create ~buf_size:8 () in
  let a = Pool.acquire p in
  let b = Pool.acquire p in
  Pool.release p a;
  (match Pool.release p a with
  | () -> fail "expected Invalid_argument on double release"
  | exception Invalid_argument _ -> ());
  (* The pool is still usable and consistent after the rejected release. *)
  Pool.release p b;
  check Alcotest.int "outstanding" 0 (Pool.stats p).Pool.outstanding

let test_pool_over_release () =
  let p = Pool.create ~capacity:0 ~buf_size:8 () in
  let a = Pool.acquire p in
  Pool.release p a;
  (* capacity 0 dropped the buffer, so the free-list scan cannot see it;
     the outstanding count still refuses the second release. *)
  (match Pool.release p a with
  | () -> fail "expected Invalid_argument on over-release"
  | exception Invalid_argument _ -> ());
  check Alcotest.int "outstanding never negative" 0
    (Pool.stats p).Pool.outstanding

(* The multi-domain variant of the double-release regression: 4 domains
   hammer acquire/release on one pool. Without the internal mutex two
   domains can scan the free list concurrently and walk away with the
   same buffer; the accounting invariants below then break. *)
let test_pool_multidomain_accounting () =
  let p = Pool.create ~buf_size:32 () in
  let rounds = 2_000 in
  let aliased = Atomic.make false in
  let hammer () =
    for i = 1 to rounds do
      let a = Pool.acquire p in
      let b = Pool.acquire p in
      (* Two live acquisitions must never alias. *)
      if a == b then Atomic.set aliased true;
      (* Touch the buffers so a shared buffer would also tear data. *)
      Bytebuf.set_uint8 a 0 (i land 0xff);
      Bytebuf.set_uint8 b 0 ((i + 1) land 0xff);
      Pool.release p b;
      Pool.release p a
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn hammer) in
  hammer ();
  Array.iter Domain.join domains;
  check Alcotest.bool "no aliased buffers" false (Atomic.get aliased);
  let st = Pool.stats p in
  check Alcotest.int "all returned" 0 st.Pool.outstanding;
  (* Every release succeeded (a double-release Invalid_argument in a
     worker would have escaped the join), and the ledger balances. *)
  check Alcotest.bool "high water sane" true
    (st.Pool.high_water >= 2 && st.Pool.high_water <= 8)

let test_pool_capacity_cap () =
  let p = Pool.create ~capacity:1 ~buf_size:4 () in
  let a = Pool.acquire p and b = Pool.acquire p in
  Pool.release p a;
  Pool.release p b;
  let _ = Pool.acquire p in
  let _ = Pool.acquire p in
  (* Second acquire after cap-1 free list must allocate fresh. *)
  check Alcotest.int "allocations" 3 (Pool.stats p).Pool.allocated

(* --- Hexdump --- *)

let test_hexdump_shape () =
  let out = Hexdump.to_string (Bytebuf.of_string "ABC") in
  Alcotest.(check bool) "has offset" true
    (String.length out > 8 && String.sub out 0 8 = "00000000");
  Alcotest.(check bool) "has ascii gutter" true
    (String.contains out '|')

let test_hexdump_empty () =
  Alcotest.(check bool) "empty marker" true
    (Hexdump.to_string Bytebuf.empty = "(empty)\n")

let test_created_total_accounting () =
  let before = Bytebuf.created_total () in
  let b = Bytebuf.create 8 in
  let after_create = Bytebuf.created_total () in
  Alcotest.(check bool) "create counts" true (after_create > before);
  (* Views are free: aliasing must not move the allocation counter. *)
  let snap = Bytebuf.created_total () in
  ignore (Bytebuf.sub b ~pos:2 ~len:4);
  ignore (Bytebuf.take b 3);
  ignore (Bytebuf.shift b 1);
  Alcotest.(check int) "views don't count" snap (Bytebuf.created_total ());
  ignore (Bytebuf.copy b);
  Alcotest.(check bool) "copy counts" true (Bytebuf.created_total () > snap)

let test_pool_reuse_no_creates () =
  let p = Pool.create ~buf_size:32 () in
  let warm = Pool.acquire p in
  Pool.release p warm;
  let snap = Bytebuf.created_total () in
  for _ = 1 to 10 do
    let b = Pool.acquire p in
    Pool.release p b
  done;
  Alcotest.(check int) "steady-state acquire allocates nothing" snap
    (Bytebuf.created_total ())

let () =
  Alcotest.run "bufkit"
    [
      ( "bytebuf",
        [
          Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "create negative" `Quick test_create_negative;
          Alcotest.test_case "of_string round trip" `Quick test_of_string_round_trip;
          Alcotest.test_case "sub aliases" `Quick test_sub_aliases;
          Alcotest.test_case "sub bounds" `Quick test_sub_bounds;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "get/set bounds" `Quick test_get_set_bounds;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "blit_from_string" `Quick test_blit_from_string;
          Alcotest.test_case "fill view only" `Quick test_fill_view_only;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "equal across backings" `Quick test_equal_across_backings;
          qcheck prop_sub_compose;
          qcheck prop_compare_matches_string;
          qcheck prop_blit_overlap_memmove;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "round trip" `Quick test_cursor_round_trip;
          Alcotest.test_case "underflow" `Quick test_cursor_underflow;
          Alcotest.test_case "overflow" `Quick test_cursor_overflow;
          Alcotest.test_case "zero-copy bytes" `Quick test_cursor_zero_copy_bytes;
          qcheck prop_cursor_u32_round;
          qcheck prop_cursor_u64_round;
        ] );
      ( "iovec",
        [
          Alcotest.test_case "basic" `Quick test_iovec_basic;
          Alcotest.test_case "fold bytes" `Quick test_iovec_fold_bytes;
          Alcotest.test_case "blit_to" `Quick test_iovec_blit_to;
          qcheck prop_iovec_fragmentation_invariant;
          qcheck prop_iovec_sub;
          qcheck prop_iovec_chunk;
        ] );
      ( "misc-coverage",
        [
          Alcotest.test_case "iovec builders" `Quick test_iovec_builders;
          Alcotest.test_case "iovec get bounds" `Quick test_iovec_get_bounds;
          Alcotest.test_case "cursor writer accounting" `Quick test_cursor_writer_accounting;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse + zeroing" `Quick test_pool_reuse;
          Alcotest.test_case "high water" `Quick test_pool_high_water;
          Alcotest.test_case "wrong size" `Quick test_pool_wrong_size;
          Alcotest.test_case "double release" `Quick test_pool_double_release;
          Alcotest.test_case "over release" `Quick test_pool_over_release;
          Alcotest.test_case "capacity cap" `Quick test_pool_capacity_cap;
          Alcotest.test_case "multi-domain accounting" `Quick
            test_pool_multidomain_accounting;
          Alcotest.test_case "created_total accounting" `Quick
            test_created_total_accounting;
          Alcotest.test_case "steady-state zero creates" `Quick
            test_pool_reuse_no_creates;
        ] );
      ( "hexdump",
        [
          Alcotest.test_case "shape" `Quick test_hexdump_shape;
          Alcotest.test_case "empty" `Quick test_hexdump_empty;
        ] );
    ]
