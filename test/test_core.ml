open Bufkit
open Netsim
open Alf_core

let qcheck t = QCheck_alcotest.to_alcotest t
let buf = Bytebuf.of_string

(* --- Kernels --- *)

let prop_kernel_checksum_matches =
  QCheck.Test.make ~name:"kernels: word checksum = reference" ~count:500
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      Kernels.checksum (buf s) = Checksum.Internet.digest (buf s)
      && Kernels.checksum_bytes (buf s) = Checksum.Internet.digest (buf s))

let prop_kernel_copy =
  QCheck.Test.make ~name:"kernels: copies preserve bytes" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let d1 = Bytebuf.create (String.length s) in
      let d2 = Bytebuf.create (String.length s) in
      let d3 = Bytebuf.create (String.length s) in
      Kernels.copy ~src:(buf s) ~dst:d1;
      Kernels.copy_bytes ~src:(buf s) ~dst:d2;
      Kernels.copy_words ~src:(buf s) ~dst:d3;
      Bytebuf.to_string d1 = s && Bytebuf.to_string d2 = s
      && Bytebuf.to_string d3 = s)

let prop_kernel_fused_copy_checksum =
  QCheck.Test.make ~name:"kernels: fused copy+checksum = serial" ~count:500
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      let src = buf s in
      let d1 = Bytebuf.create (String.length s) in
      let d2 = Bytebuf.create (String.length s) in
      let fused = Kernels.copy_checksum ~src ~dst:d1 in
      let serial = Kernels.serial_copy_then_checksum ~src ~dst:d2 in
      fused = serial && Bytebuf.equal d1 d2 && Bytebuf.to_string d1 = s)

let prop_kernel_fused_xor =
  QCheck.Test.make ~name:"kernels: fused xor+copy+checksum = serial" ~count:300
    QCheck.(triple int64 (int_bound 1000) (string_of_size Gen.(0 -- 200)))
    (fun (key, posk, s) ->
      (* Cover both the 8-aligned fast path and odd positions. *)
      let stream_pos = Int64.of_int posk in
      let src = buf s in
      let d1 = Bytebuf.create (String.length s) in
      let d2 = Bytebuf.create (String.length s) in
      let fused = Kernels.copy_checksum_xor ~src ~dst:d1 ~key ~stream_pos in
      let serial = Kernels.serial_xor_copy_checksum ~src ~dst:d2 ~key ~stream_pos in
      fused = serial && Bytebuf.equal d1 d2)

let test_kernel_length_mismatch () =
  match Kernels.copy ~src:(buf "ab") ~dst:(Bytebuf.create 3) with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Machine model --- *)

let within pct a b = Float.abs (a -. b) <= pct /. 100.0 *. b

let test_model_table1 () =
  let m = Machine_model.mbps in
  Alcotest.(check bool) "uVax copy ~42" true
    (within 2.0 (m Machine_model.uvax3 Machine_model.copy_kernel) 42.0);
  Alcotest.(check bool) "uVax checksum ~60" true
    (within 2.0 (m Machine_model.uvax3 Machine_model.checksum_kernel) 60.0);
  Alcotest.(check bool) "R2000 copy ~130" true
    (within 2.0 (m Machine_model.r2000 Machine_model.copy_kernel) 130.0);
  Alcotest.(check bool) "R2000 checksum ~115" true
    (within 2.0 (m Machine_model.r2000 Machine_model.checksum_kernel) 115.0)

let test_model_ilp_fusion_prediction () =
  let fused =
    Machine_model.fuse [ Machine_model.copy_kernel; Machine_model.checksum_kernel ]
  in
  let fused_mbps = Machine_model.mbps Machine_model.r2000 fused in
  let serial =
    Machine_model.serial_mbps Machine_model.r2000
      [ Machine_model.copy_kernel; Machine_model.checksum_kernel ]
  in
  (* The paper: serial ≈ 60, fused ≈ 90 Mb/s on the R2000. *)
  Alcotest.(check bool) "serial ~60" true (within 5.0 serial 61.0);
  Alcotest.(check bool) "fused ~90" true (within 3.0 fused_mbps 90.0);
  Alcotest.(check bool) "fusion wins" true (fused_mbps > serial *. 1.2)

let test_model_presentation_prediction () =
  let conv = Machine_model.mbps Machine_model.r2000 Machine_model.ber_encode_int_kernel in
  (* The paper: hand-coded ASN.1 integer conversion ran at 28 Mb/s. *)
  Alcotest.(check bool) "ber-encode ~28" true (within 5.0 conv 28.0);
  let copy = Machine_model.mbps Machine_model.r2000 Machine_model.copy_kernel in
  let ratio = copy /. conv in
  Alcotest.(check bool) "4-5x slower than copy" true (ratio > 4.0 && ratio < 5.5)

let test_model_fused_convert_checksum () =
  let fused =
    Machine_model.fuse
      [ Machine_model.ber_encode_int_kernel; Machine_model.checksum_kernel ]
  in
  let v = Machine_model.mbps Machine_model.r2000 fused in
  (* The paper: adding the checksum to the conversion loop cost 28 -> 24. *)
  Alcotest.(check bool) "fused convert+checksum ~24-26" true (v >= 23.0 && v <= 27.0)

let test_model_fuse_algebra () =
  let f = Machine_model.fuse [ Machine_model.copy_kernel; Machine_model.checksum_kernel ] in
  Alcotest.(check string) "name" "copy+checksum" f.Machine_model.kernel_name;
  Alcotest.(check (float 1e-9)) "loads shared" 1.0 f.Machine_model.loads;
  Alcotest.(check (float 1e-9)) "stores shared" 1.0 f.Machine_model.stores;
  Alcotest.(check (float 1e-9)) "alu summed" 2.0 f.Machine_model.alu

let test_model_fused_never_slower () =
  let kernels =
    [ Machine_model.copy_kernel; Machine_model.checksum_kernel;
      Machine_model.ber_encode_int_kernel ]
  in
  List.iter
    (fun m ->
      let fused = Machine_model.mbps m (Machine_model.fuse kernels) in
      let serial = Machine_model.serial_mbps m kernels in
      Alcotest.(check bool) "fused >= serial" true (fused >= serial))
    [ Machine_model.uvax3; Machine_model.r2000 ]

let prop_model_fusion_always_wins =
  (* Structural truth of the cost model: sharing loads/stores and paying
     the loop once can never lose to separate passes. *)
  let arb_kernels =
    QCheck.make
      ~print:(fun ks ->
        String.concat "+" (List.map (fun k -> k.Machine_model.kernel_name) ks))
      QCheck.Gen.(
        list_size (1 -- 5)
          (map2
             (fun l (s, a) ->
               {
                 Machine_model.kernel_name = "k";
                 loads = float_of_int l /. 2.0;
                 stores = float_of_int s /. 2.0;
                 alu = float_of_int a /. 2.0;
               })
             (int_bound 8)
             (pair (int_bound 8) (int_bound 16))))
  in
  QCheck.Test.make ~name:"model: fused >= serial for any kernels" ~count:300
    arb_kernels (fun kernels ->
      List.for_all
        (fun m ->
          Machine_model.mbps m (Machine_model.fuse kernels)
          >= Machine_model.serial_mbps m kernels -. 1e-9)
        [ Machine_model.uvax3; Machine_model.r2000 ])

(* --- ILP engine --- *)

let arb_plan =
  let open QCheck.Gen in
  let stage =
    oneof
      [
        map (fun k -> Ilp.Checksum k) (oneofl Checksum.Kind.all);
        map2
          (fun key pos -> Ilp.Xor_pad { key; pos = Int64.of_int pos })
          int64 (int_bound 10000);
        return Ilp.Deliver_copy;
        return (Ilp.Rc4_stream { key = "test-key" });
      ]
  in
  QCheck.make
    ~print:(fun plan -> String.concat ";" (List.map Ilp.stage_name plan))
    (list_size (0 -- 5) stage)

let valid_plan plan = match Ilp.validate plan with Ok () -> true | Error _ -> false

let prop_ilp_fused_equals_layered =
  QCheck.Test.make ~name:"ilp: fused = interpreted = layered" ~count:500
    QCheck.(pair arb_plan (string_of_size Gen.(0 -- 100)))
    (fun (plan, s) ->
      QCheck.assume (valid_plan plan);
      let layered = Ilp.run_layered plan (buf s) in
      let fused = Ilp.run_fused plan (buf s) in
      let interp = Ilp.run_fused_interpreted plan (buf s) in
      Bytebuf.equal layered.Ilp.output fused.Ilp.output
      && Bytebuf.equal interp.Ilp.output fused.Ilp.output
      && layered.Ilp.checksums = fused.Ilp.checksums
      && interp.Ilp.checksums = fused.Ilp.checksums
      && fused.Ilp.passes = 1
      && not interp.Ilp.compiled)

let prop_ilp_byteswap_first_ok =
  QCheck.Test.make ~name:"ilp: leading byteswap fuses correctly" ~count:300
    QCheck.(pair (int_bound 25) (string_of_size Gen.(0 -- 0)))
    (fun (nwords, _) ->
      let s = String.init (nwords * 4) (fun i -> Char.chr ((i * 17) land 0xff)) in
      let plan = [ Ilp.Byteswap32; Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ] in
      let layered = Ilp.run_layered plan (buf s) in
      let fused = Ilp.run_fused plan (buf s) in
      Bytebuf.equal layered.Ilp.output fused.Ilp.output
      && layered.Ilp.checksums = fused.Ilp.checksums)

let test_ilp_validate_rules () =
  (match Ilp.validate [ Ilp.Deliver_copy; Ilp.Byteswap32 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "late byteswap accepted");
  (match Ilp.validate [ Ilp.Rc4_stream { key = "a" }; Ilp.Rc4_stream { key = "b" } ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double rc4 accepted");
  match Ilp.validate [ Ilp.Byteswap32; Ilp.Rc4_stream { key = "a" } ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_ilp_run_fused_rejects_invalid () =
  match Ilp.run_fused [ Ilp.Deliver_copy; Ilp.Byteswap32 ] (buf "abcd") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ilp_byteswap_length_check () =
  match Ilp.run_fused [ Ilp.Byteswap32 ] (buf "abcde") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ilp_needs_in_order () =
  Alcotest.(check bool) "rc4 forces order" true
    (Ilp.needs_in_order [ Ilp.Deliver_copy; Ilp.Rc4_stream { key = "x" } ]);
  Alcotest.(check bool) "pad does not" false
    (Ilp.needs_in_order
       [ Ilp.Xor_pad { key = 1L; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet ])

let test_ilp_byteswap_involution () =
  let s = "abcdefgh" in
  let once = Ilp.run_layered [ Ilp.Byteswap32 ] (buf s) in
  let twice = Ilp.run_layered [ Ilp.Byteswap32 ] once.Ilp.output in
  Alcotest.(check string) "involution" s (Bytebuf.to_string twice.Ilp.output);
  Alcotest.(check string) "swapped" "dcbahgfe" (Bytebuf.to_string once.Ilp.output)

let test_ilp_passes_accounting () =
  let plan = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ] in
  let layered = Ilp.run_layered plan (buf "0123456789") in
  Alcotest.(check int) "layered passes" 2 layered.Ilp.passes;
  Alcotest.(check bool) "layered touches more" true
    (layered.Ilp.bytes_touched > (Ilp.run_fused plan (buf "0123456789")).Ilp.bytes_touched)

let test_ilp_compilation_dispatch () =
  (* Every valid plan compiles now: the known shapes hit the hand-fused
     kernels, everything else lowers to the general word-combinator loop.
     The per-byte interpreter is only the oracle. *)
  let input = buf "0123456789abcdef" in
  let compiled_plans =
    [
      [];
      [ Ilp.Deliver_copy ];
      [ Ilp.Checksum Checksum.Kind.Internet ];
      [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ];
      [ Ilp.Xor_pad { key = 5L; pos = 16L }; Ilp.Deliver_copy ];
      [ Ilp.Xor_pad { key = 5L; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet;
        Ilp.Deliver_copy ];
      [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Xor_pad { key = 5L; pos = 8L };
        Ilp.Deliver_copy ];
      (* Shapes the old compiler punted to the interpreter: *)
      [ Ilp.Checksum Checksum.Kind.Crc32 ];
      [ Ilp.Byteswap32; Ilp.Deliver_copy ];
      [ Ilp.Byteswap32; Ilp.Checksum Checksum.Kind.Fletcher32;
        Ilp.Xor_pad { key = 77L; pos = 3L }; Ilp.Checksum Checksum.Kind.Adler32;
        Ilp.Deliver_copy ];
      [ Ilp.Rc4_stream { key = "k" }; Ilp.Checksum Checksum.Kind.Internet;
        Ilp.Deliver_copy ];
      [ Ilp.Xor_pad { key = 5L; pos = 13L }; Ilp.Checksum Checksum.Kind.Internet;
        Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ];
    ]
  in
  List.iter
    (fun plan ->
      let r = Ilp.run_fused plan input in
      Alcotest.(check bool) "compiled" true r.Ilp.compiled;
      let i = Ilp.run_fused_interpreted plan input in
      Alcotest.(check bool) "same output" true (Bytebuf.equal r.Ilp.output i.Ilp.output);
      Alcotest.(check bool) "same checksums" true (r.Ilp.checksums = i.Ilp.checksums))
    compiled_plans

let test_ilp_checksum_sees_transformed_data () =
  (* A checksum after the cipher must cover ciphertext, not plaintext. *)
  let plan_after = [ Ilp.Xor_pad { key = 9L; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet ] in
  let plan_before = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Xor_pad { key = 9L; pos = 0L } ] in
  let input = buf "sensitive plaintext data" in
  let after = Ilp.run_fused plan_after input in
  let before = Ilp.run_fused plan_before input in
  Alcotest.(check bool) "orders differ" false (after.Ilp.checksums = before.Ilp.checksums);
  Alcotest.(check (list (pair (of_pp Checksum.Kind.pp) int)))
    "before = plaintext checksum"
    [ (Checksum.Kind.Internet, Checksum.Internet.digest input) ]
    before.Ilp.checksums

(* --- The plan compiler --- *)

let arb_general_plan =
  (* Full stage alphabet. Byteswap32 is only valid as the first stage, so
     it is generated there (sometimes), keeping the share of valid plans
     high without biasing the rest of the shape space. *)
  let open QCheck.Gen in
  let stage =
    frequency
      [
        (3, map (fun k -> Ilp.Checksum k) (oneofl Checksum.Kind.all));
        ( 3,
          map2
            (fun key pos -> Ilp.Xor_pad { key; pos = Int64.of_int pos })
            int64 (int_bound 10000) );
        (2, return Ilp.Deliver_copy);
        (1, return (Ilp.Rc4_stream { key = "general-key" }));
      ]
  in
  QCheck.make
    ~print:(fun plan -> String.concat ";" (List.map Ilp.stage_name plan))
    (map2
       (fun lead rest -> if lead then Ilp.Byteswap32 :: rest else rest)
       bool
       (list_size (0 -- 4) stage))

let prop_ilp_compiler_general =
  (* The tentpole property: every valid plan compiles, and the compiled
     word-at-a-time loop agrees with both oracles on outputs and checksum
     values — over lengths that include ragged (non-multiple-of-8)
     tails, so the word/byte seam is exercised. *)
  QCheck.Test.make ~name:"ilp: compiled = interpreted = layered, any plan/len"
    ~count:600
    QCheck.(pair arb_general_plan (int_bound 131))
    (fun (plan, len) ->
      QCheck.assume (valid_plan plan);
      let len = if List.mem Ilp.Byteswap32 plan then len - (len mod 4) else len in
      let s = String.init len (fun i -> Char.chr ((i * 131 + 17) land 0xff)) in
      let fused = Ilp.run_fused plan (buf s) in
      let interp = Ilp.run_fused_interpreted plan (buf s) in
      let layered = Ilp.run_layered plan (buf s) in
      fused.Ilp.compiled && fused.Ilp.passes = 1
      && Bytebuf.equal fused.Ilp.output interp.Ilp.output
      && Bytebuf.equal fused.Ilp.output layered.Ilp.output
      && fused.Ilp.checksums = interp.Ilp.checksums
      && fused.Ilp.checksums = layered.Ilp.checksums)

let prop_ilp_validate_shape_determined =
  (* validate and needs_in_order are functions of the plan's shape alone —
     the invariant the plan cache's shape key rests on. *)
  QCheck.Test.make ~name:"ilp: validate/needs_in_order are shape properties"
    ~count:400 arb_general_plan
    (fun plan ->
      let reparam =
        List.map
          (function
            | Ilp.Xor_pad _ -> Ilp.Xor_pad { key = 42L; pos = 98765L }
            | Ilp.Rc4_stream _ -> Ilp.Rc4_stream { key = "other-key" }
            | s -> s)
          plan
      in
      (match (Ilp.validate plan, Ilp.validate reparam) with
      | Ok (), Ok () | Error _, Error _ -> true
      | _ -> false)
      && Ilp.needs_in_order plan = Ilp.needs_in_order reparam
      && Ilp.needs_in_order plan
         = List.exists (function Ilp.Rc4_stream _ -> true | _ -> false) plan)

let prop_ilp_fused_agrees_with_validate =
  QCheck.Test.make ~name:"ilp: run_fused raises iff validate rejects" ~count:400
    arb_general_plan
    (fun plan ->
      let input = buf (String.make 20 'x') in
      match Ilp.run_fused plan input with
      | _ -> valid_plan plan
      | exception Invalid_argument _ -> not (valid_plan plan))

let test_ilp_run_fused_dst () =
  let plan =
    [
      Ilp.Xor_pad { key = 7L; pos = 3L };
      Ilp.Checksum Checksum.Kind.Internet;
      Ilp.Deliver_copy;
    ]
  in
  let input = buf "hello fused destination!" in
  let dst = Bytebuf.create (Bytebuf.length input) in
  let r = Ilp.run_fused ~dst plan input in
  Alcotest.(check bool) "output is dst itself" true (r.Ilp.output == dst);
  let r2 = Ilp.run_fused plan input in
  Alcotest.(check bool) "same bytes" true (Bytebuf.equal dst r2.Ilp.output);
  Alcotest.(check bool) "same checksums" true (r.Ilp.checksums = r2.Ilp.checksums);
  (match Ilp.run_fused ~dst:(Bytebuf.create 5) plan input with
  | _ -> Alcotest.fail "length mismatch accepted"
  | exception Invalid_argument _ -> ());
  (* General-loop plan with a short dst too. *)
  let gen_plan = [ Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ] in
  (match Ilp.run_fused ~dst:(Bytebuf.create 5) gen_plan input with
  | _ -> Alcotest.fail "length mismatch accepted (general)"
  | exception Invalid_argument _ -> ());
  (* In-place transform: dst = input is allowed without a leading
     Byteswap32 (word and byte steps read position i before writing it). *)
  let inplace = Bytebuf.copy input in
  let r3 = Ilp.run_fused ~dst:inplace plan inplace in
  Alcotest.(check bool) "in-place = out-of-place" true
    (Bytebuf.equal r3.Ilp.output r2.Ilp.output)

let test_ilp_plan_cache () =
  (* A shape no other test uses, so the first run is this test's miss. *)
  let mk pos =
    [
      Ilp.Checksum Checksum.Kind.Fletcher16;
      Ilp.Xor_pad { key = Int64.of_int (pos * 7 + 1); pos = Int64.of_int pos };
      Ilp.Checksum Checksum.Kind.Adler32;
    ]
  in
  let input = buf "cache me if you can" in
  ignore (Ilp.run_fused (mk 1) input);
  let mid = Ilp.plan_cache_stats () in
  for p = 2 to 21 do
    ignore (Ilp.run_fused (mk p) input)
  done;
  let after = Ilp.plan_cache_stats () in
  Alcotest.(check int) "same shape never re-lowered" mid.Ilp.misses
    after.Ilp.misses;
  Alcotest.(check int) "every later run hits" (mid.Ilp.hits + 20) after.Ilp.hits;
  Alcotest.(check bool) "entries present" true (after.Ilp.entries > 0);
  (* Invalid shapes are cached too: rejection is also O(lookup). *)
  let bad = [ Ilp.Deliver_copy; Ilp.Byteswap32 ] in
  let probe () =
    match Ilp.run_fused bad input with
    | _ -> Alcotest.fail "invalid plan accepted"
    | exception Invalid_argument _ -> ()
  in
  probe ();
  let m1 = (Ilp.plan_cache_stats ()).Ilp.misses in
  probe ();
  Alcotest.(check int) "invalid shape cached" m1
    (Ilp.plan_cache_stats ()).Ilp.misses

(* --- ADU --- *)

let arb_adu =
  let open QCheck.Gen in
  let gen =
    map2
      (fun (stream, index, dest_off) payload ->
        let name =
          Adu.name ~dest_off ~dest_len:(String.length payload)
            ~timestamp_us:(Int64.of_int (index * 1000))
            ~stream ~index ()
        in
        Adu.make name (Bytebuf.of_string payload))
      (triple (int_bound 0xFFFF) (int_bound 100000) (int_bound 1000000))
      (string_size (0 -- 200))
  in
  QCheck.make ~print:(Format.asprintf "%a" Adu.pp) gen

let prop_adu_round_trip =
  QCheck.Test.make ~name:"adu: decode(encode) round trip" ~count:300 arb_adu
    (fun adu ->
      let back = Adu.decode (Adu.encode adu) in
      back.Adu.name = adu.Adu.name && Bytebuf.equal back.Adu.payload adu.Adu.payload)

let prop_adu_corruption_detected =
  QCheck.Test.make ~name:"adu: any byte flip detected" ~count:300
    QCheck.(pair arb_adu (pair small_nat (int_range 1 255)))
    (fun (adu, (pos, flip)) ->
      let wire = Adu.encode adu in
      let i = pos mod Bytebuf.length wire in
      Bytebuf.set_uint8 wire i (Bytebuf.get_uint8 wire i lxor flip);
      match Adu.decode wire with
      | _ -> false
      | exception Adu.Decode_error _ -> true)

let test_adu_name_validation () =
  (match Adu.name ~stream:(-1) ~index:0 () with
  | _ -> Alcotest.fail "negative stream"
  | exception Invalid_argument _ -> ());
  match Adu.name ~stream:0 ~index:(-1) () with
  | _ -> Alcotest.fail "negative index"
  | exception Invalid_argument _ -> ()

let test_adu_decode_view_aliases () =
  let adu = Adu.make (Adu.name ~stream:1 ~index:2 ()) (buf "view payload") in
  let wire = Adu.encode adu in
  let v = Adu.decode_view wire in
  Alcotest.(check bool) "payload equal" true
    (Bytebuf.equal v.Adu.payload adu.Adu.payload);
  Alcotest.(check bool) "name equal" true (v.Adu.name = adu.Adu.name);
  (* The view aliases the wire buffer — no copy was made. *)
  Bytebuf.set_uint8 wire Adu.header_size
    (Bytebuf.get_uint8 wire Adu.header_size lxor 0xff);
  Alcotest.(check bool) "aliases wire" false
    (Bytebuf.equal v.Adu.payload adu.Adu.payload);
  (* decode still owns its payload. *)
  let wire2 = Adu.encode adu in
  let d = Adu.decode wire2 in
  Bytebuf.set_uint8 wire2 Adu.header_size 0;
  Alcotest.(check bool) "decode copies" true
    (Bytebuf.equal d.Adu.payload adu.Adu.payload)

(* --- Framing --- *)

let test_framing_buffer_partition () =
  let data = Bytebuf.of_string (String.init 1000 (fun i -> Char.chr (i land 0xff))) in
  let adus = Framing.frames_of_buffer ~stream:1 ~adu_size:256 data in
  Alcotest.(check int) "count" 4 (List.length adus);
  let reassembled =
    Bytebuf.concat (List.map (fun a -> a.Adu.payload) adus)
  in
  Alcotest.(check bool) "partition" true (Bytebuf.equal reassembled data);
  List.iteri
    (fun i adu ->
      Alcotest.(check int) "index" i adu.Adu.name.Adu.index;
      Alcotest.(check int) "dest_off" (i * 256) adu.Adu.name.Adu.dest_off)
    adus

let test_framing_values_placement () =
  let values = [ Wire.Value.int_array [| 1; 2 |]; Wire.Value.int_array [| 3 |] ] in
  let adus = Framing.frames_of_values ~stream:2 ~syntax:Wire.Syntax.Ber values in
  match adus with
  | [ a; b ] ->
      Alcotest.(check int) "a at 0" 0 a.Adu.name.Adu.dest_off;
      Alcotest.(check int) "a len = its encoding" (Bytebuf.length a.Adu.payload)
        a.Adu.name.Adu.dest_len;
      Alcotest.(check int) "b follows a" a.Adu.name.Adu.dest_len b.Adu.name.Adu.dest_off;
      (* The payload really is the BER encoding. *)
      Alcotest.(check bool) "decodes" true
        (Wire.Value.equal (Wire.Ber.decode a.Adu.payload) (List.nth values 0))
  | _ -> Alcotest.fail "shape"

let prop_framing_fragment_round_trip =
  QCheck.Test.make ~name:"framing: fragment/reassemble out of order" ~count:200
    QCheck.(triple arb_adu (int_range 64 512) int64)
    (fun (adu, mtu, seed) ->
      let frags = Framing.fragment ~mtu adu in
      let infos = List.map (fun f -> Framing.parse_fragment f) frags in
      (* Shuffle fragment arrival. *)
      let arr = Array.of_list infos in
      Rng.shuffle (Rng.create ~seed) arr;
      let got = ref [] in
      let r = Framing.reassembler ~deliver:(fun a -> got := a :: !got) () in
      Array.iter (Framing.push r) arr;
      match !got with
      | [ back ] ->
          back.Adu.name = adu.Adu.name
          && Bytebuf.equal back.Adu.payload adu.Adu.payload
          && (Framing.stats r).Framing.completed = 1
          && Framing.pending_adus r = 0
      | _ -> false)

let test_framing_fragment_sizes () =
  let adu =
    Adu.make (Adu.name ~stream:0 ~index:0 ()) (Bytebuf.create 1000)
  in
  let frags = Framing.fragment ~mtu:256 adu in
  List.iter
    (fun f -> Alcotest.(check bool) "within mtu" true (Bytebuf.length f <= 256))
    frags;
  let total =
    List.fold_left
      (fun acc f -> acc + Bytebuf.length f - Framing.fragment_header_size)
      0 frags
  in
  Alcotest.(check int) "covers encoded adu" (1000 + Adu.header_size) total

let test_framing_duplicate_fragments () =
  let adu = Adu.make (Adu.name ~stream:0 ~index:5 ()) (Bytebuf.create 600) in
  let frags = List.map Framing.parse_fragment (Framing.fragment ~mtu:256 adu) in
  let got = ref 0 in
  let r = Framing.reassembler ~deliver:(fun _ -> incr got) () in
  (* Feed everything except the last fragment, twice: duplicates are
     absorbed and counted, nothing delivered. (De-duplication of whole
     completed ADUs is the transport's job, not the reassembler's.) *)
  let all_but_last = List.filteri (fun i _ -> i < List.length frags - 1) frags in
  List.iter (Framing.push r) all_but_last;
  List.iter (Framing.push r) all_but_last;
  Alcotest.(check int) "nothing delivered yet" 0 !got;
  Alcotest.(check int) "duplicates counted"
    (List.length all_but_last)
    (Framing.stats r).Framing.duplicate_frags;
  List.iter (Framing.push r) frags;
  Alcotest.(check int) "delivered once" 1 !got

let test_framing_interleaved_adus () =
  let mk i = Adu.make (Adu.name ~stream:0 ~index:i ()) (Bytebuf.create 500) in
  let f0 = List.map Framing.parse_fragment (Framing.fragment ~mtu:200 (mk 0)) in
  let f1 = List.map Framing.parse_fragment (Framing.fragment ~mtu:200 (mk 1)) in
  let rec interleave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: interleave xs ys
  in
  let order = ref [] in
  let r = Framing.reassembler ~deliver:(fun a -> order := a.Adu.name.Adu.index :: !order) () in
  (* Interleave but give ADU 1 its last fragment first: it completes first. *)
  List.iter (Framing.push r) (interleave (List.rev f1) f0);
  Alcotest.(check int) "both complete" 2 (List.length !order)

let test_framing_forget () =
  let adu = Adu.make (Adu.name ~stream:0 ~index:9 ()) (Bytebuf.create 600) in
  let frags = List.map Framing.parse_fragment (Framing.fragment ~mtu:256 adu) in
  let r = Framing.reassembler ~deliver:(fun _ -> Alcotest.fail "must not deliver") () in
  (match frags with f :: _ -> Framing.push r f | [] -> ());
  Alcotest.(check int) "pending" 1 (Framing.pending_adus r);
  Framing.forget r ~index:9;
  Alcotest.(check int) "forgotten" 0 (Framing.pending_adus r)

let test_framing_pooled_zero_alloc () =
  (* Stage-1 steady state with a pool: after the first ADU has warmed the
     pool, reassembling further ADUs allocates no buffers at all. *)
  let pool = Pool.create ~buf_size:2048 () in
  let delivered = ref 0 in
  let r =
    Framing.reassembler ~pool
      ~deliver:(fun a -> delivered := !delivered + Bytebuf.length a.Adu.payload)
      ()
  in
  let payload = Bytebuf.of_string (String.init 700 (fun i -> Char.chr (i land 0xff))) in
  let frags i =
    List.map Framing.parse_fragment
      (Framing.fragment ~mtu:256 (Adu.make (Adu.name ~stream:3 ~index:i ()) payload))
  in
  let batches = List.init 12 frags in
  (match batches with b :: _ -> List.iter (Framing.push r) b | [] -> ());
  let snap = Bytebuf.created_total () in
  List.iteri (fun i b -> if i > 0 then List.iter (Framing.push r) b) batches;
  Alcotest.(check int) "zero creates per ADU after warmup" snap
    (Bytebuf.created_total ());
  Alcotest.(check int) "all adus delivered" (12 * 700) !delivered;
  Alcotest.(check int) "one pool buffer suffices" 1 (Pool.stats pool).Pool.allocated

let test_framing_pooled_oversize_falls_back () =
  (* ADUs beyond the pool's buf_size still reassemble (fresh buffer). *)
  let pool = Pool.create ~buf_size:64 () in
  let got = ref 0 in
  let r = Framing.reassembler ~pool ~deliver:(fun _ -> incr got) () in
  let adu = Adu.make (Adu.name ~stream:0 ~index:0 ()) (Bytebuf.create 500) in
  List.iter (Framing.push r)
    (List.map Framing.parse_fragment (Framing.fragment ~mtu:200 adu));
  Alcotest.(check int) "delivered" 1 !got;
  Alcotest.(check int) "pool untouched" 0 (Pool.stats pool).Pool.allocated

(* --- Recovery --- *)

let test_recovery_transport_buffer () =
  let st = Recovery.store Recovery.Transport_buffer in
  Recovery.remember st ~index:0 (buf "aaaa");
  Recovery.remember st ~index:1 (buf "bbbb");
  Alcotest.(check int) "footprint" 8 (Recovery.footprint st);
  (match Recovery.recall st ~index:0 with
  | Recovery.Data d -> Alcotest.(check string) "data" "aaaa" (Bytebuf.to_string d)
  | Recovery.Gone -> Alcotest.fail "should recall");
  Recovery.release st ~index:0;
  Alcotest.(check int) "released" 4 (Recovery.footprint st);
  match Recovery.recall st ~index:0 with
  | Recovery.Gone -> ()
  | Recovery.Data _ -> Alcotest.fail "released data recalled"

let test_recovery_app_recompute () =
  let calls = ref 0 in
  let st =
    Recovery.store
      (Recovery.App_recompute
         (fun i ->
           incr calls;
           if i < 5 then Some (buf (string_of_int i)) else None))
  in
  Recovery.remember st ~index:3 (buf "ignored");
  Alcotest.(check int) "stores nothing" 0 (Recovery.footprint st);
  (match Recovery.recall st ~index:3 with
  | Recovery.Data d -> Alcotest.(check string) "recomputed" "3" (Bytebuf.to_string d)
  | Recovery.Gone -> Alcotest.fail "recompute failed");
  (match Recovery.recall st ~index:7 with
  | Recovery.Gone -> ()
  | Recovery.Data _ -> Alcotest.fail "regenerated past limit");
  Alcotest.(check int) "callback used" 2 !calls

let test_recovery_none () =
  let st = Recovery.store Recovery.No_recovery in
  Recovery.remember st ~index:0 (buf "x");
  Alcotest.(check int) "no footprint" 0 (Recovery.footprint st);
  match Recovery.recall st ~index:0 with
  | Recovery.Gone -> ()
  | Recovery.Data _ -> Alcotest.fail "no-recovery recalled data"

let test_recovery_release_below () =
  let st = Recovery.store Recovery.Transport_buffer in
  for i = 0 to 9 do
    Recovery.remember st ~index:i (buf "abcd")
  done;
  Recovery.release_below st 7;
  Alcotest.(check int) "kept 3" 3 (Recovery.held st);
  Alcotest.(check int) "bytes" 12 (Recovery.footprint st)

(* --- ALF transport end-to-end --- *)

type alf_world = {
  engine : Engine.t;
  sender : Alf_transport.sender;
  receiver : Alf_transport.receiver;
  delivered : (int * string) list ref;
}

let make_alf_world ?(loss = 0.0) ?(policy = Recovery.Transport_buffer)
    ?(adu_payload = 3000) ?(count = 20) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:77L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let delivered = ref [] in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:7000 ~stream:1
      ~deliver:(fun adu ->
        delivered :=
          (adu.Adu.name.Adu.index, Bytebuf.to_string adu.Adu.payload) :: !delivered)
      ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:7000 ~port:7001
      ~stream:1 ~policy ()
  in
  let payload i = String.init adu_payload (fun j -> Char.chr ((i + j) land 0xff)) in
  for i = 0 to count - 1 do
    Alf_transport.send_adu sender
      (Adu.make
         (Adu.name ~dest_off:(i * adu_payload) ~dest_len:adu_payload ~stream:1
            ~index:i ())
         (Bytebuf.of_string (payload i)))
  done;
  Alf_transport.close sender;
  { engine; sender; receiver; delivered }

let test_alf_clean_delivery () =
  let w = make_alf_world () in
  Engine.run ~until:60.0 w.engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete w.receiver);
  Alcotest.(check bool) "sender finished" true (Alf_transport.finished w.sender);
  Alcotest.(check int) "all delivered" 20 (List.length !(w.delivered));
  let stats = Alf_transport.receiver_stats w.receiver in
  Alcotest.(check int) "no losses" 0 stats.Alf_transport.adus_lost

let test_alf_lossy_transport_buffer () =
  let w = make_alf_world ~loss:0.05 ~count:50 () in
  Engine.run ~until:120.0 w.engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete w.receiver);
  Alcotest.(check int) "all 50 delivered" 50 (List.length !(w.delivered));
  let s = Alf_transport.sender_stats w.sender in
  Alcotest.(check bool) "retransmissions happened" true
    (s.Alf_transport.adus_retransmitted > 0);
  (* Payload integrity per ADU. *)
  List.iter
    (fun (i, payload) ->
      Alcotest.(check int) "payload size" 3000 (String.length payload);
      Alcotest.(check char) "payload content" (Char.chr (i land 0xff)) payload.[0])
    !(w.delivered)

let test_alf_out_of_order_delivery_under_loss () =
  let w = make_alf_world ~loss:0.1 ~count:50 () in
  Engine.run ~until:120.0 w.engine;
  let stats = Alf_transport.receiver_stats w.receiver in
  Alcotest.(check bool) "deliveries happened out of order" true
    (stats.Alf_transport.out_of_order > 0)

let test_alf_no_recovery_policy () =
  let w = make_alf_world ~loss:0.15 ~policy:Recovery.No_recovery ~count:50 () in
  Engine.run ~until:120.0 w.engine;
  Alcotest.(check bool) "still completes" true (Alf_transport.complete w.receiver);
  let stats = Alf_transport.receiver_stats w.receiver in
  Alcotest.(check bool) "losses reported in ADU terms" true
    (stats.Alf_transport.adus_lost > 0);
  Alcotest.(check int) "delivered + lost = sent" 50
    (stats.Alf_transport.adus_delivered + stats.Alf_transport.adus_lost);
  Alcotest.(check int) "sender stored nothing" 0
    (Alf_transport.sender_stats w.sender).Alf_transport.store_peak

let test_alf_app_recompute_policy () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:99L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.1)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let payload i = String.init 2000 (fun j -> Char.chr ((i * 3 + j) land 0xff)) in
  let regenerate i =
    (* The sending application recomputes the ADU instead of buffering it. *)
    let adu =
      Adu.make (Adu.name ~dest_off:(i * 2000) ~dest_len:2000 ~stream:1 ~index:i ())
        (Bytebuf.of_string (payload i))
    in
    Some (Adu.encode adu)
  in
  let delivered = ref 0 in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:7000 ~stream:1
      ~deliver:(fun _ -> incr delivered) ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:7000 ~port:7001
      ~stream:1 ~policy:(Recovery.App_recompute regenerate) ()
  in
  for i = 0 to 29 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~dest_off:(i * 2000) ~dest_len:2000 ~stream:1 ~index:i ())
         (Bytebuf.of_string (payload i)))
  done;
  Alf_transport.close sender;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check int) "all delivered" 30 !delivered;
  Alcotest.(check int) "zero retransmission memory" 0
    (Alf_transport.sender_stats sender).Alf_transport.store_peak

let test_alf_store_released_by_acks () =
  let w = make_alf_world ~loss:0.02 ~count:30 () in
  Engine.run ~until:120.0 w.engine;
  Alcotest.(check int) "store drains after completion" 0
    (Alf_transport.store_footprint w.sender)

let test_alf_delivery_series_monotone () =
  let w = make_alf_world ~loss:0.05 ~count:30 () in
  Engine.run ~until:120.0 w.engine;
  let pts = Stats.points (Alf_transport.delivery_series w.receiver) in
  Alcotest.(check bool) "nonempty" true (List.length pts > 0);
  let rec monotone = function
    | (t1, v1) :: ((t2, v2) :: _ as rest) ->
        t1 <= t2 && v1 <= v2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone progress" true (monotone pts)

(* --- Session (out-of-band setup) --- *)

let session_world ?(loss = 0.0) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:515L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~impair_back:(Impair.lossy loss) ~queue_limit:1024 ~bandwidth_bps:10e6
      ~delay:0.003 ~a:1 ~b:2 ()
  in
  let io_a = Dgram.of_udp (Transport.Udp.create ~engine ~node:net.Topology.a ()) in
  let io_b = Dgram.of_udp (Transport.Udp.create ~engine ~node:net.Topology.b ()) in
  (engine, io_a, io_b)

let test_session_negotiates_syntax_and_rate () =
  let engine, io_a, io_b = session_world ~loss:0.2 () in
  let responder_got = ref None in
  let responder =
    Session.listen ~engine ~io:io_b ~port:900 ~supported:[ "ber"; "xdr" ]
      ~max_rate_bps:5e6
      ~on_session:(fun ~peer g -> responder_got := Some (peer, g))
      ()
  in
  let result = ref None in
  Session.initiate ~engine ~io:io_a ~port:901 ~peer:2 ~peer_port:900
    ~offer:
      { Session.stream = 7; syntaxes = [ "lwts"; "xdr"; "ber" ]; rate_bps = 8e6;
        policy = "buffer"; ciphers = [] }
    ~on_result:(fun r -> result := Some r)
    ();
  Engine.run ~until:30.0 engine;
  (match !result with
  | Some (Some g) ->
      (* First initiator preference the responder supports: xdr. *)
      Alcotest.(check string) "syntax" "xdr" g.Session.g_syntax;
      Alcotest.(check (float 1.0)) "rate clamped" 5e6 g.Session.g_rate_bps;
      Alcotest.(check string) "policy echoed" "buffer" g.Session.g_policy;
      (* An empty cipher offer means the modern default, not plaintext. *)
      Alcotest.(check string) "cipher default" "chacha20" g.Session.g_cipher
  | Some None -> Alcotest.fail "session rejected"
  | None -> Alcotest.fail "no result");
  (match !responder_got with
  | Some (1, g) -> Alcotest.(check int) "stream" 7 g.Session.g_stream
  | _ -> Alcotest.fail "responder callback");
  Alcotest.(check int) "one session despite retries" 1
    (Session.sessions_accepted responder)

let test_session_no_common_syntax () =
  let engine, io_a, io_b = session_world () in
  let responder =
    Session.listen ~engine ~io:io_b ~port:900 ~supported:[ "raw" ]
      ~on_session:(fun ~peer:_ _ -> Alcotest.fail "must not accept")
      ()
  in
  let result = ref `Pending in
  Session.initiate ~engine ~io:io_a ~port:901 ~peer:2 ~peer_port:900
    ~offer:
      {
        Session.stream = 1;
        syntaxes = [ "ber" ];
        rate_bps = 0.0;
        policy = "none";
        ciphers = [];
      }
    ~on_result:(fun r -> result := `Got r)
    ();
  Engine.run ~until:30.0 engine;
  (match !result with
  | `Got None -> ()
  | `Got (Some _) -> Alcotest.fail "accepted without common syntax"
  | `Pending -> Alcotest.fail "no result");
  Alcotest.(check int) "rejection counted" 1 (Session.sessions_rejected responder)

let test_session_unreachable_times_out () =
  let engine, io_a, _ = session_world ~loss:1.0 () in
  let result = ref `Pending in
  Session.initiate ~engine ~io:io_a ~port:901 ~peer:2 ~peer_port:900
    ~offer:
      {
        Session.stream = 1;
        syntaxes = [ "ber" ];
        rate_bps = 0.0;
        policy = "none";
        ciphers = [];
      }
    ~retry_interval:0.05 ~max_retries:4
    ~on_result:(fun r -> result := `Got r)
    ();
  Engine.run ~until:30.0 engine;
  match !result with
  | `Got None -> ()
  | `Got (Some _) -> Alcotest.fail "phantom accept"
  | `Pending -> Alcotest.fail "never gave up"

let test_session_then_negotiated_transfer () =
  (* The full story: negotiate out of band, then run the data phase with
     the granted contract - syntax, pacing rate, recovery policy. *)
  let engine, io_a, io_b = session_world ~loss:0.03 () in
  let values = List.init 30 (fun i -> Wire.Value.int_array (Array.init 40 (fun j -> (i * 40) + j))) in
  let received = Hashtbl.create 32 in
  let complete = ref false in
  Hashtbl.reset received;
  let _responder =
    Session.listen ~engine ~io:io_b ~port:900 ~supported:[ "ber"; "lwts" ]
      ~max_rate_bps:8e6
      ~on_session:(fun ~peer:_ g ->
        (* The receiver decodes with the negotiated syntax. *)
        let syntax =
          match g.Session.g_syntax with
          | "ber" -> Wire.Syntax.Ber
          | _ -> Alcotest.fail "unexpected syntax"
        in
        let r =
          Alf_transport.receiver_io ~sched:(Netsim.Engine.sched engine) ~io:io_b ~port:910
            ~stream:g.Session.g_stream
            ~deliver:(fun adu ->
              Hashtbl.replace received adu.Adu.name.Adu.index
                (Wire.Syntax.decode syntax adu.Adu.payload))
            ()
        in
        Alf_transport.on_complete r (fun () -> complete := true))
      ()
  in
  Session.initiate ~engine ~io:io_a ~port:901 ~peer:2 ~peer_port:900
    ~offer:
      { Session.stream = 3; syntaxes = [ "ber" ]; rate_bps = 20e6;
        policy = "buffer"; ciphers = [ "chacha20"; "none" ] }
    ~on_result:(fun result ->
      match result with
      | None -> Alcotest.fail "session failed"
      | Some g ->
          let syntax = Wire.Syntax.Ber in
          let sender =
            Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io:io_a ~peer:2 ~peer_port:910
              ~port:911 ~stream:g.Session.g_stream
              ~policy:Recovery.Transport_buffer
              ~config:
                { Alf_transport.default_sender_config with
                  Alf_transport.pace_bps =
                    (if g.Session.g_rate_bps > 0.0 then Some g.Session.g_rate_bps
                     else None) }
              ()
          in
          List.iter (Alf_transport.send_adu sender)
            (Framing.frames_of_values ~stream:g.Session.g_stream ~syntax values);
          Alf_transport.close sender)
    ();
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "data phase complete" true !complete;
  List.iteri
    (fun i v ->
      match Hashtbl.find_opt received i with
      | Some got -> Alcotest.(check bool) "value intact" true (Wire.Value.equal got v)
      | None -> Alcotest.fail "missing value")
    values

(* --- Stage2 --- *)

let test_stage2_decrypt_verify_pipeline () =
  (* Sealed ADUs through the whole receive path: transport (lossy) ->
     stage 2 fused decrypt+checksum+copy -> application sink. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:404L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.06)
      ~queue_limit:1024 ~bandwidth_bps:20e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let key = 0xFACEL in
  let size = 40_000 in
  let file = Bytebuf.create size in
  Rng.fill_bytes (Rng.create ~seed:12L) file;
  let sink = Sink.create ~size in
  let stage2 =
    Stage2.create
      ~plan:(Stage2.decrypt_verify_at ~key)
      ~deliver:(fun r ->
        (* The fused checksum covers the decrypted plaintext. *)
        (match r.Stage2.checksums with
        | [ (Checksum.Kind.Internet, c) ] ->
            Alcotest.(check int) "plaintext checksum"
              (Checksum.Internet.digest r.Stage2.adu.Adu.payload) c
        | _ -> Alcotest.fail "missing checksum");
        match Sink.write_adu sink r.Stage2.adu with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
      ()
  in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:3 ~stream:1
      ~deliver:(Stage2.deliver_fn stage2) ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:3 ~port:4 ~stream:1
      ~policy:Recovery.Transport_buffer ()
  in
  List.iter
    (fun adu -> Alf_transport.send_adu sender (Secure.seal ~key adu))
    (Framing.frames_of_buffer ~stream:1 ~adu_size:2000 file);
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check bool) "decrypted file intact" true
    (Bytebuf.equal (Sink.contents sink) file);
  Alcotest.(check int) "all processed" 20 (Stage2.stats stage2).Stage2.processed

let test_stage2_rejects_sequential_cipher () =
  let delivered = ref 0 in
  let stage2 =
    Stage2.create
      ~plan:(fun _ -> [ Ilp.Rc4_stream { key = "k" }; Ilp.Deliver_copy ])
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  Stage2.deliver_fn stage2 (Adu.make (Adu.name ~stream:0 ~index:0 ()) (buf "x"));
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "rejection counted" 1 (Stage2.stats stage2).Stage2.rejected_order

let test_stage2_rejects_invalid_plan () =
  let stage2 =
    Stage2.create
      ~plan:(fun _ -> [ Ilp.Deliver_copy; Ilp.Byteswap32 ])
      ~deliver:(fun _ -> Alcotest.fail "must not deliver")
      ()
  in
  Stage2.deliver_fn stage2 (Adu.make (Adu.name ~stream:0 ~index:0 ()) (buf "abcd"));
  Alcotest.(check int) "rejection counted" 1 (Stage2.stats stage2).Stage2.rejected_invalid

let test_stage2_out_pool_inline () =
  (* Inline stage 2 writing into pooled output slices: the delivered
     payload is borrowed, and steady state allocates nothing. *)
  let key = 99L in
  let out_pool = Pool.create ~buf_size:1024 () in
  let plain = buf "stage two pooled payload bytes!" in
  let n = Bytebuf.length plain in
  let ok = ref 0 in
  let stage =
    Stage2.create ~out_pool
      ~plan:(Stage2.decrypt_verify_at ~key)
      ~deliver:(fun (r : Stage2.result) ->
        (* Borrowed: consume inside the callback. *)
        if Bytebuf.equal r.Stage2.adu.Adu.payload plain then incr ok)
      ()
  in
  let pad = Cipher.Pad.create ~key in
  let adu i =
    let sealed = Bytebuf.copy plain in
    let off = i * 64 in
    Cipher.Pad.transform_at pad ~pos:(Int64.of_int off) sealed;
    Adu.make
      (Adu.name ~stream:0 ~index:i ~dest_off:off ~dest_len:n ())
      sealed
  in
  let adus = List.init 21 adu in
  (match adus with a :: _ -> Stage2.deliver_fn stage a | [] -> ());
  let snap = Bytebuf.created_total () in
  List.iteri (fun i a -> if i > 0 then Stage2.deliver_fn stage a) adus;
  Alcotest.(check int) "zero creates per ADU after warmup" snap
    (Bytebuf.created_total ());
  Alcotest.(check int) "every payload decrypted in place of delivery" 21 !ok;
  Alcotest.(check int) "one output buffer recycled" 1
    (Pool.stats out_pool).Pool.allocated

let test_stage2_batched_pools_round_trip () =
  (* Batched stage 2 with both pools, fed borrowed inputs (a pooled
     reassembler would hand these out): inputs are staged, outputs are
     pooled, results are byte-correct and in arrival order. *)
  let key = 5L in
  let pool = Par.Pool.create ~domains:2 () in
  let in_pool = Pool.create ~buf_size:256 () in
  let out_pool = Pool.create ~buf_size:256 () in
  let pad = Cipher.Pad.create ~key in
  let mk i =
    let plain = Bytebuf.of_string (Printf.sprintf "adu %02d payload" i) in
    let off = i * 32 in
    let sealed = Bytebuf.copy plain in
    Cipher.Pad.transform_at pad ~pos:(Int64.of_int off) sealed;
    ( plain,
      Adu.make
        (Adu.name ~stream:0 ~index:i ~dest_off:off
           ~dest_len:(Bytebuf.length plain) ())
        sealed )
  in
  let expected = Array.init 10 (fun i -> fst (mk i)) in
  let order = ref [] in
  let stage =
    Stage2.create ~pool ~batch:4 ~in_pool ~out_pool
      ~plan:(Stage2.decrypt_verify_at ~key)
      ~deliver:(fun (r : Stage2.result) ->
        let i = r.Stage2.adu.Adu.name.Adu.index in
        Alcotest.(check bool)
          (Printf.sprintf "adu %d decrypts" i)
          true
          (Bytebuf.equal r.Stage2.adu.Adu.payload expected.(i));
        order := i :: !order)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      (* Hand each ADU over in a borrowed buffer that is scribbled on as
         soon as deliver_fn returns — only input staging keeps this safe. *)
      let borrowed = Bytebuf.create 64 in
      for i = 0 to 9 do
        let _, adu = mk i in
        let len = Bytebuf.length adu.Adu.payload in
        let view = Bytebuf.take borrowed len in
        Bytebuf.blit ~src:adu.Adu.payload ~src_pos:0 ~dst:view ~dst_pos:0 ~len;
        Stage2.deliver_fn stage (Adu.make adu.Adu.name view);
        Bytebuf.fill borrowed '\xee'
      done;
      Stage2.flush stage);
  Alcotest.(check (list int)) "arrival order" (List.init 10 Fun.id)
    (List.rev !order);
  Alcotest.(check int) "all processed" 10 (Stage2.stats stage).Stage2.processed

(* --- Mux: many streams, one port --- *)

let test_mux_two_streams_one_port () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:606L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.05)
      ~queue_limit:1024 ~bandwidth_bps:20e6 ~delay:0.004 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let mux_a = Mux.create ~udp:ua ~port:6000 in
  let mux_b = Mux.create ~udp:ub ~port:6000 in
  let got = Hashtbl.create 8 in
  let mk_receiver stream =
    Alf_transport.receiver_mux ~sched:(Netsim.Engine.sched engine) ~mux:mux_b ~stream
      ~deliver:(fun adu ->
        let key = (stream, adu.Adu.name.Adu.index) in
        if Hashtbl.mem got key then Alcotest.fail "cross-stream duplicate";
        Hashtbl.replace got key (Bytebuf.to_string adu.Adu.payload))
      ()
  in
  let r1 = mk_receiver 1 and r2 = mk_receiver 2 in
  let mk_sender stream =
    Alf_transport.sender_mux ~sched:(Netsim.Engine.sched engine) ~mux:mux_a ~peer:2 ~peer_port:6000 ~stream
      ~policy:Recovery.Transport_buffer ()
  in
  let s1 = mk_sender 1 and s2 = mk_sender 2 in
  let payload stream i = Printf.sprintf "s%d-adu%d-%s" stream i (String.make 500 'x') in
  for i = 0 to 19 do
    Alf_transport.send_adu s1
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (buf (payload 1 i)));
    Alf_transport.send_adu s2
      (Adu.make (Adu.name ~stream:2 ~index:i ()) (buf (payload 2 i)))
  done;
  Alf_transport.close s1;
  Alf_transport.close s2;
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "stream 1 complete" true (Alf_transport.complete r1);
  Alcotest.(check bool) "stream 2 complete" true (Alf_transport.complete r2);
  for i = 0 to 19 do
    Alcotest.(check string) "stream 1 payload" (payload 1 i) (Hashtbl.find got (1, i));
    Alcotest.(check string) "stream 2 payload" (payload 2 i) (Hashtbl.find got (2, i))
  done;
  Alcotest.(check int) "nothing unrouted at the receiver" 0 (Mux.unrouted mux_b)

let test_mux_unrouted_counted () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:607L in
  let net =
    Topology.point_to_point ~engine ~rng ~bandwidth_bps:1e6 ~delay:0.001 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let mux_b = Mux.create ~udp:ub ~port:6000 in
  (* A sender for stream 9, but no receiver attached for it. *)
  let s =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:6000 ~port:6001
      ~stream:9 ~policy:Recovery.No_recovery ()
  in
  Alf_transport.send_adu s (Adu.make (Adu.name ~stream:9 ~index:0 ()) (buf "x"));
  Engine.run ~until:1.0 engine;
  Alcotest.(check bool) "unrouted counted" true (Mux.unrouted mux_b > 0)

(* --- Pipeline --- *)

let test_pipeline_throughput_accounting () =
  let engine = Engine.create () in
  let app = Pipeline.create ~engine ~rate_bps:8000.0 () in
  (* 1000 bytes at 8000 b/s = 1 second of conversion. *)
  ignore (Engine.schedule_at engine 1.0 (fun () -> Pipeline.feed app ~bytes:500));
  ignore (Engine.schedule_at engine 1.1 (fun () -> Pipeline.feed app ~bytes:500));
  Engine.run_until_idle engine;
  Alcotest.(check int) "all processed" 1000 (Pipeline.processed_bytes app);
  Alcotest.(check int) "no backlog" 0 (Pipeline.backlog_bytes app);
  (* First chunk finishes at 1.5, second (queued) at 2.0. *)
  Alcotest.(check (float 1e-9)) "finish time" 2.0 (Pipeline.finish_time app);
  (* Idle: converter starved during [0, 1.0). *)
  Alcotest.(check (float 1e-6)) "idle before first arrival" 1.0 (Pipeline.idle_time app)

let test_pipeline_starvation_idle () =
  let engine = Engine.create () in
  let app = Pipeline.create ~engine ~rate_bps:80000.0 () in
  ignore (Engine.schedule_at engine 0.0 (fun () -> Pipeline.feed app ~bytes:1000));
  (* 0.1 s of work, then a 0.9 s starvation gap. *)
  ignore (Engine.schedule_at engine 1.0 (fun () -> Pipeline.feed app ~bytes:1000));
  Engine.run_until_idle engine;
  Alcotest.(check (float 1e-6)) "starved gap counted" 0.9 (Pipeline.idle_time app)

let test_pipeline_per_unit_cost () =
  let engine = Engine.create () in
  let app = Pipeline.create ~engine ~rate_bps:8e6 ~per_unit_cost:0.01 () in
  for _ = 1 to 10 do
    Pipeline.feed app ~bytes:100
  done;
  Engine.run_until_idle engine;
  (* 10 * (100*8/8e6 + 0.01) = 10 * 0.0101 = 0.101 *)
  Alcotest.(check (float 1e-6)) "dispatch overhead" 0.101 (Pipeline.finish_time app)

let test_pipeline_progress_series () =
  let engine = Engine.create () in
  let app = Pipeline.create ~engine ~rate_bps:8000.0 () in
  Pipeline.feed app ~bytes:100;
  Pipeline.feed app ~bytes:100;
  Engine.run_until_idle engine;
  Alcotest.(check int) "two points" 2 (List.length (Stats.points (Pipeline.progress app)))

(* --- Ordered (in-order view above ADUs) --- *)

let mk_indexed i =
  Adu.make (Adu.name ~stream:0 ~index:i ()) (buf (Printf.sprintf "adu-%d" i))

let test_ordered_releases_contiguous () =
  let got = ref [] in
  let o = Ordered.create ~deliver:(fun a -> got := a.Adu.name.Adu.index :: !got) () in
  Ordered.offer o (mk_indexed 2);
  Ordered.offer o (mk_indexed 1);
  Alcotest.(check (list int)) "held back" [] !got;
  Alcotest.(check int) "parked" 2 (Ordered.held o);
  Ordered.offer o (mk_indexed 0);
  Alcotest.(check (list int)) "released in order" [ 0; 1; 2 ] (List.rev !got);
  Alcotest.(check int) "drained" 0 (Ordered.held o);
  Alcotest.(check int) "next" 3 (Ordered.next_index o)

let test_ordered_skip () =
  let got = ref [] in
  let o = Ordered.create ~deliver:(fun a -> got := a.Adu.name.Adu.index :: !got) () in
  Ordered.offer o (mk_indexed 1);
  Ordered.offer o (mk_indexed 3);
  Ordered.skip o ~index:0;
  Alcotest.(check (list int)) "past the skip" [ 1 ] (List.rev !got);
  Ordered.skip o ~index:2;
  Alcotest.(check (list int)) "all out" [ 1; 3 ] (List.rev !got)

let test_ordered_duplicates_and_stale () =
  let got = ref 0 in
  let o = Ordered.create ~deliver:(fun _ -> incr got) () in
  Ordered.offer o (mk_indexed 0);
  Ordered.offer o (mk_indexed 0);
  (* stale *)
  Ordered.offer o (mk_indexed 1);
  Ordered.offer o (mk_indexed 1);
  Alcotest.(check int) "each once" 2 !got

let prop_ordered_permutation =
  QCheck.Test.make ~name:"ordered: any arrival order releases 0..n-1" ~count:300
    QCheck.(pair (int_range 1 30) int64)
    (fun (n, seed) ->
      let arr = Array.init n mk_indexed in
      Rng.shuffle (Rng.create ~seed) arr;
      let got = ref [] in
      let o = Ordered.create ~deliver:(fun a -> got := a.Adu.name.Adu.index :: !got) () in
      Array.iter (Ordered.offer o) arr;
      List.rev !got = List.init n (fun i -> i) && Ordered.held o = 0)

(* --- Secure (per-ADU encryption) --- *)

let mk_secure_adu ~dest_off payload =
  Adu.make
    (Adu.name ~dest_off ~dest_len:(String.length payload) ~stream:1 ~index:0 ())
    (buf payload)

let test_secure_round_trip () =
  let adu = mk_secure_adu ~dest_off:4096 "attack at dawn, per ADU" in
  let sealed = Secure.seal ~key:0xABCDL adu in
  Alcotest.(check bool) "ciphertext differs" false
    (Bytebuf.equal sealed.Adu.payload adu.Adu.payload);
  let opened, cksum = Secure.open_adu ~key:0xABCDL sealed in
  Alcotest.(check bool) "plaintext restored" true
    (Bytebuf.equal opened.Adu.payload adu.Adu.payload);
  Alcotest.(check int) "fused checksum = plaintext checksum"
    (Checksum.Internet.digest adu.Adu.payload) cksum

let test_secure_out_of_order_independent () =
  (* Each ADU decrypts alone: the position-keyed pad restarts the cipher
     name-space at every ADU boundary. *)
  let adus =
    List.map
      (fun (off, s) -> mk_secure_adu ~dest_off:off s)
      [ (2000, "second part!!"); (0, "first part!!!"); (4000, "third part!!!") ]
  in
  List.iter
    (fun adu ->
      let opened, _ = Secure.open_adu ~key:9L (Secure.seal ~key:9L adu) in
      Alcotest.(check bool) "independent" true
        (Bytebuf.equal opened.Adu.payload adu.Adu.payload))
    adus

let test_secure_wrong_key_garbles () =
  let adu = mk_secure_adu ~dest_off:0 "plaintext" in
  let opened, _ = Secure.open_adu ~key:2L (Secure.seal ~key:1L adu) in
  Alcotest.(check bool) "garbled" false
    (Bytebuf.equal opened.Adu.payload adu.Adu.payload)

let prop_secure_seal_summed =
  QCheck.Test.make ~name:"secure: seal_summed = seal + plaintext checksum"
    ~count:300
    QCheck.(pair (int_bound 100000) (string_of_size Gen.(0 -- 150)))
    (fun (dest_off, payload) ->
      let adu = mk_secure_adu ~dest_off payload in
      let sealed_a = Secure.seal ~key:77L adu in
      let sealed_b, cksum = Secure.seal_summed ~key:77L adu in
      Bytebuf.equal sealed_a.Adu.payload sealed_b.Adu.payload
      && cksum = Checksum.Internet.digest (buf payload))

let prop_secure_kernel_duals =
  QCheck.Test.make ~name:"secure: open(seal) at any offset" ~count:300
    QCheck.(pair (int_bound 1_000_000) (string_of_size Gen.(0 -- 200)))
    (fun (dest_off, payload) ->
      let adu = mk_secure_adu ~dest_off payload in
      let sealed = Secure.seal ~key:123L adu in
      let opened, cksum = Secure.open_adu ~key:123L sealed in
      Bytebuf.to_string opened.Adu.payload = payload
      && cksum = Checksum.Internet.digest (buf payload))

(* --- Sink --- *)

let test_sink_out_of_order_completion () =
  let t = Sink.create ~size:10 in
  Alcotest.(check bool) "empty not complete" false (Sink.complete t);
  (match Sink.write t ~off:6 (buf "ghij") with Ok () -> () | Error e -> Alcotest.fail e);
  (match Sink.write t ~off:0 (buf "abc") with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair int int))) "missing" [ (3, 3) ] (Sink.missing_ranges t);
  (match Sink.write t ~off:3 (buf "def") with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "complete" true (Sink.complete t);
  Alcotest.(check string) "contents" "abcdefghij" (Bytebuf.to_string (Sink.contents t))

let test_sink_bounds () =
  let t = Sink.create ~size:4 in
  (match Sink.write t ~off:2 (buf "xyz") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overrun accepted");
  Alcotest.(check int) "nothing covered" 0 (Sink.covered_bytes t)

let test_sink_overlap_idempotent () =
  let t = Sink.create ~size:6 in
  ignore (Sink.write t ~off:0 (buf "abcd"));
  ignore (Sink.write t ~off:2 (buf "cdef"));
  ignore (Sink.write t ~off:0 (buf "abcd"));
  Alcotest.(check int) "covered once" 6 (Sink.covered_bytes t);
  Alcotest.(check string) "contents" "abcdef" (Bytebuf.to_string (Sink.contents t));
  Alcotest.(check (list (pair int int))) "one run" [ (0, 6) ] (Sink.covered_ranges t)

let test_sink_adu_len_check () =
  let t = Sink.create ~size:10 in
  let adu = Adu.make (Adu.name ~dest_off:0 ~dest_len:5 ~stream:0 ~index:0 ()) (buf "ab") in
  match Sink.write_adu t adu with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dest_len mismatch accepted"

let prop_sink_matches_bitmap_model =
  QCheck.Test.make ~name:"sink: coverage matches bitmap model" ~count:300
    QCheck.(small_list (pair (int_bound 40) (int_bound 12)))
    (fun writes ->
      let size = 48 in
      let t = Sink.create ~size in
      let model = Array.make size false in
      List.iter
        (fun (off, len) ->
          let len = min len (size - off) in
          if len > 0 then begin
            (match Sink.write t ~off (Bytebuf.create len) with
            | Ok () -> ()
            | Error _ -> ());
            for i = off to off + len - 1 do
              model.(i) <- true
            done
          end)
        writes;
      let model_covered = Array.fold_left (fun n b -> if b then n + 1 else n) 0 model in
      let runs_disjoint_sorted =
        let rec ok = function
          | (o1, l1) :: ((o2, _) :: _ as rest) -> o1 + l1 < o2 && l1 > 0 && ok rest
          | [ (_, l) ] -> l > 0
          | [] -> true
        in
        ok (Sink.covered_ranges t)
      in
      Sink.covered_bytes t = model_covered
      && runs_disjoint_sorted
      && List.fold_left (fun n (_, l) -> n + l) 0 (Sink.missing_ranges t)
         = size - model_covered)

let prop_sink_partition_completes =
  QCheck.Test.make ~name:"sink: shuffled ADU partition completes" ~count:200
    QCheck.(pair (int_range 1 50) int64)
    (fun (adu_size, seed) ->
      let data = Bytebuf.init 200 (fun i -> Char.chr (i land 0xff)) in
      let adus = Array.of_list (Framing.frames_of_buffer ~stream:0 ~adu_size data) in
      Rng.shuffle (Rng.create ~seed) adus;
      let t = Sink.create ~size:200 in
      Array.iter (fun adu ->
          match Sink.write_adu t adu with
          | Ok () -> ()
          | Error e -> failwith e)
        adus;
      Sink.complete t && Bytebuf.equal (Sink.contents t) data)

(* --- FEC --- *)

let test_fec_parity_recover () =
  let blocks = List.map buf [ "hello"; "world"; "!!" ] in
  let prefixed = List.map (fun b ->
      let n = Bytebuf.length b in
      let out = Bytebuf.create (2 + n) in
      Bytebuf.set_uint8 out 0 (n lsr 8);
      Bytebuf.set_uint8 out 1 (n land 0xff);
      Bytebuf.blit ~src:b ~src_pos:0 ~dst:out ~dst_pos:2 ~len:n;
      out) blocks
  in
  let p = Fec.parity prefixed in
  (* Lose block 1 and recover it. *)
  let have = [ (0, List.nth prefixed 0); (2, List.nth prefixed 2) ] in
  let rec_b = Fec.recover ~have ~parity:p ~k:3 ~missing:1 in
  Alcotest.(check string) "recovered (with prefix)" "world"
    (Bytebuf.to_string (Bytebuf.sub rec_b ~pos:2 ~len:5))

let fec_stream n = List.init n (fun i ->
    buf (String.init (10 + (i mod 7)) (fun j -> Char.chr (33 + ((i + j) mod 90)))))

let test_fec_clean_stream () =
  let blocks = fec_stream 20 in
  let protected = Fec.protect ~k:4 blocks in
  Alcotest.(check int) "adds one parity per group" 25 (List.length protected);
  let got = ref [] in
  let d = Fec.decoder ~deliver:(fun b -> got := Bytebuf.to_string b :: !got) () in
  List.iter (Fec.push d) protected;
  Fec.flush d;
  Alcotest.(check (list string)) "all delivered in order"
    (List.map Bytebuf.to_string blocks)
    (List.rev !got);
  Alcotest.(check int) "nothing recovered" 0 (Fec.stats d).Fec.recovered;
  Alcotest.(check int) "nothing unrecoverable" 0 (Fec.stats d).Fec.unrecoverable

let test_fec_single_loss_per_group_recovers () =
  let blocks = fec_stream 12 in
  let protected = Fec.protect ~k:4 blocks in
  (* Drop exactly one source block in each of the 3 groups (positions
     1, 6, 11 in the protected stream = sources 1, 2, 3 of each group). *)
  let survivors = List.filteri (fun i _ -> i <> 1 && i <> 7 && i <> 13) protected in
  let got = ref [] in
  let d = Fec.decoder ~deliver:(fun b -> got := Bytebuf.to_string b :: !got) () in
  List.iter (Fec.push d) survivors;
  Fec.flush d;
  let expected = List.map Bytebuf.to_string blocks in
  Alcotest.(check int) "all blocks delivered" (List.length expected) (List.length !got);
  Alcotest.(check bool) "same multiset" true
    (List.sort compare expected = List.sort compare !got);
  Alcotest.(check int) "three recoveries" 3 (Fec.stats d).Fec.recovered

let test_fec_double_loss_unrecoverable () =
  let blocks = fec_stream 4 in
  let protected = Fec.protect ~k:4 blocks in
  (* Drop two sources of the single group. *)
  let survivors = List.filteri (fun i _ -> i <> 0 && i <> 1) protected in
  let got = ref 0 in
  let d = Fec.decoder ~deliver:(fun _ -> incr got) () in
  List.iter (Fec.push d) survivors;
  Fec.flush d;
  Alcotest.(check int) "only direct blocks" 2 !got;
  Alcotest.(check int) "group unrecoverable" 1 (Fec.stats d).Fec.unrecoverable

let test_fec_lost_parity_harmless () =
  let blocks = fec_stream 4 in
  let protected = Fec.protect ~k:4 blocks in
  let survivors = List.filteri (fun i _ -> i <> 4) protected in
  (* parity is last *)
  let got = ref 0 in
  let d = Fec.decoder ~deliver:(fun _ -> incr got) () in
  List.iter (Fec.push d) survivors;
  Fec.flush d;
  Alcotest.(check int) "all sources delivered" 4 !got;
  Alcotest.(check int) "no unrecoverable" 0 (Fec.stats d).Fec.unrecoverable

let test_fec_duplicates_ignored () =
  let blocks = fec_stream 4 in
  let protected = Fec.protect ~k:4 blocks in
  let got = ref 0 in
  let d = Fec.decoder ~deliver:(fun _ -> incr got) () in
  List.iter (Fec.push d) protected;
  List.iter (Fec.push d) protected;
  Fec.flush d;
  Alcotest.(check int) "each source once" 4 !got

let test_fec_k1_duplicate_parity () =
  (* Regression: with k=1, a parity arriving after the source completed
     the group must not re-deliver the block. *)
  let blocks = fec_stream 1 in
  let protected = Fec.protect ~k:1 blocks in
  let got = ref 0 in
  let d = Fec.decoder ~deliver:(fun _ -> incr got) () in
  List.iter (Fec.push d) protected;
  List.iter (Fec.push d) protected;
  Fec.flush d;
  Alcotest.(check int) "delivered once" 1 !got

let prop_fec_any_single_loss =
  QCheck.Test.make ~name:"fec: any single loss per group recovers" ~count:200
    QCheck.(pair (int_range 1 8) (int_range 0 30))
    (fun (k, drop_seed) ->
      let blocks = fec_stream (3 * k) in
      let protected = Fec.protect ~k blocks in
      let per_group = k + 1 in
      (* Drop one block (source or parity) per group, position derived
         from the seed. *)
      let survivors =
        List.filteri
          (fun i _ ->
            let group = i / per_group and pos = i mod per_group in
            pos <> (drop_seed + group) mod per_group)
          protected
      in
      let got = ref [] in
      let d = Fec.decoder ~deliver:(fun b -> got := Bytebuf.to_string b :: !got) () in
      List.iter (Fec.push d) survivors;
      Fec.flush d;
      List.sort compare (List.map Bytebuf.to_string blocks)
      = List.sort compare !got
      && (Fec.stats d).Fec.unrecoverable = 0)

(* --- Playout --- *)

let us f = Int64.of_float (f *. 1e6)

let test_playout_in_time () =
  let engine = Engine.create () in
  let played = ref [] in
  let p =
    Playout.create ~engine ~playout_delay:0.1
      ~play:(fun adu -> played := (adu.Adu.name.Adu.index, Engine.now engine) :: !played)
      ()
  in
  (* Three frames captured at 0, 40, 80 ms; all arrive early but out of
     order; each must play exactly at capture + 100 ms. *)
  let mk i ts = Adu.make (Adu.name ~timestamp_us:(us ts) ~stream:0 ~index:i ()) (Bytebuf.create 10) in
  List.iter (fun ts -> Playout.expect p ~timestamp_us:(us ts)) [ 0.0; 0.04; 0.08 ];
  ignore (Engine.schedule_at engine 0.01 (fun () -> Playout.insert p (mk 2 0.08)));
  ignore (Engine.schedule_at engine 0.02 (fun () -> Playout.insert p (mk 0 0.0)));
  ignore (Engine.schedule_at engine 0.03 (fun () -> Playout.insert p (mk 1 0.04)));
  Engine.run_until_idle engine;
  (match List.rev !played with
  | [ (0, t0); (1, t1); (2, t2) ] ->
      Alcotest.(check (float 1e-9)) "frame 0 at 100ms" 0.1 t0;
      Alcotest.(check (float 1e-9)) "frame 1 at 140ms" 0.14 t1;
      Alcotest.(check (float 1e-9)) "frame 2 at 180ms" 0.18 t2
  | _ -> Alcotest.fail "wrong playout order");
  let st = Playout.stats p in
  Alcotest.(check int) "all played" 3 st.Playout.played;
  Alcotest.(check int) "none missing" 0 st.Playout.missing;
  Alcotest.(check int) "none late" 0 st.Playout.late

let test_playout_late_and_missing () =
  let engine = Engine.create () in
  let p = Playout.create ~engine ~playout_delay:0.05 ~play:(fun _ -> ()) () in
  let mk i ts = Adu.make (Adu.name ~timestamp_us:(us ts) ~stream:0 ~index:i ()) (Bytebuf.create 1) in
  Playout.expect p ~timestamp_us:(us 0.0);
  Playout.expect p ~timestamp_us:(us 0.04);
  (* Frame 0 arrives after its 50 ms deadline; frame at 40ms never comes. *)
  ignore (Engine.schedule_at engine 0.06 (fun () -> Playout.insert p (mk 0 0.0)));
  Engine.run_until_idle engine;
  let st = Playout.stats p in
  Alcotest.(check int) "late" 1 st.Playout.late;
  Alcotest.(check int) "missing counts both" 2 st.Playout.missing;
  Alcotest.(check int) "nothing played" 0 st.Playout.played

let test_playout_multiple_per_instant () =
  let engine = Engine.create () in
  let played = ref 0 in
  let p = Playout.create ~engine ~playout_delay:0.02 ~play:(fun _ -> incr played) () in
  let mk i = Adu.make (Adu.name ~timestamp_us:(us 0.01) ~stream:0 ~index:i ()) (Bytebuf.create 1) in
  for _ = 1 to 4 do
    Playout.expect p ~timestamp_us:(us 0.01)
  done;
  (* Only three of the four expected tiles arrive. *)
  Playout.insert p (mk 0);
  Playout.insert p (mk 1);
  Playout.insert p (mk 2);
  Alcotest.(check int) "buffered before deadline" 3 (Playout.buffered p);
  Engine.run_until_idle engine;
  Alcotest.(check int) "played" 3 !played;
  Alcotest.(check int) "one missing" 1 (Playout.stats p).Playout.missing

let test_playout_jitter_margin () =
  let engine = Engine.create () in
  let p = Playout.create ~engine ~playout_delay:0.1 ~play:(fun _ -> ()) () in
  let mk ts = Adu.make (Adu.name ~timestamp_us:(us ts) ~stream:0 ~index:0 ()) (Bytebuf.create 1) in
  (* Captured at 0, arrives at 30 ms: margin to the 100 ms deadline is 70 ms. *)
  ignore (Engine.schedule_at engine 0.03 (fun () -> Playout.insert p (mk 0.0)));
  Engine.run_until_idle engine;
  Alcotest.(check (float 1e-6)) "margin" 0.07
    (Stats.mean (Playout.stats p).Playout.early_margin)

let () =
  Alcotest.run "core"
    [
      ( "kernels",
        [
          Alcotest.test_case "length mismatch" `Quick test_kernel_length_mismatch;
          qcheck prop_kernel_checksum_matches;
          qcheck prop_kernel_copy;
          qcheck prop_kernel_fused_copy_checksum;
          qcheck prop_kernel_fused_xor;
        ] );
      ( "machine-model",
        [
          Alcotest.test_case "table 1 shape" `Quick test_model_table1;
          Alcotest.test_case "ilp fusion prediction" `Quick test_model_ilp_fusion_prediction;
          Alcotest.test_case "presentation prediction" `Quick test_model_presentation_prediction;
          Alcotest.test_case "fused convert+checksum" `Quick test_model_fused_convert_checksum;
          Alcotest.test_case "fuse algebra" `Quick test_model_fuse_algebra;
          Alcotest.test_case "fused never slower" `Quick test_model_fused_never_slower;
          qcheck prop_model_fusion_always_wins;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "validate rules" `Quick test_ilp_validate_rules;
          Alcotest.test_case "fused rejects invalid" `Quick test_ilp_run_fused_rejects_invalid;
          Alcotest.test_case "byteswap length" `Quick test_ilp_byteswap_length_check;
          Alcotest.test_case "needs in order" `Quick test_ilp_needs_in_order;
          Alcotest.test_case "byteswap involution" `Quick test_ilp_byteswap_involution;
          Alcotest.test_case "passes accounting" `Quick test_ilp_passes_accounting;
          Alcotest.test_case "checksum placement" `Quick test_ilp_checksum_sees_transformed_data;
          Alcotest.test_case "compilation dispatch" `Quick test_ilp_compilation_dispatch;
          qcheck prop_ilp_fused_equals_layered;
          qcheck prop_ilp_byteswap_first_ok;
          qcheck prop_ilp_compiler_general;
          qcheck prop_ilp_validate_shape_determined;
          qcheck prop_ilp_fused_agrees_with_validate;
          Alcotest.test_case "run_fused ?dst" `Quick test_ilp_run_fused_dst;
          Alcotest.test_case "plan cache" `Quick test_ilp_plan_cache;
        ] );
      ( "adu",
        [
          Alcotest.test_case "name validation" `Quick test_adu_name_validation;
          Alcotest.test_case "decode_view aliases" `Quick test_adu_decode_view_aliases;
          qcheck prop_adu_round_trip;
          qcheck prop_adu_corruption_detected;
        ] );
      ( "framing",
        [
          Alcotest.test_case "buffer partition" `Quick test_framing_buffer_partition;
          Alcotest.test_case "values placement" `Quick test_framing_values_placement;
          Alcotest.test_case "fragment sizes" `Quick test_framing_fragment_sizes;
          Alcotest.test_case "duplicate fragments" `Quick test_framing_duplicate_fragments;
          Alcotest.test_case "interleaved adus" `Quick test_framing_interleaved_adus;
          Alcotest.test_case "forget" `Quick test_framing_forget;
          Alcotest.test_case "pooled zero-alloc steady state" `Quick
            test_framing_pooled_zero_alloc;
          Alcotest.test_case "pooled oversize fallback" `Quick
            test_framing_pooled_oversize_falls_back;
          qcheck prop_framing_fragment_round_trip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "transport buffer" `Quick test_recovery_transport_buffer;
          Alcotest.test_case "app recompute" `Quick test_recovery_app_recompute;
          Alcotest.test_case "no recovery" `Quick test_recovery_none;
          Alcotest.test_case "release below" `Quick test_recovery_release_below;
        ] );
      ( "alf-transport",
        [
          Alcotest.test_case "clean delivery" `Quick test_alf_clean_delivery;
          Alcotest.test_case "lossy + transport buffer" `Quick test_alf_lossy_transport_buffer;
          Alcotest.test_case "out of order delivery" `Quick
            test_alf_out_of_order_delivery_under_loss;
          Alcotest.test_case "no-recovery policy" `Quick test_alf_no_recovery_policy;
          Alcotest.test_case "app-recompute policy" `Quick test_alf_app_recompute_policy;
          Alcotest.test_case "store released" `Quick test_alf_store_released_by_acks;
          Alcotest.test_case "delivery series" `Quick test_alf_delivery_series_monotone;
        ] );
      ( "ordered",
        [
          Alcotest.test_case "releases contiguous" `Quick test_ordered_releases_contiguous;
          Alcotest.test_case "skip" `Quick test_ordered_skip;
          Alcotest.test_case "duplicates and stale" `Quick test_ordered_duplicates_and_stale;
          qcheck prop_ordered_permutation;
        ] );
      ( "secure",
        [
          Alcotest.test_case "round trip + fused checksum" `Quick test_secure_round_trip;
          Alcotest.test_case "out of order independent" `Quick
            test_secure_out_of_order_independent;
          Alcotest.test_case "wrong key garbles" `Quick test_secure_wrong_key_garbles;
          qcheck prop_secure_seal_summed;
          qcheck prop_secure_kernel_duals;
        ] );
      ( "sink",
        [
          Alcotest.test_case "out of order completion" `Quick
            test_sink_out_of_order_completion;
          Alcotest.test_case "bounds" `Quick test_sink_bounds;
          Alcotest.test_case "overlap idempotent" `Quick test_sink_overlap_idempotent;
          Alcotest.test_case "adu length check" `Quick test_sink_adu_len_check;
          qcheck prop_sink_matches_bitmap_model;
          qcheck prop_sink_partition_completes;
        ] );
      ( "fec",
        [
          Alcotest.test_case "parity/recover primitive" `Quick test_fec_parity_recover;
          Alcotest.test_case "clean stream" `Quick test_fec_clean_stream;
          Alcotest.test_case "single loss recovers" `Quick
            test_fec_single_loss_per_group_recovers;
          Alcotest.test_case "double loss unrecoverable" `Quick
            test_fec_double_loss_unrecoverable;
          Alcotest.test_case "lost parity harmless" `Quick test_fec_lost_parity_harmless;
          Alcotest.test_case "duplicates ignored" `Quick test_fec_duplicates_ignored;
          Alcotest.test_case "k=1 duplicate parity" `Quick test_fec_k1_duplicate_parity;
          qcheck prop_fec_any_single_loss;
        ] );
      ( "playout",
        [
          Alcotest.test_case "in time, out of order" `Quick test_playout_in_time;
          Alcotest.test_case "late and missing" `Quick test_playout_late_and_missing;
          Alcotest.test_case "multiple per instant" `Quick test_playout_multiple_per_instant;
          Alcotest.test_case "jitter margin" `Quick test_playout_jitter_margin;
        ] );
      ( "session",
        [
          Alcotest.test_case "negotiates syntax and rate" `Quick
            test_session_negotiates_syntax_and_rate;
          Alcotest.test_case "no common syntax" `Quick test_session_no_common_syntax;
          Alcotest.test_case "unreachable times out" `Quick test_session_unreachable_times_out;
          Alcotest.test_case "negotiated transfer end-to-end" `Quick
            test_session_then_negotiated_transfer;
        ] );
      ( "stage2",
        [
          Alcotest.test_case "decrypt+verify pipeline" `Quick
            test_stage2_decrypt_verify_pipeline;
          Alcotest.test_case "rejects sequential cipher" `Quick
            test_stage2_rejects_sequential_cipher;
          Alcotest.test_case "rejects invalid plan" `Quick test_stage2_rejects_invalid_plan;
          Alcotest.test_case "out_pool inline zero-alloc" `Quick
            test_stage2_out_pool_inline;
          Alcotest.test_case "batched with in/out pools" `Quick
            test_stage2_batched_pools_round_trip;
        ] );
      ( "mux",
        [
          Alcotest.test_case "two streams one port" `Quick test_mux_two_streams_one_port;
          Alcotest.test_case "unrouted counted" `Quick test_mux_unrouted_counted;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "throughput accounting" `Quick test_pipeline_throughput_accounting;
          Alcotest.test_case "starvation idle" `Quick test_pipeline_starvation_idle;
          Alcotest.test_case "per-unit cost" `Quick test_pipeline_per_unit_cost;
          Alcotest.test_case "progress series" `Quick test_pipeline_progress_series;
        ] );
    ]
