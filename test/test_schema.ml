(* The schema-compiled presentation path.

   Contracts under test:
   - compiled encode == interpretive encode, byte for byte (sizes too),
     over random schemas x values x plans;
   - Schema.validate agrees with Xdr.decode_prefix (success AND consumed)
     over valid encodings, truncations, bit flips and raw garbage — and
     is total on all of them;
   - View lazy accessors and View.to_value equal the eager decode;
   - zero steady-state Bytebuf allocations on both the compiled transmit
     and the lazy receive;
   - the schema-program cache hits on repeat lookups. *)

open Bufkit
open Netsim
open Alf_core
open Wire

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- generators --- *)

let schema_gen : Xdr.schema QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneofl
      [ Xdr.S_void; Xdr.S_bool; Xdr.S_int; Xdr.S_hyper; Xdr.S_opaque; Xdr.S_string ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (1, map (fun s -> Xdr.S_array s) (node (depth - 1)));
          ( 1,
            map (fun ss -> Xdr.S_struct ss) (list_size (0 -- 3) (node (depth - 1)))
          );
        ]
  in
  node 3

let rec value_for (s : Xdr.schema) : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  match s with
  | S_void -> return Value.Null
  | S_bool -> map (fun b -> Value.Bool b) bool
  | S_int -> map (fun i -> Value.Int (Int32.to_int i)) int32
  | S_hyper ->
      oneof
        [
          map (fun i -> Value.Int64 i) int64;
          map (fun i -> Value.Int i) small_signed_int;
        ]
  | S_opaque -> map (fun s -> Value.Octets s) (string_size (0 -- 16))
  | S_string ->
      map (fun s -> Value.Utf8 s) (string_size ~gen:(char_range 'a' 'z') (0 -- 12))
  | S_array el -> map (fun vs -> Value.List vs) (list_size (0 -- 4) (value_for el))
  | S_struct ss ->
      let fields = flatten_l (List.map value_for ss) in
      oneof
        [
          map (fun vs -> Value.List vs) fields;
          map
            (fun vs ->
              Value.Record (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) vs))
            fields;
        ]

let pair_gen : (Xdr.schema * Value.t) QCheck.Gen.t =
  QCheck.Gen.(schema_gen >>= fun s -> map (fun v -> (s, v)) (value_for s))

let pp_pair (s, v) =
  Format.asprintf "%a / %a" Xdr.pp_schema s Value.pp v

let arb_pair = QCheck.make ~print:pp_pair pair_gen

(* Plans valid on the marshal path: no byteswap, at most one RC4. *)
let plan_gen : Ilp.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let stage =
    oneof
      [
        map (fun k -> Ilp.Checksum k) (oneofl Checksum.Kind.all);
        map2
          (fun key pos -> Ilp.Xor_pad { key; pos = Int64.of_int pos })
          int64 small_nat;
        map
          (fun key -> Ilp.Rc4_stream { key })
          (string_size ~gen:(char_range 'a' 'z') (1 -- 8));
        return Ilp.Deliver_copy;
      ]
  in
  let keep_first_rc4 plan =
    let seen = ref false in
    List.filter
      (function
        | Ilp.Rc4_stream _ -> if !seen then false else (seen := true; true)
        | _ -> true)
      plan
  in
  map keep_first_rc4 (list_size (0 -- 3) stage)

let arb_pair_plan =
  QCheck.make
    ~print:(fun ((s, v), p) ->
      Printf.sprintf "%s [%d stages]" (pp_pair (s, v)) (List.length p))
    QCheck.Gen.(map2 (fun sv p -> (sv, p)) pair_gen plan_gen)

(* --- compiled emit == interpretive encode --- *)

let prop_size_matches_sizeof =
  QCheck.Test.make ~name:"Schema.size == Xdr.sizeof" ~count:500 arb_pair
    (fun (s, v) ->
      Schema.size (Schema.prog_of_xdr s) v = Xdr.sizeof s v)

let prop_compiled_encode_identical =
  QCheck.Test.make ~name:"compiled encode == interpretive encode" ~count:500
    arb_pair (fun (s, v) ->
      let prog = Schema.prog_of_xdr s in
      let compiled =
        (Ilp.run_marshal (Ilp.Marshal_prog (prog, v)) []).Ilp.output
      in
      Bytebuf.equal compiled (Xdr.encode s v))

let prop_compiled_fused_parity =
  QCheck.Test.make ~name:"compiled fused == interpretive fused (bytes+sums)"
    ~count:300 arb_pair_plan (fun ((s, v), plan) ->
      let c = Ilp.run_marshal (Ilp.Marshal_xdr (s, v)) plan in
      let i = Ilp.run_marshal (Ilp.Marshal_xdr_interp (s, v)) plan in
      Bytebuf.equal c.Ilp.output i.Ilp.output
      && c.Ilp.checksums = i.Ilp.checksums)

let test_emit_rejects_mismatch () =
  let reject s v =
    match Ilp.run_marshal (Ilp.Marshal_xdr (s, v)) [] with
    | _ -> Alcotest.fail "mismatch accepted"
    | exception Xdr.Error _ -> ()
  in
  reject Xdr.S_int (Value.Utf8 "no");
  reject Xdr.S_int (Value.Int (1 lsl 40));
  reject (Xdr.S_array Xdr.S_int) (Value.List [ Value.Int 1; Value.Bool true ]);
  reject
    (Xdr.S_struct [ Xdr.S_int; Xdr.S_int ])
    (Value.List [ Value.Int 1 ]);
  reject
    (Xdr.S_struct [ Xdr.S_int ])
    (Value.List [ Value.Int 1; Value.Int 2 ])

(* --- validate == decode_prefix --- *)

(* Arrays whose elements encode to zero bytes make hostile counts cheap
   to accept (both sides agree, but the decode side then builds a
   multi-million-Null list — pure test slowness, no disagreement).
   Keep them out of the byte-fuzzing properties only. *)
let rec has_zero_size_array = function
  | Xdr.S_array el ->
      Schema.static (Schema.of_xdr el) = Some 0 || has_zero_size_array el
  | Xdr.S_struct ss -> List.exists has_zero_size_array ss
  | _ -> false

let decode_consumed s buf =
  match Xdr.decode_prefix s buf with
  | _, consumed -> Some consumed
  | exception Xdr.Error _ -> None

let validate_consumed prog buf =
  match Schema.validate prog buf ~pos:0 with
  | Ok consumed -> Some consumed
  | Error _ -> None

let agree s buf = validate_consumed (Schema.prog_of_xdr s) buf = decode_consumed s buf

let prop_validate_agrees_on_valid =
  QCheck.Test.make ~name:"validate == decode_prefix on encodings" ~count:500
    arb_pair (fun (s, v) -> agree s (Xdr.encode s v))

let arb_pair_seed =
  QCheck.make
    ~print:(fun ((s, v), seed) -> Printf.sprintf "%s #%d" (pp_pair (s, v)) seed)
    QCheck.Gen.(map2 (fun sv seed -> (sv, seed)) pair_gen (0 -- 1000000))

let prop_validate_agrees_on_truncations =
  QCheck.Test.make ~name:"validate == decode_prefix on every truncation"
    ~count:200 arb_pair (fun (s, v) ->
      QCheck.assume (not (has_zero_size_array s));
      let enc = Xdr.encode s v in
      let ok = ref true in
      for len = 0 to Bytebuf.length enc - 1 do
        if not (agree s (Bytebuf.take enc len)) then ok := false
      done;
      !ok)

let prop_validate_agrees_on_bitflips =
  QCheck.Test.make ~name:"validate == decode_prefix under bit flips"
    ~count:300 arb_pair_seed (fun ((s, v), seed) ->
      QCheck.assume (not (has_zero_size_array s));
      let enc = Xdr.encode s v in
      let n = Bytebuf.length enc in
      QCheck.assume (n > 0);
      let flipped = Bytebuf.copy enc in
      let pos = seed mod n and bit = seed / 7 mod 8 in
      Bytebuf.set_uint8 flipped pos
        (Bytebuf.get_uint8 flipped pos lxor (1 lsl bit));
      agree s flipped)

let prop_validate_total_on_garbage =
  QCheck.Test.make ~name:"validate total + agreeing on raw garbage" ~count:500
    (QCheck.make
       ~print:(fun (s, bytes) ->
         Format.asprintf "%a / %d bytes" Xdr.pp_schema s (String.length bytes))
       QCheck.Gen.(
         map2 (fun s b -> (s, b)) schema_gen (string_size (0 -- 64))))
    (fun (s, bytes) ->
      QCheck.assume (not (has_zero_size_array s));
      agree s (Bytebuf.of_string bytes))

(* --- the lazy view --- *)

let prop_view_to_value_roundtrip =
  QCheck.Test.make ~name:"View.to_value == Xdr.decode" ~count:500 arb_pair
    (fun (s, v) ->
      let enc = Xdr.encode s v in
      match View.make (Schema.prog_of_xdr s) enc ~pos:0 with
      | Error e -> QCheck.Test.fail_reportf "validate failed: %s" e
      | Ok (view, consumed) ->
          consumed = Bytebuf.length enc
          && Value.equal (View.to_value view) (Xdr.decode s enc))

(* Structural walk: every accessor against the eagerly decoded value. *)
let rec check_view view (expected : Value.t) =
  match ((View.schema view).Schema.shape, expected) with
  | Schema.Void, Value.Null -> true
  | Schema.Bool, Value.Bool b -> View.get_bool view = b
  | Schema.Int, Value.Int i -> View.get_int view = i
  | Schema.Hyper, Value.Int i -> View.get_hyper view = Int64.of_int i
  | Schema.Hyper, Value.Int64 i -> View.get_hyper view = i
  | Schema.Opaque, Value.Octets s ->
      View.get_octets view = s && Bytebuf.to_string (View.octets_view view) = s
  | Schema.Str, Value.Utf8 s -> View.get_string view = s
  | Schema.Array _, Value.List vs ->
      View.count view = List.length vs
      && List.for_all2 check_view
           (List.init (List.length vs) (View.elem view))
           vs
  | Schema.Struct _, Value.List vs ->
      View.count view = List.length vs
      && List.for_all2 check_view
           (List.init (List.length vs) (View.field view))
           vs
  | _ -> false

let prop_view_accessors =
  QCheck.Test.make ~name:"View accessors == eager decode" ~count:500 arb_pair
    (fun (s, v) ->
      let enc = Xdr.encode s v in
      match View.make (Schema.prog_of_xdr s) enc ~pos:0 with
      | Error e -> QCheck.Test.fail_reportf "validate failed: %s" e
      | Ok (view, _) -> check_view view (Xdr.decode s enc))

let test_view_trailing_bytes () =
  (* Like decode_prefix, a view accepts trailing bytes and reports where
     the value ended. *)
  let enc = Xdr.encode Xdr.S_int (Value.Int 7) in
  let padded = Bytebuf.concat [ enc; Bytebuf.of_string "tail" ] in
  match View.make (Schema.prog_of_xdr Xdr.S_int) padded ~pos:0 with
  | Error e -> Alcotest.fail e
  | Ok (view, consumed) ->
      Alcotest.(check int) "consumed" 4 consumed;
      Alcotest.(check int) "value" 7 (View.get_int view)

let test_view_zero_copy () =
  (* octets_view aliases the input buffer: mutating the underlying bytes
     shows through the accessor — proof there is no hidden copy. *)
  let s = Xdr.S_struct [ Xdr.S_int; Xdr.S_opaque ] in
  let v = Value.List [ Value.Int 1; Value.Octets "abcd" ] in
  let enc = Xdr.encode s v in
  match View.make (Schema.prog_of_xdr s) enc ~pos:0 with
  | Error e -> Alcotest.fail e
  | Ok (view, _) ->
      let octets = View.octets_view (View.field view 1) in
      Alcotest.(check string) "before" "abcd" (Bytebuf.to_string octets);
      Bytebuf.set enc 8 'Z' (* first content byte of the opaque field *);
      Alcotest.(check string) "aliases payload" "Zbcd"
        (Bytebuf.to_string octets)

let test_view_static_field_offsets () =
  (* Mixed struct: static prefix fields are O(1) seeks, fields behind a
     dynamic one are found by walking — same answers either way. *)
  let s =
    Xdr.S_struct [ Xdr.S_int; Xdr.S_hyper; Xdr.S_string; Xdr.S_int ]
  in
  let v =
    Value.List
      [ Value.Int 3; Value.Int64 99L; Value.Utf8 "dyn"; Value.Int 44 ]
  in
  let enc = Xdr.encode s v in
  match View.make (Schema.prog_of_xdr s) enc ~pos:0 with
  | Error e -> Alcotest.fail e
  | Ok (view, _) ->
      Alcotest.(check int) "f0" 3 (View.get_int (View.field view 0));
      Alcotest.(check bool) "f1" true (View.get_hyper (View.field view 1) = 99L);
      Alcotest.(check string) "f2" "dyn" (View.get_string (View.field view 2));
      Alcotest.(check int) "f3 (behind dynamic)" 44
        (View.get_int (View.field view 3))

(* --- zero allocation, both directions --- *)

let test_compiled_marshal_zero_alloc () =
  let v =
    Value.List
      (List.init 64 (fun i ->
           Value.Record
             [
               ("seq", Value.Int i);
               ("stamp", Value.Int64 (Int64.of_int (i * 1000)));
               ("tag", Value.Utf8 "sensor");
             ]))
  in
  let prog = Schema.prog_of_value v in
  let plan =
    [ Ilp.Checksum Checksum.Kind.Crc32; Ilp.Xor_pad { key = 9L; pos = 0L } ]
  in
  let n = Schema.size prog v in
  let dst = Bytebuf.create n in
  let run () = ignore (Ilp.run_marshal ~dst (Ilp.Marshal_prog (prog, v)) plan) in
  for _ = 1 to 5 do run () done;
  let before = Bytebuf.created_total () in
  for _ = 1 to 50 do run () done;
  Alcotest.(check int) "zero Bytebuf creations across 50 compiled marshals" 0
    (Bytebuf.created_total () - before)

let test_view_receive_zero_alloc () =
  let s = Xdr.S_struct [ Xdr.S_int; Xdr.S_string; Xdr.S_array Xdr.S_int ] in
  let v =
    Value.List
      [
        Value.Int 12;
        Value.Utf8 "zerocopy";
        Value.List (List.init 32 (fun i -> Value.Int i));
      ]
  in
  let prog = Schema.prog_of_xdr s in
  let enc = Xdr.encode s v in
  let plan = [ Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ] in
  let sum = ref 0 in
  let run () =
    (* In place over the "payload", like receiver_views does. *)
    match (Ilp.run_view ~dst:enc plan prog enc).Ilp.view with
    | Ok (view, _) ->
        sum := !sum + View.get_int (View.field view 0);
        sum := !sum + View.get_int (View.elem (View.field view 2) 7)
    | Error e -> Alcotest.fail e
  in
  for _ = 1 to 5 do run () done;
  let before = Bytebuf.created_total () in
  for _ = 1 to 50 do run () done;
  Alcotest.(check int) "zero Bytebuf creations across 50 lazy receives" 0
    (Bytebuf.created_total () - before)

(* --- the program cache --- *)

let test_prog_cache_hits () =
  (* A schema shape private to this test, so the first lookup is
     deterministically a miss and the rest hits. *)
  let s =
    Xdr.S_struct
      [ Xdr.S_hyper; Xdr.S_struct [ Xdr.S_string; Xdr.S_bool ]; Xdr.S_int ]
  in
  let st0 = Schema.cache_stats () in
  let p1 = Schema.prog_of_xdr s in
  let st1 = Schema.cache_stats () in
  Alcotest.(check int) "first lookup misses" (st0.Schema.misses + 1)
    st1.Schema.misses;
  let p2 = Schema.prog_of_xdr s in
  let st2 = Schema.cache_stats () in
  Alcotest.(check int) "second lookup hits" (st1.Schema.hits + 1) st2.Schema.hits;
  Alcotest.(check int) "no recompile" st1.Schema.misses st2.Schema.misses;
  Alcotest.(check bool) "same program" true (p1 == p2);
  Alcotest.(check bool) "entries stable" true
    (st2.Schema.entries = st1.Schema.entries)

(* --- syntax satellites --- *)

let arb_value =
  QCheck.make ~print:(Format.asprintf "%a" Value.pp)
    QCheck.Gen.(pair_gen >>= fun (_, v) -> return v)

let prop_encode_sized_matches_encode =
  QCheck.Test.make ~name:"Syntax.encode_sized == Syntax.encode" ~count:300
    arb_value (fun v ->
      List.for_all
        (fun name ->
          match Syntax.for_value name v with
          | None -> true
          | Some syn ->
              let full = Syntax.encode syn v in
              let sized =
                Syntax.encode_sized syn v ~size:(Syntax.sizeof syn v)
              in
              Bytebuf.equal full sized)
        [ "raw"; "ber"; "xdr"; "lwts" ])

let test_encode_sized_rejects_wrong_size () =
  let v = Value.Utf8 "twelve bytes" in
  let syn = Option.get (Syntax.for_value "xdr" v) in
  let size = Syntax.sizeof syn v in
  List.iter
    (fun bad ->
      match Syntax.encode_sized syn v ~size:bad with
      | _ -> Alcotest.fail (Printf.sprintf "size %d accepted" bad)
      | exception Syntax.Error _ -> ())
    [ size - 4; size + 4 ]

let prop_negotiate_single_derivation_consistent =
  (* The lazy shared-schema rewrite must not change outcomes. *)
  QCheck.Test.make ~name:"negotiate == first acceptable for_value" ~count:200
    arb_value (fun v ->
      let names = [ "raw"; "xdr"; "ber"; "lwts" ] in
      let expected =
        List.find_map
          (fun n ->
            if List.mem n names then Syntax.for_value n v else None)
          names
      in
      Syntax.negotiate ~sender:names ~receiver:names ~sample:v = expected)

(* --- end to end: lazy views over the transport --- *)

let test_receiver_views_end_to_end () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:43L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.0)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let schema = Xdr.S_struct [ Xdr.S_int; Xdr.S_string; Xdr.S_array Xdr.S_int ] in
  let prog = Schema.prog_of_xdr schema in
  let key = 0xFEED_F00DL in
  let send_plan = [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Xor_pad { key; pos = 0L } ]
  and recv_plan = [ Ilp.Xor_pad { key; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet ] in
  let value i =
    Value.List
      [
        Value.Int i;
        Value.Utf8 (Printf.sprintf "adu-%d" i);
        Value.List (List.init 8 (fun j -> Value.Int (i + j)));
      ]
  in
  let got = ref [] in
  let receiver =
    Alf_transport.receiver_views ~sched:(Netsim.Engine.sched engine) ~udp:ub
      ~port:7100 ~stream:3 ~plan:recv_plan ~prog
      ~deliver:(fun name view ->
        (* Lazy access during the callback; copy out only what we keep. *)
        got :=
          ( name.Adu.index,
            View.get_int (View.field view 0),
            View.get_string (View.field view 1),
            View.get_int (View.elem (View.field view 2) 3) )
          :: !got)
      ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2
      ~peer_port:7100 ~port:7101 ~stream:3 ~policy:Recovery.No_recovery
      ~tx_pool:(Pool.create ~buf_size:1491 ())
      ()
  in
  let count = 20 in
  for i = 0 to count - 1 do
    Alf_transport.send_value sender
      ~name:(Adu.name ~stream:3 ~index:i ())
      ~plan:send_plan
      (Ilp.Marshal_prog (prog, value i))
  done;
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check int) "all delivered" count (List.length !got);
  List.iter
    (fun (idx, f0, f1, a3) ->
      Alcotest.(check int) "field 0" idx f0;
      Alcotest.(check string) "field 1" (Printf.sprintf "adu-%d" idx) f1;
      Alcotest.(check int) "elem 3" (idx + 3) a3)
    !got

let () =
  Alcotest.run "schema"
    [
      ( "compiled emit",
        [
          qcheck prop_size_matches_sizeof;
          qcheck prop_compiled_encode_identical;
          qcheck prop_compiled_fused_parity;
          Alcotest.test_case "mismatches rejected" `Quick
            test_emit_rejects_mismatch;
        ] );
      ( "validate",
        [
          qcheck prop_validate_agrees_on_valid;
          qcheck prop_validate_agrees_on_truncations;
          qcheck prop_validate_agrees_on_bitflips;
          qcheck prop_validate_total_on_garbage;
        ] );
      ( "view",
        [
          qcheck prop_view_to_value_roundtrip;
          qcheck prop_view_accessors;
          Alcotest.test_case "trailing bytes" `Quick test_view_trailing_bytes;
          Alcotest.test_case "zero copy aliasing" `Quick test_view_zero_copy;
          Alcotest.test_case "static field offsets" `Quick
            test_view_static_field_offsets;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "compiled marshal zero-alloc" `Quick
            test_compiled_marshal_zero_alloc;
          Alcotest.test_case "lazy receive zero-alloc" `Quick
            test_view_receive_zero_alloc;
        ] );
      ( "cache",
        [ Alcotest.test_case "hit on repeat" `Quick test_prog_cache_hits ] );
      ( "syntax",
        [
          qcheck prop_encode_sized_matches_encode;
          Alcotest.test_case "encode_sized size check" `Quick
            test_encode_sized_rejects_wrong_size;
          qcheck prop_negotiate_single_derivation_consistent;
        ] );
      ( "transport",
        [
          Alcotest.test_case "receiver_views end to end" `Quick
            test_receiver_views_end_to_end;
        ] );
    ]
