(* The sharded many-session engine: demux routing against a single-table
   oracle, session placement, completion accounting, per-shard Obs
   counters, and the pre-allocated memory budget. *)

open Bufkit
open Netsim
open Alf_core
module Demux = Alf_serve.Demux
module Server = Alf_serve.Server
module Loadgen = Alf_serve.Loadgen

let qcheck t = QCheck_alcotest.to_alcotest t
let integrity = Some Checksum.Kind.Crc32

(* --- demux vs. the session key ---

   The engine routes every datagram from its first three bytes, before
   unsealing; a single-table receiver would route from the full session
   key after reassembly. The property: both give the same shard, for
   every datagram kind a session can emit — data fragments (all of them,
   not just the first) and each control message. *)
let demux_matches_oracle =
  QCheck.Test.make ~name:"sealed datagrams route like their session key"
    ~count:200
    QCheck.(
      quad (int_range 1 5000) (int_range 1 65535) (int_range 0 65535)
        (int_range 1 32))
    (fun (peer, peer_port, stream, shards) ->
      let oracle = Demux.shard_of ~shards ~peer ~peer_port ~stream in
      let payload = Bytebuf.of_string (String.make 100 'a') in
      let adu = Adu.make (Adu.name ~stream ~index:3 ()) payload in
      let datagrams =
        List.map (Ctl.seal integrity)
          (Framing.fragment ~mtu:60 adu
          @ [
              Ctl.build_close ~stream ~total:4;
              Ctl.build_done ~stream;
              Ctl.build_nack ~stream ~have_below:1 [ 2; 3 ];
              Ctl.build_gone ~stream [ 1 ];
            ])
      in
      List.length datagrams > 4
      && List.for_all
           (fun d ->
             match Demux.stream_of_datagram d with
             | None -> false
             | Some s ->
                 s = stream
                 && oracle >= 0 && oracle < shards
                 && Demux.shard_of ~shards ~peer ~peer_port ~stream:s = oracle)
           datagrams)

(* A datagram substrate that captures sends instead of carrying them:
   lets the load generator build real wire datagrams for a server driven
   entirely by hand. *)
let capture_io () =
  let sent = ref [] in
  ( {
      Dgram.send =
        (fun ~dst:_ ~dst_port:_ ~src_port buf ->
          sent := (src_port, Bytebuf.copy buf) :: !sent;
          true);
      bind = (fun ~port:_ _ -> ());
      max_payload = 65507;
    },
    sent )

(* --- session placement: every session lives exactly where the demux
   says, and the shard tables partition the session set --- *)
let test_ingest_placement () =
  let sessions = 150 and adus = 2 in
  let io, sent = capture_io () in
  let gen =
    Loadgen.create ~io
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = 48;
        streams_per_port = 40;
        server = 1;
        integrity;
      }
  in
  while Loadgen.step gen ~budget:1000 > 0 do
    ()
  done;
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry
      ~config:
        { Server.default_config with Server.shards = 5; harvest_interval = 0. }
      ()
  in
  let peer = 77 in
  List.iter
    (fun (src_port, buf) -> Server.ingest server ~src:peer ~src_port buf)
    (List.rev !sent);
  Server.pump server;
  let totals = Server.totals server in
  Alcotest.(check int) "all ADUs delivered" (sessions * adus)
    totals.Server.delivered;
  Alcotest.(check int) "every session completed (DONE queued)" sessions
    totals.Server.dones;
  Alcotest.(check int) "nothing corrupt" 0 totals.Server.corrupt;
  Alcotest.(check int) "nothing dropped" 0 totals.Server.rx_dropped;
  Alcotest.(check int) "no duplicates" 0 totals.Server.dups;
  (* Placement: the table that holds each session is the one the pure
     demux function names; the shard tables partition the session set. *)
  for k = 0 to sessions - 1 do
    let peer_port = Loadgen.session_port gen k
    and stream = Loadgen.session_stream gen k in
    let expected = Server.shard_of_key server ~peer ~peer_port ~stream in
    (match Server.locate server ~peer ~peer_port ~stream with
    | Some sid ->
        if sid <> expected then
          Alcotest.failf "session %d in shard %d, demux says %d" k sid expected
    | None -> Alcotest.failf "session %d not found in any shard" k);
    match Server.session_view server ~peer ~peer_port ~stream with
    | Some v ->
        if not v.Server.v_completed then
          Alcotest.failf "session %d not completed" k
    | None -> Alcotest.failf "session %d has no view" k
  done;
  let sum = ref 0 in
  for sid = 0 to Server.shard_count server - 1 do
    sum := !sum + Server.shard_sessions server sid
  done;
  Alcotest.(check int) "shards partition the sessions" sessions !sum;
  Server.stop server

let registry_counter registry name =
  match Obs.Registry.find ~registry name with
  | Some (Obs.Registry.Counter c) -> Obs.Counter.value c
  | _ -> Alcotest.failf "missing registry counter %s" name

(* --- multi-domain stress: a real parallel pump over netsim, with the
   per-shard registry counters summing to the engine totals and the
   pre-warmed pool budget never growing --- *)
let test_multidomain_stress () =
  let sessions = 2000 and adus = 2 and shards = 4 in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:Impair.none
      ~queue_limit:1_000_000 ~bandwidth_bps:1e9 ~delay:1e-4 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let registry = Obs.Registry.create () in
  let pool = Par.Pool.create ~domains:2 () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~io:(Dgram.of_udp ub) ~pool
      ~registry
      ~config:
        {
          Server.default_config with
          Server.shards;
          harvest_interval = 0.02;
          rx_bufs_per_shard = 512;
          ctl_bufs_per_shard = 512;
        }
      ()
  in
  let gen =
    Loadgen.create ~io:(Dgram.of_udp ua)
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = 64;
        server = 2;
        integrity;
      }
  in
  let budget_allocated = Server.pool_allocated server in
  let rounds = ref 0 in
  while (not (Loadgen.finished gen)) && !rounds < 500 do
    incr rounds;
    let sent = Loadgen.step gen ~budget:1024 in
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:1_000_000 engine;
    Server.pump server;
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:1_000_000 engine;
    if sent = 0 && not (Loadgen.finished gen) then begin
      Server.harvest server;
      Engine.run ~until:(Engine.now engine +. 0.05) ~max_events:1_000_000
        engine;
      Server.pump server;
      Loadgen.nudge gen
    end
  done;
  Alcotest.(check bool) "all sessions acknowledged" true
    (Loadgen.finished gen);
  let totals = Server.totals server in
  Alcotest.(check int) "delivered union gone = sent" (sessions * adus)
    (totals.Server.delivered + totals.Server.gone + totals.Server.gone_local);
  Alcotest.(check int) "no fallback allocations" 0
    totals.Server.fallback_allocs;
  Alcotest.(check int) "pool budget never grows past the pre-warm"
    budget_allocated
    (Server.pool_allocated server);
  Alcotest.(check bool) "ahead tables stay flat" true
    (Server.max_ahead_load server <= 64);
  (* The Obs wiring: per-shard registry counters, summed, reproduce the
     programmatic totals — and each shard's exported counter matches its
     own snapshot. *)
  let sum name field =
    let acc = ref 0 in
    for sid = 0 to shards - 1 do
      let exported =
        registry_counter registry (Printf.sprintf "serve.shard%d.%s" sid name)
      in
      let snap = Server.shard_snapshot server sid in
      Alcotest.(check int)
        (Printf.sprintf "shard %d %s export" sid name)
        (field snap) exported;
      acc := !acc + exported
    done;
    !acc
  in
  Alcotest.(check int) "delivered sums across shards" totals.Server.delivered
    (sum "delivered" (fun s -> s.Server.delivered));
  Alcotest.(check int) "datagrams sum across shards" totals.Server.datagrams
    (sum "datagrams" (fun s -> s.Server.datagrams));
  Alcotest.(check int) "admissions sum across shards" totals.Server.admitted
    (sum "admitted" (fun s -> s.Server.admitted));
  Alcotest.(check int) "dones sum across shards" totals.Server.dones
    (sum "dones" (fun s -> s.Server.dones));
  Server.stop server;
  Par.Pool.shutdown pool

(* --- capacity eviction: at the admission cap the shard evicts rather
   than grow, and the engine keeps serving --- *)
let test_admission_eviction () =
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry
      ~config:
        {
          Server.default_config with
          Server.shards = 1;
          max_sessions_per_shard = 10;
          harvest_interval = 0.;
        }
      ()
  in
  let io, sent = capture_io () in
  let gen =
    Loadgen.create ~io
      {
        Loadgen.default_config with
        Loadgen.sessions = 25;
        adus_per_session = 1;
        payload_len = 16;
        streams_per_port = 25;
        server = 1;
        integrity;
      }
  in
  while Loadgen.step gen ~budget:100 > 0 do
    ()
  done;
  List.iter
    (fun (src_port, buf) -> Server.ingest server ~src:9 ~src_port buf)
    (List.rev !sent);
  Server.pump server;
  Alcotest.(check int) "table capped" 10 (Server.shard_sessions server 0);
  let totals = Server.totals server in
  (* Evicted sessions may be re-admitted by their later datagrams, so
     admissions can exceed the session count — the table just never
     grows past the cap, and every admission is still resident or was
     evicted (conservation). *)
  Alcotest.(check bool) "every session admitted at least once" true
    (totals.Server.admitted >= 25);
  Alcotest.(check int) "admissions = live + evicted"
    totals.Server.admitted
    (Server.live_sessions server + totals.Server.evicted
   + totals.Server.harvested);
  Server.stop server

let () =
  Alcotest.run "serve"
    [
      ("demux", [ qcheck demux_matches_oracle ]);
      ( "placement",
        [
          Alcotest.test_case "sessions live where the demux says" `Quick
            test_ingest_placement;
        ] );
      ( "stress",
        [
          Alcotest.test_case "multi-domain pump, counters and budget" `Quick
            test_multidomain_stress;
        ] );
      ( "admission",
        [
          Alcotest.test_case "capacity eviction" `Quick test_admission_eviction;
        ] );
    ]
