(* The sharded many-session engine: demux routing against a single-table
   oracle, session placement, completion accounting, per-shard Obs
   counters, and the pre-allocated memory budget. *)

open Bufkit
open Netsim
open Alf_core
module Demux = Alf_serve.Demux
module Server = Alf_serve.Server
module Loadgen = Alf_serve.Loadgen
module Ingress = Alf_serve.Ingress
module Police = Alf_serve.Police
module Hostile = Alf_chaos.Hostile

let qcheck t = QCheck_alcotest.to_alcotest t
let integrity = Some Checksum.Kind.Crc32

(* --- demux vs. the session key ---

   The engine routes every datagram from its first three bytes, before
   unsealing; a single-table receiver would route from the full session
   key after reassembly. The property: both give the same shard, for
   every datagram kind a session can emit — data fragments (all of them,
   not just the first) and each control message. *)
let demux_matches_oracle =
  QCheck.Test.make ~name:"sealed datagrams route like their session key"
    ~count:200
    QCheck.(
      quad (int_range 1 5000) (int_range 1 65535) (int_range 0 65535)
        (int_range 1 32))
    (fun (peer, peer_port, stream, shards) ->
      let oracle = Demux.shard_of ~shards ~peer ~peer_port ~stream in
      let payload = Bytebuf.of_string (String.make 100 'a') in
      let adu = Adu.make (Adu.name ~stream ~index:3 ()) payload in
      let datagrams =
        List.map (Ctl.seal integrity)
          (Framing.fragment ~mtu:60 adu
          @ [
              Ctl.build_close ~stream ~total:4;
              Ctl.build_done ~stream;
              Ctl.build_nack ~stream ~have_below:1 [ 2; 3 ];
              Ctl.build_gone ~stream [ 1 ];
            ])
      in
      List.length datagrams > 4
      && List.for_all
           (fun d ->
             match Demux.stream_of_datagram d with
             | None -> false
             | Some s ->
                 s = stream
                 && oracle >= 0 && oracle < shards
                 && Demux.shard_of ~shards ~peer ~peer_port ~stream:s = oracle)
           datagrams)

(* A datagram substrate that captures sends instead of carrying them:
   lets the load generator build real wire datagrams for a server driven
   entirely by hand. *)
let capture_io () =
  let sent = ref [] in
  ( {
      Dgram.send =
        (fun ~dst:_ ~dst_port:_ ~src_port buf ->
          sent := (src_port, Bytebuf.copy buf) :: !sent;
          true);
      bind = (fun ~port:_ _ -> ());
      max_payload = 65507;
    },
    sent )

(* --- session placement: every session lives exactly where the demux
   says, and the shard tables partition the session set --- *)
let test_ingest_placement () =
  let sessions = 150 and adus = 2 in
  let io, sent = capture_io () in
  let gen =
    Loadgen.create ~io
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = 48;
        streams_per_port = 40;
        server = 1;
        integrity;
      }
  in
  while Loadgen.step gen ~budget:1000 > 0 do
    ()
  done;
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry
      ~config:
        { Server.default_config with Server.shards = 5; harvest_interval = 0. }
      ()
  in
  let peer = 77 in
  List.iter
    (fun (src_port, buf) -> Server.ingest server ~src:peer ~src_port buf)
    (List.rev !sent);
  Server.pump server;
  let totals = Server.totals server in
  Alcotest.(check int) "all ADUs delivered" (sessions * adus)
    totals.Server.delivered;
  Alcotest.(check int) "every session completed (DONE queued)" sessions
    totals.Server.dones;
  Alcotest.(check int) "nothing dropped" 0 totals.Server.dropped;
  Alcotest.(check int) "arrivals conserve" totals.Server.arrivals
    (totals.Server.accepted + totals.Server.dropped);
  Alcotest.(check int) "no duplicates" 0 totals.Server.dups;
  (* Placement: the table that holds each session is the one the pure
     demux function names; the shard tables partition the session set. *)
  for k = 0 to sessions - 1 do
    let peer_port = Loadgen.session_port gen k
    and stream = Loadgen.session_stream gen k in
    let expected = Server.shard_of_key server ~peer ~peer_port ~stream in
    (match Server.locate server ~peer ~peer_port ~stream with
    | Some sid ->
        if sid <> expected then
          Alcotest.failf "session %d in shard %d, demux says %d" k sid expected
    | None -> Alcotest.failf "session %d not found in any shard" k);
    match Server.session_view server ~peer ~peer_port ~stream with
    | Some v ->
        if not v.Server.v_completed then
          Alcotest.failf "session %d not completed" k
    | None -> Alcotest.failf "session %d has no view" k
  done;
  let sum = ref 0 in
  for sid = 0 to Server.shard_count server - 1 do
    sum := !sum + Server.shard_sessions server sid
  done;
  Alcotest.(check int) "shards partition the sessions" sessions !sum;
  Server.stop server

let registry_counter registry name =
  match Obs.Registry.find ~registry name with
  | Some (Obs.Registry.Counter c) -> Obs.Counter.value c
  | _ -> Alcotest.failf "missing registry counter %s" name

(* --- multi-domain stress: a real parallel pump over netsim, with the
   per-shard registry counters summing to the engine totals and the
   pre-warmed pool budget never growing --- *)
let test_multidomain_stress () =
  let sessions = 2000 and adus = 2 and shards = 4 in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:Impair.none
      ~queue_limit:1_000_000 ~bandwidth_bps:1e9 ~delay:1e-4 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let registry = Obs.Registry.create () in
  let pool = Par.Pool.create ~domains:2 () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~io:(Dgram.of_udp ub) ~pool
      ~registry
      ~config:
        {
          Server.default_config with
          Server.shards;
          harvest_interval = 0.02;
          rx_bufs_per_shard = 512;
          ctl_bufs_per_shard = 512;
        }
      ()
  in
  let gen =
    Loadgen.create ~io:(Dgram.of_udp ua)
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = 64;
        server = 2;
        integrity;
      }
  in
  let budget_allocated = Server.pool_allocated server in
  let rounds = ref 0 in
  while (not (Loadgen.finished gen)) && !rounds < 500 do
    incr rounds;
    let sent = Loadgen.step gen ~budget:1024 in
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:1_000_000 engine;
    Server.pump server;
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:1_000_000 engine;
    if sent = 0 && not (Loadgen.finished gen) then begin
      Server.harvest server;
      Engine.run ~until:(Engine.now engine +. 0.05) ~max_events:1_000_000
        engine;
      Server.pump server;
      Loadgen.nudge gen
    end
  done;
  Alcotest.(check bool) "all sessions acknowledged" true
    (Loadgen.finished gen);
  let totals = Server.totals server in
  Alcotest.(check int) "delivered union gone = sent" (sessions * adus)
    (totals.Server.delivered + totals.Server.gone + totals.Server.gone_local);
  Alcotest.(check int) "no fallback allocations" 0
    totals.Server.fallback_allocs;
  Alcotest.(check int) "pool budget never grows past the pre-warm"
    budget_allocated
    (Server.pool_allocated server);
  Alcotest.(check bool) "ahead tables stay flat" true
    (Server.max_ahead_load server <= 64);
  (* The Obs wiring: per-shard registry counters, summed, reproduce the
     programmatic totals — and each shard's exported counter matches its
     own snapshot. *)
  let sum name field =
    let acc = ref 0 in
    for sid = 0 to shards - 1 do
      let exported =
        registry_counter registry (Printf.sprintf "serve.shard%d.%s" sid name)
      in
      let snap = Server.shard_snapshot server sid in
      Alcotest.(check int)
        (Printf.sprintf "shard %d %s export" sid name)
        (field snap) exported;
      acc := !acc + exported
    done;
    !acc
  in
  Alcotest.(check int) "delivered sums across shards" totals.Server.delivered
    (sum "delivered" (fun s -> s.Server.delivered));
  Alcotest.(check int) "datagrams sum across shards" totals.Server.datagrams
    (sum "datagrams" (fun s -> s.Server.datagrams));
  Alcotest.(check int) "admissions sum across shards" totals.Server.admitted
    (sum "admitted" (fun s -> s.Server.admitted));
  Alcotest.(check int) "dones sum across shards" totals.Server.dones
    (sum "dones" (fun s -> s.Server.dones));
  Server.stop server;
  Par.Pool.shutdown pool

(* --- capacity eviction: at the admission cap the shard evicts rather
   than grow, and the engine keeps serving --- *)
let test_admission_eviction () =
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry
      ~config:
        {
          Server.default_config with
          Server.shards = 1;
          max_sessions_per_shard = 10;
          harvest_interval = 0.;
        }
      ()
  in
  let io, sent = capture_io () in
  let gen =
    Loadgen.create ~io
      {
        Loadgen.default_config with
        Loadgen.sessions = 25;
        adus_per_session = 1;
        payload_len = 16;
        streams_per_port = 25;
        server = 1;
        integrity;
      }
  in
  while Loadgen.step gen ~budget:100 > 0 do
    ()
  done;
  List.iter
    (fun (src_port, buf) -> Server.ingest server ~src:9 ~src_port buf)
    (List.rev !sent);
  Server.pump server;
  Alcotest.(check int) "table capped" 10 (Server.shard_sessions server 0);
  let totals = Server.totals server in
  (* Evicted sessions may be re-admitted by their later datagrams, so
     admissions can exceed the session count — the table just never
     grows past the cap, and every admission is still resident or was
     evicted (conservation). *)
  Alcotest.(check bool) "every session admitted at least once" true
    (totals.Server.admitted >= 25);
  Alcotest.(check int) "admissions = live + evicted"
    totals.Server.admitted
    (Server.live_sessions server + totals.Server.evicted
   + totals.Server.harvested);
  Server.stop server

(* --- stage-0 ingress: the total pre-demux classifier --- *)

let test_ingress_verdicts () =
  let limits =
    {
      Ingress.trailer = Ctl.trailer_size;
      max_len = 512;
      max_total_len = 4096 + Adu.header_size;
    }
  in
  let seal = Ctl.seal integrity in
  let verdict buf = Ingress.validate limits buf in
  let reject name expect buf =
    match verdict buf with
    | Ingress.Reject r when r = expect -> ()
    | Ingress.Reject r ->
        Alcotest.failf "%s: dropped as %s, expected %s" name
          (Ingress.reason_name r) (Ingress.reason_name expect)
    | Ingress.Accept _ -> Alcotest.failf "%s: accepted" name
  in
  let accept name stream buf =
    match verdict buf with
    | Ingress.Accept s -> Alcotest.(check int) name stream s
    | Ingress.Reject r ->
        Alcotest.failf "%s: rejected as %s" name (Ingress.reason_name r)
  in
  let payload = Bytebuf.of_string (String.make 60 'p') in
  let adu = Adu.make (Adu.name ~stream:9 ~index:1 ()) payload in
  let frag = seal (List.hd (Framing.fragment ~mtu:1200 adu)) in
  accept "valid fragment" 9 frag;
  accept "valid close" 9 (seal (Ctl.build_close ~stream:9 ~total:2));
  accept "valid done" 9 (seal (Ctl.build_done ~stream:9));
  accept "valid nack" 9 (seal (Ctl.build_nack ~stream:9 ~have_below:0 [ 1 ]));
  accept "valid gone" 9 (seal (Ctl.build_gone ~stream:9 [ 1 ]));
  reject "empty" Ingress.Runt (Bytebuf.of_string "");
  reject "trailer-only" Ingress.Runt (Bytebuf.of_string "\xAD\x00\x00\x00\x00");
  reject "oversize" Ingress.Oversize (Bytebuf.create 513);
  reject "unknown kind" Ingress.Bad_kind (Bytebuf.of_string "\x99aaaaaaa");
  (let b = Bytebuf.copy frag in
   Bytebuf.set_uint8 b 9 0;
   Bytebuf.set_uint8 b 10 0;
   (* nfrags = 0 *)
   reject "zero nfrags" Ingress.Frag_header b);
  (let b = Bytebuf.copy frag in
   Bytebuf.set_uint8 b 7 0xFF;
   Bytebuf.set_uint8 b 8 0xFF;
   (* frag_idx >= nfrags *)
   reject "frag index past count" Ingress.Frag_header b);
  (let b = Bytebuf.copy frag in
   Bytebuf.set_uint8 b 11 0xFF;
   (* total_len > max_total_len: attacker-controlled allocation *)
   reject "huge total_len" Ingress.Frag_header b);
  reject "truncated fragment" Ingress.Frag_header (Bytebuf.take frag 30);
  (let b = seal (Ctl.build_nack ~stream:9 ~have_below:0 [ 1; 2; 3 ]) in
   reject "nack count disagrees" Ingress.Ctl_malformed
     (Bytebuf.take b (Bytebuf.length b - 8)));
  (let b = Bytebuf.create 40 in
   Bytebuf.set_uint8 b 0 0xFE;
   reject "fec" Ingress.Fec_unsupported b);
  (* Total over arbitrary bytes: every one-byte prefix-to-length slice of
     a valid datagram classifies without raising. *)
  for l = 1 to Bytebuf.length frag - 1 do
    ignore (verdict (Bytebuf.take frag l))
  done

let test_police () =
  let p = Police.create ~buckets:8 ~rate:10. ~burst:3. () in
  let k = 0x1234L and k2 = 0x1235L in
  Alcotest.(check bool) "burst passes" true
    (Police.allow p ~key:k ~now:0.
    && Police.allow p ~key:k ~now:0.
    && Police.allow p ~key:k ~now:0.);
  Alcotest.(check bool) "burst exhausted" false (Police.allow p ~key:k ~now:0.);
  Alcotest.(check bool) "other bucket untouched" true
    (Police.allow p ~key:k2 ~now:0.);
  Alcotest.(check bool) "refill after elapsed time" true
    (Police.allow p ~key:k ~now:0.1);
  Alcotest.(check bool) "refill is rate-limited" false
    (Police.allow p ~key:k ~now:0.1);
  Alcotest.(check bool) "backwards clock is safe" false
    (Police.allow p ~key:k ~now:0.05);
  Alcotest.(check bool) "negative keys map into the table" true
    (Police.allow p ~key:(-7L) ~now:0.)

(* --- hostile churn must not leak reassembly buffers: evicting a session
   with a live partial releases its pooled buffer --- *)
let test_eviction_releases_partials () =
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let cap = 8 in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry
      ~config:
        {
          Server.default_config with
          Server.shards = 1;
          max_sessions_per_shard = cap;
          reasm_bufs_per_shard = 2 * cap;
          harvest_interval = 0.;
        }
      ()
  in
  let seal = Ctl.seal integrity in
  let payload = Bytebuf.of_string (String.make 64 'x') in
  (* First fragment only of a 2-fragment ADU: the session parks a pooled
     partial that only eviction (or completion) can release. *)
  let first_frag_of stream =
    let adu = Adu.make (Adu.name ~stream ~index:0 ()) payload in
    match Framing.fragment ~mtu:77 adu with
    | f0 :: _ :: _ -> seal f0
    | _ -> Alcotest.fail "expected a 2-fragment ADU"
  in
  let warm = Server.pool_allocated server in
  for round = 1 to 5 do
    for s = 1 to cap do
      Server.ingest server ~src:3 ~src_port:2000
        (first_frag_of ((100 * round) + s));
      Server.pump server
    done
  done;
  Alcotest.(check int) "table capped" cap (Server.shard_sessions server 0);
  (* 40 sessions churned through holding partials; without the release-
     on-drop fix the evicted 32 would pin their buffers forever. *)
  Alcotest.(check bool)
    (Printf.sprintf "outstanding bounded by live partials (%d)"
       (Server.pool_outstanding server))
    true
    (Server.pool_outstanding server <= cap);
  Alcotest.(check int) "pool budget never grows past the pre-warm" warm
    (Server.pool_allocated server);
  (* The pool still serves: a fresh multi-fragment session completes. *)
  let stream = 7777 in
  let adu = Adu.make (Adu.name ~stream ~index:0 ()) payload in
  List.iter
    (fun f -> Server.ingest server ~src:3 ~src_port:2000 (seal f))
    (Framing.fragment ~mtu:77 adu);
  Server.ingest server ~src:3 ~src_port:2000
    (seal (Ctl.build_close ~stream ~total:1));
  Server.pump server;
  (match Server.session_view server ~peer:3 ~peer_port:2000 ~stream with
  | Some v -> Alcotest.(check bool) "fresh session completed" true v.Server.v_completed
  | None -> Alcotest.fail "fresh session missing");
  let totals = Server.totals server in
  Alcotest.(check int) "no fallback allocations" 0 totals.Server.fallback_allocs;
  Alcotest.(check int) "arrivals conserve" totals.Server.arrivals
    (totals.Server.accepted + totals.Server.dropped);
  Server.stop server

(* --- the load-state ladder: occupancy proposes, hysteresis confirms,
   one level at a time, and brownout refuses new admissions --- *)
let test_load_state_ladder () =
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let bufs = 16 in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry
      ~config:
        {
          Server.default_config with
          Server.shards = 1;
          rx_bufs_per_shard = bufs;
          ctl_bufs_per_shard = bufs;
          harvest_interval = 0.;
          load_ticks = 2;
        }
      ()
  in
  let seal = Ctl.seal integrity in
  let payload = Bytebuf.of_string (String.make 16 'y') in
  let frag_for stream =
    let adu = Adu.make (Adu.name ~stream ~index:0 ()) payload in
    seal (List.hd (Framing.fragment ~mtu:1200 adu))
  in
  let d = frag_for 5 in
  let flood () =
    (* Fill the staging pool completely: occupancy 1.0 >= brown_hi. *)
    for _ = 1 to bufs do
      Server.ingest server ~src:4 ~src_port:2100 d
    done;
    Server.harvest server;
    Server.pump server
  in
  let states = [ Server.Normal; Server.Shedding; Server.Brownout ] in
  ignore states;
  Alcotest.(check int) "starts Normal" 0
    (Server.load_state_index (Server.load_state server));
  flood ();
  Alcotest.(check int) "one pressured harvest: still Normal (hysteresis)" 0
    (Server.load_state_index (Server.load_state server));
  flood ();
  Alcotest.(check int) "confirmed: one level up, Shedding" 1
    (Server.load_state_index (Server.load_state server));
  flood ();
  flood ();
  Alcotest.(check int) "confirmed again: Brownout" 2
    (Server.load_state_index (Server.load_state server));
  (* Brownout refuses new admissions, reason-coded. *)
  let shed_before =
    (Server.totals server).Server.drops.(Ingress.reason_index Ingress.Shed)
  in
  Server.ingest server ~src:4 ~src_port:2101 (frag_for 99);
  Server.pump server;
  let shed_after =
    (Server.totals server).Server.drops.(Ingress.reason_index Ingress.Shed)
  in
  Alcotest.(check int) "brownout sheds the new admission" (shed_before + 1)
    shed_after;
  Alcotest.(check bool) "new session refused" true
    (Server.locate server ~peer:4 ~peer_port:2101 ~stream:99 = None);
  (* Quiet harvests walk it back down, one level per confirmation. *)
  let quiet () =
    Server.harvest server;
    Server.pump server
  in
  quiet ();
  Alcotest.(check int) "still Brownout (hysteresis)" 2
    (Server.load_state_index (Server.load_state server));
  quiet ();
  Alcotest.(check int) "back to Shedding" 1
    (Server.load_state_index (Server.load_state server));
  quiet ();
  quiet ();
  Alcotest.(check int) "back to Normal" 0
    (Server.load_state_index (Server.load_state server));
  Server.stop server

(* --- the byzantine client against a netsim server: honest sessions
   complete exactly, every drop is reason-coded, pool budget flat --- *)
let test_hostile_mix () =
  let sessions = 400 and adus = 2 in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:11L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:Impair.none
      ~queue_limit:1_000_000 ~bandwidth_bps:1e9 ~delay:1e-4 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let registry = Obs.Registry.create () in
  let honest = ref 0 and honest_dg = ref 0 in
  let mu = Mutex.create () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~io:(Dgram.of_udp ub) ~registry
      ~on_complete:(fun k ~delivered ~gone ->
        if k.Server.peer_port < 40_000 then begin
          Mutex.lock mu;
          incr honest;
          honest_dg := !honest_dg + delivered + gone;
          Mutex.unlock mu
        end)
      ~config:
        { Server.default_config with Server.shards = 4; harvest_interval = 0.02 }
      ()
  in
  let warm = Server.pool_allocated server in
  let gen =
    Loadgen.create ~io:(Dgram.of_udp ua)
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = 64;
        server = 2;
        integrity;
      }
  in
  let hostile =
    Hostile.create ~io:(Dgram.of_udp ua)
      { Hostile.default_config with Hostile.server = 2; payload_len = 64 }
  in
  let rounds = ref 0 in
  while (not (Loadgen.finished gen)) && !rounds < 400 do
    incr rounds;
    let sent = Loadgen.step gen ~budget:256 in
    ignore (Hostile.step hostile ~budget:110);
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:1_000_000 engine;
    Server.pump server;
    Engine.run ~until:(Engine.now engine +. 0.005) ~max_events:1_000_000 engine;
    if sent = 0 && not (Loadgen.finished gen) then begin
      Server.harvest server;
      Engine.run ~until:(Engine.now engine +. 0.05) ~max_events:1_000_000 engine;
      Server.pump server;
      Loadgen.nudge gen
    end
  done;
  Engine.run ~until:(Engine.now engine +. 0.01) ~max_events:1_000_000 engine;
  Server.pump server;
  Alcotest.(check bool) "honest generator finished" true (Loadgen.finished gen);
  Alcotest.(check int) "every honest session completed exactly once" sessions
    !honest;
  Alcotest.(check int) "honest delivered+gone = sent" (sessions * adus)
    !honest_dg;
  let totals = Server.totals server in
  let hs = Hostile.stats hostile in
  Alcotest.(check bool) "at least 30% byzantine" true
    (float_of_int hs.Hostile.sent
    >= 0.3 *. float_of_int (hs.Hostile.sent + (Loadgen.stats gen).Loadgen.sent_datagrams));
  Alcotest.(check int) "arrivals conserve under attack" totals.Server.arrivals
    (totals.Server.accepted + totals.Server.dropped);
  let malformed_drops = Server.malformed_drops totals in
  let backpressure =
    totals.Server.drops.(Ingress.reason_index Ingress.Backpressure)
  in
  Alcotest.(check bool)
    (Printf.sprintf "injected malformed (%d) within [%d, %d]"
       hs.Hostile.malformed malformed_drops (malformed_drops + backpressure))
    true
    (malformed_drops <= hs.Hostile.malformed
    && hs.Hostile.malformed <= malformed_drops + backpressure);
  Alcotest.(check int) "zero dispatch errors" 0
    totals.Server.drops.(Ingress.reason_index Ingress.Dispatch_error);
  Alcotest.(check int) "pool budget never grows past the pre-warm" warm
    (Server.pool_allocated server);
  (* Per-shard drop counters sum to the engine totals, per reason. *)
  Array.iteri
    (fun i r ->
      let acc = ref 0 in
      for sid = 0 to Server.shard_count server - 1 do
        acc :=
          !acc
          + registry_counter registry
              (Printf.sprintf "serve.shard%d.drop.%s" sid
                 (Ingress.reason_name r))
      done;
      Alcotest.(check int)
        (Printf.sprintf "drop.%s sums across shards" (Ingress.reason_name r))
        totals.Server.drops.(i) !acc)
    Ingress.all_reasons;
  Server.stop server

(* --- lazy stage 2: views over the shard scratch ---

   Drive the same hand-built load through an engine whose stage 2 is the
   schema-validate pass. With [S_int] every Loadgen payload validates
   (any >= 4 bytes parse as an int with trailing bytes), so the engine
   surfaces exactly one view per delivered ADU and [on_view] can read
   the leading word lazily. With [S_bool] no Loadgen pattern payload can
   validate (consecutive payload bytes differ by 7, so the first word is
   never 0 or 1): all deliveries land in [view_invalid] — and the
   sessions still complete, because a hostile-to-the-schema payload must
   not wedge the stream. *)
let run_lazy_stage2 ~schema ~on_view =
  let sessions = 40 and adus = 3 in
  let io, sent = capture_io () in
  let gen =
    Loadgen.create ~io
      {
        Loadgen.default_config with
        Loadgen.sessions;
        adus_per_session = adus;
        payload_len = 48;
        streams_per_port = 16;
        server = 1;
        integrity;
      }
  in
  while Loadgen.step gen ~budget:1000 > 0 do
    ()
  done;
  let engine = Engine.create () in
  let registry = Obs.Registry.create () in
  let server =
    Server.create ~sched:(Engine.sched engine) ~registry ~on_view
      ~config:
        {
          Server.default_config with
          Server.shards = 3;
          harvest_interval = 0.;
          stage2_schema = Some schema;
        }
      ()
  in
  List.iter
    (fun (src_port, buf) -> Server.ingest server ~src:9 ~src_port buf)
    (List.rev !sent);
  Server.pump server;
  let totals = Server.totals server in
  Alcotest.(check int) "all ADUs delivered" (sessions * adus)
    totals.Server.delivered;
  Alcotest.(check int) "every session completed" sessions totals.Server.dones;
  Alcotest.(check int) "no fallback allocations" 0
    totals.Server.fallback_allocs;
  Server.stop server;
  totals

let test_lazy_stage2_views () =
  let seen = ref 0 in
  let totals =
    run_lazy_stage2 ~schema:Wire.Xdr.S_int
      ~on_view:(fun _key view ->
        (* Lazy read over the borrowed scratch: just touch the word. *)
        ignore (Wire.View.get_int view);
        incr seen)
  in
  Alcotest.(check int) "one view per delivered ADU" totals.Server.delivered
    totals.Server.views;
  Alcotest.(check int) "hook fired per view" totals.Server.views !seen;
  Alcotest.(check int) "none invalid" 0 totals.Server.view_invalid

let test_lazy_stage2_invalid_total () =
  let totals =
    run_lazy_stage2 ~schema:Wire.Xdr.S_bool
      ~on_view:(fun _ _ -> Alcotest.fail "no payload should validate as bool")
  in
  Alcotest.(check int) "every delivery invalid" totals.Server.delivered
    totals.Server.view_invalid;
  Alcotest.(check int) "no views" 0 totals.Server.views

let () =
  Alcotest.run "serve"
    [
      ("demux", [ qcheck demux_matches_oracle ]);
      ( "placement",
        [
          Alcotest.test_case "sessions live where the demux says" `Quick
            test_ingest_placement;
        ] );
      ( "stress",
        [
          Alcotest.test_case "multi-domain pump, counters and budget" `Quick
            test_multidomain_stress;
        ] );
      ( "admission",
        [
          Alcotest.test_case "capacity eviction" `Quick test_admission_eviction;
        ] );
      ( "ingress",
        [
          Alcotest.test_case "stage-0 verdicts" `Quick test_ingress_verdicts;
          Alcotest.test_case "token-bucket policing" `Quick test_police;
        ] );
      ( "overload",
        [
          Alcotest.test_case "eviction releases partials" `Quick
            test_eviction_releases_partials;
          Alcotest.test_case "load-state ladder hysteresis" `Quick
            test_load_state_ladder;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "byzantine mix over netsim" `Quick
            test_hostile_mix;
        ] );
      ( "lazy stage 2",
        [
          Alcotest.test_case "views per delivered ADU" `Quick
            test_lazy_stage2_views;
          Alcotest.test_case "invalid payloads are total" `Quick
            test_lazy_stage2_invalid_total;
        ] );
    ]
