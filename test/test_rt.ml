(* The real-I/O runtime: timer wheel ordering, the poll loop, the UDP
   link, and the backend-parametric transport suite — the same delivery
   and accounting assertions over the simulator and over real loopback
   sockets, through the one [Rt.Sched] seam. *)

open Bufkit
open Netsim
open Alf_core

(* --- Timerwheel --- *)

let test_wheel_fifo_same_deadline () =
  let w = Rt.Timerwheel.create ~now:0.0 () in
  let order = ref [] in
  let tag i () = order := i :: !order in
  ignore (Rt.Timerwheel.schedule w ~at:1.0 (tag 1));
  ignore (Rt.Timerwheel.schedule w ~at:1.0 (tag 2));
  ignore (Rt.Timerwheel.schedule w ~at:1.0 (tag 3));
  Alcotest.(check int) "pending" 3 (Rt.Timerwheel.pending w);
  let fired = Rt.Timerwheel.advance w ~now:1.0 in
  Alcotest.(check int) "fired" 3 fired;
  Alcotest.(check (list int)) "schedule order" [ 1; 2; 3 ] (List.rev !order)

let test_wheel_clamp_never_overtakes () =
  (* A deadline in the past is clamped to the wheel's now — it must fire
     after callbacks already due at that instant, never before. *)
  let w = Rt.Timerwheel.create ~now:10.0 () in
  let order = ref [] in
  let tag i () = order := i :: !order in
  ignore (Rt.Timerwheel.schedule w ~at:10.0 (tag 1));
  ignore (Rt.Timerwheel.schedule w ~at:4.0 (tag 2));
  (* past: clamps to 10 *)
  ignore (Rt.Timerwheel.schedule w ~at:10.0 (tag 3));
  ignore (Rt.Timerwheel.advance w ~now:10.0);
  Alcotest.(check (list int)) "clamped keeps FIFO" [ 1; 2; 3 ] (List.rev !order)

let test_wheel_cancel () =
  let w = Rt.Timerwheel.create ~now:0.0 () in
  let fired = ref [] in
  let tag i () = fired := i :: !fired in
  let _t1 = Rt.Timerwheel.schedule w ~at:0.5 (tag 1) in
  let t2 = Rt.Timerwheel.schedule w ~at:0.5 (tag 2) in
  let _t3 = Rt.Timerwheel.schedule w ~at:0.5 (tag 3) in
  Rt.Sched.cancel t2;
  Rt.Sched.cancel t2 (* idempotent *);
  Alcotest.(check int) "pending after cancel" 2 (Rt.Timerwheel.pending w);
  let n = Rt.Timerwheel.advance w ~now:1.0 in
  Alcotest.(check int) "fired" 2 n;
  Alcotest.(check (list int)) "survivors" [ 1; 3 ] (List.rev !fired);
  Alcotest.(check int) "drained" 0 (Rt.Timerwheel.pending w)

let test_wheel_rotation () =
  (* Two deadlines hashing to the same slot, whole revolutions apart:
     the sweep must fire only what is actually due. *)
  let w = Rt.Timerwheel.create ~slots:8 ~granularity:0.001 ~now:0.0 () in
  let fired = ref [] in
  let tag i () = fired := i :: !fired in
  let revolution = 8.0 *. 0.001 in
  ignore (Rt.Timerwheel.schedule w ~at:0.003 (tag 1));
  ignore (Rt.Timerwheel.schedule w ~at:(0.003 +. (2.0 *. revolution)) (tag 2));
  ignore (Rt.Timerwheel.advance w ~now:0.004);
  Alcotest.(check (list int)) "only the due one" [ 1 ] (List.rev !fired);
  Alcotest.(check int) "far one still pending" 1 (Rt.Timerwheel.pending w);
  (match Rt.Timerwheel.next_deadline w with
  | Some d -> Alcotest.(check bool) "deadline beyond now" true (d > 0.004)
  | None -> Alcotest.fail "expected a pending deadline");
  ignore (Rt.Timerwheel.advance w ~now:(0.003 +. (3.0 *. revolution)));
  Alcotest.(check (list int)) "eventually fires" [ 1; 2 ] (List.rev !fired);
  Alcotest.(check int) "empty" 0 (Rt.Timerwheel.pending w)

let test_wheel_reschedule_in_callback () =
  (* A callback scheduled during an advance, due within it, fires in the
     same advance — after everything already due. *)
  let w = Rt.Timerwheel.create ~now:0.0 () in
  let order = ref [] in
  ignore
    (Rt.Timerwheel.schedule w ~at:1.0 (fun () ->
         order := 1 :: !order;
         ignore
           (Rt.Timerwheel.schedule w ~at:0.2 (fun () -> order := 3 :: !order))));
  ignore (Rt.Timerwheel.schedule w ~at:1.0 (fun () -> order := 2 :: !order));
  let n = Rt.Timerwheel.advance w ~now:1.0 in
  Alcotest.(check int) "all three in one advance" 3 n;
  Alcotest.(check (list int)) "late-scheduled goes last" [ 1; 2; 3 ]
    (List.rev !order)

(* --- The Sched ordering contract, on both backends --- *)

(* At the instant two callbacks are already due, a callback scheduled
   with zero and one with negative delay must fire after them, in
   schedule order: [a; b; c; d]. The simulator heap and the timer wheel
   must agree — the soak matrix's reproducibility rides on it. *)
let sched_fifo_scenario (sched : Rt.Sched.t) step =
  let order = ref [] in
  let tag i () = order := i :: !order in
  ignore
    (Rt.Sched.schedule_after sched 1.0 (fun () ->
         tag 1 ();
         ignore (Rt.Sched.schedule_after sched 0.0 (tag 3));
         ignore (Rt.Sched.schedule_after sched (-5.0) (tag 4))));
  ignore (Rt.Sched.schedule_after sched 1.0 (tag 2));
  step ();
  List.rev !order

let test_engine_sched_fifo () =
  let engine = Engine.create () in
  let got =
    sched_fifo_scenario (Engine.sched engine) (fun () ->
        Engine.run ~until:2.0 engine)
  in
  Alcotest.(check (list int)) "engine FIFO under zero/negative delay"
    [ 1; 2; 3; 4 ] got

let test_loop_sched_fifo () =
  let loop = Rt.Loop.create ~granularity:0.0005 () in
  let sched = Rt.Loop.sched loop in
  let order = ref [] in
  let tag i () = order := i :: !order in
  (* Compress the scenario to real milliseconds: both roots due 2 ms out. *)
  ignore
    (Rt.Sched.schedule_after sched 0.002 (fun () ->
         tag 1 ();
         ignore (Rt.Sched.schedule_after sched 0.0 (tag 3));
         ignore (Rt.Sched.schedule_after sched (-5.0) (tag 4))));
  ignore (Rt.Sched.schedule_after sched 0.002 (tag 2));
  let done_ = Rt.Loop.run_until loop ~timeout:5.0 (fun () -> List.length !order = 4) in
  Alcotest.(check bool) "completed" true done_;
  Alcotest.(check (list int)) "loop FIFO under zero/negative delay"
    [ 1; 2; 3; 4 ]
    (List.rev !order);
  Alcotest.(check int) "no timers left" 0 (Rt.Loop.pending_timers loop)

(* --- Loop: descriptors --- *)

let test_loop_readable () =
  let loop = Rt.Loop.create () in
  let r, w = Unix.pipe () in
  Unix.set_nonblock r;
  let got = Buffer.create 16 in
  Rt.Loop.on_readable loop r (fun () ->
      let b = Bytes.create 64 in
      match Unix.read r b 0 64 with
      | n -> Buffer.add_subbytes got b 0 n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  let timer_fired = ref false in
  ignore
    (Rt.Sched.schedule_after (Rt.Loop.sched loop) 0.001 (fun () ->
         timer_fired := true;
         ignore (Unix.write_substring w "ping" 0 4)));
  let done_ =
    Rt.Loop.run_until loop ~timeout:5.0 (fun () -> Buffer.contents got = "ping")
  in
  Alcotest.(check bool) "delivered" true done_;
  Alcotest.(check bool) "timer ran first" true !timer_fired;
  Rt.Loop.clear_readable loop r;
  Unix.close r;
  Unix.close w

(* --- Udp_link --- *)

let test_udp_link_roundtrip () =
  let loop = Rt.Loop.create () in
  let link = Rt.Udp_link.create ~loop () in
  let got_b = ref [] and got_a = ref [] in
  Rt.Udp_link.bind link ~port:5000 (fun ~src ~src_port payload ->
      got_b := (src, src_port, Bytebuf.to_string payload) :: !got_b);
  Rt.Udp_link.bind link ~port:5001 (fun ~src ~src_port payload ->
      got_a := (src, src_port, Bytebuf.to_string payload) :: !got_a);
  let b_addr = Rt.Udp_link.local_addr link ~port:5000 in
  Alcotest.(check bool) "send accepted" true
    (Rt.Udp_link.send link ~dst:b_addr ~dst_port:5000 ~src_port:5001
       (Bytebuf.of_string "hello"));
  let ok = Rt.Loop.run_until loop ~timeout:5.0 (fun () -> !got_b <> []) in
  Alcotest.(check bool) "forward delivered" true ok;
  let src, src_port, payload =
    match !got_b with [ x ] -> x | _ -> Alcotest.fail "expected one datagram"
  in
  Alcotest.(check string) "payload" "hello" payload;
  (* The source token the handler saw routes a reply back. *)
  Alcotest.(check bool) "reply accepted" true
    (Rt.Udp_link.send link ~dst:src ~dst_port:src_port ~src_port:5000
       (Bytebuf.of_string "aloha"));
  let ok = Rt.Loop.run_until loop ~timeout:5.0 (fun () -> !got_a <> []) in
  Alcotest.(check bool) "reply delivered" true ok;
  (match !got_a with
  | [ (_, _, p) ] -> Alcotest.(check string) "reply payload" "aloha" p
  | _ -> Alcotest.fail "expected one reply");
  let st = Rt.Udp_link.stats link in
  Alcotest.(check int) "sent" 2 st.Rt.Udp_link.datagrams_sent;
  Alcotest.(check int) "received" 2 st.Rt.Udp_link.datagrams_received;
  (* Unknown destination: refused locally, counted, not an exception. *)
  Alcotest.(check bool) "unknown peer refused" false
    (Rt.Udp_link.send link ~dst:9999 ~dst_port:1 ~src_port:5000
       (Bytebuf.of_string "x"));
  Alcotest.(check int) "no_peer counted" 1 (Rt.Udp_link.stats link).Rt.Udp_link.no_peer;
  Rt.Udp_link.close link

(* First contact and the in-place upgrade: a datagram from an unknown
   sockaddr identifies under a synthetic port-0 pair that still routes a
   reply; a later [set_peer] for the same sockaddr upgrades the registry
   entry in place — the stale pair stops routing and later arrivals
   identify under the real name. *)
let test_udp_link_first_contact_upgrade () =
  let loop = Rt.Loop.create () in
  let link_a = Rt.Udp_link.create ~loop () in
  let link_b = Rt.Udp_link.create ~loop () in
  let got_a = ref [] and got_b = ref [] in
  Rt.Udp_link.bind link_a ~port:6000 (fun ~src ~src_port payload ->
      got_a := (src, src_port, Bytebuf.to_string payload) :: !got_a);
  Rt.Udp_link.bind link_b ~port:6001 (fun ~src ~src_port payload ->
      got_b := (src, src_port, Bytebuf.to_string payload) :: !got_b);
  (* a knows b by name; b has never heard of a. *)
  Rt.Udp_link.set_peer link_a ~addr:50 ~port:6001
    (Rt.Udp_link.local_sockaddr link_b ~port:6001);
  Alcotest.(check bool) "first datagram accepted" true
    (Rt.Udp_link.send link_a ~dst:50 ~dst_port:6001 ~src_port:6000
       (Bytebuf.of_string "hello"));
  ignore (Rt.Loop.run_until loop ~timeout:5.0 (fun () -> !got_b <> []));
  let src, src_port =
    match !got_b with
    | [ (s, p, "hello") ] -> (s, p)
    | _ -> Alcotest.fail "expected the hello"
  in
  Alcotest.(check int) "first contact carries the synthetic port" 0 src_port;
  (* The synthetic token still routes a reply... *)
  Alcotest.(check bool) "token routes a reply" true
    (Rt.Udp_link.send link_b ~dst:src ~dst_port:src_port ~src_port:6001
       (Bytebuf.of_string "aloha"));
  ignore (Rt.Loop.run_until loop ~timeout:5.0 (fun () -> !got_a <> []));
  (match !got_a with
  | [ (sa, spa, "aloha") ] ->
      (* a seeded b's name, so b's reply identifies under it. *)
      Alcotest.(check int) "reply source address" 50 sa;
      Alcotest.(check int) "reply source port" 6001 spa
  | _ -> Alcotest.fail "expected the aloha");
  (* ...until b learns the real name: upgrade in place. *)
  Rt.Udp_link.set_peer link_b ~addr:9 ~port:6000
    (Rt.Udp_link.local_sockaddr link_a ~port:6000);
  Alcotest.(check bool) "stale synthetic pair stops routing" false
    (Rt.Udp_link.send link_b ~dst:src ~dst_port:src_port ~src_port:6001
       (Bytebuf.of_string "x"));
  Alcotest.(check int) "stale pair counted as no_peer" 1
    (Rt.Udp_link.stats link_b).Rt.Udp_link.no_peer;
  got_a := [];
  Alcotest.(check bool) "upgraded pair routes" true
    (Rt.Udp_link.send link_b ~dst:9 ~dst_port:6000 ~src_port:6001
       (Bytebuf.of_string "named"));
  ignore (Rt.Loop.run_until loop ~timeout:5.0 (fun () -> !got_a <> []));
  (match !got_a with
  | [ (_, _, "named") ] -> ()
  | _ -> Alcotest.fail "expected the named datagram");
  (* Later arrivals from the same sockaddr identify under the real
     name, not a fresh synthetic one. *)
  got_b := [];
  ignore
    (Rt.Udp_link.send link_a ~dst:50 ~dst_port:6001 ~src_port:6000
       (Bytebuf.of_string "again"));
  ignore (Rt.Loop.run_until loop ~timeout:5.0 (fun () -> !got_b <> []));
  (match !got_b with
  | [ (s, p, "again") ] ->
      Alcotest.(check int) "arrival identifies under the upgrade" 9 s;
      Alcotest.(check int) "with the real port" 6000 p
  | _ -> Alcotest.fail "expected the again datagram");
  Rt.Udp_link.close link_a;
  Rt.Udp_link.close link_b

(* --- Backend-parametric transport suite --- *)

type world = {
  w_sched : Rt.Sched.t;
  w_io_a : Dgram.t;  (* sender substrate *)
  w_io_b : Dgram.t;  (* receiver substrate *)
  w_peer : unit -> Packet.addr;  (* receiver address, once bound *)
  w_run : timeout:float -> (unit -> bool) -> unit;
  w_pending : unit -> int;  (* live timers after quiescence *)
  w_horizon : float;
  w_teardown : unit -> unit;
}

let netsim_world ~loss () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:11L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:1024 ~bandwidth_bps:50e6 ~delay:0.002 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  {
    w_sched = Engine.sched engine;
    w_io_a = Dgram.of_udp ua;
    w_io_b = Dgram.of_udp ub;
    w_peer = (fun () -> 2);
    w_run =
      (fun ~timeout pred ->
        let deadline = Engine.now engine +. timeout in
        while (not (pred ())) && Engine.now engine < deadline do
          Engine.run ~until:(Engine.now engine +. 0.05) ~max_events:1_000_000
            engine
        done);
    w_pending = (fun () -> Engine.pending engine);
    w_horizon = 120.0;
    w_teardown = ignore;
  }

let rt_world ~loss () =
  let loop = Rt.Loop.create () in
  let link = Rt.Udp_link.create ~loop () in
  let io = Dgram.of_rt link in
  let io_a =
    Alf_chaos.Chaos.lossy_dgram ~rng:(Rng.create ~seed:12L) ~rate:loss io
  in
  {
    w_sched = Rt.Loop.sched loop;
    w_io_a = io_a;
    w_io_b = io;
    w_peer = (fun () -> Rt.Udp_link.local_addr link ~port:7000);
    w_run =
      (fun ~timeout pred -> ignore (Rt.Loop.run_until loop ~timeout pred));
    w_pending = (fun () -> Rt.Loop.pending_timers loop);
    w_horizon = 20.0;
    w_teardown = (fun () -> Rt.Udp_link.close link);
  }

(* One lossy transfer, any backend: everything delivered (recovery on),
   byte-exact, delivered ∪ gone = sent, and — the PR's leak regression —
   zero live timers once both ends have settled. *)
let transfer_suite mkworld () =
  let w = mkworld ~loss:0.05 () in
  let adus = 30 and adu_bytes = 900 in
  let payload i =
    String.init adu_bytes (fun j -> Char.chr (((i * 131) + j) land 0xff))
  in
  let delivered = ref 0 and mismatches = ref 0 in
  let receiver =
    Alf_transport.receiver_io ~sched:w.w_sched ~io:w.w_io_b ~port:7000
      ~stream:1 ~nack_interval:0.02 ~nack_holdoff:0.06 ~nack_budget:30
      ~adu_deadline:5.0 ~giveup_idle:1.0
      ~deliver:(fun adu ->
        incr delivered;
        if Bytebuf.to_string adu.Adu.payload <> payload adu.Adu.name.Adu.index
        then incr mismatches)
      ()
  in
  let sender =
    Alf_transport.sender_io ~sched:w.w_sched ~io:w.w_io_a ~peer:(w.w_peer ())
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  for i = 0 to adus - 1 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.of_string (payload i)))
  done;
  Alf_transport.close sender;
  w.w_run ~timeout:w.w_horizon (fun () ->
      (Alf_transport.finished sender || Alf_transport.sender_gave_up sender)
      && (Alf_transport.complete receiver || Alf_transport.abandoned receiver));
  Alcotest.(check bool) "sender finished" true (Alf_transport.finished sender);
  Alcotest.(check bool) "receiver complete" true (Alf_transport.complete receiver);
  Alcotest.(check int) "all delivered" adus !delivered;
  Alcotest.(check int) "byte exact" 0 !mismatches;
  let settled = ref true in
  for i = 0 to adus - 1 do
    if not (Alf_transport.settled receiver i) then settled := false
  done;
  Alcotest.(check bool) "delivered union gone = sent" true !settled;
  Alcotest.(check int) "store released" 0 (Alf_transport.store_footprint sender);
  (* The timer-leak regression: a closed session must leave nothing
     armed — pace, close-retry and NACK timers all cancelled. *)
  Alcotest.(check int) "no timers survive completion" 0 (w.w_pending ());
  w.w_teardown ()

(* No callback runs after completion: once both ends settle, driving the
   backend for a long tail must not move a single receiver counter. *)
let test_no_callbacks_after_close () =
  let w = netsim_world ~loss:0.05 () in
  let receiver =
    Alf_transport.receiver_io ~sched:w.w_sched ~io:w.w_io_b ~port:7000
      ~stream:1 ~nack_interval:0.02 ~nack_holdoff:0.06 ~nack_budget:30
      ~deliver:(fun _ -> ())
      ()
  in
  let sender =
    Alf_transport.sender_io ~sched:w.w_sched ~io:w.w_io_a ~peer:(w.w_peer ())
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  for i = 0 to 9 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.of_string (String.make 500 'x')))
  done;
  Alf_transport.close sender;
  w.w_run ~timeout:60.0 (fun () ->
      Alf_transport.finished sender && Alf_transport.complete receiver);
  Alcotest.(check bool) "settled" true (Alf_transport.finished sender);
  Alcotest.(check int) "quiesced immediately" 0 (w.w_pending ());
  let nacks0 = (Alf_transport.receiver_stats receiver).Alf_transport.nacks_sent in
  (* A long idle tail: the leaked pace/close/NACK closures used to keep
     firing here forever. *)
  w.w_run ~timeout:60.0 (fun () -> false);
  Alcotest.(check int) "still quiesced" 0 (w.w_pending ());
  Alcotest.(check int) "no NACKs after completion" nacks0
    (Alf_transport.receiver_stats receiver).Alf_transport.nacks_sent

(* A long-lived in-order stream: the receiver's per-index tables and the
   reassembler's retired set must stay sized by the reordering window,
   not by the stream — the frontier retires state as it passes. *)
let test_receiver_tables_stay_flat () =
  let w = netsim_world ~loss:0.0 () in
  let adus = 300 and batch = 25 in
  let delivered = ref 0 in
  let receiver =
    Alf_transport.receiver_io ~sched:w.w_sched ~io:w.w_io_b ~port:7000
      ~stream:1 ~nack_interval:0.02 ~nack_holdoff:0.06 ~nack_budget:30
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  let sender =
    Alf_transport.sender_io ~sched:w.w_sched ~io:w.w_io_a ~peer:(w.w_peer ())
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  let max_tables = ref 0 and max_retired = ref 0 in
  let sample () =
    let d, g, r = Alf_transport.receiver_table_sizes receiver in
    if d + g + r > !max_tables then max_tables := d + g + r;
    let ret = Alf_transport.receiver_retired_count receiver in
    if ret > !max_retired then max_retired := ret
  in
  for b = 0 to (adus / batch) - 1 do
    for i = b * batch to ((b + 1) * batch) - 1 do
      Alf_transport.send_adu sender
        (Adu.make
           (Adu.name ~stream:1 ~index:i ())
           (Bytebuf.of_string (String.make 400 'y')))
    done;
    w.w_run ~timeout:10.0 (fun () -> !delivered >= (b + 1) * batch);
    sample ()
  done;
  Alf_transport.close sender;
  w.w_run ~timeout:w.w_horizon (fun () ->
      Alf_transport.finished sender && Alf_transport.complete receiver);
  sample ();
  Alcotest.(check int) "all delivered" adus !delivered;
  Alcotest.(check int) "frontier swept the stream" adus
    (Alf_transport.receiver_frontier receiver);
  (* 300 ADUs through; state never exceeded a small reordering window. *)
  Alcotest.(check bool) "per-index tables stay flat" true (!max_tables <= 8);
  Alcotest.(check bool) "retired set stays flat" true (!max_retired <= 8);
  let d, g, r = Alf_transport.receiver_table_sizes receiver in
  Alcotest.(check (list int)) "tables empty at completion" [ 0; 0; 0 ]
    [ d; g; r ];
  w.w_teardown ()

(* Sender teardown: every exit path — DONE, kill, give-up — must leave
   all three sender tables (outq, queued fragments, gone-announced) and
   the retransmission store empty. *)
let sender_tables name sender =
  let outq, frags, gone = Alf_transport.sender_table_sizes sender in
  Alcotest.(check (list int)) (name ^ ": sender tables cleared") [ 0; 0; 0 ]
    [ outq; frags; gone ];
  Alcotest.(check int) (name ^ ": store released") 0
    (Alf_transport.store_footprint sender)

let test_sender_teardown_on_done () =
  (* No_recovery under loss: NACKs are answered with GONE, so the
     gone-announced table is exercised before the DONE clears it. *)
  let w = netsim_world ~loss:0.1 () in
  let receiver =
    Alf_transport.receiver_io ~sched:w.w_sched ~io:w.w_io_b ~port:7000
      ~stream:1 ~nack_interval:0.02 ~nack_holdoff:0.06 ~nack_budget:30
      ~deliver:(fun _ -> ())
      ()
  in
  let sender =
    Alf_transport.sender_io ~sched:w.w_sched ~io:w.w_io_a ~peer:(w.w_peer ())
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.No_recovery ()
  in
  for i = 0 to 19 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.of_string (String.make 600 'z')))
  done;
  Alf_transport.close sender;
  w.w_run ~timeout:w.w_horizon (fun () ->
      Alf_transport.finished sender && Alf_transport.complete receiver);
  Alcotest.(check bool) "finished via DONE" true (Alf_transport.finished sender);
  sender_tables "done" sender;
  Alcotest.(check int) "no timers left" 0 (w.w_pending ())

let test_sender_teardown_on_kill () =
  let w = netsim_world ~loss:0.0 () in
  let sender =
    Alf_transport.sender_io ~sched:w.w_sched ~io:w.w_io_a ~peer:(w.w_peer ())
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.Transport_buffer
      ~config:
        {
          Alf_transport.default_sender_config with
          Alf_transport.pace_bps = Some 10_000.0;
        }
      ()
  in
  for i = 0 to 9 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.of_string (String.make 900 'k')))
  done;
  (* Pacing at 10 kbps: most of the queue is still waiting. *)
  let outq, frags, _ = Alf_transport.sender_table_sizes sender in
  Alcotest.(check bool) "work queued before the kill" true (outq + frags > 0);
  Alf_transport.kill_sender sender;
  sender_tables "kill" sender;
  Alf_transport.kill_sender sender (* idempotent *);
  sender_tables "kill twice" sender;
  (* The paced-send timers died with the session. *)
  w.w_run ~timeout:5.0 (fun () -> w.w_pending () = 0);
  Alcotest.(check int) "no timers left" 0 (w.w_pending ())

let test_sender_teardown_on_giveup () =
  (* Nobody bound at the far end: every CLOSE goes unanswered and the
     sender must eventually release everything on its own. *)
  let w = netsim_world ~loss:0.0 () in
  let sender =
    Alf_transport.sender_io ~sched:w.w_sched ~io:w.w_io_a ~peer:(w.w_peer ())
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.Transport_buffer
      ~config:
        {
          Alf_transport.default_sender_config with
          Alf_transport.close_retry = 0.05;
          close_attempts = 3;
        }
      ()
  in
  for i = 0 to 4 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.of_string (String.make 500 'g')))
  done;
  Alcotest.(check bool) "store holds the copies" true
    (Alf_transport.store_footprint sender > 0);
  Alf_transport.close sender;
  w.w_run ~timeout:w.w_horizon (fun () -> Alf_transport.sender_gave_up sender);
  Alcotest.(check bool) "gave up" true (Alf_transport.sender_gave_up sender);
  Alcotest.(check bool) "never finished" false (Alf_transport.finished sender);
  sender_tables "give-up" sender;
  Alcotest.(check int) "no timers left" 0 (w.w_pending ())

(* --- Reassembler: retired indices --- *)

let two_frag_adu ~index =
  let payload = Bytebuf.of_string (String.init 300 (fun i -> Char.chr (i land 0xff))) in
  let adu = Adu.make (Adu.name ~stream:1 ~index ()) payload in
  let frags = Framing.fragment ~mtu:200 adu in
  Alcotest.(check int) "fixture is two fragments" 2 (List.length frags);
  List.map Framing.parse_fragment frags

let test_reassembler_retired_duplicates () =
  let delivered = ref 0 in
  let r = Framing.reassembler ~deliver:(fun _ -> incr delivered) () in
  let frags = two_frag_adu ~index:0 in
  List.iter (Framing.push r) frags;
  Alcotest.(check int) "delivered once" 1 !delivered;
  let st = Framing.stats r in
  Alcotest.(check int) "completed" 1 st.Framing.completed;
  (* Late retransmissions of a completed ADU: counted and dropped before
     any buffer or copy work — no reopened partial, no reallocation. *)
  let created0 = Bytebuf.created_total () in
  List.iter (Framing.push r) frags;
  List.iter (Framing.push r) frags;
  Alcotest.(check int) "no re-delivery" 1 !delivered;
  Alcotest.(check int) "duplicates counted" 4 st.Framing.duplicate_frags;
  Alcotest.(check int) "no partial reopened" 0 (Framing.pending_adus r);
  Alcotest.(check int) "completed unchanged" 1 st.Framing.completed;
  Alcotest.(check int) "zero byte-touch: no buffers created" created0
    (Bytebuf.created_total ())

let test_reassembler_forget_retires () =
  let delivered = ref 0 in
  let r = Framing.reassembler ~deliver:(fun _ -> incr delivered) () in
  let frags = two_frag_adu ~index:7 in
  Framing.push r (List.hd frags);
  Alcotest.(check int) "partial open" 1 (Framing.pending_adus r);
  Framing.forget r ~index:7;
  Alcotest.(check int) "partial dropped" 0 (Framing.pending_adus r);
  (* The straggler that raced the gone-declaration must not reopen it. *)
  List.iter (Framing.push r) frags;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "no partial reopened" 0 (Framing.pending_adus r);
  Alcotest.(check int) "stragglers counted as duplicates" 2
    (Framing.stats r).Framing.duplicate_frags

let () =
  Alcotest.run "rt"
    [
      ( "timerwheel",
        [
          Alcotest.test_case "same-deadline FIFO" `Quick
            test_wheel_fifo_same_deadline;
          Alcotest.test_case "past deadline clamps, never overtakes" `Quick
            test_wheel_clamp_never_overtakes;
          Alcotest.test_case "cancellation" `Quick test_wheel_cancel;
          Alcotest.test_case "slot rotation" `Quick test_wheel_rotation;
          Alcotest.test_case "reschedule inside advance" `Quick
            test_wheel_reschedule_in_callback;
        ] );
      ( "sched-contract",
        [
          Alcotest.test_case "engine zero/negative delay FIFO" `Quick
            test_engine_sched_fifo;
          Alcotest.test_case "loop zero/negative delay FIFO" `Quick
            test_loop_sched_fifo;
        ] );
      ( "loop",
        [ Alcotest.test_case "timers and readable fds" `Quick test_loop_readable ] );
      ( "udp-link",
        [
          Alcotest.test_case "loopback round trip" `Quick test_udp_link_roundtrip;
          Alcotest.test_case "first contact, then upgrade in place" `Quick
            test_udp_link_first_contact_upgrade;
        ] );
      ( "transport-backends",
        [
          Alcotest.test_case "lossy transfer over netsim" `Quick
            (transfer_suite netsim_world);
          Alcotest.test_case "lossy transfer over loopback UDP" `Quick
            (transfer_suite rt_world);
          Alcotest.test_case "no callback runs after close" `Quick
            test_no_callbacks_after_close;
          Alcotest.test_case "streaming receiver tables stay flat" `Quick
            test_receiver_tables_stay_flat;
        ] );
      ( "sender-teardown",
        [
          Alcotest.test_case "DONE clears every table" `Quick
            test_sender_teardown_on_done;
          Alcotest.test_case "kill clears every table" `Quick
            test_sender_teardown_on_kill;
          Alcotest.test_case "give-up clears every table" `Quick
            test_sender_teardown_on_giveup;
        ] );
      ( "reassembler",
        [
          Alcotest.test_case "retired index swallows duplicates" `Quick
            test_reassembler_retired_duplicates;
          Alcotest.test_case "forget retires the index" `Quick
            test_reassembler_forget_retires;
        ] );
    ]
