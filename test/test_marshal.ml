(* The fused presentation path: marshal/unmarshal as ILP stages.

   The contract under test is byte-exactness: run_marshal must equal
   run_fused over a finished encoding (outputs and checksums), and
   run_unmarshal must invert it through mirrored plans — so the single
   pass is an optimisation, never a semantic change. *)

open Bufkit
open Netsim
open Alf_core
open Wire

let qcheck t = QCheck_alcotest.to_alcotest t

(* Abstract values, bounded depth, 32-bit ints (same shape as the wire
   suite's generator). *)
let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int (Int32.to_int i)) int32;
        map (fun i -> Value.Int64 i) int64;
        map (fun s -> Value.Octets s) (string_size (0 -- 20));
        map
          (fun s -> Value.Utf8 s)
          (string_size ~gen:(char_range 'a' 'z') (0 -- 12));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 1,
            map (fun vs -> Value.List vs) (list_size (0 -- 4) (node (depth - 1)))
          );
          ( 1,
            map
              (fun vs ->
                Value.Record
                  (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) vs))
              (list_size (1 -- 3) (node (depth - 1))) );
        ]
  in
  node 3

let arb_value = QCheck.make ~print:(Format.asprintf "%a" Value.pp) value_gen

(* Random marshal-compatible plans: any mix of checksum/cipher/copy
   stages (no Byteswap32 — rejected by construction), at most one RC4. *)
let plan_gen : Ilp.plan QCheck.Gen.t =
  let open QCheck.Gen in
  let stage =
    oneof
      [
        map (fun k -> Ilp.Checksum k) (oneofl Checksum.Kind.all);
        map2
          (fun key pos -> Ilp.Xor_pad { key; pos = Int64.of_int pos })
          int64 small_nat;
        map
          (fun key -> Ilp.Rc4_stream { key })
          (string_size ~gen:(char_range 'a' 'z') (1 -- 8));
        return Ilp.Deliver_copy;
      ]
  in
  let keep_first_rc4 plan =
    let seen = ref false in
    List.filter
      (function
        | Ilp.Rc4_stream _ -> if !seen then false else (seen := true; true)
        | _ -> true)
      plan
  in
  map keep_first_rc4 (list_size (0 -- 4) stage)

let pp_plan ppf plan =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Ilp.pp_stage)
    plan

let arb_plan = QCheck.make ~print:(Format.asprintf "%a" pp_plan) plan_gen

(* --- Marshal = fused-over-encode --- *)

let same_result (got : Ilp.result) (ref_ : Ilp.result) =
  Bytebuf.equal got.Ilp.output ref_.Ilp.output
  && got.Ilp.checksums = ref_.Ilp.checksums

let prop_marshal_equals_fused_ber =
  QCheck.Test.make ~name:"marshal: ber = run_fused over encode" ~count:300
    QCheck.(pair arb_value arb_plan)
    (fun (v, plan) ->
      same_result
        (Ilp.run_marshal (Ilp.Marshal_ber v) plan)
        (Ilp.run_fused plan (Ber.encode v)))

let prop_marshal_equals_fused_xdr =
  QCheck.Test.make ~name:"marshal: xdr = run_fused over encode" ~count:300
    QCheck.(pair arb_value arb_plan)
    (fun (v, plan) ->
      let schema = Xdr.schema_of_value v in
      same_result
        (Ilp.run_marshal (Ilp.Marshal_xdr (schema, v)) plan)
        (Ilp.run_fused plan (Xdr.encode schema v)))

let test_marshal_into_dst () =
  let v = Value.int_array [| 10; 20; 30 |] in
  let n = Ilp.marshal_size (Ilp.Marshal_ber v) in
  Alcotest.(check int) "marshal_size = sizeof" (Ber.sizeof v) n;
  let dst = Bytebuf.create n in
  let r = Ilp.run_marshal ~dst (Ilp.Marshal_ber v) [ Ilp.Deliver_copy ] in
  Alcotest.(check bool) "output is dst" true (r.Ilp.output == dst);
  Alcotest.(check bool) "bytes = encode" true
    (Bytebuf.equal dst (Ber.encode v));
  match
    Ilp.run_marshal ~dst:(Bytebuf.create (n + 1)) (Ilp.Marshal_ber v) []
  with
  | _ -> Alcotest.fail "oversized dst accepted"
  | exception Invalid_argument _ -> ()

(* --- Unmarshal: mirrored plans round-trip --- *)

(* Send plan / matching receive plan: ciphers are involutions, so the
   mirror applies them in reverse order; a checksum stage mirrors to the
   position where it sees the same bytes. *)
let mirror_pairs key rc4_key =
  [
    ([], []);
    ([ Ilp.Checksum Checksum.Kind.Internet ],
     [ Ilp.Checksum Checksum.Kind.Internet ]);
    ([ Ilp.Checksum Checksum.Kind.Crc32; Ilp.Xor_pad { key; pos = 0L } ],
     [ Ilp.Xor_pad { key; pos = 0L }; Ilp.Checksum Checksum.Kind.Crc32 ]);
    ([ Ilp.Rc4_stream { key = rc4_key } ],
     [ Ilp.Rc4_stream { key = rc4_key } ]);
    ([ Ilp.Xor_pad { key; pos = 32L }; Ilp.Rc4_stream { key = rc4_key } ],
     [ Ilp.Rc4_stream { key = rc4_key }; Ilp.Xor_pad { key; pos = 32L } ]);
  ]

let prop_unmarshal_round_trip =
  QCheck.Test.make ~name:"unmarshal: mirrored plans recover the value"
    ~count:200 arb_value (fun v ->
      List.for_all
        (fun (send_plan, recv_plan) ->
          let sent = Ilp.run_marshal (Ilp.Marshal_ber v) send_plan in
          let r = Ilp.run_unmarshal recv_plan Ilp.Unmarshal_ber sent.Ilp.output in
          Value.equal r.Ilp.value (Value.canonical v)
          && r.Ilp.consumed = Ber.sizeof v
          && (* same digests on both sides of the wire *)
          List.sort compare sent.Ilp.checksums
          = List.sort compare r.Ilp.checksums)
        (mirror_pairs 0xFEED5EEDL "rc4key"))

let prop_unmarshal_round_trip_xdr =
  QCheck.Test.make ~name:"unmarshal: xdr mirrored round trip" ~count:200
    arb_value (fun v ->
      let schema = Xdr.schema_of_value v in
      let send_plan =
        [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Xor_pad { key = 9L; pos = 0L } ]
      and recv_plan =
        [ Ilp.Xor_pad { key = 9L; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet ]
      in
      let sent = Ilp.run_marshal (Ilp.Marshal_xdr (schema, v)) send_plan in
      let r =
        Ilp.run_unmarshal recv_plan (Ilp.Unmarshal_xdr schema) sent.Ilp.output
      in
      Value.equal r.Ilp.value (Value.canonical v)
      && sent.Ilp.checksums = r.Ilp.checksums)

let prop_unmarshal_trailing_garbage =
  (* The decoder stops at the value; the transform and its checksums
     still cover the entire input, exactly like run_fused would. *)
  QCheck.Test.make ~name:"unmarshal: trailing bytes transformed, not parsed"
    ~count:200
    QCheck.(pair arb_value (string_gen_of_size Gen.(1 -- 16) Gen.char))
    (fun (v, junk) ->
      let plan = [ Ilp.Xor_pad { key = 77L; pos = 0L }; Ilp.Checksum Checksum.Kind.Crc32 ] in
      let sent =
        Ilp.run_marshal (Ilp.Marshal_ber v) [ Ilp.Xor_pad { key = 77L; pos = 0L } ]
      in
      let input = Bytebuf.concat [ sent.Ilp.output; Bytebuf.of_string junk ] in
      let ref_ = Ilp.run_fused plan input in
      let dst = Bytebuf.create (Bytebuf.length input) in
      let r = Ilp.run_unmarshal ~dst plan Ilp.Unmarshal_ber input in
      Value.equal r.Ilp.value (Value.canonical v)
      && r.Ilp.consumed = Ber.sizeof v
      && r.Ilp.checksums = ref_.Ilp.checksums
      && Bytebuf.equal dst ref_.Ilp.output)

let test_unmarshal_in_place () =
  let v = Value.Record [ ("a", Value.Utf8 "in-place"); ("b", Value.Int 3) ] in
  let sent =
    Ilp.run_marshal (Ilp.Marshal_ber v) [ Ilp.Xor_pad { key = 11L; pos = 0L } ]
  in
  let buf = sent.Ilp.output in
  let r =
    Ilp.run_unmarshal ~dst:buf
      [ Ilp.Xor_pad { key = 11L; pos = 0L } ]
      Ilp.Unmarshal_ber buf
  in
  Alcotest.(check bool) "value" true (Value.equal r.Ilp.value (Value.canonical v));
  (* the borrowed view now holds the decrypted encoding *)
  Alcotest.(check bool) "in place" true (Bytebuf.equal buf (Ber.encode (Value.canonical v)))

let test_byteswap_rejected () =
  let v = Value.int_array [| 1; 2 |] in
  (match Ilp.run_marshal (Ilp.Marshal_ber v) [ Ilp.Byteswap32 ] with
  | _ -> Alcotest.fail "marshal accepted Byteswap32"
  | exception Invalid_argument _ -> ());
  match
    Ilp.run_unmarshal [ Ilp.Byteswap32 ] Ilp.Unmarshal_ber (Ber.encode v)
  with
  | _ -> Alcotest.fail "unmarshal accepted Byteswap32"
  | exception Invalid_argument _ -> ()

let test_marshal_cache_counters () =
  let hits = Obs.Registry.counter "ilp.marshal.plan_cache.hits" in
  let misses = Obs.Registry.counter "ilp.marshal.plan_cache.misses" in
  let encoded = Obs.Registry.counter "ilp.marshal.bytes_encoded" in
  let v = Value.int_array [| 1; 2; 3; 4 |] in
  let plan key = [ Ilp.Checksum Checksum.Kind.Adler32; Ilp.Xor_pad { key; pos = 0L } ] in
  (* First run caches the shape (hit or miss depending on suite order). *)
  ignore (Ilp.run_marshal (Ilp.Marshal_ber v) (plan 1L));
  let h0 = Obs.Counter.value hits
  and m0 = Obs.Counter.value misses
  and e0 = Obs.Counter.value encoded in
  for i = 2 to 6 do
    (* different keys, same shape: must all hit *)
    ignore (Ilp.run_marshal (Ilp.Marshal_ber v) (plan (Int64.of_int i)))
  done;
  Alcotest.(check int) "5 cache hits" (h0 + 5) (Obs.Counter.value hits);
  Alcotest.(check int) "no new misses" m0 (Obs.Counter.value misses);
  Alcotest.(check int) "bytes_encoded advances" (e0 + (5 * Ber.sizeof v))
    (Obs.Counter.value encoded)

(* --- The integrated transport path --- *)

let test_send_value_end_to_end () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.0)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let key = 0x5EED_CAFEL in
  let send_plan =
    [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Xor_pad { key; pos = 0L } ]
  and recv_plan =
    [ Ilp.Xor_pad { key; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet ]
  in
  let got = ref [] in
  let receiver =
    Alf_transport.receiver_values ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:7000 ~stream:1
      ~plan:recv_plan ~sink:Ilp.Unmarshal_ber
      ~deliver:(fun name v -> got := (name.Adu.index, v) :: !got)
      ()
  in
  let tx_pool = Pool.create ~buf_size:1491 () in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:7000 ~port:7001
      ~stream:1 ~policy:Recovery.No_recovery ~tx_pool ()
  in
  let values =
    [
      Value.int_array [| 1; 2; 3 |];
      Value.Utf8 "integrated send path";
      Value.Record [ ("off", Value.Int 512); ("data", Value.Octets "tile") ];
      (* big enough to take the multi-fragment fallback *)
      Value.Octets (String.make 5000 'q');
      Value.List [];
    ]
  in
  List.iteri
    (fun i v ->
      Alf_transport.send_value sender
        ~name:(Adu.name ~stream:1 ~index:i ())
        ~plan:send_plan (Ilp.Marshal_ber v))
    values;
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check int) "all delivered" (List.length values) (List.length !got);
  List.iteri
    (fun i v ->
      match List.assoc_opt i !got with
      | Some got_v ->
          Alcotest.(check bool)
            (Printf.sprintf "value %d" i)
            true
            (Value.equal got_v (Value.canonical v))
      | None -> Alcotest.fail (Printf.sprintf "value %d missing" i))
    values;
  let rs = Alf_transport.receiver_stats receiver in
  Alcotest.(check int) "nothing corrupt" 0 rs.Alf_transport.frags_corrupt_dropped

let test_send_value_matches_send_adu_wire () =
  (* A fused send and a classic encode-then-send must be byte-identical
     on the wire: same fragment header, same ADU header and CRC, same
     integrity trailer. *)
  let captured = ref [] in
  let io =
    {
      Dgram.send =
        (fun ~dst:_ ~dst_port:_ ~src_port:_ b ->
          captured := Bytebuf.to_string b :: !captured;
          true);
      bind = (fun ~port:_ _ -> ());
      max_payload = 65507;
    }
  in
  let v = Value.Record [ ("a", Value.int_array [| 5; 6; 7 |]) ] in
  let name = Adu.name ~dest_off:96 ~dest_len:24 ~stream:4 ~index:0 () in
  let wire_of send =
    let engine = Engine.create () in
    let s =
      Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io ~peer:2 ~peer_port:7000 ~port:7001
        ~stream:4 ~policy:Recovery.No_recovery
        ~tx_pool:(Pool.create ~buf_size:1491 ())
        ()
    in
    captured := [];
    send s;
    Engine.run ~until:1.0 engine;
    match !captured with
    | [ one ] -> one
    | l -> Alcotest.fail (Printf.sprintf "expected 1 datagram, got %d" (List.length l))
  in
  let fused =
    wire_of (fun s -> Alf_transport.send_value s ~name (Ilp.Marshal_ber v))
  in
  let classic =
    wire_of (fun s -> Alf_transport.send_adu s (Adu.make name (Ber.encode v)))
  in
  Alcotest.(check string) "identical wire bytes" classic fused

let test_send_value_zero_alloc () =
  (* Steady-state fused transmit performs zero Bytebuf creations per
     ADU: pooled datagram, take/sub views, combine-derived CRCs. *)
  let engine = Engine.create () in
  let io =
    {
      Dgram.send = (fun ~dst:_ ~dst_port:_ ~src_port:_ _ -> true);
      bind = (fun ~port:_ _ -> ());
      max_payload = 65507;
    }
  in
  let tx_pool = Pool.create ~buf_size:1491 () in
  let sender =
    Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io ~peer:2 ~peer_port:7000 ~port:7001
      ~stream:1 ~policy:Recovery.No_recovery ~tx_pool ()
  in
  let plan =
    [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Xor_pad { key = 7L; pos = 0L } ]
  in
  let v = Value.int_array (Array.init 100 (fun i -> i * 17)) in
  let now = ref 0.0 in
  let send i =
    Alf_transport.send_value sender
      ~name:(Adu.name ~stream:1 ~index:i ())
      ~plan (Ilp.Marshal_ber v);
    (* steady state = the engine drains (and the pool recycles) between
       sends, as it would on a live wire *)
    now := !now +. 0.001;
    Engine.run ~until:!now engine
  in
  (* Warmup: pool buffer, obs metrics, plan lowering all come into being. *)
  for i = 0 to 4 do
    send i
  done;
  let before = Bytebuf.created_total () in
  for i = 5 to 54 do
    send i
  done;
  Alcotest.(check int) "zero Bytebuf creations across 50 sends" 0
    (Bytebuf.created_total () - before);
  let st = Alf_transport.sender_stats sender in
  Alcotest.(check int) "all sent" 55 st.Alf_transport.adus_sent

let () =
  Alcotest.run "marshal"
    [
      ( "fused marshal",
        [
          Alcotest.test_case "into dst" `Quick test_marshal_into_dst;
          Alcotest.test_case "byteswap rejected" `Quick test_byteswap_rejected;
          Alcotest.test_case "cache counters" `Quick test_marshal_cache_counters;
          qcheck prop_marshal_equals_fused_ber;
          qcheck prop_marshal_equals_fused_xdr;
        ] );
      ( "fused unmarshal",
        [
          Alcotest.test_case "in place" `Quick test_unmarshal_in_place;
          qcheck prop_unmarshal_round_trip;
          qcheck prop_unmarshal_round_trip_xdr;
          qcheck prop_unmarshal_trailing_garbage;
        ] );
      ( "transport",
        [
          Alcotest.test_case "send_value end to end" `Quick
            test_send_value_end_to_end;
          Alcotest.test_case "wire parity with send_adu" `Quick
            test_send_value_matches_send_adu_wire;
          Alcotest.test_case "zero-alloc transmit" `Quick
            test_send_value_zero_alloc;
        ] );
    ]
