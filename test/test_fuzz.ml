(* Decoder robustness: arbitrary bytes into every wire parser in the
   repository. A parser may reject input only through its documented
   channel (its own exception or result type); anything else — internal
   assertion failures, Invalid_argument from bounds arithmetic, stack
   overflow — is a bug this suite exists to catch. *)

open Bufkit

let qcheck t = QCheck_alcotest.to_alcotest t

let arb_bytes =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Hexdump.pp_string s)
    QCheck.Gen.(string_size (0 -- 300))

(* Mutated-valid inputs reach deeper branches than pure noise. *)
let arb_mutated_of make =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Hexdump.pp_string s)
    QCheck.Gen.(
      let* seed = int_bound 1000 in
      let base = Bytebuf.to_string (make seed) in
      let* n_mutations = int_range 1 8 in
      let* mutations =
        list_size (return n_mutations) (pair (int_bound 10000) (int_bound 255))
      in
      let b = Bytes.of_string base in
      List.iter
        (fun (pos, v) ->
          if Bytes.length b > 0 then
            Bytes.set b (pos mod Bytes.length b) (Char.chr v))
        mutations;
      return (Bytes.to_string b))

let never_crashes name decode arb =
  QCheck.Test.make ~name ~count:1000 arb (fun s ->
      match decode (Bytebuf.of_string s) with
      | _ -> true
      | exception Wire.Ber.Decode_error _ -> true
      | exception Wire.Xdr.Error _ -> true
      | exception Wire.Lwts.Error _ -> true
      | exception Alf_core.Adu.Decode_error _ -> true
      | exception Alf_core.Framing.Frag_error _ -> true
      | exception Atmsim.Cell.Header_error _ -> true
      (* Anything else (Invalid_argument, Assert_failure, Bounds...)
         fails the property. *))

(* Valid-instance generators for the mutation corpus. *)
let valid_adu seed =
  Alf_core.Adu.encode
    (Alf_core.Adu.make
       (Alf_core.Adu.name ~dest_off:(seed * 13) ~dest_len:(seed mod 50)
          ~stream:(seed mod 100) ~index:seed ())
       (Bytebuf.init (seed mod 80) (fun i -> Char.chr ((i + seed) land 0xff))))

let valid_fragment seed =
  List.nth
    (Alf_core.Framing.fragment ~mtu:64
       (Alf_core.Adu.make
          (Alf_core.Adu.name ~stream:1 ~index:seed ())
          (Bytebuf.create (40 + (seed mod 100)))))
    0

let valid_segment seed =
  Transport.Segment.encode
    {
      Transport.Segment.seq = Transport.Seq32.of_int (seed * 7);
      ack = Transport.Seq32.of_int seed;
      flags = Transport.Segment.no_flags;
      wnd = seed;
      payload = Bytebuf.create (seed mod 60);
    }

let valid_ber seed =
  Wire.Ber.encode
    (Wire.Value.List
       [ Wire.Value.Int seed; Wire.Value.Utf8 "x"; Wire.Value.Octets "yz" ])

let valid_cell seed =
  Atmsim.Cell.encode
    (Atmsim.Cell.make ~vci:(seed land 0xFFFF)
       (Bytebuf.init 48 (fun i -> Char.chr ((i * seed) land 0xff))))

let segment_decode buf =
  match Transport.Segment.decode buf with Ok _ | Error _ -> ()

let aal34_push buf =
  if Bytebuf.length buf = 48 then begin
    let r = Atmsim.Aal34.reassembler ~deliver:(fun ~mid:_ _ -> ()) in
    Atmsim.Aal34.push r buf
  end

let aal5_push buf =
  if Bytebuf.length buf = 48 then begin
    let r = Atmsim.Aal5.reassembler ~deliver:(fun _ -> ()) () in
    Atmsim.Aal5.push r buf ~eof:true
  end

let fec_push buf =
  let d = Alf_core.Fec.decoder ~deliver:(fun _ -> ()) () in
  Alf_core.Fec.push d buf;
  Alf_core.Fec.flush d

let text_decode buf = ignore (Wire.Text.of_network buf)

let ber_decode buf = ignore (Wire.Ber.decode buf)
let ber_int_array buf = ignore (Wire.Ber.decode_int_array buf)

let xdr_decode buf =
  ignore (Wire.Xdr.decode (Wire.Xdr.S_array Wire.Xdr.S_string) buf)

let lwts_decode buf =
  ignore (Wire.Lwts.decode (Wire.Xdr.S_struct [ Wire.Xdr.S_int; Wire.Xdr.S_opaque ]) buf)

let adu_decode buf = ignore (Alf_core.Adu.decode buf)
let frag_parse buf = ignore (Alf_core.Framing.parse_fragment buf)
let cell_decode buf = if Bytebuf.length buf = 53 then ignore (Atmsim.Cell.decode buf)

(* --- the serve engine's full shard dispatch under a byte-level
   datagram storm ---

   >= 10^6 seeded cases through ingest -> stage-0 validation -> demux ->
   shard dispatch: random bytes, bit-flipped valid datagrams (CRC-32
   detects every single-bit error, so each must land in a malformed
   reason), truncations at every boundary of every corpus datagram, and
   duplicated/reordered valid control. Invariants: nothing raises, an
   honest session interleaved with the storm still completes exactly,
   arrivals = accepted + drops, and the malformed-shape drop total
   equals the injected-malformed count to the datagram (the driver pumps
   often enough that backpressure never intercepts one). *)
let test_serve_dispatch_storm () =
  let module Server = Alf_serve.Server in
  let module Ingress = Alf_serve.Ingress in
  let open Alf_core in
  let integrity = Some Checksum.Kind.Crc32 in
  let engine = Netsim.Engine.create () in
  let registry = Obs.Registry.create () in
  let rx_buf_size = 512 in
  let server =
    Server.create ~sched:(Netsim.Engine.sched engine) ~registry
      ~config:
        {
          Server.default_config with
          Server.shards = 4;
          rx_buf_size;
          harvest_interval = 0.;
          (* Policing has its own tests; unlimited buckets here keep the
             wellformed corpus out of the policy counters so malformed
             accounting stays exact. *)
          admit_burst = 1e9;
          ctl_burst = 1e9;
        }
      ()
  in
  let seal = Ctl.seal integrity in
  let rng = Netsim.Rng.create ~seed:0xF0CC1AL in
  (* Corpus: sealed valid datagrams of every kind the engine serves. *)
  let corpus =
    Array.of_list
      (List.concat_map
         (fun stream ->
           let payload =
             Bytebuf.init (32 + (stream * 7 mod 64)) (fun i ->
                 Char.chr ((i + stream) land 0xff))
           in
           let single =
             Framing.fragment ~mtu:400
               (Adu.make (Adu.name ~stream ~index:0 ()) payload)
           in
           let multi =
             Framing.fragment ~mtu:77
               (Adu.make (Adu.name ~stream ~index:1 ()) payload)
           in
           List.map seal
             (single @ multi
             @ [
                 Ctl.build_close ~stream ~total:(stream mod 5);
                 Ctl.build_done ~stream;
                 Ctl.build_nack ~stream ~have_below:0 [ 1; 2 ];
                 Ctl.build_gone ~stream [ 0; 3 ];
               ]))
         [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  let pick () = corpus.(Netsim.Rng.int rng ~bound:(Array.length corpus)) in
  let malformed = ref 0 and injected = ref 0 and since_pump = ref 0 in
  let shoot buf =
    incr injected;
    incr since_pump;
    Server.ingest server ~src:5
      ~src_port:(3100 + Netsim.Rng.int rng ~bound:4)
      buf;
    if !since_pump >= 256 then begin
      since_pump := 0;
      Server.pump server
    end
  in
  (* The honest session the storm must not displace. *)
  let honest_stream = 900 and honest_port = 3001 in
  let honest_payload = Bytebuf.of_string (String.make 48 'h') in
  List.iter
    (fun index ->
      List.iter
        (fun f -> Server.ingest server ~src:5 ~src_port:honest_port (seal f))
        (Framing.fragment ~mtu:77
           (Adu.make (Adu.name ~stream:honest_stream ~index ()) honest_payload)))
    [ 0; 1 ];
  Server.pump server;
  (* Truncations at every boundary of every corpus datagram. *)
  Array.iter
    (fun base ->
      for l = 1 to Bytebuf.length base - 1 do
        incr malformed;
        shoot (Bytebuf.take (Bytebuf.copy base) l)
      done)
    corpus;
  (* The seeded storm up to the case target. *)
  let target = 1_000_000 in
  let scratch = Bytebuf.create rx_buf_size in
  while !injected < target do
    match Netsim.Rng.int rng ~bound:8 with
    | 0 | 1 ->
        (* Random bytes, random length. *)
        let len = 1 + Netsim.Rng.int rng ~bound:rx_buf_size in
        let b = Bytebuf.take scratch len in
        Netsim.Rng.fill_bytes rng b;
        incr malformed;
        shoot b
    | 2 | 3 | 4 ->
        (* One flipped bit in a valid datagram. *)
        let b = Bytebuf.copy (pick ()) in
        let pos = Netsim.Rng.int rng ~bound:(Bytebuf.length b) in
        let bit = 1 lsl Netsim.Rng.int rng ~bound:8 in
        Bytebuf.set_uint8 b pos (Bytebuf.get_uint8 b pos lxor bit);
        incr malformed;
        shoot b
    | 5 ->
        (* A random truncation. *)
        let base = pick () in
        let l = 1 + Netsim.Rng.int rng ~bound:(Bytebuf.length base - 1) in
        incr malformed;
        shoot (Bytebuf.take (Bytebuf.copy base) l)
    | _ ->
        (* Valid datagrams replayed out of order and duplicated. *)
        shoot (Bytebuf.copy (pick ()))
  done;
  Server.pump server;
  (* Close the honest session after the storm: still there, completes. *)
  Server.ingest server ~src:5 ~src_port:honest_port
    (seal (Ctl.build_close ~stream:honest_stream ~total:2));
  Server.pump server;
  (match
     Server.session_view server ~peer:5 ~peer_port:honest_port
       ~stream:honest_stream
   with
  | Some v ->
      Alcotest.(check bool) "honest session completed" true v.Server.v_completed;
      Alcotest.(check int) "honest ADUs delivered" 2 v.Server.v_delivered
  | None -> Alcotest.fail "honest session displaced by the storm");
  let totals = Server.totals server in
  Alcotest.(check bool)
    (Printf.sprintf "case target reached (%d)" !injected)
    true
    (!injected >= target);
  Alcotest.(check int) "every arrival classified exactly once"
    totals.Server.arrivals
    (totals.Server.accepted + totals.Server.dropped);
  Alcotest.(check int) "no backpressure intercepted the accounting" 0
    totals.Server.drops.(Ingress.reason_index Ingress.Backpressure);
  Alcotest.(check int) "zero dispatch errors" 0
    totals.Server.drops.(Ingress.reason_index Ingress.Dispatch_error);
  Alcotest.(check int) "malformed drops = injected malformed" !malformed
    (Server.malformed_drops totals);
  Server.stop server

(* Live endpoints fed raw garbage datagrams from a hostile peer. *)
let prop_endpoints_survive_garbage =
  QCheck.Test.make ~name:"live ALF/RPC endpoints survive garbage" ~count:200
    QCheck.(pair (small_list (string_of_size Gen.(0 -- 120))) int64)
    (fun (datagrams, seed) ->
      let open Netsim in
      let engine = Engine.create () in
      let rng = Rng.create ~seed in
      let net =
        Topology.point_to_point ~engine ~rng ~bandwidth_bps:10e6 ~delay:0.001
          ~a:1 ~b:2 ()
      in
      let attacker = Transport.Udp.create ~engine ~node:net.Topology.a () in
      let victim = Transport.Udp.create ~engine ~node:net.Topology.b () in
      let _receiver =
        Alf_core.Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:victim ~port:700 ~stream:1
          ~deliver:(fun _ -> ()) ()
      in
      let _sender =
        Alf_core.Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:victim ~peer:1 ~peer_port:9
          ~port:701 ~stream:1 ~policy:Alf_core.Recovery.No_recovery ()
      in
      let server = Rpcsim.Rpc.server ~engine ~udp:victim ~port:702 in
      Rpcsim.Rpc.register server ~proc:1 ~args:[] (fun _ -> Wire.Value.Null);
      let _responder =
        Alf_core.Session.listen ~engine ~io:(Alf_core.Dgram.of_udp victim)
          ~port:703 ~supported:[ "ber" ]
          ~on_session:(fun ~peer:_ _ -> ())
          ()
      in
      List.iteri
        (fun i payload ->
          let port = 700 + (i mod 4) in
          ignore
            (Transport.Udp.send attacker ~dst:2 ~dst_port:port
               ~src_port:60000 (Bytebuf.of_string payload)))
        datagrams;
      Engine.run ~until:5.0 engine;
      true)

let () =
  Alcotest.run "fuzz"
    [
      ( "random-bytes",
        [
          qcheck (never_crashes "ber decode" ber_decode arb_bytes);
          qcheck (never_crashes "ber int-array decode" ber_int_array arb_bytes);
          qcheck (never_crashes "xdr decode" xdr_decode arb_bytes);
          qcheck (never_crashes "lwts decode" lwts_decode arb_bytes);
          qcheck (never_crashes "adu decode" adu_decode arb_bytes);
          qcheck (never_crashes "fragment parse" frag_parse arb_bytes);
          qcheck (never_crashes "segment decode" segment_decode arb_bytes);
          qcheck (never_crashes "text decode" text_decode arb_bytes);
          qcheck (never_crashes "fec push" fec_push arb_bytes);
        ] );
      ( "live-endpoints",
        [ qcheck prop_endpoints_survive_garbage ] );
      ( "serve-dispatch",
        [
          Alcotest.test_case "10^6 datagrams through shard dispatch" `Slow
            test_serve_dispatch_storm;
        ] );
      ( "mutated-valid",
        [
          qcheck (never_crashes "mutated adu" adu_decode (arb_mutated_of valid_adu));
          qcheck
            (never_crashes "mutated fragment" frag_parse (arb_mutated_of valid_fragment));
          qcheck
            (never_crashes "mutated segment" segment_decode (arb_mutated_of valid_segment));
          qcheck (never_crashes "mutated ber" ber_decode (arb_mutated_of valid_ber));
          qcheck (never_crashes "mutated cell" cell_decode (arb_mutated_of valid_cell));
          qcheck
            (never_crashes "mutated cell as aal34 pdu" aal34_push
               (arb_mutated_of (fun s -> Bytebuf.take (valid_cell s) 48)));
          qcheck
            (never_crashes "mutated cell as aal5 payload" aal5_push
               (arb_mutated_of (fun s -> Bytebuf.take (valid_cell s) 48)));
        ] );
    ]
