open Bufkit

let qcheck t = QCheck_alcotest.to_alcotest t
let buf = Bytebuf.of_string

let hex s =
  String.concat ""
    (List.init (Bytebuf.length s) (fun i -> Printf.sprintf "%02X" (Bytebuf.get_uint8 s i)))

(* --- RC4 --- *)

(* The classic RC4 reference vectors. *)
let test_rc4_vectors () =
  let cases =
    [
      ("Key", "Plaintext", "BBF316E8D940AF0AD3");
      ("Wiki", "pedia", "1021BF0420");
      ("Secret", "Attack at dawn", "45A01F645FC35B383552544B9BF5");
    ]
  in
  List.iter
    (fun (key, plain, expect) ->
      let rc4 = Cipher.Rc4.create ~key in
      Alcotest.(check string) key expect (hex (Cipher.Rc4.transform rc4 (buf plain))))
    cases

let test_rc4_involution () =
  let plain = buf "some plaintext of moderate length" in
  let c = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k1") plain in
  let p = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k1") c in
  Alcotest.(check bool) "decrypts" true (Bytebuf.equal p plain)

let test_rc4_copy_checkpoint () =
  let a = Cipher.Rc4.create ~key:"checkpoint" in
  (* Advance, checkpoint, then verify the copy replays the same stream. *)
  for _ = 1 to 100 do
    ignore (Cipher.Rc4.keystream_byte a)
  done;
  let b = Cipher.Rc4.copy a in
  let from_a = List.init 16 (fun _ -> Cipher.Rc4.keystream_byte a) in
  let from_b = List.init 16 (fun _ -> Cipher.Rc4.keystream_byte b) in
  Alcotest.(check (list int)) "checkpoint replay" from_a from_b

let test_rc4_sequential_dependence () =
  (* Decrypting the second half without the first half's keystream fails:
     the ordering constraint the paper attributes to chained/stream
     encryption. *)
  let plain = buf "0123456789abcdef0123456789abcdef" in
  let c = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k") plain in
  let second_half = Bytebuf.shift c 16 in
  let wrong = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k") second_half in
  Alcotest.(check bool) "out-of-order decrypt garbles" false
    (Bytebuf.equal wrong (Bytebuf.shift plain 16))

let test_rc4_key_validation () =
  (match Cipher.Rc4.create ~key:"" with
  | _ -> Alcotest.fail "empty key accepted"
  | exception Invalid_argument _ -> ());
  match Cipher.Rc4.create ~key:(String.make 257 'x') with
  | _ -> Alcotest.fail "oversized key accepted"
  | exception Invalid_argument _ -> ()

(* --- Pad (seekable) --- *)

let prop_pad_involution =
  QCheck.Test.make ~name:"pad: transform twice = id" ~count:300
    QCheck.(triple int64 int64 (string_of_size Gen.(0 -- 100)))
    (fun (key, pos0, s) ->
      let pos = Int64.logand pos0 0xFFFFFFFFL in
      let pad = Cipher.Pad.create ~key in
      let b = buf s in
      Cipher.Pad.transform_at pad ~pos b;
      Cipher.Pad.transform_at pad ~pos b;
      Bytebuf.to_string b = s)

let prop_pad_out_of_order =
  QCheck.Test.make ~name:"pad: halves in any order = whole" ~count:300
    QCheck.(pair int64 (string_of_size Gen.(2 -- 100)))
    (fun (key, s) ->
      let pad = Cipher.Pad.create ~key in
      let whole = buf s in
      Cipher.Pad.transform_at pad ~pos:1000L whole;
      let parts = buf s in
      let cut = String.length s / 2 in
      let second = Bytebuf.shift parts cut in
      (* Decrypt the second range first: position-addressing makes order
         irrelevant. *)
      Cipher.Pad.transform_at pad ~pos:(Int64.of_int (1000 + cut)) second;
      Cipher.Pad.transform_at pad ~pos:1000L (Bytebuf.take parts cut);
      Bytebuf.equal whole parts)

let prop_pad_copy_fused =
  QCheck.Test.make ~name:"pad: fused copy-transform = separate" ~count:300
    QCheck.(pair int64 (string_of_size Gen.(0 -- 100)))
    (fun (key, s) ->
      let pad = Cipher.Pad.create ~key in
      let src = buf s in
      let dst = Bytebuf.create (String.length s) in
      Cipher.Pad.transform_copy_at pad ~pos:42L ~src ~dst;
      let reference = buf s in
      Cipher.Pad.transform_at pad ~pos:42L reference;
      Bytebuf.equal dst reference && Bytebuf.to_string src = s)

let test_pad_block64_consistency () =
  let pad = Cipher.Pad.create ~key:77L in
  for idx = 0 to 3 do
    let blk = Cipher.Pad.block64 pad (Int64.of_int idx) in
    for off = 0 to 7 do
      let expect =
        Int64.to_int (Int64.shift_right_logical blk (off * 8)) land 0xff
      in
      Alcotest.(check int)
        (Printf.sprintf "byte %d.%d" idx off)
        expect
        (Cipher.Pad.byte_at pad (Int64.of_int ((idx * 8) + off)))
    done
  done

(* --- Chain (CBC) --- *)

let key = Cipher.Chain.key_of_int64 0xFEEDFACEL

let prop_chain_round_trip =
  QCheck.Test.make ~name:"chain: decrypt(encrypt) = id" ~count:300
    QCheck.(pair int64 (int_range 0 16))
    (fun (iv, nblocks) ->
      let s = String.init (nblocks * 8) (fun i -> Char.chr ((i * 31 + 7) land 0xff)) in
      let c = Cipher.Chain.encrypt key ~iv (buf s) in
      Bytebuf.to_string (Cipher.Chain.decrypt key ~iv c) = s)

let test_chain_iv_matters () =
  let p = buf "16 bytes of data" in
  let c1 = Cipher.Chain.encrypt key ~iv:1L p in
  let c2 = Cipher.Chain.encrypt key ~iv:2L p in
  Alcotest.(check bool) "distinct ciphertexts" false (Bytebuf.equal c1 c2)

let test_chain_reorder_detected () =
  (* Swapping two ciphertext blocks corrupts the plaintext downstream of
     the swap — chaining "guards against malicious reordering". *)
  let p = buf "blockAAAblockBBBblockCCC" in
  let c = Cipher.Chain.encrypt key ~iv:9L p in
  let swapped = Bytebuf.copy c in
  Bytebuf.blit ~src:c ~src_pos:8 ~dst:swapped ~dst_pos:0 ~len:8;
  Bytebuf.blit ~src:c ~src_pos:0 ~dst:swapped ~dst_pos:8 ~len:8;
  let d = Cipher.Chain.decrypt key ~iv:9L swapped in
  Alcotest.(check bool) "reorder garbles" false (Bytebuf.equal d p)

let test_chain_bad_length () =
  match Cipher.Chain.encrypt key ~iv:0L (buf "seven b") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_chain_per_adu_iv_restores_independence () =
  (* Restarting the chain at each ADU boundary (fresh IV per ADU) lets
     ADUs decrypt independently — the ALF synchronisation-point fix. *)
  let adu1 = buf "first adu 16byte" and adu2 = buf "second adu16byte" in
  let c1 = Cipher.Chain.encrypt key ~iv:101L adu1 in
  let c2 = Cipher.Chain.encrypt key ~iv:102L adu2 in
  (* Decrypt adu2 without ever seeing adu1. *)
  let d2 = Cipher.Chain.decrypt key ~iv:102L c2 in
  Alcotest.(check bool) "independent decrypt" true (Bytebuf.equal d2 adu2);
  let d1 = Cipher.Chain.decrypt key ~iv:101L c1 in
  Alcotest.(check bool) "first too" true (Bytebuf.equal d1 adu1)

(* --- ChaCha20 / Poly1305 / AEAD (RFC 8439) --- *)

(* Parse "85:d6:be" / "10 f1 e7" / plain hex into raw bytes. *)
let of_hex s =
  let b = Buffer.create 32 in
  let nib = ref (-1) in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> -1
      in
      if v >= 0 then
        if !nib < 0 then nib := v
        else begin
          Buffer.add_char b (Char.chr ((!nib lsl 4) lor v));
          nib := -1
        end)
    s;
  Buffer.contents b

let le64 s off =
  let w = ref 0L in
  for j = 7 downto 0 do
    w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int (Char.code s.[off + j]))
  done;
  !w

let tag_hex (lo, hi) =
  String.concat ""
    (List.init 16 (fun i ->
         let w = if i < 8 then lo else hi in
         Printf.sprintf "%02X"
           (Int64.to_int (Int64.shift_right_logical w (8 * (i land 7))) land 0xff)))

let rfc_key = of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

(* RFC 8439 §2.3.2: keystream block, key 00..1f, counter 1. *)
let test_chacha_block_vector () =
  let key = Cipher.Chacha20.key_of_string rfc_key in
  let t = Cipher.Chacha20.create ~key ~n0:0x09000000 ~n1:0x4a000000 ~n2:0 in
  let expect =
    of_hex
      "10 f1 e7 e4 d1 3b 59 15 50 0f dd 1f a3 20 71 c4 c7 d1 f4 c7 33 c0 68 \
       03 04 22 aa 9a c3 d4 6c 4e d2 82 64 46 07 9f aa 09 14 c2 d7 05 d9 8b \
       02 a2 b5 12 9c d1 de 16 4e b9 cb d0 83 e8 a2 50 3c 4e"
  in
  let got =
    String.init 64 (fun i -> Char.chr (Cipher.Chacha20.byte_at t i))
  in
  Alcotest.(check string) "keystream block 1" (hex (buf expect)) (hex (buf got))

(* RFC 8439 §2.4.2: whole-message encryption. *)
let sunscreen =
  "Ladies and Gentlemen of the class of '99: If I could offer you only one \
   tip for the future, sunscreen would be it."

let test_chacha_encrypt_vector () =
  let key = Cipher.Chacha20.key_of_string rfc_key in
  let t = Cipher.Chacha20.create ~key ~n0:0 ~n1:0x4a000000 ~n2:0 in
  let b = buf sunscreen in
  Cipher.Chacha20.transform_at t ~pos:0 b;
  let expect =
    of_hex
      "6e 2e 35 9a 25 68 f9 80 41 ba 07 28 dd 0d 69 81 e9 7e 7a ec 1d 43 60 \
       c2 0a 27 af cc fd 9f ae 0b f9 1b 65 c5 52 47 33 ab 8f 59 3d ab cd 62 \
       b3 57 16 39 d6 24 e6 51 52 ab 8f 53 0c 35 9f 08 61 d8 07 ca 0d bf 50 \
       0d 6a 61 56 a3 8e 08 8a 22 b6 5e 52 bc 51 4d 16 cc f8 06 81 8c e9 1a \
       b7 79 37 36 5a f9 0b bf 74 a3 5b e6 b4 0b 8e ed f2 78 5e 42 87 4d"
  in
  Alcotest.(check string) "ciphertext" (hex (buf expect)) (hex b)

let test_chacha_out_of_order () =
  (* Decrypt the tail before the head: seekability makes order irrelevant
     — the property RC4 lacks. *)
  let key = Cipher.Chacha20.key_of_int64 0xC0FFEEL in
  let whole = buf sunscreen in
  Cipher.Chacha20.transform_at
    (Cipher.Chacha20.create ~key ~n0:1 ~n1:2 ~n2:3)
    ~pos:0 whole;
  let parts = buf sunscreen in
  let cut = 70 in
  let t = Cipher.Chacha20.create ~key ~n0:1 ~n1:2 ~n2:3 in
  Cipher.Chacha20.transform_at t ~pos:cut (Bytebuf.shift parts cut);
  Cipher.Chacha20.transform_at t ~pos:0 (Bytebuf.take parts cut);
  Alcotest.(check bool) "halves in any order" true (Bytebuf.equal whole parts)

let prop_chacha_word64_at =
  QCheck.Test.make ~name:"chacha20: word64_at = 8 byte_at at any offset"
    ~count:500
    QCheck.(pair int64 (int_bound 1000))
    (fun (seed, pos) ->
      let key = Cipher.Chacha20.key_of_int64 seed in
      let t = Cipher.Chacha20.create ~key ~n0:7 ~n1:8 ~n2:9 in
      let w = Cipher.Chacha20.word64_at t pos in
      List.for_all
        (fun j ->
          Int64.to_int (Int64.shift_right_logical w (8 * j)) land 0xff
          = Cipher.Chacha20.byte_at t (pos + j))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_chacha_derive () =
  let key = Cipher.Chacha20.key_of_int64 42L in
  let k1 = Cipher.Chacha20.derive key ~n0:1 ~n1:0 ~n2:0 in
  let k2 = Cipher.Chacha20.derive key ~n0:2 ~n1:0 ~n2:0 in
  let stream k = String.init 32 (fun i ->
      Char.chr (Cipher.Chacha20.byte_at (Cipher.Chacha20.create ~key:k ~n0:0 ~n1:0 ~n2:0) i))
  in
  Alcotest.(check bool) "epochs diverge" false (stream k1 = stream k2);
  let k1' = Cipher.Chacha20.derive key ~n0:1 ~n1:0 ~n2:0 in
  Alcotest.(check bool) "derivation deterministic" true (stream k1 = stream k1')

(* RFC 8439 §2.5.2: Poly1305 tag. *)
let test_poly1305_vector () =
  let k = of_hex "85:d6:be:78:57:55:6d:33:7f:44:52:fe:42:d5:06:a8:01:03:80:8a:fb:0d:b2:fd:4a:bf:f6:af:41:49:f5:1b" in
  let p =
    Cipher.Poly1305.create ~k0:(le64 k 0) ~k1:(le64 k 8) ~k2:(le64 k 16)
      ~k3:(le64 k 24)
  in
  Cipher.Poly1305.feed_sub p (buf "Cryptographic Forum Research Group");
  Alcotest.(check string) "tag"
    (hex (buf (of_hex "a8:06:1d:c1:30:51:36:c6:c2:2b:8b:af:0c:01:27:a9")))
    (tag_hex (Cipher.Poly1305.finish p))

let prop_poly1305_feed_agreement =
  (* Word feeds, byte feeds and whole-slice feeds are the same stream. *)
  QCheck.Test.make ~name:"poly1305: word/byte/sub feeds agree" ~count:300
    QCheck.(pair int64 (string_of_size Gen.(0 -- 80)))
    (fun (seed, s) ->
      let k = Cipher.Chacha20.key_of_int64 seed in
      let k0, k1, k2, k3 =
        Cipher.Chacha20.poly_key (Cipher.Chacha20.create ~key:k ~n0:0 ~n1:0 ~n2:0)
      in
      let mk () = Cipher.Poly1305.create ~k0 ~k1 ~k2 ~k3 in
      let via_sub = mk () in
      Cipher.Poly1305.feed_sub via_sub (buf s);
      let via_bytes = mk () in
      String.iter (fun c -> Cipher.Poly1305.feed_byte via_bytes (Char.code c)) s;
      Cipher.Poly1305.finish via_sub = Cipher.Poly1305.finish via_bytes)

(* RFC 8439 §2.8.2: the combined AEAD construction. *)
let aead_key = Cipher.Chacha20.key_of_string
    (of_hex "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")

let aead_aad = of_hex "50 51 52 53 c0 c1 c2 c3 c4 c5 c6 c7"
let aead_n0 = 0x00000007
let aead_n1 = 0x43424140
let aead_n2 = 0x47464544

let aead_ct_expect =
  of_hex
    "d3 1a 8d 34 64 8e 60 db 7b 86 af bc 53 ef 7e c2 a4 ad ed 51 29 6e 08 fe \
     a9 e2 b5 a7 36 ee 62 d6 3d be a4 5e 8c a9 67 12 82 fa fb 69 da 92 72 8b \
     1a 71 de 0a 9e 06 0b 29 05 d6 a5 b6 7e cd 3b 36 92 dd bd 7f 2d 77 8b 8c \
     98 03 ae e3 28 09 1b 58 fa b3 24 e4 fa d6 75 94 55 85 80 8b 48 31 d7 bc \
     3f f4 de f0 8e 4b 7a 9d e5 76 d2 65 86 ce c6 4b 61 16"

let test_aead_vector () =
  let b = buf sunscreen in
  let lo, hi =
    Cipher.Aead.seal_in_place ~key:aead_key ~n0:aead_n0 ~n1:aead_n1
      ~n2:aead_n2 ~aad:(buf aead_aad) b
  in
  Alcotest.(check string) "ciphertext" (hex (buf aead_ct_expect)) (hex b);
  Alcotest.(check string) "tag"
    (hex (buf (of_hex "1a:e1:0b:59:4f:09:e2:6a:7e:90:2e:cb:d0:60:06:91")))
    (tag_hex (lo, hi));
  Alcotest.(check bool) "opens" true
    (Cipher.Aead.open_in_place ~key:aead_key ~n0:aead_n0 ~n1:aead_n1
       ~n2:aead_n2 ~aad:(buf aead_aad) b ~lo ~hi);
  Alcotest.(check string) "round trip" sunscreen (Bytebuf.to_string b)

let test_aead_tamper () =
  let b = buf sunscreen in
  let lo, hi =
    Cipher.Aead.seal_in_place ~key:aead_key ~n0:aead_n0 ~n1:aead_n1
      ~n2:aead_n2 ~aad:(buf aead_aad) b
  in
  (* Flip one ciphertext bit. *)
  Bytebuf.set_uint8 b 17 (Bytebuf.get_uint8 b 17 lxor 0x40);
  Alcotest.(check bool) "ct flip fails auth" false
    (Cipher.Aead.open_in_place ~key:aead_key ~n0:aead_n0 ~n1:aead_n1
       ~n2:aead_n2 ~aad:(buf aead_aad) (Bytebuf.copy b) ~lo ~hi);
  Bytebuf.set_uint8 b 17 (Bytebuf.get_uint8 b 17 lxor 0x40);
  (* Flip a tag bit. *)
  Alcotest.(check bool) "tag flip fails auth" false
    (Cipher.Aead.open_in_place ~key:aead_key ~n0:aead_n0 ~n1:aead_n1
       ~n2:aead_n2 ~aad:(buf aead_aad) (Bytebuf.copy b)
       ~lo:(Int64.logxor lo 1L) ~hi);
  (* Flip an AAD bit. *)
  let aad' = buf aead_aad in
  Bytebuf.set_uint8 aad' 0 (Bytebuf.get_uint8 aad' 0 lxor 1);
  Alcotest.(check bool) "aad flip fails auth" false
    (Cipher.Aead.open_in_place ~key:aead_key ~n0:aead_n0 ~n1:aead_n1
       ~n2:aead_n2 ~aad:aad' (Bytebuf.copy b) ~lo ~hi);
  (* Wrong nonce (as a flipped nonce-deriving header would produce). *)
  Alcotest.(check bool) "nonce flip fails auth" false
    (Cipher.Aead.open_in_place ~key:aead_key ~n0:(aead_n0 lxor 2) ~n1:aead_n1
       ~n2:aead_n2 ~aad:(buf aead_aad) (Bytebuf.copy b) ~lo ~hi)

let prop_aead_fused_combinators =
  (* Driving the payload word-by-word through the combinators (the fused
     loop's view of the record) equals the whole-buffer oracle. *)
  QCheck.Test.make ~name:"aead: word/byte combinators = in-place oracle"
    ~count:300
    QCheck.(pair int64 (string_of_size Gen.(0 -- 150)))
    (fun (seed, s) ->
      let key = Cipher.Chacha20.key_of_int64 seed in
      let aad = buf "aad bytes" in
      let oracle = buf s in
      let olo, ohi =
        Cipher.Aead.seal_in_place ~key ~n0:5 ~n1:6 ~n2:7 ~aad oracle
      in
      let t = Cipher.Aead.create ~key ~n0:5 ~n1:6 ~n2:7 ~aad in
      let n = String.length s in
      let out = Bytes.create n in
      let i = ref 0 in
      while !i + 8 <= n do
        let w = le64 s !i in
        Bytes.set_int64_le out !i (Cipher.Aead.seal_word t !i w);
        i := !i + 8
      done;
      while !i < n do
        Bytes.set out !i
          (Char.chr (Cipher.Aead.seal_byte t !i (Char.code s.[!i])));
        incr i
      done;
      let lo, hi = Cipher.Aead.tag t in
      Bytes.to_string out = Bytebuf.to_string oracle && lo = olo && hi = ohi)

let prop_pad_word64_at =
  QCheck.Test.make ~name:"pad: word64_at = 8 byte_at at any offset" ~count:500
    QCheck.(pair int64 (int_bound 10000))
    (fun (key, pos) ->
      let pad = Cipher.Pad.create ~key in
      let pos = Int64.of_int pos in
      let w = Cipher.Pad.word64_at pad pos in
      List.for_all
        (fun j ->
          Int64.to_int (Int64.shift_right_logical w (8 * j)) land 0xff
          = Cipher.Pad.byte_at pad (Int64.add pos (Int64.of_int j)))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let () =
  Alcotest.run "cipher"
    [
      ( "rc4",
        [
          Alcotest.test_case "reference vectors" `Quick test_rc4_vectors;
          Alcotest.test_case "involution" `Quick test_rc4_involution;
          Alcotest.test_case "copy checkpoint" `Quick test_rc4_copy_checkpoint;
          Alcotest.test_case "sequential dependence" `Quick
            test_rc4_sequential_dependence;
          Alcotest.test_case "key validation" `Quick test_rc4_key_validation;
        ] );
      ( "pad",
        [
          Alcotest.test_case "block64 vs byte_at" `Quick test_pad_block64_consistency;
          qcheck prop_pad_involution;
          qcheck prop_pad_out_of_order;
          qcheck prop_pad_copy_fused;
          qcheck prop_pad_word64_at;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "rfc 8439 keystream block" `Quick
            test_chacha_block_vector;
          Alcotest.test_case "rfc 8439 encryption" `Quick
            test_chacha_encrypt_vector;
          Alcotest.test_case "out-of-order halves" `Quick test_chacha_out_of_order;
          Alcotest.test_case "epoch derivation" `Quick test_chacha_derive;
          qcheck prop_chacha_word64_at;
        ] );
      ( "poly1305",
        [
          Alcotest.test_case "rfc 8439 tag" `Quick test_poly1305_vector;
          qcheck prop_poly1305_feed_agreement;
        ] );
      ( "aead",
        [
          Alcotest.test_case "rfc 8439 seal/open" `Quick test_aead_vector;
          Alcotest.test_case "tamper rejected" `Quick test_aead_tamper;
          qcheck prop_aead_fused_combinators;
        ] );
      ( "chain",
        [
          Alcotest.test_case "iv matters" `Quick test_chain_iv_matters;
          Alcotest.test_case "reorder detected" `Quick test_chain_reorder_detected;
          Alcotest.test_case "bad length" `Quick test_chain_bad_length;
          Alcotest.test_case "per-ADU IV independence" `Quick
            test_chain_per_adu_iv_restores_independence;
          qcheck prop_chain_round_trip;
        ] );
    ]
