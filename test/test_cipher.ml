open Bufkit

let qcheck t = QCheck_alcotest.to_alcotest t
let buf = Bytebuf.of_string

let hex s =
  String.concat ""
    (List.init (Bytebuf.length s) (fun i -> Printf.sprintf "%02X" (Bytebuf.get_uint8 s i)))

(* --- RC4 --- *)

(* The classic RC4 reference vectors. *)
let test_rc4_vectors () =
  let cases =
    [
      ("Key", "Plaintext", "BBF316E8D940AF0AD3");
      ("Wiki", "pedia", "1021BF0420");
      ("Secret", "Attack at dawn", "45A01F645FC35B383552544B9BF5");
    ]
  in
  List.iter
    (fun (key, plain, expect) ->
      let rc4 = Cipher.Rc4.create ~key in
      Alcotest.(check string) key expect (hex (Cipher.Rc4.transform rc4 (buf plain))))
    cases

let test_rc4_involution () =
  let plain = buf "some plaintext of moderate length" in
  let c = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k1") plain in
  let p = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k1") c in
  Alcotest.(check bool) "decrypts" true (Bytebuf.equal p plain)

let test_rc4_copy_checkpoint () =
  let a = Cipher.Rc4.create ~key:"checkpoint" in
  (* Advance, checkpoint, then verify the copy replays the same stream. *)
  for _ = 1 to 100 do
    ignore (Cipher.Rc4.keystream_byte a)
  done;
  let b = Cipher.Rc4.copy a in
  let from_a = List.init 16 (fun _ -> Cipher.Rc4.keystream_byte a) in
  let from_b = List.init 16 (fun _ -> Cipher.Rc4.keystream_byte b) in
  Alcotest.(check (list int)) "checkpoint replay" from_a from_b

let test_rc4_sequential_dependence () =
  (* Decrypting the second half without the first half's keystream fails:
     the ordering constraint the paper attributes to chained/stream
     encryption. *)
  let plain = buf "0123456789abcdef0123456789abcdef" in
  let c = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k") plain in
  let second_half = Bytebuf.shift c 16 in
  let wrong = Cipher.Rc4.transform (Cipher.Rc4.create ~key:"k") second_half in
  Alcotest.(check bool) "out-of-order decrypt garbles" false
    (Bytebuf.equal wrong (Bytebuf.shift plain 16))

let test_rc4_key_validation () =
  (match Cipher.Rc4.create ~key:"" with
  | _ -> Alcotest.fail "empty key accepted"
  | exception Invalid_argument _ -> ());
  match Cipher.Rc4.create ~key:(String.make 257 'x') with
  | _ -> Alcotest.fail "oversized key accepted"
  | exception Invalid_argument _ -> ()

(* --- Pad (seekable) --- *)

let prop_pad_involution =
  QCheck.Test.make ~name:"pad: transform twice = id" ~count:300
    QCheck.(triple int64 int64 (string_of_size Gen.(0 -- 100)))
    (fun (key, pos0, s) ->
      let pos = Int64.logand pos0 0xFFFFFFFFL in
      let pad = Cipher.Pad.create ~key in
      let b = buf s in
      Cipher.Pad.transform_at pad ~pos b;
      Cipher.Pad.transform_at pad ~pos b;
      Bytebuf.to_string b = s)

let prop_pad_out_of_order =
  QCheck.Test.make ~name:"pad: halves in any order = whole" ~count:300
    QCheck.(pair int64 (string_of_size Gen.(2 -- 100)))
    (fun (key, s) ->
      let pad = Cipher.Pad.create ~key in
      let whole = buf s in
      Cipher.Pad.transform_at pad ~pos:1000L whole;
      let parts = buf s in
      let cut = String.length s / 2 in
      let second = Bytebuf.shift parts cut in
      (* Decrypt the second range first: position-addressing makes order
         irrelevant. *)
      Cipher.Pad.transform_at pad ~pos:(Int64.of_int (1000 + cut)) second;
      Cipher.Pad.transform_at pad ~pos:1000L (Bytebuf.take parts cut);
      Bytebuf.equal whole parts)

let prop_pad_copy_fused =
  QCheck.Test.make ~name:"pad: fused copy-transform = separate" ~count:300
    QCheck.(pair int64 (string_of_size Gen.(0 -- 100)))
    (fun (key, s) ->
      let pad = Cipher.Pad.create ~key in
      let src = buf s in
      let dst = Bytebuf.create (String.length s) in
      Cipher.Pad.transform_copy_at pad ~pos:42L ~src ~dst;
      let reference = buf s in
      Cipher.Pad.transform_at pad ~pos:42L reference;
      Bytebuf.equal dst reference && Bytebuf.to_string src = s)

let test_pad_block64_consistency () =
  let pad = Cipher.Pad.create ~key:77L in
  for idx = 0 to 3 do
    let blk = Cipher.Pad.block64 pad (Int64.of_int idx) in
    for off = 0 to 7 do
      let expect =
        Int64.to_int (Int64.shift_right_logical blk (off * 8)) land 0xff
      in
      Alcotest.(check int)
        (Printf.sprintf "byte %d.%d" idx off)
        expect
        (Cipher.Pad.byte_at pad (Int64.of_int ((idx * 8) + off)))
    done
  done

(* --- Chain (CBC) --- *)

let key = Cipher.Chain.key_of_int64 0xFEEDFACEL

let prop_chain_round_trip =
  QCheck.Test.make ~name:"chain: decrypt(encrypt) = id" ~count:300
    QCheck.(pair int64 (int_range 0 16))
    (fun (iv, nblocks) ->
      let s = String.init (nblocks * 8) (fun i -> Char.chr ((i * 31 + 7) land 0xff)) in
      let c = Cipher.Chain.encrypt key ~iv (buf s) in
      Bytebuf.to_string (Cipher.Chain.decrypt key ~iv c) = s)

let test_chain_iv_matters () =
  let p = buf "16 bytes of data" in
  let c1 = Cipher.Chain.encrypt key ~iv:1L p in
  let c2 = Cipher.Chain.encrypt key ~iv:2L p in
  Alcotest.(check bool) "distinct ciphertexts" false (Bytebuf.equal c1 c2)

let test_chain_reorder_detected () =
  (* Swapping two ciphertext blocks corrupts the plaintext downstream of
     the swap — chaining "guards against malicious reordering". *)
  let p = buf "blockAAAblockBBBblockCCC" in
  let c = Cipher.Chain.encrypt key ~iv:9L p in
  let swapped = Bytebuf.copy c in
  Bytebuf.blit ~src:c ~src_pos:8 ~dst:swapped ~dst_pos:0 ~len:8;
  Bytebuf.blit ~src:c ~src_pos:0 ~dst:swapped ~dst_pos:8 ~len:8;
  let d = Cipher.Chain.decrypt key ~iv:9L swapped in
  Alcotest.(check bool) "reorder garbles" false (Bytebuf.equal d p)

let test_chain_bad_length () =
  match Cipher.Chain.encrypt key ~iv:0L (buf "seven b") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_chain_per_adu_iv_restores_independence () =
  (* Restarting the chain at each ADU boundary (fresh IV per ADU) lets
     ADUs decrypt independently — the ALF synchronisation-point fix. *)
  let adu1 = buf "first adu 16byte" and adu2 = buf "second adu16byte" in
  let c1 = Cipher.Chain.encrypt key ~iv:101L adu1 in
  let c2 = Cipher.Chain.encrypt key ~iv:102L adu2 in
  (* Decrypt adu2 without ever seeing adu1. *)
  let d2 = Cipher.Chain.decrypt key ~iv:102L c2 in
  Alcotest.(check bool) "independent decrypt" true (Bytebuf.equal d2 adu2);
  let d1 = Cipher.Chain.decrypt key ~iv:101L c1 in
  Alcotest.(check bool) "first too" true (Bytebuf.equal d1 adu1)

let prop_pad_word64_at =
  QCheck.Test.make ~name:"pad: word64_at = 8 byte_at at any offset" ~count:500
    QCheck.(pair int64 (int_bound 10000))
    (fun (key, pos) ->
      let pad = Cipher.Pad.create ~key in
      let pos = Int64.of_int pos in
      let w = Cipher.Pad.word64_at pad pos in
      List.for_all
        (fun j ->
          Int64.to_int (Int64.shift_right_logical w (8 * j)) land 0xff
          = Cipher.Pad.byte_at pad (Int64.add pos (Int64.of_int j)))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let () =
  Alcotest.run "cipher"
    [
      ( "rc4",
        [
          Alcotest.test_case "reference vectors" `Quick test_rc4_vectors;
          Alcotest.test_case "involution" `Quick test_rc4_involution;
          Alcotest.test_case "copy checkpoint" `Quick test_rc4_copy_checkpoint;
          Alcotest.test_case "sequential dependence" `Quick
            test_rc4_sequential_dependence;
          Alcotest.test_case "key validation" `Quick test_rc4_key_validation;
        ] );
      ( "pad",
        [
          Alcotest.test_case "block64 vs byte_at" `Quick test_pad_block64_consistency;
          qcheck prop_pad_involution;
          qcheck prop_pad_out_of_order;
          qcheck prop_pad_copy_fused;
          qcheck prop_pad_word64_at;
        ] );
      ( "chain",
        [
          Alcotest.test_case "iv matters" `Quick test_chain_iv_matters;
          Alcotest.test_case "reorder detected" `Quick test_chain_reorder_detected;
          Alcotest.test_case "bad length" `Quick test_chain_bad_length;
          Alcotest.test_case "per-ADU IV independence" `Quick
            test_chain_per_adu_iv_restores_independence;
          qcheck prop_chain_round_trip;
        ] );
    ]
