(* The AEAD record layer: ChaCha20/Poly1305 sealing as it rides the
   transport. The contract under test is threefold: sealing is invisible
   to an honest peer (round-trip identity, in and out of order, across
   rekeys), every forged or tampered bit is a counted auth failure and
   never a panic, and the fused plan stages agree bit-for-bit with the
   serial oracle — including across Ilp_par worker domains. *)

open Bufkit
open Netsim
open Alf_core

let qcheck t = QCheck_alcotest.to_alcotest t

let record ?dir () = Secure.Record.of_int64 ?dir 0x5EC7E57L

let name ~index ~len =
  Adu.name ~dest_off:(index * len) ~dest_len:len ~stream:9 ~index ()

let payload_of ~index ~len =
  Bytebuf.of_string (String.init len (fun j -> Char.chr ((index + j) land 0xff)))

let adu_of ~index ~len = Adu.make (name ~index ~len) (payload_of ~index ~len)

(* --- Record seal/open --- *)

(* Boundary lengths around the 64-byte ChaCha20 block: empty payloads,
   one byte, one under/at/over a block — the same edge family the
   Crc32.combine len2=0 fix guards. *)
let test_record_boundary_lengths () =
  let rc = record () in
  List.iter
    (fun len ->
      let adu = adu_of ~index:3 ~len in
      let sealed = Secure.Record.seal_adu rc adu in
      Alcotest.(check int)
        (Printf.sprintf "sealed length (%d)" len)
        (len + Secure.Record.overhead)
        (Bytebuf.length sealed.Adu.payload);
      match Secure.Record.open_adu rc sealed with
      | Ok opened ->
          Alcotest.(check string)
            (Printf.sprintf "round trip (%d)" len)
            (Bytebuf.to_string adu.Adu.payload)
            (Bytebuf.to_string opened.Adu.payload)
      | Error e -> Alcotest.fail (Printf.sprintf "open (%d): %s" len e))
    [ 0; 1; 63; 64; 65 ]

let test_record_out_of_order_open () =
  let tx = record () and rx = record () in
  let sealed =
    List.map (fun i -> Secure.Record.seal_adu tx (adu_of ~index:i ~len:100))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  (* Open in scrambled order: per-ADU nonces chain no state. *)
  List.iter
    (fun i ->
      match Secure.Record.open_adu rx (List.nth sealed i) with
      | Ok opened ->
          Alcotest.(check string) "content"
            (Bytebuf.to_string (payload_of ~index:i ~len:100))
            (Bytebuf.to_string opened.Adu.payload)
      | Error e -> Alcotest.fail e)
    [ 4; 0; 5; 2; 1; 3 ]

let test_record_wrong_key_fails () =
  let tx = record () and rx = Secure.Record.of_int64 0xBADL in
  let sealed = Secure.Record.seal_adu tx (adu_of ~index:0 ~len:40) in
  match Secure.Record.open_adu rx sealed with
  | Ok _ -> Alcotest.fail "foreign key accepted"
  | Error _ -> ()

let test_record_runt_payload_fails () =
  let rx = record () in
  (* Shorter than the trailer: must be a counted refusal, not a raise. *)
  match
    Secure.Record.open_payload rx (name ~index:0 ~len:8)
      (Bytebuf.of_string "too-short")
  with
  | Ok _ -> Alcotest.fail "runt accepted"
  | Error _ -> ()

(* Epoch rekeying: the receiver's two-epoch window accepts cur-1..cur+1
   and rolls forward on a verified newer epoch. *)
let test_record_epoch_window () =
  let tx = record () and rx = record () in
  let old = Secure.Record.seal_adu tx (adu_of ~index:0 ~len:50) in
  Secure.Record.rekey tx;
  Alcotest.(check int) "sender epoch" 1 (Secure.Record.epoch tx);
  let fresh = Secure.Record.seal_adu tx (adu_of ~index:1 ~len:50) in
  (* cur+1 verifies and rolls the receiver window forward... *)
  (match Secure.Record.open_adu rx fresh with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("epoch cur+1 refused: " ^ e));
  Alcotest.(check int) "window rolled" 1 (Secure.Record.epoch rx);
  (* ...and a retransmission sealed before the rekey still opens. *)
  (match Secure.Record.open_adu rx old with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("epoch cur-1 refused: " ^ e));
  (* Two rekeys ahead is outside the window: refused even with the key. *)
  Secure.Record.rekey tx;
  Secure.Record.rekey tx;
  let far = Secure.Record.seal_adu tx (adu_of ~index:2 ~len:50) in
  match Secure.Record.open_adu rx far with
  | Ok _ -> Alcotest.fail "epoch cur+2 accepted"
  | Error _ -> ()

let test_record_dir_separates_keys () =
  let a = record ~dir:0 () and b = record ~dir:1 () in
  let sealed = Secure.Record.seal_adu a (adu_of ~index:0 ~len:32) in
  match Secure.Record.open_adu b sealed with
  | Ok _ -> Alcotest.fail "cross-direction record accepted"
  | Error _ -> ()

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record: seal/open round-trips any payload"
    ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (int_bound 10_000))
    (fun (s, index) ->
      let rc = record () in
      let adu =
        Adu.make
          (Adu.name ~dest_off:(index * 7) ~dest_len:(String.length s)
             ~stream:2 ~index ())
          (Bytebuf.of_string s)
      in
      match Secure.Record.open_adu rc (Secure.Record.seal_adu rc adu) with
      | Ok opened -> Bytebuf.to_string opened.Adu.payload = s
      | Error _ -> false)

(* Every single-bit flip anywhere in the sealed payload — ciphertext,
   epoch word or tag — must fail authentication, quietly. *)
let prop_record_tamper_any_bit =
  let len = 45 in
  QCheck.Test.make ~name:"record: any flipped bit fails auth" ~count:400
    QCheck.(int_bound (((len + Secure.Record.overhead) * 8) - 1))
    (fun bit ->
      let rc = record () in
      let sealed = Secure.Record.seal_adu rc (adu_of ~index:7 ~len) in
      let p = Bytebuf.copy sealed.Adu.payload in
      Bytebuf.set_uint8 p (bit / 8)
        (Bytebuf.get_uint8 p (bit / 8) lxor (1 lsl (bit mod 8)));
      match Secure.Record.open_adu rc (Adu.make sealed.Adu.name p) with
      | Ok _ -> false
      | Error _ -> true)

(* Flipping any AAD-covered header field — stream, index, placement —
   must also fail auth: a unit cannot be replayed under another name. *)
let prop_record_tamper_name =
  QCheck.Test.make ~name:"record: renamed unit fails auth" ~count:200
    QCheck.(pair (int_range 0 3) (int_range 1 1000))
    (fun (field, delta) ->
      let rc = record () in
      let sealed = Secure.Record.seal_adu rc (adu_of ~index:5 ~len:64) in
      let n = sealed.Adu.name in
      let forged =
        match field with
        | 0 -> Adu.name ~dest_off:n.Adu.dest_off ~dest_len:n.Adu.dest_len
                 ~stream:((n.Adu.stream + delta) land 0xffff)
                 ~index:n.Adu.index ()
        | 1 -> Adu.name ~dest_off:n.Adu.dest_off ~dest_len:n.Adu.dest_len
                 ~stream:n.Adu.stream ~index:(n.Adu.index + delta) ()
        | 2 -> Adu.name ~dest_off:(n.Adu.dest_off + delta)
                 ~dest_len:n.Adu.dest_len ~stream:n.Adu.stream
                 ~index:n.Adu.index ()
        | _ -> Adu.name ~dest_off:n.Adu.dest_off
                 ~dest_len:(n.Adu.dest_len + delta) ~stream:n.Adu.stream
                 ~index:n.Adu.index ()
      in
      match
        Secure.Record.open_adu rc (Adu.make forged sealed.Adu.payload)
      with
      | Ok _ -> false
      | Error _ -> true)

(* --- Ilp_par: AEAD across worker domains --- *)

(* The pooled and serial executions of the same Aead_seal batch must
   produce identical ciphertext and identical tags — the deterministic
   sharding claim — and, unlike Rc4_stream, must not trip the
   needs_in_order serial fallback. *)
let test_ilp_par_aead_tag_agreement () =
  let key = Cipher.Chacha20.key_of_int64 0x9A9L in
  let aad = Bytebuf.of_string "batch-aad" in
  let adus =
    Array.init 16 (fun i -> adu_of ~index:i ~len:(200 + (17 * i)))
  in
  let plan adu =
    [
      Ilp.Aead_seal
        {
          Ilp.aead_key = key;
          aead_n0 = 0;
          aead_n1 = adu.Adu.name.Adu.stream;
          aead_n2 = adu.Adu.name.Adu.index;
          aead_aad = aad;
        };
      Ilp.Checksum Checksum.Kind.Crc32;
    ]
  in
  let serial = Ilp_par.run ~plan adus in
  let pool = Par.Pool.create ~domains:3 () in
  let parallel = Ilp_par.run ~pool ~plan adus in
  Par.Pool.shutdown pool;
  Alcotest.(check int) "no serial fallback" 0 parallel.Ilp_par.serial_fallback;
  Alcotest.(check bool) "ran on workers" true
    (parallel.Ilp_par.parallel_adus > 0);
  Array.iteri
    (fun i rs ->
      let rp = parallel.Ilp_par.results.(i) in
      Alcotest.(check string)
        (Printf.sprintf "ciphertext %d" i)
        (Bytebuf.to_string rs.Ilp.output)
        (Bytebuf.to_string rp.Ilp.output);
      Alcotest.(check bool)
        (Printf.sprintf "tag %d" i)
        true
        (rs.Ilp.tags = rp.Ilp.tags && List.length rs.Ilp.tags = 1))
    serial.Ilp_par.results

let test_ilp_par_rc4_still_serializes () =
  let adus = Array.init 8 (fun i -> adu_of ~index:i ~len:64) in
  let plan _ = [ Ilp.Rc4_stream { key = "ablate" } ] in
  let pool = Par.Pool.create ~domains:2 () in
  let o = Ilp_par.run ~pool ~plan adus in
  Par.Pool.shutdown pool;
  Alcotest.(check int) "all serial" 8 o.Ilp_par.serial_fallback;
  Alcotest.(check int) "none parallel" 0 o.Ilp_par.parallel_adus

(* --- Transport end-to-end under the record layer --- *)

let secure_world ~loss =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42L in
  let net =
    Topology.point_to_point ~engine ~rng
      ~impair:(Impair.make ~loss ~reorder:0.3 ())
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let delivered = ref [] in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub
      ~port:7000 ~stream:1 ~secure:(record ())
      ~deliver:(fun adu ->
        delivered :=
          (adu.Adu.name.Adu.index, Bytebuf.to_string adu.Adu.payload)
          :: !delivered)
      ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2
      ~peer_port:7000 ~port:7001 ~stream:1 ~policy:Recovery.Transport_buffer
      ~secure:(record ()) ()
  in
  (engine, sender, receiver, delivered)

let test_transport_secure_clean () =
  let engine, sender, receiver, delivered =
    secure_world ~loss:0.0
  in
  for i = 0 to 19 do
    Alf_transport.send_adu sender (adu_of ~index:i ~len:600)
  done;
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check int) "all delivered" 20 (List.length !delivered);
  List.iter
    (fun (i, s) ->
      Alcotest.(check string) "plaintext restored"
        (Bytebuf.to_string (payload_of ~index:i ~len:600))
        s)
    !delivered;
  let st = Alf_transport.receiver_stats receiver in
  Alcotest.(check int) "no auth drops" 0 st.Alf_transport.adus_auth_dropped

(* Loss + reorder: fragments arrive out of order, ADUs complete out of
   order, and every one still opens — the reorder-safe nonce claim on
   the live transport, not just the Record unit. *)
let test_transport_secure_lossy_reordered () =
  let engine, sender, receiver, delivered =
    secure_world ~loss:0.08
  in
  for i = 0 to 49 do
    Alf_transport.send_adu sender (adu_of ~index:i ~len:2600)
  done;
  Alf_transport.close sender;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check int) "all delivered" 50 (List.length !delivered);
  let st = Alf_transport.receiver_stats receiver in
  Alcotest.(check bool) "deliveries out of order" true
    (st.Alf_transport.out_of_order > 0);
  Alcotest.(check int) "no auth drops" 0 st.Alf_transport.adus_auth_dropped;
  List.iter
    (fun (i, s) ->
      Alcotest.(check string) "plaintext restored"
        (Bytebuf.to_string (payload_of ~index:i ~len:2600))
        s)
    !delivered

(* send_value: the fused marshal+seal+CRC single pass against the
   receiver's open-at-deliver seam. The delivered payload must be the
   plaintext XDR encoding, byte for byte. *)
let test_transport_secure_send_value () =
  let engine, sender, receiver, delivered =
    secure_world ~loss:0.0
  in
  ignore receiver;
  let schema = Wire.Xdr.S_struct [ Wire.Xdr.S_int; Wire.Xdr.S_string ] in
  let value i =
    Wire.Value.Record
      [ ("k", Wire.Value.Int i); ("s", Wire.Value.Utf8 (String.make 37 'x')) ]
  in
  let expect = Array.init 8 (fun i -> Wire.Xdr.encode schema (value i)) in
  let off = ref 0 in
  for i = 0 to 7 do
    let len = Bytebuf.length expect.(i) in
    Alf_transport.send_value sender
      ~name:(Adu.name ~dest_off:!off ~dest_len:len ~stream:1 ~index:i ())
      (Ilp.Marshal_xdr (schema, value i));
    off := !off + len
  done;
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;
  Alcotest.(check int) "all delivered" 8 (List.length !delivered);
  List.iter
    (fun (i, s) ->
      Alcotest.(check string) "fused-sealed encoding restored"
        (Bytebuf.to_string expect.(i))
        s)
    !delivered

let () =
  Alcotest.run "secure"
    [
      ( "record",
        [
          Alcotest.test_case "boundary lengths" `Quick
            test_record_boundary_lengths;
          Alcotest.test_case "out-of-order open" `Quick
            test_record_out_of_order_open;
          Alcotest.test_case "wrong key fails" `Quick
            test_record_wrong_key_fails;
          Alcotest.test_case "runt payload fails" `Quick
            test_record_runt_payload_fails;
          Alcotest.test_case "epoch window" `Quick test_record_epoch_window;
          Alcotest.test_case "direction separation" `Quick
            test_record_dir_separates_keys;
          qcheck prop_record_roundtrip;
          qcheck prop_record_tamper_any_bit;
          qcheck prop_record_tamper_name;
        ] );
      ( "ilp-par",
        [
          Alcotest.test_case "pooled tags agree with serial" `Quick
            test_ilp_par_aead_tag_agreement;
          Alcotest.test_case "rc4 ablation still serializes" `Quick
            test_ilp_par_rc4_still_serializes;
        ] );
      ( "transport",
        [
          Alcotest.test_case "clean secure transfer" `Quick
            test_transport_secure_clean;
          Alcotest.test_case "lossy reordered secure transfer" `Quick
            test_transport_secure_lossy_reordered;
          Alcotest.test_case "fused send_value" `Quick
            test_transport_secure_send_value;
        ] );
    ]
