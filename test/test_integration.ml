(* Cross-library integration: full stacks assembled the way the examples
   and benchmarks assemble them. *)

open Bufkit
open Netsim
open Atmsim
open Alf_core

(* --- Typed values over the TCP stack: encode, stream, decode --- *)

let test_values_over_tcp () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.02)
      ~bandwidth_bps:8e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
  let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
  let value = Wire.Value.int_array (Array.init 2000 (fun i -> (i * 7) - 3000)) in
  let encoded = Wire.Ber.encode value in
  let got = Buffer.create 1024 in
  Transport.Tcp.on_deliver receiver (fun chunk ->
      Buffer.add_string got (Bytebuf.to_string chunk));
  Transport.Tcp.send sender encoded;
  Transport.Tcp.finish sender;
  Engine.run ~until:120.0 engine;
  let decoded = Wire.Ber.decode (Bytebuf.of_string (Buffer.contents got)) in
  Alcotest.(check bool) "value survives the stack" true (Wire.Value.equal decoded value)

(* --- The headline E6 comparison as a coarse invariant --- *)

(* Application presentation conversion modelled as the bottleneck; under
   loss, ALF (out-of-order ADUs) must finish converting no later than the
   in-order byte stream does, and clearly earlier at a meaningful loss
   rate. *)
let completion_time ~alf ~loss =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:4242L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy loss)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.01 ~a:1 ~b:2 ()
  in
  let total_bytes = 200_000 in
  let app = Pipeline.create ~engine ~rate_bps:12e6 () in
  if alf then begin
    let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
    let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
    let _receiver =
      Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:9 ~stream:1
        ~deliver:(fun adu -> Pipeline.feed app ~bytes:(Bytebuf.length adu.Adu.payload))
        ()
    in
    let sender =
      Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:9 ~port:10 ~stream:1
        ~policy:Recovery.Transport_buffer
        ~config:{ Alf_transport.default_sender_config with Alf_transport.pace_bps = Some 8e6 }
        ()
    in
    let adu_size = 4000 in
    for i = 0 to (total_bytes / adu_size) - 1 do
      Alf_transport.send_adu sender
        (Adu.make
           (Adu.name ~dest_off:(i * adu_size) ~dest_len:adu_size ~stream:1 ~index:i ())
           (Bytebuf.create adu_size))
    done;
    Alf_transport.close sender
  end
  else begin
    let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
    let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
    Transport.Tcp.on_deliver receiver (fun chunk ->
        Pipeline.feed app ~bytes:(Bytebuf.length chunk));
    Transport.Tcp.send sender (Bytebuf.create total_bytes);
    Transport.Tcp.finish sender
  end;
  Engine.run ~until:600.0 engine;
  Alcotest.(check int)
    (Printf.sprintf "all bytes converted (alf=%b loss=%.2f)" alf loss)
    total_bytes (Pipeline.processed_bytes app);
  Pipeline.finish_time app

let test_alf_vs_tcp_pipeline_clean () =
  let tcp = completion_time ~alf:false ~loss:0.0 in
  let alf = completion_time ~alf:true ~loss:0.0 in
  (* Clean network: both finish in the same ballpark. *)
  Alcotest.(check bool) "same order of magnitude" true (alf < tcp *. 3.0 && tcp < alf *. 3.0)

let test_alf_vs_tcp_pipeline_lossy () =
  let tcp = completion_time ~alf:false ~loss:0.05 in
  let alf = completion_time ~alf:true ~loss:0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "ALF (%.3fs) not slower than TCP (%.3fs) under loss" alf tcp)
    true (alf <= tcp *. 1.1)

(* --- ADUs across the ATM substrate with cell loss --- *)

let test_adus_over_atm_with_cell_loss () =
  let rng = Rng.create ~seed:7L in
  let n_adus = 60 in
  let adu_payload = 600 in
  let delivered = ref 0 in
  let reasm =
    Aal5.reassembler
      ~deliver:(fun frame ->
        match Adu.decode frame with
        | adu ->
            Alcotest.(check int) "payload intact" adu_payload
              (Bytebuf.length adu.Adu.payload);
            incr delivered
        | exception Adu.Decode_error _ -> Alcotest.fail "corrupt ADU delivered")
      ()
  in
  let lost_frames = ref 0 in
  for i = 0 to n_adus - 1 do
    let adu =
      Adu.make
        (Adu.name ~dest_off:(i * adu_payload) ~dest_len:adu_payload ~stream:3 ~index:i ())
        (Bytebuf.init adu_payload (fun j -> Char.chr ((i + j) land 0xff)))
    in
    let cells = Aal5.segment (Adu.encode adu) in
    let any_lost = ref false in
    List.iter
      (fun (payload, eof) ->
        (* 2% independent cell loss. *)
        if Rng.bool rng ~p:0.02 then any_lost := true
        else Aal5.push reasm payload ~eof)
      cells;
    if !any_lost then incr lost_frames
  done;
  let stats = Aal5.stats reasm in
  (* Conservation: a frame with a lost cell never delivers, and a lost
     end-of-frame cell can drag the following frame into the same abort —
     so delivered + lost can only undershoot the total, never overshoot,
     and every loss shows up as at least one CRC abort. *)
  Alcotest.(check bool) "some loss occurred" true (!lost_frames > 0);
  Alcotest.(check bool) "aborts seen" true (stats.Aal5.aborted_crc >= 1);
  Alcotest.(check bool) "aborts bounded by lost frames" true
    (stats.Aal5.aborted_crc <= !lost_frames);
  Alcotest.(check bool) "no frame both lost and delivered" true
    (!delivered + !lost_frames <= n_adus);
  Alcotest.(check bool) "most frames survive 2% cell loss" true
    (!delivered > n_adus / 2)

(* --- ILP plan equals TCP+separate passes on identical data --- *)

let test_ilp_stack_consistency () =
  (* The received, decrypted, checksummed output of a fused receive loop
     equals the layered one on data that crossed the simulated network. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:8L in
  let net =
    Topology.point_to_point ~engine ~rng ~bandwidth_bps:8e6 ~delay:0.002 ~a:1 ~b:2 ()
  in
  let sender = Transport.Tcp.create ~engine ~node:net.Topology.a ~peer:2 () in
  let receiver = Transport.Tcp.create ~engine ~node:net.Topology.b ~peer:1 () in
  let key = 0x1234L in
  let plaintext = String.init 50_000 (fun i -> Char.chr ((i * 31) land 0xff)) in
  let ciphertext = Bytebuf.of_string plaintext in
  Cipher.Pad.transform_at (Cipher.Pad.create ~key) ~pos:0L ciphertext;
  let received = Buffer.create 1024 in
  Transport.Tcp.on_deliver receiver (fun c -> Buffer.add_string received (Bytebuf.to_string c));
  Transport.Tcp.send sender ciphertext;
  Transport.Tcp.finish sender;
  Engine.run ~until:60.0 engine;
  let wire_data = Bytebuf.of_string (Buffer.contents received) in
  let plan =
    [ Ilp.Xor_pad { key; pos = 0L }; Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ]
  in
  let fused = Ilp.run_fused plan wire_data in
  let layered = Ilp.run_layered plan wire_data in
  Alcotest.(check bool) "fused = layered" true
    (Bytebuf.equal fused.Ilp.output layered.Ilp.output);
  Alcotest.(check string) "decrypts to the original" plaintext
    (Bytebuf.to_string fused.Ilp.output);
  Alcotest.(check (list (pair (of_pp Checksum.Kind.pp) int)))
    "checksum covers plaintext"
    [ (Checksum.Kind.Internet, Checksum.Internet.digest (Bytebuf.of_string plaintext)) ]
    fused.Ilp.checksums

(* --- ALF over ATM: the same transport, cells underneath --- *)

let test_alf_over_atm_bearer () =
  (* The portability claim: the unchanged ALF machinery runs over an
     AAL5/cell bearer. The link's loss applies PER CELL (every packet on
     the wire is one 53-byte cell), so a single lost cell costs a whole
     frame (= fragment) and NACK recovery repairs it per ADU. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:77L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.005)
      ~queue_limit:8192 ~bandwidth_bps:50e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let bearer_a = Bearer.create ~engine ~node:net.Topology.a () in
  let bearer_b = Bearer.create ~engine ~node:net.Topology.b () in
  let io_a = Dgram.of_atm bearer_a in
  let io_b = Dgram.of_atm bearer_b in
  let file_size = 60_000 in
  let file = Bytebuf.create file_size in
  Rng.fill_bytes (Rng.create ~seed:3L) file;
  let sink = Sink.create ~size:file_size in
  let receiver =
    Alf_transport.receiver_io ~sched:(Netsim.Engine.sched engine) ~io:io_b ~port:5 ~stream:1
      ~deliver:(fun adu ->
        match Sink.write_adu sink adu with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
      ()
  in
  let sender =
    Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io:io_a ~peer:2 ~peer_port:5 ~port:6
      ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  List.iter (Alf_transport.send_adu sender)
    (Framing.frames_of_buffer ~stream:1 ~adu_size:2500 file);
  Alf_transport.close sender;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "complete over cells" true (Alf_transport.complete receiver);
  Alcotest.(check bool) "file intact" true (Bytebuf.equal (Sink.contents sink) file);
  let bs = Bearer.stats bearer_a in
  Alcotest.(check bool) "really went over cells" true (bs.Bearer.cells_sent > 1000);
  (* Cell loss happened and was repaired above the bearer. *)
  let s = Alf_transport.sender_stats sender in
  Alcotest.(check bool) "adu-level repair occurred" true
    (s.Alf_transport.adus_retransmitted > 0)

(* --- Encrypted ALF session end to end --- *)

let test_encrypted_alf_over_lossy_link () =
  (* Per-ADU sealing with a position-keyed pad: every ADU decrypts on
     arrival (out of order), the fused open kernel verifies the plaintext
     checksum, and the file reassembles bit-exact. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:31337L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.07)
      ~queue_limit:1024 ~bandwidth_bps:20e6 ~delay:0.008 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let key = 0x5EC2E7L in
  let file_size = 80_000 in
  let file = Bytebuf.create file_size in
  Rng.fill_bytes (Rng.create ~seed:55L) file;
  let sink = Sink.create ~size:file_size in
  let checksums = Hashtbl.create 64 in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:11 ~stream:1
      ~deliver:(fun sealed ->
        let opened, cksum = Secure.open_adu ~key sealed in
        (match Hashtbl.find_opt checksums opened.Adu.name.Adu.index with
        | Some expect -> Alcotest.(check int) "fused plaintext checksum" expect cksum
        | None -> Alcotest.fail "unknown ADU index");
        match Sink.write_adu sink opened with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
      ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:11 ~port:12
      ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  List.iter
    (fun adu ->
      let sealed, cksum = Secure.seal_summed ~key adu in
      Hashtbl.replace checksums adu.Adu.name.Adu.index cksum;
      Alf_transport.send_adu sender sealed)
    (Framing.frames_of_buffer ~stream:1 ~adu_size:3000 file);
  Alf_transport.close sender;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete receiver);
  Alcotest.(check bool) "file decrypted bit-exact" true
    (Bufkit.Bytebuf.equal (Sink.contents sink) file)

(* --- In-order delivery as an overlay above ALF --- *)

let test_ordered_overlay_over_alf () =
  (* "TCP semantics" reconstructed ABOVE the ADU layer: the Ordered
     adapter releases ADUs in index order while checksums, decryption and
     recovery all ran out of order underneath; with a no-recovery sender,
     skip() lets the stream continue past losses the application accepts. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:8181L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.08)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let stream_order = ref [] in
  let ordered =
    Ordered.create ~deliver:(fun adu -> stream_order := adu.Adu.name.Adu.index :: !stream_order) ()
  in
  let receiver =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:31 ~stream:1
      ~deliver:(Ordered.offer ordered) ()
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:31 ~port:32
      ~stream:1 ~policy:Recovery.Transport_buffer ()
  in
  let n = 40 in
  for i = 0 to n - 1 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.create 1500))
  done;
  Alf_transport.close sender;
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "underlying transport complete" true
    (Alf_transport.complete receiver);
  Alcotest.(check (list int)) "in order above, out of order below"
    (List.init n (fun i -> i))
    (List.rev !stream_order);
  Alcotest.(check bool) "disorder actually happened underneath" true
    ((Alf_transport.receiver_stats receiver).Alf_transport.out_of_order > 0)

let test_ordered_overlay_skips_gone () =
  (* No-recovery: the sender declares losses gone; the overlay skips them
     so the ordered stream still terminates. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:8282L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.15)
      ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  let got = ref [] in
  let ordered =
    Ordered.create ~deliver:(fun adu -> got := adu.Adu.name.Adu.index :: !got) ()
  in
  let receiver = ref None in
  let r =
    Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:31 ~stream:1
      ~deliver:(Ordered.offer ordered) ()
  in
  receiver := Some r;
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:31 ~port:32
      ~stream:1 ~policy:Recovery.No_recovery ()
  in
  let n = 40 in
  for i = 0 to n - 1 do
    Alf_transport.send_adu sender
      (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.create 1500))
  done;
  Alf_transport.close sender;
  (* Bridge GONE notifications into the overlay as skips, polling the
     receiver's frontier as completion advances. *)
  Alf_transport.on_complete r (fun () ->
      for i = 0 to n - 1 do
        Ordered.skip ordered ~index:i
      done);
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "complete" true (Alf_transport.complete r);
  let st = Alf_transport.receiver_stats r in
  Alcotest.(check int) "ordered stream delivered the survivors"
    st.Alf_transport.adus_delivered (List.length !got);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending" true (ascending (List.rev !got));
  Alcotest.(check bool) "losses were skipped, not waited for" true
    (st.Alf_transport.adus_lost > 0)

(* --- ALF over striped channels with wildly different delays --- *)

let test_alf_over_striped_channels () =
  (* Three parallel paths, 2 ms / 20 ms / 60 ms one-way: round-robin
     striping reorders heavily, yet the unchanged ALF machinery completes
     because every fragment self-describes its ADU and offset. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:246L in
  let links =
    List.map
      (fun delay ->
        Topology.point_to_point ~engine ~rng ~impair:(Impair.lossy 0.02)
          ~queue_limit:1024 ~bandwidth_bps:10e6 ~delay ~a:1 ~b:2 ())
      [ 0.002; 0.02; 0.06 ]
  in
  let io_side pick =
    Dgram.striped
      (List.map
         (fun net ->
           Dgram.of_udp (Transport.Udp.create ~engine ~node:(pick net) ()))
         links)
  in
  let io_a = io_side (fun net -> net.Topology.a) in
  let io_b = io_side (fun net -> net.Topology.b) in
  let size = 60_000 in
  let file = Bytebuf.create size in
  Rng.fill_bytes (Rng.create ~seed:77L) file;
  let sink = Sink.create ~size in
  let receiver =
    Alf_transport.receiver_io ~sched:(Netsim.Engine.sched engine) ~io:io_b ~port:21 ~stream:1
      ~deliver:(fun adu ->
        match Sink.write_adu sink adu with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
      ()
  in
  let sender =
    Alf_transport.sender_io ~sched:(Netsim.Engine.sched engine) ~io:io_a ~peer:2 ~peer_port:21 ~port:22
      ~stream:1 ~policy:Recovery.Transport_buffer
      ~config:{ Alf_transport.default_sender_config with Alf_transport.mtu = 1000 }
      ()
  in
  List.iter (Alf_transport.send_adu sender)
    (Framing.frames_of_buffer ~stream:1 ~adu_size:2500 file);
  Alf_transport.close sender;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "complete across stripes" true
    (Alf_transport.complete receiver);
  Alcotest.(check bool) "file intact" true (Bytebuf.equal (Sink.contents sink) file);
  let r = Alf_transport.receiver_stats receiver in
  Alcotest.(check bool) "striping reordered ADUs heavily" true
    (r.Alf_transport.out_of_order > 5)

(* --- Sender-computed placement enables out-of-order file assembly --- *)

let test_out_of_order_file_assembly () =
  (* ADUs arrive shuffled; each lands at its sender-computed dest_off; the
     file is byte-identical. The paper's file-transfer argument. *)
  let rng = Rng.create ~seed:9L in
  let file = String.init 10_000 (fun i -> Char.chr ((i * 13) land 0xff)) in
  let adus =
    Framing.frames_of_buffer ~stream:0 ~adu_size:777 (Bytebuf.of_string file)
  in
  let arr = Array.of_list adus in
  Rng.shuffle rng arr;
  let out = Bytebuf.create (String.length file) in
  Array.iter
    (fun adu ->
      Bytebuf.blit ~src:adu.Adu.payload ~src_pos:0 ~dst:out
        ~dst_pos:adu.Adu.name.Adu.dest_off
        ~len:(Bytebuf.length adu.Adu.payload))
    arr;
  Alcotest.(check string) "file reassembled from shuffled ADUs" file
    (Bytebuf.to_string out)

(* --- Determinism: a seed fully determines a run --- *)

let test_seed_determinism () =
  let run () =
    let engine = Engine.create () in
    let rng = Rng.create ~seed:777L in
    let net =
      Topology.point_to_point ~engine ~rng
        ~impair:(Impair.make ~loss:0.07 ~duplicate:0.02 ~reorder:0.3 ~jitter:0.02 ())
        ~queue_limit:512 ~bandwidth_bps:10e6 ~delay:0.01 ~a:1 ~b:2 ()
    in
    let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
    let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
    let deliveries = ref [] in
    let receiver =
      Alf_transport.receiver ~sched:(Netsim.Engine.sched engine) ~udp:ub ~port:41 ~stream:1
        ~deliver:(fun adu ->
          deliveries := (Engine.now engine, adu.Adu.name.Adu.index) :: !deliveries)
        ()
    in
    let sender =
      Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:41 ~port:42
        ~stream:1 ~policy:Recovery.Transport_buffer ()
    in
    for i = 0 to 29 do
      Alf_transport.send_adu sender
        (Adu.make (Adu.name ~stream:1 ~index:i ()) (Bytebuf.create 2000))
    done;
    Alf_transport.close sender;
    Engine.run ~until:120.0 engine;
    let s = Alf_transport.sender_stats sender in
    let r = Alf_transport.receiver_stats receiver in
    ( List.rev !deliveries,
      s.Alf_transport.frags_sent,
      s.Alf_transport.adus_retransmitted,
      r.Alf_transport.out_of_order,
      r.Alf_transport.nacks_sent )
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "two runs with one seed are event-for-event identical" true (a = b)

let () =
  Alcotest.run "integration"
    [
      ( "stacks",
        [
          Alcotest.test_case "values over tcp" `Quick test_values_over_tcp;
          Alcotest.test_case "alf vs tcp pipeline (clean)" `Quick
            test_alf_vs_tcp_pipeline_clean;
          Alcotest.test_case "alf vs tcp pipeline (lossy)" `Quick
            test_alf_vs_tcp_pipeline_lossy;
          Alcotest.test_case "adus over atm with cell loss" `Quick
            test_adus_over_atm_with_cell_loss;
          Alcotest.test_case "ilp stack consistency" `Quick test_ilp_stack_consistency;
          Alcotest.test_case "encrypted alf over lossy link" `Quick
            test_encrypted_alf_over_lossy_link;
          Alcotest.test_case "alf over atm bearer" `Quick test_alf_over_atm_bearer;
          Alcotest.test_case "alf over striped channels" `Quick
            test_alf_over_striped_channels;
          Alcotest.test_case "ordered overlay over alf" `Quick
            test_ordered_overlay_over_alf;
          Alcotest.test_case "ordered overlay skips gone" `Quick
            test_ordered_overlay_skips_gone;
          Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
          Alcotest.test_case "out-of-order file assembly" `Quick
            test_out_of_order_file_assembly;
        ] );
    ]
