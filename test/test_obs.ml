let check = Alcotest.check
let fail = Alcotest.fail
let qcheck t = QCheck_alcotest.to_alcotest t

(* --- Counter --- *)

let test_counter_basic () =
  let c = Obs.Counter.create () in
  check Alcotest.int "fresh" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  check Alcotest.int "accumulated" 42 (Obs.Counter.value c);
  Obs.Counter.reset c;
  check Alcotest.int "reset" 0 (Obs.Counter.value c)

let test_counter_negative_add () =
  let c = Obs.Counter.create () in
  match Obs.Counter.add c (-1) with
  | () -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* The regression the parallel stage-2 engine forces: counters are
   shared by worker domains, so [incr] must be atomic. The pre-fix
   read-modify-write implementation loses increments under exactly this
   hammer (4 domains, one counter, exact expected total). *)
let test_counter_multidomain_exact () =
  let c = Obs.Counter.create () in
  let per_domain = 25_000 in
  let hammer () =
    for _ = 1 to per_domain do
      Obs.Counter.incr c
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn hammer) in
  hammer ();
  Array.iter Domain.join domains;
  check Alcotest.int "no lost increments" (4 * per_domain) (Obs.Counter.value c)

let test_histogram_multidomain_count () =
  let h = Obs.Histogram.create () in
  let per_domain = 5_000 in
  let hammer () =
    for i = 1 to per_domain do
      Obs.Histogram.record h (float_of_int i)
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn hammer) in
  hammer ();
  Array.iter Domain.join domains;
  check Alcotest.int "no lost samples" (4 * per_domain) (Obs.Histogram.count h);
  (* The mean of four identical streams is the stream mean; a torn
     concurrent update would shift it. *)
  check (Alcotest.float 1e-6) "mean intact"
    (float_of_int (per_domain + 1) /. 2.0)
    (Obs.Histogram.mean h)

(* --- Gauge --- *)

let test_gauge_basic () =
  let g = Obs.Gauge.create () in
  Obs.Gauge.set g 3.0;
  Obs.Gauge.add g (-1.0);
  check (Alcotest.float 0.0) "set+add" 2.0 (Obs.Gauge.value g);
  Obs.Gauge.observe_max g 10.0;
  Obs.Gauge.observe_max g 5.0;
  check (Alcotest.float 0.0) "observe_max keeps peak" 10.0 (Obs.Gauge.value g)

(* --- Welford --- *)

let test_welford_known_moments () =
  let w = Obs.Welford.create () in
  List.iter (Obs.Welford.observe w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Obs.Welford.count w);
  check (Alcotest.float 1e-9) "mean" 5.0 (Obs.Welford.mean w);
  (* Sample variance: sum of squared deviations 32 over n-1 = 7. *)
  check (Alcotest.float 1e-9) "variance" (32.0 /. 7.0) (Obs.Welford.variance w);
  check (Alcotest.float 1e-9) "min" 2.0 (Obs.Welford.minimum w);
  check (Alcotest.float 1e-9) "max" 9.0 (Obs.Welford.maximum w)

let test_welford_no_cancellation () =
  (* The case that breaks sumsq/n - mean^2: tiny spread on a huge mean. *)
  let w = Obs.Welford.create () in
  List.iter (Obs.Welford.observe w) [ 1e9; 1e9 +. 1.0; 1e9 +. 2.0 ];
  check (Alcotest.float 1e-9) "stddev survives offset" 1.0 (Obs.Welford.stddev w)

let test_welford_degenerate () =
  let w = Obs.Welford.create () in
  check (Alcotest.float 0.0) "empty variance" 0.0 (Obs.Welford.variance w);
  Obs.Welford.observe w 7.0;
  check (Alcotest.float 0.0) "single-sample variance" 0.0 (Obs.Welford.variance w);
  check (Alcotest.float 0.0) "single-sample mean" 7.0 (Obs.Welford.mean w)

(* --- Histogram --- *)

let test_histogram_exact_stats () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record h) [ 10.0; 20.0; 30.0; 40.0 ];
  check Alcotest.int "count" 4 (Obs.Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 100.0 (Obs.Histogram.sum h);
  check (Alcotest.float 1e-9) "mean" 25.0 (Obs.Histogram.mean h);
  check (Alcotest.float 1e-9) "min" 10.0 (Obs.Histogram.minimum h);
  check (Alcotest.float 1e-9) "max" 40.0 (Obs.Histogram.maximum h)

let test_histogram_percentiles_bounded_error () =
  (* Buckets are ~19% wide geometrically, and percentiles are clamped to
     the observed extremes: p50 of 1..1000 must land within one bucket
     width of 500, and p0/p100 are exact. *)
  let h = Obs.Histogram.create () in
  for i = 1 to 1000 do
    Obs.Histogram.record h (float_of_int i)
  done;
  let p50 = Obs.Histogram.p50 h in
  Alcotest.(check bool)
    (Printf.sprintf "p50 within bucket width (got %g)" p50)
    true
    (p50 > 500.0 /. 1.2 && p50 < 500.0 *. 1.2);
  let p99 = Obs.Histogram.p99 h in
  Alcotest.(check bool)
    (Printf.sprintf "p99 within bucket width (got %g)" p99)
    true
    (p99 > 990.0 /. 1.2 && p99 <= 1000.0);
  check (Alcotest.float 1e-9) "q=0 clamps to min" 1.0
    (Obs.Histogram.percentile h 0.0);
  check (Alcotest.float 1e-9) "q=1 clamps to max" 1000.0
    (Obs.Histogram.percentile h 1.0)

let test_histogram_single_value () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h 123.0;
  check (Alcotest.float 1e-9) "p50 of singleton" 123.0 (Obs.Histogram.p50 h);
  check (Alcotest.float 1e-9) "p99 of singleton" 123.0 (Obs.Histogram.p99 h)

let test_histogram_empty_and_underflow () =
  let h = Obs.Histogram.create () in
  check (Alcotest.float 0.0) "empty percentile" 0.0 (Obs.Histogram.p50 h);
  Obs.Histogram.record h 0.0;
  Obs.Histogram.record h (-5.0);
  check Alcotest.int "underflow recorded" 2 (Obs.Histogram.count h);
  Alcotest.(check bool) "percentile stays finite" true
    (Float.is_finite (Obs.Histogram.p50 h))

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram: percentile monotone in q" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1e6))
    (fun xs ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.record h) xs;
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let ps = List.map (Obs.Histogram.percentile h) qs in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | [ _ ] | [] -> true
      in
      nondecreasing ps)

(* --- Json --- *)

let sample_doc =
  Obs.Json.(
    Obj
      [
        ("name", Str "ilp-fusion/fused");
        ("bytes", num_of_int 262144);
        ("mbps", Num 1234.5678);
        ("ok", Bool true);
        ("missing", Null);
        ("runs", Arr [ Num 1.0; Num 2.5; Str "a\"b\\c\n\t" ]);
      ])

let test_json_compact_shape () =
  let s = Obs.Json.to_string sample_doc in
  Alcotest.(check bool) "single line" false (String.contains s '\n' && false);
  Alcotest.(check bool) "integer without fraction" true
    (let rec mem i =
       i + 6 <= String.length s && (String.sub s i 6 = "262144" || mem (i + 1))
     in
     mem 0);
  Alcotest.(check bool) "no 262144." true
    (let rec mem i =
       i + 7 <= String.length s && (String.sub s i 7 = "262144." || mem (i + 1))
     in
     not (mem 0))

let test_json_round_trip_sample () =
  match Obs.Json.parse (Obs.Json.to_string sample_doc) with
  | Error e -> fail ("parse failed: " ^ e)
  | Ok v -> Alcotest.(check bool) "round trip" true (v = sample_doc)

let test_json_round_trip_pretty () =
  match Obs.Json.parse (Obs.Json.to_string_pretty sample_doc) with
  | Error e -> fail ("parse failed: " ^ e)
  | Ok v -> Alcotest.(check bool) "round trip pretty" true (v = sample_doc)

let test_json_non_finite_as_null () =
  check Alcotest.string "nan" "null" (Obs.Json.to_string (Obs.Json.Num Float.nan));
  check Alcotest.string "inf" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.infinity))

let test_json_member () =
  check
    Alcotest.(option string)
    "member hit" (Some "ilp-fusion/fused")
    (match Obs.Json.member "name" sample_doc with
    | Some (Obs.Json.Str s) -> Some s
    | _ -> None);
  Alcotest.(check bool) "member miss" true
    (Obs.Json.member "nope" sample_doc = None)

let test_json_parse_escapes () =
  match Obs.Json.parse {|"aA\né"|} with
  | Ok (Obs.Json.Str s) -> check Alcotest.string "escapes" "aA\n\xc3\xa9" s
  | Ok _ -> fail "expected a string"
  | Error e -> fail e

let test_json_parse_rejects_garbage () =
  Alcotest.(check bool) "trailing junk rejected" true
    (match Obs.Json.parse "{} x" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bare word rejected" true
    (match Obs.Json.parse "metrics" with Error _ -> true | Ok _ -> false)

let prop_json_number_round_trip =
  QCheck.Test.make ~name:"json: finite numbers round-trip" ~count:500
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Num f)) with
      | Ok (Obs.Json.Num g) -> g = f
      | Ok _ | Error _ -> false)

let prop_json_string_round_trip =
  QCheck.Test.make ~name:"json: strings round-trip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun s ->
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.Str s)) with
      | Ok (Obs.Json.Str t) -> t = s
      | Ok _ | Error _ -> false)

(* --- Registry --- *)

let test_registry_find_or_create () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry:r "a.b" in
  Obs.Counter.incr c;
  let c' = Obs.Registry.counter ~registry:r "a.b" in
  check Alcotest.int "same instance" 1 (Obs.Counter.value c');
  Alcotest.(check (list string))
    "names sorted"
    [ "a.b"; "z.gauge" ]
    (ignore (Obs.Registry.gauge ~registry:r "z.gauge");
     Obs.Registry.names ~registry:r ())

let test_registry_kind_mismatch () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter ~registry:r "m");
  match Obs.Registry.gauge ~registry:r "m" with
  | _ -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_registry_pull_replaces () =
  let r = Obs.Registry.create () in
  Obs.Registry.pull ~registry:r "p" (fun () -> 1.0);
  Obs.Registry.pull ~registry:r "p" (fun () -> 2.0);
  match Obs.Registry.find ~registry:r "p" with
  | Some (Obs.Registry.Pull f) -> check (Alcotest.float 0.0) "latest closure" 2.0 (f ())
  | _ -> fail "expected a pull metric"

let test_registry_json_export () =
  let r = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter ~registry:r "c") 7;
  Obs.Gauge.set (Obs.Registry.gauge ~registry:r "g") 2.5;
  let h = Obs.Registry.histogram ~registry:r "h" in
  List.iter (Obs.Histogram.record h) [ 1.0; 2.0; 3.0 ];
  Obs.Registry.pull ~registry:r "p" (fun () -> 9.0);
  let json = Obs.Registry.to_json ~registry:r () in
  (* The export must survive its own parser (the cross-run comparison
     path reads it back). *)
  (match Obs.Json.parse (Obs.Json.to_string_pretty json) with
  | Error e -> fail ("export does not re-parse: " ^ e)
  | Ok v -> Alcotest.(check bool) "round trip" true (v = json));
  let field name key =
    match Obs.Json.member name json with
    | Some obj -> Obs.Json.member key obj
    | None -> None
  in
  Alcotest.(check bool) "counter value" true
    (field "c" "value" = Some (Obs.Json.num_of_int 7));
  Alcotest.(check bool) "gauge value" true
    (field "g" "value" = Some (Obs.Json.Num 2.5));
  Alcotest.(check bool) "histogram count" true
    (field "h" "count" = Some (Obs.Json.num_of_int 3));
  Alcotest.(check bool) "pull sampled" true
    (field "p" "value" = Some (Obs.Json.Num 9.0))

let test_registry_clear () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter ~registry:r "x");
  Alcotest.(check bool) "not empty" false (Obs.Registry.is_empty ~registry:r ());
  Obs.Registry.clear ~registry:r ();
  Alcotest.(check bool) "empty after clear" true
    (Obs.Registry.is_empty ~registry:r ())

let () =
  Alcotest.run "obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "negative add" `Quick test_counter_negative_add;
          Alcotest.test_case "multi-domain exact total" `Quick
            test_counter_multidomain_exact;
        ] );
      ("gauge", [ Alcotest.test_case "basic" `Quick test_gauge_basic ]);
      ( "welford",
        [
          Alcotest.test_case "known moments" `Quick test_welford_known_moments;
          Alcotest.test_case "no cancellation" `Quick test_welford_no_cancellation;
          Alcotest.test_case "degenerate" `Quick test_welford_degenerate;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact stats" `Quick test_histogram_exact_stats;
          Alcotest.test_case "percentile error bound" `Quick
            test_histogram_percentiles_bounded_error;
          Alcotest.test_case "single value" `Quick test_histogram_single_value;
          Alcotest.test_case "empty and underflow" `Quick
            test_histogram_empty_and_underflow;
          Alcotest.test_case "multi-domain exact count" `Quick
            test_histogram_multidomain_count;
          qcheck prop_histogram_percentile_monotone;
        ] );
      ( "json",
        [
          Alcotest.test_case "compact shape" `Quick test_json_compact_shape;
          Alcotest.test_case "round trip" `Quick test_json_round_trip_sample;
          Alcotest.test_case "round trip pretty" `Quick test_json_round_trip_pretty;
          Alcotest.test_case "non-finite as null" `Quick test_json_non_finite_as_null;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "escape decoding" `Quick test_json_parse_escapes;
          Alcotest.test_case "rejects garbage" `Quick test_json_parse_rejects_garbage;
          qcheck prop_json_number_round_trip;
          qcheck prop_json_string_round_trip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find or create" `Quick test_registry_find_or_create;
          Alcotest.test_case "kind mismatch" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "pull replaces" `Quick test_registry_pull_replaces;
          Alcotest.test_case "json export" `Quick test_registry_json_export;
          Alcotest.test_case "clear" `Quick test_registry_clear;
        ] );
    ]
