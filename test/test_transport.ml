open Bufkit
open Netsim
open Transport

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- Seq32 --- *)

let test_seq32_basics () =
  Alcotest.(check int) "of/to" 5 (Seq32.to_int (Seq32.of_int 5));
  Alcotest.(check int) "masking" 1 (Seq32.to_int (Seq32.of_int 0x100000001));
  Alcotest.(check int) "add wraps" 1
    (Seq32.to_int (Seq32.add (Seq32.of_int 0xFFFFFFFE) 3))

let test_seq32_diff_wrap () =
  let a = Seq32.of_int 5 and b = Seq32.of_int 0xFFFFFFFB in
  Alcotest.(check int) "forward across wrap" 10 (Seq32.diff a b);
  Alcotest.(check int) "backward across wrap" (-10) (Seq32.diff b a);
  Alcotest.(check bool) "lt across wrap" true (Seq32.lt b a)

let prop_seq32_diff_add =
  QCheck.Test.make ~name:"seq32: diff(add a n, a) = n" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFFF) (int_range (-1000000) 1000000))
    (fun (a0, n) ->
      let a = Seq32.of_int a0 in
      Seq32.diff (Seq32.add a n) a = n)

let prop_seq32_unwrap =
  QCheck.Test.make ~name:"seq32: unwrap recovers absolute" ~count:500
    QCheck.(pair (int_bound 0x3FFFFFFFFFFF) (int_range (-1000000) 1000000))
    (fun (abs0, delta) ->
      let abs = abs0 + 0x100000000 in
      (* keep it positive and past a wrap *)
      let near = abs + delta in
      Seq32.unwrap ~near (Seq32.of_int abs) = abs)

let test_seq32_between () =
  let lo = Seq32.of_int 0xFFFFFFF0 and hi = Seq32.of_int 0x10 in
  Alcotest.(check bool) "inside across wrap" true
    (Seq32.between (Seq32.of_int 5) ~lo ~hi);
  Alcotest.(check bool) "lo inclusive" true (Seq32.between lo ~lo ~hi);
  Alcotest.(check bool) "hi exclusive" false (Seq32.between hi ~lo ~hi);
  Alcotest.(check bool) "outside" false (Seq32.between (Seq32.of_int 0x20) ~lo ~hi)

(* --- Rto --- *)

let test_rto_initial () =
  let r = Rto.create () in
  Alcotest.(check (float 1e-9)) "initial" 1.0 (Rto.rto r);
  Alcotest.(check bool) "no srtt" true (Rto.srtt r = None)

let test_rto_sampling () =
  let r = Rto.create () in
  Rto.sample r 0.1;
  (match Rto.srtt r with
  | Some v -> Alcotest.(check (float 1e-9)) "first sample" 0.1 v
  | None -> Alcotest.fail "srtt unset");
  Alcotest.(check (float 1e-9)) "rto = srtt + 4var" 0.3 (Rto.rto r);
  (* Steady samples shrink the variance term. *)
  for _ = 1 to 50 do
    Rto.sample r 0.1
  done;
  Alcotest.(check bool) "converges" true (Rto.rto r < 0.15)

let test_rto_backoff () =
  let r = Rto.create () in
  Rto.sample r 0.1;
  let base = Rto.rto r in
  Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled" (base *. 2.0) (Rto.rto r);
  Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled again" (base *. 4.0) (Rto.rto r);
  Rto.sample r 0.1;
  Alcotest.(check bool) "sample resets backoff" true (Rto.rto r < base *. 1.5)

let test_rto_clamps () =
  let r = Rto.create ~min_rto:0.2 ~max_rto:1.0 () in
  Rto.sample r 0.01;
  Alcotest.(check (float 1e-9)) "floor" 0.2 (Rto.rto r);
  (* Backoff is capped at 2^6; 0.03 * 64 = 1.92 exceeds the ceiling. *)
  Rto.sample r 0.01;
  for _ = 1 to 10 do
    Rto.backoff r
  done;
  Alcotest.(check (float 1e-9)) "ceiling" 1.0 (Rto.rto r)

(* Karn's algorithm: an RTT measured on a retransmitted segment is
   ambiguous (the ACK may answer either transmission), so it must
   neither feed the estimator nor cancel an exponential backoff. *)
let test_rto_karn_ignores_retransmit_samples () =
  let r = Rto.create () in
  Rto.sample r 0.1;
  let settled = Rto.rto r in
  (* A wildly wrong ambiguous sample must not move the estimate. *)
  Rto.sample ~retransmitted:true r 5.0;
  Alcotest.(check (float 1e-9)) "estimator unmoved" settled (Rto.rto r);
  Rto.sample ~retransmitted:true r 0.0001;
  Alcotest.(check (float 1e-9)) "still unmoved" settled (Rto.rto r)

let test_rto_karn_backoff_survives () =
  let r = Rto.create () in
  Rto.sample r 0.1;
  let base = Rto.rto r in
  Rto.backoff r;
  Rto.backoff r;
  (* The ambiguous sample arrives while we are backing off: the shift
     must survive it... *)
  Rto.sample ~retransmitted:true r 0.1;
  Alcotest.(check (float 1e-9)) "backoff survives ambiguous sample"
    (base *. 4.0) (Rto.rto r);
  (* ...and a clean sample afterwards resets it as usual. *)
  Rto.sample r 0.1;
  Alcotest.(check bool) "clean sample resets" true (Rto.rto r < base *. 1.5)

(* --- Reorder --- *)

let buf = Bytebuf.of_string
let strings chunks = List.map Bytebuf.to_string chunks

let test_reorder_in_order () =
  let r = Reorder.create ~capacity:100 ~initial_offset:0 in
  Alcotest.(check (list string)) "first" [ "ab" ] (strings (Reorder.offer r ~off:0 (buf "ab")));
  Alcotest.(check (list string)) "second" [ "cd" ] (strings (Reorder.offer r ~off:2 (buf "cd")));
  Alcotest.(check int) "rcv_nxt" 4 (Reorder.rcv_nxt r)

let test_reorder_hole_holds () =
  let r = Reorder.create ~capacity:100 ~initial_offset:0 in
  Alcotest.(check (list string)) "held" [] (strings (Reorder.offer r ~off:2 (buf "cd")));
  Alcotest.(check int) "buffered" 2 (Reorder.buffered_bytes r);
  Alcotest.(check (list string)) "released together" [ "ab"; "cd" ]
    (strings (Reorder.offer r ~off:0 (buf "ab")));
  Alcotest.(check int) "drained" 0 (Reorder.buffered_bytes r)

let test_reorder_duplicates_trimmed () =
  let r = Reorder.create ~capacity:100 ~initial_offset:0 in
  ignore (Reorder.offer r ~off:0 (buf "abcd"));
  Alcotest.(check (list string)) "duplicate dropped" []
    (strings (Reorder.offer r ~off:0 (buf "abcd")));
  Alcotest.(check int) "dup counted" 4 (Reorder.duplicates r);
  Alcotest.(check (list string)) "partial overlap" [ "ef" ]
    (strings (Reorder.offer r ~off:2 (buf "cdef")))

let test_reorder_overlap_with_buffered () =
  let r = Reorder.create ~capacity:100 ~initial_offset:0 in
  ignore (Reorder.offer r ~off:4 (buf "ef"));
  (* New span overlapping the buffered one on both sides. *)
  ignore (Reorder.offer r ~off:2 (buf "cdEFgh"));
  Alcotest.(check int) "buffered without double count" 6 (Reorder.buffered_bytes r);
  let released = strings (Reorder.offer r ~off:0 (buf "ab")) in
  (* Buffered copy wins where it was there first. *)
  Alcotest.(check string) "assembled" "abcdefgh" (String.concat "" released)

let test_reorder_capacity () =
  let r = Reorder.create ~capacity:4 ~initial_offset:0 in
  ignore (Reorder.offer r ~off:2 (buf "cdefgh"));
  Alcotest.(check bool) "clipped to capacity" true (Reorder.buffered_bytes r <= 4);
  Alcotest.(check int) "window" (4 - Reorder.buffered_bytes r) (Reorder.window r)

let test_reorder_spans () =
  let r = Reorder.create ~capacity:100 ~initial_offset:0 in
  ignore (Reorder.offer r ~off:2 (buf "c"));
  ignore (Reorder.offer r ~off:6 (buf "gh"));
  Alcotest.(check (list (pair int int))) "spans" [ (2, 1); (6, 2) ]
    (Reorder.buffered_spans r)

let test_reorder_initial_offset () =
  let r = Reorder.create ~capacity:10 ~initial_offset:1000 in
  Alcotest.(check (list string)) "aligned start" [ "xy" ]
    (strings (Reorder.offer r ~off:1000 (buf "xy")));
  Alcotest.(check int) "next" 1002 (Reorder.rcv_nxt r)

let test_reorder_seq32_wraparound () =
  (* The contract documented in reorder.mli: endpoints keep absolute
     offsets and convert wire values with [Seq32.unwrap ~near:rcv_nxt]
     before offering. Drive it straight across the 2^32 boundary. *)
  let start = 0x100000000 - 6 in
  let r = Reorder.create ~capacity:100 ~initial_offset:start in
  let offer_wire wire_seq data =
    let off = Seq32.unwrap ~near:(Reorder.rcv_nxt r) (Seq32.of_int wire_seq) in
    strings (Reorder.offer r ~off data)
  in
  (* A hole spanning the boundary: the post-wrap segment (wire seq 0)
     arrives first and must park, not misfile. *)
  Alcotest.(check (list string)) "post-wrap held" [] (offer_wire 0 (buf "ghij"));
  Alcotest.(check int) "parked" 4 (Reorder.buffered_bytes r);
  Alcotest.(check (list string)) "boundary fill releases both"
    [ "abcdef"; "ghij" ]
    (offer_wire start (buf "abcdef"));
  Alcotest.(check int) "rcv_nxt crossed 2^32" (0x100000000 + 4)
    (Reorder.rcv_nxt r);
  (* A stale pre-wrap retransmit now unwraps to an offset below rcv_nxt
     (not 4 GiB ahead) and is trimmed as duplicate. *)
  Alcotest.(check (list string)) "stale pre-wrap dup trimmed" []
    (offer_wire start (buf "abcdef"));
  Alcotest.(check int) "dup bytes" 6 (Reorder.duplicates r);
  Alcotest.(check int) "nothing parked" 0 (Reorder.buffered_bytes r)

let test_reorder_unwrap_negative_trimmed () =
  (* Near-zero [near] can unwrap a stale wire value to a negative offset;
     offer must treat it as ancient duplicate, never as future data. *)
  let r = Reorder.create ~capacity:100 ~initial_offset:2 in
  let off = Seq32.unwrap ~near:(Reorder.rcv_nxt r) (Seq32.of_int 0xFFFFFFFE) in
  Alcotest.(check int) "unwrapped below zero" (-2) off;
  Alcotest.(check (list string)) "trimmed" [] (strings (Reorder.offer r ~off (buf "xy")));
  Alcotest.(check int) "rcv_nxt untouched" 2 (Reorder.rcv_nxt r);
  Alcotest.(check int) "nothing parked" 0 (Reorder.buffered_bytes r)

(* Model check: random segments of a known stream always reassemble to a
   prefix of the stream, never duplicated or reordered. *)
let prop_reorder_stream_model =
  QCheck.Test.make ~name:"reorder: delivers exact stream prefix" ~count:200
    QCheck.(small_list (pair (int_bound 40) (int_range 1 8)))
    (fun segs ->
      let stream = String.init 64 (fun i -> Char.chr (65 + (i mod 26))) in
      let r = Reorder.create ~capacity:1000 ~initial_offset:0 in
      let delivered = Buffer.create 64 in
      List.iter
        (fun (off, len) ->
          let len = min len (String.length stream - off) in
          if len > 0 then
            List.iter
              (fun c -> Buffer.add_string delivered (Bytebuf.to_string c))
              (Reorder.offer r ~off (buf (String.sub stream off len))))
        segs;
      let out = Buffer.contents delivered in
      String.length out <= String.length stream
      && String.sub stream 0 (String.length out) = out
      && Reorder.rcv_nxt r = String.length out)

(* --- Segment --- *)

let test_segment_round_trip () =
  let seg =
    {
      Segment.seq = Seq32.of_int 12345;
      ack = Seq32.of_int 999;
      flags = { Segment.ack = true; fin = false; syn = true };
      wnd = 65535;
      payload = buf "payload!";
    }
  in
  match Segment.decode (Segment.encode seg) with
  | Ok got ->
      Alcotest.(check int) "seq" 12345 (Seq32.to_int got.Segment.seq);
      Alcotest.(check int) "ack" 999 (Seq32.to_int got.Segment.ack);
      Alcotest.(check bool) "ack flag" true got.Segment.flags.Segment.ack;
      Alcotest.(check bool) "syn flag" true got.Segment.flags.Segment.syn;
      Alcotest.(check int) "wnd" 65535 got.Segment.wnd;
      Alcotest.(check string) "payload" "payload!" (Bytebuf.to_string got.Segment.payload)
  | Error e -> Alcotest.fail (Format.asprintf "decode: %a" Segment.pp_error e)

let prop_segment_round_trip =
  QCheck.Test.make ~name:"segment: encode/decode round trip" ~count:300
    QCheck.(
      quad (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF)
        (string_of_size Gen.(0 -- 200)))
    (fun (seq, ack, wnd, payload) ->
      let seg =
        {
          Segment.seq = Seq32.of_int seq;
          ack = Seq32.of_int ack;
          flags = Segment.no_flags;
          wnd;
          payload = buf payload;
        }
      in
      match Segment.decode (Segment.encode seg) with
      | Ok got ->
          Seq32.to_int got.Segment.seq = seq land 0xFFFFFFFF
          && Seq32.to_int got.Segment.ack = ack land 0xFFFFFFFF
          && got.Segment.wnd = wnd
          && Bytebuf.to_string got.Segment.payload = payload
      | Error _ -> false)

let prop_segment_corruption_detected =
  QCheck.Test.make ~name:"segment: any single byte flip detected" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 64)) (pair small_nat (int_range 1 255)))
    (fun (payload, (pos, flip)) ->
      let seg =
        {
          Segment.seq = Seq32.of_int 1;
          ack = Seq32.of_int 2;
          flags = Segment.no_flags;
          wnd = 100;
          payload = buf payload;
        }
      in
      let wire = Segment.encode seg in
      let i = pos mod Bytebuf.length wire in
      Bytebuf.set_uint8 wire i (Bytebuf.get_uint8 wire i lxor flip);
      match Segment.decode wire with Ok _ -> false | Error _ -> true)

let test_segment_too_short () =
  match Segment.decode (buf "short") with
  | Error Segment.Too_short -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Too_short"

(* --- TCP end-to-end --- *)

type tcp_world = {
  engine : Engine.t;
  sender : Tcp.t;
  receiver : Tcp.t;
  received : Buffer.t;
  closed : bool ref;
}

let make_world ?(loss = 0.0) ?(corrupt = 0.0) ?(reorder = 0.0) ?(jitter = 0.0)
    ?(duplicate = 0.0) ?(bandwidth = 8e6) ?(delay = 0.005)
    ?(config = Tcp.default_config) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:2024L in
  let impair = Impair.make ~loss ~corrupt ~reorder ~jitter ~duplicate () in
  let net =
    Topology.point_to_point ~engine ~rng ~impair ~queue_limit:256
      ~bandwidth_bps:bandwidth ~delay ~a:1 ~b:2 ()
  in
  let sender = Tcp.create ~engine ~node:net.Topology.a ~peer:2 ~config () in
  let receiver = Tcp.create ~engine ~node:net.Topology.b ~peer:1 ~config () in
  let received = Buffer.create 1024 in
  let closed = ref false in
  Tcp.on_deliver receiver (fun chunk -> Buffer.add_string received (Bytebuf.to_string chunk));
  Tcp.on_close receiver (fun () -> closed := true);
  { engine; sender; receiver; received; closed }

let payload_of_size n = String.init n (fun i -> Char.chr (33 + (i mod 90)))

let run_transfer world data =
  Tcp.send_string world.sender data;
  Tcp.finish world.sender;
  Engine.run ~until:300.0 world.engine

let test_tcp_clean_transfer () =
  let world = make_world () in
  let data = payload_of_size 50_000 in
  run_transfer world data;
  Alcotest.(check string) "stream intact" data (Buffer.contents world.received);
  Alcotest.(check bool) "closed" true !(world.closed);
  Alcotest.(check bool) "all acked" true (Tcp.all_acked world.sender);
  Alcotest.(check int) "no retransmits" 0 (Tcp.stats world.sender).Tcp.retransmits

let test_tcp_lossy_transfer () =
  let world = make_world ~loss:0.05 () in
  let data = payload_of_size 50_000 in
  run_transfer world data;
  Alcotest.(check string) "stream intact under loss" data (Buffer.contents world.received);
  Alcotest.(check bool) "closed" true !(world.closed);
  Alcotest.(check bool) "retransmitted" true
    ((Tcp.stats world.sender).Tcp.retransmits > 0)

let test_tcp_corruption_discarded_then_repaired () =
  let world = make_world ~corrupt:0.03 () in
  let data = payload_of_size 30_000 in
  run_transfer world data;
  Alcotest.(check string) "stream intact under corruption" data
    (Buffer.contents world.received);
  Alcotest.(check bool) "checksum failures seen" true
    ((Tcp.stats world.receiver).Tcp.segs_discarded > 0)

let test_tcp_reordering_repaired () =
  let world = make_world ~reorder:0.3 ~jitter:0.01 () in
  let data = payload_of_size 30_000 in
  run_transfer world data;
  Alcotest.(check string) "stream intact under reordering" data
    (Buffer.contents world.received)

let test_tcp_tiny_window () =
  let config = { Tcp.default_config with Tcp.recv_capacity = 4096; mss = 512 } in
  let world = make_world ~config () in
  let data = payload_of_size 20_000 in
  run_transfer world data;
  Alcotest.(check string) "flow control respected" data (Buffer.contents world.received)

let test_tcp_fast_retransmit_fires () =
  let world = make_world ~loss:0.03 () in
  let data = payload_of_size 200_000 in
  run_transfer world data;
  Alcotest.(check string) "intact" data (Buffer.contents world.received);
  let st = Tcp.stats world.sender in
  Alcotest.(check bool) "fast retransmit used" true (st.Tcp.fast_retransmits > 0)

let test_tcp_control_cheaper_than_manipulation () =
  (* E8's premise, as an invariant: per-packet control operations are tens,
     not thousands, while manipulation touches every byte. *)
  let world = make_world () in
  let data = payload_of_size 100_000 in
  run_transfer world data;
  let s = Tcp.stats world.sender and r = Tcp.stats world.receiver in
  let control = s.Tcp.control_ops + r.Tcp.control_ops in
  let manip =
    s.Tcp.manip_checksum_bytes + s.Tcp.manip_copy_bytes
    + r.Tcp.manip_checksum_bytes + r.Tcp.manip_copy_bytes
  in
  Alcotest.(check bool) "manipulation dominates" true (manip > 10 * control);
  let per_seg = float_of_int control /. float_of_int s.Tcp.segs_sent in
  Alcotest.(check bool) "control ops per segment is small" true (per_seg < 40.0)

let test_tcp_empty_stream_close () =
  let world = make_world () in
  Tcp.finish world.sender;
  Engine.run ~until:10.0 world.engine;
  Alcotest.(check bool) "closed with no data" true !(world.closed);
  Alcotest.(check bool) "fin acked" true (Tcp.all_acked world.sender)

let test_tcp_buffered_bytes_gauge () =
  (* With loss, the receiver must at some point hold out-of-order data. *)
  let world = make_world ~loss:0.1 () in
  let data = payload_of_size 100_000 in
  Tcp.send_string world.sender data;
  Tcp.finish world.sender;
  let peak = ref 0 in
  let rec watch () =
    peak := max !peak (Tcp.buffered_bytes world.receiver);
    if not !(world.closed) && Engine.now world.engine < 300.0 then
      ignore (Engine.schedule_after world.engine 0.001 watch)
  in
  watch ();
  Engine.run ~until:300.0 world.engine;
  Alcotest.(check bool) "some data parked behind holes" true (!peak > 0)

let test_tcp_duplicated_segments_harmless () =
  let world = make_world ~duplicate:0.2 ~loss:0.02 () in
  let data = payload_of_size 60_000 in
  run_transfer world data;
  Alcotest.(check string) "stream intact under duplication" data
    (Buffer.contents world.received);
  Alcotest.(check bool) "closed" true !(world.closed)

let test_tcp_delayed_acks_reduce_ack_traffic () =
  let run ack_delay =
    let config = { Tcp.default_config with Tcp.ack_delay } in
    let world = make_world ~config () in
    let data = payload_of_size 100_000 in
    run_transfer world data;
    Alcotest.(check string) "intact" data (Buffer.contents world.received);
    (Tcp.stats world.receiver).Tcp.acks_sent
  in
  let immediate = run 0.0 in
  let delayed = run 0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "delayed acks (%d) < immediate acks (%d)" delayed immediate)
    true
    (delayed * 3 < immediate * 2)

let test_tcp_sequence_wraparound () =
  (* Start both ends just below the 32-bit boundary: the whole transfer
     crosses the wrap, exercising unwrap on every segment and ack. *)
  let isn = 0xFFFFFFFF - 50_000 in
  let config = { Tcp.default_config with Tcp.isn; peer_isn = isn } in
  let world = make_world ~loss:0.03 ~config () in
  let data = payload_of_size 150_000 in
  run_transfer world data;
  Alcotest.(check string) "stream intact across wrap" data
    (Buffer.contents world.received);
  Alcotest.(check bool) "closed" true !(world.closed);
  Alcotest.(check bool) "snd_nxt passed the wrap" true
    (Tcp.snd_nxt world.sender > 0x100000000)

(* --- UDP --- *)

let test_udp_basic () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5L in
  let net = Topology.point_to_point ~engine ~rng ~bandwidth_bps:1e6 ~delay:0.001 ~a:1 ~b:2 () in
  let ua = Udp.create ~engine ~node:net.Topology.a () in
  let ub = Udp.create ~engine ~node:net.Topology.b () in
  let got = ref [] in
  Udp.bind ub ~port:53 (fun ~src ~src_port payload ->
      got := (src, src_port, Bytebuf.to_string payload) :: !got);
  ignore (Udp.send ua ~dst:2 ~dst_port:53 ~src_port:1234 (buf "query"));
  Engine.run_until_idle engine;
  Alcotest.(check (list (triple int int string))) "datagram" [ (1, 1234, "query") ] !got

let test_udp_no_port () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:6L in
  let net = Topology.point_to_point ~engine ~rng ~bandwidth_bps:1e6 ~delay:0.001 ~a:1 ~b:2 () in
  let ua = Udp.create ~engine ~node:net.Topology.a () in
  let ub = Udp.create ~engine ~node:net.Topology.b () in
  ignore (Udp.send ua ~dst:2 ~dst_port:99 ~src_port:1 (buf "x"));
  Engine.run_until_idle engine;
  Alcotest.(check int) "counted" 1 (Udp.stats ub).Udp.discarded_no_port

let test_udp_corruption_discarded () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7L in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:(Impair.make ~corrupt:1.0 ())
      ~bandwidth_bps:1e6 ~delay:0.001 ~a:1 ~b:2 ()
  in
  let ua = Udp.create ~engine ~node:net.Topology.a () in
  let ub = Udp.create ~engine ~node:net.Topology.b () in
  let got = ref 0 in
  Udp.bind ub ~port:1 (fun ~src:_ ~src_port:_ _ -> incr got);
  ignore (Udp.send ua ~dst:2 ~dst_port:1 ~src_port:1 (buf "will be corrupted"));
  Engine.run_until_idle engine;
  Alcotest.(check int) "not delivered" 0 !got;
  Alcotest.(check int) "checksum discard" 1 (Udp.stats ub).Udp.discarded_checksum

let () =
  Alcotest.run "transport"
    [
      ( "seq32",
        [
          Alcotest.test_case "basics" `Quick test_seq32_basics;
          Alcotest.test_case "diff wrap" `Quick test_seq32_diff_wrap;
          Alcotest.test_case "between" `Quick test_seq32_between;
          qcheck prop_seq32_diff_add;
          qcheck prop_seq32_unwrap;
        ] );
      ( "rto",
        [
          Alcotest.test_case "initial" `Quick test_rto_initial;
          Alcotest.test_case "sampling" `Quick test_rto_sampling;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "clamps" `Quick test_rto_clamps;
          Alcotest.test_case "karn ignores retransmit samples" `Quick
            test_rto_karn_ignores_retransmit_samples;
          Alcotest.test_case "karn backoff survives" `Quick
            test_rto_karn_backoff_survives;
        ] );
      ( "reorder",
        [
          Alcotest.test_case "in order" `Quick test_reorder_in_order;
          Alcotest.test_case "hole holds" `Quick test_reorder_hole_holds;
          Alcotest.test_case "duplicates trimmed" `Quick test_reorder_duplicates_trimmed;
          Alcotest.test_case "overlap with buffered" `Quick test_reorder_overlap_with_buffered;
          Alcotest.test_case "capacity" `Quick test_reorder_capacity;
          Alcotest.test_case "spans" `Quick test_reorder_spans;
          Alcotest.test_case "initial offset" `Quick test_reorder_initial_offset;
          Alcotest.test_case "seq32 wraparound" `Quick test_reorder_seq32_wraparound;
          Alcotest.test_case "seq32 negative unwrap trimmed" `Quick
            test_reorder_unwrap_negative_trimmed;
          qcheck prop_reorder_stream_model;
        ] );
      ( "segment",
        [
          Alcotest.test_case "round trip" `Quick test_segment_round_trip;
          Alcotest.test_case "too short" `Quick test_segment_too_short;
          qcheck prop_segment_round_trip;
          qcheck prop_segment_corruption_detected;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "clean transfer" `Quick test_tcp_clean_transfer;
          Alcotest.test_case "lossy transfer" `Quick test_tcp_lossy_transfer;
          Alcotest.test_case "corruption repaired" `Quick
            test_tcp_corruption_discarded_then_repaired;
          Alcotest.test_case "reordering repaired" `Quick test_tcp_reordering_repaired;
          Alcotest.test_case "tiny window" `Quick test_tcp_tiny_window;
          Alcotest.test_case "fast retransmit" `Quick test_tcp_fast_retransmit_fires;
          Alcotest.test_case "control vs manipulation" `Quick
            test_tcp_control_cheaper_than_manipulation;
          Alcotest.test_case "empty stream close" `Quick test_tcp_empty_stream_close;
          Alcotest.test_case "buffered bytes gauge" `Quick test_tcp_buffered_bytes_gauge;
          Alcotest.test_case "sequence wraparound" `Quick test_tcp_sequence_wraparound;
          Alcotest.test_case "delayed acks" `Quick test_tcp_delayed_acks_reduce_ack_traffic;
          Alcotest.test_case "duplicated segments" `Quick test_tcp_duplicated_segments_harmless;
        ] );
      ( "udp",
        [
          Alcotest.test_case "basic" `Quick test_udp_basic;
          Alcotest.test_case "no port" `Quick test_udp_no_port;
          Alcotest.test_case "corruption discarded" `Quick test_udp_corruption_discarded;
        ] );
    ]
