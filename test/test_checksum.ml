open Bufkit

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t
let buf = Bytebuf.of_string

(* --- Internet checksum --- *)

(* The worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7 sum
   to 0xddf2, so the transmitted checksum is its complement 0x220d. *)
let rfc1071_bytes = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7"

let test_internet_rfc1071 () =
  check Alcotest.int "rfc1071 example" 0x220d
    (Checksum.Internet.digest (buf rfc1071_bytes))

let test_internet_empty () =
  check Alcotest.int "empty" 0xffff (Checksum.Internet.digest Bytebuf.empty)

let test_internet_odd_length () =
  (* "a" pads to 0x6100; complement = 0x9eff. *)
  check Alcotest.int "single byte" 0x9eff (Checksum.Internet.digest (buf "a"))

let test_internet_verify () =
  Alcotest.(check bool) "verify" true
    (Checksum.Internet.verify (buf rfc1071_bytes) ~expected:0x220d);
  Alcotest.(check bool) "verify wrong" false
    (Checksum.Internet.verify (buf rfc1071_bytes) ~expected:0x220e)

(* A packet whose stored checksum is correct sums (with the checksum
   included) to 0xffff, i.e. finish = 0 — the receive-side identity the
   transports rely on. *)
let test_internet_receive_identity () =
  let data = buf "\x45\x00\x00\x1cabcdefgh" in
  let c = Checksum.Internet.digest data in
  let with_sum = Bytebuf.concat [ data; Bytebuf.create 2 ] in
  Bytebuf.set_uint8 with_sum (Bytebuf.length data) (c lsr 8);
  Bytebuf.set_uint8 with_sum (Bytebuf.length data + 1) (c land 0xff);
  check Alcotest.int "sums to zero" 0
    (Checksum.Internet.finish
       (Checksum.Internet.feed Checksum.Internet.init with_sum))

let chunked_digest s cuts =
  let st = ref Checksum.Internet.init in
  let n = String.length s in
  let rec go i cuts =
    if i < n then begin
      let step =
        match cuts with [] -> n - i | c :: _ -> max 1 (min (n - i) ((c mod 7) + 1))
      in
      st := Checksum.Internet.feed !st (buf (String.sub s i step));
      go (i + step) (match cuts with [] -> [] | _ :: rest -> rest)
    end
  in
  go 0 cuts;
  Checksum.Internet.finish !st

let prop_internet_chunking =
  QCheck.Test.make ~name:"internet: chunking invariant" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (list small_nat))
    (fun (s, cuts) -> chunked_digest s cuts = Checksum.Internet.digest (buf s))

let prop_internet_bytewise =
  QCheck.Test.make ~name:"internet: bytewise = bulk" ~count:300
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let st = ref Checksum.Internet.init in
      String.iter (fun c -> st := Checksum.Internet.feed_byte !st (Char.code c)) s;
      Checksum.Internet.finish !st = Checksum.Internet.digest (buf s))

let prop_internet_feed_sub_split =
  (* feed_sub must resume correctly at any boundary — in particular an odd
     split point, where the second call starts on the low half of a 16-bit
     word (the [odd] parity carried across calls). *)
  QCheck.Test.make ~name:"internet: feed_sub split = digest" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (pair small_nat small_nat))
    (fun (s, (c1, c2)) ->
      let b = buf s in
      let n = String.length s in
      let k1 = if n = 0 then 0 else c1 mod (n + 1) in
      let k2 = if n = k1 then k1 else k1 + (c2 mod (n - k1 + 1)) in
      let st = Checksum.Internet.init in
      let st = Checksum.Internet.feed_sub st b ~pos:0 ~len:k1 in
      let st = Checksum.Internet.feed_sub st b ~pos:k1 ~len:(k2 - k1) in
      let st = Checksum.Internet.feed_sub st b ~pos:k2 ~len:(n - k2) in
      Checksum.Internet.finish st = Checksum.Internet.digest b)

let test_internet_feed_sub_odd_resume () =
  (* Deterministic witness for the parity hand-off: split the RFC 1071
     example at every boundary, odd ones included. *)
  let b = buf rfc1071_bytes in
  let n = Bytebuf.length b in
  let expected = Checksum.Internet.digest b in
  for k = 0 to n do
    let st = Checksum.Internet.feed_sub Checksum.Internet.init b ~pos:0 ~len:k in
    let st = Checksum.Internet.feed_sub st b ~pos:k ~len:(n - k) in
    check Alcotest.int
      (Printf.sprintf "split at %d" k)
      expected
      (Checksum.Internet.finish st)
  done

let prop_internet_iovec =
  QCheck.Test.make ~name:"internet: iovec = flat" ~count:300
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let frags =
        (* Odd-sized fragments stress the parity tracking. *)
        let rec split i acc =
          if i >= String.length s then List.rev acc
          else
            let len = min (1 + (i mod 3)) (String.length s - i) in
            split (i + len) (Bytebuf.of_string (String.sub s i len) :: acc)
        in
        split 0 []
      in
      Checksum.Internet.digest_iovec (Iovec.of_list frags)
      = Checksum.Internet.digest (buf s))

(* --- Fletcher --- *)

(* Naive references to check the optimised implementations against. *)
let fletcher16_ref s =
  let s1 = ref 0 and s2 = ref 0 in
  String.iter
    (fun c ->
      s1 := (!s1 + Char.code c) mod 255;
      s2 := (!s2 + !s1) mod 255)
    s;
  (!s2 lsl 8) lor !s1

let fletcher32_ref s =
  let a = ref 0 and b = ref 0 in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let lo = Char.code s.[!i] in
    let hi = if !i + 1 < n then Char.code s.[!i + 1] else 0 in
    a := (!a + (lo lor (hi lsl 8))) mod 65535;
    b := (!b + !a) mod 65535;
    i := !i + 2
  done;
  Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)

let prop_fletcher16_ref =
  QCheck.Test.make ~name:"fletcher16 matches reference" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Checksum.Fletcher.digest16 (buf s) = fletcher16_ref s)

let prop_fletcher32_ref =
  QCheck.Test.make ~name:"fletcher32 matches reference" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Int32.equal (Checksum.Fletcher.digest32 (buf s)) (fletcher32_ref s))

let prop_fletcher32_chunking =
  QCheck.Test.make ~name:"fletcher32: chunking invariant" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (int_range 1 7))
    (fun (s, step) ->
      let st = ref Checksum.Fletcher.init32 in
      let rec go i =
        if i < String.length s then begin
          let len = min step (String.length s - i) in
          st := Checksum.Fletcher.feed32 !st (buf (String.sub s i len));
          go (i + len)
        end
      in
      go 0;
      Int32.equal (Checksum.Fletcher.finish32 !st)
        (Checksum.Fletcher.digest32 (buf s)))

let test_fletcher16_position_sensitive () =
  Alcotest.(check bool) "transposition detected" false
    (Checksum.Fletcher.digest16 (buf "ab") = Checksum.Fletcher.digest16 (buf "ba"))

(* --- Adler-32 --- *)

let test_adler_wikipedia () =
  check Alcotest.int32 "Wikipedia vector" 0x11E60398l
    (Checksum.Adler32.digest_string "Wikipedia")

let test_adler_empty () =
  check Alcotest.int32 "empty = 1" 1l (Checksum.Adler32.digest_string "")

let prop_adler_chunking =
  QCheck.Test.make ~name:"adler32: chunking invariant" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (int_range 1 9))
    (fun (s, step) ->
      let st = ref Checksum.Adler32.init in
      let rec go i =
        if i < String.length s then begin
          let len = min step (String.length s - i) in
          st := Checksum.Adler32.feed !st (buf (String.sub s i len));
          go (i + len)
        end
      in
      go 0;
      Int32.equal (Checksum.Adler32.finish !st) (Checksum.Adler32.digest (buf s)))

let test_adler_nmax_boundary () =
  (* Exercise the deferred reduction across the NMAX batch edge. *)
  let s = String.make 12000 '\xff' in
  let expect =
    let a = ref 1 and b = ref 0 in
    String.iter
      (fun c ->
        a := (!a + Char.code c) mod 65521;
        b := (!b + !a) mod 65521)
      s;
    Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)
  in
  check Alcotest.int32 "long ff run" expect (Checksum.Adler32.digest_string s)

(* --- CRC-32 --- *)

let test_crc32_check_value () =
  check Alcotest.int32 "123456789" 0xCBF43926l
    (Checksum.Crc32.digest_string "123456789")

let test_crc32_fox () =
  check Alcotest.int32 "quick brown fox" 0x414FA339l
    (Checksum.Crc32.digest_string "The quick brown fox jumps over the lazy dog")

let test_crc32_empty () =
  check Alcotest.int32 "empty" 0l (Checksum.Crc32.digest_string "")

let prop_crc32_chunking =
  QCheck.Test.make ~name:"crc32: chunking invariant" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (int_range 1 9))
    (fun (s, step) ->
      let st = ref Checksum.Crc32.init in
      let rec go i =
        if i < String.length s then begin
          let len = min step (String.length s - i) in
          st := Checksum.Crc32.feed !st (buf (String.sub s i len));
          go (i + len)
        end
      in
      go 0;
      Int32.equal (Checksum.Crc32.finish !st) (Checksum.Crc32.digest (buf s)))

let prop_crc32_combine =
  QCheck.Test.make ~name:"crc32: combine(crc a, crc b, |b|) = crc (a^b)"
    ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 80)) (string_of_size Gen.(0 -- 80)))
    (fun (a, b) ->
      Int32.equal
        (Checksum.Crc32.combine
           (Checksum.Crc32.digest_string a)
           (Checksum.Crc32.digest_string b)
           (String.length b))
        (Checksum.Crc32.digest_string (a ^ b)))

let test_crc32_combine_known () =
  (* Splitting the check vector anywhere must reproduce it. *)
  let s = "123456789" in
  for cut = 0 to String.length s do
    let a = String.sub s 0 cut and b = String.sub s cut (String.length s - cut) in
    check Alcotest.int32
      (Printf.sprintf "cut %d" cut)
      0xCBF43926l
      (Checksum.Crc32.combine
         (Checksum.Crc32.digest_string a)
         (Checksum.Crc32.digest_string b)
         (String.length b))
  done

(* --- Kind dispatch --- *)

let test_kind_names () =
  List.iter
    (fun k ->
      match Checksum.Kind.of_string (Checksum.Kind.to_string k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.fail "name round trip")
    Checksum.Kind.all;
  Alcotest.(check bool) "unknown name" true
    (Checksum.Kind.of_string "nope" = None)

let prop_kind_feeder_matches_digest =
  let kind_gen = QCheck.Gen.oneofl Checksum.Kind.all in
  QCheck.Test.make ~name:"kind: feeder = digest" ~count:300
    QCheck.(pair (make kind_gen) (string_of_size Gen.(0 -- 80)))
    (fun (kind, s) ->
      let b = buf s in
      let via_feeder =
        Checksum.Kind.feeder_finish
          (Checksum.Kind.feeder_buf (Checksum.Kind.feeder kind) b)
      in
      let via_bytes =
        let f = ref (Checksum.Kind.feeder kind) in
        String.iter (fun c -> f := Checksum.Kind.feeder_byte !f (Char.code c)) s;
        Checksum.Kind.feeder_finish !f
      in
      via_feeder = Checksum.Kind.digest kind b
      && via_bytes = Checksum.Kind.digest kind b)

(* --- word-at-a-time feeders (the ILP compiler's substrate) --- *)

let word_of_string s =
  (* Low octet = first byte, as the compiled loop's LE load produces. *)
  let w = ref 0L in
  String.iteri
    (fun i c ->
      w := Int64.logor !w (Int64.shift_left (Int64.of_int (Char.code c)) (8 * i)))
    s;
  !w

let prop_internet_feed_word64le =
  QCheck.Test.make ~name:"internet: feed_word64le = 8 feed_byte" ~count:500
    QCheck.(pair (string_of_size Gen.(return 8)) (string_of_size Gen.(0 -- 9)))
    (fun (word, prefix) ->
      (* [prefix] varies the starting byte parity: odd-length prefixes
         exercise the slow (misaligned) path of feed_word64le. *)
      let seed = ref Checksum.Internet.init in
      String.iter (fun c -> seed := Checksum.Internet.feed_byte !seed (Char.code c)) prefix;
      let by_word = Checksum.Internet.feed_word64le !seed (word_of_string word) in
      let by_bytes = ref !seed in
      String.iter
        (fun c -> by_bytes := Checksum.Internet.feed_byte !by_bytes (Char.code c))
        word;
      Checksum.Internet.finish by_word = Checksum.Internet.finish !by_bytes)

let prop_kind_feeder_word64le =
  let kind_gen = QCheck.Gen.oneofl Checksum.Kind.all in
  QCheck.Test.make ~name:"kind: feeder_word64le = 8 feeder_byte" ~count:300
    QCheck.(pair (make kind_gen) (string_of_size Gen.(map (fun n -> n * 8) (0 -- 6))))
    (fun (kind, s) ->
      let by_word = ref (Checksum.Kind.feeder kind) in
      let by_byte = ref (Checksum.Kind.feeder kind) in
      let n = String.length s in
      let i = ref 0 in
      while !i < n do
        by_word :=
          Checksum.Kind.feeder_word64le !by_word (word_of_string (String.sub s !i 8));
        i := !i + 8
      done;
      String.iter
        (fun c -> by_byte := Checksum.Kind.feeder_byte !by_byte (Char.code c))
        s;
      Checksum.Kind.feeder_finish !by_word = Checksum.Kind.feeder_finish !by_byte
      && Checksum.Kind.feeder_finish !by_word = Checksum.Kind.digest kind (buf s))

let prop_fletcher32_feed_byte =
  QCheck.Test.make ~name:"fletcher32: feed32_byte stream = digest32" ~count:300
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s ->
      let st = ref Checksum.Fletcher.init32 in
      String.iter (fun c -> st := Checksum.Fletcher.feed32_byte !st (Char.code c)) s;
      Checksum.Fletcher.finish32 !st = Checksum.Fletcher.digest32 (buf s))

let () =
  Alcotest.run "checksum"
    [
      ( "internet",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_internet_rfc1071;
          Alcotest.test_case "empty" `Quick test_internet_empty;
          Alcotest.test_case "odd length" `Quick test_internet_odd_length;
          Alcotest.test_case "verify" `Quick test_internet_verify;
          Alcotest.test_case "receive identity" `Quick test_internet_receive_identity;
          qcheck prop_internet_chunking;
          qcheck prop_internet_bytewise;
          qcheck prop_internet_iovec;
          qcheck prop_internet_feed_sub_split;
          Alcotest.test_case "feed_sub odd resume" `Quick
            test_internet_feed_sub_odd_resume;
          qcheck prop_internet_feed_word64le;
        ] );
      ( "fletcher",
        [
          Alcotest.test_case "position sensitive" `Quick
            test_fletcher16_position_sensitive;
          qcheck prop_fletcher16_ref;
          qcheck prop_fletcher32_ref;
          qcheck prop_fletcher32_chunking;
          qcheck prop_fletcher32_feed_byte;
        ] );
      ( "adler32",
        [
          Alcotest.test_case "wikipedia" `Quick test_adler_wikipedia;
          Alcotest.test_case "empty" `Quick test_adler_empty;
          Alcotest.test_case "nmax boundary" `Quick test_adler_nmax_boundary;
          qcheck prop_adler_chunking;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "check value" `Quick test_crc32_check_value;
          Alcotest.test_case "fox" `Quick test_crc32_fox;
          Alcotest.test_case "empty" `Quick test_crc32_empty;
          Alcotest.test_case "combine known" `Quick test_crc32_combine_known;
          qcheck prop_crc32_chunking;
          qcheck prop_crc32_combine;
        ] );
      ( "kind",
        [
          Alcotest.test_case "names" `Quick test_kind_names;
          qcheck prop_kind_feeder_matches_digest;
          qcheck prop_kind_feeder_word64le;
        ] );
    ]
