(* The multicore stage-2 engine: the SPMC queue and domain pool under
   real contention, and the central property — parallel out-of-order
   execution of fused ILP plans is observationally identical to the
   serial layered reference, for every non-sequential plan shape and
   any pool size. *)

open Bufkit
open Alf_core

let check = Alcotest.check
let fail = Alcotest.fail
let qcheck t = QCheck_alcotest.to_alcotest t

(* --- Spmc --- *)

let test_spmc_fifo_serial () =
  let q = Par.Spmc.create ~capacity:8 in
  check Alcotest.int "rounded capacity" 8 (Par.Spmc.capacity q);
  for i = 1 to 5 do
    check Alcotest.bool "push" true (Par.Spmc.try_push q i)
  done;
  check Alcotest.int "length" 5 (Par.Spmc.length q);
  for i = 1 to 5 do
    match Par.Spmc.steal q with
    | Some v -> check Alcotest.int "FIFO under no contention" i v
    | None -> fail "queue emptied early"
  done;
  check Alcotest.bool "drained" true (Par.Spmc.steal q = None)

let test_spmc_full () =
  let q = Par.Spmc.create ~capacity:2 in
  check Alcotest.bool "push 1" true (Par.Spmc.try_push q 1);
  check Alcotest.bool "push 2" true (Par.Spmc.try_push q 2);
  check Alcotest.bool "full refuses" false (Par.Spmc.try_push q 3);
  ignore (Par.Spmc.steal q);
  check Alcotest.bool "slot freed" true (Par.Spmc.try_push q 3)

(* One producer, three thieves: every pushed item is stolen exactly once
   (the sum is exact), across many ring wrap-arounds. *)
let test_spmc_multidomain_exact () =
  let q = Par.Spmc.create ~capacity:64 in
  let n = 20_000 in
  let stolen_sum = Atomic.make 0 in
  let stolen_count = Atomic.make 0 in
  let stop = Atomic.make false in
  let thief () =
    let rec loop () =
      match Par.Spmc.steal q with
      | Some v ->
          ignore (Atomic.fetch_and_add stolen_sum v);
          ignore (Atomic.fetch_and_add stolen_count 1);
          loop ()
      | None -> if not (Atomic.get stop) then loop ()
    in
    loop ()
  in
  let thieves = Array.init 3 (fun _ -> Domain.spawn thief) in
  for i = 1 to n do
    while not (Par.Spmc.try_push q i) do
      Domain.cpu_relax ()
    done
  done;
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  (* A thief can legitimately exit in the window between observing an
     empty queue and the producer's final pushes; the producer (also a
     legal consumer) drains whatever is left, so exactly-once is checked
     over all consumers. *)
  let rec drain () =
    match Par.Spmc.steal q with
    | Some v ->
        ignore (Atomic.fetch_and_add stolen_sum v);
        ignore (Atomic.fetch_and_add stolen_count 1);
        drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.int "every item stolen exactly once" n
    (Atomic.get stolen_count);
  check Alcotest.int "sum intact" (n * (n + 1) / 2) (Atomic.get stolen_sum)

(* --- Pool --- *)

let test_pool_runs_every_task_once () =
  Par.Pool.with_pool ~domains:4 (fun pool ->
      check Alcotest.int "size" 4 (Par.Pool.size pool);
      let n = 500 in
      let hits = Array.make n (Atomic.make 0) in
      Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
      for _ = 1 to 3 do
        (* Several batches through one pool: workers must wake again. *)
        Par.Pool.run pool
          (Array.init n (fun i () -> ignore (Atomic.fetch_and_add hits.(i) 1)))
      done;
      Array.iteri
        (fun i h ->
          if Atomic.get h <> 3 then
            fail (Printf.sprintf "task %d ran %d times" i (Atomic.get h)))
        hits)

let test_pool_inline_when_single () =
  Par.Pool.with_pool ~domains:1 (fun pool ->
      let seen = ref [] in
      Par.Pool.run pool (Array.init 5 (fun i () -> seen := i :: !seen));
      (* One domain degenerates to an in-order inline loop. *)
      check (Alcotest.list Alcotest.int) "in order" [ 0; 1; 2; 3; 4 ]
        (List.rev !seen))

let test_pool_propagates_exception () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let ran = Atomic.make 0 in
      (match
         Par.Pool.run pool
           (Array.init 8 (fun i () ->
                ignore (Atomic.fetch_and_add ran 1);
                if i = 3 then failwith "boom"))
       with
      | () -> fail "expected Failure"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg);
      (* The batch settled (no abandoned tasks) and the pool survives. *)
      check Alcotest.int "whole batch still ran" 8 (Atomic.get ran);
      let ok = Atomic.make 0 in
      Par.Pool.run pool
        (Array.init 4 (fun _ () -> ignore (Atomic.fetch_and_add ok 1)));
      check Alcotest.int "pool reusable after failure" 4 (Atomic.get ok))

let test_pool_shutdown_idempotent () =
  let pool = Par.Pool.create ~domains:2 () in
  Par.Pool.run pool [| (fun () -> ()) |];
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  match Par.Pool.run pool [| (fun () -> ()) |] with
  | () -> fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

(* --- Ilp_par: parallel == serial, always --- *)

let mkbuf rng len =
  let b = Bytebuf.create len in
  Netsim.Rng.fill_bytes rng b;
  b

let adus_of_payloads payloads =
  let off = ref 0 in
  Array.mapi
    (fun i p ->
      let o = !off in
      off := o + Bytebuf.length p;
      Adu.make
        (Adu.name ~dest_off:o ~dest_len:(Bytebuf.length p) ~stream:1 ~index:i ())
        p)
    payloads

let equal_results (a : Ilp.result) (b : Ilp.result) =
  Bytebuf.equal a.Ilp.output b.Ilp.output && a.Ilp.checksums = b.Ilp.checksums

(* Every non-sequential plan shape the engine knows, parameterised by the
   ADU so positional ciphers get exercised too. *)
let shapes : (string * (Adu.t -> Ilp.plan)) list =
  [
    ("deliver", fun _ -> [ Ilp.Deliver_copy ]);
    ("checksum", fun _ -> [ Ilp.Checksum Checksum.Kind.Internet; Ilp.Deliver_copy ]);
    ( "xor+checksum",
      fun adu ->
        [
          Ilp.Xor_pad
            { key = 0xFEEDL; pos = Int64.of_int adu.Adu.name.Adu.dest_off };
          Ilp.Checksum Checksum.Kind.Crc32;
          Ilp.Deliver_copy;
        ] );
    ( "swab+checksum",
      fun _ ->
        [
          Ilp.Byteswap32;
          Ilp.Checksum Checksum.Kind.Fletcher32;
          Ilp.Deliver_copy;
        ] );
    ( "double-checksum",
      fun _ ->
        [
          Ilp.Checksum Checksum.Kind.Internet;
          Ilp.Xor_pad { key = 77L; pos = 0L };
          Ilp.Checksum Checksum.Kind.Adler32;
          Ilp.Deliver_copy;
        ] );
  ]

let pool_sizes = [ 1; 2; Domain.recommended_domain_count () ]

let prop_parallel_equals_layered =
  (* Random ADU count and sizes (multiples of 4 so Byteswap32 is legal),
     every shape, every pool size: byte-identical outputs, identical
     per-ADU checksums, identical merged checksum. *)
  QCheck.Test.make ~name:"ilp_par: parallel == layered for all shapes"
    ~count:30
    QCheck.(
      pair (int_range 0 12) (list_of_size Gen.(return 16) (int_range 0 64)))
    (fun (n_hint, size_hints) ->
      let rng = Netsim.Rng.create ~seed:(Int64.of_int (n_hint + 1)) in
      let sizes =
        List.filteri (fun i _ -> i < n_hint) size_hints
        |> List.map (fun s -> 4 * s)
      in
      let payloads = Array.of_list (List.map (mkbuf rng) sizes) in
      let adus = adus_of_payloads payloads in
      List.for_all
        (fun (_, plan) ->
          let reference =
            Array.map
              (fun (a : Adu.t) -> Ilp.run_layered (plan a) a.Adu.payload)
              adus
          in
          let ref_merged =
            Ilp_par.merge_checksums
              (Array.map (fun (r : Ilp.result) -> r.Ilp.checksums) reference)
          in
          List.for_all
            (fun domains ->
              Par.Pool.with_pool ~domains (fun pool ->
                  let out = Ilp_par.run ~pool ~plan adus in
                  Array.length out.Ilp_par.results = Array.length reference
                  && Array.for_all2 equal_results out.Ilp_par.results reference
                  && out.Ilp_par.merged_checksums = ref_merged))
            pool_sizes)
        shapes)

let test_ilp_par_dst_placement () =
  let rng = Netsim.Rng.create ~seed:7L in
  let payloads = Array.init 9 (fun i -> mkbuf rng (128 * (i + 1))) in
  let adus = adus_of_payloads payloads in
  let total = Array.fold_left (fun a p -> a + Bytebuf.length p) 0 payloads in
  let plan (adu : Adu.t) =
    [
      Ilp.Xor_pad { key = 3L; pos = Int64.of_int adu.Adu.name.Adu.dest_off };
      Ilp.Deliver_copy;
    ]
  in
  Par.Pool.with_pool ~domains:3 (fun pool ->
      let dst = Bytebuf.create total in
      let out = Ilp_par.run ~pool ~dst ~plan adus in
      (* Each region of dst holds that ADU's output - assembled without
         any reassembly step, in whatever order domains finished. *)
      Array.iteri
        (fun i (r : Ilp.result) ->
          let off = adus.(i).Adu.name.Adu.dest_off in
          let got =
            Bytebuf.sub dst ~pos:off ~len:(Bytebuf.length r.Ilp.output)
          in
          if not (Bytebuf.equal got r.Ilp.output) then
            fail (Printf.sprintf "ADU %d region mismatch at %d" i off))
        out.Ilp_par.results)

let test_ilp_par_dst_bounds () =
  let payload = Bytebuf.create 64 in
  let adu = Adu.make (Adu.name ~dest_off:100 ~dest_len:64 ~stream:1 ~index:0 ()) payload in
  let dst = Bytebuf.create 128 (* 100 + 64 > 128 *) in
  match Ilp_par.run ~dst ~plan:(fun _ -> [ Ilp.Deliver_copy ]) [| adu |] with
  | _ -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ilp_par_in_order_degrades () =
  let rng = Netsim.Rng.create ~seed:11L in
  let payloads = Array.init 12 (fun _ -> mkbuf rng 256) in
  let adus = adus_of_payloads payloads in
  let plan _ = [ Ilp.Rc4_stream { key = "karn" }; Ilp.Deliver_copy ] in
  let reference =
    Array.map (fun (a : Adu.t) -> Ilp.run_layered (plan a) a.Adu.payload) adus
  in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      let out = Ilp_par.run ~pool ~plan adus in
      check Alcotest.int "nothing ran parallel" 0 out.Ilp_par.parallel_adus;
      check Alcotest.int "whole batch fell back" (Array.length adus)
        out.Ilp_par.serial_fallback;
      check Alcotest.bool "results still identical" true
        (Array.for_all2 equal_results out.Ilp_par.results reference))

let test_ilp_par_invalid_plan_rejected () =
  let adu = Adu.make (Adu.name ~stream:1 ~index:0 ()) (Bytebuf.create 8) in
  (* Byteswap32 not first: refused by validate, so refused up front here. *)
  match
    Ilp_par.run ~plan:(fun _ -> [ Ilp.Deliver_copy; Ilp.Byteswap32 ]) [| adu |]
  with
  | _ -> fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_merge_checksums_deterministic () =
  let per_adu =
    [|
      [ (Checksum.Kind.Internet, 0x1234); (Checksum.Kind.Crc32, 0xAA) ];
      [ (Checksum.Kind.Internet, 0x0001) ];
      [ (Checksum.Kind.Internet, 0xFFFF); (Checksum.Kind.Crc32, 0xBB) ];
    |]
  in
  let a = Ilp_par.merge_checksums per_adu in
  let b = Ilp_par.merge_checksums per_adu in
  check Alcotest.bool "pure function of slots" true (a = b);
  (* Slot order is significant (index-ordered fold), so swapping two
     ADUs' results must change the merge - completion order never enters,
     only position. *)
  let swapped = Array.copy per_adu in
  swapped.(0) <- per_adu.(1);
  swapped.(1) <- per_adu.(0);
  check Alcotest.bool "position-sensitive" true
    (Ilp_par.merge_checksums swapped <> a)

(* --- Stage2 with a pool --- *)

let test_stage2_pool_equivalence () =
  let rng = Netsim.Rng.create ~seed:23L in
  let payloads = Array.init 25 (fun _ -> mkbuf rng 512) in
  let adus = adus_of_payloads payloads in
  let plan = Stage2.decrypt_verify_at ~key:0xBEEFL in
  let collect stage2_of_deliver =
    let seen = ref [] in
    let stage = stage2_of_deliver (fun r -> seen := r :: !seen) in
    Array.iter (Stage2.deliver_fn stage) adus;
    Stage2.flush stage;
    check Alcotest.int "all processed" (Array.length adus)
      (Stage2.stats stage).Stage2.processed;
    List.rev_map
      (fun (r : Stage2.result) ->
        (r.Stage2.adu.Adu.name.Adu.index,
         Bytebuf.to_string r.Stage2.adu.Adu.payload,
         r.Stage2.checksums))
      !seen
  in
  let serial = collect (fun deliver -> Stage2.create ~plan ~deliver ()) in
  Par.Pool.with_pool ~domains:3 (fun pool ->
      (* batch 8 does not divide 25: the flush drains the remainder. *)
      let pooled =
        collect (fun deliver ->
            Stage2.create ~pool ~batch:8 ~plan ~deliver ())
      in
      check Alcotest.bool
        "pooled delivery == serial delivery (same order, bytes, checksums)"
        true (pooled = serial))

let test_stage2_pool_still_rejects_in_order () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let delivered = ref 0 in
      let stage =
        Stage2.create ~pool
          ~plan:(fun _ -> [ Ilp.Rc4_stream { key = "k" }; Ilp.Deliver_copy ])
          ~deliver:(fun _ -> incr delivered)
          ()
      in
      Stage2.deliver_fn stage
        (Adu.make (Adu.name ~stream:0 ~index:0 ()) (Bytebuf.create 4));
      Stage2.flush stage;
      check Alcotest.int "rejected, not queued" 0 !delivered;
      check Alcotest.int "counted" 1
        (Stage2.stats stage).Stage2.rejected_order)

let () =
  Alcotest.run "par"
    [
      ( "spmc",
        [
          Alcotest.test_case "fifo serial" `Quick test_spmc_fifo_serial;
          Alcotest.test_case "full refuses" `Quick test_spmc_full;
          Alcotest.test_case "multi-domain exact steal" `Quick
            test_spmc_multidomain_exact;
        ] );
      ( "pool",
        [
          Alcotest.test_case "every task once, batches reuse" `Quick
            test_pool_runs_every_task_once;
          Alcotest.test_case "single domain inline" `Quick
            test_pool_inline_when_single;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
      ( "ilp_par",
        [
          qcheck prop_parallel_equals_layered;
          Alcotest.test_case "dst placement" `Quick test_ilp_par_dst_placement;
          Alcotest.test_case "dst bounds" `Quick test_ilp_par_dst_bounds;
          Alcotest.test_case "in-order degrades to serial" `Quick
            test_ilp_par_in_order_degrades;
          Alcotest.test_case "invalid plan rejected" `Quick
            test_ilp_par_invalid_plan_rejected;
          Alcotest.test_case "merge deterministic" `Quick
            test_merge_checksums_deterministic;
        ] );
      ( "stage2",
        [
          Alcotest.test_case "pooled == serial" `Quick
            test_stage2_pool_equivalence;
          Alcotest.test_case "pooled still rejects in-order" `Quick
            test_stage2_pool_still_rejects_in_order;
        ] );
    ]
