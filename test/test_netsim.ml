open Netsim

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false
    (List.init 8 (fun _ -> Rng.int64 a) = List.init 8 (fun _ -> Rng.int64 b))

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7L in
  let child = Rng.split parent in
  Alcotest.(check bool) "child differs from parent" false
    (List.init 8 (fun _ -> Rng.int64 child)
    = List.init 8 (fun _ -> Rng.int64 parent))

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng: int within bound" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng ~bound in
      v >= 0 && v < bound)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"rng: float in [0,1)" ~count:500 QCheck.int64
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

let test_rng_bool_extremes () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0" false (Rng.bool rng ~p:0.0);
    Alcotest.(check bool) "p=1" true (Rng.bool rng ~p:1.0)
  done

let test_rng_bool_statistics () =
  let rng = Rng.create ~seed:11L in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Rng.bool rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "about 30%" true (rate > 0.27 && rate < 0.33)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:5L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 (fun i -> i)) sorted

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:13L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:2.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2" true (mean > 1.9 && mean < 2.1)

(* --- Engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule_at e 2.0 (note "c"));
  ignore (Engine.schedule_at e 1.0 (note "a"));
  ignore (Engine.schedule_at e 1.0 (note "b"));
  Engine.run_until_idle e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 2.0 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule_at e 1.0 (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run_until_idle e;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "pending" 0 (Engine.pending e)

let test_engine_horizon () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule_at e 1.0 (fun () -> incr count));
  ignore (Engine.schedule_at e 5.0 (fun () -> incr count));
  Engine.run ~until:2.0 e;
  Alcotest.(check int) "only first fired" 1 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.0 (Engine.now e);
  Engine.run_until_idle e;
  Alcotest.(check int) "second fired later" 2 !count

let test_engine_schedule_in_past_clamped () =
  let e = Engine.create () in
  let order = ref [] in
  ignore
    (Engine.schedule_at e 3.0 (fun () ->
         ignore (Engine.schedule_at e 1.0 (fun () -> order := "late" :: !order));
         order := "first" :: !order));
  Engine.run_until_idle e;
  Alcotest.(check (list string)) "clamped to now" [ "first"; "late" ] (List.rev !order);
  Alcotest.(check (float 1e-9)) "clock stays" 3.0 (Engine.now e)

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "stopped after 4" 4 !count

let test_engine_step_empty () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let times = ref [] in
  let rec chain n () =
    times := Engine.now e :: !times;
    if n > 0 then ignore (Engine.schedule_after e 0.5 (chain (n - 1)))
  in
  ignore (Engine.schedule_at e 0.0 (chain 4));
  Engine.run_until_idle e;
  Alcotest.(check (list (float 1e-9))) "chain times"
    [ 0.0; 0.5; 1.0; 1.5; 2.0 ]
    (List.rev !times)

(* Model check: the engine fires exactly the uncancelled events, in
   (time, scheduling-order) order, against a naive sorted-list model. *)
let prop_engine_matches_model =
  QCheck.Test.make ~name:"engine: firing order matches reference model" ~count:300
    QCheck.(small_list (pair (int_bound 1000) (option (int_bound 20))))
    (fun ops ->
      (* Each op schedules an event at time t/100.0; [Some k] additionally
         cancels the k-th previously scheduled event (if any). *)
      let e = Engine.create () in
      let fired = ref [] in
      let timers = ref [||] in
      let model = ref [] in
      let cancelled = Hashtbl.create 16 in
      List.iteri
        (fun id (t100, cancel) ->
          let time = float_of_int t100 /. 100.0 in
          let timer = Engine.schedule_at e time (fun () -> fired := id :: !fired) in
          timers := Array.append !timers [| timer |];
          model := (time, id) :: !model;
          match cancel with
          | Some k when Array.length !timers > 0 ->
              let victim = k mod Array.length !timers in
              Engine.cancel !timers.(victim);
              Hashtbl.replace cancelled victim ()
          | Some _ | None -> ())
        ops;
      Engine.run_until_idle e;
      let expected =
        !model |> List.rev
        |> List.filter (fun (_, id) -> not (Hashtbl.mem cancelled id))
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
        |> List.map snd
      in
      List.rev !fired = expected)

(* --- Impair --- *)

let test_impair_none () =
  let rng = Rng.create ~seed:1L in
  for _ = 1 to 100 do
    match Impair.judge Impair.none rng with
    | Impair.Deliver { extra_delay; corrupted; copies } ->
        Alcotest.(check (float 0.0)) "no delay" 0.0 extra_delay;
        Alcotest.(check bool) "clean" false corrupted;
        Alcotest.(check int) "single" 1 copies
    | Impair.Drop -> Alcotest.fail "dropped with no impairment"
  done

let test_impair_certain_loss () =
  let rng = Rng.create ~seed:1L in
  for _ = 1 to 50 do
    match Impair.judge (Impair.lossy 1.0) rng with
    | Impair.Drop -> ()
    | Impair.Deliver _ -> Alcotest.fail "delivered at loss=1"
  done

let test_impair_loss_rate () =
  let rng = Rng.create ~seed:10L in
  let dropped = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    match Impair.judge (Impair.lossy 0.1) rng with
    | Impair.Drop -> incr dropped
    | Impair.Deliver _ -> ()
  done;
  let rate = float_of_int !dropped /. float_of_int n in
  Alcotest.(check bool) "about 10%" true (rate > 0.08 && rate < 0.12)

let test_impair_corrupt_payload () =
  let rng = Rng.create ~seed:2L in
  let payload = Bufkit.Bytebuf.of_string "some payload bytes" in
  for _ = 1 to 50 do
    let bad = Impair.corrupt_payload rng payload in
    Alcotest.(check int) "length preserved" (Bufkit.Bytebuf.length payload)
      (Bufkit.Bytebuf.length bad);
    let diffs = ref 0 in
    for i = 0 to Bufkit.Bytebuf.length payload - 1 do
      if Bufkit.Bytebuf.get payload i <> Bufkit.Bytebuf.get bad i then incr diffs
    done;
    Alcotest.(check int) "exactly one byte flipped" 1 !diffs
  done

(* --- Link --- *)

let mk_engine_link ?(impair = Impair.none) ?(queue_limit = 64)
    ?(bandwidth_bps = 8_000_000.0) ?(delay = 0.01) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:99L in
  let link = Link.create ~engine ~rng ~impair ~queue_limit ~bandwidth_bps ~delay () in
  (engine, link)

let mk_packet ?(len = 980) id =
  (* 980 + 20 header = 1000 wire bytes = 1 ms at 8 Mb/s. *)
  Packet.make ~id ~src:0 ~dst:1 ~proto:0 (Bufkit.Bytebuf.create len)

let test_link_single_packet_timing () =
  let engine, link = mk_engine_link () in
  let arrival = ref nan in
  Link.set_receiver link (fun _ -> arrival := Engine.now engine);
  ignore (Link.send link (mk_packet 0));
  Engine.run_until_idle engine;
  Alcotest.(check (float 1e-9)) "arrival = ser + prop" 0.011 !arrival

let test_link_back_to_back () =
  let engine, link = mk_engine_link () in
  let arrivals = ref [] in
  Link.set_receiver link (fun _ -> arrivals := Engine.now engine :: !arrivals);
  ignore (Link.send link (mk_packet 0));
  ignore (Link.send link (mk_packet 1));
  Engine.run_until_idle engine;
  match List.rev !arrivals with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "first" 0.011 a;
      Alcotest.(check (float 1e-9)) "second serialises behind" 0.012 b
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_queue_overflow () =
  let engine, link = mk_engine_link ~queue_limit:2 () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  let accepted = List.init 5 (fun i -> Link.send link (mk_packet i)) in
  Engine.run_until_idle engine;
  Alcotest.(check int) "deliveries" 2 !got;
  Alcotest.(check int) "drops counted" 3 (Link.stats link).Stats.dropped_queue;
  Alcotest.(check (list bool)) "send results" [ true; true; false; false; false ]
    accepted

let test_link_loss_counted () =
  let engine, link = mk_engine_link ~impair:(Impair.lossy 1.0) () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  ignore (Link.send link (mk_packet 0));
  Engine.run_until_idle engine;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "loss counted" 1 (Link.stats link).Stats.dropped_loss

let test_link_duplicate () =
  let engine, link = mk_engine_link ~impair:(Impair.make ~duplicate:1.0 ()) () in
  let got = ref 0 in
  Link.set_receiver link (fun _ -> incr got);
  ignore (Link.send link (mk_packet 0));
  Engine.run_until_idle engine;
  Alcotest.(check int) "delivered twice" 2 !got;
  Alcotest.(check int) "dup counted" 1 (Link.stats link).Stats.duplicated

let test_link_corruption_changes_payload () =
  let engine, link = mk_engine_link ~impair:(Impair.make ~corrupt:1.0 ()) () in
  let clean = Bufkit.Bytebuf.of_string "payload-under-test" in
  let delivered = ref None in
  Link.set_receiver link (fun p -> delivered := Some p.Packet.payload);
  ignore
    (Link.send link
       (Packet.make ~id:0 ~src:0 ~dst:1 ~proto:0 (Bufkit.Bytebuf.copy clean)));
  Engine.run_until_idle engine;
  match !delivered with
  | Some payload ->
      Alcotest.(check bool) "corrupted" false (Bufkit.Bytebuf.equal payload clean)
  | None -> Alcotest.fail "no delivery"

(* Conservation: every packet handed to a link is accounted for exactly
   once as delivered, lost, or queue-dropped — duplication adds
   deliveries, never losses. *)
let prop_link_conservation =
  QCheck.Test.make ~name:"link: packet conservation" ~count:100
    QCheck.(triple (int_range 1 80) (pair (int_bound 40) (int_bound 40)) int64)
    (fun (n_packets, (loss_pct, dup_pct), seed) ->
      let engine = Engine.create () in
      let rng = Rng.create ~seed in
      let impair =
        Impair.make
          ~loss:(float_of_int loss_pct /. 100.0)
          ~duplicate:(float_of_int dup_pct /. 100.0)
          ()
      in
      let link =
        Link.create ~engine ~rng ~impair ~queue_limit:16 ~bandwidth_bps:1e6
          ~delay:0.001 ()
      in
      let delivered = ref 0 in
      Link.set_receiver link (fun _ -> incr delivered);
      let accepted = ref 0 in
      for i = 0 to n_packets - 1 do
        if Link.send link (mk_packet ~len:100 i) then incr accepted
      done;
      Engine.run_until_idle engine;
      let st = Link.stats link in
      st.Stats.sent_pkts = !accepted
      && !accepted + st.Stats.dropped_queue = n_packets
      && !delivered = st.Stats.delivered_pkts
      && st.Stats.delivered_pkts + st.Stats.dropped_loss
         = !accepted + st.Stats.duplicated)

(* --- Node / Switch / Topology --- *)

let test_node_demux () =
  let node = Node.create ~addr:5 in
  let got_a = ref 0 and got_b = ref 0 in
  Node.attach node ~proto:1 (fun _ -> incr got_a);
  Node.attach node ~proto:2 (fun _ -> incr got_b);
  let pkt proto dst = Packet.make ~id:0 ~src:9 ~dst ~proto (Bufkit.Bytebuf.create 1) in
  Node.recv node (pkt 1 5);
  Node.recv node (pkt 2 5);
  Node.recv node (pkt 2 5);
  Node.recv node (pkt 3 5);
  Node.recv node (pkt 1 6);
  Alcotest.(check int) "proto 1" 1 !got_a;
  Alcotest.(check int) "proto 2" 2 !got_b;
  Alcotest.(check int) "undeliverable" 2 (Node.undeliverable node)

let test_node_unroutable () =
  let node = Node.create ~addr:1 in
  let sent =
    Node.send node (Packet.make ~id:0 ~src:1 ~dst:2 ~proto:0 (Bufkit.Bytebuf.create 1))
  in
  Alcotest.(check bool) "send fails" false sent;
  Alcotest.(check int) "counted" 1 (Node.unroutable node)

let test_topology_point_to_point () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1L in
  let net =
    Topology.point_to_point ~engine ~rng ~bandwidth_bps:1e6 ~delay:0.001 ~a:1 ~b:2 ()
  in
  let got = ref None in
  Node.attach net.Topology.b ~proto:9 (fun p -> got := Some p.Packet.src);
  ignore
    (Node.send net.Topology.a
       (Packet.make ~id:0 ~src:1 ~dst:2 ~proto:9 (Bufkit.Bytebuf.create 10)));
  Engine.run_until_idle engine;
  Alcotest.(check (option int)) "received from a" (Some 1) !got

let test_topology_star_any_to_any () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:2L in
  let star =
    Topology.star ~engine ~rng ~bandwidth_bps:1e6 ~delay:0.001 ~hosts:[ 1; 2; 3 ] ()
  in
  let hits = Array.make 3 0 in
  Array.iteri
    (fun i host -> Node.attach host ~proto:4 (fun _ -> hits.(i) <- hits.(i) + 1))
    star.Topology.hub_hosts;
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if Node.addr src <> Node.addr dst then
            ignore
              (Node.send src
                 (Packet.make ~id:0 ~src:(Node.addr src) ~dst:(Node.addr dst)
                    ~proto:4 (Bufkit.Bytebuf.create 10))))
        star.Topology.hub_hosts)
    star.Topology.hub_hosts;
  Engine.run_until_idle engine;
  Alcotest.(check (array int)) "each got two" [| 2; 2; 2 |] hits

let test_switch_no_route_counted () =
  let engine = Engine.create () in
  let sw = Switch.create ~engine () in
  Switch.recv sw (Packet.make ~id:0 ~src:1 ~dst:99 ~proto:0 (Bufkit.Bytebuf.create 4));
  Alcotest.(check int) "no route counted" 1 (Switch.no_route sw);
  Alcotest.(check int) "nothing forwarded" 0 (Switch.forwarded sw)

let test_topology_dumbbell () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:3L in
  let d =
    Topology.dumbbell ~engine ~rng ~edge_bandwidth_bps:1e7
      ~bottleneck_bandwidth_bps:1e6 ~delay:0.001 ~left:[ 1; 2 ] ~right:[ 11; 12 ] ()
  in
  let got = ref 0 in
  Array.iter (fun host -> Node.attach host ~proto:7 (fun _ -> incr got)) d.Topology.right;
  Array.iter
    (fun src ->
      ignore
        (Node.send src
           (Packet.make ~id:0 ~src:(Node.addr src) ~dst:11 ~proto:7
              (Bufkit.Bytebuf.create 10)));
      ignore
        (Node.send src
           (Packet.make ~id:0 ~src:(Node.addr src) ~dst:12 ~proto:7
              (Bufkit.Bytebuf.create 10))))
    d.Topology.left;
  Engine.run_until_idle engine;
  Alcotest.(check int) "all crossed the bottleneck" 4 !got

(* --- Workload --- *)

let test_workload_cbr_rate () =
  let engine = Engine.create () in
  let emitted = ref 0 in
  let src =
    Workload.cbr ~engine ~rate_bps:80_000.0 ~payload_bytes:1000 ~until:1.0
      ~emit:(fun b ->
        Alcotest.(check int) "payload size" 1000 (Bufkit.Bytebuf.length b);
        incr emitted)
      ()
  in
  Engine.run ~until:2.0 engine;
  (* 80 kb/s at 8 kb per payload = 10 payloads/s for 1 s; float rounding
     at the horizon allows one extra tick. *)
  Alcotest.(check bool) (Printf.sprintf "ten-ish payloads (%d)" !emitted) true
    (!emitted = 10 || !emitted = 11);
  Alcotest.(check int) "counter agrees" !emitted (Workload.emitted src);
  Alcotest.(check int) "bytes" (!emitted * 1000) (Workload.emitted_bytes src)

let test_workload_cbr_stop () =
  let engine = Engine.create () in
  let src = ref None in
  let emitted = ref 0 in
  let s =
    Workload.cbr ~engine ~rate_bps:8000.0 ~payload_bytes:100 ~emit:(fun _ ->
        incr emitted;
        if !emitted = 3 then Workload.stop (Option.get !src))
      ()
  in
  src := Some s;
  Engine.run ~until:100.0 engine;
  Alcotest.(check int) "stopped after 3" 3 !emitted

let test_workload_poisson_mean_rate () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:808L in
  let src =
    Workload.poisson ~engine ~rng ~mean_rate_pps:100.0 ~payload_bytes:10
      ~until:50.0 ~emit:(fun _ -> ()) ()
  in
  Engine.run ~until:60.0 engine;
  (* ~5000 arrivals expected; allow generous slack. *)
  let n = Workload.emitted src in
  Alcotest.(check bool) (Printf.sprintf "rate plausible (%d)" n) true
    (n > 4500 && n < 5500)

let test_workload_on_off_duty_cycle () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:909L in
  let src =
    Workload.on_off ~engine ~rng ~rate_bps:80_000.0 ~payload_bytes:100
      ~mean_on:0.1 ~mean_off:0.1 ~until:100.0 ~emit:(fun _ -> ()) ()
  in
  Engine.run ~until:120.0 engine;
  (* Full rate would emit 100 payloads/s * 100 s = 10000; a 50% duty cycle
     should land near half that. *)
  let n = Workload.emitted src in
  Alcotest.(check bool) (Printf.sprintf "duty cycle plausible (%d)" n) true
    (n > 3500 && n < 6500)

let test_workload_congestion_at_bottleneck () =
  (* Two CBR sources totalling 1.6 Mb/s into a 1 Mb/s bottleneck: the
     shared link must shed ~40% through its finite queue. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:4L in
  let d =
    Topology.dumbbell ~engine ~rng ~queue_limit:16 ~edge_bandwidth_bps:10e6
      ~bottleneck_bandwidth_bps:1e6 ~delay:0.001 ~left:[ 1; 2 ] ~right:[ 11 ] ()
  in
  let received = ref 0 in
  Node.attach d.Topology.right.(0) ~proto:5 (fun _ -> incr received);
  let sent = ref 0 in
  Array.iter
    (fun src ->
      ignore
        (Workload.cbr ~engine ~rate_bps:800_000.0 ~payload_bytes:1000 ~until:2.0
           ~emit:(fun payload ->
             incr sent;
             ignore
               (Node.send src
                  (Packet.make ~id:!sent ~src:(Node.addr src) ~dst:11 ~proto:5
                     payload)))
           ()))
    d.Topology.left;
  Engine.run ~until:10.0 engine;
  let drops = (Link.stats d.Topology.bottleneck_lr).Stats.dropped_queue in
  Alcotest.(check int) "conservation through the switch fabric" !sent
    (!received + drops);
  let rate = float_of_int !received /. float_of_int !sent in
  Alcotest.(check bool)
    (Printf.sprintf "bottleneck shed load (%.0f%% delivered)" (rate *. 100.0))
    true
    (rate > 0.5 && rate < 0.75)

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summary () in
  List.iter (Stats.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.maximum s);
  (* Sample (n-1) standard deviation since the Welford rewrite. *)
  Alcotest.(check (float 1e-6)) "stddev" (sqrt (5.0 /. 3.0)) (Stats.stddev s)

let test_stats_stddev_large_offset () =
  (* The old sumsq/n - mean^2 formula cancels catastrophically when the
     mean dwarfs the spread: for 1e9 + {0,1,2} it returned 0 (or garbage)
     where the true sample stddev is exactly 1. *)
  let s = Stats.summary () in
  List.iter (Stats.observe s) [ 1e9; 1e9 +. 1.0; 1e9 +. 2.0 ];
  Alcotest.(check (float 1e-6)) "stddev at large offset" 1.0 (Stats.stddev s)

let test_stats_series () =
  let s = Stats.series () in
  Stats.record s ~t:1.0 10.0;
  Stats.record s ~t:2.0 20.0;
  Stats.record s ~t:3.0 30.0;
  Alcotest.(check (option (float 0.0))) "at_or_before 2.5" (Some 20.0)
    (Stats.at_or_before s 2.5);
  Alcotest.(check (option (float 0.0))) "before first" None (Stats.at_or_before s 0.5);
  Alcotest.(check int) "points" 3 (List.length (Stats.points s))

(* --- Trace --- *)

let test_trace_deep_ring () =
  (* The lazy trim takes a [capacity]-deep prefix; with the old
     non-tail-recursive take this overflowed the stack on big rings. *)
  let e = Engine.create () in
  let capacity = 200_000 in
  let tr = Trace.create ~capacity e in
  for i = 1 to (2 * capacity) + 10 do
    Trace.log tr "t" "%d" i
  done;
  let es = Trace.entries tr in
  Alcotest.(check int) "trimmed to capacity" capacity (List.length es);
  (match List.rev es with
  | (_, _, last) :: _ ->
      Alcotest.(check string) "newest kept" (string_of_int ((2 * capacity) + 10)) last
  | [] -> Alcotest.fail "empty trace");
  Alcotest.(check int) "size" capacity (Trace.size tr)

let test_trace_basic () =
  let e = Engine.create () in
  let tr = Trace.create e in
  Trace.log tr "test" "hello %d" 1;
  ignore (Engine.schedule_at e 1.5 (fun () -> Trace.log tr "test" "later"));
  Engine.run_until_idle e;
  match Trace.entries tr with
  | [ (t1, "test", "hello 1"); (t2, "test", "later") ] ->
      Alcotest.(check (float 0.0)) "first at 0" 0.0 t1;
      Alcotest.(check (float 0.0)) "second at 1.5" 1.5 t2
  | _ -> Alcotest.fail "unexpected entries"

let test_trace_capacity () =
  let e = Engine.create () in
  let tr = Trace.create ~capacity:10 e in
  for i = 1 to 100 do
    Trace.log tr "x" "%d" i
  done;
  let entries = Trace.entries tr in
  Alcotest.(check bool) "bounded" true (List.length entries <= 10);
  match List.rev entries with
  | (_, _, last) :: _ -> Alcotest.(check string) "newest kept" "100" last
  | [] -> Alcotest.fail "empty"

let () =
  Alcotest.run "netsim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
          Alcotest.test_case "bool statistics" `Quick test_rng_bool_statistics;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          qcheck prop_rng_int_bounds;
          qcheck prop_rng_float_unit;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "past clamped" `Quick test_engine_schedule_in_past_clamped;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "step empty" `Quick test_engine_step_empty;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          qcheck prop_engine_matches_model;
        ] );
      ( "impair",
        [
          Alcotest.test_case "none" `Quick test_impair_none;
          Alcotest.test_case "certain loss" `Quick test_impair_certain_loss;
          Alcotest.test_case "loss rate" `Quick test_impair_loss_rate;
          Alcotest.test_case "corrupt payload" `Quick test_impair_corrupt_payload;
        ] );
      ( "link",
        [
          Alcotest.test_case "single packet timing" `Quick test_link_single_packet_timing;
          Alcotest.test_case "back to back" `Quick test_link_back_to_back;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "loss counted" `Quick test_link_loss_counted;
          Alcotest.test_case "duplicate" `Quick test_link_duplicate;
          Alcotest.test_case "corruption" `Quick test_link_corruption_changes_payload;
          qcheck prop_link_conservation;
        ] );
      ( "node+topology",
        [
          Alcotest.test_case "node demux" `Quick test_node_demux;
          Alcotest.test_case "node unroutable" `Quick test_node_unroutable;
          Alcotest.test_case "point to point" `Quick test_topology_point_to_point;
          Alcotest.test_case "star any-to-any" `Quick test_topology_star_any_to_any;
          Alcotest.test_case "dumbbell" `Quick test_topology_dumbbell;
          Alcotest.test_case "switch no route" `Quick test_switch_no_route_counted;
        ] );
      ( "workload",
        [
          Alcotest.test_case "cbr rate" `Quick test_workload_cbr_rate;
          Alcotest.test_case "cbr stop" `Quick test_workload_cbr_stop;
          Alcotest.test_case "poisson mean rate" `Quick test_workload_poisson_mean_rate;
          Alcotest.test_case "on/off duty cycle" `Quick test_workload_on_off_duty_cycle;
          Alcotest.test_case "congestion at bottleneck" `Quick
            test_workload_congestion_at_bottleneck;
        ] );
      ( "stats+trace",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "stddev large offset" `Quick
            test_stats_stddev_large_offset;
          Alcotest.test_case "series" `Quick test_stats_series;
          Alcotest.test_case "trace basic" `Quick test_trace_basic;
          Alcotest.test_case "trace capacity" `Quick test_trace_capacity;
          Alcotest.test_case "trace deep ring" `Quick test_trace_deep_ring;
        ] );
    ]
