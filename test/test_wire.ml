open Bufkit
open Wire

let qcheck t = QCheck_alcotest.to_alcotest t
let hexbuf b =
  String.concat " "
    (List.init (Bytebuf.length b) (fun i -> Printf.sprintf "%02x" (Bytebuf.get_uint8 b i)))

(* A generator of abstract values (bounded depth, 32-bit ints). *)
let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  let int32ish = map (fun i -> Value.Int (Int32.to_int i)) int32 in
  let leaf =
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        int32ish;
        map (fun i -> Value.Int64 i) int64;
        map (fun s -> Value.Octets s) (string_size (0 -- 20));
        map
          (fun s -> Value.Utf8 s)
          (string_size ~gen:(char_range 'a' 'z') (0 -- 12));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 1,
            map (fun vs -> Value.List vs) (list_size (0 -- 4) (node (depth - 1)))
          );
          ( 1,
            map
              (fun vs ->
                Value.Record (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) vs))
              (list_size (1 -- 3) (node (depth - 1))) );
        ]
  in
  node 3

let arb_value = QCheck.make ~print:(Format.asprintf "%a" Value.pp) value_gen

(* --- Value --- *)

let test_value_helpers () =
  let v = Value.int_array [| 1; 2; 3 |] in
  (match Value.to_int_array v with
  | Some a -> Alcotest.(check (array int)) "int_array round" [| 1; 2; 3 |] a
  | None -> Alcotest.fail "to_int_array");
  Alcotest.(check bool) "non-array" true
    (Value.to_int_array (Value.List [ Value.Bool true ]) = None);
  Alcotest.(check int) "abstract size ints" 12 (Value.abstract_size v);
  let o = Value.octet_string 100 in
  Alcotest.(check int) "octet_string size" 100 (Value.abstract_size o);
  Alcotest.(check bool) "octet_string deterministic" true
    (Value.equal o (Value.octet_string 100))

let test_value_strip_names () =
  let v =
    Value.Record
      [ ("a", Value.Int 1); ("b", Value.List [ Value.Record [ ("c", Value.Null) ] ]) ]
  in
  Alcotest.(check bool) "strip" true
    (Value.equal (Value.strip_names v)
       (Value.List [ Value.Int 1; Value.List [ Value.List [ Value.Null ] ] ]))

(* --- BER --- *)

let test_ber_known_encodings () =
  let cases =
    [
      (Value.Null, "05 00");
      (Value.Bool true, "01 01 ff");
      (Value.Bool false, "01 01 00");
      (Value.Int 0, "02 01 00");
      (Value.Int 127, "02 01 7f");
      (Value.Int 128, "02 02 00 80");
      (Value.Int (-128), "02 01 80");
      (Value.Int (-129), "02 02 ff 7f");
      (Value.Octets "ab", "04 02 61 62");
      (Value.Utf8 "a", "0c 01 61");
      (Value.List [ Value.Int 1 ], "30 03 02 01 01");
    ]
  in
  List.iter
    (fun (v, expect) ->
      Alcotest.(check string)
        (Format.asprintf "%a" Value.pp v)
        expect
        (hexbuf (Ber.encode v)))
    cases

let test_ber_long_length () =
  let v = Value.Octets (String.make 200 'x') in
  let b = Ber.encode v in
  Alcotest.(check int) "tag" 0x04 (Bytebuf.get_uint8 b 0);
  Alcotest.(check int) "long form" 0x81 (Bytebuf.get_uint8 b 1);
  Alcotest.(check int) "length" 200 (Bytebuf.get_uint8 b 2);
  Alcotest.(check int) "total" 203 (Bytebuf.length b)

let test_ber_decode_errors () =
  let expect_err what s =
    match Ber.decode (Bytebuf.of_string s) with
    | _ -> Alcotest.fail (what ^ ": expected Decode_error")
    | exception Ber.Decode_error _ -> ()
  in
  expect_err "truncated" "\x02\x04\x01";
  expect_err "trailing" "\x05\x00\x00";
  expect_err "bad tag" "\x13\x01\x00";
  expect_err "indefinite" "\x30\x80\x05\x00\x00\x00";
  expect_err "bool length" "\x01\x02\x00\x00"

let prop_ber_round_trip =
  QCheck.Test.make ~name:"ber: decode(encode v) = canonical v" ~count:500 arb_value
    (fun v -> Value.equal (Ber.decode (Ber.encode v)) (Value.canonical v))

let prop_ber_sizeof =
  QCheck.Test.make ~name:"ber: sizeof = |encode|" ~count:500 arb_value (fun v ->
      Ber.sizeof v = Bytebuf.length (Ber.encode v))

let prop_ber_interpretive_equal =
  QCheck.Test.make ~name:"ber: interpretive = tuned" ~count:300 arb_value
    (fun v -> Bytebuf.equal (Ber.encode_interpretive v) (Ber.encode v))

let prop_ber_int_array_fast_path =
  QCheck.Test.make ~name:"ber: int-array fast path" ~count:300
    QCheck.(array_of_size Gen.(0 -- 50) (map Int32.to_int int32))
    (fun a ->
      let fast = Ber.encode_int_array a in
      let slow = Ber.encode (Value.int_array a) in
      Bytebuf.equal fast slow && Ber.decode_int_array fast = a)

let prop_ber_fused_checksum =
  QCheck.Test.make ~name:"ber: fused convert+checksum" ~count:300
    QCheck.(array_of_size Gen.(0 -- 60) (map Int32.to_int int32))
    (fun a ->
      let encoded, cksum = Ber.encode_int_array_with_checksum a in
      Bytebuf.equal encoded (Ber.encode_int_array a)
      && cksum = Checksum.Internet.digest encoded)

let test_ber_decode_prefix () =
  let b = Bytebuf.concat [ Ber.encode (Value.Int 7); Bytebuf.of_string "rest" ] in
  let v, used = Ber.decode_prefix b in
  Alcotest.(check bool) "value" true (Value.equal v (Value.Int 7));
  Alcotest.(check int) "consumed" 3 used

(* --- XDR --- *)

let test_xdr_known_encodings () =
  Alcotest.(check string) "int 1" "00 00 00 01"
    (hexbuf (Xdr.encode Xdr.S_int (Value.Int 1)));
  Alcotest.(check string) "int -1" "ff ff ff ff"
    (hexbuf (Xdr.encode Xdr.S_int (Value.Int (-1))));
  Alcotest.(check string) "string a (padded)" "00 00 00 01 61 00 00 00"
    (hexbuf (Xdr.encode Xdr.S_string (Value.Utf8 "a")));
  Alcotest.(check string) "bool true" "00 00 00 01"
    (hexbuf (Xdr.encode Xdr.S_bool (Value.Bool true)))

let test_xdr_int_range () =
  match Xdr.encode Xdr.S_int (Value.Int 0x100000000) with
  | _ -> Alcotest.fail "expected range error"
  | exception Xdr.Error _ -> ()

let prop_xdr_round_trip =
  QCheck.Test.make ~name:"xdr: decode(encode v) = canonical v" ~count:500 arb_value
    (fun v ->
      let schema = Xdr.schema_of_value v in
      Value.equal (Xdr.decode schema (Xdr.encode schema v)) (Value.canonical v))

let prop_xdr_sizeof =
  QCheck.Test.make ~name:"xdr: sizeof = |encode|, word aligned" ~count:500
    arb_value (fun v ->
      let schema = Xdr.schema_of_value v in
      let b = Xdr.encode schema v in
      Xdr.sizeof schema v = Bytebuf.length b && Bytebuf.length b mod 4 = 0)

let prop_xdr_int_array =
  QCheck.Test.make ~name:"xdr: int-array fast path" ~count:300
    QCheck.(array_of_size Gen.(0 -- 50) (map Int32.to_int int32))
    (fun a ->
      let fast = Xdr.encode_int_array a in
      let via_schema = Xdr.encode (Xdr.S_array Xdr.S_int) (Value.int_array a) in
      Bytebuf.equal fast via_schema && Xdr.decode_int_array fast = a)

let test_xdr_schema_mismatch () =
  match Xdr.encode Xdr.S_int (Value.Bool true) with
  | _ -> Alcotest.fail "expected mismatch error"
  | exception Xdr.Error _ -> ()

(* --- LWTS --- *)

let prop_lwts_round_trip =
  QCheck.Test.make ~name:"lwts: decode(encode v) = canonical v" ~count:500 arb_value
    (fun v ->
      let schema = Xdr.schema_of_value v in
      Value.equal (Lwts.decode schema (Lwts.encode schema v))
        (Value.canonical v))

let prop_lwts_never_longer_than_xdr =
  QCheck.Test.make ~name:"lwts: encoding <= xdr encoding" ~count:300 arb_value
    (fun v ->
      let schema = Xdr.schema_of_value v in
      Lwts.sizeof schema v <= Xdr.sizeof schema v)

let prop_lwts_int_array =
  QCheck.Test.make ~name:"lwts: int-array fast path" ~count:300
    QCheck.(array_of_size Gen.(0 -- 50) (map Int32.to_int int32))
    (fun a ->
      let fast = Lwts.encode_int_array a in
      let via_schema = Lwts.encode (Xdr.S_array Xdr.S_int) (Value.int_array a) in
      Bytebuf.equal fast via_schema && Lwts.decode_int_array fast = a)

let test_int_array_wire_sizes () =
  (* BER spends per-element tag+length bytes; XDR spends fixed 4 bytes;
     LWTS matches XDR for int arrays. *)
  let a = Array.init 100 (fun i -> i - 50) in
  let ber = Bytebuf.length (Ber.encode_int_array a) in
  let xdr = Bytebuf.length (Xdr.encode_int_array a) in
  let lwts = Bytebuf.length (Lwts.encode_int_array a) in
  Alcotest.(check int) "xdr = lwts" xdr lwts;
  Alcotest.(check bool) "ber smaller here (1-byte ints)" true (ber < xdr);
  let big = Array.make 100 0x7FFFFFFF in
  Alcotest.(check bool) "ber larger for wide ints" true
    (Bytebuf.length (Ber.encode_int_array big)
    > Bytebuf.length (Xdr.encode_int_array big))

(* --- Word-emitting encoders --- *)

(* Capture a Wordsink drive into a buffer, exactly as the fused marshal
   loop's final store would — words at 8-aligned bases, tail via bytes. *)
let words_encode n drive =
  let out = Bytebuf.create n in
  let word base w =
    for k = 0 to 7 do
      Bytebuf.set_uint8 out (base + k)
        (Int64.to_int (Int64.shift_right_logical w (8 * k)) land 0xff)
    done
  in
  let byte off b = Bytebuf.set_uint8 out off b in
  let sink = Wordsink.create ~word ~byte in
  drive sink;
  Wordsink.flush sink;
  out

let prop_ber_words_equal =
  QCheck.Test.make ~name:"ber: encode_words = encode" ~count:500 arb_value
    (fun v ->
      Bytebuf.equal (Ber.encode v) (words_encode (Ber.sizeof v) (Ber.encode_words v)))

let prop_xdr_words_equal =
  QCheck.Test.make ~name:"xdr: encode_words = encode" ~count:500 arb_value
    (fun v ->
      let schema = Xdr.schema_of_value v in
      Bytebuf.equal
        (Xdr.encode schema v)
        (words_encode (Xdr.sizeof schema v) (Xdr.encode_words schema v)))

let test_words_boundaries () =
  (* 32-bit extremes, empties, and strings straddling word boundaries. *)
  let cases =
    [
      Value.Int 0x7FFFFFFF;
      Value.Int (-0x80000000);
      Value.Int64 Int64.min_int;
      Value.List [];
      Value.Utf8 "";
      Value.Octets "";
      Value.Utf8 "1234567";
      Value.Octets "12345678";
      Value.Record [ ("a", Value.Octets "123456789") ];
    ]
  in
  List.iter
    (fun v ->
      let label = Format.asprintf "%a" Value.pp v in
      Alcotest.(check string)
        ("ber " ^ label)
        (hexbuf (Ber.encode v))
        (hexbuf (words_encode (Ber.sizeof v) (Ber.encode_words v)));
      let schema = Xdr.schema_of_value v in
      Alcotest.(check string)
        ("xdr " ^ label)
        (hexbuf (Xdr.encode schema v))
        (hexbuf (words_encode (Xdr.sizeof schema v) (Xdr.encode_words schema v))))
    cases

let test_xdr_int_array_range () =
  (* Same 32-bit discipline as schema_of_value — never silent truncation. *)
  match Xdr.encode_int_array [| 1; 0x100000000 |] with
  | _ -> Alcotest.fail "expected range error"
  | exception Xdr.Error _ -> ()

let prop_ber_int_array_full_range =
  QCheck.Test.make ~name:"ber: int-array full int range" ~count:300
    QCheck.(array_of_size Gen.(0 -- 30) int)
    (fun a -> Ber.decode_int_array (Ber.encode_int_array a) = a)

let arb_garbage = QCheck.(string_gen_of_size Gen.(0 -- 12) Gen.char)

let prop_xdr_decode_prefix_garbage =
  QCheck.Test.make ~name:"xdr: decode_prefix ignores trailing garbage"
    ~count:300
    QCheck.(pair arb_value arb_garbage)
    (fun (v, junk) ->
      let schema = Xdr.schema_of_value v in
      let enc = Xdr.encode schema v in
      let got, used =
        Xdr.decode_prefix schema (Bytebuf.concat [ enc; Bytebuf.of_string junk ])
      in
      Value.equal got (Value.canonical v) && used = Bytebuf.length enc)

let prop_ber_decode_prefix_garbage =
  QCheck.Test.make ~name:"ber: decode_prefix ignores trailing garbage"
    ~count:300
    QCheck.(pair arb_value arb_garbage)
    (fun (v, junk) ->
      let enc = Ber.encode v in
      let got, used =
        Ber.decode_prefix (Bytebuf.concat [ enc; Bytebuf.of_string junk ])
      in
      Value.equal got (Value.canonical v) && used = Bytebuf.length enc)

let test_encode_allocation () =
  (* The hoisted encoders build the result in exactly one buffer — no
     per-element or per-field intermediates. *)
  let v =
    Value.List
      [
        Value.Record [ ("a", Value.Int 5); ("b", Value.Utf8 "hello") ];
        Value.int_array [| 1; 2; 3 |];
        Value.Octets (String.make 40 'x');
      ]
  in
  let schema = Xdr.schema_of_value v in
  let before = Bytebuf.created_total () in
  ignore (Ber.encode v);
  Alcotest.(check int) "ber: one buffer" 1 (Bytebuf.created_total () - before);
  let before = Bytebuf.created_total () in
  ignore (Xdr.encode schema v);
  Alcotest.(check int) "xdr: one buffer" 1 (Bytebuf.created_total () - before)

(* --- Syntax --- *)

let all_syntaxes v =
  List.filter_map (fun n -> Syntax.for_value n v) [ "raw"; "ber"; "xdr"; "lwts" ]

let prop_syntax_uniform_round_trip =
  QCheck.Test.make ~name:"syntax: encode/decode round trip" ~count:300 arb_value
    (fun v ->
      List.for_all
        (fun syntax ->
          let decoded = Syntax.decode syntax (Syntax.encode syntax v) in
          match syntax with
          | Syntax.Raw -> Value.equal decoded v
          | Syntax.Ber | Syntax.Xdr _ | Syntax.Lwts _ ->
              Value.equal decoded (Value.canonical v))
        (all_syntaxes v))

let prop_syntax_sizeof =
  QCheck.Test.make ~name:"syntax: sizeof = |encode|" ~count:300 arb_value
    (fun v ->
      List.for_all
        (fun syntax ->
          Syntax.sizeof syntax v = Bytebuf.length (Syntax.encode syntax v))
        (all_syntaxes v))

let test_syntax_raw_only_octets () =
  Alcotest.(check bool) "raw refuses ints" true
    (Syntax.for_value "raw" (Value.Int 1) = None);
  match Syntax.encode Syntax.Raw (Value.Int 1) with
  | _ -> Alcotest.fail "expected error"
  | exception Syntax.Error _ -> ()

let test_syntax_negotiate () =
  let sample = Value.int_array [| 1; 2 |] in
  (match
     Syntax.negotiate ~sender:[ "lwts"; "ber" ] ~receiver:[ "ber"; "lwts" ] ~sample
   with
  | Some s -> Alcotest.(check string) "sender preference wins" "lwts" (Syntax.name s)
  | None -> Alcotest.fail "negotiation failed");
  (match Syntax.negotiate ~sender:[ "raw" ] ~receiver:[ "raw" ] ~sample with
  | None -> ()
  | Some _ -> Alcotest.fail "raw should not carry ints");
  match Syntax.negotiate ~sender:[ "xdr" ] ~receiver:[ "ber" ] ~sample with
  | None -> ()
  | Some _ -> Alcotest.fail "no common syntax"

let test_syntax_placements () =
  let adus = [ Value.int_array [| 1 |]; Value.int_array [| 2; 3 |] ] in
  match Syntax.placements Syntax.Ber adus with
  | [ (0, l1); (o2, l2) ] ->
      Alcotest.(check int) "first length" (Ber.sizeof (List.nth adus 0)) l1;
      Alcotest.(check int) "second offset" l1 o2;
      Alcotest.(check int) "second length" (Ber.sizeof (List.nth adus 1)) l2
  | _ -> Alcotest.fail "placement shape"

let test_schema_driven_prefix_decode () =
  (* Prefix decoding against a schema: codecs consume exactly their value
     and report it, so multiple values can share one buffer. *)
  let v1 = Value.Int 42 and v2 = Value.Utf8 "tail" in
  let schema1 = Xdr.schema_of_value v1 in
  let joined = Bytebuf.concat [ Xdr.encode schema1 v1; Bytebuf.of_string "XYZW" ] in
  let got, used = Xdr.decode_prefix schema1 joined in
  Alcotest.(check bool) "xdr value" true (Value.equal got v1);
  Alcotest.(check int) "xdr consumed" 4 used;
  let schema2 = Xdr.schema_of_value v2 in
  let joined2 = Bytebuf.concat [ Lwts.encode schema2 v2; Bytebuf.of_string "Q" ] in
  let got2, used2 = Lwts.decode_prefix schema2 joined2 in
  Alcotest.(check bool) "lwts value" true (Value.equal got2 v2);
  Alcotest.(check int) "lwts consumed" 8 used2

let test_pp_schema_smoke () =
  let s =
    Xdr.S_struct [ Xdr.S_int; Xdr.S_array Xdr.S_string; Xdr.S_hyper ]
  in
  let printed = Format.asprintf "%a" Xdr.pp_schema s in
  let contains needle =
    let n = String.length needle and m = String.length printed in
    let rec go i = i + n <= m && (String.sub printed i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions int" true (contains "int");
  Alcotest.(check bool) "mentions hyper" true (contains "hyper");
  Alcotest.(check bool) "array marker" true (contains "string<><>" || contains "string<>")

(* --- Text (network newline conversion) --- *)

let internal_text_gen =
  QCheck.Gen.(string_size ~gen:(oneof [ char_range 'a' 'z'; return '\n'; return ' ' ]) (0 -- 60))

let arb_text = QCheck.make ~print:(Printf.sprintf "%S") internal_text_gen

let test_text_basic () =
  let b = Text.to_network "a\nb\n" in
  Alcotest.(check string) "crlf" "a\r\nb\r\n" (Bytebuf.to_string b);
  Alcotest.(check int) "network_size" 6 (Text.network_size "a\nb\n")

let test_text_errors () =
  (match Text.to_network "bad\rcr" with
  | _ -> Alcotest.fail "bare CR accepted"
  | exception Invalid_argument _ -> ());
  (match Text.of_network (Bytebuf.of_string "a\nb") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare LF accepted");
  match Text.of_network (Bytebuf.of_string "a\rb") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare CR accepted"

let prop_text_round_trip =
  QCheck.Test.make ~name:"text: of_network(to_network s) = s" ~count:500 arb_text
    (fun s ->
      match Text.of_network (Text.to_network s) with
      | Ok back -> back = s
      | Error _ -> false)

let prop_text_size_changes =
  QCheck.Test.make ~name:"text: network size = len + newlines" ~count:300 arb_text
    (fun s ->
      let newlines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s in
      Text.network_size s = String.length s + newlines
      && Bytebuf.length (Text.to_network s) = Text.network_size s)

let prop_text_placement =
  (* The paper's point: positions in the network stream are computable
     only through the conversion. Concatenating the converted ADUs at
     their sender-computed placements equals converting the whole
     document. *)
  QCheck.Test.make ~name:"text: placement = stream positions" ~count:300
    QCheck.(small_list arb_text)
    (fun adus ->
      let whole = Text.to_network (String.concat "" adus) in
      let places = Text.placement adus in
      List.length places = List.length adus
      && List.for_all2
           (fun s (off, len) ->
             Bytebuf.equal (Text.to_network s)
               (Bytebuf.sub whole ~pos:off ~len))
           adus places)

let () =
  Alcotest.run "wire"
    [
      ( "value",
        [
          Alcotest.test_case "helpers" `Quick test_value_helpers;
          Alcotest.test_case "strip names" `Quick test_value_strip_names;
        ] );
      ( "ber",
        [
          Alcotest.test_case "known encodings" `Quick test_ber_known_encodings;
          Alcotest.test_case "long length" `Quick test_ber_long_length;
          Alcotest.test_case "decode errors" `Quick test_ber_decode_errors;
          Alcotest.test_case "decode prefix" `Quick test_ber_decode_prefix;
          qcheck prop_ber_round_trip;
          qcheck prop_ber_sizeof;
          qcheck prop_ber_interpretive_equal;
          qcheck prop_ber_int_array_fast_path;
          qcheck prop_ber_fused_checksum;
        ] );
      ( "xdr",
        [
          Alcotest.test_case "known encodings" `Quick test_xdr_known_encodings;
          Alcotest.test_case "int range" `Quick test_xdr_int_range;
          Alcotest.test_case "schema mismatch" `Quick test_xdr_schema_mismatch;
          qcheck prop_xdr_round_trip;
          qcheck prop_xdr_sizeof;
          qcheck prop_xdr_int_array;
        ] );
      ( "lwts",
        [
          Alcotest.test_case "wire sizes" `Quick test_int_array_wire_sizes;
          qcheck prop_lwts_round_trip;
          qcheck prop_lwts_never_longer_than_xdr;
          qcheck prop_lwts_int_array;
        ] );
      ( "words",
        [
          Alcotest.test_case "boundary cases" `Quick test_words_boundaries;
          Alcotest.test_case "xdr int-array range" `Quick test_xdr_int_array_range;
          Alcotest.test_case "encode allocation" `Quick test_encode_allocation;
          qcheck prop_ber_words_equal;
          qcheck prop_xdr_words_equal;
          qcheck prop_ber_int_array_full_range;
          qcheck prop_xdr_decode_prefix_garbage;
          qcheck prop_ber_decode_prefix_garbage;
        ] );
      ( "text",
        [
          Alcotest.test_case "schema prefix decode" `Quick test_schema_driven_prefix_decode;
          Alcotest.test_case "pp_schema" `Quick test_pp_schema_smoke;
          Alcotest.test_case "basic" `Quick test_text_basic;
          Alcotest.test_case "errors" `Quick test_text_errors;
          qcheck prop_text_round_trip;
          qcheck prop_text_size_changes;
          qcheck prop_text_placement;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "raw only octets" `Quick test_syntax_raw_only_octets;
          Alcotest.test_case "negotiate" `Quick test_syntax_negotiate;
          Alcotest.test_case "placements" `Quick test_syntax_placements;
          qcheck prop_syntax_uniform_round_trip;
          qcheck prop_syntax_sizeof;
        ] );
    ]
