(* The hostile-network subsystem: seeded fault plans, the soak
   invariants, and the hardened control plane's bounds — every ADU ends
   up delivered or declared gone, delivered ones byte-exact, and the
   event queue always drains. *)

open Netsim
open Alf_core
open Alf_chaos

let check = Alcotest.check
let fail = Alcotest.fail
let qcheck t = QCheck_alcotest.to_alcotest t

let base_case =
  {
    Soak.label = "test";
    seed = 1L;
    adus = 16;
    adu_bytes = 1500;
    impair = Impair.none;
    impair_back = Impair.none;
    corrupt_e2e = 0.0;
    policy = Soak.Transport_buffer;
    fec = false;
    secure = false;
    rekey_at = -1;
    corrupt_tag = 0.0;
    events = [];
    horizon = 120.0;
  }

(* --- the smoke matrix: tier-1's soak budget --- *)

let test_smoke_matrix () =
  let outcomes = Soak.run_matrix ~smoke:true ~seed:42L () in
  check Alcotest.bool "has cases" true (List.length outcomes >= 4);
  List.iter
    (fun o ->
      if not (Soak.ok o) then
        fail (Format.asprintf "case failed: %a" Soak.pp_outcome o))
    outcomes

let test_same_seed_same_report () =
  let render seed =
    Obs.Json.to_string_pretty (Soak.to_json (Soak.run_matrix ~smoke:true ~seed ()))
  in
  check Alcotest.string "identical JSON" (render 99L) (render 99L);
  if render 99L = render 100L then
    fail "different seeds produced an identical report"

(* --- the acceptance case: hostile impairment over each policy --- *)

let hostile_case policy =
  {
    base_case with
    Soak.label = "acceptance/" ^ Soak.policy_name policy;
    seed = 4242L;
    adus = 30;
    adu_bytes = 2000;
    impair = Soak.hostile;
    impair_back = Soak.hostile;
    corrupt_e2e = 0.05;
    policy;
  }

let test_acceptance_policies () =
  let total_corrupt = ref 0 in
  List.iter
    (fun policy ->
      let o = Soak.run (hostile_case policy) in
      if not (Soak.ok o) then
        fail (Format.asprintf "invariant violated: %a" Soak.pp_outcome o);
      check Alcotest.bool "something delivered" true (o.Soak.delivered > 0);
      total_corrupt := !total_corrupt + o.Soak.corrupt_dropped)
    [ Soak.Transport_buffer; Soak.App_recompute; Soak.No_recovery ];
  (* 5% above-checksum corruption over three hostile runs must have put
     the integrity trailer to work. *)
  check Alcotest.bool "stage-1 integrity drops observed" true (!total_corrupt > 0)

let test_no_recovery_declares_gone () =
  let o = Soak.run (hostile_case Soak.No_recovery) in
  check Alcotest.bool "ok" true (Soak.ok o);
  check Alcotest.bool "losses surfaced as gone" true
    (o.Soak.gone_sender + o.Soak.gone_local > 0);
  check Alcotest.bool "not everything arrived" true
    (o.Soak.delivered < (hostile_case Soak.No_recovery).Soak.adus)

(* App_recompute returning None: the sender must declare those indices
   gone over a real impaired link, and the receiver must account for
   them as sender-gone. *)
let test_recompute_none_goes_gone () =
  let o =
    Soak.run
      {
        (hostile_case Soak.App_recompute_partial) with
        Soak.label = "recompute-partial";
        seed = 77L;
      }
  in
  if not (Soak.ok o) then
    fail (Format.asprintf "invariant violated: %a" Soak.pp_outcome o);
  check Alcotest.bool "unrecomputable indices went gone" true
    (o.Soak.gone_sender > 0);
  check Alcotest.bool "recomputable indices still flowed" true
    (o.Soak.delivered > 0)

let test_recovery_recall_none () =
  let store = Recovery.store (Recovery.App_recompute (fun _ -> None)) in
  Recovery.remember store ~index:3 (Bufkit.Bytebuf.of_string "x");
  (match Recovery.recall store ~index:3 with
  | Recovery.Gone -> ()
  | Recovery.Data _ -> fail "recall should be Gone when recompute returns None");
  check Alcotest.int "stores nothing" 0 (Recovery.footprint store)

(* --- fault plans --- *)

let test_kill_sender_quiesces () =
  (* Kill mid-stream: the receiver must settle what it heard about,
     declare the silence, and let the engine drain. *)
  let o =
    Soak.run
      {
        base_case with
        Soak.label = "kill";
        seed = 5L;
        adus = 40;
        adu_bytes = 3000;
        impair = Impair.lossy 0.1;
        impair_back = Impair.lossy 0.1;
        events = [ Chaos.Kill_sender { at = 0.02 } ];
      }
  in
  if not (Soak.ok o) then
    fail (Format.asprintf "invariant violated: %a" Soak.pp_outcome o);
  check Alcotest.bool "receiver gave up on the dead sender" true
    (o.Soak.gone_local > 0)

let test_outage_and_burst_recover () =
  List.iter
    (fun (label, events) ->
      let o = Soak.run { base_case with Soak.label; seed = 9L; events } in
      if not (Soak.ok o) then
        fail (Format.asprintf "%s violated invariants: %a" label Soak.pp_outcome o);
      check Alcotest.int (label ^ " fully delivered") base_case.Soak.adus
        o.Soak.delivered)
    [
      ( "outage",
        [ Chaos.Link_down { dir = Chaos.Forward; at = 0.001; duration = 0.2 } ] );
      ( "burst",
        [
          Chaos.Burst_impair
            {
              dir = Chaos.Both;
              at = 0.001;
              duration = 0.3;
              impair = Impair.make ~loss:0.6 ~corrupt:0.1 ();
            };
        ] );
    ]

let make_world seed =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:Impair.none
      ~queue_limit:64 ~bandwidth_bps:10e6 ~delay:0.001 ~a:1 ~b:2 ()
  in
  (engine, net)

let test_pool_squeeze_exhausts () =
  let engine, net = make_world 3L in
  let pool = Bufkit.Pool.create ~max_outstanding:4 ~buf_size:64 () in
  Chaos.schedule ~engine ~net ~pool
    {
      Chaos.seed = 3L;
      events = [ Chaos.Pool_squeeze { at = 0.01; duration = 0.5; hold = 4 } ];
    };
  (* Mid-squeeze: the chaos plan holds every buffer, so the capped pool
     refuses — None from try_acquire, Exhausted from acquire. *)
  ignore
    (Engine.schedule_at engine 0.1 (fun () ->
         check Alcotest.bool "try_acquire refused" true
           (Bufkit.Pool.try_acquire pool = None);
         (match Bufkit.Pool.acquire pool with
         | exception Bufkit.Pool.Exhausted -> ()
         | _ -> fail "acquire should raise Exhausted at the cap")));
  Engine.run ~until:2.0 engine;
  (* After release: capacity is back and the refusals were counted. *)
  let b = Bufkit.Pool.acquire pool in
  Bufkit.Pool.release pool b;
  check Alcotest.bool "exhaustion counted" true
    ((Bufkit.Pool.stats pool).Bufkit.Pool.exhausted >= 2)

let test_worker_fault_one_shot () =
  let engine, net = make_world 4L in
  let par = Par.Pool.create ~domains:1 () in
  Chaos.schedule ~engine ~net ~par
    { Chaos.seed = 4L; events = [ Chaos.Worker_fault { at = 0.01 } ] };
  Engine.run ~until:1.0 engine;
  let ran = ref 0 in
  let batch = Array.init 4 (fun _ () -> incr ran) in
  (match Par.Pool.run par batch with
  | exception Chaos.Fault _ -> ()
  | () -> fail "armed injector should raise Chaos.Fault");
  (* One-shot: the injector disarmed itself, the next batch is clean. *)
  ran := 0;
  Par.Pool.run par batch;
  check Alcotest.int "next batch runs fully" 4 !ran;
  Par.Pool.shutdown par

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_counters_registered () =
  ignore (Soak.run { base_case with Soak.seed = 11L; adus = 4 });
  let dump = Obs.Json.to_string_pretty (Obs.Registry.to_json ()) in
  List.iter
    (fun name ->
      if not (contains dump name) then
        fail (name ^ " not in the metrics registry"))
    [
      "alf.receiver.frags_corrupt_dropped";
      "alf.receiver.adus_gone_deadline";
      "alf.sender.nack_backoff_resets";
    ]

(* --- the property: delivered + gone covers everything sent, and
   delivered payloads are byte-exact (checked inside the invariants) --- *)

let soak_case_gen =
  QCheck.make
    ~print:(fun (seed, loss, policy, fec) ->
      Printf.sprintf "seed=%d loss=%.2f policy=%s fec=%b" seed loss
        (Soak.policy_name policy) fec)
    QCheck.Gen.(
      let* seed = 1 -- 10_000 in
      let* loss = float_bound_inclusive 0.25 in
      let* policy =
        oneofl
          [
            Soak.Transport_buffer;
            Soak.App_recompute;
            Soak.App_recompute_partial;
            Soak.No_recovery;
          ]
      in
      let* fec = bool in
      return (seed, loss, policy, fec))

let prop_delivered_or_gone =
  QCheck.Test.make ~name:"soak: delivered+gone = sent, byte-exact" ~count:15
    soak_case_gen (fun (seed, loss, policy, fec) ->
      let o =
        Soak.run
          {
            base_case with
            Soak.label = "prop";
            seed = Int64.of_int seed;
            adus = 10;
            adu_bytes = 900;
            impair = Impair.make ~loss ~corrupt:0.02 ~duplicate:0.02 ();
            impair_back = Impair.lossy (loss /. 2.0);
            corrupt_e2e = 0.02;
            policy;
            fec;
            horizon = 60.0;
          }
      in
      Soak.ok o
      && o.Soak.delivered + o.Soak.gone_sender + o.Soak.gone_local = 10)

let () =
  Alcotest.run "chaos"
    [
      ( "soak",
        [
          Alcotest.test_case "smoke matrix all ok" `Quick test_smoke_matrix;
          Alcotest.test_case "same seed, same report" `Quick
            test_same_seed_same_report;
          Alcotest.test_case "acceptance: hostile x policies" `Quick
            test_acceptance_policies;
          Alcotest.test_case "no-recovery surfaces gone" `Quick
            test_no_recovery_declares_gone;
          Alcotest.test_case "recompute None -> sender gone" `Quick
            test_recompute_none_goes_gone;
          Alcotest.test_case "Recovery.recall None is Gone" `Quick
            test_recovery_recall_none;
          qcheck prop_delivered_or_gone;
        ] );
      ( "faults",
        [
          Alcotest.test_case "kill sender quiesces" `Quick
            test_kill_sender_quiesces;
          Alcotest.test_case "outage and burst recover" `Quick
            test_outage_and_burst_recover;
          Alcotest.test_case "pool squeeze exhausts" `Quick
            test_pool_squeeze_exhausts;
          Alcotest.test_case "worker fault is one-shot" `Quick
            test_worker_fault_one_shot;
          Alcotest.test_case "obs counters registered" `Quick
            test_counters_registered;
        ] );
    ]
