open Bufkit
open Netsim
open Alf_core

type policy = Transport_buffer | App_recompute | App_recompute_partial | No_recovery

let policy_name = function
  | Transport_buffer -> "buffer"
  | App_recompute -> "recompute"
  | App_recompute_partial -> "recompute-partial"
  | No_recovery -> "none"

type case = {
  label : string;
  seed : int64;
  adus : int;
  adu_bytes : int;
  impair : Impair.t;
  impair_back : Impair.t;
  corrupt_e2e : float;
  policy : policy;
  fec : bool;
  secure : bool;
  rekey_at : int;
  corrupt_tag : float;
  events : Chaos.event list;
  horizon : float;
}

type invariants = {
  quiesced : bool;
  accounted : bool;
  byte_exact : bool;
  footprint_zero : bool;
  counters_consistent : bool;
  stage1_clean : bool;
}

type outcome = {
  case : case;
  inv : invariants;
  delivered : int;
  gone_sender : int;
  gone_local : int;
  corrupt_dropped : int;
  auth_dropped : int;
  nacks_sent : int;
  retransmits : int;
  fec_activated : bool;
  end_time : float;
}

let ok o =
  o.inv.quiesced && o.inv.accounted && o.inv.byte_exact
  && o.inv.footprint_zero && o.inv.counters_consistent && o.inv.stage1_clean

(* Payloads are recomputable from (seed, index, offset) alone, so the
   byte-exact check needs no copy of what was sent — and the
   App_recompute policy regenerates the identical ADU. *)
let payload_byte ~seed ~index ~offset =
  (Int64.to_int seed land 0xff) + (index * 131) + (offset * 7) land 0xff

let expected_payload case index =
  String.init case.adu_bytes (fun j ->
      Char.chr (payload_byte ~seed:case.seed ~index ~offset:j land 0xff))

let make_adu case index =
  Adu.make
    (Adu.name ~dest_off:(index * case.adu_bytes) ~dest_len:case.adu_bytes
       ~stream:1 ~index ())
    (Bytebuf.of_string (expected_payload case index))

(* Both ends of a secure case derive the same base key from the seed;
   each side gets its own Record (fresh epoch counter, own scratch). *)
let record_of case =
  if case.secure then
    Some (Secure.Record.of_int64 (Int64.add case.seed 7L))
  else None

(* Regeneration must reproduce the original wire bytes: seal under the
   epoch the ADU was first sent with (indices at or past [rekey_at] went
   out after the roll), or receiver partials could mix fragments of two
   incarnations. *)
let recompute_encode case rc i =
  let adu = make_adu case i in
  let adu =
    match rc with
    | Some rc ->
        let epoch =
          if case.rekey_at >= 0 && i >= case.rekey_at then 1 else 0
        in
        Secure.Record.seal_adu ~epoch rc adu
    | None -> adu
  in
  Adu.encode adu

let killed_in_plan case =
  List.exists
    (function Chaos.Kill_sender _ -> true | _ -> false)
    case.events

let run case =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:case.seed in
  let net =
    Topology.point_to_point ~engine ~rng ~impair:case.impair
      ~impair_back:case.impair_back ~queue_limit:1024 ~bandwidth_bps:50e6
      ~delay:0.005 ~a:1 ~b:2 ()
  in
  let ua = Transport.Udp.create ~engine ~node:net.Topology.a () in
  let ub = Transport.Udp.create ~engine ~node:net.Topology.b () in
  (* Counters are global and shared across cases: invariants compare this
     run's deltas against the endpoint stats records. *)
  let c_delivered = Obs.Registry.counter "alf.receiver.adus_delivered" in
  let c_nacks = Obs.Registry.counter "alf.receiver.nacks_sent" in
  let c_corrupt = Obs.Registry.counter "alf.receiver.frags_corrupt_dropped" in
  let c_gone_local = Obs.Registry.counter "alf.receiver.adus_gone_deadline" in
  let c_auth = Obs.Registry.counter "alf.receiver.auth_dropped" in
  let base_delivered = Obs.Counter.value c_delivered in
  let base_nacks = Obs.Counter.value c_nacks in
  let base_corrupt = Obs.Counter.value c_corrupt in
  let base_gone_local = Obs.Counter.value c_gone_local in
  let base_auth = Obs.Counter.value c_auth in
  let mismatches = ref 0 in
  let rc_tx = record_of case and rc_rx = record_of case in
  (* The receiver's substrate is wrapped with above-checksum corruption:
     UDP filters in-flight damage itself, so this is the only way a
     corrupted transmission unit ever reaches the ALF integrity check.
     [auth_corrupting_dgram] goes one deadlier: it re-trues the CRCs
     over a flipped tag bit, so only the record open can object. *)
  let io_b =
    Chaos.auth_corrupting_dgram
      ~rng:(Rng.create ~seed:(Int64.add case.seed 5L))
      ~rate:case.corrupt_tag ~integrity:(Some Checksum.Kind.Crc32)
      (Chaos.corrupting_dgram
         ~rng:(Rng.create ~seed:(Int64.add case.seed 2L))
         ~rate:case.corrupt_e2e (Dgram.of_udp ub))
  in
  let receiver =
    Alf_transport.receiver_io ~sched:(Netsim.Engine.sched engine) ~io:io_b ~port:7000 ~stream:1
      ~nack_interval:0.02 ~nack_holdoff:0.06 ~nack_budget:30
      ~adu_deadline:5.0 ~giveup_idle:1.0
      ~seed:(Int64.add case.seed 1L) ?secure:rc_rx
      ~deliver:(fun adu ->
        let i = adu.Adu.name.Adu.index in
        if Bytebuf.to_string adu.Adu.payload <> expected_payload case i then
          incr mismatches)
      ()
  in
  let policy =
    match case.policy with
    | Transport_buffer -> Recovery.Transport_buffer
    | App_recompute ->
        Recovery.App_recompute (fun i -> Some (recompute_encode case rc_tx i))
    | App_recompute_partial ->
        (* Odd indices cannot be recomputed: the sender must declare them
           gone — the Recovery.recall = Gone path under real impairment. *)
        Recovery.App_recompute
          (fun i ->
            if i land 1 = 0 then Some (recompute_encode case rc_tx i) else None)
    | No_recovery -> Recovery.No_recovery
  in
  let config =
    {
      Alf_transport.default_sender_config with
      Alf_transport.pace_bps = Some 20e6;
      fec_loss_threshold = (if case.fec then 0.01 else 2.0);
      fec_k = 4;
    }
  in
  let sender =
    Alf_transport.sender ~sched:(Netsim.Engine.sched engine) ~udp:ua ~peer:2 ~peer_port:7000 ~port:7001
      ~stream:1 ~policy ?secure:rc_tx ~config ()
  in
  Chaos.schedule ~engine ~net
    ~kill_sender:(fun () -> Alf_transport.kill_sender sender)
    { Chaos.seed = case.seed; events = case.events };
  for i = 0 to case.adus - 1 do
    (* The mid-stream rekey: ADUs before [rekey_at] are sealed (and, under
       Transport_buffer, retransmitted) at epoch e, the rest at e+1 —
       repairs of old units race the receiver's rolled-forward window. *)
    if case.rekey_at = i then
      Option.iter Secure.Record.rekey rc_tx;
    Alf_transport.send_adu sender (make_adu case i)
  done;
  Alf_transport.close sender;
  Engine.run ~until:case.horizon ~max_events:20_000_000 engine;
  let r_stats = Alf_transport.receiver_stats receiver in
  let s_stats = Alf_transport.sender_stats sender in
  let all_settled = ref true in
  for i = 0 to case.adus - 1 do
    if not (Alf_transport.settled receiver i) then all_settled := false
  done;
  let accounted =
    if killed_in_plan case then
      (* The receiver cannot account for ADUs it never heard named; it
         must still have settled everything it knows about and stopped. *)
      Alf_transport.missing receiver = []
      && (Alf_transport.complete receiver || Alf_transport.abandoned receiver)
    else !all_settled && Alf_transport.complete receiver
  in
  let inv =
    {
      quiesced = Engine.pending engine = 0;
      accounted;
      byte_exact = !mismatches = 0;
      footprint_zero = Alf_transport.store_footprint sender = 0;
      counters_consistent =
        Obs.Counter.value c_delivered - base_delivered
          = r_stats.Alf_transport.adus_delivered
        && Obs.Counter.value c_nacks - base_nacks
           = r_stats.Alf_transport.nacks_sent
        && Obs.Counter.value c_corrupt - base_corrupt
           = r_stats.Alf_transport.frags_corrupt_dropped
        && Obs.Counter.value c_gone_local - base_gone_local
           = r_stats.Alf_transport.adus_gone_local
        && Obs.Counter.value c_auth - base_auth
           = r_stats.Alf_transport.adus_auth_dropped;
      stage1_clean =
        (Alf_transport.reassembly_stats receiver).Framing.corrupt_adus = 0;
    }
  in
  {
    case;
    inv;
    delivered = r_stats.Alf_transport.adus_delivered;
    gone_sender = r_stats.Alf_transport.adus_lost;
    gone_local = r_stats.Alf_transport.adus_gone_local;
    corrupt_dropped = r_stats.Alf_transport.frags_corrupt_dropped;
    auth_dropped = r_stats.Alf_transport.adus_auth_dropped;
    nacks_sent = r_stats.Alf_transport.nacks_sent;
    retransmits = s_stats.Alf_transport.adus_retransmitted;
    fec_activated = Alf_transport.fec_active sender;
    end_time = Engine.now engine;
  }

(* --- The same transfer over real sockets ---

   One [Rt.Loop], one [Rt.Udp_link], both endpoints in-process on
   127.0.0.1. The link cannot drop or corrupt in flight, so the case's
   impairment model is applied at the datagram seam instead:
   [Chaos.lossy_dgram] on each side's sends ([impair].loss forward,
   [impair_back].loss backward) and [Chaos.corrupting_dgram] above the
   receiver, exactly as in the simulator runs. Link-level events
   (outages, bursts) have no real-socket hook and are skipped;
   [Kill_sender] fires off a wall-clock timer. [horizon] and [end_time]
   are wall seconds. *)

let run_udp case =
  let loop = Rt.Loop.create () in
  let sched = Rt.Loop.sched loop in
  let link = Rt.Udp_link.create ~loop () in
  let c_delivered = Obs.Registry.counter "alf.receiver.adus_delivered" in
  let c_nacks = Obs.Registry.counter "alf.receiver.nacks_sent" in
  let c_corrupt = Obs.Registry.counter "alf.receiver.frags_corrupt_dropped" in
  let c_gone_local = Obs.Registry.counter "alf.receiver.adus_gone_deadline" in
  let c_auth = Obs.Registry.counter "alf.receiver.auth_dropped" in
  let base_delivered = Obs.Counter.value c_delivered in
  let base_nacks = Obs.Counter.value c_nacks in
  let base_corrupt = Obs.Counter.value c_corrupt in
  let base_gone_local = Obs.Counter.value c_gone_local in
  let base_auth = Obs.Counter.value c_auth in
  let mismatches = ref 0 in
  let rc_tx = record_of case and rc_rx = record_of case in
  let base_io = Dgram.of_rt link in
  let io_b =
    Chaos.auth_corrupting_dgram
      ~rng:(Rng.create ~seed:(Int64.add case.seed 5L))
      ~rate:case.corrupt_tag ~integrity:(Some Checksum.Kind.Crc32)
      (Chaos.corrupting_dgram
         ~rng:(Rng.create ~seed:(Int64.add case.seed 2L))
         ~rate:case.corrupt_e2e
         (Chaos.lossy_dgram
            ~rng:(Rng.create ~seed:(Int64.add case.seed 4L))
            ~rate:case.impair_back.Impair.loss base_io))
  in
  let io_a =
    Chaos.lossy_dgram
      ~rng:(Rng.create ~seed:(Int64.add case.seed 3L))
      ~rate:case.impair.Impair.loss base_io
  in
  let receiver =
    Alf_transport.receiver_io ~sched ~io:io_b ~port:7000 ~stream:1
      ~nack_interval:0.02 ~nack_holdoff:0.06 ~nack_budget:30 ~adu_deadline:5.0
      ~giveup_idle:1.0
      ~seed:(Int64.add case.seed 1L) ?secure:rc_rx
      ~deliver:(fun adu ->
        let i = adu.Adu.name.Adu.index in
        if Bytebuf.to_string adu.Adu.payload <> expected_payload case i then
          incr mismatches)
      ()
  in
  let policy =
    match case.policy with
    | Transport_buffer -> Recovery.Transport_buffer
    | App_recompute ->
        Recovery.App_recompute (fun i -> Some (recompute_encode case rc_tx i))
    | App_recompute_partial ->
        Recovery.App_recompute
          (fun i ->
            if i land 1 = 0 then Some (recompute_encode case rc_tx i) else None)
    | No_recovery -> Recovery.No_recovery
  in
  let config =
    {
      Alf_transport.default_sender_config with
      Alf_transport.pace_bps = Some 20e6;
      fec_loss_threshold = (if case.fec then 0.01 else 2.0);
      fec_k = 4;
    }
  in
  let peer = Rt.Udp_link.local_addr link ~port:7000 in
  let sender =
    Alf_transport.sender_io ~sched ~io:io_a ~peer ~peer_port:7000 ~port:7001
      ~stream:1 ~policy ?secure:rc_tx ~config ()
  in
  let killed = killed_in_plan case in
  List.iter
    (fun ev ->
      match ev with
      | Chaos.Kill_sender { at } ->
          ignore
            (Rt.Sched.schedule_after sched at (fun () ->
                 Alf_transport.kill_sender sender))
      | Chaos.Link_down _ | Chaos.Burst_impair _ | Chaos.Pool_squeeze _
      | Chaos.Worker_fault _ ->
          ())
    case.events;
  for i = 0 to case.adus - 1 do
    if case.rekey_at = i then Option.iter Secure.Record.rekey rc_tx;
    Alf_transport.send_adu sender (make_adu case i)
  done;
  Alf_transport.close sender;
  let settled_both () =
    (Alf_transport.finished sender
    || Alf_transport.sender_gave_up sender
    || killed)
    && (Alf_transport.complete receiver || Alf_transport.abandoned receiver)
  in
  ignore (Rt.Loop.run_until loop ~timeout:case.horizon settled_both);
  (* One more beat so crossing DONE/CLOSE datagrams drain and the
     endpoints disarm their timers. *)
  Rt.Loop.run_for loop 0.05;
  let r_stats = Alf_transport.receiver_stats receiver in
  let s_stats = Alf_transport.sender_stats sender in
  let all_settled = ref true in
  for i = 0 to case.adus - 1 do
    if not (Alf_transport.settled receiver i) then all_settled := false
  done;
  let accounted =
    if killed then
      Alf_transport.missing receiver = []
      && (Alf_transport.complete receiver || Alf_transport.abandoned receiver)
    else !all_settled && Alf_transport.complete receiver
  in
  let inv =
    {
      quiesced = settled_both () && Rt.Loop.pending_timers loop = 0;
      accounted;
      byte_exact = !mismatches = 0;
      footprint_zero = Alf_transport.store_footprint sender = 0;
      counters_consistent =
        Obs.Counter.value c_delivered - base_delivered
          = r_stats.Alf_transport.adus_delivered
        && Obs.Counter.value c_nacks - base_nacks
           = r_stats.Alf_transport.nacks_sent
        && Obs.Counter.value c_corrupt - base_corrupt
           = r_stats.Alf_transport.frags_corrupt_dropped
        && Obs.Counter.value c_gone_local - base_gone_local
           = r_stats.Alf_transport.adus_gone_local
        && Obs.Counter.value c_auth - base_auth
           = r_stats.Alf_transport.adus_auth_dropped;
      stage1_clean =
        (Alf_transport.reassembly_stats receiver).Framing.corrupt_adus = 0;
    }
  in
  let outcome =
    {
      case;
      inv;
      delivered = r_stats.Alf_transport.adus_delivered;
      gone_sender = r_stats.Alf_transport.adus_lost;
      gone_local = r_stats.Alf_transport.adus_gone_local;
      corrupt_dropped = r_stats.Alf_transport.frags_corrupt_dropped;
      auth_dropped = r_stats.Alf_transport.adus_auth_dropped;
      nacks_sent = r_stats.Alf_transport.nacks_sent;
      retransmits = s_stats.Alf_transport.adus_retransmitted;
      fec_activated = Alf_transport.fec_active sender;
      end_time = Rt.Loop.now loop;
    }
  in
  Rt.Udp_link.close link;
  outcome

(* --- The matrix --- *)

let hostile =
  Impair.make ~loss:0.3 ~corrupt:0.05 ~duplicate:0.05 ~reorder:0.2
    ~jitter:0.005 ()

(* (name, forward impair, backward impair, above-checksum corruption) —
   hostile adds the e2e corruption the ALF trailer exists to catch. *)
let impairments =
  [
    ("clean", Impair.none, Impair.none, 0.0);
    ("lossy", Impair.lossy 0.1, Impair.lossy 0.1, 0.0);
    ("hostile", hostile, hostile, 0.05);
  ]

let base_case ~seed ~adus ~adu_bytes ~horizon ?(corrupt_e2e = 0.0)
    ?(secure = false) ?(rekey_at = -1) ?(corrupt_tag = 0.0) ~label ~impair
    ~impair_back ~policy ~fec ~events () =
  {
    label;
    seed;
    adus;
    adu_bytes;
    impair;
    impair_back;
    corrupt_e2e;
    policy;
    fec;
    secure;
    rekey_at;
    corrupt_tag;
    events;
    horizon;
  }

let matrix ?(smoke = false) ~seed () =
  let adus = if smoke then 12 else 40 in
  let adu_bytes = if smoke then 1200 else 3000 in
  let horizon = if smoke then 60.0 else 240.0 in
  let mk = base_case ~seed ~adus ~adu_bytes ~horizon in
  let impairments =
    if smoke then List.filter (fun (n, _, _, _) -> n = "hostile") impairments
    else impairments
  in
  let sweep =
    List.concat_map
      (fun (iname, impair, impair_back, corrupt_e2e) ->
        List.concat_map
          (fun policy ->
            List.map
              (fun fec ->
                mk
                  ~label:
                    (Printf.sprintf "%s/%s%s" iname (policy_name policy)
                       (if fec then "+fec" else ""))
                  ~impair ~impair_back ~corrupt_e2e ~policy ~fec ~events:[] ())
              (if smoke && policy <> Transport_buffer then [ false ]
               else [ false; true ]))
          [ Transport_buffer; App_recompute; No_recovery ])
      impairments
  in
  (* The record-layer cases: a mid-stream rekey racing loss-driven
     retransmissions (the two-epoch window absorbs both the stored
     old-epoch repairs and the recall-time re-seals), and tag-targeted
     corruption that every checksum vouches for — only the record open
     may catch it, as counted auth drops repaired like loss. *)
  let secure_cases =
    [
      mk ~label:"hostile/secure-buffer+rekey" ~impair:hostile
        ~impair_back:hostile ~corrupt_e2e:0.05 ~policy:Transport_buffer
        ~fec:false ~secure:true ~rekey_at:(adus / 2) ~events:[] ();
      mk ~label:"hostile/secure-recompute+rekey" ~impair:hostile
        ~impair_back:hostile ~corrupt_e2e:0.05 ~policy:App_recompute
        ~fec:false ~secure:true ~rekey_at:(adus / 2) ~events:[] ();
      mk ~label:"lossy/secure+tagflip" ~impair:(Impair.lossy 0.1)
        ~impair_back:(Impair.lossy 0.1) ~policy:Transport_buffer ~fec:false
        ~secure:true ~corrupt_tag:0.08 ~events:[] ();
    ]
  in
  let faults =
    [
      mk ~label:"hostile/recompute-partial" ~impair:hostile
        ~impair_back:hostile ~corrupt_e2e:0.05 ~policy:App_recompute_partial
        ~fec:false ~events:[] ();
      mk ~label:"lossy/buffer+kill" ~impair:(Impair.lossy 0.1)
        ~impair_back:(Impair.lossy 0.1) ~policy:Transport_buffer ~fec:false
        ~events:[ Chaos.Kill_sender { at = 0.05 } ] ();
      mk ~label:"clean/buffer+outage" ~impair:Impair.none
        ~impair_back:Impair.none ~policy:Transport_buffer ~fec:false
        ~events:
          [ Chaos.Link_down { dir = Chaos.Forward; at = 0.01; duration = 0.3 } ]
        ();
      mk ~label:"clean/buffer+burst" ~impair:Impair.none
        ~impair_back:Impair.none ~policy:Transport_buffer ~fec:false
        ~events:
          [
            Chaos.Burst_impair
              {
                dir = Chaos.Both;
                at = 0.01;
                duration = 0.4;
                impair = Impair.make ~loss:0.6 ~corrupt:0.1 ();
              };
          ]
        ();
    ]
  in
  sweep
  @ (if smoke then [ List.hd secure_cases; List.nth secure_cases 2 ]
     else secure_cases)
  @ if smoke then [ List.nth faults 1 ] else faults

let outcome_json o =
  let b v = Obs.Json.Bool v in
  let i v = Obs.Json.num_of_int v in
  Obs.Json.Obj
    [
      ("label", Obs.Json.Str o.case.label);
      ("seed", Obs.Json.Str (Int64.to_string o.case.seed));
      ("policy", Obs.Json.Str (policy_name o.case.policy));
      ("fec", b o.case.fec);
      ("secure", b o.case.secure);
      ("rekey_at", i o.case.rekey_at);
      ("ok", b (ok o));
      ("quiesced", b o.inv.quiesced);
      ("accounted", b o.inv.accounted);
      ("byte_exact", b o.inv.byte_exact);
      ("footprint_zero", b o.inv.footprint_zero);
      ("counters_consistent", b o.inv.counters_consistent);
      ("stage1_clean", b o.inv.stage1_clean);
      ("delivered", i o.delivered);
      ("gone_sender", i o.gone_sender);
      ("gone_local", i o.gone_local);
      ("corrupt_dropped", i o.corrupt_dropped);
      ("auth_dropped", i o.auth_dropped);
      ("nacks_sent", i o.nacks_sent);
      ("retransmits", i o.retransmits);
      ("fec_activated", b o.fec_activated);
      ("end_time", Obs.Json.Num o.end_time);
    ]

let to_json outcomes =
  Obs.Json.Obj
    [
      ("ok", Obs.Json.Bool (List.for_all ok outcomes));
      ("cases", Obs.Json.Arr (List.map outcome_json outcomes));
    ]

let write_json path outcomes =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string_pretty (to_json outcomes));
  output_char oc '\n';
  close_out oc

let run_matrix ?smoke ~seed () = List.map run (matrix ?smoke ~seed ())

(* Horizons are wall seconds here, so the UDP matrix is a focused subset:
   every recovery policy under loss, end-to-end corruption, and a
   mid-transfer sender kill. Link-level faults (outage, burst) only exist
   in the simulator and stay in {!matrix}. *)
let udp_matrix ?(smoke = false) ~seed () =
  let adus = if smoke then 12 else 40 in
  let adu_bytes = if smoke then 1200 else 3000 in
  let horizon = 20.0 in
  let mk = base_case ~seed ~adus ~adu_bytes ~horizon in
  let lossy = Impair.lossy 0.1 in
  let cases =
    [
      mk ~label:"udp/clean/buffer" ~impair:Impair.none ~impair_back:Impair.none
        ~policy:Transport_buffer ~fec:false ~events:[] ();
      mk ~label:"udp/lossy/buffer" ~impair:lossy ~impair_back:lossy
        ~policy:Transport_buffer ~fec:false ~events:[] ();
      mk ~label:"udp/lossy/recompute" ~impair:lossy ~impair_back:lossy
        ~policy:App_recompute ~fec:false ~events:[] ();
      mk ~label:"udp/corrupt/buffer" ~impair:Impair.none
        ~impair_back:Impair.none ~corrupt_e2e:0.05 ~policy:Transport_buffer
        ~fec:false ~events:[] ();
      mk ~label:"udp/lossy/none" ~impair:lossy ~impair_back:lossy
        ~policy:No_recovery ~fec:false ~events:[] ();
      mk ~label:"udp/lossy/buffer+kill" ~impair:lossy ~impair_back:lossy
        ~policy:Transport_buffer ~fec:false
        ~events:[ Chaos.Kill_sender { at = 0.05 } ] ();
      mk ~label:"udp/secure/rekey+tagflip" ~impair:lossy ~impair_back:lossy
        ~policy:Transport_buffer ~fec:false ~secure:true ~rekey_at:(adus / 2)
        ~corrupt_tag:0.05 ~events:[] ();
    ]
  in
  if smoke then
    List.filter
      (fun c ->
        List.mem c.label
          [
            "udp/clean/buffer";
            "udp/lossy/buffer";
            "udp/lossy/buffer+kill";
            "udp/secure/rekey+tagflip";
          ])
      cases
  else cases

let run_udp_matrix ?smoke ~seed () = List.map run_udp (udp_matrix ?smoke ~seed ())

let pp_outcome ppf o =
  Format.fprintf ppf
    "%-28s %s  delivered=%d gone=%d+%d corrupt_dropped=%d auth_dropped=%d \
     nacks=%d retx=%d%s"
    o.case.label
    (if ok o then "OK " else "FAIL")
    o.delivered o.gone_sender o.gone_local o.corrupt_dropped o.auth_dropped
    o.nacks_sent o.retransmits
    (if o.fec_activated then " fec" else "")
