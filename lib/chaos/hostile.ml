open Bufkit
open Alf_core

(* A byzantine peer population for the serve engine: seeded plans of
   hostile datagram traffic driven through the same {!Dgram.t} seam as
   the honest load generator, so the two mix on the wire. Every emission
   is classified at the source as [malformed] (the bytes themselves are
   bad — fuzz, flips, truncations) or [wellformed] (valid bytes used
   abusively — churn floods, slow drip, NACK storms, forged indices),
   which is what lets the accounting tests equate server-side
   [serve.drop.*] sums with injected totals. *)

type category =
  | Fuzz
  | Flip
  | Trunc
  | Replay
  | Churn
  | Drip
  | Nack_storm
  | Close_flood
  | Forged

let all_categories =
  [| Fuzz; Flip; Trunc; Replay; Churn; Drip; Nack_storm; Close_flood; Forged |]

let category_index = function
  | Fuzz -> 0
  | Flip -> 1
  | Trunc -> 2
  | Replay -> 3
  | Churn -> 4
  | Drip -> 5
  | Nack_storm -> 6
  | Close_flood -> 7
  | Forged -> 8

let category_name = function
  | Fuzz -> "fuzz"
  | Flip -> "flip"
  | Trunc -> "trunc"
  | Replay -> "replay"
  | Churn -> "churn"
  | Drip -> "drip"
  | Nack_storm -> "nack_storm"
  | Close_flood -> "close_flood"
  | Forged -> "forged"

type config = {
  server : int;
  server_port : int;
  base_port : int;  (* hostile source ports: base_port .. base_port+ports-1 *)
  ports : int;
  payload_len : int;
  integrity : Checksum.Kind.t option;
  seed : int64;
  mix : (category * int) list;  (* weighted emission mix *)
}

let default_mix =
  [
    (Fuzz, 3);
    (Flip, 2);
    (Trunc, 2);
    (Replay, 1);
    (Churn, 2);
    (Drip, 1);
    (Nack_storm, 2);
    (Close_flood, 1);
    (Forged, 1);
  ]

let default_config =
  {
    server = 0;
    server_port = 7000;
    base_port = 40000;
    ports = 4;
    payload_len = 64;
    integrity = Some Checksum.Kind.Crc32;
    seed = 0xBADC0DEL;
    mix = default_mix;
  }

type stats = {
  mutable sent : int;
  mutable sent_bytes : int;
  mutable send_failed : int;
  mutable malformed : int;  (* bad-bytes emissions *)
  mutable wellformed : int;  (* valid-bytes abuse *)
  mutable replies_rx : int;  (* server ctl landing on hostile ports *)
  by_category : int array;  (* indexed by category_index *)
}

type t = {
  cfg : config;
  io : Dgram.t;
  rng : Netsim.Rng.t;
  scratch : Bytebuf.t;
  wheel : category array;  (* the mix unrolled for O(1) weighted choice *)
  mutable churn_stream : int;  (* ever-new stream ids for churn/close_flood *)
  mutable drip_index : int array;  (* next index per drip port *)
  stats : stats;
}

let max_dgram cfg =
  Framing.fragment_header_size + Adu.header_size + cfg.payload_len
  + Ctl.trailer_size

let create ~io cfg =
  if cfg.ports < 1 then invalid_arg "Hostile.create: ports";
  if cfg.payload_len < 0 then invalid_arg "Hostile.create: payload_len";
  if cfg.mix = [] then invalid_arg "Hostile.create: empty mix";
  let wheel =
    Array.concat
      (List.map (fun (c, w) -> Array.make (max 0 w) c) cfg.mix)
  in
  if Array.length wheel = 0 then invalid_arg "Hostile.create: zero-weight mix";
  let t =
    {
      cfg;
      io;
      rng = Netsim.Rng.create ~seed:cfg.seed;
      scratch = Bytebuf.create (max (max_dgram cfg) 64);
      wheel;
      churn_stream = 1;
      drip_index = Array.make cfg.ports 0;
      stats =
        {
          sent = 0;
          sent_bytes = 0;
          send_failed = 0;
          malformed = 0;
          wellformed = 0;
          replies_rx = 0;
          by_category = Array.make (Array.length all_categories) 0;
        };
    }
  in
  (* Swallow (but count) the server's replies — NACKs drawn by hostile
     CLOSEs, DONEs for drip streams — so they don't pile up unrouted. *)
  for p = 0 to cfg.ports - 1 do
    io.Dgram.bind ~port:(cfg.base_port + p) (fun ~src:_ ~src_port:_ _ ->
        t.stats.replies_rx <- t.stats.replies_rx + 1)
  done;
  t

let port_of t i = t.cfg.base_port + (i mod t.cfg.ports)

let send t ~src_port ~len ~malformed cat =
  let ok =
    t.io.Dgram.send ~dst:t.cfg.server ~dst_port:t.cfg.server_port ~src_port
      (Bytebuf.take t.scratch len)
  in
  t.stats.sent <- t.stats.sent + 1;
  t.stats.sent_bytes <- t.stats.sent_bytes + len;
  if malformed then t.stats.malformed <- t.stats.malformed + 1
  else t.stats.wellformed <- t.stats.wellformed + 1;
  t.stats.by_category.(category_index cat) <-
    t.stats.by_category.(category_index cat) + 1;
  if not ok then t.stats.send_failed <- t.stats.send_failed + 1

(* A fully valid sealed single-fragment ADU datagram in [t.scratch] —
   the same layout the honest load generator emits — returned as its
   total length. Payload bytes derive from the rng so replays of the
   same (stream, index) still verify: the CRC is patched in place. *)
let write_valid_frag t ~stream ~index =
  let plen = t.cfg.payload_len in
  let w = Cursor.writer t.scratch in
  Cursor.put_u8 w Framing.frag_magic;
  Cursor.put_u16be w stream;
  Cursor.put_int_as_u32be w index;
  Cursor.put_u16be w 0;
  Cursor.put_u16be w 1;
  Cursor.put_int_as_u32be w (Adu.header_size + plen);
  Cursor.put_int_as_u32be w 0;
  let adu_pos = Framing.fragment_header_size in
  Cursor.put_u16be w Adu.magic;
  Cursor.put_u16be w stream;
  Cursor.put_int_as_u32be w index;
  Cursor.put_u64be w (Int64.of_int (index * plen));
  Cursor.put_int_as_u32be w plen;
  Cursor.put_u64be w 0L;
  Cursor.put_int_as_u32be w plen;
  Cursor.put_u32be w 0l (* ADU CRC, patched below *);
  for j = 0 to plen - 1 do
    Cursor.put_u8 w (((stream * 197) + (index * 31) + (j * 11) + 3) land 0xff)
  done;
  let body = Bytebuf.length (Cursor.written w) in
  let crc =
    let st =
      Checksum.Crc32.feed_sub Checksum.Crc32.init t.scratch ~pos:adu_pos
        ~len:32
    in
    let st = ref st in
    for _ = 1 to 4 do
      st := Checksum.Crc32.feed_byte !st 0
    done;
    Checksum.Crc32.finish
      (Checksum.Crc32.feed_sub !st t.scratch
         ~pos:(adu_pos + Adu.header_size)
         ~len:plen)
  in
  let p = adu_pos + 32 in
  Bytebuf.set_uint8 t.scratch p
    (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff);
  Bytebuf.set_uint8 t.scratch (p + 1)
    (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff);
  Bytebuf.set_uint8 t.scratch (p + 2)
    (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff);
  Bytebuf.set_uint8 t.scratch (p + 3) (Int32.to_int crc land 0xff);
  Ctl.seal_in_place t.cfg.integrity t.scratch ~len:body

let fresh_stream t =
  let s = t.churn_stream in
  t.churn_stream <- 1 + (t.churn_stream mod 0xFFFE);
  s

(* One hostile emission per call. Every arm stays within [t.scratch] —
   no allocation per datagram, like the honest generator. *)
let emit t =
  let rng = t.rng in
  let pick = Netsim.Rng.int rng ~bound:(Array.length t.wheel) in
  match t.wheel.(pick) with
  | Fuzz ->
      (* Raw random bytes, random length: the stage-0 totality probe. *)
      let len = 1 + Netsim.Rng.int rng ~bound:(Bytebuf.length t.scratch) in
      Netsim.Rng.fill_bytes rng (Bytebuf.take t.scratch len);
      send t
        ~src_port:(port_of t (Netsim.Rng.int rng ~bound:t.cfg.ports))
        ~len ~malformed:true Fuzz
  | Flip ->
      (* A valid datagram with one byte XORed: passes whichever checks
         the flip misses, then fails the trailer (or ADU) CRC — the
         single-corruption detector the integrity layer promises. *)
      let len = write_valid_frag t ~stream:(fresh_stream t) ~index:0 in
      let pos = Netsim.Rng.int rng ~bound:len in
      let mask = 1 + Netsim.Rng.int rng ~bound:255 in
      Bytebuf.set_uint8 t.scratch pos
        (Bytebuf.get_uint8 t.scratch pos lxor mask);
      send t
        ~src_port:(port_of t (Netsim.Rng.int rng ~bound:t.cfg.ports))
        ~len ~malformed:true Flip
  | Trunc ->
      (* A valid datagram cut short at a random boundary. *)
      let len = write_valid_frag t ~stream:(fresh_stream t) ~index:0 in
      let cut = 1 + Netsim.Rng.int rng ~bound:(len - 1) in
      send t
        ~src_port:(port_of t (Netsim.Rng.int rng ~bound:t.cfg.ports))
        ~len:cut ~malformed:true Trunc
  | Replay ->
      (* The same (port, stream, index) every time: after the first
         delivery the server must treat each copy as a counted dup. *)
      let src_port = port_of t 0 in
      let len = write_valid_frag t ~stream:0xFFFE ~index:0 in
      send t ~src_port ~len ~malformed:false Replay
  | Churn ->
      (* Session-churn flood: index 0 of an ever-new stream — each one
         is an admission, the per-peer police's main customer. *)
      let stream = fresh_stream t in
      let len = write_valid_frag t ~stream ~index:0 in
      send t ~src_port:(port_of t stream) ~len ~malformed:false Churn
  | Drip ->
      (* Slow drip: one persistent stream per port, consecutive indices,
         never a CLOSE — holds a session slot until idle harvest. *)
      let p = Netsim.Rng.int rng ~bound:t.cfg.ports in
      let index = t.drip_index.(p) in
      t.drip_index.(p) <- index + 1;
      let len = write_valid_frag t ~stream:0xFFFD ~index in
      send t ~src_port:(port_of t p) ~len ~malformed:false Drip
  | Nack_storm ->
      (* Valid sealed NACK/DONE control at the server: parsed, then
         ignored or policed — either way it must cost O(1). *)
      let stream = 1 + Netsim.Rng.int rng ~bound:0xFFFE in
      let body =
        if Netsim.Rng.bool rng ~p:0.5 then
          Ctl.write_nack t.scratch ~stream
            ~have_below:(Netsim.Rng.int rng ~bound:1000)
            [
              Netsim.Rng.int rng ~bound:1000;
              Netsim.Rng.int rng ~bound:1000;
            ]
        else Ctl.write_done t.scratch ~stream
      in
      let len = Ctl.seal_in_place t.cfg.integrity t.scratch ~len:body in
      send t
        ~src_port:(port_of t (Netsim.Rng.int rng ~bound:t.cfg.ports))
        ~len ~malformed:false Nack_storm
  | Close_flood ->
      (* CLOSE with a 4-billion total on a fresh stream: the repair
         clamp and admission police both get exercised. *)
      let stream = fresh_stream t in
      let body =
        Ctl.write_close t.scratch ~stream ~total:0xFFFFFFF0
      in
      let len = Ctl.seal_in_place t.cfg.integrity t.scratch ~len:body in
      send t ~src_port:(port_of t stream) ~len ~malformed:false Close_flood
  | Forged ->
      (* A valid fragment whose index is a million past any frontier:
         must be a window drop, never an ahead-table entry. *)
      let index = 1_000_000 + Netsim.Rng.int rng ~bound:1_000_000 in
      let len = write_valid_frag t ~stream:0xFFFD ~index in
      send t
        ~src_port:(port_of t (Netsim.Rng.int rng ~bound:t.cfg.ports))
        ~len ~malformed:false Forged

let step t ~budget =
  for _ = 1 to budget do
    emit t
  done;
  budget

let stats t = t.stats
let malformed_sent t = t.stats.malformed
let wellformed_sent t = t.stats.wellformed
