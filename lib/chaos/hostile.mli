(** Byzantine peers for the serve engine.

    Seeded hostile-traffic plans driven through the same {!Dgram.t} seam
    as the honest load generator, so byzantine and honest datagrams mix
    on the wire. Each emission is classified at the source:

    - {e malformed} — the bytes are bad: random fuzz, bit-flipped valid
      datagrams, truncations. The server must drop every one under a
      malformed-shape [serve.drop.*] reason (and may additionally shed
      some as backpressure under load);
    - {e wellformed} — valid bytes used abusively: replays, session-churn
      floods, slow-drip senders, NACK/DONE storms, CLOSE floods with
      forged totals, fragments with forged indices. The server absorbs,
      polices, window-clamps or sheds these — never crashes, never lets
      them displace honest sessions' invariants.

    Determinism: a config's [seed] fully fixes the emission sequence. *)

type category =
  | Fuzz  (** Random bytes, random length. *)
  | Flip  (** One byte of a valid datagram XORed. *)
  | Trunc  (** A valid datagram cut at a random boundary. *)
  | Replay  (** The same valid fragment, over and over. *)
  | Churn  (** Index 0 of an ever-new stream: admission flood. *)
  | Drip  (** Persistent streams fed slowly, never CLOSEd. *)
  | Nack_storm  (** Valid NACK/DONE control at the server. *)
  | Close_flood  (** CLOSEs with 4-billion totals on fresh streams. *)
  | Forged  (** Valid fragments with indices far past any window. *)

val all_categories : category array
val category_index : category -> int
val category_name : category -> string

type config = {
  server : int;
  server_port : int;
  base_port : int;  (** Hostile source ports start here (keep them
      disjoint from the honest generator's range). *)
  ports : int;
  payload_len : int;
  integrity : Checksum.Kind.t option;  (** Must match the server's for
      the {e wellformed} arms to be accepted as valid. *)
  seed : int64;
  mix : (category * int) list;  (** Relative emission weights. *)
}

val default_mix : (category * int) list
val default_config : config

type stats = {
  mutable sent : int;
  mutable sent_bytes : int;
  mutable send_failed : int;
  mutable malformed : int;
  mutable wellformed : int;
  mutable replies_rx : int;  (** Server control landing on hostile ports
      (repair NACKs drawn by CLOSE floods, DONEs for drip streams). *)
  by_category : int array;  (** Emissions per {!category_index}. *)
}

type t

val create : io:Alf_core.Dgram.t -> config -> t
(** Binds the hostile ports (swallowing and counting server replies).
    Raises [Invalid_argument] on a nonsensical config. *)

val step : t -> budget:int -> int
(** Emit [budget] hostile datagrams according to the weighted mix;
    returns the number sent. Allocation-free per datagram. *)

val stats : t -> stats
val malformed_sent : t -> int
val wellformed_sent : t -> int
