open Netsim

exception Fault of string

type dir = Forward | Backward | Both

type event =
  | Kill_sender of { at : float }
  | Link_down of { dir : dir; at : float; duration : float }
  | Burst_impair of { dir : dir; at : float; duration : float; impair : Impair.t }
  | Pool_squeeze of { at : float; duration : float; hold : int }
  | Worker_fault of { at : float }

type plan = { seed : int64; events : event list }

let none ~seed = { seed; events = [] }

let pp_dir ppf = function
  | Forward -> Format.pp_print_string ppf "fwd"
  | Backward -> Format.pp_print_string ppf "back"
  | Both -> Format.pp_print_string ppf "both"

let pp_event ppf = function
  | Kill_sender { at } -> Format.fprintf ppf "kill-sender@%.3f" at
  | Link_down { dir; at; duration } ->
      Format.fprintf ppf "link-down(%a)@%.3f+%.3f" pp_dir dir at duration
  | Burst_impair { dir; at; duration; impair } ->
      Format.fprintf ppf "burst(%a %a)@%.3f+%.3f" pp_dir dir Impair.pp impair
        at duration
  | Pool_squeeze { at; duration; hold } ->
      Format.fprintf ppf "pool-squeeze(%d)@%.3f+%.3f" hold at duration
  | Worker_fault { at } -> Format.fprintf ppf "worker-fault@%.3f" at

let pp_plan ppf p =
  Format.fprintf ppf "plan(seed=%Ld: %a)" p.seed
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_event)
    p.events

(* UDP and AAL5 both checksum below the ALF layer, so in-flight
   corruption never reaches the transport's own integrity trailer. This
   wrapper is the fault the trailer actually defends against: corruption
   *above* the substrate's check — a checksum-recomputing middlebox, a
   DMA error between verify and delivery. It flips one byte of an
   inbound datagram with probability [rate], after the substrate has
   vouched for it. *)
let corrupting_dgram ~rng ~rate (d : Alf_core.Dgram.t) =
  if rate <= 0.0 then d
  else
    {
      d with
      Alf_core.Dgram.bind =
        (fun ~port handler ->
          d.Alf_core.Dgram.bind ~port (fun ~src ~src_port buf ->
              let buf =
                if Rng.bool rng ~p:rate then Impair.corrupt_payload rng buf
                else buf
              in
              handler ~src ~src_port buf));
    }

(* Corruption aimed *above every checksum*: flip one bit of the
   Poly1305 tag inside an inbound sealed data fragment, then re-true the
   ADU CRC and the datagram integrity trailer over the damaged bytes.
   Stage 1 now vouches for the unit end to end — only the AEAD record
   open can catch it, and it must: a counted auth drop that behaves like
   loss (unretire + NACK repair), never a delivery. Only single-fragment
   data datagrams are touched (the tag and the ADU CRC live in the same
   unit there); control traffic and multi-fragment pieces pass clean. *)
let auth_corrupting_dgram ~rng ~rate ~integrity (d : Alf_core.Dgram.t) =
  if rate <= 0.0 then d
  else
    let open Bufkit in
    let open Alf_core in
    let trailer =
      match integrity with Some _ -> Ctl.trailer_size | None -> 0
    in
    let adu_pos = Framing.fragment_header_size in
    let flip buf =
      let body = Bytebuf.length buf - trailer in
      if body <= adu_pos + Adu.header_size + Secure.Record.overhead then buf
      else
        match Framing.parse_fragment_res (Bytebuf.take buf body) with
        | Error _ -> buf
        | Ok f ->
            if f.Framing.nfrags <> 1 || Bytebuf.length f.Framing.chunk < body - adu_pos
            then buf
            else begin
              let buf = Bytebuf.copy buf in
              (* One bit, somewhere in the 16-byte tag at the very end of
                 the sealed payload. *)
              let pos = body - 1 - Rng.int rng ~bound:16 in
              Bytebuf.set_uint8 buf pos
                (Bytebuf.get_uint8 buf pos lxor (1 lsl Rng.int rng ~bound:8));
              (* Re-true the ADU CRC (computed with its own field zeroed,
                 see Adu.encode) ... *)
              let plen = body - adu_pos - Adu.header_size in
              let crc =
                let st =
                  Checksum.Crc32.feed_sub Checksum.Crc32.init buf ~pos:adu_pos
                    ~len:32
                in
                let st = ref st in
                for _ = 1 to 4 do
                  st := Checksum.Crc32.feed_byte !st 0
                done;
                Checksum.Crc32.finish
                  (Checksum.Crc32.feed_sub !st buf
                     ~pos:(adu_pos + Adu.header_size)
                     ~len:plen)
              in
              let p = adu_pos + 32 in
              Bytebuf.set_uint8 buf p
                (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff);
              Bytebuf.set_uint8 buf (p + 1)
                (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff);
              Bytebuf.set_uint8 buf (p + 2)
                (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff);
              Bytebuf.set_uint8 buf (p + 3) (Int32.to_int crc land 0xff);
              (* ... and the datagram trailer over the whole unit. *)
              ignore (Ctl.seal_in_place integrity buf ~len:body);
              buf
            end
    in
    {
      d with
      Alf_core.Dgram.bind =
        (fun ~port handler ->
          d.Alf_core.Dgram.bind ~port (fun ~src ~src_port buf ->
              let buf = if Rng.bool rng ~p:rate then flip buf else buf in
              handler ~src ~src_port buf));
    }

(* Wire loss for substrates that cannot drop in flight (real loopback
   UDP): a send vanishes with probability [rate] while still reporting
   success — the sender must not learn, exactly as on a real wire. *)
let lossy_dgram ~rng ~rate (d : Alf_core.Dgram.t) =
  if rate <= 0.0 then d
  else
    {
      d with
      Alf_core.Dgram.send =
        (fun ~dst ~dst_port ~src_port payload ->
          if Rng.bool rng ~p:rate then true
          else d.Alf_core.Dgram.send ~dst ~dst_port ~src_port payload);
    }

let links net = function
  | Forward -> [ net.Topology.ab ]
  | Backward -> [ net.Topology.ba ]
  | Both -> [ net.Topology.ab; net.Topology.ba ]

let schedule ~engine ~net ?kill_sender ?pool ?par plan =
  let at t f = ignore (Engine.schedule_at engine t f) in
  List.iter
    (fun ev ->
      match ev with
      | Kill_sender { at = t } -> (
          match kill_sender with None -> () | Some kill -> at t kill)
      | Link_down { dir; at = t; duration } ->
          List.iter
            (fun l ->
              at t (fun () -> Link.set_down l);
              at (t +. duration) (fun () -> Link.set_up l))
            (links net dir)
      | Burst_impair { dir; at = t; duration; impair } ->
          List.iter
            (fun l ->
              (* The base model is read at burst onset, not at schedule
                 time, so stacked bursts restore whatever they found. *)
              at t (fun () ->
                  let base = Link.impair l in
                  Link.set_impair l impair;
                  at (Engine.now engine +. duration) (fun () ->
                      Link.set_impair l base)))
            (links net dir)
      | Pool_squeeze { at = t; duration; hold } -> (
          match pool with
          | None -> ()
          | Some p ->
              at t (fun () ->
                  (* Grab up to [hold] buffers and sit on them: everyone
                     else now contends with a nearly-exhausted pool. *)
                  let held = ref [] in
                  (try
                     for _ = 1 to hold do
                       match Bufkit.Pool.try_acquire p with
                       | Some b -> held := b :: !held
                       | None -> raise Exit
                     done
                   with Exit -> ());
                  at (Engine.now engine +. duration) (fun () ->
                      List.iter (Bufkit.Pool.release p) !held)))
      | Worker_fault { at = t } -> (
          match par with
          | None -> ()
          | Some p ->
              at t (fun () ->
                  (* One-shot: the next pool task dies with [Fault]; the
                     injector then disarms itself (stays installed as a
                     no-op so no cross-domain uninstall race exists). *)
                  let armed = ref true in
                  Par.Pool.set_fault_injector p
                    (Some
                       (fun seq ->
                         if !armed then begin
                           armed := false;
                           raise (Fault (Printf.sprintf "worker task %d" seq))
                         end)))))
    plan.events

let generate ~seed ~duration =
  let rng = Rng.create ~seed in
  let events = ref [] in
  let bursts = 1 + Rng.int rng ~bound:3 in
  for _ = 1 to bursts do
    let at = Rng.uniform rng ~lo:(0.05 *. duration) ~hi:(0.6 *. duration) in
    let d = Rng.uniform rng ~lo:(0.02 *. duration) ~hi:(0.15 *. duration) in
    let impair =
      Impair.make
        ~loss:(Rng.uniform rng ~lo:0.3 ~hi:0.9)
        ~corrupt:(Rng.uniform rng ~lo:0.0 ~hi:0.1)
        ()
    in
    events := Burst_impair { dir = Forward; at; duration = d; impair } :: !events
  done;
  if Rng.bool rng ~p:0.5 then begin
    let at = Rng.uniform rng ~lo:(0.2 *. duration) ~hi:(0.5 *. duration) in
    let d = Rng.uniform rng ~lo:(0.05 *. duration) ~hi:(0.2 *. duration) in
    events := Link_down { dir = Forward; at; duration = d } :: !events
  end;
  { seed; events = List.rev !events }
