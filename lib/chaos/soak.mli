(** Soak runs: hostile-network transfers checked against invariants.

    One soak case builds a fresh two-node world from a seed, runs a full
    ALF transfer under an impairment model (optionally with scheduled
    {!Chaos} faults), and then checks the properties the ISSUE's
    robustness claim rests on:

    - {e quiesced}: the event queue drains — no NACK or CLOSE livelock;
    - {e accounted}: every ADU is delivered or declared gone (by either
      end) — no index hangs forever;
    - {e byte_exact}: every delivered payload equals what was sent,
      recomputed from the seed;
    - {e footprint_zero}: the sender's retransmission store is released;
    - {e counters_consistent}: the {!Obs} registry deltas equal the
      endpoint stats records;
    - {e stage1_clean}: no corrupted transmission unit survived past the
      integrity check into reassembly.

    Everything reported is derived from virtual time and seeded
    randomness, so the same seed reproduces the same [BENCH_soak.json]
    bytes. *)

open Netsim

type policy = Transport_buffer | App_recompute | App_recompute_partial | No_recovery
(** [App_recompute_partial] can only regenerate even indices — the
    sender-declared [Gone] path under real impairment. *)

val policy_name : policy -> string

type case = {
  label : string;
  seed : int64;
  adus : int;
  adu_bytes : int;
  impair : Impair.t;  (** Data direction. *)
  impair_back : Impair.t;  (** NACK/DONE direction — hostile runs impair both. *)
  corrupt_e2e : float;
      (** {!Chaos.corrupting_dgram} rate on the receiver's substrate:
          corruption above the UDP checksum, which only the ALF
          integrity trailer can catch. *)
  policy : policy;
  fec : bool;  (** Low FEC activation threshold vs disabled. *)
  secure : bool;
      (** Run the transfer under the AEAD record layer (both endpoints
          derive the same {!Secure.Record} from the case seed). *)
  rekey_at : int;
      (** Sender epoch bump just before this index ([-1] = never): the
          rekey-under-loss case — retransmissions of earlier ADUs carry
          the old epoch while recomputed repairs re-seal at the new one,
          and the receiver's two-epoch window must absorb both. *)
  corrupt_tag : float;
      (** {!Chaos.auth_corrupting_dgram} rate on the receiver's
          substrate: tag-targeted corruption with every checksum
          recomputed to vouch for it — only the AEAD open can catch it,
          as counted auth drops repaired like loss. *)
  events : Chaos.event list;
  horizon : float;  (** Virtual-time bound; quiescence must come earlier. *)
}

type invariants = {
  quiesced : bool;
  accounted : bool;
  byte_exact : bool;
  footprint_zero : bool;
  counters_consistent : bool;
  stage1_clean : bool;
}

type outcome = {
  case : case;
  inv : invariants;
  delivered : int;
  gone_sender : int;
  gone_local : int;
  corrupt_dropped : int;
  auth_dropped : int;
      (** ADUs rejected by the AEAD open (bad tag / unacceptable epoch)
          — counted drops, repaired through the normal NACK path. *)
  nacks_sent : int;
  retransmits : int;
  fec_activated : bool;
  end_time : float;  (** Virtual completion time. *)
}

val ok : outcome -> bool
(** All six invariants hold. *)

val run : case -> outcome

val run_udp : case -> outcome
(** The same transfer and invariants over a real loopback UDP socket pair
    ([Rt.Loop] + [Rt.Udp_link]) instead of the simulator. Loss and
    corruption come from {!Chaos.lossy_dgram}/{!Chaos.corrupting_dgram}
    at the datagram seam (a real wire cannot be told to misbehave);
    link-level events (outage, burst) are skipped, [Kill_sender] fires
    off a wall-clock timer. [horizon] and [end_time] are wall seconds. *)

val hostile : Impair.t
(** The acceptance impairment: loss 0.3, corrupt 0.05, duplicate 0.05,
    reorder 0.2 (jitter 5 ms so reordering actually occurs). *)

val matrix : ?smoke:bool -> seed:int64 -> unit -> case list
(** Impairment × recovery policy × FEC sweep plus fault-plan cases
    (sender kill, outage, burst). [~smoke:true] is the 2-second tier-1
    subset: hostile impairment only, fewer/smaller ADUs. *)

val run_matrix : ?smoke:bool -> seed:int64 -> unit -> outcome list

val udp_matrix : ?smoke:bool -> seed:int64 -> unit -> case list
(** The real-socket subset: every recovery policy under loss, e2e
    corruption, and a mid-transfer sender kill, with wall-clock horizons.
    [~smoke:true] keeps three cases for tier-1 time budgets. *)

val run_udp_matrix : ?smoke:bool -> seed:int64 -> unit -> outcome list

val outcome_json : outcome -> Obs.Json.t
val to_json : outcome list -> Obs.Json.t

val write_json : string -> outcome list -> unit
(** Dump [to_json] (pretty, trailing newline) — [BENCH_soak.json]. *)

val pp_outcome : Format.formatter -> outcome -> unit
