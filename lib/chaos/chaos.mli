(** Deterministic fault injection.

    A {!plan} is a seeded schedule of faults — the failure modes the
    paper's §5 robustness argument says a transfer-control architecture
    must absorb, plus the end-system ones (memory pressure, a dying
    worker domain) that FlexTOE-style fine-grained data paths add. Every
    fault fires at a virtual instant through hooks in [netsim], [bufkit]
    and [par], so a whole hostile run is reproducible from one RNG seed:
    same seed, same packet fates, same fault timings, same counters. *)

open Netsim

exception Fault of string
(** What an injected worker-domain fault raises. *)

type dir = Forward | Backward | Both
(** Which side of a duplex topology a link fault hits ([Forward] is the
    data direction a→b). *)

type event =
  | Kill_sender of { at : float }
      (** The sending process dies: queued data never leaves, NACKs go
          unanswered forever after. *)
  | Link_down of { dir : dir; at : float; duration : float }
      (** Administrative outage: sends fail (counted [dropped_down]);
          packets already in flight still arrive. *)
  | Burst_impair of { dir : dir; at : float; duration : float; impair : Impair.t }
      (** A burst window swaps the link's impairment model, then restores
          what it found. *)
  | Pool_squeeze of { at : float; duration : float; hold : int }
      (** Acquire up to [hold] buffers from a capped {!Bufkit.Pool} and
          hold them for [duration] — memory pressure on demand. *)
  | Worker_fault of { at : float }
      (** Arm a one-shot {!Par.Pool} fault injector: the next task after
          [at] raises {!Fault}. *)

type plan = { seed : int64; events : event list }

val none : seed:int64 -> plan

val generate : seed:int64 -> duration:float -> plan
(** A random but fully seed-determined schedule of burst-loss windows and
    (half the time) one outage within [duration]. *)

val schedule :
  engine:Engine.t ->
  net:Topology.duplex ->
  ?kill_sender:(unit -> unit) ->
  ?pool:Bufkit.Pool.t ->
  ?par:Par.Pool.t ->
  plan ->
  unit
(** Install every event of the plan on the engine. Events whose target
    hook was not provided ([?kill_sender], [?pool], [?par]) are silently
    skipped, so one plan can drive worlds of different shapes. *)

val corrupting_dgram :
  rng:Rng.t -> rate:float -> Alf_core.Dgram.t -> Alf_core.Dgram.t
(** Above-substrate corruption: flip one byte of each inbound datagram
    with probability [rate], {e after} the substrate's own checksum has
    vouched for it (a checksum-recomputing middlebox, a DMA error). UDP
    and AAL5 filter in-flight corruption themselves, so this is the
    fault the ALF transport's per-fragment integrity trailer exists to
    catch — and what soak cases use to prove corrupted transmission
    units die at stage 1. [rate <= 0] returns the substrate unchanged. *)

val auth_corrupting_dgram :
  rng:Netsim.Rng.t ->
  rate:float ->
  integrity:Checksum.Kind.t option ->
  Alf_core.Dgram.t ->
  Alf_core.Dgram.t
(** Above-{e every}-checksum corruption: with probability [rate], flip
    one bit of the Poly1305 tag in an inbound single-fragment sealed
    data unit and {e recompute} the ADU CRC and integrity trailer over
    the damage, so stage 1 vouches for it and only the AEAD record open
    ({!Alf_core.Secure.Record}) can reject it — the fault the record
    layer exists to catch. *)

val lossy_dgram :
  rng:Rng.t -> rate:float -> Alf_core.Dgram.t -> Alf_core.Dgram.t
(** Wire loss at the datagram seam, for substrates with no in-flight
    drop hook (real loopback UDP): each send vanishes with probability
    [rate] but still reports success, exactly as a packet lost beyond
    the first hop would. Deterministic from [rng]. [rate <= 0] returns
    the substrate unchanged. *)

val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit
