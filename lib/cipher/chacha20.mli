(** RFC 8439 ChaCha20 keystream, pure OCaml, word-at-a-time.

    Like {!Pad} — and unlike {!Rc4} — the keystream is {e seekable}: byte
    [p] is a pure function of (key, nonce, [p]), so any sub-range can be
    produced independently and out-of-order data units decrypt without
    chaining state. This is the modern resolution of the paper's §5
    chaining-vs-reordering tension. Block 0 is reserved for the Poly1305
    one-time key (RFC 8439 §2.6); payload positions draw from block 1
    onward.

    Not hardened against timing side channels; the point here is the
    protocol architecture, not a vetted crypto implementation. *)

open Bufkit

type key
(** A 256-bit key, preprocessed into state words. *)

val key_of_string : string -> key
(** [key_of_string s] reads a raw 32-byte little-endian key. Raises
    [Invalid_argument] on any other length. *)

val key_of_int64 : int64 -> key
(** Expand a compact 64-bit seed into a 256-bit key (SplitMix64), so
    demo/bench keys can be named like {!Pad} keys. Not a KDF. *)

val derive : key -> n0:int -> n1:int -> n2:int -> key
(** [derive key ~n0 ~n1 ~n2] is a fresh key read out of the (key, nonce)
    keystream's block 0 — a one-way epoch KDF: knowing the derived key
    reveals nothing about [key] or sibling epochs. *)

type t
(** A keystream positioned by a (key, 96-bit nonce) pair. Holds one cached
    64-byte block; all seeks reuse it when they land in the same block. *)

val create : key:key -> n0:int -> n1:int -> n2:int -> t
(** [create ~key ~n0 ~n1 ~n2] fixes the nonce as three little-endian u32
    words (RFC 8439 layout). Values are masked to 32 bits. *)

val byte_at : t -> int -> int
(** Keystream byte at payload position [pos >= 0]. *)

val word64_at : t -> int -> int64
(** [word64_at t pos] is the keystream for payload positions
    [pos .. pos+7], packed little-endian (byte for [pos] in the low
    octet) — any alignment; straddled blocks are assembled bytewise. The
    fused word loop's contract, identical to {!Pad.word64_at}. *)

val xor_block64 : t -> pos:int -> Bytes.t -> off:int -> unit
(** [xor_block64 t ~pos bytes ~off] XORs the 64 bytes at [bytes.(off..)]
    in place with keystream positions [pos, pos + 64). [pos] must be a
    multiple of 64: the span then covers exactly one keystream block, so
    the fused block flush pays one seek and eight word loads. *)

val poly_key : t -> int64 * int64 * int64 * int64
(** The Poly1305 one-time key for this (key, nonce): the first 32 bytes of
    keystream block 0, as four little-endian 64-bit words
    [(r_lo, r_hi, s_lo, s_hi)]. *)

val transform_at : t -> pos:int -> Bytebuf.t -> unit
(** XOR the slice in place with keystream bytes [pos, pos + len).
    Encryption and decryption are the same operation; ranges may be
    processed in any order. Serial-baseline / oracle building block. *)
