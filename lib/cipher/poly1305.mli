(** RFC 8439 Poly1305 one-time authenticator, 26-bit-limb arithmetic.

    Accumulates 16-byte blocks into [h = (h + m)·r mod 2^130 - 5] with the
    key's [s] half added at the end. All limb arithmetic fits OCaml's
    native 63-bit ints, so feeding and finishing allocate nothing — the
    MAC can ride inside the fused ILP word loop.

    The one-time key arrives as four little-endian 64-bit words (the shape
    {!Chacha20.poly_key} produces); [r] clamping per RFC 8439 §2.5 is
    applied here. Not hardened against timing side channels. *)

open Bufkit

type t
(** Mutable accumulator state (plus a small staging buffer that lets
    64-bit word feeds and byte tails mix freely). *)

val create : k0:int64 -> k1:int64 -> k2:int64 -> k3:int64 -> t
(** [(k0, k1)] is the little-endian [r] half (clamped internally),
    [(k2, k3)] the [s] half. *)

val feed_word64 : t -> int64 -> unit
(** Append 8 message bytes, packed little-endian — the fused loop's unit. *)

val feed_byte : t -> int -> unit
(** Append one message byte (low 8 bits). *)

val feed_block64 : t -> Bytes.t -> int -> unit
(** [feed_block64 t bytes off] appends the 64 bytes at [bytes.(off..)]:
    when the staging buffer is empty (the steady state of the fused block
    flush) this folds four blocks straight from the backing store,
    skipping the staging round trip; otherwise it degrades to eight
    staged word feeds. *)

val feed_sub : t -> Bytebuf.t -> unit
(** Append a whole slice (word loop + byte tail). *)

val pad16 : t -> unit
(** Zero-pad the stream fed so far to a 16-byte boundary (no-op when
    already aligned) — the AEAD construction's AAD/ciphertext seams. *)

val finish : t -> int64 * int64
(** Close the final (possibly partial) block and return the 128-bit tag as
    little-endian [(lo, hi)] words. The state must not be fed again. *)
