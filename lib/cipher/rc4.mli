(** RC4-style stream cipher (simulation-grade, not for real secrecy).

    A strictly sequential keystream: byte [i] of the stream can only be
    produced after bytes [0..i-1]. That property is exactly the ordering
    constraint the paper discusses — a connection encrypted with a
    sequential stream cannot decrypt data units out of order unless the
    cipher is re-keyed at synchronisation points (per packet, or per ADU).
    Contrast with {!Pad}, which is seekable.

    {b Status: §5 ablation only.} This module is kept as the
    experimental control demonstrating the in-order chaining pathology
    (serial degradation under {!Ilp_par} sharding, no out-of-order
    decrypt). The default record cipher everywhere — {!Secure.Record},
    session negotiation, the ILP {!Ilp.Aead_seal}/[Aead_open] stages —
    is the seekable {!Chacha20}/{!Poly1305} AEAD; RC4 must be selected
    explicitly (cipher name "rc4") to reproduce the ablation. *)

open Bufkit

type t
(** Mutable keystream state. *)

val create : key:string -> t
(** Key-schedule a fresh state. The key must be 1–256 bytes. *)

val copy : t -> t
(** Duplicate the state (e.g. to checkpoint at a synchronisation point). *)

val keystream_byte : t -> int
(** Next keystream byte; advances the state. *)

val transform_inplace : t -> Bytebuf.t -> unit
(** XOR the slice with the next [length] keystream bytes. Encryption and
    decryption are the same operation. *)

val transform : t -> Bytebuf.t -> Bytebuf.t
(** Like {!transform_inplace} but into a fresh buffer. *)
