open Bufkit

type t = { key : int64 }

let create ~key = { key }

(* SplitMix64 finaliser over key-mixed block index: a cheap, statistically
   strong pure function of (key, position / 8). Eight keystream bytes per
   mix. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let block t idx = mix64 (Int64.add t.key (Int64.mul idx 0x9E3779B97F4A7C15L))
let block64 = block

let word64_at t pos =
  let idx = Int64.div pos 8L and off = Int64.to_int (Int64.rem pos 8L) in
  if off = 0 then block t idx
  else
    (* Straddles two blocks: low octets from the tail of block [idx], high
       octets from the head of block [idx+1]. *)
    Int64.logor
      (Int64.shift_right_logical (block t idx) (off * 8))
      (Int64.shift_left (block t (Int64.add idx 1L)) ((8 - off) * 8))

let byte_at t pos =
  let idx = Int64.div pos 8L and off = Int64.to_int (Int64.rem pos 8L) in
  Int64.to_int (Int64.shift_right_logical (block t idx) (off * 8)) land 0xff

let transform_at t ~pos buf =
  let n = Bytebuf.length buf in
  for i = 0 to n - 1 do
    let k = byte_at t (Int64.add pos (Int64.of_int i)) in
    let b = Char.code (Bytebuf.unsafe_get buf i) in
    Bytebuf.unsafe_set buf i (Char.unsafe_chr (b lxor k))
  done

let transform_copy_at t ~pos ~src ~dst =
  let n = Bytebuf.length src in
  if Bytebuf.length dst <> n then
    invalid_arg "Pad.transform_copy_at: length mismatch";
  for i = 0 to n - 1 do
    let k = byte_at t (Int64.add pos (Int64.of_int i)) in
    let b = Char.code (Bytebuf.unsafe_get src i) in
    Bytebuf.unsafe_set dst i (Char.unsafe_chr (b lxor k))
  done
