open Bufkit

(* RFC 8439 Poly1305 in 5 x 26-bit limbs (poly1305-donna-32 shape).

   Every partial product is bounded by 2^27 * 5*2^26 < 2^56 and the
   five-term sums stay under 2^59, so the whole accumulator lives in
   OCaml's 63-bit native ints — no Int64 boxing, no allocation per block.
   Input arrives through a 24-byte staging buffer so 64-bit word feeds
   (the fused loop's unit) and byte tails mix freely; a block is folded
   the moment 16 bytes are resident. *)

let m26 = 0x3FFFFFF

type t = {
  r0 : int;
  r1 : int;
  r2 : int;
  r3 : int;
  r4 : int; (* clamped r, 26-bit limbs *)
  rr1 : int;
  rr2 : int;
  rr3 : int;
  rr4 : int; (* 5*r1 .. 5*r4, for the mod 2^130-5 fold *)
  s0 : int;
  s1 : int;
  s2 : int;
  s3 : int; (* the added-at-the-end s half, u32 words *)
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buf : Bytes.t; (* 24 bytes: <= 15 resident + one whole 8-byte word *)
  mutable buf_len : int;
}

let lo32 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)
let hi32 x = Int64.to_int (Int64.logand (Int64.shift_right_logical x 32) 0xFFFFFFFFL)

let create ~k0 ~k1 ~k2 ~k3 =
  (* r is clamped per RFC 8439 §2.5: top 4 bits of each u32 clear, bottom
     2 bits of the upper three u32s clear. *)
  let t0 = lo32 k0 land 0x0FFFFFFF in
  let t1 = hi32 k0 land 0x0FFFFFFC in
  let t2 = lo32 k1 land 0x0FFFFFFC in
  let t3 = hi32 k1 land 0x0FFFFFFC in
  let r0 = t0 land m26 in
  let r1 = ((t0 lsr 26) lor (t1 lsl 6)) land m26 in
  let r2 = ((t1 lsr 20) lor (t2 lsl 12)) land m26 in
  let r3 = ((t2 lsr 14) lor (t3 lsl 18)) land m26 in
  let r4 = t3 lsr 8 in
  {
    r0;
    r1;
    r2;
    r3;
    r4;
    rr1 = 5 * r1;
    rr2 = 5 * r2;
    rr3 = 5 * r3;
    rr4 = 5 * r4;
    s0 = lo32 k2;
    s1 = hi32 k2;
    s2 = lo32 k3;
    s3 = hi32 k3;
    h0 = 0;
    h1 = 0;
    h2 = 0;
    h3 = 0;
    h4 = 0;
    buf = Bytes.create 24;
    buf_len = 0;
  }

(* Fold one 16-byte block, given as four u32 words, into the
   accumulator: h = (h + m + hibit) * r mod p. *)
let process_words t m0 m1 m2 m3 ~hibit =
  let h0 = t.h0 + (m0 land m26) in
  let h1 = t.h1 + (((m0 lsr 26) lor (m1 lsl 6)) land m26) in
  let h2 = t.h2 + (((m1 lsr 20) lor (m2 lsl 12)) land m26) in
  let h3 = t.h3 + (((m2 lsr 14) lor (m3 lsl 18)) land m26) in
  let h4 = t.h4 + ((m3 lsr 8) lor hibit) in
  let d0 =
    (h0 * t.r0) + (h1 * t.rr4) + (h2 * t.rr3) + (h3 * t.rr2) + (h4 * t.rr1)
  in
  let d1 =
    (h0 * t.r1) + (h1 * t.r0) + (h2 * t.rr4) + (h3 * t.rr3) + (h4 * t.rr2)
  in
  let d2 =
    (h0 * t.r2) + (h1 * t.r1) + (h2 * t.r0) + (h3 * t.rr4) + (h4 * t.rr3)
  in
  let d3 =
    (h0 * t.r3) + (h1 * t.r2) + (h2 * t.r1) + (h3 * t.r0) + (h4 * t.rr4)
  in
  let d4 =
    (h0 * t.r4) + (h1 * t.r3) + (h2 * t.r2) + (h3 * t.r1) + (h4 * t.r0)
  in
  let h0 = d0 land m26 in
  let d1 = d1 + (d0 lsr 26) in
  let h1 = d1 land m26 in
  let d2 = d2 + (d1 lsr 26) in
  let h2 = d2 land m26 in
  let d3 = d3 + (d2 lsr 26) in
  let h3 = d3 land m26 in
  let d4 = d4 + (d3 lsr 26) in
  let h4 = d4 land m26 in
  let h0 = h0 + (5 * (d4 lsr 26)) in
  let h1 = h1 + (h0 lsr 26) in
  let h0 = h0 land m26 in
  t.h0 <- h0;
  t.h1 <- h1;
  t.h2 <- h2;
  t.h3 <- h3;
  t.h4 <- h4

let process t ~hibit =
  let b = t.buf in
  let u32 off =
    Char.code (Bytes.unsafe_get b off)
    lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)
  in
  process_words t (u32 0) (u32 4) (u32 8) (u32 12) ~hibit

let[@inline] compact t =
  if t.buf_len >= 16 then begin
    process t ~hibit:(1 lsl 24);
    let rem = t.buf_len - 16 in
    if rem > 0 then Bytes.blit t.buf 16 t.buf 0 rem;
    t.buf_len <- rem
  end

let feed_word64 t w =
  Bytes.set_int64_le t.buf t.buf_len w;
  t.buf_len <- t.buf_len + 8;
  compact t

let feed_byte t b =
  Bytes.unsafe_set t.buf t.buf_len (Char.unsafe_chr (b land 0xff));
  t.buf_len <- t.buf_len + 1;
  compact t

(* Block-grain feed for the fused ILP loop: 64 bytes, four limb folds,
   straight from the backing store — no staging-buffer round trip. Only
   valid mid-stream on a block boundary; when bytes are resident (odd
   AAD lengths) it degrades to the staged word feed. *)
let feed_block64 t bytes off =
  if t.buf_len <> 0 then
    for k = 0 to 7 do
      feed_word64 t (Bytes.get_int64_le bytes (off + (8 * k)))
    done
  else
    for k = 0 to 3 do
      let wlo = Bytes.get_int64_le bytes (off + (16 * k)) in
      let whi = Bytes.get_int64_le bytes (off + (16 * k) + 8) in
      process_words t (lo32 wlo) (hi32 wlo) (lo32 whi) (hi32 whi)
        ~hibit:(1 lsl 24)
    done

let feed_sub t buf =
  let bytes, boff, n = Bytebuf.backing buf in
  let i = ref 0 in
  while !i + 8 <= n do
    feed_word64 t (Bytes.get_int64_le bytes (boff + !i));
    i := !i + 8
  done;
  while !i < n do
    feed_byte t (Char.code (Bytes.unsafe_get bytes (boff + !i)));
    incr i
  done

let pad16 t =
  (* The residue mod 16 of everything fed so far is exactly [buf_len]
     (blocks are folded eagerly), so zero-extending it to 16 pads the
     stream to a block boundary. *)
  if t.buf_len > 0 then begin
    Bytes.fill t.buf t.buf_len (16 - t.buf_len) '\000';
    t.buf_len <- 16;
    compact t
  end

let finish t =
  if t.buf_len > 0 then begin
    (* Final partial block: append 0x01 then zeros — the length-encoding
       bit lands inside the block, so no 2^128 hibit. *)
    Bytes.set t.buf t.buf_len '\001';
    if t.buf_len < 15 then Bytes.fill t.buf (t.buf_len + 1) (15 - t.buf_len) '\000';
    t.buf_len <- 16;
    process t ~hibit:0;
    t.buf_len <- 0
  end;
  (* Full carry propagation, then reduce once more if h >= 2^130 - 5. *)
  let h0 = t.h0 and h1 = t.h1 and h2 = t.h2 and h3 = t.h3 and h4 = t.h4 in
  let h2 = h2 + (h1 lsr 26) and h1 = h1 land m26 in
  let h3 = h3 + (h2 lsr 26) and h2 = h2 land m26 in
  let h4 = h4 + (h3 lsr 26) and h3 = h3 land m26 in
  let h0 = h0 + (5 * (h4 lsr 26)) and h4 = h4 land m26 in
  let h1 = h1 + (h0 lsr 26) and h0 = h0 land m26 in
  let g0 = h0 + 5 in
  let g1 = h1 + (g0 lsr 26) and g0 = g0 land m26 in
  let g2 = h2 + (g1 lsr 26) and g1 = g1 land m26 in
  let g3 = h3 + (g2 lsr 26) and g2 = g2 land m26 in
  let g4 = h4 + (g3 lsr 26) - (1 lsl 26) and g3 = g3 land m26 in
  let h0, h1, h2, h3, h4 =
    if g4 >= 0 then (g0, g1, g2, g3, g4 land m26) else (h0, h1, h2, h3, h4)
  in
  (* tag = (h + s) mod 2^128, as four u32 adds with carry. *)
  let f0 = ((h0 lor (h1 lsl 26)) land 0xFFFFFFFF) + t.s0 in
  let f1 = (((h1 lsr 6) lor (h2 lsl 20)) land 0xFFFFFFFF) + t.s1 + (f0 lsr 32) in
  let f2 = (((h2 lsr 12) lor (h3 lsl 14)) land 0xFFFFFFFF) + t.s2 + (f1 lsr 32) in
  let f3 = (((h3 lsr 18) lor (h4 lsl 8)) land 0xFFFFFFFF) + t.s3 + (f2 lsr 32) in
  let lo =
    Int64.logor
      (Int64.of_int (f0 land 0xFFFFFFFF))
      (Int64.shift_left (Int64.of_int (f1 land 0xFFFFFFFF)) 32)
  in
  let hi =
    Int64.logor
      (Int64.of_int (f2 land 0xFFFFFFFF))
      (Int64.shift_left (Int64.of_int (f3 land 0xFFFFFFFF)) 32)
  in
  (lo, hi)
