(** Seekable keystream cipher (counter-mode flavoured; simulation-grade).

    The keystream byte at absolute position [p] is a pure function of
    (key, p), so any sub-range of a stream can be encrypted or decrypted
    independently — the cipher imposes {e no} ordering constraint. This is
    what makes per-ADU encryption compatible with out-of-order ADU
    processing: each ADU carries its position in the cipher name-space and
    can be decrypted the moment it arrives. *)

open Bufkit

type t

val create : key:int64 -> t

val byte_at : t -> int64 -> int
(** Keystream byte at absolute stream position. *)

val block64 : t -> int64 -> int64
(** [block64 t idx] is the 8-byte keystream block covering positions
    [8·idx .. 8·idx+7], packed little-endian (byte for position [8·idx] in
    the low octet). Fused word-at-a-time loops XOR whole blocks at once;
    [byte_at t p = (block64 t (p/8) >> 8·(p mod 8)) land 0xff]. *)

val word64_at : t -> int64 -> int64
(** [word64_at t pos] is the keystream for positions [pos .. pos+7], packed
    little-endian (byte for [pos] in the low octet), for {e any} position —
    unaligned positions are assembled from the two straddled blocks. Equal
    to [block64 t (pos/8)] when [pos] is a multiple of 8. This is what lets
    a fused word loop XOR a pad whose stream offset is not word-aligned
    (ADUs land at arbitrary [dest_off]). Positions must be non-negative. *)

val transform_at : t -> pos:int64 -> Bytebuf.t -> unit
(** XOR the slice in place with keystream bytes [pos, pos+len). Encryption
    and decryption are the same operation; ranges may be processed in any
    order. *)

val transform_copy_at : t -> pos:int64 -> src:Bytebuf.t -> dst:Bytebuf.t -> unit
(** Fused copy-and-transform from [src] into [dst] (same length), reading
    each byte exactly once — an ILP building block. Raises
    [Invalid_argument] on length mismatch. *)
