open Bufkit

(* RFC 8439 AEAD_CHACHA20_POLY1305, decomposed into word-at-a-time
   combinators so the whole construction — XOR with keystream, MAC over
   the ciphertext — runs inside one fused ILP pass. The caller drives the
   payload through [seal_word]/[open_word] in position order (the plan
   compiler's word loop already does), then closes with [tag].

   MAC input: AAD ‖ pad16 ‖ ciphertext ‖ pad16 ‖ len(AAD)_LE64 ‖
   len(ct)_LE64, keyed by ChaCha20 block 0; payload keystream starts at
   block 1. *)

type t = {
  c : Chacha20.t;
  p : Poly1305.t;
  aad_len : int;
  mutable ct_len : int;
}

let create ~key ~n0 ~n1 ~n2 ~aad =
  let c = Chacha20.create ~key ~n0 ~n1 ~n2 in
  let k0, k1, k2, k3 = Chacha20.poly_key c in
  let p = Poly1305.create ~k0 ~k1 ~k2 ~k3 in
  Poly1305.feed_sub p aad;
  Poly1305.pad16 p;
  { c; p; aad_len = Bytebuf.length aad; ct_len = 0 }

let[@inline] seal_word t pos w =
  let ct = Int64.logxor w (Chacha20.word64_at t.c pos) in
  Poly1305.feed_word64 t.p ct;
  t.ct_len <- t.ct_len + 8;
  ct

let[@inline] open_word t pos w =
  Poly1305.feed_word64 t.p w;
  t.ct_len <- t.ct_len + 8;
  Int64.logxor w (Chacha20.word64_at t.c pos)

let[@inline] seal_byte t pos b =
  let ct = (b lxor Chacha20.byte_at t.c pos) land 0xff in
  Poly1305.feed_byte t.p ct;
  t.ct_len <- t.ct_len + 1;
  ct

let[@inline] open_byte t pos b =
  Poly1305.feed_byte t.p b;
  t.ct_len <- t.ct_len + 1;
  (b lxor Chacha20.byte_at t.c pos) land 0xff

(* Block-grain seal/open for the fused flush: 64 bytes in place, [pos]
   64-aligned. One keystream seek, one four-fold MAC feed — the per-word
   dispatch this amortises is what the E20 gate measures. *)

let seal_block64 t ~pos bytes ~off =
  Chacha20.xor_block64 t.c ~pos bytes ~off;
  Poly1305.feed_block64 t.p bytes off;
  t.ct_len <- t.ct_len + 64

let open_block64 t ~pos bytes ~off =
  Poly1305.feed_block64 t.p bytes off;
  Chacha20.xor_block64 t.c ~pos bytes ~off;
  t.ct_len <- t.ct_len + 64

let tag t =
  Poly1305.pad16 t.p;
  Poly1305.feed_word64 t.p (Int64.of_int t.aad_len);
  Poly1305.feed_word64 t.p (Int64.of_int t.ct_len);
  Poly1305.finish t.p

let tag_matches ~lo ~hi (lo', hi') =
  Int64.logor (Int64.logxor lo lo') (Int64.logxor hi hi') = 0L

(* Whole-buffer forms: the honest serial baseline (separate passes would
   be even slower; this is already the fused-per-call composition) and the
   oracle the fused plan stages are tested against. *)

let run_in_place seal ~key ~n0 ~n1 ~n2 ~aad buf =
  let t = create ~key ~n0 ~n1 ~n2 ~aad in
  let bytes, boff, n = Bytebuf.backing buf in
  let i = ref 0 in
  while !i + 8 <= n do
    let w = Bytes.get_int64_le bytes (boff + !i) in
    let w' = if seal then seal_word t !i w else open_word t !i w in
    Bytes.set_int64_le bytes (boff + !i) w';
    i := !i + 8
  done;
  while !i < n do
    let b = Char.code (Bytes.unsafe_get bytes (boff + !i)) in
    let b' = if seal then seal_byte t !i b else open_byte t !i b in
    Bytes.unsafe_set bytes (boff + !i) (Char.unsafe_chr b');
    incr i
  done;
  tag t

let seal_in_place ~key ~n0 ~n1 ~n2 ~aad buf =
  run_in_place true ~key ~n0 ~n1 ~n2 ~aad buf

let open_in_place_tag ~key ~n0 ~n1 ~n2 ~aad buf =
  run_in_place false ~key ~n0 ~n1 ~n2 ~aad buf

let open_in_place ~key ~n0 ~n1 ~n2 ~aad buf ~lo ~hi =
  tag_matches ~lo ~hi (open_in_place_tag ~key ~n0 ~n1 ~n2 ~aad buf)
