(** RFC 8439 ChaCha20-Poly1305 AEAD as fused word-at-a-time combinators.

    One {!t} seals or opens exactly one record: feed the payload through
    {!seal_word}/{!open_word} (and byte-tail variants) in position order,
    then read the 128-bit {!tag}. Encrypt, MAC and (in the caller's loop)
    copy/checksum all happen in the same pass over the data — the ILP
    thesis applied to real crypto. The MAC covers
    [AAD ‖ pad16 ‖ ct ‖ pad16 ‖ len(AAD) ‖ len(ct)]. *)

open Bufkit

type t

val create :
  key:Chacha20.key -> n0:int -> n1:int -> n2:int -> aad:Bytebuf.t -> t
(** Start a record under (key, 96-bit nonce). The AAD is absorbed
    immediately; [aad] may be reused by the caller afterwards. *)

val seal_word : t -> int -> int64 -> int64
(** [seal_word t pos w]: ciphertext word for plaintext [w] at payload
    position [pos] (little-endian packing); the ciphertext enters the MAC. *)

val open_word : t -> int -> int64 -> int64
(** Inverse of {!seal_word}: MACs the ciphertext word, returns plaintext. *)

val seal_byte : t -> int -> int -> int
val open_byte : t -> int -> int -> int

val seal_block64 : t -> pos:int -> Bytes.t -> off:int -> unit
(** [seal_block64 t ~pos bytes ~off] seals 64 payload bytes in place at
    [bytes.(off..)], stream position [pos] (must be 64-aligned): one
    keystream seek, four direct MAC folds — the block-grain form of
    {!seal_word} the fused loop's flush uses. *)

val open_block64 : t -> pos:int -> Bytes.t -> off:int -> unit
(** Inverse of {!seal_block64}: MAC the ciphertext block, then decrypt
    it in place. *)

val tag : t -> int64 * int64
(** Close the record: pad16 the ciphertext, absorb the length block, and
    return the Poly1305 tag as little-endian [(lo, hi)]. Call once. *)

val tag_matches : lo:int64 -> hi:int64 -> int64 * int64 -> bool
(** Branch-free 128-bit tag comparison. *)

val seal_in_place :
  key:Chacha20.key ->
  n0:int ->
  n1:int ->
  n2:int ->
  aad:Bytebuf.t ->
  Bytebuf.t ->
  int64 * int64
(** Whole-buffer seal (encrypt in place, return tag): the serial baseline
    and test oracle for the fused plan stages. *)

val open_in_place_tag :
  key:Chacha20.key ->
  n0:int ->
  n1:int ->
  n2:int ->
  aad:Bytebuf.t ->
  Bytebuf.t ->
  int64 * int64
(** Whole-buffer open without the verdict: decrypt in place and return the
    {e computed} tag for the caller to compare (oracle / layered form). *)

val open_in_place :
  key:Chacha20.key ->
  n0:int ->
  n1:int ->
  n2:int ->
  aad:Bytebuf.t ->
  Bytebuf.t ->
  lo:int64 ->
  hi:int64 ->
  bool
(** Whole-buffer open: decrypt in place and check the tag. [false] means
    auth failure — the buffer then holds garbage the caller must drop. *)
