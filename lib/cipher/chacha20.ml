open Bufkit

(* RFC 8439 ChaCha20, pure OCaml, word-at-a-time.

   The keystream is a pure function of (key, nonce, byte position): block
   [p / 64] is one 20-round core evaluation, independent of every other
   block. That seekability is what lets the fused ILP loop consume the
   keystream 64 bits at a time at arbitrary offsets — same contract as
   [Pad.word64_at] — and what lets out-of-order ADUs decrypt without
   chaining state (contrast [Rc4], the paper's §5 pathology).

   u32 arithmetic rides in native ints under [land mask32]; every
   intermediate fits 63 bits. Not hardened against timing side channels —
   this is a protocol-architecture reproduction, not a crypto library. *)

type key = int array (* 8 little-endian u32 words *)

let mask32 = 0xFFFFFFFF

let key_of_string s =
  if String.length s <> 32 then
    invalid_arg "Chacha20.key_of_string: key must be 32 bytes";
  Array.init 8 (fun i ->
      let b j = Char.code s.[(4 * i) + j] in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

(* SplitMix64 expansion of a compact 64-bit seed into a 256-bit key, so
   demo/bench keys can be named the way [Pad] keys are. Convenience, not a
   KDF for real secrets. *)
let key_of_int64 seed =
  let mix64 z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let k = Array.make 8 0 in
  for i = 0 to 3 do
    let w =
      mix64 (Int64.add seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L))
    in
    k.(2 * i) <- Int64.to_int (Int64.logand w 0xFFFFFFFFL);
    k.((2 * i) + 1) <-
      Int64.to_int (Int64.logand (Int64.shift_right_logical w 32) 0xFFFFFFFFL)
  done;
  k

type t = {
  state : int array; (* 16 u32 words; slot 12 (counter) rewritten per block *)
  work : int array; (* double-round scratch *)
  block : Bytes.t; (* 64-byte serialisation of the cached keystream block *)
  mutable cached : int; (* block counter held in [block]; -1 = none *)
}

let create ~key ~n0 ~n1 ~n2 =
  if Array.length key <> 8 then invalid_arg "Chacha20.create: malformed key";
  let state = Array.make 16 0 in
  state.(0) <- 0x61707865;
  state.(1) <- 0x3320646e;
  state.(2) <- 0x79622d32;
  state.(3) <- 0x6b206574;
  Array.blit key 0 state 4 8;
  state.(13) <- n0 land mask32;
  state.(14) <- n1 land mask32;
  state.(15) <- n2 land mask32;
  { state; work = Array.make 16 0; block = Bytes.create 64; cached = -1 }

let[@inline] rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* The 20 rounds as a register-passing recursion: without flambda, the
   state words must travel as function parameters to stay out of the
   (bounds-checked) work array — this loop is the whole cost of the
   cipher, and the straight-line double round below is ~2.5x the array
   version. The feed-forward add and serialisation happen in the base
   case, one masked add and four-byte store per word. *)
let refill t counter =
  let s = t.state and b = t.block in
  let counter = counter land mask32 in
  s.(12) <- counter;
  let rec go n x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15 =
    if n = 0 then begin
      Bytes.set_int32_le b 0 (Int32.of_int ((x0 + s.(0)) land mask32));
      Bytes.set_int32_le b 4 (Int32.of_int ((x1 + s.(1)) land mask32));
      Bytes.set_int32_le b 8 (Int32.of_int ((x2 + s.(2)) land mask32));
      Bytes.set_int32_le b 12 (Int32.of_int ((x3 + s.(3)) land mask32));
      Bytes.set_int32_le b 16 (Int32.of_int ((x4 + s.(4)) land mask32));
      Bytes.set_int32_le b 20 (Int32.of_int ((x5 + s.(5)) land mask32));
      Bytes.set_int32_le b 24 (Int32.of_int ((x6 + s.(6)) land mask32));
      Bytes.set_int32_le b 28 (Int32.of_int ((x7 + s.(7)) land mask32));
      Bytes.set_int32_le b 32 (Int32.of_int ((x8 + s.(8)) land mask32));
      Bytes.set_int32_le b 36 (Int32.of_int ((x9 + s.(9)) land mask32));
      Bytes.set_int32_le b 40 (Int32.of_int ((x10 + s.(10)) land mask32));
      Bytes.set_int32_le b 44 (Int32.of_int ((x11 + s.(11)) land mask32));
      Bytes.set_int32_le b 48 (Int32.of_int ((x12 + s.(12)) land mask32));
      Bytes.set_int32_le b 52 (Int32.of_int ((x13 + s.(13)) land mask32));
      Bytes.set_int32_le b 56 (Int32.of_int ((x14 + s.(14)) land mask32));
      Bytes.set_int32_le b 60 (Int32.of_int ((x15 + s.(15)) land mask32))
    end
    else begin
      (* Column quarter-rounds: (0,4,8,12) (1,5,9,13) (2,6,10,14) (3,7,11,15). *)
      let x0 = (x0 + x4) land mask32 in
      let x12 = rotl (x12 lxor x0) 16 in
      let x8 = (x8 + x12) land mask32 in
      let x4 = rotl (x4 lxor x8) 12 in
      let x0 = (x0 + x4) land mask32 in
      let x12 = rotl (x12 lxor x0) 8 in
      let x8 = (x8 + x12) land mask32 in
      let x4 = rotl (x4 lxor x8) 7 in
      let x1 = (x1 + x5) land mask32 in
      let x13 = rotl (x13 lxor x1) 16 in
      let x9 = (x9 + x13) land mask32 in
      let x5 = rotl (x5 lxor x9) 12 in
      let x1 = (x1 + x5) land mask32 in
      let x13 = rotl (x13 lxor x1) 8 in
      let x9 = (x9 + x13) land mask32 in
      let x5 = rotl (x5 lxor x9) 7 in
      let x2 = (x2 + x6) land mask32 in
      let x14 = rotl (x14 lxor x2) 16 in
      let x10 = (x10 + x14) land mask32 in
      let x6 = rotl (x6 lxor x10) 12 in
      let x2 = (x2 + x6) land mask32 in
      let x14 = rotl (x14 lxor x2) 8 in
      let x10 = (x10 + x14) land mask32 in
      let x6 = rotl (x6 lxor x10) 7 in
      let x3 = (x3 + x7) land mask32 in
      let x15 = rotl (x15 lxor x3) 16 in
      let x11 = (x11 + x15) land mask32 in
      let x7 = rotl (x7 lxor x11) 12 in
      let x3 = (x3 + x7) land mask32 in
      let x15 = rotl (x15 lxor x3) 8 in
      let x11 = (x11 + x15) land mask32 in
      let x7 = rotl (x7 lxor x11) 7 in
      (* Diagonal quarter-rounds: (0,5,10,15) (1,6,11,12) (2,7,8,13) (3,4,9,14). *)
      let x0 = (x0 + x5) land mask32 in
      let x15 = rotl (x15 lxor x0) 16 in
      let x10 = (x10 + x15) land mask32 in
      let x5 = rotl (x5 lxor x10) 12 in
      let x0 = (x0 + x5) land mask32 in
      let x15 = rotl (x15 lxor x0) 8 in
      let x10 = (x10 + x15) land mask32 in
      let x5 = rotl (x5 lxor x10) 7 in
      let x1 = (x1 + x6) land mask32 in
      let x12 = rotl (x12 lxor x1) 16 in
      let x11 = (x11 + x12) land mask32 in
      let x6 = rotl (x6 lxor x11) 12 in
      let x1 = (x1 + x6) land mask32 in
      let x12 = rotl (x12 lxor x1) 8 in
      let x11 = (x11 + x12) land mask32 in
      let x6 = rotl (x6 lxor x11) 7 in
      let x2 = (x2 + x7) land mask32 in
      let x13 = rotl (x13 lxor x2) 16 in
      let x8 = (x8 + x13) land mask32 in
      let x7 = rotl (x7 lxor x8) 12 in
      let x2 = (x2 + x7) land mask32 in
      let x13 = rotl (x13 lxor x2) 8 in
      let x8 = (x8 + x13) land mask32 in
      let x7 = rotl (x7 lxor x8) 7 in
      let x3 = (x3 + x4) land mask32 in
      let x14 = rotl (x14 lxor x3) 16 in
      let x9 = (x9 + x14) land mask32 in
      let x4 = rotl (x4 lxor x9) 12 in
      let x3 = (x3 + x4) land mask32 in
      let x14 = rotl (x14 lxor x3) 8 in
      let x9 = (x9 + x14) land mask32 in
      let x4 = rotl (x4 lxor x9) 7 in
      go (n - 1) x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15
    end
  in
  go 10 s.(0) s.(1) s.(2) s.(3) s.(4) s.(5) s.(6) s.(7) s.(8) s.(9) s.(10)
    s.(11) counter s.(13) s.(14) s.(15);
  t.cached <- counter

let[@inline] seek t counter = if t.cached <> counter then refill t counter

(* Payload keystream: RFC 8439 reserves block 0 for the Poly1305 one-time
   key, so payload byte [p] draws from block [1 + p/64]. *)

let byte_at t pos =
  seek t (1 + (pos lsr 6));
  Char.code (Bytes.unsafe_get t.block (pos land 63))

let word64_at t pos =
  let off = pos land 63 in
  if off <= 56 then begin
    seek t (1 + (pos lsr 6));
    Bytes.get_int64_le t.block off
  end
  else begin
    (* The word straddles two keystream blocks; assemble bytewise. The
       seeks are sequential, so this costs at most one extra refill. *)
    let w = ref 0L in
    for j = 7 downto 0 do
      w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int (byte_at t (pos + j)))
    done;
    !w
  end

(* Block-grain XOR for the fused ILP flush: [pos] must be 64-aligned, so
   the whole span maps onto one cached keystream block — eight 64-bit
   loads from the cache, no per-word seek branch. *)
let xor_block64 t ~pos bytes ~off =
  seek t (1 + (pos lsr 6));
  let kb = t.block in
  for k = 0 to 7 do
    let o = off + (8 * k) in
    Bytes.set_int64_le bytes o
      (Int64.logxor (Bytes.get_int64_le bytes o) (Bytes.get_int64_le kb (8 * k)))
  done

let poly_key t =
  seek t 0;
  let b = t.block in
  ( Bytes.get_int64_le b 0,
    Bytes.get_int64_le b 8,
    Bytes.get_int64_le b 16,
    Bytes.get_int64_le b 24 )

let transform_at t ~pos buf =
  let bytes, boff, n = Bytebuf.backing buf in
  let i = ref 0 in
  while !i + 8 <= n do
    let w = Bytes.get_int64_le bytes (boff + !i) in
    Bytes.set_int64_le bytes (boff + !i) (Int64.logxor w (word64_at t (pos + !i)));
    i := !i + 8
  done;
  while !i < n do
    let b = Char.code (Bytes.unsafe_get bytes (boff + !i)) in
    Bytes.unsafe_set bytes (boff + !i) (Char.unsafe_chr (b lxor byte_at t (pos + !i)));
    incr i
  done

let derive key ~n0 ~n1 ~n2 =
  let t = create ~key ~n0 ~n1 ~n2 in
  seek t 0;
  Array.init 8 (fun i ->
      let b j = Char.code (Bytes.get t.block ((4 * i) + j)) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
