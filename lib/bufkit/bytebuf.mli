(** Byte-buffer slices.

    A {!t} is a view onto a region of a [Bytes.t]: the triple
    (backing store, offset, length). Sub-slices alias the same storage, so
    protocol layers can carve headers and payloads out of a single receive
    buffer without copying — the fine-grained buffer control that
    Integrated Layer Processing needs.

    All indexed operations are expressed relative to the slice, and are
    bounds-checked against the slice (not the backing store) unless the
    function name says [unsafe]. *)

type t

exception Bounds of string
(** Raised by checked operations when an index or range falls outside the
    slice. The payload describes the offending access. *)

(** {1 Construction} *)

val create : int -> t
(** [create len] is a fresh zero-filled slice of [len] bytes backed by new
    storage. Raises [Invalid_argument] if [len < 0]. *)

val of_bytes : Bytes.t -> t
(** [of_bytes b] views all of [b]. The slice aliases [b]: writes through
    either are visible to both. *)

val of_string : string -> t
(** [of_string s] is a fresh slice holding a copy of [s]. *)

val init : int -> (int -> char) -> t
(** [init len f] is a fresh slice whose [i]th byte is [f i]. *)

val empty : t
(** A distinguished zero-length slice. *)

val created_total : unit -> int
(** Number of fresh-storage slices allocated so far ({!create}, {!init} and
    the functions built on them, e.g. {!copy}, {!concat}) across the whole
    process. Views ({!sub}, {!shift}, {!take}) do not count. Monotonic and
    domain-safe; used to demonstrate zero-allocation steady state on pooled
    receive paths ([delta = 0] across a warm window). *)

(** {1 Views} *)

val length : t -> int

val sub : t -> pos:int -> len:int -> t
(** [sub t ~pos ~len] is the sub-slice of [t] starting at [pos]. It aliases
    [t]'s storage. Raises {!Bounds} if the range is not within [t]. *)

val shift : t -> int -> t
(** [shift t n] is [sub t ~pos:n ~len:(length t - n)]. *)

val take : t -> int -> t
(** [take t n] is [sub t ~pos:0 ~len:n]. *)

val split : t -> int -> t * t
(** [split t n] is [(take t n, shift t n)]. *)

(** {1 Access} *)

val get : t -> int -> char
val set : t -> int -> char -> unit

val get_uint8 : t -> int -> int
val set_uint8 : t -> int -> int -> unit

val unsafe_get : t -> int -> char
val unsafe_set : t -> int -> char -> unit

val backing : t -> Bytes.t * int * int
(** [backing t] is [(bytes, off, len)]: the raw components of the view.
    Intended for fused inner loops (see [Alf_core.Kernels]) that need direct
    [Bytes] access after a single up-front bounds check. *)

(** {1 Bulk operations} *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
val blit_from_string : string -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
val fill : t -> char -> unit

val copy : t -> t
(** [copy t] is a fresh slice with fresh storage holding [t]'s contents. *)

val concat : t list -> t
(** [concat ts] is a fresh slice holding the contents of [ts] in order. *)

val to_string : t -> string
val to_bytes : t -> Bytes.t

(** {1 Comparison and display} *)

val equal : t -> t -> bool
(** Content equality (byte-for-byte, ignoring how the views are backed). *)

val compare : t -> t -> int
(** Lexicographic content order. *)

val pp : Format.formatter -> t -> unit
(** Short debug form: length plus a prefix of the content in hex. *)
