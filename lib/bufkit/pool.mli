(** Fixed-size buffer pools.

    End systems that run manipulation loops at line rate cannot afford an
    allocation per packet; a pool recycles same-sized buffers through a
    free list and keeps occupancy statistics so benchmarks can report
    allocation behaviour alongside throughput.

    Domain-safe: acquire/release/stats serialize on an internal mutex, so
    worker domains can share one pool without two of them being handed
    the same buffer. The buffers themselves are not synchronized — a
    buffer belongs to whichever domain acquired it until released. *)

type t

type stats = {
  buf_size : int;  (** Size of every buffer handed out. *)
  allocated : int;  (** Fresh buffers ever created. *)
  reused : int;  (** Acquisitions served from the free list. *)
  outstanding : int;  (** Currently acquired and not yet released. *)
  high_water : int;  (** Maximum simultaneous outstanding buffers. *)
  exhausted : int;  (** Acquisitions refused by the [max_outstanding] cap. *)
}

exception Exhausted
(** Raised by {!acquire} when the pool is capped and every buffer is out.
    Chaos soaks use a small cap to model memory pressure; well-behaved
    stages either handle this or use {!try_acquire}. *)

val create : ?capacity:int -> ?max_outstanding:int -> buf_size:int -> unit -> t
(** [create ~buf_size ()] is a pool of [buf_size]-byte buffers. At most
    [capacity] (default 64) released buffers are retained; beyond that,
    releases drop the buffer for the GC. [max_outstanding] (default
    unlimited) caps simultaneously-acquired buffers: at the cap,
    {!acquire} raises {!Exhausted} and {!try_acquire} returns [None].
    Raises [Invalid_argument] if [buf_size <= 0], [capacity < 0], or
    [max_outstanding <= 0]. *)

val acquire : t -> Bytebuf.t
(** A zeroed buffer of [buf_size] bytes, recycled when possible. Raises
    {!Exhausted} if a [max_outstanding] cap is set and reached. *)

val try_acquire : t -> Bytebuf.t option
(** Like {!acquire} but [None] instead of raising at the cap. *)

val release : t -> Bytebuf.t -> unit
(** Return a buffer to the pool. Raises [Invalid_argument] if the buffer
    is not [buf_size] bytes long (it cannot have come from this pool), if
    the buffer is already sitting in the free list (double release — the
    alias would corrupt data for two later acquirers), or if there are no
    outstanding buffers at all. [stats.outstanding] therefore never goes
    negative. The check is best-effort: a double release of a buffer the
    pool dropped at capacity, or a release of a foreign same-sized buffer
    while others are outstanding, cannot be told apart from legal use. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
