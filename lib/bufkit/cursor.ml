type reader = { rbuf : Bytebuf.t; mutable rpos : int; demand : int -> unit }
type writer = { wbuf : Bytebuf.t; mutable wpos : int }

exception Underflow of string
exception Overflow of string

let underflow fmt = Format.kasprintf (fun s -> raise (Underflow s)) fmt
let overflow fmt = Format.kasprintf (fun s -> raise (Overflow s)) fmt

(* Readers *)

(* Shared sentinel: the common no-demand case is detected by physical
   inequality in [need], so plain readers pay one pointer compare. *)
let nop (_ : int) = ()
let reader rbuf = { rbuf; rpos = 0; demand = nop }
let demand_reader rbuf demand = { rbuf; rpos = 0; demand }
let remaining r = Bytebuf.length r.rbuf - r.rpos
let pos r = r.rpos

let need r n what =
  if r.demand != nop then r.demand (r.rpos + n);
  if n < 0 || remaining r < n then
    underflow "%s: need %d bytes, %d remain" what n (remaining r)

let skip r n =
  need r n "Cursor.skip";
  r.rpos <- r.rpos + n

let u8 r =
  need r 1 "Cursor.u8";
  let v = Bytebuf.get_uint8 r.rbuf r.rpos in
  r.rpos <- r.rpos + 1;
  v

let u16be r =
  let hi = u8 r in
  let lo = u8 r in
  (hi lsl 8) lor lo

let u16le r =
  let lo = u8 r in
  let hi = u8 r in
  (hi lsl 8) lor lo

let u32be r =
  let a = u16be r in
  let b = u16be r in
  Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)

let u32le r =
  let b = u16le r in
  let a = u16le r in
  Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)

let u64be r =
  let hi = u32be r in
  let lo = u32be r in
  Int64.logor
    (Int64.shift_left (Int64.of_int32 hi) 32)
    (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)

let int32_as_int r = Int32.to_int (u32be r)

let bytes r n =
  need r n "Cursor.bytes";
  let b = Bytebuf.sub r.rbuf ~pos:r.rpos ~len:n in
  r.rpos <- r.rpos + n;
  b

let string r n = Bytebuf.to_string (bytes r n)
let rest r = bytes r (remaining r)

(* Writers *)

let writer wbuf = { wbuf; wpos = 0 }
let writer_pos w = w.wpos
let writer_remaining w = Bytebuf.length w.wbuf - w.wpos

let room w n what =
  if n < 0 || writer_remaining w < n then
    overflow "%s: need %d bytes of room, %d remain" what n (writer_remaining w)

let put_u8 w v =
  room w 1 "Cursor.put_u8";
  Bytebuf.set_uint8 w.wbuf w.wpos (v land 0xff);
  w.wpos <- w.wpos + 1

let put_u16be w v =
  put_u8 w (v lsr 8);
  put_u8 w v

let put_u16le w v =
  put_u8 w v;
  put_u8 w (v lsr 8)

let put_u32be w v =
  let v = Int32.to_int v in
  put_u16be w ((v lsr 16) land 0xffff);
  put_u16be w (v land 0xffff)

let put_u32le w v =
  let v = Int32.to_int v in
  put_u16le w (v land 0xffff);
  put_u16le w ((v lsr 16) land 0xffff)

let put_u64be w v =
  put_u32be w (Int64.to_int32 (Int64.shift_right_logical v 32));
  put_u32be w (Int64.to_int32 v)

let put_int_as_u32be w v = put_u32be w (Int32.of_int v)

let put_bytes w b =
  let n = Bytebuf.length b in
  room w n "Cursor.put_bytes";
  Bytebuf.blit ~src:b ~src_pos:0 ~dst:w.wbuf ~dst_pos:w.wpos ~len:n;
  w.wpos <- w.wpos + n

let put_string w s =
  let n = String.length s in
  room w n "Cursor.put_string";
  Bytebuf.blit_from_string s ~src_pos:0 ~dst:w.wbuf ~dst_pos:w.wpos ~len:n;
  w.wpos <- w.wpos + n

let written w = Bytebuf.take w.wbuf w.wpos
