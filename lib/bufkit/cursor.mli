(** Sequential readers and writers over {!Bytebuf} slices.

    Protocol encoders and decoders consume a buffer front-to-back; a cursor
    tracks the position and provides endian-aware fixed-width accessors.
    Reads and writes advance the position and raise {!Underflow} /
    {!Overflow} when the slice is exhausted, so codecs never need their own
    bounds arithmetic. *)

type reader
type writer

exception Underflow of string
(** Raised when a read would pass the end of the slice. *)

exception Overflow of string
(** Raised when a write would pass the end of the slice. *)

(** {1 Readers} *)

val reader : Bytebuf.t -> reader

val demand_reader : Bytebuf.t -> (int -> unit) -> reader
(** [demand_reader buf f] reads like {!reader}, but calls [f upto] before
    each access, where [upto] is the position just past the bytes about to
    be read. A streaming producer uses this to materialise bytes lazily —
    e.g. the fused receive path decrypts/verifies the prefix of an ADU
    just ahead of the decoder. [f] may over-deliver (process past [upto])
    but must ensure bytes [0..upto) are final when it returns. Plain
    readers pay a single physical-equality check for this hook. *)

val remaining : reader -> int
val pos : reader -> int
val skip : reader -> int -> unit

val u8 : reader -> int
val u16be : reader -> int
val u16le : reader -> int
val u32be : reader -> int32
val u32le : reader -> int32
val u64be : reader -> int64

val int32_as_int : reader -> int
(** [int32_as_int r] reads a big-endian 32-bit value and widens it to an
    OCaml [int] (exact on 64-bit platforms, sign-extended). *)

val bytes : reader -> int -> Bytebuf.t
(** [bytes r n] is a zero-copy sub-slice of the next [n] bytes. *)

val string : reader -> int -> string
val rest : reader -> Bytebuf.t

(** {1 Writers} *)

val writer : Bytebuf.t -> writer
val writer_pos : writer -> int
val writer_remaining : writer -> int

val put_u8 : writer -> int -> unit
val put_u16be : writer -> int -> unit
val put_u16le : writer -> int -> unit
val put_u32be : writer -> int32 -> unit
val put_u32le : writer -> int32 -> unit
val put_u64be : writer -> int64 -> unit

val put_int_as_u32be : writer -> int -> unit
(** Writes the low 32 bits of an OCaml [int], big-endian. *)

val put_bytes : writer -> Bytebuf.t -> unit
val put_string : writer -> string -> unit

val written : writer -> Bytebuf.t
(** The prefix of the underlying slice written so far. *)
