type stats = {
  buf_size : int;
  allocated : int;
  reused : int;
  outstanding : int;
  high_water : int;
  exhausted : int;
}

exception Exhausted

type t = {
  (* All free-list and accounting state moves under [lock]. Without it,
     two domains racing [acquire] can pop the same head cell and leave
     with ONE aliased buffer — silent cross-domain data corruption, a
     strictly worse outcome than the double-release bug the guards below
     were added for. *)
  lock : Mutex.t;
  buf_size : int;
  capacity : int;
  max_outstanding : int option;
  mutable free : Bytebuf.t list;
  mutable free_count : int;
  mutable allocated : int;
  mutable reused : int;
  mutable outstanding : int;
  mutable high_water : int;
  mutable exhausted : int;
}

let create ?(capacity = 64) ?max_outstanding ~buf_size () =
  if buf_size <= 0 then invalid_arg "Pool.create: buf_size must be positive";
  if capacity < 0 then invalid_arg "Pool.create: negative capacity";
  (match max_outstanding with
  | Some m when m <= 0 ->
      invalid_arg "Pool.create: max_outstanding must be positive"
  | _ -> ());
  {
    lock = Mutex.create ();
    buf_size;
    capacity;
    max_outstanding;
    free = [];
    free_count = 0;
    allocated = 0;
    reused = 0;
    outstanding = 0;
    high_water = 0;
    exhausted = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let acquire_locked t =
  let buf =
    match t.free with
    | b :: rest ->
        t.free <- rest;
        t.free_count <- t.free_count - 1;
        t.reused <- t.reused + 1;
        Bytebuf.fill b '\000';
        b
    | [] ->
        t.allocated <- t.allocated + 1;
        Bytebuf.create t.buf_size
  in
  t.outstanding <- t.outstanding + 1;
  if t.outstanding > t.high_water then t.high_water <- t.outstanding;
  buf

let at_cap t =
  match t.max_outstanding with
  | Some m when t.outstanding >= m ->
      t.exhausted <- t.exhausted + 1;
      true
  | _ -> false

let acquire t =
  locked t (fun () ->
      if at_cap t then raise Exhausted;
      acquire_locked t)

let try_acquire t =
  locked t (fun () -> if at_cap t then None else Some (acquire_locked t))

let release t buf =
  if Bytebuf.length buf <> t.buf_size then
    invalid_arg "Pool.release: buffer size does not match pool";
  locked t (fun () ->
      (* A double release would push the same buffer onto the free list
         twice; two later acquires would then hand out one aliased buffer —
         silent data corruption. Detect both symptoms: the buffer already
         sitting in the free list, and more releases than acquires. *)
      if List.exists (fun b -> b == buf) t.free then
        invalid_arg "Pool.release: buffer already released";
      if t.outstanding = 0 then
        invalid_arg "Pool.release: more releases than acquires";
      t.outstanding <- t.outstanding - 1;
      if t.free_count < t.capacity then begin
        t.free <- buf :: t.free;
        t.free_count <- t.free_count + 1
      end)

let stats t =
  locked t (fun () ->
      {
        buf_size = t.buf_size;
        allocated = t.allocated;
        reused = t.reused;
        outstanding = t.outstanding;
        high_water = t.high_water;
        exhausted = t.exhausted;
      })

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "pool(size=%d allocated=%d reused=%d outstanding=%d high_water=%d exhausted=%d)"
    s.buf_size s.allocated s.reused s.outstanding s.high_water s.exhausted
