type t = { data : Bytes.t; off : int; len : int }

exception Bounds of string

let bounds_error fmt = Format.kasprintf (fun s -> raise (Bounds s)) fmt

let check_range t pos len what =
  if pos < 0 || len < 0 || pos + len > t.len then
    bounds_error "%s: pos=%d len=%d outside slice of length %d" what pos len
      t.len

(* Fresh-storage allocations, for zero-alloc accounting on pooled hot
   paths. Counts [create] only: [sub]/[shift]/[take] views share backing
   storage and are not allocations in this sense. *)
let created = Atomic.make 0

let created_total () = Atomic.get created

let create len =
  if len < 0 then invalid_arg "Bytebuf.create: negative length";
  Atomic.incr created;
  { data = Bytes.make len '\000'; off = 0; len }

let of_bytes b = { data = b; off = 0; len = Bytes.length b }
let of_string s = of_bytes (Bytes.of_string s)

let init len f =
  Atomic.incr created;
  of_bytes (Bytes.init len f)
let empty = { data = Bytes.empty; off = 0; len = 0 }
let length t = t.len

let sub t ~pos ~len =
  check_range t pos len "Bytebuf.sub";
  { data = t.data; off = t.off + pos; len }

let shift t n = sub t ~pos:n ~len:(t.len - n)
let take t n = sub t ~pos:0 ~len:n
let split t n = (take t n, shift t n)

let get t i =
  if i < 0 || i >= t.len then
    bounds_error "Bytebuf.get: index %d in slice of length %d" i t.len;
  Bytes.unsafe_get t.data (t.off + i)

let set t i c =
  if i < 0 || i >= t.len then
    bounds_error "Bytebuf.set: index %d in slice of length %d" i t.len;
  Bytes.unsafe_set t.data (t.off + i) c

let get_uint8 t i = Char.code (get t i)

let set_uint8 t i v =
  if v < 0 || v > 0xff then invalid_arg "Bytebuf.set_uint8: not a byte";
  set t i (Char.unsafe_chr v)

let unsafe_get t i = Bytes.unsafe_get t.data (t.off + i)
let unsafe_set t i c = Bytes.unsafe_set t.data (t.off + i) c
let backing t = (t.data, t.off, t.len)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range src src_pos len "Bytebuf.blit (src)";
  check_range dst dst_pos len "Bytebuf.blit (dst)";
  Bytes.blit src.data (src.off + src_pos) dst.data (dst.off + dst_pos) len

let blit_from_string s ~src_pos ~dst ~dst_pos ~len =
  if src_pos < 0 || len < 0 || src_pos + len > String.length s then
    bounds_error "Bytebuf.blit_from_string: pos=%d len=%d in string of %d"
      src_pos len (String.length s);
  check_range dst dst_pos len "Bytebuf.blit_from_string (dst)";
  Bytes.blit_string s src_pos dst.data (dst.off + dst_pos) len

let fill t c = Bytes.fill t.data t.off t.len c

let copy t =
  let dst = create t.len in
  blit ~src:t ~src_pos:0 ~dst ~dst_pos:0 ~len:t.len;
  dst

let concat ts =
  let total = List.fold_left (fun acc t -> acc + t.len) 0 ts in
  let dst = create total in
  let pos = ref 0 in
  let blit_one t =
    blit ~src:t ~src_pos:0 ~dst ~dst_pos:!pos ~len:t.len;
    pos := !pos + t.len
  in
  List.iter blit_one ts;
  dst

let to_string t = Bytes.sub_string t.data t.off t.len
let to_bytes t = Bytes.sub t.data t.off t.len

let equal a b =
  a.len = b.len
  &&
  let rec go i =
    i >= a.len || (unsafe_get a i = unsafe_get b i && go (i + 1))
  in
  go 0

let compare a b = String.compare (to_string a) (to_string b)

let pp ppf t =
  let shown = min t.len 16 in
  Format.fprintf ppf "<%d bytes:" t.len;
  for i = 0 to shown - 1 do
    Format.fprintf ppf " %02x" (get_uint8 t i)
  done;
  if t.len > shown then Format.fprintf ppf " ...";
  Format.fprintf ppf ">"
