open Bufkit

(* Built eagerly: [lazy] is not safe to force from two domains at once
   (the second forcer can observe [CamlinternalLazy.Undefined]), and CRC32
   runs on stage-2 worker domains. 256 table entries cost nothing at
   start-up. *)
let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

type state = int

let init = 0xFFFFFFFF

let feed_byte st b =
  let t = table in
  t.((st lxor (b land 0xff)) land 0xff) lxor (st lsr 8)

let feed_sub st buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytebuf.length buf then
    raise
      (Bytebuf.Bounds
         (Printf.sprintf "Crc32.feed_sub: pos=%d len=%d in slice of %d" pos
            len (Bytebuf.length buf)));
  let t = table in
  let st = ref st in
  for i = pos to pos + len - 1 do
    let b = Char.code (Bytebuf.unsafe_get buf i) in
    st := t.((!st lxor b) land 0xff) lxor (!st lsr 8)
  done;
  !st

let feed st buf = feed_sub st buf ~pos:0 ~len:(Bytebuf.length buf)
let finish st = Int32.of_int ((st lxor 0xFFFFFFFF) land 0xFFFFFFFF)
let digest buf = finish (feed init buf)
let digest_string s = digest (Bytebuf.of_string s)

(* CRC concatenation without re-reading either input, via the standard
   GF(2) matrix trick (same construction as zlib's crc32_combine): the
   effect on the CRC register of appending one zero {e bit} is a linear
   map over GF(2); squaring it repeatedly gives the map for 2^k zero
   bytes, and applying the maps selected by the bits of [len2] shifts
   [crc1] past [len2] bytes of zeros, after which the CRC of the
   concatenation is that result xor [crc2]. This is what lets a fused
   send path compute the payload CRC once, in the marshalling loop, and
   still produce header-spanning digests without touching the payload
   again. *)

let gf2_times mat vec =
  let sum = ref 0 in
  let v = ref vec in
  let i = ref 0 in
  while !v <> 0 do
    if !v land 1 = 1 then sum := !sum lxor mat.(!i);
    v := !v lsr 1;
    incr i
  done;
  !sum

let gf2_square dst mat =
  for n = 0 to 31 do
    dst.(n) <- gf2_times mat mat.(n)
  done

let combine crc1 crc2 len2 =
  if len2 <= 0 then crc1
  else begin
    let odd = Array.make 32 0 and even = Array.make 32 0 in
    (* Operator for one zero bit (reflected polynomial). *)
    odd.(0) <- 0xEDB88320;
    let row = ref 1 in
    for n = 1 to 31 do
      odd.(n) <- !row;
      row := !row lsl 1
    done;
    gf2_square even odd;
    (* even = 2 zero bits *)
    gf2_square odd even;
    (* odd = 4 zero bits *)
    let crc = ref (Int32.to_int crc1 land 0xFFFFFFFF) in
    let len = ref len2 in
    let continue = ref true in
    while !continue do
      gf2_square even odd;
      if !len land 1 = 1 then crc := gf2_times even !crc;
      len := !len lsr 1;
      if !len = 0 then continue := false
      else begin
        gf2_square odd even;
        if !len land 1 = 1 then crc := gf2_times odd !crc;
        len := !len lsr 1;
        if !len = 0 then continue := false
      end
    done;
    Int32.of_int ((!crc lxor (Int32.to_int crc2 land 0xFFFFFFFF)) land 0xFFFFFFFF)
  end
