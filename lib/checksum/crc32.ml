open Bufkit

(* Built eagerly: [lazy] is not safe to force from two domains at once
   (the second forcer can observe [CamlinternalLazy.Undefined]), and CRC32
   runs on stage-2 worker domains. 256 table entries cost nothing at
   start-up. *)
let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

(* Slicing-by-8 (Intel's extension of Sarwate's algorithm): seven more
   tables where [tk.(b)] is the register effect of byte [b] followed by
   [k] zero bytes, so one 64-bit load advances the CRC with eight
   independent lookups instead of eight chained byte steps. This is what
   lets the fused ILP word loop keep a CRC stage at word speed. *)
let table1, table2, table3, table4, table5, table6, table7 =
  let next t8 prev =
    let t = Array.make 256 0 in
    for n = 0 to 255 do
      t.(n) <- t8.(prev.(n) land 0xff) lxor (prev.(n) lsr 8)
    done;
    t
  in
  let t1 = next table table in
  let t2 = next table t1 in
  let t3 = next table t2 in
  let t4 = next table t3 in
  let t5 = next table t4 in
  let t6 = next table t5 in
  let t7 = next table t6 in
  (t1, t2, t3, t4, t5, t6, t7)

type state = int

let init = 0xFFFFFFFF

let feed_byte st b =
  let t = table in
  t.((st lxor (b land 0xff)) land 0xff) lxor (st lsr 8)

let[@inline] feed_word64le st w =
  (* XOR the register into the low 32 bits of the word, then slice: byte
     k of the result is followed by 7-k more bytes of this word. *)
  let lo = Int64.to_int (Int64.logand w 0xFFFFFFFFL) lxor st in
  let hi = Int64.to_int (Int64.shift_right_logical w 32) land 0xFFFFFFFF in
  Array.unsafe_get table7 (lo land 0xff)
  lxor Array.unsafe_get table6 ((lo lsr 8) land 0xff)
  lxor Array.unsafe_get table5 ((lo lsr 16) land 0xff)
  lxor Array.unsafe_get table4 ((lo lsr 24) land 0xff)
  lxor Array.unsafe_get table3 (hi land 0xff)
  lxor Array.unsafe_get table2 ((hi lsr 8) land 0xff)
  lxor Array.unsafe_get table1 ((hi lsr 16) land 0xff)
  lxor Array.unsafe_get table ((hi lsr 24) land 0xff)

(* Block-grain feed for the fused ILP flush: eight sliced word steps in
   one call, so the caller pays one cross-module dispatch per 64 bytes
   instead of one per word. *)
let feed_block64 st bytes off =
  let st = feed_word64le st (Bytes.get_int64_le bytes off) in
  let st = feed_word64le st (Bytes.get_int64_le bytes (off + 8)) in
  let st = feed_word64le st (Bytes.get_int64_le bytes (off + 16)) in
  let st = feed_word64le st (Bytes.get_int64_le bytes (off + 24)) in
  let st = feed_word64le st (Bytes.get_int64_le bytes (off + 32)) in
  let st = feed_word64le st (Bytes.get_int64_le bytes (off + 40)) in
  let st = feed_word64le st (Bytes.get_int64_le bytes (off + 48)) in
  feed_word64le st (Bytes.get_int64_le bytes (off + 56))

let feed_sub st buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytebuf.length buf then
    raise
      (Bytebuf.Bounds
         (Printf.sprintf "Crc32.feed_sub: pos=%d len=%d in slice of %d" pos
            len (Bytebuf.length buf)));
  let t = table in
  let bytes, base, _ = Bytebuf.backing buf in
  let st = ref st in
  let i = ref pos in
  let word_end = pos + (len land lnot 7) in
  while !i < word_end do
    st := feed_word64le !st (Bytes.get_int64_le bytes (base + !i));
    i := !i + 8
  done;
  while !i < pos + len do
    let b = Char.code (Bytes.unsafe_get bytes (base + !i)) in
    st := t.((!st lxor b) land 0xff) lxor (!st lsr 8);
    incr i
  done;
  !st

let feed st buf = feed_sub st buf ~pos:0 ~len:(Bytebuf.length buf)
let finish st = Int32.of_int ((st lxor 0xFFFFFFFF) land 0xFFFFFFFF)
let digest buf = finish (feed init buf)
let digest_string s = digest (Bytebuf.of_string s)

(* CRC concatenation without re-reading either input, via the standard
   GF(2) matrix trick (same construction as zlib's crc32_combine): the
   effect on the CRC register of appending one zero {e bit} is a linear
   map over GF(2); squaring it repeatedly gives the map for 2^k zero
   bytes, and applying the maps selected by the bits of [len2] shifts
   [crc1] past [len2] bytes of zeros, after which the CRC of the
   concatenation is that result xor [crc2]. This is what lets a fused
   send path compute the payload CRC once, in the marshalling loop, and
   still produce header-spanning digests without touching the payload
   again. *)

let gf2_times mat vec =
  let sum = ref 0 in
  let v = ref vec in
  let i = ref 0 in
  while !v <> 0 do
    if !v land 1 = 1 then sum := !sum lxor mat.(!i);
    v := !v lsr 1;
    incr i
  done;
  !sum

let gf2_square dst mat =
  for n = 0 to 31 do
    dst.(n) <- gf2_times mat mat.(n)
  done

let combine crc1 crc2 len2 =
  (* Appending zero bytes is the identity map on the register, but the
     second digest must still be folded in: [crc2] of the empty string is
     0, so for a genuinely empty suffix this is [crc1] — and for a
     non-empty digest spliced at a zero-length offset (empty-payload ADU
     seals), dropping [crc2] would silently corrupt the composition. *)
  if len2 <= 0 then Int32.logxor crc1 crc2
  else begin
    let odd = Array.make 32 0 and even = Array.make 32 0 in
    (* Operator for one zero bit (reflected polynomial). *)
    odd.(0) <- 0xEDB88320;
    let row = ref 1 in
    for n = 1 to 31 do
      odd.(n) <- !row;
      row := !row lsl 1
    done;
    gf2_square even odd;
    (* even = 2 zero bits *)
    gf2_square odd even;
    (* odd = 4 zero bits *)
    let crc = ref (Int32.to_int crc1 land 0xFFFFFFFF) in
    let len = ref len2 in
    let continue = ref true in
    while !continue do
      gf2_square even odd;
      if !len land 1 = 1 then crc := gf2_times even !crc;
      len := !len lsr 1;
      if !len = 0 then continue := false
      else begin
        gf2_square odd even;
        if !len land 1 = 1 then crc := gf2_times odd !crc;
        len := !len lsr 1;
        if !len = 0 then continue := false
      end
    done;
    Int32.of_int ((!crc lxor (Int32.to_int crc2 land 0xFFFFFFFF)) land 0xFFFFFFFF)
  end
