open Bufkit

(* Built eagerly: [lazy] is not safe to force from two domains at once
   (the second forcer can observe [CamlinternalLazy.Undefined]), and CRC32
   runs on stage-2 worker domains. 256 table entries cost nothing at
   start-up. *)
let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

type state = int

let init = 0xFFFFFFFF

let feed_byte st b =
  let t = table in
  t.((st lxor (b land 0xff)) land 0xff) lxor (st lsr 8)

let feed_sub st buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytebuf.length buf then
    raise
      (Bytebuf.Bounds
         (Printf.sprintf "Crc32.feed_sub: pos=%d len=%d in slice of %d" pos
            len (Bytebuf.length buf)));
  let t = table in
  let st = ref st in
  for i = pos to pos + len - 1 do
    let b = Char.code (Bytebuf.unsafe_get buf i) in
    st := t.((!st lxor b) land 0xff) lxor (!st lsr 8)
  done;
  !st

let feed st buf = feed_sub st buf ~pos:0 ~len:(Bytebuf.length buf)
let finish st = Int32.of_int ((st lxor 0xFFFFFFFF) land 0xFFFFFFFF)
let digest buf = finish (feed init buf)
let digest_string s = digest (Bytebuf.of_string s)
