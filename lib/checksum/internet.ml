open Bufkit

(* State: [sum] accumulates 16-bit big-endian words; [odd] is true when an
   odd number of bytes has been absorbed, i.e. the last byte fed was the
   high half of a word whose low half is still to come. OCaml's 63-bit
   ints give ample headroom, but we fold carries opportunistically so the
   state stays small. *)
type state = { sum : int; odd : bool }

let init = { sum = 0; odd = false }

let fold16 sum =
  let rec go s = if s > 0xffff then go ((s land 0xffff) + (s lsr 16)) else s in
  go sum

let maybe_fold sum = if sum > 0x3FFFFFFF then fold16 sum else sum

let feed_byte st b =
  let b = b land 0xff in
  if st.odd then { sum = maybe_fold (st.sum + b); odd = false }
  else { sum = maybe_fold (st.sum + (b lsl 8)); odd = true }

(* Eight bytes at once, packed little-endian in [w] (octet 0 = first data
   byte). On an even byte boundary the four 16-bit LE lanes of [w] are the
   byte-swaps of the four big-endian data words, and one's-complement
   addition commutes with byte order (RFC 1071 §2.B): summing the lanes and
   swapping the folded result yields the big-endian partial sum. Pure int64
   arithmetic — no host-endianness dependence. *)
let feed_word64le st w =
  if st.odd then begin
    (* Odd parity: absorb octet by octet so word parity is preserved. *)
    let st = ref st in
    for i = 0 to 7 do
      st :=
        feed_byte !st
          (Int64.to_int (Int64.shift_right_logical w (8 * i)) land 0xff)
    done;
    !st
  end
  else
    let lanes =
      Int64.add
        (Int64.add
           (Int64.logand w 0xFFFFL)
           (Int64.logand (Int64.shift_right_logical w 16) 0xFFFFL))
        (Int64.add
           (Int64.logand (Int64.shift_right_logical w 32) 0xFFFFL)
           (Int64.shift_right_logical w 48))
    in
    let le = fold16 (Int64.to_int lanes) in
    let be = ((le land 0xff) lsl 8) lor (le lsr 8) in
    { sum = maybe_fold (st.sum + be); odd = false }

let feed_sub st buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytebuf.length buf then
    raise
      (Bytebuf.Bounds
         (Printf.sprintf "Internet.feed_sub: pos=%d len=%d in slice of %d" pos
            len (Bytebuf.length buf)));
  if len = 0 then st
  else begin
    let i = ref pos in
    let stop = pos + len in
    let sum = ref st.sum in
    let odd = ref st.odd in
    if !odd then begin
      sum := !sum + Char.code (Bytebuf.unsafe_get buf !i);
      odd := false;
      incr i
    end;
    while stop - !i >= 2 do
      let hi = Char.code (Bytebuf.unsafe_get buf !i) in
      let lo = Char.code (Bytebuf.unsafe_get buf (!i + 1)) in
      sum := !sum + ((hi lsl 8) lor lo);
      if !sum > 0x3FFFFFFF then sum := fold16 !sum;
      i := !i + 2
    done;
    if !i < stop then begin
      sum := !sum + (Char.code (Bytebuf.unsafe_get buf !i) lsl 8);
      odd := true
    end;
    { sum = maybe_fold !sum; odd = !odd }
  end

let feed st buf = feed_sub st buf ~pos:0 ~len:(Bytebuf.length buf)
let finish st = lnot (fold16 st.sum) land 0xffff
let digest buf = finish (feed init buf)

let digest_iovec iov =
  let st = ref init in
  Iovec.iter_fragments iov (fun frag -> st := feed !st frag);
  finish !st

let verify buf ~expected = digest buf = expected land 0xffff

let pp ppf st =
  Format.fprintf ppf "internet(sum=%04x odd=%b)" (fold16 st.sum) st.odd
