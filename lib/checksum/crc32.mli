(** CRC-32 (IEEE 802.3 polynomial, reflected).

    The strongest detector in the library; used by the AAL substrate for
    per-ADU integrity (AAL5 carries exactly this CRC) and available as an
    ILP stage. Table-driven, one table lookup per byte. *)

open Bufkit

type state

val init : state
val feed_byte : state -> int -> state

val feed_word64le : state -> int64 -> state
(** Advance over eight bytes at once (little-endian word order) by
    slicing-by-8: one lookup per byte, no chained dependency — the word
    feeder the fused ILP loop and {!feed_sub}'s fast path run on. *)

val feed_block64 : state -> Bytes.t -> int -> state
(** [feed_block64 st bytes off] advances over the 64 bytes at
    [bytes.(off..)] — eight {!feed_word64le} steps in one call, the
    block-grain form the fused ILP flush uses. *)

val feed : state -> Bytebuf.t -> state
val feed_sub : state -> Bytebuf.t -> pos:int -> len:int -> state
val finish : state -> int32
val digest : Bytebuf.t -> int32
val digest_string : string -> int32

val combine : int32 -> int32 -> int -> int32
(** [combine crc1 crc2 len2] is the CRC of the concatenation [a ^ b]
    given [crc1 = digest a], [crc2 = digest b] and [len2 = length b] —
    computed in O(log len2) GF(2) matrix steps, without re-reading either
    input. This lets the fused send path digest the payload once, in the
    marshalling loop, and still seal header-spanning CRC fields. *)
