(** The Internet checksum (RFC 1071).

    The 16-bit one's-complement sum used by IP, TCP and UDP — the paper's
    canonical "touch every byte with a trivial computation" manipulation.
    The incremental interface lets the sum be folded across fragment
    boundaries and, crucially for ILP, lets other loops feed it one byte at
    a time while they do their own work on the same data. *)

open Bufkit

type state

val init : state

val feed_byte : state -> int -> state
(** [feed_byte st b] absorbs one byte (0–255). Byte parity is tracked, so
    feeding a buffer bytewise equals feeding it in one call. *)

val feed_word64le : state -> int64 -> state
(** [feed_word64le st w] absorbs eight data bytes packed little-endian in
    [w] (the byte for the lowest stream position in the low octet — the
    layout produced by [Bytes.get_int64_le], or by [Bytes.get_int64_ne] on
    a little-endian host). Equivalent to eight {!feed_byte} calls; on even
    byte parity it sums the four 16-bit lanes directly and converts the
    folded result with one byte swap (RFC 1071 §2.B), which is what lets a
    fused word-at-a-time loop feed the checksum without unpacking. *)

val feed : state -> Bytebuf.t -> state
(** Absorb a whole slice (word-at-a-time fast path). *)

val feed_sub : state -> Bytebuf.t -> pos:int -> len:int -> state

val finish : state -> int
(** The 16-bit one's-complement checksum (already complemented, as carried
    in packet headers). *)

val digest : Bytebuf.t -> int
(** One-shot [finish (feed init buf)]. *)

val digest_iovec : Iovec.t -> int
(** One-shot over a scatter/gather vector, honouring byte parity across
    fragment boundaries. *)

val verify : Bytebuf.t -> expected:int -> bool

val pp : Format.formatter -> state -> unit
