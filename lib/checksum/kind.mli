(** Uniform dispatch over the checksum algorithms.

    Benchmarks, CLI flags and ILP stage factories select an algorithm at
    run time; this module gives them one name-indexed entry point. Results
    are widened to [int] (all fit in 32 bits). *)

open Bufkit

type t = Internet | Fletcher16 | Fletcher32 | Adler32 | Crc32

val all : t list
val to_string : t -> string

val of_string : string -> t option
(** Case-insensitive; accepts the names printed by {!to_string}. *)

val digest : t -> Bytebuf.t -> int
val digest_iovec : t -> Iovec.t -> int

type feeder
(** An algorithm-erased incremental computation. *)

val feeder : t -> feeder
val feeder_byte : feeder -> int -> feeder

val feeder_word64le : feeder -> int64 -> feeder
(** Absorb eight data bytes packed little-endian in the word (low octet =
    first byte), equivalent to eight {!feeder_byte} calls. Internet gets
    the 64-bit-lane fast path ({!Internet.feed_word64le}); the other
    algorithms unpack, but still without per-byte allocation. *)

val feeder_buf : feeder -> Bytebuf.t -> feeder
val feeder_finish : feeder -> int
val pp : Format.formatter -> t -> unit
