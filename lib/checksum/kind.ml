open Bufkit

type t = Internet | Fletcher16 | Fletcher32 | Adler32 | Crc32

let all = [ Internet; Fletcher16; Fletcher32; Adler32; Crc32 ]

let to_string = function
  | Internet -> "internet"
  | Fletcher16 -> "fletcher16"
  | Fletcher32 -> "fletcher32"
  | Adler32 -> "adler32"
  | Crc32 -> "crc32"

let of_string s =
  match String.lowercase_ascii s with
  | "internet" -> Some Internet
  | "fletcher16" -> Some Fletcher16
  | "fletcher32" -> Some Fletcher32
  | "adler32" -> Some Adler32
  | "crc32" -> Some Crc32
  | _ -> None

let int_of_int32 v = Int32.to_int v land 0xFFFFFFFF

let digest kind buf =
  match kind with
  | Internet -> Internet.digest buf
  | Fletcher16 -> Fletcher.digest16 buf
  | Fletcher32 -> int_of_int32 (Fletcher.digest32 buf)
  | Adler32 -> int_of_int32 (Adler32.digest buf)
  | Crc32 -> int_of_int32 (Crc32.digest buf)

let digest_iovec kind iov =
  match kind with
  | Internet -> Internet.digest_iovec iov
  | Fletcher16 | Fletcher32 | Adler32 | Crc32 ->
      digest kind (Iovec.gather iov)

type feeder =
  | F_internet of Internet.state
  | F_fletcher16 of Fletcher.state16
  | F_fletcher32 of Fletcher.state32
  | F_adler of Adler32.state
  | F_crc of Crc32.state

let feeder = function
  | Internet -> F_internet Internet.init
  | Fletcher16 -> F_fletcher16 Fletcher.init16
  | Fletcher32 -> F_fletcher32 Fletcher.init32
  | Adler32 -> F_adler Adler32.init
  | Crc32 -> F_crc Crc32.init

let feeder_byte f b =
  match f with
  | F_internet st -> F_internet (Internet.feed_byte st b)
  | F_fletcher16 st -> F_fletcher16 (Fletcher.feed16_byte st b)
  | F_fletcher32 st -> F_fletcher32 (Fletcher.feed32_byte st b)
  | F_adler st -> F_adler (Adler32.feed_byte st b)
  | F_crc st -> F_crc (Crc32.feed_byte st b)

let feeder_word64le f w =
  match f with
  | F_internet st -> F_internet (Internet.feed_word64le st w)
  | F_fletcher16 _ | F_fletcher32 _ | F_adler _ | F_crc _ ->
      let f = ref f in
      for i = 0 to 7 do
        f :=
          feeder_byte !f
            (Int64.to_int (Int64.shift_right_logical w (8 * i)) land 0xff)
      done;
      !f

let feeder_buf f buf =
  match f with
  | F_internet st -> F_internet (Internet.feed st buf)
  | F_fletcher16 st -> F_fletcher16 (Fletcher.feed16 st buf)
  | F_fletcher32 st -> F_fletcher32 (Fletcher.feed32 st buf)
  | F_adler st -> F_adler (Adler32.feed st buf)
  | F_crc st -> F_crc (Crc32.feed st buf)

let feeder_finish = function
  | F_internet st -> Internet.finish st
  | F_fletcher16 st -> Fletcher.finish16 st
  | F_fletcher32 st -> int_of_int32 (Fletcher.finish32 st)
  | F_adler st -> int_of_int32 (Adler32.finish st)
  | F_crc st -> int_of_int32 (Crc32.finish st)

let pp ppf t = Format.pp_print_string ppf (to_string t)
