open Bufkit

(* Fletcher-16: two running sums modulo 255, reduced lazily. *)
type state16 = { s1 : int; s2 : int; pending : int }

let reduce16 st =
  { st with s1 = st.s1 mod 255; s2 = st.s2 mod 255 }

let init16 = { s1 = 0; s2 = 0; pending = 0 }

let feed16_byte st b =
  let s1 = st.s1 + (b land 0xff) in
  let s2 = st.s2 + s1 in
  let st = { s1; s2; pending = st.pending + 1 } in
  if st.pending >= 4096 then { (reduce16 st) with pending = 0 } else st

let feed16 st buf =
  let n = Bytebuf.length buf in
  let st = ref st in
  for i = 0 to n - 1 do
    st := feed16_byte !st (Char.code (Bytebuf.unsafe_get buf i))
  done;
  !st

let finish16 st =
  let st = reduce16 st in
  (st.s2 lsl 8) lor st.s1

let digest16 buf = finish16 (feed16 init16 buf)

(* Fletcher-32: sums of 16-bit little-endian blocks modulo 65535. A chunk
   may end mid-block, so [half] holds a pending low byte. *)
type state32 = { a : int; b : int; half : int option; blocks : int }

let init32 = { a = 0; b = 0; half = None; blocks = 0 }

let reduce32 st = { st with a = st.a mod 65535; b = st.b mod 65535 }

let feed_block st w =
  let a = st.a + w in
  let b = st.b + a in
  let st = { st with a; b; blocks = st.blocks + 1 } in
  if st.blocks >= 359 then { (reduce32 st) with blocks = 0 } else st

let feed32_byte st b =
  let b = b land 0xff in
  match st.half with
  | None -> { st with half = Some b }
  | Some lo -> feed_block { st with half = None } (lo lor (b lsl 8))

let feed32 st buf =
  let n = Bytebuf.length buf in
  let st = ref st in
  let i = ref 0 in
  (match !st.half with
  | Some lo when n > 0 ->
      let hi = Char.code (Bytebuf.unsafe_get buf 0) in
      st := feed_block { !st with half = None } (lo lor (hi lsl 8));
      i := 1
  | Some _ | None -> ());
  while n - !i >= 2 do
    let lo = Char.code (Bytebuf.unsafe_get buf !i) in
    let hi = Char.code (Bytebuf.unsafe_get buf (!i + 1)) in
    st := feed_block !st (lo lor (hi lsl 8));
    i := !i + 2
  done;
  if !i < n then
    st := { !st with half = Some (Char.code (Bytebuf.unsafe_get buf !i)) };
  !st

let finish32 st =
  let st = match st.half with None -> st | Some lo -> feed_block { st with half = None } lo in
  let st = reduce32 st in
  Int32.logor (Int32.shift_left (Int32.of_int st.b) 16) (Int32.of_int st.a)

let digest32 buf = finish32 (feed32 init32 buf)
