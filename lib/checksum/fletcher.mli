(** Fletcher checksums.

    Fletcher-16 (byte-oriented, as in the OSI transport class 4 checksum
    family) and Fletcher-32 (16-bit-block oriented). Position-sensitive,
    unlike the Internet checksum, so they detect transpositions — useful in
    tests as an independent witness that fused and layered ILP executions
    saw the bytes in the same order. *)

open Bufkit

(** {1 Fletcher-16} *)

type state16

val init16 : state16
val feed16_byte : state16 -> int -> state16
val feed16 : state16 -> Bytebuf.t -> state16
val finish16 : state16 -> int
(** 16-bit result: [(sum2 lsl 8) lor sum1], each modulo 255. *)

val digest16 : Bytebuf.t -> int

(** {1 Fletcher-32} *)

type state32

val init32 : state32

val feed32_byte : state32 -> int -> state32
(** Absorb one byte, buffering it until its 16-bit block completes.
    Equivalent to feeding a one-byte slice, without the allocation. *)

val feed32 : state32 -> Bytebuf.t -> state32
(** Data is consumed as 16-bit little-endian blocks; a trailing odd byte is
    zero-padded, matching the common implementation. *)

val finish32 : state32 -> int32
val digest32 : Bytebuf.t -> int32
