type t = {
  queue : (unit -> unit) Spmc.t;
  domains : int;
  mutable workers : unit Domain.t array;
  pending : int Atomic.t;  (* tasks of the current batch not yet finished *)
  stop : bool Atomic.t;
  (* Sleep/wake for idle workers between batches. The mutex protects
     nothing but the condition itself: all task state is in the queue and
     the atomics. *)
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  first_error : (exn * Printexc.raw_backtrace) option Atomic.t;
  mutable down : bool;
  (* Chaos hook: called with a monotone task sequence number before each
     task body; a raise is captured exactly like a task failure. Set while
     the pool is quiescent (between [run]s). *)
  mutable fault_injector : (int -> unit) option;
  task_seq : int Atomic.t;
  (* Registry accounting, resolved once — worker loops must not pay a
     registry lookup per task. *)
  c_tasks : Obs.Counter.t;
  c_steals : Obs.Counter.t;
  c_batches : Obs.Counter.t;
}

let size t = t.domains

let finish_task t =
  ignore (Atomic.fetch_and_add t.pending (-1))

let inject t =
  match t.fault_injector with
  | None -> ()
  | Some f -> f (Atomic.fetch_and_add t.task_seq 1)

let run_task t task =
  (match
     inject t;
     task ()
   with
  | () -> ()
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (* Keep the first failure; later ones would mask it. *)
      ignore (Atomic.compare_and_set t.first_error None (Some (e, bt))));
  Obs.Counter.incr t.c_tasks;
  finish_task t

let rec worker_loop t =
  match Spmc.steal t.queue with
  | Some task ->
      Obs.Counter.incr t.c_steals;
      run_task t task;
      worker_loop t
  | None ->
      if not (Atomic.get t.stop) then begin
        (* Nothing runnable. A short spin covers the common gap where the
           producer is mid-batch; then block until woken. *)
        let rec spin k =
          if k > 0 && Spmc.length t.queue = 0 && not (Atomic.get t.stop) then begin
            Domain.cpu_relax ();
            spin (k - 1)
          end
        in
        spin 512;
        Mutex.lock t.idle_mutex;
        while Spmc.length t.queue = 0 && not (Atomic.get t.stop) do
          Condition.wait t.idle_cond t.idle_mutex
        done;
        Mutex.unlock t.idle_mutex;
        worker_loop t
      end

let create ?domains () =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Par.Pool.create: domains must be >= 1";
        d
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      queue = Spmc.create ~capacity:1024;
      domains;
      workers = [||];
      pending = Atomic.make 0;
      stop = Atomic.make false;
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      first_error = Atomic.make None;
      down = false;
      fault_injector = None;
      task_seq = Atomic.make 0;
      c_tasks = Obs.Registry.counter "par.pool.tasks";
      c_steals = Obs.Registry.counter "par.pool.steals";
      c_batches = Obs.Registry.counter "par.pool.batches";
    }
  in
  Obs.Gauge.observe_max
    (Obs.Registry.gauge "par.pool.domains")
    (float_of_int domains);
  t.workers <-
    Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let wake_all t =
  Mutex.lock t.idle_mutex;
  Condition.broadcast t.idle_cond;
  Mutex.unlock t.idle_mutex

let run t tasks =
  if t.down then invalid_arg "Par.Pool.run: pool is shut down";
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    Obs.Counter.incr t.c_batches;
    if t.domains = 1 then
      (* Inline: no queue, no atomics on the data path, exceptions
         propagate directly. The injector still fires so chaos plans
         behave the same at every pool size. *)
      Array.iter
        (fun task ->
          inject t;
          task ())
        tasks
    else begin
      Atomic.set t.first_error None;
      Atomic.set t.pending n;
      Array.iter
        (fun task ->
          if not (Spmc.try_push t.queue task) then
            (* Ring full: apply backpressure by doing the work here
               instead of spinning — the caller is a worker too. *)
            run_task t task)
        tasks;
      wake_all t;
      (* Caller helps until the whole batch has settled. [pending] (not
         queue emptiness) is the termination condition: a task may still
         be in flight on a worker after the queue drains. *)
      let rec help () =
        if Atomic.get t.pending > 0 then begin
          (match Spmc.steal t.queue with
          | Some task -> run_task t task
          | None -> Domain.cpu_relax ());
          help ()
        end
      in
      help ();
      match Atomic.get t.first_error with
      | Some (e, bt) ->
          Atomic.set t.first_error None;
          Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let set_fault_injector t f = t.fault_injector <- f

let shutdown t =
  if not t.down then begin
    t.down <- true;
    Atomic.set t.stop true;
    wake_all t;
    Array.iter Domain.join t.workers
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
