(** A bounded single-producer / multi-consumer queue of work items.

    The shape the stage-2 fan-out needs and nothing more — a
    "work-stealing-lite" deque: ONE domain (the batch submitter) pushes at
    the tail; every domain, workers and submitter alike, steals from the
    head. Tasks therefore leave in FIFO order under no contention, and in
    {e some} linearizable order always — which is all the parallel sink
    requires, since every task writes to a pre-assigned output slot and no
    consumer cares which ADU it draws.

    Implementation: a power-of-two ring of [Atomic] slots with a
    monotonically increasing head (CAS-advanced by thieves) and tail
    (plain-stored by the single producer). Indices never wrap in practice
    (63-bit); the ring position is [index land mask]. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is rounded up to a power of two, minimum 2. Raises
    [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer side only (single producer by contract). [false] when the
    ring is full — the caller should drain a task itself rather than
    spin. *)

val steal : 'a t -> 'a option
(** Any domain. [None] when the queue is observed empty. *)

val length : 'a t -> int
(** Instantaneous occupancy; only a hint under concurrency. *)
