(** A pool of worker domains executing batches of independent tasks.

    This is the execution engine behind the paper's §7 parallel-sink
    architecture: once the unit of processing is a complete ADU, the ADUs
    of a batch can be manipulated out of order and {e independently} — on
    today's hardware, in parallel. The pool owns [domains - 1] worker
    domains; the caller's domain is the remaining worker, so [run] on a
    pool of size 1 degenerates to an inline loop with zero spawns (the
    configuration `dune runtest` uses to keep tier-1 fast).

    Tasks are closures with their output location pre-assigned by the
    submitter (a slot in a result array, a disjoint region of a
    destination buffer), so no completion order is ever observable in the
    results — the merge point the paper warns about is designed away
    rather than synchronized.

    Contract: one [run] at a time per pool (the batch submitter is the
    queue's single producer). Tasks must not themselves call [run] on the
    same pool. Tasks may freely use {!Obs}, {!Bufkit.Pool} and the fused
    {!Ilp} kernels — those paths are domain-safe. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (so
    [~domains:1] spawns none). Default:
    [Domain.recommended_domain_count ()]. Raises [Invalid_argument] if
    [domains < 1]. *)

val size : t -> int
(** Total parallelism: worker domains + the calling domain. *)

val run : t -> (unit -> unit) array -> unit
(** Execute every task exactly once and return when all have finished.
    The caller participates (steals) rather than blocking. If tasks
    raise, one of the exceptions is re-raised on the caller after the
    whole batch has settled — the batch is never abandoned half-run. *)

val set_fault_injector : t -> (int -> unit) option -> unit
(** Chaos hook. When set, the function runs immediately before every task
    body with a monotone task sequence number (over the pool's lifetime);
    if it raises, the exception is captured and re-raised by [run]
    exactly as a failing task would be (on a size-1 pool it propagates
    inline, like a failing task on a size-1 pool). Set or clear it only
    while the pool is quiescent — between [run]s. [None] removes the
    hook. Used by [lib/chaos] to model a worker-domain crash
    deterministically. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. The pool must not be
    used afterwards ([run] raises [Invalid_argument]). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] = create, apply, shutdown (also on exception). *)
