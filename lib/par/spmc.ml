type 'a t = {
  slots : 'a option Atomic.t array;
  mask : int;
  head : int Atomic.t;  (* next index to steal; CAS-advanced by thieves *)
  tail : int Atomic.t;  (* next index to fill; stored only by the producer *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spmc.create: capacity must be positive";
  let cap =
    let c = ref 2 in
    while !c < capacity do
      c := !c * 2
    done;
    !c
  in
  {
    slots = Array.init cap (fun _ -> Atomic.make None);
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t =
  let n = Atomic.get t.tail - Atomic.get t.head in
  if n < 0 then 0 else n

let try_push t x =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head > t.mask then false
  else begin
    (* The slot at [tl] was consumed at index [tl - capacity] (or never
       used): safe to overwrite, because head has advanced past it. The
       atomic slot store publishes the payload; the tail store publishes
       its availability. *)
    Atomic.set t.slots.(tl land t.mask) (Some x);
    Atomic.set t.tail (tl + 1);
    true
  end

let rec steal t =
  let h = Atomic.get t.head in
  if h >= Atomic.get t.tail then None
  else
    match Atomic.get t.slots.(h land t.mask) with
    | None ->
        (* The producer has published the index but this domain read the
           slot between the two stores of a wrapping push; retry. *)
        steal t
    | Some x as v ->
        if Atomic.compare_and_set t.head h (h + 1) then begin
          (* Help the GC: drop the queue's reference to the payload. The
             compare is against the exact value we took; a failed clear
             means the producer already reused the slot, which is fine. *)
          ignore (Atomic.compare_and_set t.slots.(h land t.mask) v None);
          Some x
        end
        else steal t
