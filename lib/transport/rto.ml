type t = {
  initial_rto : float;
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable shift : int;
}

let create ?(initial_rto = 1.0) ?(min_rto = 0.01) ?(max_rto = 60.0) () =
  {
    initial_rto;
    min_rto;
    max_rto;
    srtt = 0.0;
    rttvar = 0.0;
    have_sample = false;
    shift = 0;
  }

let sample ?(retransmitted = false) t rtt =
  (* Karn's algorithm: an RTT measured on a retransmitted segment is
     ambiguous (the ACK may answer either transmission), so it must
     neither feed the estimator NOR reset the backoff. Resetting [shift]
     on such samples collapses the exponential backoff under persistent
     loss — every spurious "sample" would snap the timer back to base. *)
  if (not retransmitted) && rtt >= 0.0 then begin
    if not t.have_sample then begin
      t.srtt <- rtt;
      t.rttvar <- rtt /. 2.0;
      t.have_sample <- true
    end
    else begin
      let err = rtt -. t.srtt in
      t.srtt <- t.srtt +. (err /. 8.0);
      t.rttvar <- t.rttvar +. ((abs_float err -. t.rttvar) /. 4.0)
    end;
    t.shift <- 0
  end

let base_rto t =
  if t.have_sample then t.srtt +. (4.0 *. t.rttvar) else t.initial_rto

let rto t =
  let v = base_rto t *. float_of_int (1 lsl t.shift) in
  Float.min t.max_rto (Float.max t.min_rto v)

let backoff t = if t.shift < 6 then t.shift <- t.shift + 1

let srtt t = if t.have_sample then Some t.srtt else None

let pp ppf t =
  Format.fprintf ppf "rto(srtt=%.4f rttvar=%.4f shift=%d rto=%.4f)" t.srtt
    t.rttvar t.shift (rto t)
