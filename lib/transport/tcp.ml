open Bufkit
open Netsim

type config = {
  mss : int;
  recv_capacity : int;
  initial_cwnd_mss : int;
  ack_delay : float;
  proto : int;
  isn : int;
  peer_isn : int;
}

let default_config =
  {
    mss = 1460;
    recv_capacity = 65536;
    initial_cwnd_mss = 4;
    ack_delay = 0.0;
    proto = 6;
    isn = 0;
    peer_isn = 0;
  }

type stats = {
  mutable segs_sent : int;
  mutable segs_received : int;
  mutable segs_discarded : int;
  mutable acks_sent : int;
  mutable acks_received : int;
  mutable dup_acks : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable bytes_sent : int;
  mutable bytes_retransmitted : int;
  mutable bytes_acked : int;
  mutable bytes_delivered : int;
  mutable control_ops : int;
  mutable manip_checksum_bytes : int;
  mutable manip_copy_bytes : int;
}

let fresh_stats () =
  {
    segs_sent = 0;
    segs_received = 0;
    segs_discarded = 0;
    acks_sent = 0;
    acks_received = 0;
    dup_acks = 0;
    retransmits = 0;
    timeouts = 0;
    fast_retransmits = 0;
    bytes_sent = 0;
    bytes_retransmitted = 0;
    bytes_acked = 0;
    bytes_delivered = 0;
    control_ops = 0;
    manip_checksum_bytes = 0;
    manip_copy_bytes = 0;
  }

(* A segment the sender may have to retransmit. *)
type inflight = {
  off : int;  (* absolute stream offset *)
  len : int;
  data : Bytebuf.t;
  is_fin : bool;
  mutable sent_at : float;
  mutable rexmits : int;
}

type t = {
  engine : Engine.t;
  node : Node.t;
  peer : Packet.addr;
  config : config;
  stats : stats;
  next_id : unit -> int;
  rto : Rto.t;
  (* Sender state. *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable send_q : Bytebuf.t list;  (* not yet segmented, oldest first *)
  mutable send_q_bytes : int;
  mutable inflight : inflight list;  (* ascending offset *)
  mutable cwnd : float;  (* bytes *)
  mutable ssthresh : float;
  mutable rwnd : int;  (* peer's advertised window *)
  mutable dupack_count : int;
  mutable rto_timer : Engine.timer option;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable fin_acked : bool;
  (* Receiver state. *)
  reorder : Reorder.t;
  mutable deliver : Bytebuf.t -> unit;
  mutable close_cb : unit -> unit;
  mutable peer_fin_off : int option;
  mutable peer_closed : bool;
  mutable ack_timer : Engine.timer option;
  mutable ack_due : bool;
  mutable tracer : (string -> unit) option;
}

let trace t fmt =
  match t.tracer with
  | None -> Format.ikfprintf (fun _ -> ()) Format.std_formatter fmt
  | Some emit -> Format.kasprintf emit fmt

let control t = t.stats.control_ops <- t.stats.control_ops + 1
let set_tracer t f = t.tracer <- Some f

let stats t = t.stats
let rcv_nxt t = Reorder.rcv_nxt t.reorder
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let buffered_bytes t = Reorder.buffered_bytes t.reorder
let send_queue_bytes t = t.send_q_bytes
let cwnd t = int_of_float t.cwnd
let closed t = t.peer_closed

let unacked_bytes t =
  List.fold_left (fun acc seg -> acc + seg.len) 0 t.inflight

let all_acked t =
  t.send_q_bytes = 0 && t.inflight = []
  && (not t.fin_queued || t.fin_acked)

let on_deliver t f = t.deliver <- f
let on_close t f = t.close_cb <- f

(* --- wire out --- *)

let emit t (seg : Segment.t) =
  let buf = Segment.encode seg in
  let n = Bytebuf.length buf in
  t.stats.manip_checksum_bytes <- t.stats.manip_checksum_bytes + n;
  (* Handing the segment to the network interface is the unavoidable
     "moving to the net" manipulation. *)
  t.stats.manip_copy_bytes <- t.stats.manip_copy_bytes + n;
  let pkt =
    Packet.make ~id:(t.next_id ()) ~src:(Node.addr t.node) ~dst:t.peer
      ~proto:t.config.proto ~born:(Engine.now t.engine) buf
  in
  ignore (Node.send t.node pkt)

let current_ack t =
  let base = Reorder.rcv_nxt t.reorder in
  match t.peer_fin_off with
  | Some fin when base = fin -> base + 1 (* the FIN consumes one number *)
  | Some _ | None -> base

let send_ack t =
  control t (* acknowledgement computation *);
  t.ack_due <- false;
  (match t.ack_timer with
  | Some timer ->
      Engine.cancel timer;
      t.ack_timer <- None
  | None -> ());
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  emit t
    {
      Segment.seq = Seq32.of_int t.snd_nxt;
      ack = Seq32.of_int (current_ack t);
      flags = { Segment.no_flags with ack = true };
      wnd = Reorder.window t.reorder;
      payload = Bytebuf.empty;
    }

let schedule_ack t =
  if t.config.ack_delay <= 0.0 then send_ack t
  else if t.ack_due then send_ack t (* every second segment: ack now *)
  else begin
    t.ack_due <- true;
    t.ack_timer <-
      Some (Engine.schedule_after t.engine t.config.ack_delay (fun () ->
                t.ack_timer <- None;
                if t.ack_due then send_ack t))
  end

(* --- retransmission timer --- *)

let rec arm_rto t =
  (match t.rto_timer with
  | Some timer -> Engine.cancel timer
  | None -> ());
  if t.inflight = [] then t.rto_timer <- None
  else begin
    control t (* timer management is in-band control *);
    t.rto_timer <-
      Some (Engine.schedule_after t.engine (Rto.rto t.rto) (fun () -> on_rto t))
  end

and on_rto t =
  t.rto_timer <- None;
  match t.inflight with
  | [] -> ()
  | seg :: _ ->
      t.stats.timeouts <- t.stats.timeouts + 1;
      Obs.Counter.incr (Obs.Registry.counter "tcp.rto_backoffs");
      trace t "RTO fired: rexmit seq=%d len=%d (rto now %.3fs)" seg.off seg.len
        (Rto.rto t.rto);
      Rto.backoff t.rto;
      (* Multiplicative decrease: collapse to one segment. *)
      let flight = float_of_int (t.snd_nxt - t.snd_una) in
      t.ssthresh <- Float.max (flight /. 2.0) (2.0 *. float_of_int t.config.mss);
      t.cwnd <- float_of_int t.config.mss;
      t.dupack_count <- 0;
      retransmit t seg;
      arm_rto t

and retransmit t seg =
  t.stats.retransmits <- t.stats.retransmits + 1;
  t.stats.bytes_retransmitted <- t.stats.bytes_retransmitted + seg.len;
  Obs.Counter.incr (Obs.Registry.counter "tcp.retransmits");
  Obs.Counter.add (Obs.Registry.counter "tcp.bytes_retransmitted") seg.len;
  seg.rexmits <- seg.rexmits + 1;
  seg.sent_at <- Engine.now t.engine;
  t.stats.segs_sent <- t.stats.segs_sent + 1;
  emit t
    {
      Segment.seq = Seq32.of_int seg.off;
      ack = Seq32.of_int (current_ack t);
      flags = { Segment.no_flags with ack = true; fin = seg.is_fin };
      wnd = Reorder.window t.reorder;
      payload = seg.data;
    }

(* --- segmentation and transmission --- *)

(* Pull up to [n] bytes off the send queue into one fresh buffer. *)
let dequeue_bytes t n =
  let out = Bytebuf.create n in
  let filled = ref 0 in
  while !filled < n do
    match t.send_q with
    | [] -> assert false
    | chunk :: rest ->
        let take = min (n - !filled) (Bytebuf.length chunk) in
        Bytebuf.blit ~src:chunk ~src_pos:0 ~dst:out ~dst_pos:!filled ~len:take;
        filled := !filled + take;
        if take = Bytebuf.length chunk then t.send_q <- rest
        else t.send_q <- Bytebuf.shift chunk take :: rest
  done;
  t.send_q_bytes <- t.send_q_bytes - n;
  t.stats.manip_copy_bytes <- t.stats.manip_copy_bytes + n;
  out

let rec pump t =
  control t (* window computation *);
  let window = min (int_of_float t.cwnd) t.rwnd in
  let in_flight = t.snd_nxt - t.snd_una in
  let room = window - in_flight in
  if t.send_q_bytes > 0 && room > 0 then begin
    let len = min (min t.config.mss room) t.send_q_bytes in
    let data = dequeue_bytes t len in
    let seg =
      {
        off = t.snd_nxt;
        len;
        data;
        is_fin = false;
        sent_at = Engine.now t.engine;
        rexmits = 0;
      }
    in
    t.inflight <- t.inflight @ [ seg ];
    t.snd_nxt <- t.snd_nxt + len;
    t.stats.segs_sent <- t.stats.segs_sent + 1;
    t.stats.bytes_sent <- t.stats.bytes_sent + len;
    trace t "send seq=%d len=%d cwnd=%d" seg.off len (int_of_float t.cwnd);
    emit t
      {
        Segment.seq = Seq32.of_int seg.off;
        ack = Seq32.of_int (current_ack t);
        flags = { Segment.no_flags with ack = true };
        wnd = Reorder.window t.reorder;
        payload = data;
      };
    if t.rto_timer = None then arm_rto t;
    pump t
  end
  else if t.send_q_bytes = 0 && t.fin_queued && not t.fin_sent then begin
    (* Send FIN once the queue has drained (it may still share the window
       with inflight data). *)
    let seg =
      {
        off = t.snd_nxt;
        len = 1;
        data = Bytebuf.empty;
        is_fin = true;
        sent_at = Engine.now t.engine;
        rexmits = 0;
      }
    in
    t.fin_sent <- true;
    t.inflight <- t.inflight @ [ seg ];
    t.snd_nxt <- t.snd_nxt + 1;
    t.stats.segs_sent <- t.stats.segs_sent + 1;
    emit t
      {
        Segment.seq = Seq32.of_int seg.off;
        ack = Seq32.of_int (current_ack t);
        flags = { Segment.no_flags with ack = true; fin = true };
        wnd = Reorder.window t.reorder;
        payload = Bytebuf.empty;
      };
    if t.rto_timer = None then arm_rto t
  end

(* --- inbound processing --- *)

let process_ack t (seg : Segment.t) =
  t.stats.acks_received <- t.stats.acks_received + 1;
  control t (* ack comparison against local state *);
  let ack_abs = Seq32.unwrap ~near:t.snd_una seg.Segment.ack in
  t.rwnd <- seg.Segment.wnd;
  if ack_abs > t.snd_una then begin
    let advanced = ack_abs - t.snd_una in
    t.stats.bytes_acked <- t.stats.bytes_acked + advanced;
    t.snd_una <- ack_abs;
    t.dupack_count <- 0;
    (* Retire covered segments; sample RTT per Karn. *)
    let rec retire = function
      | seg :: rest when seg.off + seg.len <= ack_abs ->
          let rtt = Engine.now t.engine -. seg.sent_at in
          (* The estimator itself enforces Karn's rule; the histogram only
             records unambiguous samples. *)
          if seg.rexmits = 0 then
            Obs.Histogram.record
              (Obs.Registry.histogram "tcp.rtt_ns")
              (rtt *. 1e9);
          Rto.sample ~retransmitted:(seg.rexmits > 0) t.rto rtt;
          if seg.is_fin then t.fin_acked <- true;
          retire rest
      | rest -> rest
    in
    t.inflight <- retire t.inflight;
    control t (* congestion window update *);
    if t.cwnd < t.ssthresh then
      t.cwnd <- t.cwnd +. float_of_int (min advanced t.config.mss)
    else
      t.cwnd <-
        t.cwnd
        +. (float_of_int (t.config.mss * t.config.mss) /. Float.max t.cwnd 1.0);
    arm_rto t;
    pump t
  end
  else if
    Bytebuf.length seg.Segment.payload = 0
    && (not seg.Segment.flags.Segment.fin)
    && t.inflight <> []
  then begin
    t.stats.dup_acks <- t.stats.dup_acks + 1;
    t.dupack_count <- t.dupack_count + 1;
    if t.dupack_count = 3 then begin
      (* Fast retransmit + simplified Reno halving. *)
      t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
      Obs.Counter.incr (Obs.Registry.counter "tcp.fast_retransmits");
      trace t "fast retransmit at snd_una=%d (3 dup acks)" t.snd_una;
      let flight = float_of_int (t.snd_nxt - t.snd_una) in
      t.ssthresh <- Float.max (flight /. 2.0) (2.0 *. float_of_int t.config.mss);
      t.cwnd <- t.ssthresh;
      (match t.inflight with
      | seg :: _ -> retransmit t seg
      | [] -> ());
      arm_rto t
    end
    else pump t (* the window may have opened *)
  end
  else pump t

let process_data t (seg : Segment.t) =
  let payload_len = Bytebuf.length seg.Segment.payload in
  if payload_len = 0 && not seg.Segment.flags.Segment.fin then ()
  else begin
    control t (* in-order test against rcv_nxt *);
    let seq_abs = Seq32.unwrap ~near:(Reorder.rcv_nxt t.reorder) seg.Segment.seq in
    if seg.Segment.flags.Segment.fin then
      t.peer_fin_off <- Some (seq_abs + payload_len);
    let before = Reorder.rcv_nxt t.reorder in
    let ready =
      if payload_len > 0 then Reorder.offer t.reorder ~off:seq_abs seg.Segment.payload
      else []
    in
    List.iter
      (fun chunk ->
        let n = Bytebuf.length chunk in
        t.stats.bytes_delivered <- t.stats.bytes_delivered + n;
        (* Moving into application space: the final unavoidable copy. *)
        t.stats.manip_copy_bytes <- t.stats.manip_copy_bytes + n;
        t.deliver chunk)
      ready;
    let buffered = float_of_int (Reorder.buffered_bytes t.reorder) in
    Obs.Gauge.set (Obs.Registry.gauge "tcp.reorder.buffered_bytes") buffered;
    Obs.Gauge.observe_max
      (Obs.Registry.gauge "tcp.reorder.buffered_peak_bytes")
      buffered;
    let after = Reorder.rcv_nxt t.reorder in
    (if (not t.peer_closed) && t.peer_fin_off = Some after then begin
       t.peer_closed <- true;
       t.close_cb ()
     end);
    if after = before && payload_len > 0 && seq_abs <> before then begin
      (* Out of order: duplicate ACK right away, as TCP does. *)
      trace t "out-of-order seq=%d (expecting %d, %d B parked)" seq_abs before
        (Reorder.buffered_bytes t.reorder);
      send_ack t
    end
    else schedule_ack t
  end

let handle_packet t (pkt : Packet.t) =
  control t (* demultiplexed to this connection *);
  t.stats.manip_checksum_bytes <-
    t.stats.manip_checksum_bytes + Bytebuf.length pkt.Packet.payload;
  match Segment.decode pkt.Packet.payload with
  | Error _ -> t.stats.segs_discarded <- t.stats.segs_discarded + 1
  | Ok seg ->
      t.stats.segs_received <- t.stats.segs_received + 1;
      if seg.Segment.flags.Segment.ack then process_ack t seg;
      process_data t seg

let create ~engine ~node ~peer ?(config = default_config) () =
  let t =
    {
      engine;
      node;
      peer;
      config;
      stats = fresh_stats ();
      next_id = Packet.counter ();
      rto = Rto.create ();
      snd_una = config.isn;
      snd_nxt = config.isn;
      send_q = [];
      send_q_bytes = 0;
      inflight = [];
      cwnd = float_of_int (config.initial_cwnd_mss * config.mss);
      ssthresh = infinity;
      rwnd = config.recv_capacity;
      dupack_count = 0;
      rto_timer = None;
      fin_queued = false;
      fin_sent = false;
      fin_acked = false;
      reorder =
        Reorder.create ~capacity:config.recv_capacity
          ~initial_offset:config.peer_isn;
      deliver = (fun _ -> ());
      close_cb = (fun () -> ());
      peer_fin_off = None;
      peer_closed = false;
      ack_timer = None;
      ack_due = false;
      tracer = None;
    }
  in
  Node.attach node ~proto:config.proto (handle_packet t);
  t

let send t data =
  if t.fin_queued then invalid_arg "Tcp.send: already finished";
  if Bytebuf.length data > 0 then begin
    t.send_q <- t.send_q @ [ data ];
    t.send_q_bytes <- t.send_q_bytes + Bytebuf.length data;
    pump t
  end

let send_string t s = send t (Bytebuf.of_string s)

let finish t =
  if not t.fin_queued then begin
    t.fin_queued <- true;
    pump t
  end
