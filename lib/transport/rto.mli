(** Round-trip estimation and retransmission timeout (Jacobson/Karels).

    srtt/rttvar smoothing with the standard gains (1/8, 1/4), Karn's rule
    (samples from retransmitted segments are never fed back), exponential
    backoff on timeout, and clamping to configurable floor/ceiling. *)

type t

val create : ?initial_rto:float -> ?min_rto:float -> ?max_rto:float -> unit -> t
(** Defaults: initial 1 s, floor 10 ms, ceiling 60 s. *)

val sample : ?retransmitted:bool -> t -> float -> unit
(** Feed a round-trip measurement. A sample taken on a segment that was
    retransmitted is ambiguous — the ACK may answer either copy — so with
    [~retransmitted:true] (Karn's algorithm) the sample is discarded
    entirely: it neither updates srtt/rttvar nor resets the backoff.
    A clean sample ([retransmitted] false, the default) resets any
    backoff. *)

val rto : t -> float
(** Current timeout: (srtt + 4·rttvar) · 2^backoff, clamped. *)

val backoff : t -> unit
(** Double the timeout (cap 2⁶) after a retransmission. *)

val srtt : t -> float option
(** None until the first sample. *)

val pp : Format.formatter -> t -> unit
