(** The receiver's resequencing buffer.

    This small module is the mechanical heart of the paper's critique: an
    in-order byte-stream transport must hold back everything that arrives
    after a hole. [offer] accepts a segment at an absolute offset, trims
    overlap with data already delivered or buffered, and returns whatever
    has just become contiguously deliverable — which is empty whenever a
    hole remains, no matter how much sits buffered behind it. The
    buffered-byte count is exactly the data the presentation pipeline is
    being starved of (experiment E6 reads it directly).

    {2 Sequence-number wraparound}

    Offsets here are {e absolute} stream positions (plain [int], 63-bit),
    not 32-bit wire sequence numbers. The contract with {!Seq32}: a
    receiver keeps absolute offsets internally, converts wire values with
    [Seq32.unwrap ~near:(rcv_nxt t)] before calling {!offer}, and never
    feeds a raw wrapped value in. Under that discipline wraparound of the
    32-bit wire space is invisible to this module. [unwrap] can return an
    offset {e below} [rcv_nxt] (even negative) for a stale pre-wrap
    retransmit; [offer] trims such data as duplicate rather than
    misfiling it, so stale segments are harmless. The tests
    [reorder seq32 wraparound] exercise this contract directly. *)

open Bufkit

type t

val create : capacity:int -> initial_offset:int -> t
(** [capacity] bounds the bytes held above the delivery point; segments
    (or their parts) beyond it are refused. *)

val offer : t -> off:int -> Bytebuf.t -> Bytebuf.t list
(** Newly contiguous chunks, in stream order ([[]] if a hole remains or
    the data was entirely duplicate/out-of-capacity). Offered slices are
    copied; the caller may reuse its buffer. *)

val rcv_nxt : t -> int
(** Next byte offset expected in order. *)

val buffered_bytes : t -> int
(** Bytes parked above a hole. *)

val buffered_spans : t -> (int * int) list
(** The (offset, length) of each parked span, ascending. *)

val window : t -> int
(** [capacity - buffered_bytes]: what flow control may advertise. *)

val duplicates : t -> int
(** Total duplicate bytes trimmed so far (diagnostic). *)
