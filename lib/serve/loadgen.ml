open Bufkit
open Alf_core

type config = {
  sessions : int;
  adus_per_session : int;
  payload_len : int;
  base_port : int;
  streams_per_port : int;
  server : int;
  server_port : int;
  integrity : Checksum.Kind.t option;
  secure : Secure.Record.t option;
}

let default_config =
  {
    sessions = 1000;
    adus_per_session = 2;
    payload_len = 64;
    base_port = 20000;
    streams_per_port = 1000;
    server = 0;
    server_port = 7000;
    integrity = Some Checksum.Kind.Crc32;
    secure = None;
  }

let ports_used cfg =
  (cfg.sessions + cfg.streams_per_port - 1) / cfg.streams_per_port

type stats = {
  mutable sent_datagrams : int;
  mutable sent_bytes : int;
  mutable send_failed : int;
  mutable dones_rx : int;
  mutable nacks_rx : int;
  mutable regens : int;
  mutable recloses : int;
}

type t = {
  cfg : config;
  io : Dgram.t;
  sec : Secure.Record.t option;  (* own clone: private AAD scratch *)
  scratch : Bytebuf.t;
  done_flags : Bytes.t;
  mutable done_total : int;
  mutable cursor : int;  (* r * sessions + k over data rounds, then CLOSE *)
  regen : (int * int) Queue.t;  (* (session, index) repairs from NACKs *)
  reclose : int Queue.t;
  stats : stats;
}

(* Session k lives at (base_port + k / streams_per_port,
   stream 1 + k mod streams_per_port): enough port fan-out to name any
   number of sessions while every stream id stays 16-bit. *)
let port_of t k = t.cfg.base_port + (k / t.cfg.streams_per_port)
let stream_of t k = 1 + (k mod t.cfg.streams_per_port)

let session_of t ~port ~stream =
  let k =
    ((port - t.cfg.base_port) * t.cfg.streams_per_port) + (stream - 1)
  in
  if
    k >= 0 && k < t.cfg.sessions && port_of t k = port && stream_of t k = stream
  then Some k
  else None

let payload_byte k index j = (k * 131) + (index * 31) + (j * 7) + 5

(* One reusable scratch holds the whole sealed datagram — the substrates
   copy (or transmit) synchronously, so nothing is retained. *)
let emit_adu t k index =
  let cfg = t.cfg in
  let plen = cfg.payload_len in
  (* Sealed payloads carry the 20-byte record trailer after the
     ciphertext; every length field below speaks [splen]. *)
  let splen =
    plen + match t.sec with None -> 0 | Some _ -> Secure.Record.overhead
  in
  let w = Cursor.writer t.scratch in
  Cursor.put_u8 w Framing.frag_magic;
  Cursor.put_u16be w (stream_of t k);
  Cursor.put_int_as_u32be w index;
  Cursor.put_u16be w 0;
  Cursor.put_u16be w 1;
  Cursor.put_int_as_u32be w (Adu.header_size + splen);
  Cursor.put_int_as_u32be w 0;
  let adu_pos = Framing.fragment_header_size in
  Cursor.put_u16be w Adu.magic;
  Cursor.put_u16be w (stream_of t k);
  Cursor.put_int_as_u32be w index;
  Cursor.put_u64be w (Int64.of_int (index * plen)) (* dest_off *);
  Cursor.put_int_as_u32be w plen (* dest_len *);
  Cursor.put_u64be w 0L;
  Cursor.put_int_as_u32be w splen;
  Cursor.put_u32be w 0l (* ADU CRC, patched below *);
  for j = 0 to plen - 1 do
    Cursor.put_u8 w (payload_byte k index j land 0xff)
  done;
  (match t.sec with
  | None -> ()
  | Some rc ->
      let name =
        Adu.name ~dest_off:(index * plen) ~dest_len:plen
          ~stream:(stream_of t k) ~index ()
      in
      let e, pr = Secure.Record.seal_params rc name in
      let ct =
        Bytebuf.sub t.scratch ~pos:(adu_pos + Adu.header_size) ~len:plen
      in
      let tag =
        Cipher.Aead.seal_in_place ~key:pr.Ilp.aead_key ~n0:pr.Ilp.aead_n0
          ~n1:pr.Ilp.aead_n1 ~n2:pr.Ilp.aead_n2 ~aad:pr.Ilp.aead_aad ct
      in
      Secure.Record.write_trailer
        (Bytebuf.sub t.scratch
           ~pos:(adu_pos + Adu.header_size + plen)
           ~len:Secure.Record.overhead)
        ~e ~tag);
  let body = adu_pos + Adu.header_size + splen in
  (* The ADU CRC is computed with its own field zeroed (see Adu.encode). *)
  let crc =
    let st =
      Checksum.Crc32.feed_sub Checksum.Crc32.init t.scratch ~pos:adu_pos
        ~len:32
    in
    let st = ref st in
    for _ = 1 to 4 do
      st := Checksum.Crc32.feed_byte !st 0
    done;
    Checksum.Crc32.finish
      (Checksum.Crc32.feed_sub !st t.scratch
         ~pos:(adu_pos + Adu.header_size)
         ~len:splen)
  in
  let p = adu_pos + 32 in
  Bytebuf.set_uint8 t.scratch p
    (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff);
  Bytebuf.set_uint8 t.scratch (p + 1)
    (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff);
  Bytebuf.set_uint8 t.scratch (p + 2)
    (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff);
  Bytebuf.set_uint8 t.scratch (p + 3) (Int32.to_int crc land 0xff);
  let total = Ctl.seal_in_place cfg.integrity t.scratch ~len:body in
  let ok =
    t.io.Dgram.send ~dst:cfg.server ~dst_port:cfg.server_port
      ~src_port:(port_of t k)
      (Bytebuf.take t.scratch total)
  in
  t.stats.sent_datagrams <- t.stats.sent_datagrams + 1;
  t.stats.sent_bytes <- t.stats.sent_bytes + total;
  if not ok then t.stats.send_failed <- t.stats.send_failed + 1

let emit_close t k =
  let body =
    Ctl.write_close t.scratch ~stream:(stream_of t k)
      ~total:t.cfg.adus_per_session
  in
  let total = Ctl.seal_in_place t.cfg.integrity t.scratch ~len:body in
  let ok =
    t.io.Dgram.send ~dst:t.cfg.server ~dst_port:t.cfg.server_port
      ~src_port:(port_of t k)
      (Bytebuf.take t.scratch total)
  in
  t.stats.sent_datagrams <- t.stats.sent_datagrams + 1;
  t.stats.sent_bytes <- t.stats.sent_bytes + total;
  if not ok then t.stats.send_failed <- t.stats.send_failed + 1

let is_done t k = Bytes.get t.done_flags k <> '\000'

let handle t ~port buf =
  match Ctl.unseal t.cfg.integrity buf with
  | None -> ()
  | Some body -> (
      match Ctl.parse body with
      | Some (Ctl.Done { stream }) -> (
          t.stats.dones_rx <- t.stats.dones_rx + 1;
          match session_of t ~port ~stream with
          | Some k when not (is_done t k) ->
              Bytes.set t.done_flags k '\001';
              t.done_total <- t.done_total + 1
          | Some _ | None -> ())
      | Some (Ctl.Nack { stream; indices; _ }) -> (
          t.stats.nacks_rx <- t.stats.nacks_rx + 1;
          match session_of t ~port ~stream with
          | Some k ->
              List.iter
                (fun i ->
                  if i >= 0 && i < t.cfg.adus_per_session then
                    Queue.add (k, i) t.regen)
                indices
          | None -> ())
      | Some (Ctl.Close _) | Some (Ctl.Gone _) | None -> ())

let create ~io cfg =
  if cfg.sessions < 1 then invalid_arg "Loadgen.create: sessions";
  if cfg.adus_per_session < 0 then invalid_arg "Loadgen.create: adus";
  if cfg.streams_per_port < 1 || cfg.streams_per_port > 0xFFFE then
    invalid_arg "Loadgen.create: streams_per_port";
  if cfg.payload_len < 0 then invalid_arg "Loadgen.create: payload_len";
  let dgram_size =
    Framing.fragment_header_size + Adu.header_size + cfg.payload_len
    + (match cfg.secure with None -> 0 | Some _ -> Secure.Record.overhead)
    + Ctl.trailer_size
  in
  if dgram_size > io.Dgram.max_payload then
    invalid_arg "Loadgen.create: payload_len exceeds the substrate MTU";
  let t =
    {
      cfg;
      io;
      sec = Option.map Secure.Record.clone cfg.secure;
      scratch = Bytebuf.create (max dgram_size 64);
      done_flags = Bytes.make cfg.sessions '\000';
      done_total = 0;
      cursor = 0;
      regen = Queue.create ();
      reclose = Queue.create ();
      stats =
        {
          sent_datagrams = 0;
          sent_bytes = 0;
          send_failed = 0;
          dones_rx = 0;
          nacks_rx = 0;
          regens = 0;
          recloses = 0;
        };
    }
  in
  for p = 0 to ports_used cfg - 1 do
    let port = cfg.base_port + p in
    io.Dgram.bind ~port (fun ~src:_ ~src_port:_ buf -> handle t ~port buf)
  done;
  t

let total_emissions t = t.cfg.sessions * (t.cfg.adus_per_session + 1)
let emitted_all t = t.cursor >= total_emissions t

(* Round-robin across sessions — every session's ADU 0 goes out before any
   session's ADU 1, so peak concurrency equals the session count — then a
   CLOSE round. Repairs and re-CLOSEs take priority over fresh emission. *)
let step t ~budget =
  let sent = ref 0 in
  while !sent < budget && not (Queue.is_empty t.regen) do
    let k, i = Queue.pop t.regen in
    if not (is_done t k) then begin
      emit_adu t k i;
      t.stats.regens <- t.stats.regens + 1;
      incr sent
    end
  done;
  while !sent < budget && not (Queue.is_empty t.reclose) do
    let k = Queue.pop t.reclose in
    if not (is_done t k) then begin
      emit_close t k;
      t.stats.recloses <- t.stats.recloses + 1;
      incr sent
    end
  done;
  while !sent < budget && not (emitted_all t) do
    let r = t.cursor / t.cfg.sessions and k = t.cursor mod t.cfg.sessions in
    if r < t.cfg.adus_per_session then emit_adu t k r else emit_close t k;
    t.cursor <- t.cursor + 1;
    incr sent
  done;
  !sent

let nudge t =
  for k = 0 to t.cfg.sessions - 1 do
    if not (is_done t k) then Queue.add k t.reclose
  done

let pending_repairs t = Queue.length t.regen + Queue.length t.reclose
let done_count t = t.done_total
let finished t = emitted_all t && t.done_total = t.cfg.sessions
let stats t = t.stats
let session_port t k = port_of t k
let session_stream t k = stream_of t k
