(** The million-session stage-1 engine.

    One UDP port, any number of concurrent ADU streams: arrivals are
    routed by {!Demux.shard_of} to a domain-sharded session table — no
    global lock, one mutex and one set of buffer pools per shard — and
    each shard's batch of staged datagrams is processed as one task on a
    {!Par.Pool} (stage 1 reassembly + the stage-2 manipulation plan run
    inline, on the shard's own scratch buffer). The single-session
    transport ({!Alf_transport}) keeps its endpoint model; this engine is
    the concentrator the paper's §7 parallel-sink argument implies: since
    every ADU is self-contained, sessions are embarrassingly parallel and
    the only shared state is the demux function.

    Threading contract: {!ingest} and {!pump} are called from the main
    thread ({!ingest} usually via the bound {!Dgram.t} handler). During
    {!pump} the shard tasks run on worker domains; all sends are deferred
    through per-shard outboxes and flushed by the main thread after the
    batch — the datagram substrates are not thread-safe and never see a
    worker domain. Memory is budgeted per shard by capped pools: when a
    shard's staging pool is exhausted, arrivals for it are dropped and
    counted ([drop.backpressure]) — backpressure, not allocation.

    {b Adversarial ingress.} Every arrival passes the total, alloc-free
    {!Ingress.validate} before demux, so no byte sequence can raise or
    touch shard state un-classified; each shard rate-limits session
    creation and control traffic per peer through fixed-size {!Police}
    tables; and the engine runs an explicit load-state ladder
    (Normal/Shedding/Brownout, hysteresis over staging occupancy) that
    tightens harvest timers and finally refuses new admissions. Every
    dropped datagram lands in exactly one reason-coded [drop.*] counter:
    per shard, [arrivals = accepted + Σ drops] once the queues drain. *)

open Bufkit
open Alf_core

type key = { peer : int; peer_port : int; stream : int }
(** A session: one sender endpoint, one stream id. *)

type config = {
  port : int;  (** Served port (bound on the substrate at {!create}). *)
  shards : int;
  integrity : Checksum.Kind.t option;  (** Must match the senders'. *)
  max_sessions_per_shard : int;  (** Admission cap; beyond it the shard
      evicts (completed-first, then LRU). *)
  rx_buf_size : int;  (** Staging buffer size >= the substrate MTU. *)
  rx_bufs_per_shard : int;  (** Staging budget: bounds datagrams queued
      per shard between pumps; exhaustion drops ([rx_dropped]). *)
  ctl_bufs_per_shard : int;  (** Control-reply budget; exhaustion falls
      back to allocation ([fallback_allocs]). *)
  reasm_bufs_per_shard : int;  (** Reassembly buffers (multi-fragment
      ADUs only — single-fragment ADUs never touch a reassembler). *)
  max_adu : int;  (** Largest decoded ADU the stage-2 scratch covers. *)
  idle_timeout : float;  (** Seconds of silence before an incomplete
      session is harvested. *)
  done_linger : float;  (** Seconds a completed session is kept to
      re-answer a lost DONE. *)
  harvest_interval : float;  (** Harvest cadence via the {!Rt.Sched}
      seam; [<= 0] disables the timer ({!harvest} still works). *)
  nack_holdoff : float;  (** Base per-session NACK spacing (doubles per
      round, cap 2^6). *)
  nack_budget : int;  (** NACK rounds before missing indices are declared
      locally gone. *)
  stage2_plan : Ilp.plan;  (** Run fused over every delivered payload
      into the shard scratch (default checksum + deliver-copy). *)
  stage2_schema : Wire.Xdr.schema option;  (** When set, stage 2 goes
      lazy: the plan transform feeds the compiled
      {!Wire.Schema.validate} pass ({!Ilp.run_view}) instead of a blind
      copy, and delivered payloads surface as {!Wire.View.t} through
      [?on_view] — decoded field by field on demand, never materialized.
      Payloads that fail validation count as [view_invalid] (the session
      bookkeeping still advances; a hostile payload cannot wedge the
      stream). Default [None]. *)
  secure : Secure.Record.t option;  (** AEAD record layer: when set,
      every delivered ADU payload is [ct ‖ epoch ‖ tag] and is opened in
      place (one fused MAC+decrypt pass, per-shard {!Secure.Record.clone}
      handles) before stage 2. Failures are counted [Auth] drops — the
      unit behaves like a lost datagram and stays NACK-repairable.
      Default [None]. *)
  obs_prefix : string;  (** Registry namespace:
      [<prefix>.shard<N>.<counter>]. *)
  ingress_validation : bool;  (** Stage-0 {!Ingress.validate} before
      demux (default true; false keeps only the legacy length checks —
      the clean-path A/B switch for the <3% overhead gate). *)
  max_ahead_window : int;  (** Largest accepted distance of any index
      (fragment or GONE) above a session's frontier; beyond it the
      datagram is dropped ([drop.window]). Bounds the ahead table and the
      repair scan against forged indices and hostile CLOSE totals. *)
  police_buckets : int;  (** Token buckets per shard per {!Police} table
      (fixed size, pre-allocated — never grows). *)
  admit_rate : float;  (** Session-creation tokens/second per peer bucket. *)
  admit_burst : float;
  ctl_rate : float;  (** Control-datagram tokens/second per peer bucket. *)
  ctl_burst : float;
  shed_hi : float;  (** Occupancy fraction proposing Shedding. *)
  brown_hi : float;  (** Occupancy fraction proposing Brownout. *)
  load_lo : float;  (** Occupancy fraction proposing Normal again. *)
  load_ticks : int;  (** Consecutive harvest confirmations before the
      load state moves one level. *)
}

val default_config : config

(** {1 Overload control} *)

type load_state = Normal | Shedding | Brownout

val load_state_index : load_state -> int
(** 0, 1, 2 — the [serve.load_state] gauge value. *)

val load_state_name : load_state -> string

type t

val create :
  sched:Rt.Sched.t ->
  ?io:Dgram.t ->
  ?pool:Par.Pool.t ->
  ?registry:Obs.Registry.t ->
  ?on_adu:(key -> Adu.t -> unit) ->
  ?on_view:(key -> Wire.View.t -> unit) ->
  ?on_complete:(key -> delivered:int -> gone:int -> unit) ->
  ?config:config ->
  unit ->
  t
(** Without [?io] the engine is driven by hand ({!ingest}/{!pump}) and
    control replies are accounted but not transmitted. [?pool] supplies
    the stage-2 worker domains — absent (or size 1), shard tasks run
    inline on the caller. [?on_adu] fires per delivered ADU {e on the
    owning shard's task}, payload borrowed (valid only during the call);
    it must be domain-safe. [?on_view] fires per delivered ADU when
    [config.stage2_schema] is set, {e on the owning shard's task}, with
    a lazy view over the shard scratch — valid only during the call,
    domain-safe required, decode only what you touch (that is the
    point). [?on_complete] fires once per session, on
    the owning shard's task, the moment it completes (frontier reaches
    the CLOSE total) with its delivered/gone split — the hook hostile
    drivers use to account {e honest} sessions exactly while byzantine
    traffic pollutes the engine totals; it must be domain-safe.
    [?registry] defaults to the process-wide one; tests pass a fresh
    registry so re-created engines do not share find-or-create counters.
    Also registers engine-level pulls: [<prefix>.load_state] and
    [<prefix>.drop.<reason>] (sum over shards). *)

val load_state : t -> load_state

val ingest : t -> src:int -> src_port:int -> Bytebuf.t -> unit
(** Stage 0: route by {!Demux.shard_of} (reading the stream id pre-seal),
    copy into the owning shard's staging pool, enqueue. The input buffer
    is borrowed — never retained — so substrate receive buffers recycle
    immediately. Main thread only. *)

val pump : t -> unit
(** Process every shard's staged datagrams (one task per busy shard on
    the worker pool), then flush the control outboxes. Main thread only;
    do not call from inside a {!Par.Pool} task. *)

val harvest : t -> unit
(** One sweep: evict completed-and-lingered and idle sessions, run the
    NACK repair schedule for gappy ones, flush outboxes. Runs
    automatically every [harvest_interval] when positive. *)

val stop : t -> unit
(** Cancel the harvest timer. Idempotent. *)

(** {1 Observation}

    Every counter below is also a registry metric
    ([<obs_prefix>.shard<N>.<name>], plus a [.sessions] pull gauge per
    shard), so shard totals are externally checkable against these
    programmatic sums. *)

type snapshot = {
  arrivals : int;  (** Datagrams presented to {!ingest} for this shard. *)
  accepted : int;  (** Dispatched without a drop (includes dup no-ops). *)
  datagrams : int;  (** Staged datagrams processed on the shard. *)
  delivered : int;  (** ADUs through stage 2. *)
  delivered_bytes : int;
  gone : int;  (** Sender-declared unrecoverable. *)
  gone_local : int;  (** Declared gone here: NACK budget exhausted. *)
  dups : int;
  admitted : int;
  evicted : int;  (** Capacity evictions. *)
  harvested : int;  (** Idle / lingering-DONE evictions. *)
  ctl_sent : int;
  nacks : int;
  dones : int;
  fallback_allocs : int;  (** Pool-miss allocations (should be 0). *)
  views : int;  (** Payloads validated and handed to [?on_view]
      (lazy stage 2 only). *)
  view_invalid : int;  (** Payloads that failed schema validation —
      counted, dropped, never raised. *)
  drops : int array;  (** Per {!Ingress.reason}, by {!Ingress.reason_index}. *)
  dropped : int;  (** Σ [drops]. Once queues drain,
      [arrivals = accepted + dropped] per shard. *)
}

val drop_count : t -> Ingress.reason -> int
(** Engine total for one drop reason (sum over shards). *)

val malformed_drops : snapshot -> int
(** Σ of the malformed-shape reasons ({!Ingress.is_malformed}) — the
    number tests equate with injected-malformed counts. *)

val shard_count : t -> int
val shard_snapshot : t -> int -> snapshot
val totals : t -> snapshot
(** Sum of every shard's snapshot. *)

val shard_sessions : t -> int -> int
val live_sessions : t -> int
val peak_sessions : t -> int
(** Sum of per-shard high-water session counts. *)

val pool_allocated : t -> int
(** Fresh buffers ever created across all shard pools. *)

val data_pool_allocated : t -> int
(** Same, staging + reassembly pools only — the
    zero-steady-state-allocation gate: its delta over a steady window of
    the data phase must be 0 (the control pool legitimately warms up
    later, when DONEs and repair NACKs start flowing). *)

val pool_outstanding : t -> int
(** Buffers currently acquired across every shard pool (staging, control
    and reassembly) — the live footprint, and the eviction-leak probe:
    once the queues are drained it is bounded by the {e live} sessions'
    partials, however many sessions churned through, because dropping a
    session releases every pooled buffer it held. *)

val shard_of_key : t -> peer:int -> peer_port:int -> stream:int -> int
val locate : t -> peer:int -> peer_port:int -> stream:int -> int option
(** The shard whose table actually holds the session (scan; tests check
    it equals {!shard_of_key}). *)

type session_view = {
  v_frontier : int;
  v_total : int;  (** -1 until a CLOSE arrives. *)
  v_delivered : int;
  v_gone : int;
  v_completed : bool;
  v_ahead_load : int;  (** Live entries in the ahead-of-frontier table. *)
}

val session_view : t -> peer:int -> peer_port:int -> stream:int -> session_view option

val max_ahead_load : t -> int
(** Largest ahead-table load over all live sessions (O(sessions); the
    flat-table probe). *)
