open Bufkit

(* SplitMix64's finalizer: a full-avalanche mix so sessions that differ
   only in the low bits of the stream id (the load generator's layout)
   still spread uniformly across shards. *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash ~peer ~peer_port ~stream =
  let open Int64 in
  mix64
    (add
       (mul (of_int peer) 0x9E3779B97F4A7C15L)
       (add (mul (of_int peer_port) 0xC2B2AE3D27D4EB4FL) (of_int stream)))

let shard_of ~shards ~peer ~peer_port ~stream =
  if shards <= 0 then invalid_arg "Demux.shard_of: shards must be positive";
  Int64.to_int
    (Int64.rem
       (Int64.logand (hash ~peer ~peer_port ~stream) Int64.max_int)
       (Int64.of_int shards))

(* Every ALF datagram — data fragment, FEC block, control message — keeps
   the stream id at bytes 1–2 (the {!Mux} dispatch position), so the
   demux reads it before unsealing: routing never touches the payload,
   and integrity verification happens on the owning shard's domain. *)
let stream_of_datagram buf =
  if Bytebuf.length buf < 3 then None
  else Some ((Bytebuf.get_uint8 buf 1 lsl 8) lor Bytebuf.get_uint8 buf 2)
