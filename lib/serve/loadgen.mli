(** A deterministic many-session traffic source for the {!Server} engine.

    Drives any {!Dgram.t} with [sessions] independent single-fragment ADU
    streams, fanned out over enough source ports that every stream id
    stays 16-bit. Emission is round-robin across sessions — every
    session's ADU 0 precedes any session's ADU 1 — so all sessions are
    concurrently live at the server from the first round until their
    CLOSEs resolve: peak server concurrency equals [sessions] by
    construction. Datagrams are built in one reusable scratch buffer
    (the substrates transmit or copy synchronously), so the generator
    itself does no steady-state allocation.

    Recovery mirrors a real sender: the bound handlers parse server
    control traffic — a NACK queues deterministic regeneration of exactly
    the missing ADUs (payloads are a pure function of session and index),
    a DONE marks the session finished — and {!nudge} re-CLOSEs unfinished
    sessions when the driver suspects a lost CLOSE or DONE. *)

open Alf_core

type config = {
  sessions : int;
  adus_per_session : int;
  payload_len : int;
  base_port : int;  (** First source port; one port per
      [streams_per_port] sessions. *)
  streams_per_port : int;
  server : int;  (** Server address on the substrate. *)
  server_port : int;
  integrity : Checksum.Kind.t option;  (** Must match the server's. *)
  secure : Secure.Record.t option;  (** Seal every ADU payload as
      [ct ‖ epoch ‖ tag] under the AEAD record layer (a private
      {!Secure.Record.clone} is taken at {!create}); must share a base
      key with the server's. NACK regeneration re-seals at the current
      epoch — the receiver window accepts it. Default [None]. *)
}

val default_config : config
val ports_used : config -> int

type stats = {
  mutable sent_datagrams : int;
  mutable sent_bytes : int;
  mutable send_failed : int;  (** Substrate refusals (wire loss). *)
  mutable dones_rx : int;
  mutable nacks_rx : int;
  mutable regens : int;  (** ADUs re-emitted in answer to NACKs. *)
  mutable recloses : int;
}

type t

val create : io:Dgram.t -> config -> t
(** Binds every source port on the substrate. *)

val step : t -> budget:int -> int
(** Emit up to [budget] datagrams — queued repairs and re-CLOSEs first,
    then fresh round-robin emission — returning the number sent. [0]
    means there is nothing left to transmit right now. *)

val nudge : t -> unit
(** Queue a re-CLOSE for every unfinished session (recovers lost
    CLOSE/DONE datagrams on a lossy substrate). *)

val emitted_all : t -> bool
(** The initial emission schedule (all ADUs + one CLOSE per session) has
    gone out. *)

val pending_repairs : t -> int
val done_count : t -> int

val finished : t -> bool
(** Everything emitted and every session acknowledged by a server DONE. *)

val stats : t -> stats
val session_port : t -> int -> int
val session_stream : t -> int -> int
