(** Per-peer token-bucket policing over a fixed-size table.

    Buckets are indexed by the {!Demux} hash modulo the table size, so
    the table is pre-allocated at creation and {e never grows} — the
    policer cannot itself be turned into a memory attack. Distinct peers
    may collide on a bucket; a collision only makes policing stricter
    for the colliding pair, never looser. Buckets start full, so honest
    startup bursts up to [burst] pass untouched.

    Not thread-safe on its own: each shard owns its instances and calls
    them under the shard mutex. *)

type t

val create : buckets:int -> rate:float -> burst:float -> unit -> t
(** [rate] tokens per second refill, capacity [burst], all buckets full.
    Raises [Invalid_argument] on non-positive parameters. *)

val allow : t -> key:int64 -> now:float -> bool
(** Take one token from [key]'s bucket at time [now]; [false] when the
    bucket is empty (the caller drops and counts the datagram). O(1),
    allocation-free. [now] is the backend clock ({!Rt.Sched}); calls
    with non-monotone [now] are safe (no refill on backwards time). *)

val tokens_left : t -> key:int64 -> float
(** Current token count of [key]'s bucket (as of its last refill) — for
    tests. *)
