(* Per-peer policing: a fixed-size token-bucket table keyed by the
   {!Demux} hash. The table is two float arrays allocated at [create]
   and never grows — a hostile peer cannot make the policer itself a
   memory attack — so distinct peers may share a bucket (hash modulo).
   Collisions only make policing *stricter* for the colliding pair,
   never looser, and with buckets sized a few times the honest peer
   population they are rare. Buckets start full so honest startup
   bursts pass untouched. *)

type t = {
  tokens : float array;
  stamp : float array;  (* last refill time per bucket *)
  rate : float;  (* tokens per second *)
  burst : float;  (* bucket capacity *)
  buckets : int;
}

let create ~buckets ~rate ~burst () =
  if buckets <= 0 then invalid_arg "Police.create: buckets must be positive";
  if rate <= 0.0 || burst <= 0.0 then
    invalid_arg "Police.create: rate and burst must be positive";
  {
    tokens = Array.make buckets burst;
    stamp = Array.make buckets 0.0;
    rate;
    burst;
    buckets;
  }

let bucket_of t key =
  Int64.to_int (Int64.rem (Int64.logand key Int64.max_int) (Int64.of_int t.buckets))

let allow t ~key ~now =
  let i = bucket_of t key in
  let elapsed = now -. t.stamp.(i) in
  let filled =
    if elapsed > 0.0 then
      Float.min t.burst (t.tokens.(i) +. (elapsed *. t.rate))
    else t.tokens.(i)
  in
  t.stamp.(i) <- now;
  if filled >= 1.0 then begin
    t.tokens.(i) <- filled -. 1.0;
    true
  end
  else begin
    t.tokens.(i) <- filled;
    false
  end

let tokens_left t ~key = t.tokens.(bucket_of t key)
