(** Session-to-shard routing: one pure function, used by the {!Server}
    ingest path and by the test oracle, so the property "every datagram
    of a session lands on the same shard" is true by construction and
    checkable from outside. *)

open Bufkit

val hash : peer:int -> peer_port:int -> stream:int -> int64
(** Full-avalanche 64-bit hash of the session key. *)

val shard_of : shards:int -> peer:int -> peer_port:int -> stream:int -> int
(** The owning shard in [0, shards). Deterministic; raises
    [Invalid_argument] when [shards <= 0]. *)

val stream_of_datagram : Bytebuf.t -> int option
(** The stream id at bytes 1–2 — valid for {e sealed} datagrams of every
    kind (fragments and control keep it at a fixed offset; the integrity
    trailer sits at the end), so routing happens before unsealing.
    [None] when the datagram is too short to carry one. *)
