open Bufkit
open Alf_core

type key = { peer : int; peer_port : int; stream : int }

type config = {
  port : int;
  shards : int;
  integrity : Checksum.Kind.t option;
  max_sessions_per_shard : int;
  rx_buf_size : int;
  rx_bufs_per_shard : int;
  ctl_bufs_per_shard : int;
  reasm_bufs_per_shard : int;
  max_adu : int;
  idle_timeout : float;
  done_linger : float;
  harvest_interval : float;
  nack_holdoff : float;
  nack_budget : int;
  stage2_plan : Ilp.plan;
  stage2_schema : Wire.Xdr.schema option;
  secure : Secure.Record.t option;
  obs_prefix : string;
  ingress_validation : bool;
  max_ahead_window : int;
  police_buckets : int;
  admit_rate : float;
  admit_burst : float;
  ctl_rate : float;
  ctl_burst : float;
  shed_hi : float;
  brown_hi : float;
  load_lo : float;
  load_ticks : int;
}

let default_config =
  {
    port = 7000;
    shards = 4;
    integrity = Some Checksum.Kind.Crc32;
    max_sessions_per_shard = 1 lsl 17;
    rx_buf_size = 2048;
    rx_bufs_per_shard = 1024;
    ctl_bufs_per_shard = 256;
    reasm_bufs_per_shard = 64;
    max_adu = 1 lsl 14;
    idle_timeout = 5.0;
    done_linger = 0.5;
    harvest_interval = 0.05;
    nack_holdoff = 0.06;
    nack_budget = 8;
    stage2_plan = [ Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ];
    stage2_schema = None;
    secure = None;
    obs_prefix = "serve";
    ingress_validation = true;
    max_ahead_window = 4096;
    police_buckets = 1024;
    (* Rates are per (shard, peer-hash) bucket: honest load spreads one
       peer's streams across all shards, so a bucket sees 1/shards of a
       port's traffic — the burst covers honest startup several times
       over while a single-port flood exhausts it quickly. *)
    admit_rate = 200.;
    admit_burst = 512.;
    ctl_rate = 400.;
    ctl_burst = 1024.;
    shed_hi = 0.75;
    brown_hi = 0.92;
    load_lo = 0.35;
    load_ticks = 2;
  }

type load_state = Normal | Shedding | Brownout

let load_state_index = function Normal -> 0 | Shedding -> 1 | Brownout -> 2
let load_state_name = function
  | Normal -> "normal"
  | Shedding -> "shedding"
  | Brownout -> "brownout"

type session = {
  key : key;
  mutable frontier : int;  (* everything below is delivered or gone *)
  mutable highest : int;  (* highest index seen, -1 before any *)
  mutable total : int;  (* from CLOSE; -1 while unknown *)
  ahead : (int, bool) Hashtbl.t;  (* index >= frontier -> delivered? *)
  mutable reasm : Framing.reassembler option;  (* multi-fragment only *)
  mutable last_rx : float;
  mutable completed : bool;
  mutable completed_at : float;
  mutable nack_tries : int;
  mutable last_nack : float;
  mutable s_delivered : int;
  mutable s_gone : int;
}

type pending = {
  p_src : int;
  p_src_port : int;
  p_buf : Bytebuf.t;
  p_release : unit -> unit;
}

type outmsg = {
  o_dst : int;
  o_dst_port : int;
  o_buf : Bytebuf.t;
  o_release : unit -> unit;
}

type counters = {
  c_arrivals : Obs.Counter.t;
  c_accepted : Obs.Counter.t;
  c_datagrams : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_bytes : Obs.Counter.t;
  c_gone : Obs.Counter.t;
  c_gone_local : Obs.Counter.t;
  c_dups : Obs.Counter.t;
  c_admitted : Obs.Counter.t;
  c_evicted : Obs.Counter.t;
  c_harvested : Obs.Counter.t;
  c_ctl_sent : Obs.Counter.t;
  c_nacks : Obs.Counter.t;
  c_dones : Obs.Counter.t;
  c_fallback_allocs : Obs.Counter.t;
  c_views : Obs.Counter.t;
  c_view_invalid : Obs.Counter.t;
  c_drops : Obs.Counter.t array;  (* indexed by Ingress.reason_index *)
}

type shard = {
  sid : int;
  lock : Mutex.t;
  sessions : (key, session) Hashtbl.t;
  inbox : pending Queue.t;
  outbox : outmsg Queue.t;
  rx_pool : Pool.t;
  ctl_pool : Pool.t;
  reasm_pool : Pool.t;
  scratch : Bytebuf.t;  (* stage-2 destination, one per shard domain *)
  ctr : counters;
  admit_police : Police.t;  (* session creation, under the shard lock *)
  ctl_police : Police.t;  (* control traffic, under the shard lock *)
  sh_secure : Secure.Record.t option;  (* per-shard record-layer clone *)
  mutable pending_reason : Ingress.reason option;
      (* drop reason surfaced by a reassembler-driven delivery, so the
         completing datagram is attributed to it (e.g. [Auth]) *)
  mutable peak_sessions : int;
  mutable inbox_peak : int;  (* high-water marks since the last harvest, *)
  mutable outbox_peak : int;  (* the overload-control occupancy signal *)
}

type t = {
  config : config;
  sched : Rt.Sched.t;
  io : Dgram.t option;
  pool : Par.Pool.t option;
  shards : shard array;
  limits : Ingress.limits;
  on_adu : (key -> Adu.t -> unit) option;
  on_view : (key -> Wire.View.t -> unit) option;
  stage2_prog : Wire.Schema.prog option;  (* compiled once at create *)
  on_complete : (key -> delivered:int -> gone:int -> unit) option;
  mutable load : load_state;
  mutable load_pending : load_state;  (* candidate next state... *)
  mutable load_streak : int;  (* ...and its consecutive confirmations *)
  mutable harvest_timer : Rt.Sched.timer option;
  mutable stopped : bool;
}

let load_state t = t.load

(* The memory budget is allocated up front: fill each pool's free list at
   create so steady state never sees a fresh buffer — the zero-allocation
   gate then measures the hot path, not warm-up timing. *)
let warm pool n =
  List.init n (fun _ -> Pool.try_acquire pool)
  |> List.iter (function Some b -> Pool.release pool b | None -> ())

let make_shard config registry sid =
  let c name =
    Obs.Registry.counter ?registry
      (Printf.sprintf "%s.shard%d.%s" config.obs_prefix sid name)
  in
  let sessions = Hashtbl.create 256 in
  Obs.Registry.pull ?registry
    (Printf.sprintf "%s.shard%d.sessions" config.obs_prefix sid)
    (fun () -> float_of_int (Hashtbl.length sessions));
  let rx_pool =
    Pool.create ~capacity:config.rx_bufs_per_shard
      ~max_outstanding:config.rx_bufs_per_shard ~buf_size:config.rx_buf_size
      ()
  in
  let ctl_pool =
    Pool.create ~capacity:config.ctl_bufs_per_shard
      ~max_outstanding:config.ctl_bufs_per_shard ~buf_size:config.rx_buf_size
      ()
  in
  let reasm_pool =
    Pool.create ~capacity:config.reasm_bufs_per_shard
      ~buf_size:(config.max_adu + Adu.header_size) ()
  in
  warm rx_pool config.rx_bufs_per_shard;
  warm ctl_pool config.ctl_bufs_per_shard;
  warm reasm_pool config.reasm_bufs_per_shard;
  {
    sid;
    lock = Mutex.create ();
    sessions;
    inbox = Queue.create ();
    outbox = Queue.create ();
    rx_pool;
    ctl_pool;
    reasm_pool;
    scratch = Bytebuf.create config.max_adu;
    ctr =
      {
        c_arrivals = c "arrivals";
        c_accepted = c "accepted";
        c_datagrams = c "datagrams";
        c_delivered = c "delivered";
        c_bytes = c "delivered_bytes";
        c_gone = c "gone";
        c_gone_local = c "gone_local";
        c_dups = c "dups";
        c_admitted = c "admitted";
        c_evicted = c "evicted";
        c_harvested = c "harvested";
        c_ctl_sent = c "ctl_sent";
        c_nacks = c "nacks";
        c_dones = c "dones";
        c_fallback_allocs = c "fallback_allocs";
        c_views = c "views";
        c_view_invalid = c "view_invalid";
        c_drops =
          Array.map
            (fun r -> c ("drop." ^ Ingress.reason_name r))
            Ingress.all_reasons;
      };
    admit_police =
      Police.create ~buckets:config.police_buckets ~rate:config.admit_rate
        ~burst:config.admit_burst ();
    ctl_police =
      Police.create ~buckets:config.police_buckets ~rate:config.ctl_rate
        ~burst:config.ctl_burst ();
    sh_secure = Option.map Secure.Record.clone config.secure;
    pending_reason = None;
    peak_sessions = 0;
    inbox_peak = 0;
    outbox_peak = 0;
  }

let count_drop sh reason =
  Obs.Counter.incr sh.ctr.c_drops.(Ingress.reason_index reason)

(* ---- session bookkeeping (all under the owning shard's lock) ---- *)

let settled s index = index < s.frontier || Hashtbl.mem s.ahead index

let advance s =
  let start = s.frontier in
  while Hashtbl.mem s.ahead s.frontier do
    Hashtbl.remove s.ahead s.frontier;
    s.frontier <- s.frontier + 1
  done;
  if s.frontier > start then
    match s.reasm with
    | Some r -> Framing.retire_below r ~bound:s.frontier
    | None -> ()

let drop_session sh s =
  (* [clear], not [retire_below ~bound:(highest+1)]: a hostile sender can
     hold a partial at an index it never advanced [highest] past (or the
     session can be evicted mid-reassembly), and any bound-based sweep
     would strand that partial's pooled buffer — a budget leak a churn
     flood turns into exhaustion. *)
  (match s.reasm with Some r -> Framing.clear r | None -> ());
  Hashtbl.reset s.ahead;
  Hashtbl.remove sh.sessions s.key

(* Victim choice when a shard is at capacity: a completed session that is
   merely lingering for a late re-CLOSE beats any live one; among
   completed, the longest-done; among live, the longest-idle (LRU). *)
let evict_one sh =
  let victim =
    Hashtbl.fold
      (fun _ s best ->
        match best with
        | None -> Some s
        | Some b ->
            let better =
              if s.completed <> b.completed then s.completed
              else if s.completed then s.completed_at < b.completed_at
              else s.last_rx < b.last_rx
            in
            if better then Some s else best)
      sh.sessions None
  in
  match victim with
  | Some s ->
      drop_session sh s;
      Obs.Counter.incr sh.ctr.c_evicted
  | None -> ()

let admit t sh k now =
  if Hashtbl.length sh.sessions >= t.config.max_sessions_per_shard then
    evict_one sh;
  let s =
    {
      key = k;
      frontier = 0;
      highest = -1;
      total = -1;
      ahead = Hashtbl.create 8;
      reasm = None;
      last_rx = now;
      completed = false;
      completed_at = 0.;
      nack_tries = 0;
      last_nack = now;
      s_delivered = 0;
      s_gone = 0;
    }
  in
  Hashtbl.replace sh.sessions k s;
  Obs.Counter.incr sh.ctr.c_admitted;
  let live = Hashtbl.length sh.sessions in
  if live > sh.peak_sessions then sh.peak_sessions <- live;
  s

(* ---- control replies (queued; the main thread drains after pump) ---- *)

let queue_ctl t sh ~dst ~dst_port write =
  (match Pool.try_acquire sh.ctl_pool with
  | Some buf ->
      let len = write buf in
      let total = Ctl.seal_in_place t.config.integrity buf ~len in
      Queue.add
        {
          o_dst = dst;
          o_dst_port = dst_port;
          o_buf = Bytebuf.take buf total;
          o_release = (fun () -> Pool.release sh.ctl_pool buf);
        }
        sh.outbox
  | None ->
      Obs.Counter.incr sh.ctr.c_fallback_allocs;
      let buf = Bytebuf.create t.config.rx_buf_size in
      let len = write buf in
      let total = Ctl.seal_in_place t.config.integrity buf ~len in
      Queue.add
        {
          o_dst = dst;
          o_dst_port = dst_port;
          o_buf = Bytebuf.take buf total;
          o_release = ignore;
        }
        sh.outbox);
  let depth = Queue.length sh.outbox in
  if depth > sh.outbox_peak then sh.outbox_peak <- depth;
  Obs.Counter.incr sh.ctr.c_ctl_sent

let send_done t sh s =
  queue_ctl t sh ~dst:s.key.peer ~dst_port:s.key.peer_port (fun buf ->
      Ctl.write_done buf ~stream:s.key.stream);
  Obs.Counter.incr sh.ctr.c_dones

let maybe_complete t sh s =
  if (not s.completed) && s.total >= 0 && s.frontier >= s.total then begin
    s.completed <- true;
    s.completed_at <- Rt.Sched.now t.sched;
    send_done t sh s;
    match t.on_complete with
    | Some f -> f s.key ~delivered:s.s_delivered ~gone:s.s_gone
    | None -> ()
  end

(* ---- stage 2 + delivery ---- *)

(* Returns the drop reason when the unit must not count as served —
   today only [Auth]; [None] covers both delivery and the benign
   duplicate short-circuit. *)
let deliver_adu t sh s adu =
  let index = adu.Adu.name.Adu.index in
  if settled s index then begin
    Obs.Counter.incr sh.ctr.c_dups;
    None
  end
  else
    (* The record layer opens in place over the borrowed payload — one
       fused MAC+decrypt pass on the shard domain — before any stage-2
       work sees the bytes. A failure is a counted [Auth] drop, and the
       index is un-retired so NACK repair can fetch the genuine bytes. *)
    let opened =
      match sh.sh_secure with
      | None -> Ok adu
      | Some rc -> (
          match Secure.Record.open_payload rc adu.Adu.name adu.Adu.payload with
          | Ok ct -> Ok (Adu.make adu.Adu.name ct)
          | Error _ -> Error Ingress.Auth)
    in
    match opened with
    | Error reason ->
        (match s.reasm with
        | Some r -> Framing.unretire r ~index
        | None -> ());
        Some reason
    | Ok adu ->
    let payload = adu.Adu.payload in
    let plen = Bytebuf.length payload in
    (match t.stage2_prog with
    | Some prog ->
        (* Lazy stage 2: same plan transform into the shard scratch, but
           a validate pass instead of a decode — the on_view hook reads
           fields on demand over the scratch bytes. Byzantine payloads
           land in [view_invalid], never an exception. *)
        let r =
          if plen <= Bytebuf.length sh.scratch then
            Ilp.run_view
              ~dst:(Bytebuf.take sh.scratch plen)
              t.config.stage2_plan prog payload
          else begin
            Obs.Counter.incr sh.ctr.c_fallback_allocs;
            Ilp.run_view t.config.stage2_plan prog payload
          end
        in
        (match r.Ilp.view with
        | Ok (view, _) ->
            Obs.Counter.incr sh.ctr.c_views;
            (match t.on_view with Some f -> f s.key view | None -> ())
        | Error _ -> Obs.Counter.incr sh.ctr.c_view_invalid)
    | None ->
        if plen > 0 then
          if plen <= Bytebuf.length sh.scratch then
            ignore
              (Ilp.run_fused
                 ~dst:(Bytebuf.take sh.scratch plen)
                 t.config.stage2_plan payload)
          else begin
            Obs.Counter.incr sh.ctr.c_fallback_allocs;
            ignore (Ilp.run_fused t.config.stage2_plan payload)
          end);
    Hashtbl.replace s.ahead index true;
    s.s_delivered <- s.s_delivered + 1;
    Obs.Counter.incr sh.ctr.c_delivered;
    Obs.Counter.add sh.ctr.c_bytes plen;
    if index > s.highest then s.highest <- index;
    (match t.on_adu with Some f -> f s.key adu | None -> ());
    advance s;
    maybe_complete t sh s;
    None

(* ---- per-datagram dispatch (inside a shard task) ----

   Every handler returns [Some reason] (the datagram was dropped, count
   it under that one reason) or [None] (accepted). Handlers are total:
   the [Dispatch_error] guard in {!process_pending} is a last resort,
   not a code path. *)

(* Admission gate for a datagram that would create a session: refused
   outright in brownout, then rate-limited per peer. Returns the session
   or the drop reason. *)
let gated_admit t sh k now =
  match Hashtbl.find_opt sh.sessions k with
  | Some s -> Ok s
  | None ->
      if t.load = Brownout then Error Ingress.Shed
      else if
        not
          (Police.allow sh.admit_police
             ~key:(Demux.hash ~peer:k.peer ~peer_port:k.peer_port ~stream:0)
             ~now)
      then Error Ingress.Policed_new
      else Ok (admit t sh k now)

let handle_fragment t sh now ~src ~src_port body =
  match Framing.parse_fragment_res body with
  | Error _ -> Some Ingress.Frag_header
  | Ok frag -> (
      let k = { peer = src; peer_port = src_port; stream = frag.Framing.stream } in
      match gated_admit t sh k now with
      | Error reason -> Some reason
      | Ok s ->
          s.last_rx <- now;
          if settled s frag.Framing.index then begin
            Obs.Counter.incr sh.ctr.c_dups;
            None
          end
          else if frag.Framing.index >= s.frontier + t.config.max_ahead_window
          then
            (* Beyond the admission window: a forged index would otherwise
               grow the ahead table and stretch the repair scan without
               bound. Checked before [highest] moves, so a hostile index
               cannot poison the repair horizon either. *)
            Some Ingress.Window
          else begin
            if frag.Framing.index > s.highest then
              s.highest <- frag.Framing.index;
            if frag.Framing.nfrags = 1 then (
              (* The single-fragment fast path: the whole encoded ADU is
                 already in the staged datagram — decode the view, no
                 reassembler, no copy. *)
              match Adu.decode_view_res frag.Framing.chunk with
              | Error _ -> Some Ingress.Bad_adu
              | Ok adu -> deliver_adu t sh s adu)
            else begin
              let r =
                match s.reasm with
                | Some r -> r
                | None ->
                    let r =
                      Framing.reassembler ~pool:sh.reasm_pool
                        ~deliver:(fun adu ->
                          sh.pending_reason <- deliver_adu t sh s adu)
                        ()
                    in
                    s.reasm <- Some r;
                    r
              in
              (* [push] reports malformed outcomes through its stats; the
                 deltas attribute this datagram to exactly one reason. *)
              let st = Framing.stats r in
              let dups0 = st.Framing.duplicate_frags in
              let corrupt0 = st.Framing.corrupt_adus in
              let inconsistent0 = st.Framing.inconsistent_frags in
              sh.pending_reason <- None;
              Framing.push r frag;
              if st.Framing.corrupt_adus > corrupt0 then Some Ingress.Bad_adu
              else if st.Framing.inconsistent_frags > inconsistent0 then
                Some Ingress.Frag_header
              else begin
                if st.Framing.duplicate_frags > dups0 then
                  Obs.Counter.incr sh.ctr.c_dups;
                (* A completing push may have surfaced a delivery-time
                   drop (record auth): charge this datagram with it. *)
                sh.pending_reason
              end
            end
          end)

let handle_control t sh now ~src ~src_port body =
  if
    not
      (Police.allow sh.ctl_police
         ~key:(Demux.hash ~peer:src ~peer_port:src_port ~stream:0)
         ~now)
  then Some Ingress.Policed_ctl
  else
    match Ctl.parse body with
    | None -> Some Ingress.Ctl_malformed
    | Some (Ctl.Close { stream; total }) -> (
        match
          gated_admit t sh { peer = src; peer_port = src_port; stream } now
        with
        | Error reason -> Some reason
        | Ok s ->
            s.last_rx <- now;
            if s.total < 0 then s.total <- max total 0;
            (* A CLOSE landing after completion means our DONE was lost. *)
            if s.completed then send_done t sh s else maybe_complete t sh s;
            None)
    | Some (Ctl.Gone { stream; indices }) -> (
        match
          gated_admit t sh { peer = src; peer_port = src_port; stream } now
        with
        | Error reason -> Some reason
        | Ok s ->
            s.last_rx <- now;
            List.iter
              (fun i ->
                (* Same admission window as fragments: forged GONE indices
                   must not grow the ahead table or move [highest]. *)
                if
                  i >= 0
                  && i < s.frontier + t.config.max_ahead_window
                  && not (settled s i)
                then begin
                  Hashtbl.replace s.ahead i false;
                  s.s_gone <- s.s_gone + 1;
                  Obs.Counter.incr sh.ctr.c_gone;
                  if i > s.highest then s.highest <- i
                end)
              indices;
            advance s;
            maybe_complete t sh s;
            None)
    | Some (Ctl.Nack _) | Some (Ctl.Done _) -> None

let dispatch t sh now p =
  match Ctl.unseal t.config.integrity p.p_buf with
  | None -> Some Ingress.Bad_crc
  | Some body ->
      if Bytebuf.length body = 0 then Some Ingress.Runt
      else
        let b0 = Bytebuf.get_uint8 body 0 in
        if b0 = Framing.frag_magic then
          handle_fragment t sh now ~src:p.p_src ~src_port:p.p_src_port body
        else if b0 = Ctl.tag_fec then Some Ingress.Fec_unsupported
        else handle_control t sh now ~src:p.p_src ~src_port:p.p_src_port body

let process_pending t sh now p =
  Obs.Counter.incr sh.ctr.c_datagrams;
  match dispatch t sh now p with
  | None -> Obs.Counter.incr sh.ctr.c_accepted
  | Some reason -> count_drop sh reason
  | exception _ ->
      (* The last-resort guard the satellite audit demands: a dispatch
         bug costs one counted datagram, never the server. *)
      count_drop sh Ingress.Dispatch_error

let process_shard t sh =
  Mutex.lock sh.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.lock)
    (fun () ->
      let now = Rt.Sched.now t.sched in
      while not (Queue.is_empty sh.inbox) do
        let p = Queue.pop sh.inbox in
        process_pending t sh now p;
        p.p_release ()
      done)

(* ---- ingest (main thread: the bound handler or a test driver) ---- *)

let ingest t ~src ~src_port buf =
  let len = Bytebuf.length buf in
  (* Route first (runts land on shard 0) so that every arrival — and the
     accept or single drop reason it resolves to — is charged to exactly
     one shard: per-shard [arrivals = accepted + Σ drops] holds by
     construction. *)
  let sh =
    match Demux.stream_of_datagram buf with
    | None -> t.shards.(0)
    | Some stream ->
        t.shards.(Demux.shard_of ~shards:t.config.shards ~peer:src
                    ~peer_port:src_port ~stream)
  in
  Obs.Counter.incr sh.ctr.c_arrivals;
  let verdict =
    if t.config.ingress_validation then Ingress.validate t.limits buf
    else if len < 3 then Ingress.Reject Ingress.Runt
    else if len > t.config.rx_buf_size then Ingress.Reject Ingress.Oversize
    else Ingress.Accept 0
  in
  match verdict with
  | Ingress.Reject reason -> count_drop sh reason
  | Ingress.Accept _ -> (
      match Pool.try_acquire sh.rx_pool with
      | None ->
          (* The shard's staging budget is spent: admission control by
             backpressure, counted, never blocking the ingest thread. *)
          count_drop sh Ingress.Backpressure
      | Some staging ->
          Bytebuf.blit ~src:buf ~src_pos:0 ~dst:staging ~dst_pos:0 ~len;
          Mutex.lock sh.lock;
          Queue.add
            {
              p_src = src;
              p_src_port = src_port;
              p_buf = Bytebuf.take staging len;
              p_release = (fun () -> Pool.release sh.rx_pool staging);
            }
            sh.inbox;
          let depth = Queue.length sh.inbox in
          if depth > sh.inbox_peak then sh.inbox_peak <- depth;
          Mutex.unlock sh.lock)

(* ---- outbox drain (main thread only: substrates are not thread-safe) ---- *)

let drain_outboxes t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      while not (Queue.is_empty sh.outbox) do
        let m = Queue.pop sh.outbox in
        (match t.io with
        | Some io ->
            ignore
              (io.Dgram.send ~dst:m.o_dst ~dst_port:m.o_dst_port
                 ~src_port:t.config.port m.o_buf)
        | None -> ());
        m.o_release ()
      done;
      Mutex.unlock sh.lock)
    t.shards

let pump t =
  let busy =
    Array.to_list t.shards
    |> List.filter (fun sh -> not (Queue.is_empty sh.inbox))
  in
  (match (busy, t.pool) with
  | [], _ -> ()
  | [ sh ], _ -> process_shard t sh
  | shs, Some pool when Par.Pool.size pool > 1 ->
      Par.Pool.run pool
        (Array.of_list (List.map (fun sh () -> process_shard t sh) shs))
  | shs, _ -> List.iter (fun sh -> process_shard t sh) shs);
  drain_outboxes t

(* ---- harvest: idle/lingering eviction + NACK repair ---- *)

let repair t sh s now =
  let bound = if s.total >= 0 then s.total else s.highest + 1 in
  (* Clamp to the admission window: [total] is an attacker-supplied u32,
     and an unclamped bound would turn the give-up loop below into a
     4-billion-iteration stall on one hostile CLOSE. *)
  let bound = min bound (s.frontier + t.config.max_ahead_window) in
  if s.frontier < bound then begin
    let holdoff =
      t.config.nack_holdoff *. float_of_int (1 lsl min s.nack_tries 6)
    in
    if now -. s.last_nack >= holdoff then
      if s.nack_tries >= t.config.nack_budget then begin
        (* Repair budget spent: declare the rest locally gone so the
           session can settle instead of hanging — the loss is reported
           in application terms, exactly like a sender GONE. *)
        for i = s.frontier to bound - 1 do
          if not (settled s i) then begin
            Hashtbl.replace s.ahead i false;
            s.s_gone <- s.s_gone + 1;
            Obs.Counter.incr sh.ctr.c_gone_local
          end
        done;
        advance s;
        maybe_complete t sh s
      end
      else begin
        (* Fit the NACK in one pooled control buffer: 13-byte body header,
           4 bytes per index, 4-byte trailer. *)
        let cap = min 256 ((t.config.rx_buf_size - 17) / 4) in
        let missing = ref [] and n = ref 0 in
        let i = ref (bound - 1) in
        while !i >= s.frontier && !n < cap do
          if not (settled s !i) then begin
            missing := !i :: !missing;
            incr n
          end;
          decr i
        done;
        if !missing <> [] then begin
          queue_ctl t sh ~dst:s.key.peer ~dst_port:s.key.peer_port (fun buf ->
              Ctl.write_nack buf ~stream:s.key.stream ~have_below:s.frontier
                !missing);
          Obs.Counter.incr sh.ctr.c_nacks;
          s.nack_tries <- s.nack_tries + 1;
          s.last_nack <- now
        end
      end
  end

(* Shedding tightens the timers (completed sessions go immediately,
   idle ones in half the time); brownout halves them again and — via
   {!gated_admit} — refuses new admissions entirely. Completed-first
   ordering is already {!evict_one}'s victim policy, so the ladder is
   completed-first → LRU → new-admission refusal, as load rises. *)
let effective_linger t =
  match t.load with Normal -> t.config.done_linger | Shedding | Brownout -> 0.

let effective_idle t =
  match t.load with
  | Normal -> t.config.idle_timeout
  | Shedding -> t.config.idle_timeout /. 2.
  | Brownout -> t.config.idle_timeout /. 4.

(* Returns the shard's staging occupancy since the last harvest: the
   larger of inbox depth against the rx budget and outbox depth against
   the ctl budget, as a fraction. Peaks reset so each harvest sees one
   interval's pressure. *)
let harvest_shard t sh now =
  Mutex.lock sh.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.lock)
    (fun () ->
      let linger = effective_linger t and idle = effective_idle t in
      let expired = ref [] in
      Hashtbl.iter
        (fun _ s ->
          if s.completed then begin
            if now -. s.completed_at >= linger then expired := s :: !expired
          end
          else if now -. s.last_rx >= idle then expired := s :: !expired
          else repair t sh s now)
        sh.sessions;
      List.iter
        (fun s ->
          drop_session sh s;
          Obs.Counter.incr sh.ctr.c_harvested)
        !expired;
      let occ =
        Float.max
          (float_of_int sh.inbox_peak
          /. float_of_int (max 1 t.config.rx_bufs_per_shard))
          (float_of_int sh.outbox_peak
          /. float_of_int (max 1 t.config.ctl_bufs_per_shard))
      in
      sh.inbox_peak <- 0;
      sh.outbox_peak <- 0;
      occ)

(* Deterministic hysteresis: the occupancy signal proposes a target
   state; the engine moves one level at a time, and only after the same
   proposal held for [load_ticks] consecutive harvests. The middle band
   (between [load_lo] and [shed_hi]) proposes at most Shedding, so
   Brownout — which refuses the admissions that would keep staging busy —
   always has a way back down. *)
let update_load t occ =
  let target =
    if occ >= t.config.brown_hi then Brownout
    else if occ >= t.config.shed_hi then Shedding
    else if occ <= t.config.load_lo then Normal
    else if t.load = Normal then Normal
    else Shedding
  in
  if target = t.load then begin
    t.load_pending <- t.load;
    t.load_streak <- 0
  end
  else begin
    if target = t.load_pending then t.load_streak <- t.load_streak + 1
    else begin
      t.load_pending <- target;
      t.load_streak <- 1
    end;
    if t.load_streak >= t.config.load_ticks then begin
      let step a b = if b > a then a + 1 else a - 1 in
      let next =
        match
          step (load_state_index t.load) (load_state_index target)
        with
        | 0 -> Normal
        | 1 -> Shedding
        | _ -> Brownout
      in
      t.load <- next;
      t.load_streak <- 0;
      t.load_pending <- target
    end
  end

let harvest t =
  let now = Rt.Sched.now t.sched in
  let occ =
    Array.fold_left
      (fun acc sh -> Float.max acc (harvest_shard t sh now))
      0. t.shards
  in
  update_load t occ;
  drain_outboxes t

let rec arm_harvest t =
  if t.config.harvest_interval > 0. && not t.stopped then
    t.harvest_timer <-
      Some
        (Rt.Sched.schedule_after t.sched t.config.harvest_interval (fun () ->
             if not t.stopped then begin
               harvest t;
               arm_harvest t
             end))

let stop t =
  t.stopped <- true;
  (match t.harvest_timer with Some tm -> Rt.Sched.cancel tm | None -> ());
  t.harvest_timer <- None

let create ~sched ?io ?pool ?registry ?on_adu ?on_view ?on_complete
    ?(config = default_config) () =
  if config.shards < 1 then invalid_arg "Server.create: shards";
  if config.max_sessions_per_shard < 1 then
    invalid_arg "Server.create: max_sessions_per_shard";
  if config.rx_buf_size < Framing.fragment_header_size + Ctl.trailer_size then
    invalid_arg "Server.create: rx_buf_size";
  if config.max_ahead_window < 1 then
    invalid_arg "Server.create: max_ahead_window";
  let shards = Array.init config.shards (make_shard config registry) in
  let limits =
    {
      Ingress.trailer =
        (match config.integrity with Some _ -> Ctl.trailer_size | None -> 0);
      max_len = config.rx_buf_size;
      max_total_len = config.max_adu + Adu.header_size;
    }
  in
  let t =
    {
      config;
      sched;
      io;
      pool;
      shards;
      limits;
      on_adu;
      on_view;
      stage2_prog = Option.map Wire.Schema.prog_of_xdr config.stage2_schema;
      on_complete;
      load = Normal;
      load_pending = Normal;
      load_streak = 0;
      harvest_timer = None;
      stopped = false;
    }
  in
  Obs.Registry.pull ?registry
    (config.obs_prefix ^ ".load_state")
    (fun () -> float_of_int (load_state_index t.load));
  Array.iter
    (fun r ->
      let i = Ingress.reason_index r in
      Obs.Registry.pull ?registry
        (config.obs_prefix ^ ".drop." ^ Ingress.reason_name r)
        (fun () ->
          float_of_int
            (Array.fold_left
               (fun acc sh -> acc + Obs.Counter.value sh.ctr.c_drops.(i))
               0 t.shards)))
    Ingress.all_reasons;
  (match io with
  | Some io ->
      io.Dgram.bind ~port:config.port (fun ~src ~src_port buf ->
          ingest t ~src ~src_port buf)
  | None -> ());
  arm_harvest t;
  t

(* ---- observation ---- *)

type snapshot = {
  arrivals : int;
  accepted : int;
  datagrams : int;
  delivered : int;
  delivered_bytes : int;
  gone : int;
  gone_local : int;
  dups : int;
  admitted : int;
  evicted : int;
  harvested : int;
  ctl_sent : int;
  nacks : int;
  dones : int;
  fallback_allocs : int;
  views : int;  (* validated lazy views handed to on_view *)
  view_invalid : int;  (* payloads failing schema validation *)
  drops : int array;  (* indexed by Ingress.reason_index *)
  dropped : int;  (* Σ drops *)
}

let snapshot_of_counters c =
  let v = Obs.Counter.value in
  let drops = Array.map v c.c_drops in
  {
    arrivals = v c.c_arrivals;
    accepted = v c.c_accepted;
    datagrams = v c.c_datagrams;
    delivered = v c.c_delivered;
    delivered_bytes = v c.c_bytes;
    gone = v c.c_gone;
    gone_local = v c.c_gone_local;
    dups = v c.c_dups;
    admitted = v c.c_admitted;
    evicted = v c.c_evicted;
    harvested = v c.c_harvested;
    ctl_sent = v c.c_ctl_sent;
    nacks = v c.c_nacks;
    dones = v c.c_dones;
    fallback_allocs = v c.c_fallback_allocs;
    views = v c.c_views;
    view_invalid = v c.c_view_invalid;
    drops;
    dropped = Array.fold_left ( + ) 0 drops;
  }

let add_snapshot a b =
  {
    arrivals = a.arrivals + b.arrivals;
    accepted = a.accepted + b.accepted;
    datagrams = a.datagrams + b.datagrams;
    delivered = a.delivered + b.delivered;
    delivered_bytes = a.delivered_bytes + b.delivered_bytes;
    gone = a.gone + b.gone;
    gone_local = a.gone_local + b.gone_local;
    dups = a.dups + b.dups;
    admitted = a.admitted + b.admitted;
    evicted = a.evicted + b.evicted;
    harvested = a.harvested + b.harvested;
    ctl_sent = a.ctl_sent + b.ctl_sent;
    nacks = a.nacks + b.nacks;
    dones = a.dones + b.dones;
    fallback_allocs = a.fallback_allocs + b.fallback_allocs;
    views = a.views + b.views;
    view_invalid = a.view_invalid + b.view_invalid;
    drops = Array.init Ingress.reason_count (fun i -> a.drops.(i) + b.drops.(i));
    dropped = a.dropped + b.dropped;
  }

let zero_snapshot =
  {
    arrivals = 0;
    accepted = 0;
    datagrams = 0;
    delivered = 0;
    delivered_bytes = 0;
    gone = 0;
    gone_local = 0;
    dups = 0;
    admitted = 0;
    evicted = 0;
    harvested = 0;
    ctl_sent = 0;
    nacks = 0;
    dones = 0;
    fallback_allocs = 0;
    views = 0;
    view_invalid = 0;
    drops = Array.make Ingress.reason_count 0;
    dropped = 0;
  }

let drop_count t reason =
  let i = Ingress.reason_index reason in
  Array.fold_left
    (fun acc sh -> acc + Obs.Counter.value sh.ctr.c_drops.(i))
    0 t.shards

let malformed_drops s =
  Array.fold_left ( + ) 0
    (Array.map
       (fun r ->
         if Ingress.is_malformed r then s.drops.(Ingress.reason_index r) else 0)
       Ingress.all_reasons)

let shard_count t = Array.length t.shards
let shard_snapshot t sid = snapshot_of_counters t.shards.(sid).ctr

let totals t =
  Array.fold_left
    (fun acc sh -> add_snapshot acc (snapshot_of_counters sh.ctr))
    zero_snapshot t.shards

let shard_sessions t sid = Hashtbl.length t.shards.(sid).sessions

let live_sessions t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sessions) 0 t.shards

let peak_sessions t =
  Array.fold_left (fun acc sh -> acc + sh.peak_sessions) 0 t.shards

let pool_allocated t =
  Array.fold_left
    (fun acc sh ->
      acc
      + (Pool.stats sh.rx_pool).Pool.allocated
      + (Pool.stats sh.ctl_pool).Pool.allocated
      + (Pool.stats sh.reasm_pool).Pool.allocated)
    0 t.shards

let data_pool_allocated t =
  Array.fold_left
    (fun acc sh ->
      acc
      + (Pool.stats sh.rx_pool).Pool.allocated
      + (Pool.stats sh.reasm_pool).Pool.allocated)
    0 t.shards

let pool_outstanding t =
  Array.fold_left
    (fun acc sh ->
      acc
      + (Pool.stats sh.rx_pool).Pool.outstanding
      + (Pool.stats sh.ctl_pool).Pool.outstanding
      + (Pool.stats sh.reasm_pool).Pool.outstanding)
    0 t.shards

let shard_of_key t ~peer ~peer_port ~stream =
  Demux.shard_of ~shards:t.config.shards ~peer ~peer_port ~stream

let locate t ~peer ~peer_port ~stream =
  let k = { peer; peer_port; stream } in
  let found = ref None in
  Array.iter
    (fun sh ->
      if !found = None && Hashtbl.mem sh.sessions k then found := Some sh.sid)
    t.shards;
  !found

type session_view = {
  v_frontier : int;
  v_total : int;
  v_delivered : int;
  v_gone : int;
  v_completed : bool;
  v_ahead_load : int;
}

let session_view t ~peer ~peer_port ~stream =
  let k = { peer; peer_port; stream } in
  let sid = shard_of_key t ~peer ~peer_port ~stream in
  match Hashtbl.find_opt t.shards.(sid).sessions k with
  | None -> None
  | Some s ->
      Some
        {
          v_frontier = s.frontier;
          v_total = s.total;
          v_delivered = s.s_delivered;
          v_gone = s.s_gone;
          v_completed = s.completed;
          v_ahead_load = Hashtbl.length s.ahead;
        }

let max_ahead_load t =
  Array.fold_left
    (fun acc sh ->
      Hashtbl.fold
        (fun _ s m -> max m (Hashtbl.length s.ahead))
        sh.sessions acc)
    0 t.shards
