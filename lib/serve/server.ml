open Bufkit
open Alf_core

type key = { peer : int; peer_port : int; stream : int }

type config = {
  port : int;
  shards : int;
  integrity : Checksum.Kind.t option;
  max_sessions_per_shard : int;
  rx_buf_size : int;
  rx_bufs_per_shard : int;
  ctl_bufs_per_shard : int;
  reasm_bufs_per_shard : int;
  max_adu : int;
  idle_timeout : float;
  done_linger : float;
  harvest_interval : float;
  nack_holdoff : float;
  nack_budget : int;
  stage2_plan : Ilp.plan;
  obs_prefix : string;
}

let default_config =
  {
    port = 7000;
    shards = 4;
    integrity = Some Checksum.Kind.Crc32;
    max_sessions_per_shard = 1 lsl 17;
    rx_buf_size = 2048;
    rx_bufs_per_shard = 1024;
    ctl_bufs_per_shard = 256;
    reasm_bufs_per_shard = 64;
    max_adu = 1 lsl 14;
    idle_timeout = 5.0;
    done_linger = 0.5;
    harvest_interval = 0.05;
    nack_holdoff = 0.06;
    nack_budget = 8;
    stage2_plan = [ Ilp.Checksum Checksum.Kind.Crc32; Ilp.Deliver_copy ];
    obs_prefix = "serve";
  }

type session = {
  key : key;
  mutable frontier : int;  (* everything below is delivered or gone *)
  mutable highest : int;  (* highest index seen, -1 before any *)
  mutable total : int;  (* from CLOSE; -1 while unknown *)
  ahead : (int, bool) Hashtbl.t;  (* index >= frontier -> delivered? *)
  mutable reasm : Framing.reassembler option;  (* multi-fragment only *)
  mutable last_rx : float;
  mutable completed : bool;
  mutable completed_at : float;
  mutable nack_tries : int;
  mutable last_nack : float;
  mutable s_delivered : int;
  mutable s_gone : int;
}

type pending = {
  p_src : int;
  p_src_port : int;
  p_buf : Bytebuf.t;
  p_release : unit -> unit;
}

type outmsg = {
  o_dst : int;
  o_dst_port : int;
  o_buf : Bytebuf.t;
  o_release : unit -> unit;
}

type counters = {
  c_datagrams : Obs.Counter.t;
  c_delivered : Obs.Counter.t;
  c_bytes : Obs.Counter.t;
  c_gone : Obs.Counter.t;
  c_gone_local : Obs.Counter.t;
  c_dups : Obs.Counter.t;
  c_corrupt : Obs.Counter.t;
  c_admitted : Obs.Counter.t;
  c_evicted : Obs.Counter.t;
  c_harvested : Obs.Counter.t;
  c_rx_dropped : Obs.Counter.t;
  c_ctl_sent : Obs.Counter.t;
  c_nacks : Obs.Counter.t;
  c_dones : Obs.Counter.t;
  c_fallback_allocs : Obs.Counter.t;
  c_fec_dropped : Obs.Counter.t;
}

type shard = {
  sid : int;
  lock : Mutex.t;
  sessions : (key, session) Hashtbl.t;
  inbox : pending Queue.t;
  outbox : outmsg Queue.t;
  rx_pool : Pool.t;
  ctl_pool : Pool.t;
  reasm_pool : Pool.t;
  scratch : Bytebuf.t;  (* stage-2 destination, one per shard domain *)
  ctr : counters;
  mutable peak_sessions : int;
}

type t = {
  config : config;
  sched : Rt.Sched.t;
  io : Dgram.t option;
  pool : Par.Pool.t option;
  shards : shard array;
  on_adu : (key -> Adu.t -> unit) option;
  mutable harvest_timer : Rt.Sched.timer option;
  mutable stopped : bool;
}

(* The memory budget is allocated up front: fill each pool's free list at
   create so steady state never sees a fresh buffer — the zero-allocation
   gate then measures the hot path, not warm-up timing. *)
let warm pool n =
  List.init n (fun _ -> Pool.try_acquire pool)
  |> List.iter (function Some b -> Pool.release pool b | None -> ())

let make_shard config registry sid =
  let c name =
    Obs.Registry.counter ?registry
      (Printf.sprintf "%s.shard%d.%s" config.obs_prefix sid name)
  in
  let sessions = Hashtbl.create 256 in
  Obs.Registry.pull ?registry
    (Printf.sprintf "%s.shard%d.sessions" config.obs_prefix sid)
    (fun () -> float_of_int (Hashtbl.length sessions));
  let rx_pool =
    Pool.create ~capacity:config.rx_bufs_per_shard
      ~max_outstanding:config.rx_bufs_per_shard ~buf_size:config.rx_buf_size
      ()
  in
  let ctl_pool =
    Pool.create ~capacity:config.ctl_bufs_per_shard
      ~max_outstanding:config.ctl_bufs_per_shard ~buf_size:config.rx_buf_size
      ()
  in
  let reasm_pool =
    Pool.create ~capacity:config.reasm_bufs_per_shard
      ~buf_size:(config.max_adu + Adu.header_size) ()
  in
  warm rx_pool config.rx_bufs_per_shard;
  warm ctl_pool config.ctl_bufs_per_shard;
  warm reasm_pool config.reasm_bufs_per_shard;
  {
    sid;
    lock = Mutex.create ();
    sessions;
    inbox = Queue.create ();
    outbox = Queue.create ();
    rx_pool;
    ctl_pool;
    reasm_pool;
    scratch = Bytebuf.create config.max_adu;
    ctr =
      {
        c_datagrams = c "datagrams";
        c_delivered = c "delivered";
        c_bytes = c "delivered_bytes";
        c_gone = c "gone";
        c_gone_local = c "gone_local";
        c_dups = c "dups";
        c_corrupt = c "corrupt";
        c_admitted = c "admitted";
        c_evicted = c "evicted";
        c_harvested = c "harvested";
        c_rx_dropped = c "rx_dropped";
        c_ctl_sent = c "ctl_sent";
        c_nacks = c "nacks";
        c_dones = c "dones";
        c_fallback_allocs = c "fallback_allocs";
        c_fec_dropped = c "fec_dropped";
      };
    peak_sessions = 0;
  }

(* ---- session bookkeeping (all under the owning shard's lock) ---- *)

let settled s index = index < s.frontier || Hashtbl.mem s.ahead index

let advance s =
  let start = s.frontier in
  while Hashtbl.mem s.ahead s.frontier do
    Hashtbl.remove s.ahead s.frontier;
    s.frontier <- s.frontier + 1
  done;
  if s.frontier > start then
    match s.reasm with
    | Some r -> Framing.retire_below r ~bound:s.frontier
    | None -> ()

let drop_session sh s =
  (match s.reasm with
  | Some r -> Framing.retire_below r ~bound:(s.highest + 1)
  | None -> ());
  Hashtbl.reset s.ahead;
  Hashtbl.remove sh.sessions s.key

(* Victim choice when a shard is at capacity: a completed session that is
   merely lingering for a late re-CLOSE beats any live one; among
   completed, the longest-done; among live, the longest-idle (LRU). *)
let evict_one sh =
  let victim =
    Hashtbl.fold
      (fun _ s best ->
        match best with
        | None -> Some s
        | Some b ->
            let better =
              if s.completed <> b.completed then s.completed
              else if s.completed then s.completed_at < b.completed_at
              else s.last_rx < b.last_rx
            in
            if better then Some s else best)
      sh.sessions None
  in
  match victim with
  | Some s ->
      drop_session sh s;
      Obs.Counter.incr sh.ctr.c_evicted
  | None -> ()

let admit t sh k now =
  if Hashtbl.length sh.sessions >= t.config.max_sessions_per_shard then
    evict_one sh;
  let s =
    {
      key = k;
      frontier = 0;
      highest = -1;
      total = -1;
      ahead = Hashtbl.create 8;
      reasm = None;
      last_rx = now;
      completed = false;
      completed_at = 0.;
      nack_tries = 0;
      last_nack = now;
      s_delivered = 0;
      s_gone = 0;
    }
  in
  Hashtbl.replace sh.sessions k s;
  Obs.Counter.incr sh.ctr.c_admitted;
  let live = Hashtbl.length sh.sessions in
  if live > sh.peak_sessions then sh.peak_sessions <- live;
  s

let find_or_admit t sh k now =
  match Hashtbl.find_opt sh.sessions k with
  | Some s -> s
  | None -> admit t sh k now

(* ---- control replies (queued; the main thread drains after pump) ---- *)

let queue_ctl t sh ~dst ~dst_port write =
  (match Pool.try_acquire sh.ctl_pool with
  | Some buf ->
      let len = write buf in
      let total = Ctl.seal_in_place t.config.integrity buf ~len in
      Queue.add
        {
          o_dst = dst;
          o_dst_port = dst_port;
          o_buf = Bytebuf.take buf total;
          o_release = (fun () -> Pool.release sh.ctl_pool buf);
        }
        sh.outbox
  | None ->
      Obs.Counter.incr sh.ctr.c_fallback_allocs;
      let buf = Bytebuf.create t.config.rx_buf_size in
      let len = write buf in
      let total = Ctl.seal_in_place t.config.integrity buf ~len in
      Queue.add
        {
          o_dst = dst;
          o_dst_port = dst_port;
          o_buf = Bytebuf.take buf total;
          o_release = ignore;
        }
        sh.outbox);
  Obs.Counter.incr sh.ctr.c_ctl_sent

let send_done t sh s =
  queue_ctl t sh ~dst:s.key.peer ~dst_port:s.key.peer_port (fun buf ->
      Ctl.write_done buf ~stream:s.key.stream);
  Obs.Counter.incr sh.ctr.c_dones

let maybe_complete t sh s =
  if (not s.completed) && s.total >= 0 && s.frontier >= s.total then begin
    s.completed <- true;
    s.completed_at <- Rt.Sched.now t.sched;
    send_done t sh s
  end

(* ---- stage 2 + delivery ---- *)

let deliver_adu t sh s adu =
  let index = adu.Adu.name.Adu.index in
  if settled s index then Obs.Counter.incr sh.ctr.c_dups
  else begin
    let payload = adu.Adu.payload in
    let plen = Bytebuf.length payload in
    if plen > 0 then
      if plen <= Bytebuf.length sh.scratch then
        ignore
          (Ilp.run_fused
             ~dst:(Bytebuf.take sh.scratch plen)
             t.config.stage2_plan payload)
      else begin
        Obs.Counter.incr sh.ctr.c_fallback_allocs;
        ignore (Ilp.run_fused t.config.stage2_plan payload)
      end;
    Hashtbl.replace s.ahead index true;
    s.s_delivered <- s.s_delivered + 1;
    Obs.Counter.incr sh.ctr.c_delivered;
    Obs.Counter.add sh.ctr.c_bytes plen;
    if index > s.highest then s.highest <- index;
    (match t.on_adu with Some f -> f s.key adu | None -> ());
    advance s;
    maybe_complete t sh s
  end

(* ---- per-datagram dispatch (inside a shard task) ---- *)

let handle_fragment t sh now ~src ~src_port body =
  match Framing.parse_fragment body with
  | exception Framing.Frag_error _ -> Obs.Counter.incr sh.ctr.c_corrupt
  | frag ->
      let k = { peer = src; peer_port = src_port; stream = frag.Framing.stream } in
      let s = find_or_admit t sh k now in
      s.last_rx <- now;
      if frag.Framing.index > s.highest then s.highest <- frag.Framing.index;
      if settled s frag.Framing.index then Obs.Counter.incr sh.ctr.c_dups
      else if frag.Framing.nfrags = 1 then (
        (* The single-fragment fast path: the whole encoded ADU is already
           in the staged datagram — decode the view, no reassembler, no
           copy. *)
        match Adu.decode_view frag.Framing.chunk with
        | exception Adu.Decode_error _ -> Obs.Counter.incr sh.ctr.c_corrupt
        | adu -> deliver_adu t sh s adu)
      else begin
        let r =
          match s.reasm with
          | Some r -> r
          | None ->
              let r =
                Framing.reassembler ~pool:sh.reasm_pool
                  ~deliver:(fun adu -> deliver_adu t sh s adu)
                  ()
              in
              s.reasm <- Some r;
              r
        in
        Framing.push r frag
      end

let handle_control t sh now ~src ~src_port body =
  match Ctl.parse body with
  | Some (Ctl.Close { stream; total }) ->
      let s =
        find_or_admit t sh { peer = src; peer_port = src_port; stream } now
      in
      s.last_rx <- now;
      if s.total < 0 then s.total <- max total 0;
      (* A CLOSE landing after completion means our DONE was lost. *)
      if s.completed then send_done t sh s else maybe_complete t sh s
  | Some (Ctl.Gone { stream; indices }) ->
      let s =
        find_or_admit t sh { peer = src; peer_port = src_port; stream } now
      in
      s.last_rx <- now;
      List.iter
        (fun i ->
          if i >= 0 && not (settled s i) then begin
            Hashtbl.replace s.ahead i false;
            s.s_gone <- s.s_gone + 1;
            Obs.Counter.incr sh.ctr.c_gone;
            if i > s.highest then s.highest <- i
          end)
        indices;
      advance s;
      maybe_complete t sh s
  | Some (Ctl.Nack _) | Some (Ctl.Done _) | None -> ()

let process_pending t sh now p =
  Obs.Counter.incr sh.ctr.c_datagrams;
  match Ctl.unseal t.config.integrity p.p_buf with
  | None -> Obs.Counter.incr sh.ctr.c_corrupt
  | Some body ->
      if Bytebuf.length body = 0 then Obs.Counter.incr sh.ctr.c_corrupt
      else
        let b0 = Bytebuf.get_uint8 body 0 in
        if b0 = Framing.frag_magic then
          handle_fragment t sh now ~src:p.p_src ~src_port:p.p_src_port body
        else if b0 = Ctl.tag_fec then Obs.Counter.incr sh.ctr.c_fec_dropped
        else handle_control t sh now ~src:p.p_src ~src_port:p.p_src_port body

let process_shard t sh =
  Mutex.lock sh.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.lock)
    (fun () ->
      let now = Rt.Sched.now t.sched in
      while not (Queue.is_empty sh.inbox) do
        let p = Queue.pop sh.inbox in
        process_pending t sh now p;
        p.p_release ()
      done)

(* ---- ingest (main thread: the bound handler or a test driver) ---- *)

let ingest t ~src ~src_port buf =
  let len = Bytebuf.length buf in
  match Demux.stream_of_datagram buf with
  | None -> Obs.Counter.incr t.shards.(0).ctr.c_rx_dropped
  | Some stream ->
      let sid =
        Demux.shard_of ~shards:t.config.shards ~peer:src ~peer_port:src_port
          ~stream
      in
      let sh = t.shards.(sid) in
      if len > t.config.rx_buf_size then Obs.Counter.incr sh.ctr.c_rx_dropped
      else (
        match Pool.try_acquire sh.rx_pool with
        | None ->
            (* The shard's staging budget is spent: admission control by
               backpressure, counted, never blocking the ingest thread. *)
            Obs.Counter.incr sh.ctr.c_rx_dropped
        | Some staging ->
            Bytebuf.blit ~src:buf ~src_pos:0 ~dst:staging ~dst_pos:0 ~len;
            Mutex.lock sh.lock;
            Queue.add
              {
                p_src = src;
                p_src_port = src_port;
                p_buf = Bytebuf.take staging len;
                p_release = (fun () -> Pool.release sh.rx_pool staging);
              }
              sh.inbox;
            Mutex.unlock sh.lock)

(* ---- outbox drain (main thread only: substrates are not thread-safe) ---- *)

let drain_outboxes t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      while not (Queue.is_empty sh.outbox) do
        let m = Queue.pop sh.outbox in
        (match t.io with
        | Some io ->
            ignore
              (io.Dgram.send ~dst:m.o_dst ~dst_port:m.o_dst_port
                 ~src_port:t.config.port m.o_buf)
        | None -> ());
        m.o_release ()
      done;
      Mutex.unlock sh.lock)
    t.shards

let pump t =
  let busy =
    Array.to_list t.shards
    |> List.filter (fun sh -> not (Queue.is_empty sh.inbox))
  in
  (match (busy, t.pool) with
  | [], _ -> ()
  | [ sh ], _ -> process_shard t sh
  | shs, Some pool when Par.Pool.size pool > 1 ->
      Par.Pool.run pool
        (Array.of_list (List.map (fun sh () -> process_shard t sh) shs))
  | shs, _ -> List.iter (fun sh -> process_shard t sh) shs);
  drain_outboxes t

(* ---- harvest: idle/lingering eviction + NACK repair ---- *)

let repair t sh s now =
  let bound = if s.total >= 0 then s.total else s.highest + 1 in
  if s.frontier < bound then begin
    let holdoff =
      t.config.nack_holdoff *. float_of_int (1 lsl min s.nack_tries 6)
    in
    if now -. s.last_nack >= holdoff then
      if s.nack_tries >= t.config.nack_budget then begin
        (* Repair budget spent: declare the rest locally gone so the
           session can settle instead of hanging — the loss is reported
           in application terms, exactly like a sender GONE. *)
        for i = s.frontier to bound - 1 do
          if not (settled s i) then begin
            Hashtbl.replace s.ahead i false;
            s.s_gone <- s.s_gone + 1;
            Obs.Counter.incr sh.ctr.c_gone_local
          end
        done;
        advance s;
        maybe_complete t sh s
      end
      else begin
        (* Fit the NACK in one pooled control buffer: 13-byte body header,
           4 bytes per index, 4-byte trailer. *)
        let cap = min 256 ((t.config.rx_buf_size - 17) / 4) in
        let missing = ref [] and n = ref 0 in
        let i = ref (bound - 1) in
        while !i >= s.frontier && !n < cap do
          if not (settled s !i) then begin
            missing := !i :: !missing;
            incr n
          end;
          decr i
        done;
        if !missing <> [] then begin
          queue_ctl t sh ~dst:s.key.peer ~dst_port:s.key.peer_port (fun buf ->
              Ctl.write_nack buf ~stream:s.key.stream ~have_below:s.frontier
                !missing);
          Obs.Counter.incr sh.ctr.c_nacks;
          s.nack_tries <- s.nack_tries + 1;
          s.last_nack <- now
        end
      end
  end

let harvest_shard t sh now =
  Mutex.lock sh.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sh.lock)
    (fun () ->
      let expired = ref [] in
      Hashtbl.iter
        (fun _ s ->
          if s.completed then begin
            if now -. s.completed_at >= t.config.done_linger then
              expired := s :: !expired
          end
          else if now -. s.last_rx >= t.config.idle_timeout then
            expired := s :: !expired
          else repair t sh s now)
        sh.sessions;
      List.iter
        (fun s ->
          drop_session sh s;
          Obs.Counter.incr sh.ctr.c_harvested)
        !expired)

let harvest t =
  let now = Rt.Sched.now t.sched in
  Array.iter (fun sh -> harvest_shard t sh now) t.shards;
  drain_outboxes t

let rec arm_harvest t =
  if t.config.harvest_interval > 0. && not t.stopped then
    t.harvest_timer <-
      Some
        (Rt.Sched.schedule_after t.sched t.config.harvest_interval (fun () ->
             if not t.stopped then begin
               harvest t;
               arm_harvest t
             end))

let stop t =
  t.stopped <- true;
  (match t.harvest_timer with Some tm -> Rt.Sched.cancel tm | None -> ());
  t.harvest_timer <- None

let create ~sched ?io ?pool ?registry ?on_adu ?(config = default_config) () =
  if config.shards < 1 then invalid_arg "Server.create: shards";
  if config.max_sessions_per_shard < 1 then
    invalid_arg "Server.create: max_sessions_per_shard";
  if config.rx_buf_size < Framing.fragment_header_size + Ctl.trailer_size then
    invalid_arg "Server.create: rx_buf_size";
  let shards = Array.init config.shards (make_shard config registry) in
  let t =
    {
      config;
      sched;
      io;
      pool;
      shards;
      on_adu;
      harvest_timer = None;
      stopped = false;
    }
  in
  (match io with
  | Some io ->
      io.Dgram.bind ~port:config.port (fun ~src ~src_port buf ->
          ingest t ~src ~src_port buf)
  | None -> ());
  arm_harvest t;
  t

(* ---- observation ---- *)

type snapshot = {
  datagrams : int;
  delivered : int;
  delivered_bytes : int;
  gone : int;
  gone_local : int;
  dups : int;
  corrupt : int;
  admitted : int;
  evicted : int;
  harvested : int;
  rx_dropped : int;
  ctl_sent : int;
  nacks : int;
  dones : int;
  fallback_allocs : int;
  fec_dropped : int;
}

let snapshot_of_counters c =
  let v = Obs.Counter.value in
  {
    datagrams = v c.c_datagrams;
    delivered = v c.c_delivered;
    delivered_bytes = v c.c_bytes;
    gone = v c.c_gone;
    gone_local = v c.c_gone_local;
    dups = v c.c_dups;
    corrupt = v c.c_corrupt;
    admitted = v c.c_admitted;
    evicted = v c.c_evicted;
    harvested = v c.c_harvested;
    rx_dropped = v c.c_rx_dropped;
    ctl_sent = v c.c_ctl_sent;
    nacks = v c.c_nacks;
    dones = v c.c_dones;
    fallback_allocs = v c.c_fallback_allocs;
    fec_dropped = v c.c_fec_dropped;
  }

let add_snapshot a b =
  {
    datagrams = a.datagrams + b.datagrams;
    delivered = a.delivered + b.delivered;
    delivered_bytes = a.delivered_bytes + b.delivered_bytes;
    gone = a.gone + b.gone;
    gone_local = a.gone_local + b.gone_local;
    dups = a.dups + b.dups;
    corrupt = a.corrupt + b.corrupt;
    admitted = a.admitted + b.admitted;
    evicted = a.evicted + b.evicted;
    harvested = a.harvested + b.harvested;
    rx_dropped = a.rx_dropped + b.rx_dropped;
    ctl_sent = a.ctl_sent + b.ctl_sent;
    nacks = a.nacks + b.nacks;
    dones = a.dones + b.dones;
    fallback_allocs = a.fallback_allocs + b.fallback_allocs;
    fec_dropped = a.fec_dropped + b.fec_dropped;
  }

let zero_snapshot =
  {
    datagrams = 0;
    delivered = 0;
    delivered_bytes = 0;
    gone = 0;
    gone_local = 0;
    dups = 0;
    corrupt = 0;
    admitted = 0;
    evicted = 0;
    harvested = 0;
    rx_dropped = 0;
    ctl_sent = 0;
    nacks = 0;
    dones = 0;
    fallback_allocs = 0;
    fec_dropped = 0;
  }

let shard_count t = Array.length t.shards
let shard_snapshot t sid = snapshot_of_counters t.shards.(sid).ctr

let totals t =
  Array.fold_left
    (fun acc sh -> add_snapshot acc (snapshot_of_counters sh.ctr))
    zero_snapshot t.shards

let shard_sessions t sid = Hashtbl.length t.shards.(sid).sessions

let live_sessions t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sessions) 0 t.shards

let peak_sessions t =
  Array.fold_left (fun acc sh -> acc + sh.peak_sessions) 0 t.shards

let pool_allocated t =
  Array.fold_left
    (fun acc sh ->
      acc
      + (Pool.stats sh.rx_pool).Pool.allocated
      + (Pool.stats sh.ctl_pool).Pool.allocated
      + (Pool.stats sh.reasm_pool).Pool.allocated)
    0 t.shards

let data_pool_allocated t =
  Array.fold_left
    (fun acc sh ->
      acc
      + (Pool.stats sh.rx_pool).Pool.allocated
      + (Pool.stats sh.reasm_pool).Pool.allocated)
    0 t.shards

let shard_of_key t ~peer ~peer_port ~stream =
  Demux.shard_of ~shards:t.config.shards ~peer ~peer_port ~stream

let locate t ~peer ~peer_port ~stream =
  let k = { peer; peer_port; stream } in
  let found = ref None in
  Array.iter
    (fun sh ->
      if !found = None && Hashtbl.mem sh.sessions k then found := Some sh.sid)
    t.shards;
  !found

type session_view = {
  v_frontier : int;
  v_total : int;
  v_delivered : int;
  v_gone : int;
  v_completed : bool;
  v_ahead_load : int;
}

let session_view t ~peer ~peer_port ~stream =
  let k = { peer; peer_port; stream } in
  let sid = shard_of_key t ~peer ~peer_port ~stream in
  match Hashtbl.find_opt t.shards.(sid).sessions k with
  | None -> None
  | Some s ->
      Some
        {
          v_frontier = s.frontier;
          v_total = s.total;
          v_delivered = s.s_delivered;
          v_gone = s.s_gone;
          v_completed = s.completed;
          v_ahead_load = Hashtbl.length s.ahead;
        }

let max_ahead_load t =
  Array.fold_left
    (fun acc sh ->
      Hashtbl.fold
        (fun _ s m -> max m (Hashtbl.length s.ahead))
        sh.sessions acc)
    0 t.shards
