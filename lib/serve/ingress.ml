open Bufkit
open Alf_core

(* Stage-0 ingress validation: a total, allocation-free classification of
   a borrowed datagram, run on the I/O thread before demux. Anything the
   shards would have to reject anyway — runts, oversized units, unknown
   kinds, self-inconsistent fragment headers, malformed control bodies —
   is refused here for O(1) work, so no byte sequence can raise, reach a
   session table, or cost more than a bounded header inspection before
   it is classified. Every rejection maps to exactly one {!reason}. *)

type reason =
  | Runt
  | Oversize
  | Bad_kind
  | Frag_header
  | Ctl_malformed
  | Fec_unsupported
  | Backpressure
  | Bad_crc
  | Bad_adu
  | Window
  | Policed_new
  | Policed_ctl
  | Shed
  | Dispatch_error
  | Auth

let all_reasons =
  [|
    Runt;
    Oversize;
    Bad_kind;
    Frag_header;
    Ctl_malformed;
    Fec_unsupported;
    Backpressure;
    Bad_crc;
    Bad_adu;
    Window;
    Policed_new;
    Policed_ctl;
    Shed;
    Dispatch_error;
    Auth;
  |]

let reason_count = Array.length all_reasons

let reason_index = function
  | Runt -> 0
  | Oversize -> 1
  | Bad_kind -> 2
  | Frag_header -> 3
  | Ctl_malformed -> 4
  | Fec_unsupported -> 5
  | Backpressure -> 6
  | Bad_crc -> 7
  | Bad_adu -> 8
  | Window -> 9
  | Policed_new -> 10
  | Policed_ctl -> 11
  | Shed -> 12
  | Dispatch_error -> 13
  | Auth -> 14

let reason_name = function
  | Runt -> "runt"
  | Oversize -> "oversize"
  | Bad_kind -> "bad_kind"
  | Frag_header -> "frag_header"
  | Ctl_malformed -> "ctl_malformed"
  | Fec_unsupported -> "fec_unsupported"
  | Backpressure -> "backpressure"
  | Bad_crc -> "bad_crc"
  | Bad_adu -> "bad_adu"
  | Window -> "window"
  | Policed_new -> "policed_new"
  | Policed_ctl -> "policed_ctl"
  | Shed -> "shed"
  | Dispatch_error -> "dispatch_error"
  | Auth -> "auth"

(* A malformed-shape rejection: the datagram's bytes themselves are bad,
   as opposed to a policy drop (backpressure, policing, shedding) of a
   well-formed unit. The distinction is what lets tests equate injected
   malformed counts with drop-counter sums. *)
let is_malformed = function
  | Runt | Oversize | Bad_kind | Frag_header | Ctl_malformed | Fec_unsupported
  | Bad_crc | Bad_adu | Auth ->
      true
  | Backpressure | Window | Policed_new | Policed_ctl | Shed | Dispatch_error
    ->
      false

type limits = {
  trailer : int;  (** Integrity-trailer bytes at the end (0 or 4). *)
  max_len : int;  (** Largest acceptable datagram, trailer included. *)
  max_total_len : int;  (** Largest acceptable encoded-ADU [total_len]. *)
}

type verdict = Accept of int | Reject of reason

let u16 buf off = (Bytebuf.get_uint8 buf off lsl 8) lor Bytebuf.get_uint8 buf (off + 1)

let u32 buf off =
  (Bytebuf.get_uint8 buf off lsl 24)
  lor (Bytebuf.get_uint8 buf (off + 1) lsl 16)
  lor (Bytebuf.get_uint8 buf (off + 2) lsl 8)
  lor Bytebuf.get_uint8 buf (off + 3)

(* Every branch reads only fixed offsets already proven in range by the
   body-length checks, so the function is total by inspection: no
   exception, no allocation, O(1) work per datagram. The trailer CRC is
   NOT verified here — that costs O(len) hashing and happens on the
   owning shard's domain — but its length accounting is: a body too
   short to carry the declared structure plus the trailer never reaches
   a shard. *)
let validate limits buf =
  let len = Bytebuf.length buf in
  let body = len - limits.trailer in
  if body < 3 then Reject Runt
  else if len > limits.max_len then Reject Oversize
  else
    let stream = u16 buf 1 in
    match Bytebuf.get_uint8 buf 0 with
    | b0 when b0 = Framing.frag_magic ->
        if body < Framing.fragment_header_size then Reject Frag_header
        else
          let frag_idx = u16 buf 7 in
          let nfrags = u16 buf 9 in
          let total_len = u32 buf 11 in
          let frag_off = u32 buf 15 in
          let chunk = body - Framing.fragment_header_size in
          if
            nfrags = 0 || frag_idx >= nfrags
            || total_len < Adu.header_size
            || total_len > limits.max_total_len
            || frag_off + chunk > total_len
            || (nfrags = 1 && (frag_off <> 0 || chunk <> total_len))
          then Reject Frag_header
          else Accept stream
    | b0 when b0 = Ctl.tag_close ->
        if body = 7 then Accept stream else Reject Ctl_malformed
    | b0 when b0 = Ctl.tag_done ->
        if body = 3 then Accept stream else Reject Ctl_malformed
    | b0 when b0 = Ctl.tag_nack ->
        if body >= 9 && body = 9 + (4 * u16 buf 7) then Accept stream
        else Reject Ctl_malformed
    | b0 when b0 = Ctl.tag_gone ->
        if body >= 5 && body = 5 + (4 * u16 buf 3) then Accept stream
        else Reject Ctl_malformed
    | b0 when b0 = Ctl.tag_fec -> Reject Fec_unsupported
    | _ -> Reject Bad_kind
