(** Stage-0 ingress validation: total, allocation-free pre-demux
    classification of a borrowed datagram.

    The serve engine's invariants were proven against cooperative peers;
    this module is the first line against adversarial ones. Every
    datagram is classified in O(1) header inspection before it can touch
    a shard: either [Accept stream] (route it) or [Reject reason] (count
    it under exactly one [serve.drop.*] reason and drop it). No byte
    sequence can raise or allocate here. *)

open Bufkit

(** Why a datagram was dropped. The first eight and [Auth] are
    {e malformed-shape} reasons (the bytes themselves are bad); the rest
    are {e policy} drops of well-formed traffic. Stage 0 itself only
    emits [Runt], [Oversize], [Bad_kind], [Frag_header], [Ctl_malformed]
    and [Fec_unsupported]; the others are attributed by later stages
    ([Bad_crc]/[Bad_adu] on the shard after unsealing, [Backpressure] at
    staging, [Window] at the index clamp, [Policed_*] by {!Police},
    [Shed] in brownout, [Dispatch_error] by the last-resort dispatch
    guard, [Auth] at the AEAD record open). *)
type reason =
  | Runt  (** Too short to carry a stream id (or a negative body). *)
  | Oversize  (** Longer than the staging buffers — unservable. *)
  | Bad_kind  (** Unknown discriminator byte. *)
  | Frag_header  (** Self-inconsistent fragment header. *)
  | Ctl_malformed  (** Control body length disagrees with its own counts. *)
  | Fec_unsupported  (** FEC-wrapped units are not served. *)
  | Backpressure  (** Staging pool exhausted at ingest. *)
  | Bad_crc  (** Integrity trailer failed on the shard. *)
  | Bad_adu  (** Reassembled unit failed the ADU decode/CRC. *)
  | Window  (** ADU index beyond the per-session admission window. *)
  | Policed_new  (** Session-creation token bucket empty for this peer. *)
  | Policed_ctl  (** Control-traffic token bucket empty for this peer. *)
  | Shed  (** New admission refused under overload (brownout). *)
  | Dispatch_error  (** Last-resort guard: dispatch raised; counted, not crashed. *)
  | Auth
      (** AEAD record authentication failed ({!Alf_core.Secure.Record}):
          the unit passed every checksum but its Poly1305 tag (or epoch
          window) did not verify — forged or tampered above the CRC.
          Malformed-shape: the bytes themselves are bad. *)

val all_reasons : reason array
(** Every reason, in {!reason_index} order. *)

val reason_count : int

val reason_index : reason -> int
(** Dense index in [0, reason_count) — the drop-counter array slot. *)

val reason_name : reason -> string
(** Stable lowercase name used in Obs counter paths ([serve.drop.<name>]). *)

val is_malformed : reason -> bool
(** [true] for malformed-shape reasons, [false] for policy drops — the
    split that lets tests equate injected-malformed totals with drop sums. *)

type limits = {
  trailer : int;  (** Integrity-trailer bytes at the end (0 or 4). *)
  max_len : int;  (** Largest acceptable datagram, trailer included. *)
  max_total_len : int;  (** Largest acceptable encoded-ADU [total_len]. *)
}

type verdict = Accept of int  (** The stream id at bytes 1–2. *) | Reject of reason

val validate : limits -> Bytebuf.t -> verdict
(** Classify a sealed datagram. Total: never raises, never allocates,
    reads only fixed header offsets proven in range. [max_total_len]
    bounds the reassembly buffer any fragment can demand, closing the
    attacker-controlled-allocation hole. The integrity trailer's {e CRC}
    is not verified here (that is O(len) and happens on the owning
    shard); its {e length} accounting is. *)
