(* Lazy zero-copy decoding: a View is (borrowed bytes, offset, compiled
   schema node). Construction runs Schema.validate once; after that every
   accessor TRUSTS the bytes and reads fields on demand — no Value.t is
   materialized unless [to_value] asks for one, and octet fields come
   back as aliasing sub-slices of the ADU payload. The LowParse shape:
   validate once, then O(1) (or trusted-skip) accessors. *)

open Bufkit

type t = {
  buf : Bytebuf.t;  (* the borrowed payload; never copied, never kept *)
  off : int;  (* where this node's encoding starts, relative to [buf] *)
  sc : Schema.t;
}

let schema v = v.sc
let offset v = v.off
let buffer v = v.buf

let make prog buf ~pos =
  match Schema.validate prog buf ~pos with
  | Error _ as e -> e
  | Ok consumed ->
      Ok ({ buf; off = pos; sc = Schema.root prog }, consumed)

let wrong v what =
  invalid_arg
    (Format.asprintf "View.%s: schema is %a" what Schema.pp v.sc)

(* Trusted reads: [make] already bounds-checked everything, so accessors
   use the raw backing like the fused kernels do. *)
let u32 v pos =
  let b, base, _ = Bytebuf.backing v.buf in
  let p = base + pos in
  let x =
    (Char.code (Bytes.unsafe_get b p) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get b (p + 3))
  in
  (x lxor 0x8000_0000) - 0x8000_0000

let u64 v pos =
  let b, base, _ = Bytebuf.backing v.buf in
  let p = base + pos in
  let hi =
    (Char.code (Bytes.unsafe_get b p) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get b (p + 3))
  and lo =
    (Char.code (Bytes.unsafe_get b (p + 4)) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (p + 5)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (p + 6)) lsl 8)
    lor Char.code (Bytes.unsafe_get b (p + 7))
  in
  Int64.logor
    (Int64.shift_left (Int64.of_int hi) 32)
    (Int64.of_int lo)

(* Size of the (validated) encoding at [pos] under [sc] — the trusted
   skip used to step past dynamic siblings. Static subtrees are O(1). *)
let rec extent v (sc : Schema.t) pos =
  match Schema.static sc with
  | Some k -> k
  | None -> (
      match sc.shape with
      | Void | Bool | Int | Hyper -> assert false (* static *)
      | Opaque | Str ->
          let n = u32 v pos in
          4 + n + Xdr.padding n
      | Array el -> (
          let n = u32 v pos in
          match Schema.static el with
          | Some k -> 4 + (n * k)
          | None ->
              let p = ref (pos + 4) in
              for _ = 1 to n do
                p := !p + extent v el !p
              done;
              !p - pos)
      | Struct (fields, _) ->
          let p = ref pos in
          Array.iter (fun f -> p := !p + extent v f !p) fields;
          !p - pos)

(* ------------------------------------------------------------------ *)
(* Scalar accessors.                                                   *)
(* ------------------------------------------------------------------ *)

let get_bool v =
  match v.sc.shape with
  | Schema.Bool -> u32 v v.off = 1
  | _ -> wrong v "get_bool"

let get_int v =
  match v.sc.shape with
  | Schema.Int -> u32 v v.off
  | _ -> wrong v "get_int"

let get_hyper v =
  match v.sc.shape with
  | Schema.Hyper -> u64 v v.off
  | _ -> wrong v "get_hyper"

let counted_body v what =
  match v.sc.shape with
  | Schema.Opaque | Schema.Str ->
      let n = u32 v v.off in
      Bytebuf.sub v.buf ~pos:(v.off + 4) ~len:n
  | _ -> wrong v what

let octets_view v = counted_body v "octets_view"
let get_octets v = Bytebuf.to_string (counted_body v "get_octets")
let get_string v = Bytebuf.to_string (counted_body v "get_string")

(* ------------------------------------------------------------------ *)
(* Structure navigation.                                               *)
(* ------------------------------------------------------------------ *)

let count v =
  match v.sc.shape with
  | Schema.Array _ -> u32 v v.off
  | Schema.Struct (fields, _) -> Array.length fields
  | _ -> wrong v "count"

let elem v i =
  match v.sc.shape with
  | Schema.Array el -> (
      let n = u32 v v.off in
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "View.elem: index %d out of %d" i n);
      match Schema.static el with
      | Some k -> { v with off = v.off + 4 + (i * k); sc = el }
      | None ->
          let p = ref (v.off + 4) in
          for _ = 1 to i do
            p := !p + extent v el !p
          done;
          { v with off = !p; sc = el })
  | _ -> wrong v "elem"

let field v i =
  match v.sc.shape with
  | Schema.Struct (fields, offsets) -> (
      let n = Array.length fields in
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "View.field: index %d out of %d" i n);
      match offsets.(i) with
      | Some o -> { v with off = v.off + o; sc = fields.(i) }
      | None ->
          (* Walk from the last statically-known start. *)
          let j = ref i and o = ref None in
          while !o = None do
            decr j;
            o := offsets.(!j)
          done;
          let p = ref (v.off + Option.get !o) in
          for k = !j to i - 1 do
            p := !p + extent v fields.(k) !p
          done;
          { v with off = !p; sc = fields.(i) })
  | _ -> wrong v "field"

(* ------------------------------------------------------------------ *)
(* Full materialization — the opt-in slow path.                        *)
(* ------------------------------------------------------------------ *)

(* Mirrors Xdr.decode exactly: hypers through Value.canonical (Int64
   collapses to Int when it fits), structs decode to List. *)
let rec value_at v (sc : Schema.t) pos : Value.t * int =
  match sc.shape with
  | Void -> (Value.Null, pos)
  | Bool -> (Value.Bool (u32 v pos = 1), pos + 4)
  | Int -> (Value.Int (u32 v pos), pos + 4)
  | Hyper -> (Value.canonical (Value.Int64 (u64 v pos)), pos + 8)
  | Opaque ->
      let n = u32 v pos in
      ( Value.Octets (Bytebuf.to_string (Bytebuf.sub v.buf ~pos:(pos + 4) ~len:n)),
        pos + 4 + n + Xdr.padding n )
  | Str ->
      let n = u32 v pos in
      ( Value.Utf8 (Bytebuf.to_string (Bytebuf.sub v.buf ~pos:(pos + 4) ~len:n)),
        pos + 4 + n + Xdr.padding n )
  | Array el ->
      let n = u32 v pos in
      let p = ref (pos + 4) in
      let vs =
        List.init n (fun _ ->
            let x, p' = value_at v el !p in
            p := p';
            x)
      in
      (Value.List vs, !p)
  | Struct (fields, _) ->
      let p = ref pos in
      let vs =
        Array.to_list
          (Array.map
             (fun f ->
               let x, p' = value_at v f !p in
               p := p';
               x)
             fields)
      in
      (Value.List vs, !p)

let to_value v = fst (value_at v v.sc v.off)
