open Bufkit

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let tag_boolean = 0x01
let tag_integer = 0x02
let tag_octets = 0x04
let tag_null = 0x05
let tag_utf8 = 0x0C
let tag_sequence = 0x30

(* Minimal two's-complement length of an OCaml int (1..8 octets). *)
let int_len v =
  let rec go k =
    if k >= 8 then 8
    else
      let bits = (8 * k) - 1 in
      if v >= -(1 lsl bits) && v < 1 lsl bits then k else go (k + 1)
  in
  go 1

let int64_len v =
  (* Any int64 needing fewer than 8 octets fits 63 bits, i.e. converts
     to a native int exactly; only the conversion-lossy remainder is
     pinned at 8. Keeps the hot sizing path in unboxed arithmetic. *)
  let n = Int64.to_int v in
  if Int64.equal (Int64.of_int n) v then int_len n else 8

let len_size n =
  if n < 0x80 then 1
  else if n < 0x100 then 2
  else if n < 0x10000 then 3
  else if n < 0x1000000 then 4
  else 5

let rec content_size (v : Value.t) =
  match v with
  | Null -> 0
  | Bool _ -> 1
  | Int i -> int_len i
  | Int64 i -> int64_len i
  | Octets s | Utf8 s -> String.length s
  | List vs -> List.fold_left (fun n v -> n + sizeof v) 0 vs
  | Record fs -> List.fold_left (fun n (_, v) -> n + sizeof v) 0 fs

and sizeof v =
  let c = content_size v in
  1 + len_size c + c

let put_len w n =
  if n < 0x80 then Cursor.put_u8 w n
  else if n < 0x100 then begin
    Cursor.put_u8 w 0x81;
    Cursor.put_u8 w n
  end
  else if n < 0x10000 then begin
    Cursor.put_u8 w 0x82;
    Cursor.put_u16be w n
  end
  else if n < 0x1000000 then begin
    Cursor.put_u8 w 0x83;
    Cursor.put_u8 w (n lsr 16);
    Cursor.put_u16be w (n land 0xffff)
  end
  else begin
    Cursor.put_u8 w 0x84;
    Cursor.put_int_as_u32be w n
  end

let put_int_octets w v k =
  for j = k - 1 downto 0 do
    Cursor.put_u8 w ((v asr (8 * j)) land 0xff)
  done

let put_int64_octets w v k =
  for j = k - 1 downto 0 do
    Cursor.put_u8 w
      (Int64.to_int (Int64.shift_right v (8 * j)) land 0xff)
  done

(* Children are encoded through top-level mutual recursion, not
   [List.iter (fun v -> ...)]: the hot encode loop allocates no closure
   per sequence (see the wire round-trip tests' allocation counts). *)
let rec encode_into (v : Value.t) w =
  match v with
  | Null ->
      Cursor.put_u8 w tag_null;
      Cursor.put_u8 w 0
  | Bool b ->
      Cursor.put_u8 w tag_boolean;
      Cursor.put_u8 w 1;
      Cursor.put_u8 w (if b then 0xff else 0x00)
  | Int i ->
      let k = int_len i in
      Cursor.put_u8 w tag_integer;
      Cursor.put_u8 w k;
      put_int_octets w i k
  | Int64 i ->
      let k = int64_len i in
      Cursor.put_u8 w tag_integer;
      Cursor.put_u8 w k;
      put_int64_octets w i k
  | Octets s ->
      Cursor.put_u8 w tag_octets;
      put_len w (String.length s);
      Cursor.put_string w s
  | Utf8 s ->
      Cursor.put_u8 w tag_utf8;
      put_len w (String.length s);
      Cursor.put_string w s
  | List vs ->
      Cursor.put_u8 w tag_sequence;
      put_len w (content_size v);
      encode_children vs w
  | Record fs ->
      Cursor.put_u8 w tag_sequence;
      put_len w (content_size v);
      encode_field_children fs w

and encode_children vs w =
  match vs with
  | [] -> ()
  | v :: tl ->
      encode_into v w;
      encode_children tl w

and encode_field_children fs w =
  match fs with
  | [] -> ()
  | (_, v) :: tl ->
      encode_into v w;
      encode_field_children tl w

let encode v =
  let buf = Bytebuf.create (sizeof v) in
  let w = Cursor.writer buf in
  encode_into v w;
  Cursor.written w

(* --- Word-emitting encoder (fused ILP pipelines) --- *)

(* Tag and length as one insert group (the dominant header shape is
   tag + short length = 2 bytes = one operation). *)
let sink_put_tag_len s tag n =
  if n < 0x80 then Wordsink.insert s (Int64.of_int (tag lor (n lsl 8))) 2
  else if n < 0x100 then
    Wordsink.insert s (Int64.of_int (tag lor (0x81 lsl 8) lor (n lsl 16))) 3
  else if n < 0x10000 then
    Wordsink.insert s
      (Int64.of_int
         (tag lor (0x82 lsl 8) lor ((n lsr 8) lsl 16) lor ((n land 0xff) lsl 24)))
      4
  else if n < 0x1000000 then
    Wordsink.insert s
      (Int64.of_int
         (tag
         lor (0x83 lsl 8)
         lor ((n lsr 16) lsl 16)
         lor (((n lsr 8) land 0xff) lsl 24)
         lor ((n land 0xff) lsl 32)))
      5
  else begin
    Wordsink.put_u8 s tag;
    Wordsink.put_u8 s 0x84;
    Wordsink.put_u32be s n
  end

(* Tag, length and the k big-endian content octets of an INTEGER packed
   into one insert group (k <= 6 keeps the group within 8 bytes). *)
let int_group v k =
  let g = ref (Int64.of_int (tag_integer lor (k lsl 8))) in
  for j = 0 to k - 1 do
    g :=
      Int64.logor !g
        (Int64.shift_left
           (Int64.of_int ((v asr (8 * (k - 1 - j))) land 0xff))
           ((2 + j) lsl 3))
  done;
  !g

(* Preorder side-stack of sequence content lengths. The naive encoder
   calls [content_size] at every SEQUENCE header, re-walking each
   subtree once per nesting level; [measure] computes all of them in a
   single walk and [emit_words] consumes them in the same preorder, so
   the word-emitting path traverses the value exactly twice total
   regardless of depth. *)
type sizes = { mutable sz : int array; mutable wr : int; mutable rd : int }

let sizes_push b c =
  (if b.wr = Array.length b.sz then
     let a = Array.make (2 * b.wr) 0 in
     Array.blit b.sz 0 a 0 b.wr;
     b.sz <- a);
  let i = b.wr in
  b.wr <- i + 1;
  b.sz.(i) <- c;
  i

let rec measure (v : Value.t) b =
  match v with
  | Null -> 2
  | Bool _ -> 3
  | Int i -> 2 + int_len i
  | Int64 i -> 2 + int64_len i
  | Octets str | Utf8 str ->
      let n = String.length str in
      1 + len_size n + n
  | List vs ->
      (* Reserve the slot before the children so the stack stays in
         preorder, then patch it once the subtree total is known. *)
      let i = sizes_push b 0 in
      let c = measure_children vs b 0 in
      b.sz.(i) <- c;
      1 + len_size c + c
  | Record fs ->
      let i = sizes_push b 0 in
      let c = measure_fields fs b 0 in
      b.sz.(i) <- c;
      1 + len_size c + c

and measure_children vs b acc =
  match vs with
  | [] -> acc
  | v :: tl -> measure_children tl b (acc + measure v b)

and measure_fields fs b acc =
  match fs with
  | [] -> acc
  | (_, v) :: tl -> measure_fields tl b (acc + measure v b)

let rec emit_words (v : Value.t) s b =
  match v with
  | Null -> Wordsink.insert s (Int64.of_int tag_null) 2
  | Bool bl ->
      Wordsink.insert s
        (Int64.of_int
           (tag_boolean lor (1 lsl 8) lor ((if bl then 0xff else 0x00) lsl 16)))
        3
  | Int i ->
      let k = int_len i in
      if k <= 6 then Wordsink.insert s (int_group i k) (2 + k)
      else begin
        Wordsink.put_u8 s tag_integer;
        Wordsink.put_u8 s k;
        for j = k - 1 downto 0 do
          Wordsink.put_u8 s ((i asr (8 * j)) land 0xff)
        done
      end
  | Int64 i ->
      let k = int64_len i in
      (* k <= 6 means the value fits in 48 bits, so the native-int group
         builder is exact. *)
      if k <= 6 then Wordsink.insert s (int_group (Int64.to_int i) k) (2 + k)
      else begin
        Wordsink.put_u8 s tag_integer;
        Wordsink.put_u8 s k;
        for j = k - 1 downto 0 do
          Wordsink.put_u8 s (Int64.to_int (Int64.shift_right i (8 * j)) land 0xff)
        done
      end
  | Octets str ->
      sink_put_tag_len s tag_octets (String.length str);
      Wordsink.put_string s str
  | Utf8 str ->
      sink_put_tag_len s tag_utf8 (String.length str);
      Wordsink.put_string s str
  | List vs ->
      let c = b.sz.(b.rd) in
      b.rd <- b.rd + 1;
      sink_put_tag_len s tag_sequence c;
      words_children vs s b
  | Record fs ->
      let c = b.sz.(b.rd) in
      b.rd <- b.rd + 1;
      sink_put_tag_len s tag_sequence c;
      words_fields fs s b

and words_children vs s b =
  match vs with
  | [] -> ()
  | v :: tl ->
      emit_words v s b;
      words_children tl s b

and words_fields fs s b =
  match fs with
  | [] -> ()
  | (_, v) :: tl ->
      emit_words v s b;
      words_fields tl s b

let encode_words (v : Value.t) s =
  let b = { sz = Array.make 64 0; wr = 0; rd = 0 } in
  ignore (measure v b : int);
  emit_words v s b

(* Interpretive (toolkit-style) encoder: every TLV becomes an intermediate
   string that is copied again by its parent, modelling the layered
   buffer-to-buffer behaviour of a generic presentation toolkit. *)
let encode_interpretive v =
  let len_string n =
    if n < 0x80 then String.make 1 (Char.chr n)
    else if n < 0x100 then Printf.sprintf "\x81%c" (Char.chr n)
    else if n < 0x10000 then
      Printf.sprintf "\x82%c%c" (Char.chr (n lsr 8)) (Char.chr (n land 0xff))
    else if n < 0x1000000 then
      Printf.sprintf "\x83%c%c%c"
        (Char.chr (n lsr 16))
        (Char.chr ((n lsr 8) land 0xff))
        (Char.chr (n land 0xff))
    else
      Printf.sprintf "\x84%c%c%c%c"
        (Char.chr ((n lsr 24) land 0xff))
        (Char.chr ((n lsr 16) land 0xff))
        (Char.chr ((n lsr 8) land 0xff))
        (Char.chr (n land 0xff))
  in
  let tlv tag content =
    let b = Buffer.create (String.length content + 6) in
    Buffer.add_char b (Char.chr tag);
    Buffer.add_string b (len_string (String.length content));
    Buffer.add_string b content;
    Buffer.contents b
  in
  let int_octets_string v =
    let k = int_len v in
    String.init k (fun j -> Char.chr ((v asr (8 * (k - 1 - j))) land 0xff))
  in
  let int64_octets_string v =
    let k = int64_len v in
    String.init k (fun j ->
        Int64.to_int (Int64.shift_right v (8 * (k - 1 - j))) land 0xff
        |> Char.chr)
  in
  let rec interp (v : Value.t) =
    match v with
    | Null -> tlv tag_null ""
    | Bool b -> tlv tag_boolean (if b then "\xff" else "\x00")
    | Int i -> tlv tag_integer (int_octets_string i)
    | Int64 i -> tlv tag_integer (int64_octets_string i)
    | Octets s -> tlv tag_octets s
    | Utf8 s -> tlv tag_utf8 s
    | List vs -> tlv tag_sequence (String.concat "" (List.map interp vs))
    | Record fs ->
        tlv tag_sequence (String.concat "" (List.map (fun (_, v) -> interp v) fs))
  in
  Bytebuf.of_string (interp v)

(* Decoding *)

let read_len r =
  let b0 = Cursor.u8 r in
  if b0 < 0x80 then b0
  else
    let k = b0 land 0x7f in
    if k = 0 then decode_error "BER: indefinite lengths are not supported";
    if k > 4 then decode_error "BER: length of length %d too large" k;
    let rec go k acc = if k = 0 then acc else go (k - 1) ((acc lsl 8) lor Cursor.u8 r) in
    go k 0

let decode_int_content r k =
  if k = 0 then decode_error "BER: empty INTEGER";
  if k > 8 then decode_error "BER: INTEGER of %d octets unsupported" k;
  let first = Cursor.u8 r in
  let acc = ref (Int64.of_int (if first >= 0x80 then first - 0x100 else first)) in
  for _ = 2 to k do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Cursor.u8 r))
  done;
  !acc

let value_of_int64 (i : int64) : Value.t =
  let as_int = Int64.to_int i in
  if Int64.equal (Int64.of_int as_int) i then Int as_int else Int64 i

let rec decode_value r : Value.t =
  let tag = Cursor.u8 r in
  let len = read_len r in
  if tag = tag_null then begin
    if len <> 0 then decode_error "BER: NULL with nonzero length";
    Null
  end
  else if tag = tag_boolean then begin
    if len <> 1 then decode_error "BER: BOOLEAN of length %d" len;
    Bool (Cursor.u8 r <> 0)
  end
  else if tag = tag_integer then value_of_int64 (decode_int_content r len)
  else if tag = tag_octets then Octets (Cursor.string r len)
  else if tag = tag_utf8 then Utf8 (Cursor.string r len)
  else if tag = tag_sequence then begin
    let stop = Cursor.pos r + len in
    let rec children acc =
      if Cursor.pos r > stop then decode_error "BER: SEQUENCE content overran"
      else if Cursor.pos r = stop then List.rev acc
      else children (decode_value r :: acc)
    in
    List (children [])
  end
  else decode_error "BER: unsupported tag 0x%02x" tag

let decode_reader r =
  try decode_value r with
  | Cursor.Underflow msg -> decode_error "BER: truncated input (%s)" msg

let decode_prefix buf =
  let r = Cursor.reader buf in
  let v = decode_reader r in
  (v, Cursor.pos r)

let decode buf =
  let v, consumed = decode_prefix buf in
  if consumed <> Bytebuf.length buf then
    decode_error "BER: %d trailing bytes" (Bytebuf.length buf - consumed);
  v

(* Integer-array fast paths. *)

let int_array_content_size a =
  let n = ref 0 in
  Array.iter (fun v -> n := !n + 2 + int_len v) a;
  !n

(* Tuned path: direct byte stores after a single up-front allocation, the
   moral equivalent of the paper's hand-coded unrolled conversion loop. *)
let encode_int_array a =
  let content = int_array_content_size a in
  let total = 1 + len_size content + content in
  let buf = Bytebuf.create total in
  let bytes, base, _ = Bytebuf.backing buf in
  let pos = ref 0 in
  let emit b =
    Bytes.unsafe_set bytes (base + !pos) (Char.unsafe_chr b);
    incr pos
  in
  emit tag_sequence;
  if content < 0x80 then emit content
  else if content < 0x100 then begin
    emit 0x81; emit content
  end
  else if content < 0x10000 then begin
    emit 0x82; emit (content lsr 8); emit (content land 0xff)
  end
  else if content < 0x1000000 then begin
    emit 0x83;
    emit (content lsr 16);
    emit ((content lsr 8) land 0xff);
    emit (content land 0xff)
  end
  else begin
    emit 0x84;
    emit ((content lsr 24) land 0xff);
    emit ((content lsr 16) land 0xff);
    emit ((content lsr 8) land 0xff);
    emit (content land 0xff)
  end;
  Array.iter
    (fun v ->
      let k = int_len v in
      emit tag_integer;
      emit k;
      for j = k - 1 downto 0 do
        emit ((v asr (8 * j)) land 0xff)
      done)
    a;
  buf

(* Tuned decode: one pass over the TLVs without materialising values. *)
let decode_int_array buf =
  try
    let r = Cursor.reader buf in
    if Cursor.u8 r <> tag_sequence then decode_error "BER: not a SEQUENCE";
  let content = read_len r in
  if content <> Cursor.remaining r then
    decode_error "BER: SEQUENCE length does not cover the input";
  let acc = ref [] in
  let count = ref 0 in
  while Cursor.remaining r > 0 do
    if Cursor.u8 r <> tag_integer then decode_error "BER: not an array of INTEGER";
    let k = Cursor.u8 r in
    if k = 0 || k > 8 then decode_error "BER: bad INTEGER length %d" k;
    let first = Cursor.u8 r in
    let v = ref (if first >= 0x80 then first - 0x100 else first) in
    for _ = 2 to k do
      v := (!v lsl 8) lor Cursor.u8 r
    done;
    acc := !v :: !acc;
    incr count
  done;
    let out = Array.make !count 0 in
    List.iteri (fun i v -> out.(!count - 1 - i) <- v) !acc;
    out
  with Cursor.Underflow msg -> decode_error "BER: truncated input (%s)" msg

(* The paper's fused convert-and-checksum loop: the Internet checksum of
   the encoding is accumulated as each byte is produced, while the bytes
   are still in registers, rather than in a second pass over memory. *)
let encode_int_array_with_checksum a =
  let content = int_array_content_size a in
  let total = 1 + len_size content + content in
  let buf = Bytebuf.create total in
  let bytes, base, _ = Bytebuf.backing buf in
  let pos = ref 0 in
  let sum = ref 0 in
  let emit b =
    Bytes.unsafe_set bytes (base + !pos) (Char.unsafe_chr b);
    (* Even positions are the high octet of a 16-bit word. *)
    sum := !sum + (if !pos land 1 = 0 then b lsl 8 else b);
    if !sum > 0x3FFFFFFF then sum := (!sum land 0xffff) + (!sum lsr 16);
    incr pos
  in
  emit tag_sequence;
  if content < 0x80 then emit content
  else if content < 0x100 then begin
    emit 0x81; emit content
  end
  else if content < 0x10000 then begin
    emit 0x82; emit (content lsr 8); emit (content land 0xff)
  end
  else if content < 0x1000000 then begin
    emit 0x83;
    emit (content lsr 16);
    emit ((content lsr 8) land 0xff);
    emit (content land 0xff)
  end
  else begin
    emit 0x84;
    emit ((content lsr 24) land 0xff);
    emit ((content lsr 16) land 0xff);
    emit ((content lsr 8) land 0xff);
    emit (content land 0xff)
  end;
  Array.iter
    (fun v ->
      let k = int_len v in
      emit tag_integer;
      emit k;
      for j = k - 1 downto 0 do
        emit ((v asr (8 * j)) land 0xff)
      done)
    a;
  let s = ref !sum in
  while !s > 0xffff do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  (buf, lnot !s land 0xffff)
