(** A word-emitting byte sink for fused presentation pipelines.

    {!Ber.encode_words} and {!Xdr.encode_words} drive one of these instead
    of a {!Bufkit.Cursor.writer}: wire bytes are packed into a 64-bit
    accumulator and handed downstream one {e word} at a time, while they
    are still in a register — so an ILP stage chain (checksum feeder,
    keystream XOR, the final store) can consume the encoding as it is
    produced instead of re-reading a finished buffer (the paper's §4
    "conversion and checksum in one step", generalised).

    Packing is little-endian: wire byte [base + k] sits in octet [k] of
    the word passed to [word] — the same correspondence a little-endian
    64-bit load gives, so the word is exactly what {!Ilp}'s fused loop
    would have loaded from a finished encoding. Words are emitted only at
    8-byte boundaries; the final partial word (if any) leaves through
    [byte] at {!flush}, one byte at a time, starting on an 8-aligned
    offset — the same word-loop/byte-tail seam the fused Internet
    checksum needs to keep 16-bit parity. *)

type t

val create : word:(int -> int64 -> unit) -> byte:(int -> int -> unit) -> t
(** [create ~word ~byte]: [word base w] receives each completed word
    ([base] = byte offset of its first byte, always a multiple of 8);
    [byte off b] receives each tail byte at {!flush}. *)

val pos : t -> int
(** Total bytes pushed so far (including bytes still in the
    accumulator). *)

val insert : t -> int64 -> int -> unit
(** [insert t le k] pushes [k] wire bytes (1..8) packed little-endian in
    [le] (first wire byte in the low octet; bits above [8k] must be 0).
    The primitive everything else reduces to — encoders use it to push a
    whole tag/length/content group in one operation. *)

val put_u8 : t -> int -> unit
val put_u16be : t -> int -> unit

val put_u32be : t -> int -> unit
(** Low 32 bits of the argument, big-endian on the wire. *)

val put_u64be : t -> int64 -> unit
val put_string : t -> string -> unit
val put_zeros : t -> int -> unit

val flush : t -> unit
(** Emit any buffered tail bytes through [byte]. Call exactly once, after
    the encoder is done. *)
