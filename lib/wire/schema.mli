(** Schema-compiled presentation programs.

    The PR 5 encoders walk [(schema, value)] pairs interpretively on
    every send — a per-field tag dispatch the architecture should pay
    {e once per schema}, not once per value (Bebop's branchless-encoding
    argument). This module lowers an {!Xdr.schema} into three compiled
    programs, cached per schema:

    - {!emit} — drives a {!Wordsink} with the value's encoding through
      per-node specialized closures: no schema dispatch in the loop,
      fixed-width fields as direct word inserts, int arrays blitted two
      big-endian lanes per 8-byte word. Byte-identical to
      {!Xdr.encode_words}, including error behaviour on mismatched
      values.
    - {!size} — the branchless length precomputation: statically-sized
      subtrees are folded to constants at compile time, so a fully
      static schema sizes in O(1) and a mixed struct walks only its
      dynamic fields. (Consequently size does NOT type-check the parts
      it never visits; a mismatch surfaces when {!emit} runs — which any
      marshal path does.)
    - {!validate} — a total, allocation-free one-pass structural check
      over received bytes (LowParse-style), with runs of content-free
      fixed-size fields fused into single bounds comparisons. Returns
      [Ok consumed] exactly when {!Xdr.decode_prefix} would succeed and
      consume [consumed] bytes — the guarantee {!View}'s trusting O(1)
      accessors are built on.

    Compiled programs are shared through a mutex-guarded schema-keyed
    cache ({!prog_of_xdr}) that sits alongside the ILP plan cache:
    schema + plan together lower to one specialized fused loop in
    {!Ilp.run_marshal}. Cache traffic is observable as
    [wire.schema.cache.hits]/[wire.schema.cache.misses]. *)

open Bufkit

(** {1 The wire-shape description} *)

type t = private {
  shape : shape;
  static : int option;
      (** Encoded size in bytes when it is value-independent. *)
  content_free : bool;
      (** No booleans and no counted lengths anywhere below: any byte
          content of the right length is a valid encoding, so validation
          of this subtree is a single bounds check. Content-free implies
          statically sized. *)
}

and shape =
  | Void
  | Bool
  | Int
  | Hyper
  | Opaque
  | Str
  | Array of t
  | Struct of t array * int option array
      (** Fields, and for each field its byte offset from the struct's
          first byte when every earlier field is statically sized —
          [offsets.(0)] is always [Some 0]. The O(1) field-seek table
          used by {!View.field}. *)

val of_xdr : Xdr.schema -> t
val to_xdr : t -> Xdr.schema
val of_value : Value.t -> t
(** [of_xdr (Xdr.schema_of_value v)]. *)

val static : t -> int option
val content_free : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Compiled programs} *)

type prog
(** The compiled form: description + size/emit/validate programs. *)

val compile : Xdr.schema -> prog
(** Lower a schema. Prefer {!prog_of_xdr}, which caches. *)

val root : prog -> t
val xdr_schema : prog -> Xdr.schema

val static_size : prog -> int option
(** [Some n] when every value of this schema encodes to exactly [n]
    bytes — sizing is free and sizing-time mismatch detection is
    impossible (it moves to emit time). *)

val size : prog -> Value.t -> int
(** Encoded size of [v]. Equals {!Xdr.sizeof} on matching values; on
    mismatched values it raises {!Xdr.Error} {e unless} the mismatch
    lies inside a statically-sized subtree (see {!static_size}). *)

val emit : prog -> Wordsink.t -> Value.t -> unit
(** Emit the encoding. Byte-identical to {!Xdr.encode_words}; raises
    {!Xdr.Error} on any schema/value mismatch, like the interpretive
    encoder. Allocates nothing in steady state. *)

val validate : prog -> Bytebuf.t -> pos:int -> (int, string) result
(** [validate p buf ~pos] structurally checks one encoded value starting
    at [pos] and returns [Ok end_pos] (trailing bytes allowed — the
    caller decides whether they are an error). Total on arbitrary bytes:
    never raises, never allocates beyond the result. [Ok e] iff
    {!Xdr.decode_prefix} on the same bytes succeeds consuming
    [e - pos]. *)

(** {1 The schema-program cache} *)

val prog_of_xdr : Xdr.schema -> prog
(** Find-or-compile, mutex-guarded, shared across domains. Counts
    [wire.schema.cache.{hits,misses}]. *)

val prog_of_value : Value.t -> prog

type cache_stats = { hits : int; misses : int; entries : int }

val cache_stats : unit -> cache_stats
