open Bufkit

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type schema =
  | S_void
  | S_bool
  | S_int
  | S_hyper
  | S_opaque
  | S_string
  | S_array of schema
  | S_struct of schema list

let check_int32 i =
  if i < Int32.to_int Int32.min_int || i > Int32.to_int Int32.max_int then
    error "XDR: integer %d outside 32-bit range" i

let rec schema_of_value (v : Value.t) =
  match v with
  | Null -> S_void
  | Bool _ -> S_bool
  | Int i ->
      check_int32 i;
      S_int
  | Int64 _ -> S_hyper
  | Octets _ -> S_opaque
  | Utf8 _ -> S_string
  | List [] -> S_array S_int
  | List (v0 :: rest) ->
      let s0 = schema_of_value v0 in
      let ss = List.map schema_of_value rest in
      if List.for_all (fun s -> s = s0) ss then S_array s0
      else S_struct (s0 :: ss)
  | Record fs -> S_struct (List.map (fun (_, v) -> schema_of_value v) fs)

let padding n = (4 - (n land 3)) land 3

(* Children are sized/encoded through top-level mutual recursion, not
   [List.iter (fun v -> ...)] or a rebuilt [List (List.map snd fs)]:
   the hot loops allocate nothing per element. *)
let rec sizeof schema (v : Value.t) =
  match (schema, v) with
  | S_void, Null -> 0
  | S_bool, Bool _ -> 4
  | S_int, Int i ->
      check_int32 i;
      4
  | S_hyper, Int64 _ -> 8
  | S_hyper, Int _ -> 8
  | (S_opaque, Octets s) | (S_string, Utf8 s) ->
      let n = String.length s in
      4 + n + padding n
  | S_array s, List vs -> sizeof_list s vs 4
  | S_struct ss, List vs -> sizeof_struct ss vs 0
  | S_struct ss, Record fs -> sizeof_fields ss fs 0
  | ( (S_void | S_bool | S_int | S_hyper | S_opaque | S_string | S_array _ | S_struct _),
      (Null | Bool _ | Int _ | Int64 _ | Octets _ | Utf8 _ | List _ | Record _) )
    ->
      error "XDR: value does not match schema"

and sizeof_list s vs acc =
  match vs with [] -> acc | v :: tl -> sizeof_list s tl (acc + sizeof s v)

and sizeof_struct ss vs acc =
  match (ss, vs) with
  | [], [] -> acc
  | s :: ss, v :: vs -> sizeof_struct ss vs (acc + sizeof s v)
  | _, _ -> error "XDR: struct arity mismatch"

and sizeof_fields ss fs acc =
  match (ss, fs) with
  | [], [] -> acc
  | s :: ss, (_, v) :: fs -> sizeof_fields ss fs (acc + sizeof s v)
  | _, _ -> error "XDR: struct arity mismatch"

let put_padded w s =
  let n = String.length s in
  Cursor.put_int_as_u32be w n;
  Cursor.put_string w s;
  for _ = 1 to padding n do
    Cursor.put_u8 w 0
  done

let rec encode_into schema (v : Value.t) w =
  match (schema, v) with
  | S_void, Null -> ()
  | S_bool, Bool b -> Cursor.put_int_as_u32be w (if b then 1 else 0)
  | S_int, Int i ->
      check_int32 i;
      Cursor.put_int_as_u32be w i
  | S_hyper, Int64 i -> Cursor.put_u64be w i
  | S_hyper, Int i -> Cursor.put_u64be w (Int64.of_int i)
  | (S_opaque, Octets s) | (S_string, Utf8 s) -> put_padded w s
  | S_array s, List vs ->
      Cursor.put_int_as_u32be w (List.length vs);
      encode_list s vs w
  | S_struct ss, List vs -> encode_struct ss vs w
  | S_struct ss, Record fs -> encode_fields ss fs w
  | ( (S_void | S_bool | S_int | S_hyper | S_opaque | S_string | S_array _ | S_struct _),
      (Null | Bool _ | Int _ | Int64 _ | Octets _ | Utf8 _ | List _ | Record _) )
    ->
      error "XDR: value does not match schema"

and encode_list s vs w =
  match vs with
  | [] -> ()
  | v :: tl ->
      encode_into s v w;
      encode_list s tl w

and encode_struct ss vs w =
  match (ss, vs) with
  | [], [] -> ()
  | s :: ss, v :: vs ->
      encode_into s v w;
      encode_struct ss vs w
  | _, _ -> error "XDR: struct arity mismatch"

and encode_fields ss fs w =
  match (ss, fs) with
  | [], [] -> ()
  | s :: ss, (_, v) :: fs ->
      encode_into s v w;
      encode_fields ss fs w
  | _, _ -> error "XDR: struct arity mismatch"

(* Word-emitting twin of [encode_into]: same wire bytes, but pushed into a
   {!Wordsink} so a fused ILP chain consumes the encoding as it is
   produced. Each fixed-width scalar goes in as one grouped insert. *)
let rec encode_words schema (v : Value.t) sink =
  match (schema, v) with
  | S_void, Null -> ()
  | S_bool, Bool b -> Wordsink.put_u32be sink (if b then 1 else 0)
  | S_int, Int i ->
      check_int32 i;
      Wordsink.put_u32be sink i
  | S_hyper, Int64 i -> Wordsink.put_u64be sink i
  | S_hyper, Int i -> Wordsink.put_u64be sink (Int64.of_int i)
  | (S_opaque, Octets s) | (S_string, Utf8 s) ->
      let n = String.length s in
      Wordsink.put_u32be sink n;
      Wordsink.put_string sink s;
      Wordsink.put_zeros sink (padding n)
  | S_array s, List vs ->
      Wordsink.put_u32be sink (List.length vs);
      words_list s vs sink
  | S_struct ss, List vs -> words_struct ss vs sink
  | S_struct ss, Record fs -> words_fields ss fs sink
  | ( (S_void | S_bool | S_int | S_hyper | S_opaque | S_string | S_array _ | S_struct _),
      (Null | Bool _ | Int _ | Int64 _ | Octets _ | Utf8 _ | List _ | Record _) )
    ->
      error "XDR: value does not match schema"

and words_list s vs sink =
  match vs with
  | [] -> ()
  | v :: tl ->
      encode_words s v sink;
      words_list s tl sink

and words_struct ss vs sink =
  match (ss, vs) with
  | [], [] -> ()
  | s :: ss, v :: vs ->
      encode_words s v sink;
      words_struct ss vs sink
  | _, _ -> error "XDR: struct arity mismatch"

and words_fields ss fs sink =
  match (ss, fs) with
  | [], [] -> ()
  | s :: ss, (_, v) :: fs ->
      encode_words s v sink;
      words_fields ss fs sink
  | _, _ -> error "XDR: struct arity mismatch"

let encode schema v =
  let buf = Bytebuf.create (sizeof schema v) in
  let w = Cursor.writer buf in
  encode_into schema v w;
  Cursor.written w

let read_padded r =
  let n = Cursor.int32_as_int r in
  if n < 0 || n > Cursor.remaining r then error "XDR: bad counted length %d" n;
  let s = Cursor.string r n in
  Cursor.skip r (padding n);
  s

let rec decode_value schema r : Value.t =
  match schema with
  | S_void -> Null
  | S_bool -> (
      match Cursor.int32_as_int r with
      | 0 -> Bool false
      | 1 -> Bool true
      | n -> error "XDR: boolean with value %d" n)
  | S_int -> Int (Cursor.int32_as_int r)
  | S_hyper ->
      (* Normalise to the canonical value form (see Value.canonical). *)
      Value.canonical (Int64 (Cursor.u64be r))
  | S_opaque -> Octets (read_padded r)
  | S_string -> Utf8 (read_padded r)
  | S_array s ->
      let n = Cursor.int32_as_int r in
      (* Elements may encode to zero bytes (void), so bound the count by a
         sanity cap rather than the remaining bytes; truncation surfaces
         as Underflow while decoding the elements. *)
      if n < 0 || n > 0x1000000 then
        error "XDR: unreasonable array count %d" n;
      let rec go k acc =
        if k = 0 then List.rev acc else go (k - 1) (decode_value s r :: acc)
      in
      List (go n [])
  | S_struct ss -> List (List.map (fun s -> decode_value s r) ss)

let decode_reader schema r =
  try decode_value schema r with
  | Cursor.Underflow msg -> error "XDR: truncated input (%s)" msg

let decode_prefix schema buf =
  let r = Cursor.reader buf in
  let v = decode_reader schema r in
  (v, Cursor.pos r)

let decode schema buf =
  let v, consumed = decode_prefix schema buf in
  if consumed <> Bytebuf.length buf then
    error "XDR: %d trailing bytes" (Bytebuf.length buf - consumed);
  v

let rec pp_schema ppf = function
  | S_void -> Format.fprintf ppf "void"
  | S_bool -> Format.fprintf ppf "bool"
  | S_int -> Format.fprintf ppf "int"
  | S_hyper -> Format.fprintf ppf "hyper"
  | S_opaque -> Format.fprintf ppf "opaque<>"
  | S_string -> Format.fprintf ppf "string<>"
  | S_array s -> Format.fprintf ppf "%a<>" pp_schema s
  | S_struct ss ->
      Format.fprintf ppf "@[<hov 1>{%a}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_schema)
        ss

(* Fast paths: a counted array of 32-bit integers, written with direct
   byte stores. *)
let encode_int_array a =
  let n = Array.length a in
  let buf = Bytebuf.create (4 + (4 * n)) in
  let bytes, base, _ = Bytebuf.backing buf in
  let set32 off v =
    Bytes.unsafe_set bytes (base + off) (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set bytes (base + off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set bytes (base + off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set bytes (base + off + 3) (Char.unsafe_chr (v land 0xff))
  in
  set32 0 n;
  for i = 0 to n - 1 do
    (* Same range discipline as [schema_of_value]/[encode_into]: XDR
       integers are exactly 32 bits, and the byte stores below would
       silently truncate anything wider. *)
    check_int32 a.(i);
    set32 (4 + (4 * i)) a.(i)
  done;
  buf

let decode_int_array buf =
  let r = Cursor.reader buf in
  let n = Cursor.int32_as_int r in
  if n < 0 || 4 * n > Cursor.remaining r then
    error "XDR: array count %d exceeds input" n;
  Array.init n (fun _ -> Cursor.int32_as_int r)
