(** Sun XDR (RFC 1014), the subset the experiments need.

    XDR is not self-describing: sender and receiver share a schema (the
    abstract syntax agreed out of band) and the wire carries only values,
    each padded to a 4-byte boundary, big-endian. Cheaper per element than
    BER (no tags, no per-element length computation) but still a
    conversion: every integer is byte-swapped and every variable-length
    item padded. *)

open Bufkit

exception Error of string

type schema =
  | S_void
  | S_bool
  | S_int  (** 32-bit signed. *)
  | S_hyper  (** 64-bit signed. *)
  | S_opaque  (** Variable-length opaque, counted. *)
  | S_string
  | S_array of schema  (** Variable-length counted array. *)
  | S_struct of schema list

val schema_of_value : Value.t -> schema
(** Infer a schema from a sample value ([Int] → [S_int], [List] → [S_array]
    of the first element's schema or [S_struct] when heterogeneous...).
    Raises {!Error} on [Int] values outside 32-bit range. *)

val sizeof : schema -> Value.t -> int
(** Exact encoded size. Raises {!Error} if the value does not match. *)

val encode : schema -> Value.t -> Bytebuf.t
val encode_into : schema -> Value.t -> Cursor.writer -> unit

val encode_words : schema -> Value.t -> Wordsink.t -> unit
(** Drive a {!Wordsink} with the encoding, one 64-bit word at a time, so
    downstream ILP stage combinators (checksum feeder, keystream XOR, the
    delivering store) consume each word as it is produced instead of
    re-reading a finished buffer. Emits exactly {!sizeof}[ schema v]
    bytes; the caller flushes the sink. Byte-for-byte identical to
    {!encode}. *)

val decode : schema -> Bytebuf.t -> Value.t
val decode_prefix : schema -> Bytebuf.t -> Value.t * int

val decode_reader : schema -> Cursor.reader -> Value.t
(** Decode one value from an existing reader, leaving it positioned after
    the value. With a {!Cursor.demand_reader} this is the streaming
    decoder of the fused receive path: bytes are verified/decrypted on
    demand, just ahead of the parse. *)

val pp_schema : Format.formatter -> schema -> unit

val check_int32 : int -> unit
(** Raises {!Error} when the value cannot travel in a 32-bit lane — the
    range discipline shared by every encoder, including the compiled
    programs in {!Schema}. *)

val padding : int -> int
(** Bytes of zero padding after an [n]-byte counted item: [(4 - n mod 4)
    mod 4]. *)

(** {1 Integer-array fast paths} *)

val encode_int_array : int array -> Bytebuf.t
(** Counted array of 32-bit big-endian integers. Raises {!Error} on any
    element outside 32-bit range — the same discipline as
    {!schema_of_value} and {!encode_into}; the lanes are fixed-width, so
    wider values cannot be represented (they used to be truncated
    silently). Use {!Ber.encode_int_array} for full [int]-range data. *)

val decode_int_array : Bytebuf.t -> int array
