(** Lazy zero-copy decoding over a borrowed payload.

    {!make} runs the compiled {!Schema.validate} pass once; the returned
    view is just (buffer, offset, schema node) — no [Value.t] is built,
    no bytes are copied. Accessors then decode {e on demand}: scalars are
    read straight from the backing bytes, {!octets_view} aliases the
    payload, {!field} on a static-prefix struct and {!elem} on a
    static-element array are O(1) seeks, and only {!to_value} pays the
    full materialization the interpretive decoder always paid.

    Views {e borrow} their buffer. On the receive path the buffer is an
    ADU payload owned by a pool: a view must not outlive the delivery
    callback it was handed to (copy out — e.g. {!to_value} or
    [Bytebuf.copy (octets_view v)] — to retain data).

    Accessors trust validation: they never bounds-fail on a view built
    by {!make}, and calling a wrong-shape accessor (e.g. {!get_int} on a
    string node) raises [Invalid_argument] — a programming error, not a
    wire condition. Wire conditions are all caught at {!make} time,
    which is total on arbitrary bytes. *)

open Bufkit

type t

val make : Schema.prog -> Bytebuf.t -> pos:int -> ((t * int), string) result
(** [make prog buf ~pos] validates one encoded value at [pos] and
    returns the root view plus the end position (trailing bytes are the
    caller's concern, as with {!Xdr.decode_prefix}). Total: arbitrary
    bytes yield [Error], never an exception. The view aliases [buf]. *)

val schema : t -> Schema.t
val offset : t -> int
(** Start of this node's encoding within the underlying buffer. *)

val buffer : t -> Bytebuf.t
(** The underlying (borrowed) buffer. *)

(** {1 Scalars} *)

val get_bool : t -> bool
val get_int : t -> int
val get_hyper : t -> int64

val get_string : t -> string
(** Copies the bytes out (a [string] must own its storage). Use
    {!octets_view} to stay zero-copy. *)

val get_octets : t -> string

val octets_view : t -> Bytebuf.t
(** The counted bytes of a string/opaque node as a sub-slice {e aliasing
    the payload} — the zero-copy accessor. *)

(** {1 Structure} *)

val count : t -> int
(** Array element count (O(1) — reads the wire count), or struct field
    count (O(1) — schema arity). *)

val elem : t -> int -> t
(** [elem v i] is the [i]th array element. O(1) when the element type is
    statically sized (offset is [4 + i*k]); otherwise a trusted skip-walk
    over the preceding elements. Raises [Invalid_argument] out of
    range. *)

val field : t -> int -> t
(** [field v i] is the [i]th struct field. O(1) while every earlier
    field is statically sized (the compiled offset table); otherwise a
    trusted walk from the last static offset. *)

(** {1 Materialization} *)

val to_value : t -> Value.t
(** Decode the whole subtree — identical to what {!Xdr.decode} would
    produce (hypers canonicalized, structs as [List]). The opt-in slow
    path; everything above it avoids this. *)
