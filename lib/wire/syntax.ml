open Bufkit

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type t = Raw | Ber | Xdr of Xdr.schema | Lwts of Xdr.schema

let name = function
  | Raw -> "raw"
  | Ber -> "ber"
  | Xdr _ -> "xdr"
  | Lwts _ -> "lwts"

let pp ppf t = Format.pp_print_string ppf (name t)

(* Schema inference is the expensive part of probing (a full walk of the
   sample), and both XDR-family syntaxes need the same schema — derive it
   at most once per sample, lazily, and share it across a whole
   [negotiate] preference scan. *)
let for_sample ~schema n (v : Value.t) =
  match (String.lowercase_ascii n, v) with
  | "raw", Octets _ -> Some Raw
  | "raw", (Null | Bool _ | Int _ | Int64 _ | Utf8 _ | List _ | Record _) ->
      None
  | "ber", _ -> Some Ber
  | "xdr", _ -> (
      match Lazy.force schema with Some s -> Some (Xdr s) | None -> None)
  | "lwts", _ -> (
      match Lazy.force schema with Some s -> Some (Lwts s) | None -> None)
  | _, _ -> None

let infer v = lazy (try Some (Xdr.schema_of_value v) with Xdr.Error _ -> None)
let for_value n (v : Value.t) = for_sample ~schema:(infer v) n v

let encode t (v : Value.t) =
  match (t, v) with
  | Raw, Octets s -> Bytebuf.of_string s
  | Raw, (Null | Bool _ | Int _ | Int64 _ | Utf8 _ | List _ | Record _) ->
      error "raw syntax carries only octet strings"
  | Ber, _ -> Ber.encode v
  | Xdr schema, _ -> (
      try Xdr.encode schema v with Xdr.Error m -> error "%s" m)
  | Lwts schema, _ -> (
      try Lwts.encode schema v with Lwts.Error m -> error "%s" m)

let decode t buf : Value.t =
  match t with
  | Raw -> Octets (Bytebuf.to_string buf)
  | Ber -> ( try Ber.decode buf with Ber.Decode_error m -> error "%s" m)
  | Xdr schema -> ( try Xdr.decode schema buf with Xdr.Error m -> error "%s" m)
  | Lwts schema -> (
      try Lwts.decode schema buf with Lwts.Error m -> error "%s" m)

let sizeof t (v : Value.t) =
  match (t, v) with
  | Raw, Octets s -> String.length s
  | Raw, (Null | Bool _ | Int _ | Int64 _ | Utf8 _ | List _ | Record _) ->
      error "raw syntax carries only octet strings"
  | Ber, _ -> Ber.sizeof v
  | Xdr schema, _ -> (
      (* The compiled size program: static subtrees fold to constants,
         so repeated placement sizing (one call per ADU in a batch) costs
         a walk of the dynamic fields only — O(1) for static schemas. *)
      try Schema.size (Schema.prog_of_xdr schema) v
      with Xdr.Error m -> error "%s" m)
  | Lwts schema, _ -> (
      try Lwts.sizeof schema v with Lwts.Error m -> error "%s" m)

let placements t adus =
  let _, rev =
    List.fold_left
      (fun (off, acc) v ->
        let n = sizeof t v in
        (off + n, (off, n) :: acc))
      (0, []) adus
  in
  List.rev rev

let encode_sized t (v : Value.t) ~size =
  if size < 0 then error "negative encoded size";
  match (t, v) with
  | Raw, Octets s ->
      if String.length s <> size then
        error "raw syntax: size %d does not match %d-byte value" size
          (String.length s);
      Bytebuf.of_string s
  | Raw, (Null | Bool _ | Int _ | Int64 _ | Utf8 _ | List _ | Record _) ->
      error "raw syntax carries only octet strings"
  | (Ber | Xdr _ | Lwts _), _ ->
      let buf = Bytebuf.create size in
      let w = Cursor.writer buf in
      (try
         match t with
         | Raw -> assert false
         | Ber -> Ber.encode_into v w
         | Xdr schema -> Xdr.encode_into schema v w
         | Lwts schema -> Lwts.encode_into schema v w
       with
      | Cursor.Overflow _ ->
          error "encoding overran its declared %d-byte size" size
      | Xdr.Error m | Lwts.Error m -> error "%s" m);
      if Cursor.writer_pos w <> size then
        error "encoding used %d of its declared %d bytes" (Cursor.writer_pos w)
          size;
      buf

let negotiate ~sender ~receiver ~sample =
  let receiver = List.map String.lowercase_ascii receiver in
  let schema = infer sample in
  let acceptable n =
    if List.mem (String.lowercase_ascii n) receiver then
      for_sample ~schema n sample
    else None
  in
  List.find_map acceptable sender
