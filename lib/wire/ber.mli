(** ASN.1 Basic Encoding Rules, the subset the experiments need.

    Tags: BOOLEAN, INTEGER (minimal two's complement), OCTET STRING, NULL,
    UTF8String, SEQUENCE (definite lengths only). Record field names are
    not carried — [decode (encode v)] equals [Value.strip_names v].

    Two encoders are provided on purpose:

    - {!encode} is the tuned path the paper's hand-coded 28 Mb/s routine
      corresponds to: exact size computed up front, one pre-allocated
      buffer, a single writing pass.
    - {!encode_interpretive} is the ISODE-toolkit-flavoured path: each TLV
      is built as an intermediate string and concatenated, the way a
      generic presentation toolkit interprets the abstract syntax. Its
      slowness relative to {!encode} is part of experiment E5's honesty
      (the paper's footnote 5 makes the same tuned-vs-toolkit point).

    The integer-array fast paths are the workloads of experiments E3/E4. *)

open Bufkit

exception Decode_error of string

val sizeof : Value.t -> int
(** Exact encoded size in bytes. *)

val encode : Value.t -> Bytebuf.t

val encode_into : Value.t -> Cursor.writer -> unit
(** Encode into an existing buffer (for fused stacks); raises
    [Cursor.Overflow] if it does not fit. *)

val encode_words : Value.t -> Wordsink.t -> unit
(** Drive a {!Wordsink} with the encoding, one 64-bit word at a time, so
    downstream ILP stage combinators (checksum feeder, keystream XOR, the
    delivering store) consume each word as it is produced instead of
    re-reading a finished buffer. Emits exactly {!sizeof}[ v] bytes; the
    caller flushes the sink. Byte-for-byte identical to {!encode}. *)

val encode_interpretive : Value.t -> Bytebuf.t

val decode : Bytebuf.t -> Value.t
(** Decodes exactly one value; raises {!Decode_error} on malformed input
    or trailing bytes. *)

val decode_prefix : Bytebuf.t -> Value.t * int
(** Decode one value, returning it and the number of bytes consumed. *)

val decode_reader : Cursor.reader -> Value.t
(** Decode one value from an existing reader, leaving it positioned after
    the value. With a {!Cursor.demand_reader} this is the streaming
    decoder of the fused receive path: bytes are verified/decrypted on
    demand, just ahead of the parse. *)

(** {1 Integer-array fast paths (experiments E3 and E4)} *)

val encode_int_array : int array -> Bytebuf.t
(** SEQUENCE OF INTEGER, tuned single pass. BER INTEGERs are
    variable-length (minimal two's complement), so — unlike
    {!Xdr.encode_int_array}'s fixed 32-bit lanes — the full OCaml [int]
    range round-trips exactly; nothing is truncated (property-tested). *)

val decode_int_array : Bytebuf.t -> int array

val encode_int_array_with_checksum : int array -> Bytebuf.t * int
(** Encode and compute the Internet checksum of the encoding {e in the same
    loop} — the paper's "converted and checksummed in one step"
    measurement. Returns (encoding, checksum). *)
