(** Transfer-syntax selection, negotiation, and sender-computed placement.

    §5 of the paper: an ADU lives in the application's local syntax, a
    shared abstract syntax, and a negotiated transfer syntax; and the
    sender must be able to compute, {e in terms meaningful to the
    receiver}, where each ADU lands — otherwise out-of-order ADUs clog the
    presentation pipeline. This module packages those pieces: a uniform
    codec over the four transfer syntaxes, a capability-based negotiation,
    and exact sizing so a sender can compute receiver-side byte offsets
    for a sequence of ADUs before any of them is sent. *)

open Bufkit

exception Error of string

type t =
  | Raw  (** Image mode: only [Octets] values; the identity conversion. *)
  | Ber
  | Xdr of Xdr.schema
  | Lwts of Xdr.schema

val name : t -> string
val pp : Format.formatter -> t -> unit

val for_value : string -> Value.t -> t option
(** [for_value name v] builds the syntax named [name] ("raw", "ber",
    "xdr", "lwts"), inferring the schema from [v] where one is needed.
    [None] if the name is unknown or [v] cannot travel in that syntax
    (e.g. non-octets under [Raw]). *)

val encode : t -> Value.t -> Bytebuf.t
(** Raises {!Error} when the value does not fit the syntax. *)

val decode : t -> Bytebuf.t -> Value.t
(** Raises {!Error} on malformed input. *)

val sizeof : t -> Value.t -> int
(** Exact encoded size, computed without encoding. This is what lets a
    sender label ADUs with receiver-meaningful locations. XDR sizes run
    the compiled {!Schema} size program (statically-sized subtrees cost
    nothing — and, consequently, are not type-checked here; a mismatch
    inside one surfaces at {!encode} time). *)

val encode_sized : t -> Value.t -> size:int -> Bytebuf.t
(** [encode_sized t v ~size] encodes [v] into a [size]-byte buffer,
    where [size] is a previously computed {!sizeof}[ t v] — the batch
    form: {!placements} already sized every ADU, so encoding each one
    must not walk the value again just to size its buffer. Raises
    {!Error} if the encoding does not occupy exactly [size] bytes. *)

val placements : t -> Value.t list -> (int * int) list
(** [placements t adus] is [(offset, length)] of each ADU's encoding within
    the receiver's concatenated stream — computable entirely at the sender,
    before transmission, in ADU order. *)

(** {1 Negotiation} *)

val negotiate :
  sender:string list -> receiver:string list -> sample:Value.t -> t option
(** Pick the first syntax (by sender preference order) both peers support
    and that can carry [sample]; the classic out-of-band presentation
    negotiation. *)
