(* A word-granular byte sink: encoders push wire bytes, the sink packs
   them into a 64-bit accumulator (first wire byte in the low octet, the
   same octet<->memory correspondence a little-endian load gives the ILP
   word loop) and hands each completed word to [word] together with the
   byte offset of its first byte. Whatever tail is left over when [flush]
   is called goes out byte-by-byte through [byte] — the tail necessarily
   starts on an 8-aligned offset, which is exactly the word-loop/byte-tail
   seam the fused checksum combinators rely on for 16-bit parity. *)

type t = {
  mutable acc : int64;
  mutable fill : int;  (* bytes currently packed in [acc], 0..7 *)
  mutable pos : int;  (* total bytes pushed so far *)
  word : int -> int64 -> unit;
  byte : int -> int -> unit;
}

let create ~word ~byte = { acc = 0L; fill = 0; pos = 0; word; byte }
let pos t = t.pos

(* The workhorse: insert [k] wire bytes (1..8), already packed
   little-endian (first wire byte in the low octet) into [le]. Bits of
   [le] above the low [8k] must be zero. *)
let insert t le k =
  let fill = t.fill in
  let base = t.pos - fill in
  t.acc <- Int64.logor t.acc (Int64.shift_left le (fill lsl 3));
  t.pos <- t.pos + k;
  let nfill = fill + k in
  if nfill >= 8 then begin
    t.word base t.acc;
    let rem = nfill - 8 in
    t.acc <-
      (if rem = 0 then 0L else Int64.shift_right_logical le ((8 - fill) lsl 3));
    t.fill <- rem
  end
  else t.fill <- nfill

let put_u8 t b = insert t (Int64.of_int (b land 0xff)) 1

let put_u16be t v =
  insert t (Int64.of_int (((v lsr 8) land 0xff) lor ((v land 0xff) lsl 8))) 2

let put_u32be t v =
  insert t
    (Int64.of_int
       (((v lsr 24) land 0xff)
       lor (((v lsr 16) land 0xff) lsl 8)
       lor (((v lsr 8) land 0xff) lsl 16)
       lor ((v land 0xff) lsl 24)))
    4

let bswap64 x =
  let open Int64 in
  let x =
    logor
      (shift_left (logand x 0x00FF00FF00FF00FFL) 8)
      (logand (shift_right_logical x 8) 0x00FF00FF00FF00FFL)
  in
  let x =
    logor
      (shift_left (logand x 0x0000FFFF0000FFFFL) 16)
      (logand (shift_right_logical x 16) 0x0000FFFF0000FFFFL)
  in
  logor (shift_left x 32) (shift_right_logical x 32)

let put_u64be t v = insert t (bswap64 v) 8

let put_string t s =
  let n = String.length s in
  let i = ref 0 in
  (* Up to word alignment byte-wise, then whole unaligned loads. *)
  while t.fill <> 0 && !i < n do
    put_u8 t (Char.code (String.unsafe_get s !i));
    incr i
  done;
  while n - !i >= 8 do
    insert t (String.get_int64_le s !i) 8;
    i := !i + 8
  done;
  while !i < n do
    put_u8 t (Char.code (String.unsafe_get s !i));
    incr i
  done

let put_zeros t k =
  for _ = 1 to k do
    insert t 0L 1
  done

let flush t =
  let fill = t.fill in
  if fill > 0 then begin
    let base = t.pos - fill in
    let acc = t.acc in
    for j = 0 to fill - 1 do
      t.byte (base + j)
        (Int64.to_int (Int64.shift_right_logical acc (j lsl 3)) land 0xff)
    done;
    t.acc <- 0L;
    t.fill <- 0
  end
