(* Schema-compiled presentation: lower an XDR schema ONCE into a
   specialized marshal/size/validate program, so the per-send cost is a
   single destructuring walk of the value — no (schema, value)
   double-dispatch, no re-derived sizes, no per-field tag branches
   (Bebop's "the schema is known ahead of time" argument, applied to the
   ILP marshal source).

   Three programs are compiled per schema and cached together:

   - [emit]: drives a {!Wordsink} with exactly the bytes
     {!Xdr.encode_words} would produce. Fixed-width fields compile to
     direct word inserts; an int array packs two big-endian lanes per
     8-byte insert; struct fields are a pre-lowered emitter array walked
     by a top-level loop (no closures allocated per call).
   - [size]: the branchless length precomputation. Statically-sized
     subtrees fold to a constant at compile time — a fully static schema
     sizes in O(1), a mixed struct only walks its dynamic fields.
   - [validate]: a TOTAL one-pass structural check over received bytes
     (LowParse-style): runs of content-free fixed-size fields fuse into
     single bounds comparisons, counted fields get the same strictness
     as {!Xdr.decode}. [Ok consumed] iff {!Xdr.decode_prefix} would
     succeed and consume [consumed] bytes — the contract {!View}'s O(1)
     accessors rely on. *)

open Bufkit

(* ------------------------------------------------------------------ *)
(* The wire-shape description.                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  shape : shape;
  static : int option;  (* encoded size when value-independent *)
  content_free : bool;  (* no booleans, no counted lengths: any bytes
                           of the right length are a valid encoding *)
}

and shape =
  | Void
  | Bool
  | Int
  | Hyper
  | Opaque
  | Str
  | Array of t
  | Struct of t array * int option array
      (* fields, plus each field's start offset from the struct's first
         byte when every earlier field is statically sized — the O(1)
         field-access table for {!View}. *)

let static t = t.static
let content_free t = t.content_free

let rec of_xdr (s : Xdr.schema) : t =
  match s with
  | S_void -> { shape = Void; static = Some 0; content_free = true }
  | S_bool -> { shape = Bool; static = Some 4; content_free = false }
  | S_int -> { shape = Int; static = Some 4; content_free = true }
  | S_hyper -> { shape = Hyper; static = Some 8; content_free = true }
  | S_opaque -> { shape = Opaque; static = None; content_free = false }
  | S_string -> { shape = Str; static = None; content_free = false }
  | S_array el ->
      { shape = Array (of_xdr el); static = None; content_free = false }
  | S_struct ss ->
      let fields = Array.of_list (List.map of_xdr ss) in
      let n = Array.length fields in
      let offsets = Array.make n None in
      let off = ref (Some 0) in
      Array.iteri
        (fun i f ->
          offsets.(i) <- !off;
          off :=
            match (!off, f.static) with
            | Some o, Some k -> Some (o + k)
            | _, _ -> None)
        fields;
      {
        shape = Struct (fields, offsets);
        static = !off;
        content_free = Array.for_all (fun f -> f.content_free) fields;
      }

let rec to_xdr t : Xdr.schema =
  match t.shape with
  | Void -> S_void
  | Bool -> S_bool
  | Int -> S_int
  | Hyper -> S_hyper
  | Opaque -> S_opaque
  | Str -> S_string
  | Array el -> S_array (to_xdr el)
  | Struct (fields, _) ->
      S_struct (Array.to_list (Array.map to_xdr fields))

let of_value v = of_xdr (Xdr.schema_of_value v)
let pp ppf t = Xdr.pp_schema ppf (to_xdr t)
let equal a b = to_xdr a = to_xdr b

(* ------------------------------------------------------------------ *)
(* The emit program.                                                   *)
(* ------------------------------------------------------------------ *)

type emitter = Wordsink.t -> Value.t -> unit

let mismatch () = raise (Xdr.Error "XDR: value does not match schema")
let arity () = raise (Xdr.Error "XDR: struct arity mismatch")

(* The 4 big-endian wire bytes of [v], packed little-endian (first wire
   byte in the low octet) — exactly {!Wordsink.put_u32be}'s packing,
   exposed so two array lanes can go out in one 8-byte insert. *)
let le32 v =
  ((v lsr 24) land 0xff)
  lor (((v lsr 16) land 0xff) lsl 8)
  lor (((v lsr 8) land 0xff) lsl 16)
  lor ((v land 0xff) lsl 24)

(* Children are emitted through top-level recursion over pre-lowered
   emitter arrays, never [List.iter (fun v -> ...)]: the steady-state
   emit path allocates nothing. *)
let rec emit_list (e : emitter) sink = function
  | [] -> ()
  | v :: tl ->
      e sink v;
      emit_list e sink tl

let rec emit_struct_list es n i sink = function
  | [] -> if i <> n then arity ()
  | v :: tl ->
      if i >= n then arity ();
      es.(i) sink v;
      emit_struct_list es n (i + 1) sink tl

let rec emit_struct_fields es n i sink = function
  | [] -> if i <> n then arity ()
  | (_, v) :: tl ->
      if i >= n then arity ();
      es.(i) sink v;
      emit_struct_fields es n (i + 1) sink tl

(* Two 32-bit lanes per 8-byte insert: the direct int-array blit. Byte
   stream identical to two [put_u32be] — {!Wordsink.insert} is
   grouping-insensitive. *)
let rec emit_int_pairs sink = function
  | Value.Int x :: Value.Int y :: tl ->
      Xdr.check_int32 x;
      Xdr.check_int32 y;
      Wordsink.insert sink
        (Int64.logor
           (Int64.of_int (le32 x))
           (Int64.shift_left (Int64.of_int (le32 y)) 32))
        8;
      emit_int_pairs sink tl
  | [ Value.Int x ] ->
      Xdr.check_int32 x;
      Wordsink.put_u32be sink x
  | [] -> ()
  | _ :: _ -> mismatch ()

let rec emit_hyper_list sink = function
  | [] -> ()
  | Value.Int64 i :: tl ->
      Wordsink.put_u64be sink i;
      emit_hyper_list sink tl
  | Value.Int i :: tl ->
      Wordsink.put_u64be sink (Int64.of_int i);
      emit_hyper_list sink tl
  | _ :: _ -> mismatch ()

let emit_counted sink s =
  let n = String.length s in
  Wordsink.put_u32be sink n;
  Wordsink.put_string sink s;
  Wordsink.put_zeros sink (Xdr.padding n)

(* Each node compiles to a closure that destructures the value ONCE and
   emits — the schema side of the dispatch is resolved here, at compile
   time. *)
let rec compile_emit (s : Xdr.schema) : emitter =
  match s with
  | S_void -> (
      fun _ v -> match v with Value.Null -> () | _ -> mismatch ())
  | S_bool -> (
      fun sink v ->
        match v with
        | Value.Bool b -> Wordsink.put_u32be sink (if b then 1 else 0)
        | _ -> mismatch ())
  | S_int -> (
      fun sink v ->
        match v with
        | Value.Int i ->
            Xdr.check_int32 i;
            Wordsink.put_u32be sink i
        | _ -> mismatch ())
  | S_hyper -> (
      fun sink v ->
        match v with
        | Value.Int64 i -> Wordsink.put_u64be sink i
        | Value.Int i -> Wordsink.put_u64be sink (Int64.of_int i)
        | _ -> mismatch ())
  | S_opaque -> (
      fun sink v ->
        match v with Value.Octets s -> emit_counted sink s | _ -> mismatch ())
  | S_string -> (
      fun sink v ->
        match v with Value.Utf8 s -> emit_counted sink s | _ -> mismatch ())
  | S_array S_int -> (
      fun sink v ->
        match v with
        | Value.List vs ->
            Wordsink.put_u32be sink (List.length vs);
            emit_int_pairs sink vs
        | _ -> mismatch ())
  | S_array S_hyper -> (
      fun sink v ->
        match v with
        | Value.List vs ->
            Wordsink.put_u32be sink (List.length vs);
            emit_hyper_list sink vs
        | _ -> mismatch ())
  | S_array el ->
      let e = compile_emit el in
      fun sink v ->
        (match v with
        | Value.List vs ->
            Wordsink.put_u32be sink (List.length vs);
            emit_list e sink vs
        | _ -> mismatch ())
  | S_struct ss ->
      let es = Array.of_list (List.map compile_emit ss) in
      let n = Array.length es in
      fun sink v ->
        (match v with
        | Value.List vs -> emit_struct_list es n 0 sink vs
        | Value.Record fs -> emit_struct_fields es n 0 sink fs
        | _ -> mismatch ())

(* ------------------------------------------------------------------ *)
(* The size program.                                                   *)
(* ------------------------------------------------------------------ *)

type sizer = Fixed of int | Dyn of (Value.t -> int)

let counted_size s =
  let n = String.length s in
  4 + n + Xdr.padding n

let rec size_list f acc = function
  | [] -> acc
  | v :: tl -> size_list f (acc + f v) tl

let rec size_struct_list zs n i acc = function
  | [] -> if i <> n then arity () else acc
  | v :: tl ->
      if i >= n then arity ();
      let k = match zs.(i) with Fixed k -> k | Dyn f -> f v in
      size_struct_list zs n (i + 1) (acc + k) tl

let rec size_struct_fields zs n i acc = function
  | [] -> if i <> n then arity () else acc
  | (_, v) :: tl ->
      if i >= n then arity ();
      let k = match zs.(i) with Fixed k -> k | Dyn f -> f v in
      size_struct_fields zs n (i + 1) (acc + k) tl

(* Statically-sized subtrees fold to [Fixed] and are never walked at
   size time; a mismatched value under a fully static schema therefore
   surfaces at emit time, not sizing time (run_marshal raises either
   way). *)
let rec compile_size (s : Xdr.schema) : sizer =
  match s with
  | S_void -> Fixed 0
  | S_bool | S_int -> Fixed 4
  | S_hyper -> Fixed 8
  | S_opaque ->
      Dyn
        (fun v ->
          match v with Value.Octets s -> counted_size s | _ -> mismatch ())
  | S_string ->
      Dyn
        (fun v ->
          match v with Value.Utf8 s -> counted_size s | _ -> mismatch ())
  | S_array el -> (
      match compile_size el with
      | Fixed k ->
          Dyn
            (fun v ->
              match v with
              | Value.List vs -> 4 + (k * List.length vs)
              | _ -> mismatch ())
      | Dyn f ->
          Dyn
            (fun v ->
              match v with
              | Value.List vs -> size_list f 4 vs
              | _ -> mismatch ()))
  | S_struct ss ->
      let zs = List.map compile_size ss in
      if List.for_all (function Fixed _ -> true | Dyn _ -> false) zs then
        Fixed
          (List.fold_left
             (fun acc z -> match z with Fixed k -> acc + k | Dyn _ -> acc)
             0 zs)
      else
        let zs = Array.of_list zs in
        let n = Array.length zs in
        Dyn
          (fun v ->
            match v with
            | Value.List vs -> size_struct_list zs n 0 0 vs
            | Value.Record fs -> size_struct_fields zs n 0 0 fs
            | _ -> mismatch ())

(* ------------------------------------------------------------------ *)
(* The validate program. TOTAL: never raises past its own boundary.    *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

(* A validation op: (bytes, absolute limit, absolute pos) -> new pos. *)
type vop = Bytes.t -> int -> int -> int

let need b limit pos k =
  ignore b;
  if pos + k > limit then invalid "XDR: truncated input"

(* Big-endian 32-bit load, sign-extended like [Cursor.int32_as_int]. *)
let i32 b pos =
  let v =
    (Char.code (Bytes.unsafe_get b pos) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get b (pos + 3))
  in
  (v lxor 0x8000_0000) - 0x8000_0000

let rec compile_validate (sc : t) : vop =
  match (sc.content_free, sc.static) with
  | true, Some k ->
      (* Content-free static subtree: one bounds comparison covers the
         whole thing, however many fields it spans. *)
      fun b limit pos ->
        need b limit pos k;
        pos + k
  | _, _ -> (
      match sc.shape with
      | Void | Int | Hyper ->
          (* content-free, handled above *)
          assert false
      | Bool ->
          fun b limit pos ->
            need b limit pos 4;
            let v = i32 b pos in
            if v <> 0 && v <> 1 then invalid "XDR: boolean with value %d" v;
            pos + 4
      | Opaque | Str ->
          fun b limit pos ->
            need b limit pos 4;
            let n = i32 b pos in
            if n < 0 || n > limit - (pos + 4) then
              invalid "XDR: bad counted length %d" n;
            let e = pos + 4 + n + Xdr.padding n in
            if e > limit then invalid "XDR: truncated input";
            e
      | Array el -> (
          match (el.content_free, el.static) with
          | true, Some k ->
              (* count check + one multiply: the whole array in O(1). *)
              fun b limit pos ->
                need b limit pos 4;
                let n = i32 b pos in
                if n < 0 || n > 0x1000000 then
                  invalid "XDR: unreasonable array count %d" n;
                let e = pos + 4 + (n * k) in
                if e > limit then invalid "XDR: truncated input";
                e
          | _, _ ->
              let ve = compile_validate el in
              fun b limit pos ->
                need b limit pos 4;
                let n = i32 b pos in
                if n < 0 || n > 0x1000000 then
                  invalid "XDR: unreasonable array count %d" n;
                let p = ref (pos + 4) in
                for _ = 1 to n do
                  p := ve b limit !p
                done;
                !p)
      | Struct (fields, _) ->
          (* Fuse runs of content-free static fields into single skip
             ops — the flat program a hand-written validator would be. *)
          let ops = ref [] in
          let pend = ref 0 in
          let flush () =
            if !pend > 0 then begin
              let k = !pend in
              ops :=
                (fun b limit pos ->
                  need b limit pos k;
                  pos + k)
                :: !ops;
              pend := 0
            end
          in
          Array.iter
            (fun f ->
              match (f.content_free, f.static) with
              | true, Some k -> pend := !pend + k
              | _, _ ->
                  flush ();
                  ops := compile_validate f :: !ops)
            fields;
          flush ();
          let ops = Array.of_list (List.rev !ops) in
          let nops = Array.length ops in
          fun b limit pos ->
            let p = ref pos in
            for i = 0 to nops - 1 do
              p := ops.(i) b limit !p
            done;
            !p)

(* ------------------------------------------------------------------ *)
(* The compiled program and its cache.                                 *)
(* ------------------------------------------------------------------ *)

type prog = {
  p_schema : t;
  p_xdr : Xdr.schema;
  p_sizer : sizer;
  p_emit : emitter;
  p_validate : vop;
}

let root p = p.p_schema
let xdr_schema p = p.p_xdr
let static_size p = p.p_schema.static

let compile (s : Xdr.schema) =
  let sc = of_xdr s in
  {
    p_schema = sc;
    p_xdr = s;
    p_sizer = compile_size s;
    p_emit = compile_emit s;
    p_validate = compile_validate sc;
  }

let size p v = match p.p_sizer with Fixed k -> k | Dyn f -> f v
let emit p sink v = p.p_emit sink v

let validate p buf ~pos =
  let b, base, len = Bytebuf.backing buf in
  if pos < 0 || pos > len then Error "XDR: position outside the buffer"
  else
    match p.p_validate b (base + len) (base + pos) with
    | p' -> Ok (p' - base)
    | exception Invalid m -> Error m

(* One program per distinct schema, compiled once, shared across
   domains — the presentation twin of the PR 4 ILP plan cache (which
   keys on plan shapes; this keys on schemas, and the two compose into
   one fused loop in [Ilp.run_marshal]). *)
let cache : (Xdr.schema, prog) Hashtbl.t = Hashtbl.create 16
let cache_mu = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let c_hits = Obs.Registry.counter "wire.schema.cache.hits"
let c_misses = Obs.Registry.counter "wire.schema.cache.misses"

type cache_stats = { hits : int; misses : int; entries : int }

let prog_of_xdr s =
  Mutex.lock cache_mu;
  match
    match Hashtbl.find_opt cache s with
    | Some p ->
        incr cache_hits;
        Obs.Counter.incr c_hits;
        p
    | None ->
        incr cache_misses;
        Obs.Counter.incr c_misses;
        let p = compile s in
        Hashtbl.add cache s p;
        p
  with
  | p ->
      Mutex.unlock cache_mu;
      p
  | exception e ->
      Mutex.unlock cache_mu;
      raise e

let prog_of_value v = prog_of_xdr (Xdr.schema_of_value v)

let cache_stats () =
  Mutex.lock cache_mu;
  let s =
    {
      hits = !cache_hits;
      misses = !cache_misses;
      entries = Hashtbl.length cache;
    }
  in
  Mutex.unlock cache_mu;
  s
