(** Stage 2 of the two-stage receive architecture.

    §6: "once a complete ADU is received, even if it is out of order …
    it can be passed to the application for the second stage of
    processing. This processing will include all the required data
    manipulations, including error and encryption checks, and possibly
    presentation conversion."

    A stage-2 processor is a per-ADU {!Ilp} plan (chosen per ADU, so
    cipher positions and conversions can depend on the ADU's name) run
    by the {e fused} executor, wrapped as an ordinary delivery callback —
    it plugs directly into [Alf_transport.receiver ~deliver]. Plans that
    would forbid out-of-order ADUs (a sequential cipher) are rejected at
    processing time and counted, never silently reordered.

    With [?pool], accepted ADUs are batched and sharded across the
    pool's worker domains by {!Ilp_par} — the §7 parallel sink. Results
    are still handed to [deliver] on the {e calling} domain, in arrival
    order, so downstream code observes exactly the serial behaviour;
    only the data manipulation runs in parallel. Call {!flush} when the
    source pauses or completes to drain a partial batch. *)

type result = {
  adu : Adu.t;  (** Name unchanged; payload is the plan's output. *)
  checksums : (Checksum.Kind.t * int) list;
}

type stats = {
  mutable processed : int;
  mutable rejected_order : int;
      (** Plans that demanded in-order processing. *)
  mutable rejected_invalid : int;  (** Plans that failed {!Ilp.validate}. *)
}

type t

val create :
  ?pool:Par.Pool.t ->
  ?batch:int ->
  ?out_pool:Bufkit.Pool.t ->
  ?in_pool:Bufkit.Pool.t ->
  plan:(Adu.t -> Ilp.plan) ->
  deliver:(result -> unit) ->
  unit ->
  t
(** Without [?pool], each ADU is processed inline as it arrives (the
    PR-1 behaviour). With [?pool], ADUs accumulate and every [batch]
    (default 32) are executed in parallel; [deliver] still runs on the
    caller, in arrival order. Raises [Invalid_argument] if [batch < 1].

    [?out_pool] recycles {e output} buffers: the fused loop writes into a
    pool slice ([Ilp.run_fused ~dst]) instead of allocating per ADU. The
    delivered payload then only remains valid while [deliver] runs —
    consume or copy it before returning. ADUs larger than the pool's
    [buf_size], or arriving while the pool is exhausted, fall back to
    allocation transparently.

    [?in_pool] matters only with [?pool] (batched mode): arriving
    payloads are staged into pool-owned buffers until the flush. Provide
    it whenever the transport hands out {e borrowed} payloads (a pooled
    {!Framing.reassembler}); without it, batched mode retains the
    caller's payload until the flush. If the staging pool cannot serve
    an ADU, a private copy is made rather than retaining the borrow.

    With both pools, steady-state receive does zero buffer allocations
    per ADU (see the [ilp-compile/pooled-receive] bench row). *)

val deliver_fn : t -> Adu.t -> unit
(** The callback to hand to the transport: runs (or, pooled, enqueues)
    the ADU's plan and forwards the result. *)

val flush : t -> unit
(** Process any backlogged ADUs now. A no-op without [?pool] or when the
    backlog is empty. *)

val stats : t -> stats
(** Note: in pooled mode [processed] counts ADUs whose results have been
    {e delivered}; accepted-but-unflushed ADUs are not yet counted. *)

val decrypt_verify : key:int64 -> Ilp.plan
(** A ready-made stage-2 plan body for {!Secure}-sealed ADUs: positional
    decrypt, Internet checksum of the plaintext, move into application
    memory. Use as [~plan:(fun adu -> Stage2.decrypt_verify_at ~key adu)]
    via {!decrypt_verify_at}. *)

val decrypt_verify_at : key:int64 -> Adu.t -> Ilp.plan
(** {!decrypt_verify} with the keystream position taken from the ADU's
    [dest_off]. *)
