(** Out-of-band session establishment.

    The paper deliberately separates data transfer from "session
    initiation, service location, and so on" and wants transfer-rate
    negotiation "performed on an out-of-band basis" (§3). This module is
    that out-of-band channel: a SETUP/ACCEPT exchange, before any data
    flows, that agrees on

    - the transfer syntax (by name, sender preference order — the
      presentation negotiation of §5),
    - the record cipher (same shape: preference order against the
      responder's supported set; ["chacha20"] is the default offer and
      the default supported list, so an AEAD record layer is what two
      unconfigured endpoints agree on — "rc4" survives only as the §5
      in-order chaining ablation and must be enabled explicitly,
      "none" means plaintext records),
    - the sending rate (responder may clamp the initiator's proposal),
    - the recovery policy the sender intends (advisory, so the receiver
      can size its expectations).

    The exchange is one datagram each way, retried by the initiator;
    the responder answers duplicates idempotently from its session table.
    What comes back is a {!granted} contract both sides then use to
    construct their {!Alf_transport} endpoints — no in-band control was
    added to the data-transfer path. *)

open Netsim

type offer = {
  stream : int;
  syntaxes : string list;  (** Preference order, e.g. ["lwts"; "ber"]. *)
  rate_bps : float;  (** Proposed sending rate; 0 = unpaced. *)
  policy : string;  (** "buffer" | "recompute" | "none" (advisory). *)
  ciphers : string list;  (** Record-cipher preference order; [[]] is
      shorthand for [["chacha20"]] — plaintext must be asked for by
      name ("none"), and "rc4" only exists as the §5 ablation. *)
}

type granted = {
  g_stream : int;
  g_syntax : string;  (** The agreed transfer syntax name. *)
  g_rate_bps : float;  (** The agreed (possibly clamped) rate; 0 = unpaced. *)
  g_policy : string;
  g_cipher : string;  (** The agreed record cipher ("chacha20" | "rc4" |
      "none") — both sides derive their {!Secure.Record} keys under it. *)
}

type responder

val listen :
  engine:Engine.t ->
  io:Dgram.t ->
  port:int ->
  supported:string list ->
  ?ciphers:string list ->
  ?max_rate_bps:float ->
  on_session:(peer:Packet.addr -> granted -> unit) ->
  unit ->
  responder
(** Accept sessions whose syntax list intersects [supported] {e and}
    whose cipher list intersects [ciphers] (first match in the
    {e initiator's} order wins on both; [ciphers] defaults to
    [["chacha20"; "none"]] — accepting the RC4 ablation takes an
    explicit opt-in); clamp rates above [max_rate_bps]
    (default: unlimited). [on_session] fires once per new session — the
    place to create the receiving endpoint. *)

val sessions_accepted : responder -> int
val sessions_rejected : responder -> int

val initiate :
  engine:Engine.t ->
  io:Dgram.t ->
  port:int ->
  peer:Packet.addr ->
  peer_port:int ->
  offer:offer ->
  ?retry_interval:float ->
  ?max_retries:int ->
  on_result:(granted option -> unit) ->
  unit ->
  unit
(** Send SETUP and await ACCEPT/REJECT; [on_result None] after a
    rejection or exhausted retries. *)
