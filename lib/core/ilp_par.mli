(** Parallel out-of-order execution of per-ADU ILP plans — the multicore
    stage-2 receive engine.

    §5–7's central claim operationalized: because a complete ADU can be
    processed "out of order and independently", a batch of ADUs can be
    sharded across the worker domains of a {!Par.Pool}, each running its
    fused plan ({!Ilp.run_fused}) and writing into its {e pre-assigned}
    slot — index [i] of the result array, and, when [~dst] is given, the
    ADU's own [dest_off] region of the destination buffer. There is no
    reassembly hot spot and no completion-order dependence anywhere in
    the results.

    Degradation rule: a plan for which {!Ilp.needs_in_order} holds (a
    sequential cipher) forbids out-of-order processing across ADUs, so if
    {e any} ADU of the batch demands it, the whole batch runs serially in
    index order on the calling domain — same results, no parallelism,
    counted in [serial_fallback]. *)

open Bufkit

type outcome = {
  results : Ilp.result array;
      (** Slot [i] is ADU [i]'s result, whatever order slots finished. *)
  merged_checksums : (Checksum.Kind.t * int) list;
      (** {!merge_checksums} over the per-ADU checksum lists. *)
  parallel_adus : int;  (** ADUs executed on pool workers. *)
  serial_fallback : int;
      (** ADUs forced onto the serial path by {!Ilp.needs_in_order}. *)
}

val merge_checksums :
  (Checksum.Kind.t * int) list array -> (Checksum.Kind.t * int) list
(** Deterministic order-independent merge: for each checksum kind (in
    first-occurrence order over slots), fold the per-ADU digests in slot
    order through a 32-bit hash combine. Because the fold runs over the
    position-indexed array, the merged value depends only on ADU indices
    and contents — never on completion order. *)

val run :
  ?pool:Par.Pool.t ->
  ?dst:Bytebuf.t ->
  ?outs:Bytebuf.t option array ->
  plan:(Adu.t -> Ilp.plan) ->
  Adu.t array ->
  outcome
(** Run each ADU's plan with the fused executor. Without [?pool] (or on a
    pool of size 1, or under the degradation rule) execution is serial in
    index order on the caller. With [~dst], each ADU's fused loop writes
    {e directly} into [dst] at its name's [dest_off] (the result's
    [output] aliases that region); regions must be disjoint — offsets and
    lengths are bounds-checked up front, and [Invalid_argument] is raised
    before any work is dispatched. With [?outs] (ignored when [~dst] is
    given), slot [i] supplies ADU [i]'s output buffer — typically a
    {!Bufkit.Pool} slice; [None] slots allocate as usual. Each non-[None]
    slot must match its payload's length (checked up front). Plans that
    fail {!Ilp.validate} also raise [Invalid_argument] up front. *)
