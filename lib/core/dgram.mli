(** The datagram service the ALF transport runs over.

    The paper insists the architecture outlive "the network technology of
    the day": ADUs must move equally well over classic packet switching
    or over ATM cells. This record is that seam — an unreliable,
    unordered, message-boundary-preserving service with ports — with
    constructors for each substrate ({!of_udp} here; the ATM bearer
    provides its own in [Atmsim.Bearer]). *)

open Bufkit
open Netsim

type handler = src:Packet.addr -> src_port:int -> Bytebuf.t -> unit

type t = {
  send : dst:Packet.addr -> dst_port:int -> src_port:int -> Bytebuf.t -> bool;
      (** Fire and forget; [false] when the first hop refused it. *)
  bind : port:int -> handler -> unit;
      (** Register the handler for a local port (replacing any previous). *)
  max_payload : int;
      (** Largest datagram the substrate will carry. *)
}

val of_udp : Transport.Udp.t -> t
(** UDP-like datagrams over the packet-switched simulator. *)

val of_rt : Rt.Udp_link.t -> t
(** Real UDP datagrams over kernel sockets ({!Rt.Udp_link}): the link's
    integer peer addresses are {!Netsim.Packet.addr}-compatible, so the
    transport built on this record is byte-for-byte the one that runs
    over the simulator. Delivered payloads are borrowed (stage-1
    contract); pair with [Rt.Loop.sched] as the transport scheduler. *)

val of_atm : Atmsim.Bearer.t -> t
(** Datagrams over ATM: the destination port selects the virtual circuit
    (VCI), a 2-byte in-frame header carries the source port, and the AAL
    handles segmentation into cells. Claims the bearer's frame handler —
    create at most one datagram service per bearer. *)

val striped : t list -> t
(** §7's parallel-network dispersal: one logical channel over several
    physical ones. Sends go round-robin across the stripes; a [bind]
    registers the handler on every stripe. The stripes will reorder
    traffic against each other freely (they may have different delays) —
    which is exactly the situation self-describing ADUs were designed
    for, and which a sequence-numbered byte stream cannot tolerate.
    [max_payload] is the minimum across stripes. Raises
    [Invalid_argument] on an empty list. *)
