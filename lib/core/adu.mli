(** Application Data Units.

    The paper's central object: "the application should break the data
    into suitable aggregates, and the lower levels should preserve these
    frame boundaries as they process the data". An ADU carries its own
    {!name} — the sender-computed, receiver-meaningful description of
    where (and when) its data belongs — so it can be checked, converted
    and delivered {e out of order} with respect to its siblings, and so a
    loss can be reported to the application in application terms.

    The name-space follows §5's two canonical examples: [dest_off] /
    [dest_len] place the ADU in a spatial name-space (a file position, a
    screen tile), and [timestamp_us] places it in time (which video frame
    it belongs to). Applications that need neither leave them zero; the
    [index] alone then names the ADU's place in the sequence.

    The wire encoding protects header and payload together with a CRC-32,
    making every ADU independently verifiable — a synchronisation point in
    the paper's sense. *)

open Bufkit

type name = {
  stream : int;  (** Association id, 0–65535. *)
  index : int;  (** Position in the sender's ADU sequence, 0-based. *)
  dest_off : int;  (** Receiver-side placement offset (bytes, tile id...). *)
  dest_len : int;  (** Length the decoded ADU occupies at the receiver. *)
  timestamp_us : int64;  (** Temporal name (e.g. frame presentation time). *)
}

val name :
  ?dest_off:int -> ?dest_len:int -> ?timestamp_us:int64 -> stream:int ->
  index:int -> unit -> name

val pp_name : Format.formatter -> name -> unit

type t = { name : name; payload : Bytebuf.t }

val make : name -> Bytebuf.t -> t

val header_size : int
(** 36 bytes. *)

val magic : int
(** The 16-bit wire magic at bytes 0–1 of every encoded ADU (0xADF0) —
    exposed so fused send paths can lay the header down in place. *)

val encoded_size : t -> int

exception Decode_error of string

val encode : t -> Bytebuf.t
(** Header (magic, name, payload length, CRC-32 of everything) followed by
    payload, in one fresh buffer. *)

val decode : Bytebuf.t -> t
(** Raises {!Decode_error} on truncation, bad magic or CRC mismatch. The
    payload is a fresh copy. *)

val decode_view : Bytebuf.t -> t
(** Like {!decode}, but the payload {e aliases} the input buffer — zero
    copies, zero allocations. The caller owns the lifetime question: if
    the buffer is pooled or reused (e.g. a {!Bufkit.Pool} reassembly
    buffer), the payload is only valid until the buffer is released, so
    consume or copy it before then. *)

val decode_view_res : Bytebuf.t -> (t, string) result
(** Total form of {!decode_view}: malformed input (truncation, bad magic,
    length mismatch, CRC mismatch) is an [Error _], never an exception.
    The form server dispatch and other hostile-input paths use. *)

val pp : Format.formatter -> t -> unit
