open Bufkit

(* Control-message discriminators (data fragments start with 0xAD, see
   Framing; FEC-wrapped fragments with 0xFE). *)
let tag_nack = 0xC1
let tag_close = 0xC2
let tag_done = 0xC3
let tag_gone = 0xC4
let tag_fec = 0xFE

(* --- Per-datagram integrity ---

   Every datagram (data fragment or control message) optionally carries a
   4-byte big-endian checksum trailer over the rest of the payload.
   Corrupted transmission units are dropped at stage 1 instead of
   poisoning reassembly or being mistaken for control traffic. Both ends
   must agree on the [integrity] kind; the trailer sits at the end so the
   stream id at bytes 1–2 (what {!Mux} and the serve demux dispatch on)
   keeps its place. *)

let trailer_size = 4

let put_be32 buf off v =
  Bytebuf.set_uint8 buf off ((v lsr 24) land 0xff);
  Bytebuf.set_uint8 buf (off + 1) ((v lsr 16) land 0xff);
  Bytebuf.set_uint8 buf (off + 2) ((v lsr 8) land 0xff);
  Bytebuf.set_uint8 buf (off + 3) (v land 0xff)

let seal_in_place integrity buf ~len =
  match integrity with
  | None -> len
  | Some kind ->
      let d =
        Checksum.Kind.digest kind (Bytebuf.sub buf ~pos:0 ~len) land 0xFFFFFFFF
      in
      put_be32 buf len d;
      len + trailer_size

let seal integrity buf =
  match integrity with
  | None -> buf
  | Some kind ->
      let n = Bytebuf.length buf in
      let out = Bytebuf.create (n + trailer_size) in
      Bytebuf.blit ~src:buf ~src_pos:0 ~dst:out ~dst_pos:0 ~len:n;
      let d = Checksum.Kind.digest kind buf land 0xFFFFFFFF in
      put_be32 out n d;
      out

let unseal integrity buf =
  match integrity with
  | None -> Some buf
  | Some kind ->
      let n = Bytebuf.length buf in
      if n < trailer_size then None
      else
        let body = Bytebuf.sub buf ~pos:0 ~len:(n - trailer_size) in
        let stored =
          (Bytebuf.get_uint8 buf (n - 4) lsl 24)
          lor (Bytebuf.get_uint8 buf (n - 3) lsl 16)
          lor (Bytebuf.get_uint8 buf (n - 2) lsl 8)
          lor Bytebuf.get_uint8 buf (n - 1)
        in
        if Checksum.Kind.digest kind body land 0xFFFFFFFF = stored then
          Some body
        else None

(* Writers lay the message into the front of [buf] and return the body
   length, so pooled buffers can be filled and sealed in place; the
   [build_*] variants allocate exactly-sized buffers for callers without
   a pool. *)

let write_done buf ~stream =
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_done;
  Cursor.put_u16be w stream;
  Bytebuf.length (Cursor.written w)

let write_close buf ~stream ~total =
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_close;
  Cursor.put_u16be w stream;
  Cursor.put_int_as_u32be w total;
  Bytebuf.length (Cursor.written w)

let write_nack buf ~stream ~have_below indices =
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_nack;
  Cursor.put_u16be w stream;
  Cursor.put_int_as_u32be w have_below;
  Cursor.put_u16be w (List.length indices);
  List.iter (fun i -> Cursor.put_int_as_u32be w i) indices;
  Bytebuf.length (Cursor.written w)

let write_gone buf ~stream indices =
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_gone;
  Cursor.put_u16be w stream;
  Cursor.put_u16be w (List.length indices);
  List.iter (fun i -> Cursor.put_int_as_u32be w i) indices;
  Bytebuf.length (Cursor.written w)

let build size write =
  let buf = Bytebuf.create size in
  Bytebuf.take buf (write buf)

let build_done ~stream = build 3 (fun b -> write_done b ~stream)

let build_close ~stream ~total =
  build 7 (fun b -> write_close b ~stream ~total)

let build_nack ~stream ~have_below indices =
  build
    (1 + 2 + 4 + 2 + (4 * List.length indices))
    (fun b -> write_nack b ~stream ~have_below indices)

let build_gone ~stream indices =
  build
    (1 + 2 + 2 + (4 * List.length indices))
    (fun b -> write_gone b ~stream indices)

type msg =
  | Nack of { stream : int; have_below : int; indices : int list }
  | Close of { stream : int; total : int }
  | Done of { stream : int }
  | Gone of { stream : int; indices : int list }

let stream_of = function
  | Nack { stream; _ } | Close { stream; _ } | Done { stream }
  | Gone { stream; _ } ->
      stream

let read_indices r count =
  let rec go n acc =
    if n = 0 then List.rev acc
    else go (n - 1) ((Int32.to_int (Cursor.u32be r) land 0xFFFFFFFF) :: acc)
  in
  go count []

let parse buf =
  if Bytebuf.length buf = 0 then None
  else
    let r = Cursor.reader buf in
    try
      match Cursor.u8 r with
      | t when t = tag_nack ->
          let stream = Cursor.u16be r in
          let have_below = Int32.to_int (Cursor.u32be r) land 0xFFFFFFFF in
          let count = Cursor.u16be r in
          Some (Nack { stream; have_below; indices = read_indices r count })
      | t when t = tag_close ->
          let stream = Cursor.u16be r in
          let total = Int32.to_int (Cursor.u32be r) land 0xFFFFFFFF in
          Some (Close { stream; total })
      | t when t = tag_done ->
          let stream = Cursor.u16be r in
          Some (Done { stream })
      | t when t = tag_gone ->
          let stream = Cursor.u16be r in
          let count = Cursor.u16be r in
          Some (Gone { stream; indices = read_indices r count })
      | _ -> None
    with Cursor.Underflow _ -> None
