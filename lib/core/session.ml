open Bufkit
open Netsim

type offer = {
  stream : int;
  syntaxes : string list;
  rate_bps : float;
  policy : string;
  ciphers : string list;
}

type granted = {
  g_stream : int;
  g_syntax : string;
  g_rate_bps : float;
  g_policy : string;
  g_cipher : string;
}

let tag_setup = 0xE1
let tag_accept = 0xE2
let tag_reject = 0xE3

let put_short_string w s =
  let n = min 255 (String.length s) in
  Cursor.put_u8 w n;
  Cursor.put_string w (String.sub s 0 n)

let short_string r =
  let n = Cursor.u8 r in
  Cursor.string r n

let encode_setup (o : offer) =
  let names = List.filteri (fun i _ -> i < 255) o.syntaxes in
  let ciphers = List.filteri (fun i _ -> i < 255) o.ciphers in
  let size =
    1 + 2 + 8 + 1 + String.length o.policy + 1
    + List.fold_left (fun acc s -> acc + 1 + String.length s) 0 names
    + 1
    + List.fold_left (fun acc s -> acc + 1 + String.length s) 0 ciphers
  in
  let buf = Bytebuf.create size in
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_setup;
  Cursor.put_u16be w o.stream;
  Cursor.put_u64be w (Int64.bits_of_float o.rate_bps);
  put_short_string w o.policy;
  Cursor.put_u8 w (List.length names);
  List.iter (put_short_string w) names;
  Cursor.put_u8 w (List.length ciphers);
  List.iter (put_short_string w) ciphers;
  Cursor.written w

let decode_setup r =
  let stream = Cursor.u16be r in
  let rate_bps = Int64.float_of_bits (Cursor.u64be r) in
  let policy = short_string r in
  let rec names k acc =
    if k = 0 then List.rev acc else names (k - 1) (short_string r :: acc)
  in
  let syntaxes = names (Cursor.u8 r) [] in
  let ciphers = names (Cursor.u8 r) [] in
  { stream; syntaxes; rate_bps; policy; ciphers }

let encode_accept (g : granted) =
  let size =
    1 + 2 + 8 + 1 + String.length g.g_policy + 1 + String.length g.g_syntax
    + 1 + String.length g.g_cipher
  in
  let buf = Bytebuf.create size in
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_accept;
  Cursor.put_u16be w g.g_stream;
  Cursor.put_u64be w (Int64.bits_of_float g.g_rate_bps);
  put_short_string w g.g_policy;
  put_short_string w g.g_syntax;
  put_short_string w g.g_cipher;
  Cursor.written w

let decode_accept r =
  let g_stream = Cursor.u16be r in
  let g_rate_bps = Int64.float_of_bits (Cursor.u64be r) in
  let g_policy = short_string r in
  let g_syntax = short_string r in
  let g_cipher = short_string r in
  { g_stream; g_syntax; g_rate_bps; g_policy; g_cipher }

let encode_reject ~stream =
  let buf = Bytebuf.create 3 in
  let w = Cursor.writer buf in
  Cursor.put_u8 w tag_reject;
  Cursor.put_u16be w stream;
  Cursor.written w

(* --- Responder --- *)

type responder = {
  r_engine : Engine.t;
  r_io : Dgram.t;
  r_port : int;
  supported : string list;
  sup_ciphers : string list;
  max_rate : float;
  on_session : peer:Packet.addr -> granted -> unit;
  table : (Packet.addr * int, granted option) Hashtbl.t;
      (* None records a rejection, for idempotent replies *)
  mutable accepted : int;
  mutable rejected : int;
}

let sessions_accepted r = r.accepted
let sessions_rejected r = r.rejected

let decide r (o : offer) : granted option =
  let pick wanted supported =
    let lowered = List.map String.lowercase_ascii supported in
    List.find_opt
      (fun s -> List.mem (String.lowercase_ascii s) lowered)
      wanted
  in
  (* An initiator that names no cipher means the modern default, not
     plaintext: ChaCha20 is the record layer unless explicitly ablated. *)
  let wanted_ciphers = if o.ciphers = [] then [ "chacha20" ] else o.ciphers in
  match
    (pick o.syntaxes r.supported, pick wanted_ciphers r.sup_ciphers)
  with
  | Some syntax, Some cipher ->
      Some
        {
          g_stream = o.stream;
          g_syntax = String.lowercase_ascii syntax;
          g_rate_bps =
            (if o.rate_bps <= 0.0 then 0.0 else Float.min o.rate_bps r.max_rate);
          g_policy = o.policy;
          g_cipher = String.lowercase_ascii cipher;
        }
  | _ -> None

let responder_handle r ~src ~src_port payload =
  let reply buf =
    ignore (r.r_io.Dgram.send ~dst:src ~dst_port:src_port ~src_port:r.r_port buf)
  in
  let cur = Cursor.reader payload in
  (* A truncated message anywhere in the parse is simply ignored, so the
     whole dispatch sits under one handler-level guard. *)
  try
    match Cursor.u8 cur with
    | tag when tag = tag_setup ->
        let o = decode_setup cur in
        let key = (src, o.stream) in
        (match Hashtbl.find_opt r.table key with
        | Some (Some g) -> reply (encode_accept g) (* duplicate SETUP *)
        | Some None -> reply (encode_reject ~stream:o.stream)
        | None -> (
            match decide r o with
            | Some g ->
                Hashtbl.replace r.table key (Some g);
                r.accepted <- r.accepted + 1;
                r.on_session ~peer:src g;
                reply (encode_accept g)
            | None ->
                Hashtbl.replace r.table key None;
                r.rejected <- r.rejected + 1;
                reply (encode_reject ~stream:o.stream)))
    | _ -> ()
  with Cursor.Underflow _ -> ()

let default_ciphers = [ "chacha20"; "none" ]

let listen ~engine ~io ~port ~supported ?(ciphers = default_ciphers)
    ?(max_rate_bps = infinity) ~on_session () =
  let r =
    {
      r_engine = engine;
      r_io = io;
      r_port = port;
      supported;
      sup_ciphers = ciphers;
      max_rate = max_rate_bps;
      on_session;
      table = Hashtbl.create 16;
      accepted = 0;
      rejected = 0;
    }
  in
  io.Dgram.bind ~port (responder_handle r);
  r

(* --- Initiator --- *)

type pending = {
  mutable done_ : bool;
  mutable tries_left : int;
}

let initiate ~engine ~io ~port ~peer ~peer_port ~offer ?(retry_interval = 0.1)
    ?(max_retries = 10) ~on_result () =
  let p = { done_ = false; tries_left = max_retries } in
  let setup = encode_setup offer in
  let send () =
    ignore (io.Dgram.send ~dst:peer ~dst_port:peer_port ~src_port:port setup)
  in
  io.Dgram.bind ~port (fun ~src:_ ~src_port:_ payload ->
      if not p.done_ then begin
        let cur = Cursor.reader payload in
        try
          match Cursor.u8 cur with
          | tag when tag = tag_accept ->
              let g = decode_accept cur in
              if g.g_stream = offer.stream then begin
                p.done_ <- true;
                on_result (Some g)
              end
          | tag when tag = tag_reject ->
              if Cursor.u16be cur = offer.stream then begin
                p.done_ <- true;
                on_result None
              end
          | _ -> ()
        with Cursor.Underflow _ -> ()
      end);
  let rec retry () =
    if not p.done_ then
      if p.tries_left <= 0 then begin
        p.done_ <- true;
        on_result None
      end
      else begin
        p.tries_left <- p.tries_left - 1;
        send ();
        ignore (Engine.schedule_after engine retry_interval retry)
      end
  in
  retry ()
