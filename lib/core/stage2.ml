type result = {
  adu : Adu.t;
  checksums : (Checksum.Kind.t * int) list;
}

type stats = {
  mutable processed : int;
  mutable rejected_order : int;
  mutable rejected_invalid : int;
}

type t = {
  plan : Adu.t -> Ilp.plan;
  deliver : result -> unit;
  stats : stats;
}

let create ~plan ~deliver =
  { plan; deliver; stats = { processed = 0; rejected_order = 0; rejected_invalid = 0 } }

let stats t = t.stats

let deliver_fn t (adu : Adu.t) =
  let plan = t.plan adu in
  if Ilp.needs_in_order plan then begin
    t.stats.rejected_order <- t.stats.rejected_order + 1;
    Obs.Counter.incr (Obs.Registry.counter "stage2.rejected_order")
  end
  else
    match Ilp.validate plan with
    | Error _ ->
        t.stats.rejected_invalid <- t.stats.rejected_invalid + 1;
        Obs.Counter.incr (Obs.Registry.counter "stage2.rejected_invalid")
    | Ok () ->
        let run = Ilp.run_fused plan adu.Adu.payload in
        t.stats.processed <- t.stats.processed + 1;
        Obs.Counter.incr (Obs.Registry.counter "stage2.processed");
        Obs.Counter.add
          (Obs.Registry.counter "stage2.bytes")
          (Bufkit.Bytebuf.length adu.Adu.payload);
        t.deliver
          { adu = Adu.make adu.Adu.name run.Ilp.output; checksums = run.Ilp.checksums }

let decrypt_verify ~key =
  [
    Ilp.Xor_pad { key; pos = 0L };
    Ilp.Checksum Checksum.Kind.Internet;
    Ilp.Deliver_copy;
  ]

let decrypt_verify_at ~key (adu : Adu.t) =
  [
    Ilp.Xor_pad { key; pos = Int64.of_int adu.Adu.name.Adu.dest_off };
    Ilp.Checksum Checksum.Kind.Internet;
    Ilp.Deliver_copy;
  ]
