type result = {
  adu : Adu.t;
  checksums : (Checksum.Kind.t * int) list;
}

type stats = {
  mutable processed : int;
  mutable rejected_order : int;
  mutable rejected_invalid : int;
}

type t = {
  plan : Adu.t -> Ilp.plan;
  deliver : result -> unit;
  stats : stats;
  pool : Par.Pool.t option;
  batch : int;
  backlog : Adu.t Queue.t;  (* accepted, not yet processed (pooled mode) *)
}

let create ?pool ?(batch = 32) ~plan ~deliver () =
  if batch < 1 then invalid_arg "Stage2.create: batch must be >= 1";
  {
    plan;
    deliver;
    stats = { processed = 0; rejected_order = 0; rejected_invalid = 0 };
    pool;
    batch;
    backlog = Queue.create ();
  }

let stats t = t.stats

let account_and_deliver t (adu : Adu.t) output checksums =
  t.stats.processed <- t.stats.processed + 1;
  Obs.Counter.incr (Obs.Registry.counter "stage2.processed");
  Obs.Counter.add
    (Obs.Registry.counter "stage2.bytes")
    (Bufkit.Bytebuf.length adu.Adu.payload);
  t.deliver { adu = Adu.make adu.Adu.name output; checksums }

let flush t =
  if not (Queue.is_empty t.backlog) then begin
    let adus = Array.of_seq (Queue.to_seq t.backlog) in
    Queue.clear t.backlog;
    let outcome = Ilp_par.run ?pool:t.pool ~plan:t.plan adus in
    (* Results come back position-indexed, so delivery happens here in
       arrival order — identical observable order to the serial path, no
       matter which domain finished which ADU first. *)
    Array.iteri
      (fun i (r : Ilp.result) ->
        account_and_deliver t adus.(i) r.Ilp.output r.Ilp.checksums)
      outcome.Ilp_par.results
  end

let deliver_fn t (adu : Adu.t) =
  let plan = t.plan adu in
  if Ilp.needs_in_order plan then begin
    t.stats.rejected_order <- t.stats.rejected_order + 1;
    Obs.Counter.incr (Obs.Registry.counter "stage2.rejected_order")
  end
  else
    match Ilp.validate plan with
    | Error _ ->
        t.stats.rejected_invalid <- t.stats.rejected_invalid + 1;
        Obs.Counter.incr (Obs.Registry.counter "stage2.rejected_invalid")
    | Ok () -> (
        match t.pool with
        | None ->
            let run = Ilp.run_fused plan adu.Adu.payload in
            account_and_deliver t adu run.Ilp.output run.Ilp.checksums
        | Some _ ->
            Queue.add adu t.backlog;
            if Queue.length t.backlog >= t.batch then flush t)

let decrypt_verify ~key =
  [
    Ilp.Xor_pad { key; pos = 0L };
    Ilp.Checksum Checksum.Kind.Internet;
    Ilp.Deliver_copy;
  ]

let decrypt_verify_at ~key (adu : Adu.t) =
  [
    Ilp.Xor_pad { key; pos = Int64.of_int adu.Adu.name.Adu.dest_off };
    Ilp.Checksum Checksum.Kind.Internet;
    Ilp.Deliver_copy;
  ]
