open Bufkit

type result = {
  adu : Adu.t;
  checksums : (Checksum.Kind.t * int) list;
}

type stats = {
  mutable processed : int;
  mutable rejected_order : int;
  mutable rejected_invalid : int;
}

type t = {
  plan : Adu.t -> Ilp.plan;
  deliver : result -> unit;
  stats : stats;
  pool : Par.Pool.t option;
  batch : int;
  (* Accepted, not yet processed (pooled mode); the second component is
     the staging buffer to release after the batch is delivered. *)
  backlog : (Adu.t * Bytebuf.t option) Queue.t;
  out_pool : (Pool.t * int) option;  (* pool and its buf_size *)
  in_pool : (Pool.t * int) option;
}

let c_processed = Obs.Registry.counter "stage2.processed"
let c_bytes = Obs.Registry.counter "stage2.bytes"
let c_rejected_order = Obs.Registry.counter "stage2.rejected_order"
let c_rejected_invalid = Obs.Registry.counter "stage2.rejected_invalid"
let c_out_pooled = Obs.Registry.counter "stage2.out_pooled"
let c_in_staged = Obs.Registry.counter "stage2.in_staged"

let with_size = Option.map (fun p -> (p, (Pool.stats p).Pool.buf_size))

let create ?pool ?(batch = 32) ?out_pool ?in_pool ~plan ~deliver () =
  if batch < 1 then invalid_arg "Stage2.create: batch must be >= 1";
  {
    plan;
    deliver;
    stats = { processed = 0; rejected_order = 0; rejected_invalid = 0 };
    pool;
    batch;
    backlog = Queue.create ();
    out_pool = with_size out_pool;
    in_pool = with_size in_pool;
  }

let stats t = t.stats

(* A pooled buffer trimmed to [len], when the pool has room and the size
   fits; the full buffer is what must go back to the pool. *)
let acquire_fit pool_opt len =
  match pool_opt with
  | Some (pool, buf_size) when len <= buf_size -> (
      match Pool.try_acquire pool with
      | Some full -> Some (full, Bytebuf.take full len)
      | None -> None)
  | _ -> None

let release_into pool_opt owner =
  match (pool_opt, owner) with
  | Some (pool, _), Some full -> Pool.release pool full
  | _ -> ()

let account_and_deliver t (adu : Adu.t) output checksums =
  t.stats.processed <- t.stats.processed + 1;
  Obs.Counter.incr c_processed;
  Obs.Counter.add c_bytes (Bytebuf.length adu.Adu.payload);
  t.deliver { adu = Adu.make adu.Adu.name output; checksums }

let flush t =
  if not (Queue.is_empty t.backlog) then begin
    let entries = Array.of_seq (Queue.to_seq t.backlog) in
    Queue.clear t.backlog;
    let adus = Array.map fst entries in
    (* Per-ADU output slots from the output pool, released once the whole
       batch has been delivered — results are borrowed by [deliver]. *)
    let out_owners =
      Array.map
        (fun (adu : Adu.t) ->
          acquire_fit t.out_pool (Bytebuf.length adu.Adu.payload))
        adus
    in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun o -> release_into t.out_pool (Option.map fst o))
          out_owners;
        Array.iter (fun (_, o) -> release_into t.in_pool o) entries)
      (fun () ->
        let outs = Array.map (Option.map snd) out_owners in
        let outcome = Ilp_par.run ?pool:t.pool ~outs ~plan:t.plan adus in
        (* Results come back position-indexed, so delivery happens here in
           arrival order — identical observable order to the serial path,
           no matter which domain finished which ADU first. *)
        Array.iteri
          (fun i (r : Ilp.result) ->
            account_and_deliver t adus.(i) r.Ilp.output r.Ilp.checksums)
          outcome.Ilp_par.results)
  end

let deliver_fn t (adu : Adu.t) =
  let plan = t.plan adu in
  if Ilp.needs_in_order plan then begin
    t.stats.rejected_order <- t.stats.rejected_order + 1;
    Obs.Counter.incr c_rejected_order
  end
  else
    match Ilp.validate plan with
    | Error _ ->
        t.stats.rejected_invalid <- t.stats.rejected_invalid + 1;
        Obs.Counter.incr c_rejected_invalid
    | Ok () -> (
        match t.pool with
        | None -> (
            match acquire_fit t.out_pool (Bytebuf.length adu.Adu.payload) with
            | Some (full, dst) ->
                Obs.Counter.incr c_out_pooled;
                Fun.protect
                  ~finally:(fun () -> release_into t.out_pool (Some full))
                  (fun () ->
                    let run = Ilp.run_fused ~dst plan adu.Adu.payload in
                    account_and_deliver t adu run.Ilp.output run.Ilp.checksums)
            | None ->
                let run = Ilp.run_fused plan adu.Adu.payload in
                account_and_deliver t adu run.Ilp.output run.Ilp.checksums)
        | Some _ ->
            (* The backlog outlives this callback, so a payload that is
               only borrowed (a pooled reassembly buffer) must be staged
               into storage we own until the flush. *)
            let entry =
              match acquire_fit t.in_pool (Bytebuf.length adu.Adu.payload) with
              | Some (full, staged) ->
                  Obs.Counter.incr c_in_staged;
                  Bytebuf.blit ~src:adu.Adu.payload ~src_pos:0 ~dst:staged
                    ~dst_pos:0 ~len:(Bytebuf.length adu.Adu.payload);
                  (Adu.make adu.Adu.name staged, Some full)
              | None ->
                  ( (if Option.is_some t.in_pool then
                       (* Input staging was requested (inputs are borrowed)
                          but the pool could not serve this ADU: fall back
                          to a private copy rather than retain the borrow. *)
                       Adu.make adu.Adu.name (Bytebuf.copy adu.Adu.payload)
                     else adu),
                    None )
            in
            Queue.add entry t.backlog;
            if Queue.length t.backlog >= t.batch then flush t)

let decrypt_verify ~key =
  [
    Ilp.Xor_pad { key; pos = 0L };
    Ilp.Checksum Checksum.Kind.Internet;
    Ilp.Deliver_copy;
  ]

let decrypt_verify_at ~key (adu : Adu.t) =
  [
    Ilp.Xor_pad { key; pos = Int64.of_int adu.Adu.name.Adu.dest_off };
    Ilp.Checksum Checksum.Kind.Internet;
    Ilp.Deliver_copy;
  ]
