(** The transport's control-message codec and per-datagram integrity
    trailer, factored out of {!Alf_transport} so the single-session
    endpoints and the {!Serve} sharded engine speak one wire dialect.

    Control messages share the datagram space with data fragments
    ({!Framing.frag_magic} = 0xAD) and FEC blocks ([tag_fec]); the first
    byte discriminates, and every message keeps the stream id at bytes
    1–2 — the fixed position {!Mux} and the serve demux dispatch on
    without parsing the rest. *)

open Bufkit

val tag_nack : int
val tag_close : int
val tag_done : int
val tag_gone : int
val tag_fec : int

(** {1 Integrity trailer} *)

val trailer_size : int

val seal : Checksum.Kind.t option -> Bytebuf.t -> Bytebuf.t
(** Append the 4-byte big-endian digest of [buf] (identity when the kind
    is [None]). Allocates the sealed datagram. *)

val seal_in_place : Checksum.Kind.t option -> Bytebuf.t -> len:int -> int
(** Seal the [len]-byte body already sitting at the front of [buf],
    writing the trailer at [len]; returns the total datagram length.
    [buf] must have at least [len + trailer_size] bytes of room. The
    allocation-free path for pooled control buffers. *)

val unseal : Checksum.Kind.t option -> Bytebuf.t -> Bytebuf.t option
(** Verify and strip the trailer; [None] on mismatch or truncation. The
    returned body is a view into [buf]. *)

(** {1 Messages} *)

type msg =
  | Nack of { stream : int; have_below : int; indices : int list }
      (** Receiver → sender: everything below [have_below] is settled;
          [indices] are missing. *)
  | Close of { stream : int; total : int }
      (** Sender → receiver: the stream holds exactly [total] ADUs. *)
  | Done of { stream : int }
      (** Receiver → sender: every index settled; release everything. *)
  | Gone of { stream : int; indices : int list }
      (** Sender → receiver: [indices] are unrecoverable; stop asking. *)

val stream_of : msg -> int

val parse : Bytebuf.t -> msg option
(** Parse an unsealed control body. [None] on an unknown tag or a
    truncated message — the caller drops, it never throws. *)

(** Writers lay the message at the front of [buf] and return the body
    length (ready for {!seal_in_place}); [build_*] allocate exactly-sized
    bodies. *)

val write_done : Bytebuf.t -> stream:int -> int
val write_close : Bytebuf.t -> stream:int -> total:int -> int
val write_nack : Bytebuf.t -> stream:int -> have_below:int -> int list -> int
val write_gone : Bytebuf.t -> stream:int -> int list -> int
val build_done : stream:int -> Bytebuf.t
val build_close : stream:int -> total:int -> Bytebuf.t
val build_nack : stream:int -> have_below:int -> int list -> Bytebuf.t
val build_gone : stream:int -> int list -> Bytebuf.t
