open Netsim

type t = {
  engine : Engine.t;
  rate_bps : float;
  per_unit_cost : float;
  created_at : float;
  mutable busy_until : float;
  mutable processed : int;
  mutable backlog : int;
  mutable idle_accum : float;
  mutable last_drain : float;
  series : Stats.series;
}

let create ~engine ~rate_bps ?(per_unit_cost = 0.0) () =
  if rate_bps <= 0.0 then invalid_arg "Pipeline.create: rate must be positive";
  let now = Engine.now engine in
  {
    engine;
    rate_bps;
    per_unit_cost;
    created_at = now;
    busy_until = now;
    processed = 0;
    backlog = 0;
    idle_accum = 0.0;
    last_drain = now;
    series = Stats.series ();
  }

let feed t ~bytes =
  if bytes > 0 then begin
    let now = Engine.now t.engine in
    (* Idle gap: converter was free and starved until this arrival. *)
    if now > t.busy_until then begin
      t.idle_accum <- t.idle_accum +. (now -. t.busy_until);
      t.busy_until <- now
    end;
    let service = (8.0 *. float_of_int bytes /. t.rate_bps) +. t.per_unit_cost in
    t.busy_until <- t.busy_until +. service;
    t.backlog <- t.backlog + bytes;
    Obs.Counter.add (Obs.Registry.counter "pipeline.fed_bytes") bytes;
    Obs.Gauge.observe_max
      (Obs.Registry.gauge "pipeline.backlog_peak_bytes")
      (float_of_int t.backlog);
    let finish = t.busy_until in
    ignore
      (Engine.schedule_at t.engine finish (fun () ->
           t.processed <- t.processed + bytes;
           t.backlog <- t.backlog - bytes;
           t.last_drain <- finish;
           Obs.Counter.add (Obs.Registry.counter "pipeline.drained_bytes") bytes;
           Stats.record t.series ~t:finish (float_of_int t.processed)))
  end

let processed_bytes t = t.processed
let backlog_bytes t = t.backlog
let busy_until t = t.busy_until

let idle_time t =
  let now = Engine.now t.engine in
  if now > t.busy_until then t.idle_accum +. (now -. t.busy_until)
  else t.idle_accum

let finish_time t = t.last_drain
let progress t = t.series
